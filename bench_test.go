// Package repro's root benchmarks regenerate every figure and equation of
// the paper, one testing.B target each, plus the ablation benches DESIGN.md
// calls out. Each bench reports its shape metrics via b.ReportMetric so
// `go test -bench=. -benchmem` doubles as the experiment log: the custom
// columns (completions/op, crossover-Hz, power-ratio, ...) are the numbers
// EXPERIMENTS.md records against the paper.
package repro_test

import (
	"math"
	"testing"

	"repro/internal/bench/benchtest"
	"repro/internal/circuit"
	"repro/internal/core"
	"repro/internal/eneutral"
	"repro/internal/experiments"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/mpsoc"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/taskburst"
	"repro/internal/transient"
	"repro/internal/units"
)

// runExperiment drives a registered experiment once per bench iteration.
func runExperiment(b *testing.B, id string) *experiments.Output {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var out *experiments.Output
	var err error
	for i := 0; i < b.N; i++ {
		out, err = e.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
	return out
}

// BenchmarkFig1aWindGust regenerates the micro wind turbine gust waveform
// (Fig. 1(a)): ±6 V AC at several Hz over one gust.
func BenchmarkFig1aWindGust(b *testing.B) {
	out := runExperiment(b, "fig1a")
	s := out.Recorder.Series("vout").Summarize()
	b.ReportMetric(s.Max, "peakV")
	b.ReportMetric(-s.Min, "troughV")
}

// BenchmarkFig1bPhotovoltaic regenerates the two-day indoor PV profile
// (Fig. 1(b)): harvested current between ≈280 and ≈430 µA.
func BenchmarkFig1bPhotovoltaic(b *testing.B) {
	out := runExperiment(b, "fig1b")
	s := out.Recorder.Series("iharvest").Summarize()
	b.ReportMetric(s.Min, "floor-µA")
	b.ReportMetric(s.Max, "peak-µA")
}

// BenchmarkFig2Taxonomy classifies the paper's reference systems (Fig. 2).
func BenchmarkFig2Taxonomy(b *testing.B) {
	out := runExperiment(b, "fig2")
	b.ReportMetric(float64(len(out.Tables[0].Rows)), "systems")
	ed := 0
	for _, s := range core.Registry() {
		if s.EnergyDriven {
			ed++
		}
	}
	b.ReportMetric(float64(ed), "energy-driven")
}

// BenchmarkFig5OperatingPoints regenerates the MPSoC power/performance
// scatter (Fig. 5): order-of-magnitude power modulation, ≈0.2 FPS peak.
func BenchmarkFig5OperatingPoints(b *testing.B) {
	board := mpsoc.XU4()
	var ratio, peak float64
	for i := 0; i < b.N; i++ {
		pts := board.OperatingPoints()
		min, max := mpsoc.PowerRange(pts)
		ratio = max / min
		peak = 0
		for _, p := range pts {
			peak = math.Max(peak, p.FPS)
		}
	}
	b.ReportMetric(ratio, "power-ratio")
	b.ReportMetric(peak, "peak-FPS")
}

// BenchmarkFig7HibernusFFT regenerates the hibernus waveform run (Fig. 7):
// one snapshot per dip, FFT completing a few supply cycles in.
func BenchmarkFig7HibernusFFT(b *testing.B) {
	out := runExperiment(b, "fig7")
	_ = out
}

// BenchmarkFig8HibernusPN regenerates the hibernus-PN comparison (Fig. 8):
// DFS modulation sustains operation through the gust.
func BenchmarkFig8HibernusPN(b *testing.B) {
	out := runExperiment(b, "fig8")
	_ = out
}

// BenchmarkEq1EnergyNeutralWSN runs the adaptive-vs-fixed WSN comparison
// (eqs. 1–2).
func BenchmarkEq1EnergyNeutralWSN(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		n := eneutral.NewNode(20, 0.6, source.DefaultPhotovoltaic())
		n.PActive = 3e-3
		n.PSleep = 3e-6
		n.Controller = eneutral.NewKansal()
		res := n.Simulate(4*units.Day, 10, units.Day)
		if res.Violations != 0 {
			b.Fatal("adaptive node violated eq. (2)")
		}
		worst = res.WorstWindow()
	}
	b.ReportMetric(worst*100, "worst-imbalance-%")
}

// BenchmarkEq3PowerNeutralTracking measures how tightly the governed MCU
// satisfies eq. (3) at the minimal-storage end of the sweep.
func BenchmarkEq3PowerNeutralTracking(b *testing.B) {
	var relErr float64
	for i := 0; i < b.N; i++ {
		gov := powerneutral.NewGovernor(3.0)
		gov.Hysteresis = 0.25
		tr := powerneutral.NewTracker()
		gen := &source.SignalGenerator{Amplitude: 4.5, Frequency: 20, Rs: 100}
		s := lab.Setup{
			Workload: programs.FFT(64, programs.DefaultLayout()),
			Params:   mcu.DefaultParams(),
			VSource:  source.HalfWave(gen, 0.2),
			C:        47e-6,
			V0:       3.0,
			Duration: 2.0,
			Dt:       5e-6,
		}
		s.OnTick = func(t float64, d *mcu.Device, rail *circuit.Rail) {
			gov.Act(t, d, rail.V())
			tr.Observe(rail, rail.V(), s.Dt)
		}
		res := lab.MustRun(s)
		if res.Stats.BrownOuts != 0 {
			b.Fatal("governed run browned out")
		}
		relErr = tr.Stats().RelativeError()
	}
	b.ReportMetric(relErr, "eq3-rel-err")
}

// BenchmarkEq4ThresholdBoundary sweeps the eq. (4) margin and reports the
// aborted-save count at the under-margined end.
func BenchmarkEq4ThresholdBoundary(b *testing.B) {
	out := runExperiment(b, "eq4")
	_ = out
}

// BenchmarkEq5Crossover runs the hibernus/QuickRecall sweep and reports
// the measured crossover frequency (eq. 5).
func BenchmarkEq5Crossover(b *testing.B) {
	var crossover float64
	for i := 0; i < b.N; i++ {
		crossover = measureCrossover(b)
	}
	b.ReportMetric(crossover, "crossover-Hz")
}

// measureCrossover finds the first outage frequency where QuickRecall's
// energy per completion beats hibernus'. The 5×2 frequency × memory-system
// grid fans out over the sweep engine; results come back in row-major
// order, so runs[2i]/runs[2i+1] are the hibernus/QuickRecall pair at
// frequency i.
func measureCrossover(b *testing.B) float64 {
	b.Helper()
	freqs := []float64{2, 5, 10, 20, 40}
	grid := sweep.NewGrid().
		Floats("freq", freqs...).
		Bools("unified", false, true)
	runs, err := sweep.MapGrid(nil, grid, func(c sweep.Case) (lab.Result, error) {
		unified := c.Bool("unified")
		period := 1.0 / c.Float("freq")
		layout := programs.DefaultLayout()
		params := mcu.DefaultParams()
		if unified {
			layout = programs.UnifiedNVLayout()
			params = mcu.UnifiedNVParams()
		}
		return lab.Run(lab.Setup{
			Workload: programs.FFT(64, layout),
			Params:   params,
			MakeRuntime: func(d *mcu.Device) mcu.Runtime {
				if unified {
					return transient.NewQuickRecall(d, 10e-6, 1.1, 0.35)
				}
				return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
			},
			VSource: &source.SquareWaveVoltage{
				High: 3.3, OnTime: period / 2, OffTime: period / 2, Rs: 100,
			},
			C:        10e-6,
			Duration: 4.0,
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, f := range freqs {
		h, q := runs[2*i], runs[2*i+1]
		if q.EnergyPerCompletion() < h.EnergyPerCompletion() {
			return f
		}
	}
	return math.Inf(1)
}

// BenchmarkRuntimeComparison runs all five protection strategies on the
// standard intermittent supply and reports hibernus' snapshot efficiency.
func BenchmarkRuntimeComparison(b *testing.B) {
	out := runExperiment(b, "runtimes")
	_ = out
}

// BenchmarkPeripheralGap quantifies the paper's discussion-section gap:
// checkpointing that ignores peripheral state resumes on a misconfigured
// sensor and a deaf radio.
func BenchmarkPeripheralGap(b *testing.B) {
	out := runExperiment(b, "periph")
	_ = out
}

// ---------------------------------------------------------------------------
// Ablation benches (DESIGN.md §4)
// ---------------------------------------------------------------------------

// BenchmarkAblationHibernusMargin compares eq. (4) guard margins: the
// tighter the margin, the more active time per dip — until saves start
// aborting.
func BenchmarkAblationHibernusMargin(b *testing.B) {
	for _, m := range []float64{1.0, 1.1, 1.25} {
		b.Run(marginName(m), func(b *testing.B) {
			var done, aborted int
			for i := 0; i < b.N; i++ {
				res := lab.MustRun(benchtest.Intermittent(func(d *mcu.Device) mcu.Runtime {
					return transient.NewHibernus(d, 10e-6, m, 0.35)
				}, 10e-6))
				done, aborted = res.Completions, res.Stats.SavesAborted
			}
			b.ReportMetric(float64(done), "completions")
			b.ReportMetric(float64(aborted), "aborted")
		})
	}
}

func marginName(m float64) string {
	switch m {
	case 1.0:
		return "margin=1.00"
	case 1.1:
		return "margin=1.10"
	default:
		return "margin=1.25"
	}
}

// BenchmarkAblationMementosThreshold compares Mementos voltage-check
// thresholds: higher thresholds snapshot earlier and more often.
func BenchmarkAblationMementosThreshold(b *testing.B) {
	for _, tag := range []struct {
		name string
		v    float64
	}{{"vcheck=2.0", 2.0}, {"vcheck=2.2", 2.2}, {"vcheck=2.8", 2.8}} {
		b.Run(tag.name, func(b *testing.B) {
			var saves, done int
			for i := 0; i < b.N; i++ {
				res := lab.MustRun(benchtest.Intermittent(func(d *mcu.Device) mcu.Runtime {
					return transient.NewMementos(d, tag.v)
				}, 10e-6))
				saves, done = res.Stats.SavesStarted, res.Completions
			}
			b.ReportMetric(float64(saves), "snapshots")
			b.ReportMetric(float64(done), "completions")
		})
	}
}

// BenchmarkAblationGovernorPolicy compares the hill-climb and proportional
// DFS policies on the same supply.
func BenchmarkAblationGovernorPolicy(b *testing.B) {
	for _, tag := range []struct {
		name   string
		policy powerneutral.Policy
	}{{"hillclimb", powerneutral.HillClimb}, {"proportional", powerneutral.Proportional}} {
		b.Run(tag.name, func(b *testing.B) {
			var relErr float64
			var done int
			for i := 0; i < b.N; i++ {
				gov := powerneutral.NewGovernor(3.0)
				gov.Policy = tag.policy
				gov.Hysteresis = 0.25
				tr := powerneutral.NewTracker()
				gen := &source.SignalGenerator{Amplitude: 4.5, Frequency: 20, Rs: 100}
				s := lab.Setup{
					Workload: programs.FFT(64, programs.DefaultLayout()),
					Params:   mcu.DefaultParams(),
					VSource:  source.HalfWave(gen, 0.2),
					C:        470e-6,
					V0:       3.0,
					Duration: 2.0,
					Dt:       5e-6,
				}
				s.OnTick = func(t float64, d *mcu.Device, rail *circuit.Rail) {
					gov.Act(t, d, rail.V())
					tr.Observe(rail, rail.V(), s.Dt)
				}
				res := lab.MustRun(s)
				relErr = tr.Stats().RelativeError()
				done = res.Completions
			}
			b.ReportMetric(relErr, "eq3-rel-err")
			b.ReportMetric(float64(done), "completions")
		})
	}
}

// BenchmarkAblationStorageSweep walks the taxonomy's storage axis with the
// same hibernus system: more storage, fewer outages survived per joule but
// longer uninterrupted stretches.
func BenchmarkAblationStorageSweep(b *testing.B) {
	for _, tag := range []struct {
		name string
		c    float64
	}{{"C=4.7µF", 4.7e-6}, {"C=10µF", 10e-6}, {"C=47µF", 47e-6}, {"C=470µF", 470e-6}} {
		b.Run(tag.name, func(b *testing.B) {
			var done, brownouts int
			for i := 0; i < b.N; i++ {
				res := lab.MustRun(benchtest.Intermittent(func(d *mcu.Device) mcu.Runtime {
					return transient.NewHibernus(d, tag.c, 1.1, 0.35)
				}, tag.c))
				done, brownouts = res.Completions, res.Stats.BrownOuts
			}
			b.ReportMetric(float64(done), "completions")
			b.ReportMetric(float64(brownouts), "brownouts")
		})
	}
}

// BenchmarkAblationFRAMWaitStates isolates the frequency-dependent NVM
// penalty: the same unified-FRAM workload at 8 MHz (zero wait) vs 24 MHz
// (wait states) — throughput does not scale with the clock.
func BenchmarkAblationFRAMWaitStates(b *testing.B) {
	run := func(freqIdx int) float64 {
		params := mcu.UnifiedNVParams()
		params.FreqIndex = freqIdx
		res := lab.MustRun(lab.Setup{
			Workload: programs.FFT(64, programs.UnifiedNVLayout()),
			Params:   params,
			VSource:  &source.ConstantVoltage{V: 3.3, Rs: 50},
			C:        10e-6,
			Duration: 0.2,
		})
		return float64(res.Completions) / 0.2
	}
	for _, tag := range []struct {
		name string
		idx  int
	}{{"8MHz-nowait", 3}, {"24MHz-waits", 5}} {
		b.Run(tag.name, func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				tput = run(tag.idx)
			}
			b.ReportMetric(tput, "ffts/s")
		})
	}
}

// BenchmarkFastForward measures the lab's analytic idle-skip against full
// integration on the standard intermittent testbed (150 ms dark windows):
// the sub-benchmarks' ns/op ratio is the single-core speedup, and the
// "completions" metric demonstrates the skipped run computes the same run.
func BenchmarkFastForward(b *testing.B) {
	for _, tag := range []struct {
		name string
		ff   bool
	}{{"integrated", false}, {"fast-forward", true}} {
		b.Run(tag.name, func(b *testing.B) {
			var done int
			for i := 0; i < b.N; i++ {
				s := benchtest.Intermittent(func(d *mcu.Device) mcu.Runtime {
					return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
				}, 10e-6)
				s.FastForward = tag.ff
				done = lab.MustRun(s).Completions
			}
			b.ReportMetric(float64(done), "completions")
		})
	}
}

// BenchmarkSweepStorageAxis runs the taxonomy storage-axis sweep through
// the parallel engine — on a multi-core host its ns/op drops roughly with
// the worker count relative to BenchmarkAblationStorageSweep's serial sum.
func BenchmarkSweepStorageAxis(b *testing.B) {
	caps := []float64{4.7e-6, 10e-6, 47e-6, 470e-6}
	for i := 0; i < b.N; i++ {
		res, err := sweep.Labs(nil, len(caps), func(c sweep.Case) lab.Setup {
			cap := caps[c.Index]
			return benchtest.Intermittent(func(d *mcu.Device) mcu.Runtime {
				return transient.NewHibernus(d, cap, 1.1, 0.35)
			}, cap)
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(caps) {
			b.Fatal("missing results")
		}
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the hot paths
// ---------------------------------------------------------------------------

// BenchmarkCoreInterpreter measures raw guest execution speed.
func BenchmarkCoreInterpreter(b *testing.B) {
	w := programs.FFT(64, programs.DefaultLayout())
	prog := benchtest.MustAsm(b, w)
	ram := benchtest.NewFlatRAM(prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := benchtest.NewCore(ram, prog.Entry)
		done := false
		c.Sys = benchtest.SysStop(&done)
		for !done {
			if _, err := c.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRailStep measures the electrical solver alone.
func BenchmarkRailStep(b *testing.B) {
	cap := circuit.NewCapacitor(10e-6, 3.3)
	rail := circuit.NewRail(cap)
	rail.VSource = &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.15, Rs: 100}
	rail.AddLoad(&circuit.ConstantCurrentLoad{I: 1e-3, VMin: 1.8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rail.Step(5e-6)
	}
}

// BenchmarkSnapshotSaveRestore measures a full snapshot round trip.
func BenchmarkSnapshotSaveRestore(b *testing.B) {
	w := programs.FFT(64, programs.DefaultLayout())
	prog := benchtest.MustAsm(b, w)
	d := mcu.New(mcu.DefaultParams(), prog)
	// Power it on.
	for d.Mode() != mcu.ModeActive {
		d.Tick(3.3, 10e-6)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.BeginSave(mcu.SnapFull, nil)
		for d.Mode() != mcu.ModeActive {
			d.Tick(3.3, 10e-6)
		}
		d.BeginRestore(nil)
		for d.Mode() != mcu.ModeActive {
			d.Tick(3.3, 10e-6)
		}
	}
}

// BenchmarkTaskBurst measures the charge-fire loop.
func BenchmarkTaskBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n, err := taskburst.NewNode(500e-6, taskburst.MonjoloTask(),
			&source.ConstantPower{P: 5e-3}, 1.8, 5.0, 0.8)
		if err != nil {
			b.Fatal(err)
		}
		n.Simulate(10, 1e-4)
		if len(n.Events) == 0 {
			b.Fatal("no events")
		}
	}
}
