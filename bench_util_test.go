package repro_test

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/programs"
)

// mustAsm assembles a workload or fails the benchmark.
func mustAsm(b *testing.B, w *programs.Workload) *isa.Program {
	b.Helper()
	p, err := isa.Assemble(w.Source)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// newFlatRAM loads a program into a fresh flat memory.
func newFlatRAM(p *isa.Program) *isa.FlatRAM {
	ram := &isa.FlatRAM{}
	p.LoadInto(ram)
	return ram
}

// newCore returns a core reset to the program entry with a stack.
func newCore(ram *isa.FlatRAM, entry uint16) *isa.Core {
	c := &isa.Core{Bus: ram}
	c.Reset(entry)
	c.R[isa.SP] = 0xff00
	return c
}

// sysStop returns a SYS handler that halts on workload completion.
func sysStop(done *bool) func(code uint16, c *isa.Core) {
	return func(code uint16, c *isa.Core) {
		if code == programs.SysDone {
			*done = true
			c.Halted = true
		}
	}
}
