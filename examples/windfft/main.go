// Windfft reproduces the paper's §III scenario pair: an MCU computing FFTs
// directly from a half-wave rectified micro wind turbine — first with
// plain hibernus (Fig. 7's snapshot/restore behaviour), then with
// hibernus-PN (Fig. 8's DFS modulation riding the gust). It prints both
// waveforms as terminal plots so the published figures can be eyeballed
// against the simulation.
package main

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/trace"
	"repro/internal/transient"
)

func turbine() source.VoltageSource {
	t := &source.WindTurbine{
		PeakVoltage: 4.5,
		ACFrequency: 8,
		GustStart:   0.3,
		GustRise:    0.5,
		GustHold:    2.2,
		GustFall:    0.8,
		Rs:          150,
	}
	return source.HalfWave(t, 0.2)
}

func run(name string, mk func(d *mcu.Device) mcu.Runtime, static bool) (lab.Result, *trace.Recorder, float64) {
	rec := trace.NewRecorder()
	rec.SetInterval(2e-3)
	params := mcu.DefaultParams()
	if static {
		params.FreqIndex = 4 // 16 MHz fixed
	}
	var longest, cur, last float64
	res := lab.MustRun(lab.Setup{
		Workload:    programs.FFT(64, programs.DefaultLayout()),
		Params:      params,
		MakeRuntime: mk,
		VSource:     turbine(),
		C:           330e-6,
		Duration:    5.0,
		Recorder:    rec,
		OnTick: func(t float64, d *mcu.Device, rail *circuit.Rail) {
			dt := t - last
			last = t
			switch d.Mode() {
			case mcu.ModeActive, mcu.ModeSaving, mcu.ModeRestoring:
				cur += dt
				longest = math.Max(longest, cur)
			default:
				cur = 0
			}
		},
	})
	fmt.Printf("%s: %d FFTs, %d snapshots, %d restores, longest uninterrupted run %.2f s\n",
		name, res.Completions, res.Stats.SavesStarted, res.Stats.Restores, longest)
	return res, rec, longest
}

func main() {
	fmt.Println("== micro wind turbine gust: plain hibernus vs hibernus-PN ==")
	_, recPlain, _ := run("hibernus (16 MHz static)", func(d *mcu.Device) mcu.Runtime {
		return transient.NewHibernus(d, 330e-6, 1.1, 0.35)
	}, true)
	_, recPN, _ := run("hibernus-PN (governed)  ", func(d *mcu.Device) mcu.Runtime {
		return powerneutral.NewHibernusPN(d, 330e-6, 1.1, 0.35, 3.0)
	}, false)

	fmt.Println("\nFig. 7 shape — V_CC under plain hibernus (snapshot dips, hibernation gaps):")
	fmt.Print(trace.Plot(recPlain.Series("vcc"), 96, 12))

	fmt.Println("\nFig. 8 shape — V_CC under hibernus-PN (rides the gust):")
	fmt.Print(trace.Plot(recPN.Series("vcc"), 96, 12))
	fmt.Println("\nDFS trace (frequency follows the harvested power):")
	fmt.Print(trace.Plot(recPN.Series("freq"), 96, 8))
}
