// Crossover reproduces the eq. (5) study: sweep the supply-interruption
// frequency and measure the energy each completed FFT costs under
// hibernus (split SRAM system, full-RAM snapshots) versus QuickRecall
// (unified FRAM system, register-only snapshots but higher quiescent
// power). Below the crossover hibernus wins; above it QuickRecall wins.
package main

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/transient"
)

func measure(freq float64, unified bool) lab.Result {
	period := 1.0 / freq
	layout := programs.DefaultLayout()
	params := mcu.DefaultParams()
	if unified {
		layout = programs.UnifiedNVLayout()
		params = mcu.UnifiedNVParams()
	}
	return lab.MustRun(lab.Setup{
		Workload: programs.FFT(64, layout),
		Params:   params,
		MakeRuntime: func(d *mcu.Device) mcu.Runtime {
			if unified {
				return transient.NewQuickRecall(d, 10e-6, 1.1, 0.35)
			}
			return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
		},
		VSource: &source.SquareWaveVoltage{
			High: 3.3, OnTime: period / 2, OffTime: period / 2, Rs: 100,
		},
		C:        10e-6,
		Duration: 6.0,
	})
}

func main() {
	fmt.Println("== hibernus vs QuickRecall: energy per FFT vs outage frequency (eq. 5) ==")
	fmt.Printf("%-10s %-18s %-18s %s\n", "outages", "hibernus µJ/op", "quickrecall µJ/op", "winner")

	// Analytic prediction from the device parameters.
	p := mcu.DefaultParams()
	pSRAM := (p.IActiveBase + p.IActivePerMHz*8) * 3.0
	pFRAM := pSRAM + p.IFRAMExtra*3.0
	fmt.Printf("(FRAM quiescent penalty: %.2f mW)\n\n", (pFRAM-pSRAM)*1e3)

	for _, f := range []float64{2, 5, 10, 20, 40} {
		hib := measure(f, false)
		qr := measure(f, true)
		he := hib.EnergyPerCompletion() * 1e6
		qe := qr.EnergyPerCompletion() * 1e6
		winner := "hibernus"
		if qe < he {
			winner = "quickrecall"
		}
		fmt.Printf("%-10s %-18.2f %-18.2f %s\n", fmt.Sprintf("%.0f Hz", f), he, qe, winner)
	}
	fmt.Println("\nshape: hibernus wins at low outage rates (FRAM quiescent power dominates);")
	fmt.Println("quickrecall wins at high rates (full-RAM snapshot energy dominates) — eq. (5).")
}
