// Wsn demonstrates energy-neutral operation (§II.A): a solar-harvesting
// sensor node with a 20 J battery adapts its duty cycle Kansal-style so
// that consumption balances harvest over each day (eq. 1) without ever
// depleting the buffer (eq. 2). Two mis-designed fixed-duty baselines
// bracket it: one dies, one wastes most of the harvest.
package main

import (
	"fmt"

	"repro/internal/eneutral"
	"repro/internal/source"
	"repro/internal/trace"
	"repro/internal/units"
)

func simulate(name string, ctl eneutral.Controller, duty float64) eneutral.Result {
	n := eneutral.NewNode(20, 0.6, source.DefaultPhotovoltaic())
	n.PActive = 3e-3 // 3 mW while sensing/transmitting
	n.PSleep = 3e-6
	n.Duty = duty
	n.Controller = ctl
	res := n.Simulate(4*units.Day, 10, units.Day)
	fmt.Printf("%-16s worst eq.(1) imbalance %5.1f%%  violations %d  downtime %5.1f h  productive %5.1f h  final SoC %.2f\n",
		name, res.WorstWindow()*100, res.Violations, res.DowntimeSec/3600,
		res.ActiveSec/3600, res.FinalSoC)
	return res
}

func main() {
	fmt.Println("== energy-neutral WSN over four solar days (indoor PV, Fig. 1(b) profile) ==")
	adaptive := simulate("kansal-adaptive", eneutral.NewKansal(), 0.2)
	simulate("fixed 80%", &eneutral.FixedController{Value: 0.8}, 0.8)
	simulate("fixed 2%", &eneutral.FixedController{Value: 0.02}, 0.02)

	// Render the adaptive node's duty trace: it should follow the sun.
	s := trace.NewSeries("duty", "")
	for i, d := range adaptive.DutyTrace {
		s.Append(float64(i), d) // one sample per control hour
	}
	fmt.Println("\nadaptive duty cycle, one sample per hour (diurnal tracking):")
	fmt.Print(trace.Plot(s, 96, 10))
}
