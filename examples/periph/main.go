// Periph demonstrates the extension the paper's discussion section calls
// for: transient computing for peripherals, not just computation. A
// sensing application calibrates its ADC (gain ×3) and performs a radio
// configuration handshake once at boot — then hibernus checkpoints carry
// the CPU past that code forever. Across 20 power failures, the naive
// runtime resumes on a silently reset sensor and a deaf radio; the
// peripheral-aware extension snapshots the register bank too and stays
// correct.
package main

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/periph"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/transient"
)

func run(aware bool) (lab.Result, *periph.Bank) {
	var bank *periph.Bank
	res := lab.MustRun(lab.Setup{
		Workload:  periph.SenseWorkload(64, 3, programs.DefaultLayout()),
		Params:    mcu.DefaultParams(),
		Configure: func(d *mcu.Device) { bank = periph.Attach(d, aware) },
		MakeRuntime: func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
		},
		VSource:  &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
		C:        10e-6,
		LeakR:    50e3,
		Duration: 3.0,
	})
	return res, bank
}

func main() {
	fmt.Println("== calibrated sensing across 20 outages: who protects the peripherals? ==")
	fmt.Println()
	naiveRes, naiveBank := run(false)
	awareRes, awareBank := run(true)

	report := func(name string, res lab.Result, bank *periph.Bank) {
		fmt.Printf("%s\n", name)
		fmt.Printf("  correct batches:   %d\n", res.Completions)
		fmt.Printf("  corrupted batches: %d   <- stale ADC gain after restore\n", res.WrongResults)
		fmt.Printf("  packets delivered: %d\n", len(bank.TxDelivered))
		fmt.Printf("  packets dropped:   %d   <- radio lost its config handshake\n", bank.TxDropped)
		fmt.Printf("  brown-outs:        %d\n\n", res.Stats.BrownOuts)
	}
	report("hibernus, CPU+RAM snapshots only (state of the art the paper critiques):",
		naiveRes, naiveBank)
	report("hibernus + peripheral register bank in the snapshot (the extension):",
		awareRes, awareBank)

	fmt.Println("the application code is identical; only the snapshot scope differs.")
}
