// Wispcam demonstrates task-based transient computing (§II.B): three
// charge-and-fire systems from the paper running side by side —
// WISPCam (one photo per 6 mF charge from RF power), Monjolo (one ping
// per 500 µF charge, whose ping rate measures the harvested power), and a
// Gomez-style 80 µF burst sampler. None of them satisfies eq. (2) — the
// supply to the load collapses after every task — yet all operate
// correctly, which is exactly what places them in the transient class.
package main

import (
	"fmt"

	"repro/internal/source"
	"repro/internal/taskburst"
)

func main() {
	fmt.Println("== task-based transient systems: charge, fire, repeat ==")

	// WISPCam: RF-powered camera. The reader illuminates the tag 90 % of
	// the time at 5 mW; each photo costs 6 mJ.
	cam, err := taskburst.NewNode(6e-3, taskburst.WISPCamTask(),
		&source.RFBurst{BurstPower: 5e-3, Period: 2, Duty: 0.9}, 1.8, 5.0, 0.8)
	if err != nil {
		panic(err)
	}
	cam.Simulate(120, 1e-4)
	fmt.Printf("WISPCam   (6 mF):  %3d photos in 120 s (%.2f/min), fires at %.2f V\n",
		len(cam.Events), cam.Rate(0, 120)*60, cam.VFire)

	// Monjolo: the ping rate IS the power measurement. Show linearity.
	fmt.Println("\nMonjolo  (500 µF): ping rate vs harvested power (the meter principle):")
	for _, p := range []float64{2e-3, 4e-3, 8e-3} {
		m, err := taskburst.NewNode(500e-6, taskburst.MonjoloTask(),
			&source.ConstantPower{P: p}, 1.8, 5.0, 0.8)
		if err != nil {
			panic(err)
		}
		m.Simulate(60, 1e-4)
		fmt.Printf("  %4.0f mW harvested → %5.2f pings/s\n", p*1e3, m.Rate(10, 60))
	}

	// Gomez: small capacitor, small task, high rate.
	g, err := taskburst.NewNode(80e-6, taskburst.GomezBurstTask(),
		&source.ConstantPower{P: 2e-3}, 1.8, 5.0, 0.8)
	if err != nil {
		panic(err)
	}
	g.Simulate(20, 1e-5)
	fmt.Printf("\nGomez     (80 µF): %.1f sample bursts/s from 2 mW\n", g.Rate(5, 20))

	// Sizing failure: the library refuses physically impossible designs.
	if _, err := taskburst.NewNode(80e-6, taskburst.WISPCamTask(),
		&source.ConstantPower{P: 1e-3}, 1.8, 5.0, 0.8); err != nil {
		fmt.Printf("\nsizing check: %v\n", err)
	}
}
