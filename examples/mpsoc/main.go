// Mpsoc demonstrates power-neutral performance scaling on the big.LITTLE
// MPSoC of Fig. 5: enumerate the DVFS × hot-plug operating-point space,
// print the Pareto frontier, then walk a varying harvested-power budget
// and show the selector trading frame rate for power headroom.
package main

import (
	"fmt"
	"math"

	"repro/internal/mpsoc"
	"repro/internal/trace"
)

func main() {
	board := mpsoc.XU4()
	pts := board.OperatingPoints()
	minW, maxW := mpsoc.PowerRange(pts)
	fmt.Printf("== ODROID XU-4 model: %d operating points, %.2f–%.2f W (%.1f× modulation) ==\n\n",
		len(pts), minW, maxW, maxW/minW)

	front := mpsoc.ParetoFrontier(pts)
	fmt.Printf("Pareto frontier (%d points):\n", len(front))
	for i, p := range front {
		if i%3 != 0 && i != len(front)-1 {
			continue
		}
		fmt.Printf("  %-26s %6.2f W  %.4f FPS\n", p.Label(board), p.PowerW, p.FPS)
	}

	// Scatter of the full space — the Fig. 5 reproduction.
	scatter := make([]trace.ScatterPoint, 0, len(pts))
	for _, p := range pts {
		scatter = append(scatter, trace.ScatterPoint{X: p.PowerW, Y: p.FPS})
	}
	fmt.Println()
	fmt.Print(trace.Scatter("Fig. 5: raytrace FPS vs board power", "W", "FPS", scatter, 90, 16))

	// Power-neutral walk: a sinusoidal harvest budget over 60 s.
	fmt.Println("\npower-neutral selection against a varying harvest budget:")
	sel := mpsoc.NewSelector(board)
	fmt.Printf("  %-6s %-10s %-26s %-8s %s\n", "t(s)", "budget(W)", "selected point", "P(W)", "FPS")
	for t := 0; t <= 60; t += 6 {
		budget := 2 + 14*(0.5-0.5*math.Cos(2*math.Pi*float64(t)/60))
		op, ok := sel.Pick(budget)
		if !ok {
			fmt.Printf("  %-6d %-10.2f (insufficient power — buffer or sleep)\n", t, budget)
			continue
		}
		fmt.Printf("  %-6d %-10.2f %-26s %-8.2f %.4f\n",
			t, budget, op.Label(board), op.PowerW, op.FPS)
	}
}
