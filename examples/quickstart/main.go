// Quickstart: run an FFT on a transiently-powered MCU protected by
// hibernus, across a square-wave supply that dies 37 times during the run.
// This is the minimal end-to-end use of the library: pick a workload, a
// supply, a storage size, and a runtime; get verified completions.
package main

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/transient"
)

func main() {
	result := lab.MustRun(lab.Setup{
		// The guest program: a 64-point Q15 FFT, verified against a
		// bit-exact host reference on every completion.
		Workload: programs.FFT(64, programs.DefaultLayout()),

		// The hardware: an MSP430FR-flavoured MCU (8 MHz, 4 KiB SRAM,
		// FRAM for code and snapshots).
		Params: mcu.DefaultParams(),

		// The protection: hibernus, calibrated by eq. (4) for the 10 µF
		// rail with a 10 % guard margin.
		MakeRuntime: func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
		},

		// The energy environment: 3.3 V that vanishes for 150 ms out of
		// every 154 ms — no computation of this length survives it
		// without checkpointing.
		VSource:  &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
		C:        10e-6,
		LeakR:    50e3,
		Duration: 6.0,
	})

	fmt.Println("hibernus FFT across an intermittent supply")
	fmt.Printf("  correct completions: %d (wrong: %d)\n", result.Completions, result.WrongResults)
	fmt.Printf("  supply failures:     %d brown-outs\n", result.Stats.BrownOuts)
	fmt.Printf("  snapshots:           %d (one per outage)\n", result.Stats.SavesDone)
	fmt.Printf("  restores:            %d\n", result.Stats.Restores)
	fmt.Printf("  energy consumed:     %.1f µJ (%.1f µJ per FFT)\n",
		result.ConsumedJ*1e6, result.EnergyPerCompletion()*1e6)
}
