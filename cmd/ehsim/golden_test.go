package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI half of the golden-output conformance corpus: `ehsim -scenario`
// must print exactly the bytes committed under testdata/golden for every
// curated spec. internal/result's golden test pins RunSpec against the
// same files (and owns the -update flag), so the CLI, the service's
// result path, and the corpus stay mutually byte-identical.

const goldenDir = "../../testdata/golden"

func TestGoldenCLIOutput(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario specs found: %v", err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			code, out, errb := runCLI(t, "-scenario", path)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errb)
			}
			want, err := os.ReadFile(filepath.Join(goldenDir, name+".txt"))
			if err != nil {
				t.Fatalf("missing golden file (go test ./internal/result -run TestGolden -update): %v", err)
			}
			if out != string(want) {
				t.Errorf("CLI output differs from golden\n--- want\n%s\n--- got\n%s", want, out)
			}
		})
	}
}

// TestGoldenCLITrace pins the -trace CSV for the fig7 spec: the recorder
// must not perturb the summary, and the trace bytes (spec-hash header
// included) must match the corpus.
func TestGoldenCLITrace(t *testing.T) {
	const name = "fig7-rectified-sine-hibernus"
	spec := filepath.Join("../../examples/scenarios", name+".json")
	tracePath := filepath.Join(t.TempDir(), "trace.csv")
	code, out, errb := runCLI(t, "-scenario", spec, "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	wantTxt, err := os.ReadFile(filepath.Join(goldenDir, name+".txt"))
	if err != nil {
		t.Fatal(err)
	}
	// The traced run prints the golden summary plus the trace-written
	// notice line.
	if !strings.HasPrefix(out, string(wantTxt)) {
		t.Errorf("traced run summary differs from golden\n--- want prefix\n%s\n--- got\n%s", wantTxt, out)
	}
	got, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join(goldenDir, name+".trace.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace CSV differs from golden (%d vs %d bytes)", len(got), len(want))
	}
}
