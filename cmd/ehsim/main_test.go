package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/result"
	"repro/internal/scenario"
)

// runCLI invokes the command's entry point with captured output and an
// empty stdin.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	return runCLIStdin(t, "", args...)
}

// runCLIStdin is runCLI with stdin content.
func runCLIStdin(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestListEnumeratesRegistries(t *testing.T) {
	code, out, _ := runCLI(t, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, frag := range []string{
		"models:", "workloads:", "sources:", "runtimes:", "governors:",
		"lab", "mpsoc", "taskburst", "eneutral", "taskenergy=0.001",
		"fft64", "wind", "hibernus-pn", "hillclimb", "margin=1.1",
		"metrics:", "energy_per_op(J)", "mean_fps(fps)", "first_fire(s)", "worst_window(ratio)",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("-list output missing %q", frag)
		}
	}
}

func TestScenarioSingleRunSmoke(t *testing.T) {
	spec := `{
		"name": "cli-smoke",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002
	}`
	path := filepath.Join(t.TempDir(), "smoke.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCLI(t, "-scenario", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "scenario cli-smoke") || !strings.Contains(out, "completions:") {
		t.Errorf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "completions:        0 ") {
		t.Errorf("smoke scenario should complete at least once:\n%s", out)
	}
}

func TestScenarioSweepRunSmoke(t *testing.T) {
	spec := `{
		"name": "cli-sweep-smoke",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002,
		"sweep": [{"param": "c", "values": ["4.7u", "10u"]}]
	}`
	path := filepath.Join(t.TempDir(), "sweep.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCLI(t, "-scenario", path, "-workers", "2")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	for _, frag := range []string{"sweep over c, 2 cases", "c=4.7µF", "c=10µF"} {
		if !strings.Contains(out, frag) {
			t.Errorf("sweep output missing %q:\n%s", frag, out)
		}
	}
}

func TestScenarioErrorsAreActionable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	spec := `{"name":"bad","workload":"nope","storage":{"c":"10u"},
		"source":{"name":"dc"},"duration":1}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runCLI(t, "-scenario", path)
	if code == 0 {
		t.Fatal("expected failure")
	}
	if !strings.Contains(errb, `unknown workload "nope"`) || !strings.Contains(errb, "fib24") {
		t.Errorf("stderr should carry the registry's actionable message, got: %s", errb)
	}
	code, _, errb = runCLI(t, "-scenario", filepath.Join(t.TempDir(), "missing.json"))
	if code == 0 || !strings.Contains(errb, "missing.json") {
		t.Errorf("missing file: code=%d stderr=%s", code, errb)
	}
}

func TestExampleSpecsParseAndRunHeadless(t *testing.T) {
	// Every shipped example spec must at least load and compile; the two
	// fast ones are executed end to end (CI runs the full matrix).
	matches, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(matches) < 4 {
		t.Fatalf("expected ≥4 example specs, got %d (%v)", len(matches), err)
	}
	for _, m := range matches {
		name := filepath.Base(m)
		if name != "fig7-rectified-sine-hibernus.json" && name != "eneutral-duty-cycle.json" {
			continue
		}
		code, out, errb := runCLI(t, "-scenario", m)
		if code != 0 {
			t.Errorf("%s: exit %d, stderr: %s", name, code, errb)
			continue
		}
		if len(strings.TrimSpace(out)) == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

func TestScenarioFromStdin(t *testing.T) {
	spec := `{
		"name": "stdin-smoke",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002
	}`
	code, out, errb := runCLIStdin(t, spec, "-scenario", "-")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "scenario stdin-smoke") || !strings.Contains(out, "completions:") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestScenarioOutputMatchesSharedResultPath(t *testing.T) {
	// The CLI must print exactly what internal/result renders — the same
	// bytes ehsimd serves — so the two front-ends cannot drift.
	spec := `{
		"name": "pin",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002
	}`
	path := filepath.Join(t.TempDir(), "pin.json")
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errb := runCLI(t, "-scenario", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	sp, err := scenario.Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := result.RunSpec(sp, result.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out != rep.Text {
		t.Errorf("CLI output diverges from result.RunSpec:\nCLI:\n%s\nRunSpec:\n%s", out, rep.Text)
	}
}

func TestScenarioTraceCarriesSpecHash(t *testing.T) {
	spec := `{
		"name": "trace-hash",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002
	}`
	dir := t.TempDir()
	specPath := filepath.Join(dir, "spec.json")
	tracePath := filepath.Join(dir, "vcc.csv")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runCLI(t, "-scenario", specPath, "-trace", tracePath)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	sp, err := scenario.Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	want := "# spec-hash: " + hash + "\n"
	if !strings.HasPrefix(string(data), want) {
		t.Errorf("trace file should open with %q, got:\n%.120s", want, data)
	}
	if !strings.Contains(string(data), "t,vcc(V)") {
		t.Errorf("trace CSV body missing:\n%.200s", data)
	}
}

func TestLegacyFlagPathStillWorks(t *testing.T) {
	code, out, errb := runCLI(t,
		"-workload", "fib24", "-supply", "dc", "-runtime", "none", "-dur", "0.002")
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb)
	}
	if !strings.Contains(out, "scenario: fib-24 on dc, runtime=none") {
		t.Errorf("legacy header changed:\n%s", out)
	}
}

func TestHelpExitsZero(t *testing.T) {
	code, _, errb := runCLI(t, "-h")
	if code != 0 {
		t.Errorf("-h exited %d, want 0", code)
	}
	if !strings.Contains(errb, "-scenario") {
		t.Errorf("usage should mention -scenario, got: %s", errb)
	}
}
