// Command ehsim runs transiently-powered scenarios from the command line:
// pick a workload, a supply, a runtime, and a storage size — or hand it a
// declarative scenario spec — and get completions, snapshot counts,
// energy figures and (optionally) a CSV trace of V_CC.
//
// All names resolve through the layer registries (internal/programs,
// internal/source, internal/transient, internal/powerneutral); -list
// enumerates everything they export, with per-entry tunables and
// defaults.
//
// The -c flag accepts a comma-separated list of capacitances; with more
// than one, ehsim becomes a storage-axis sweep: every case runs in
// parallel on the sweep engine and the results are printed as one table,
// in flag order. -ff enables the lab's analytic fast-forward through idle
// decay, which speeds up sparse supplies (long outages) several-fold at
// tolerance-level accuracy cost.
//
// With -scenario the run is defined entirely by a JSON spec
// (internal/scenario): a single run when the spec has no sweep axes, a
// grid sweep otherwise. -workers, -ff and (single runs) -trace compose
// with it. "-scenario -" reads the spec from stdin, so specs pipe
// between tools (and into ehsimd client examples) without touching
// disk. Execution and report rendering go through internal/result — the
// same path the ehsimd service serves — so CLI output and service
// results are byte-identical by construction.
//
// Usage:
//
//	ehsim -workload fft64 -supply square -runtime hibernus -c 10u -dur 3
//	ehsim -scenario examples/scenarios/fig7-rectified-sine-hibernus.json
//
// Examples:
//
//	ehsim -list
//	ehsim -workload sieve3000 -supply square -runtime none
//	ehsim -workload fft64 -supply wind -runtime hibernus-pn -c 330u
//	ehsim -workload crc256 -supply sine20 -runtime quickrecall -trace vcc.csv
//	ehsim -workload sieve3000 -supply square -c 4.7u,10u,47u,470u -ff
//	ehsim -scenario examples/scenarios/transient-fram-vs-sram.json -workers 4
//	jq '.duration = 1' spec.json | ehsim -scenario -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/registry"
	"repro/internal/result"
	"repro/internal/scenario"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/transient"
	"repro/internal/units"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// supplyAliases maps legacy -supply flag names onto registry names so
// existing invocations keep working.
var supplyAliases = map[string]string{"sine20": "rectified-sine"}

// run is the testable entry point: it parses args, executes, and returns
// the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ehsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	workload := fs.String("workload", "fft64", "workload name (see -list)")
	supply := fs.String("supply", "square", "supply name (see -list)")
	runtimeName := fs.String("runtime", "hibernus", "runtime name (see -list)")
	capFlag := fs.String("c", "10u", "rail capacitance(s), e.g. 10u or 4.7u,10u,47u")
	duration := fs.Float64("dur", 3.0, "simulated seconds")
	tracePath := fs.String("trace", "", "write a V_CC/freq/mode CSV trace to this file")
	ff := fs.Bool("ff", false, "fast-forward idle decay analytically (faster, tolerance-level accuracy)")
	workers := fs.Int("workers", 0, "sweep parallelism (0 = one per core)")
	scenarioPath := fs.String("scenario", "", "run a declarative scenario spec (JSON) instead of flags; - reads stdin")
	list := fs.Bool("list", false, "list every registered workload, source, runtime and governor")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *list {
		printList(stdout)
		return 0
	}
	if *scenarioPath != "" {
		if err := runScenario(*scenarioPath, *tracePath, *ff, *workers, stdin, stdout, stderr); err != nil {
			fmt.Fprintf(stderr, "ehsim: %v\n", err)
			return 1
		}
		return 0
	}
	if err := runFlags(*workload, *supply, *runtimeName, *capFlag, *duration,
		*tracePath, *ff, *workers, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "ehsim: %v\n", err)
		return 1
	}
	return 0
}

// runFlags is the classic flag-driven path, now resolving every name
// through the registries.
func runFlags(workload, supply, runtimeName, capFlag string, duration float64,
	tracePath string, ff bool, workers int, stdout, stderr io.Writer) error {
	var caps []float64
	for _, part := range strings.Split(capFlag, ",") {
		c, err := parseCap(strings.TrimSpace(part))
		if err != nil {
			return err
		}
		caps = append(caps, c)
	}

	supplyLabel := supply // headers show the name as the user gave it
	if alias, ok := supplyAliases[supply]; ok {
		supply = alias
	}
	entry, err := transient.LookupRuntime(runtimeName)
	if err != nil {
		return err
	}
	layout := programs.DefaultLayout()
	params := mcu.DefaultParams()
	if entry.UnifiedNV {
		layout = programs.UnifiedNVLayout()
		params = mcu.UnifiedNVParams()
	}
	w, err := programs.Build(workload, layout)
	if err != nil {
		return err
	}
	if _, err := source.Build(supply, nil); err != nil {
		return err
	}

	setup := func(c float64) lab.Setup {
		built, _ := source.Build(supply, nil) // validated above; fresh per case
		mk, _, err := transient.RuntimeFactory(runtimeName, c, nil)
		if err != nil {
			panic(err) // unreachable: the name resolved above
		}
		return lab.Setup{
			Workload:    w,
			Params:      params,
			MakeRuntime: mk,
			VSource:     built.V,
			PSource:     built.P,
			C:           c,
			LeakR:       50e3,
			Duration:    duration,
			FastForward: ff,
		}
	}

	if len(caps) > 1 {
		if tracePath != "" {
			fmt.Fprintln(stderr, "ehsim: -trace applies to single runs only; ignoring it for the sweep")
		}
		return sweepCaps(caps, setup, workload, supplyLabel, runtimeName, workers, stdout)
	}

	c := caps[0]
	s := setup(c)
	title := fmt.Sprintf("scenario: %s on %s, runtime=%s, C=%s, %gs",
		w.Name, supplyLabel, runtimeName, units.Format(c, "F"), duration)
	return runSingle(s, title, tracePath, stdout)
}

// runSingle executes one flag-built setup, printing the title, summary,
// and (if requested) a CSV trace.
func runSingle(s lab.Setup, title, tracePath string, stdout io.Writer) error {
	var rec *trace.Recorder
	if tracePath != "" {
		rec = trace.NewRecorder()
		s.Recorder = rec
		s.RecordInterval = result.TraceInterval
	}

	res, err := lab.Run(s)
	if err != nil {
		return err
	}

	fmt.Fprintln(stdout, title)
	result.WriteSummary(stdout, res, s.Duration)

	if rec != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		// Flag-built runs have no spec, so no spec-hash header; scenario
		// runs get theirs through result.RunSpec.
		if err := result.WriteTrace(f, rec, ""); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  trace written to %s\n", tracePath)
	}
	return nil
}

// runScenario executes a declarative spec — loaded from path, or from
// stdin when path is "-" — through the shared internal/result path, so
// what it prints is exactly what the ehsimd service serves for the same
// spec.
func runScenario(path, tracePath string, ff bool, workers int,
	stdin io.Reader, stdout, stderr io.Writer) error {
	var sp *scenario.Spec
	var err error
	if path == "-" {
		data, rerr := io.ReadAll(stdin)
		if rerr != nil {
			return fmt.Errorf("reading spec from stdin: %w", rerr)
		}
		sp, err = scenario.Parse(data)
	} else {
		sp, err = scenario.Load(path)
	}
	if err != nil {
		return err
	}
	if ff {
		sp.FastForward = true
	}
	if sp.HasSweep() && tracePath != "" {
		fmt.Fprintln(stderr, "ehsim: -trace applies to single runs only; ignoring it for the sweep")
		tracePath = ""
	}

	rep, err := result.RunSpec(sp, result.Options{Workers: workers, Trace: tracePath != ""})
	if err != nil {
		return err
	}
	if _, err := io.WriteString(stdout, rep.Text); err != nil {
		return err
	}
	if tracePath != "" {
		if err := os.WriteFile(tracePath, rep.TraceCSV, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  trace written to %s\n", tracePath)
	}
	return nil
}

// sweepCaps fans one run per capacitance out over the sweep engine and
// prints a storage-axis comparison table in flag order.
func sweepCaps(caps []float64, setup func(c float64) lab.Setup,
	workload, supply, runtimeName string, workers int, stdout io.Writer) error {
	results, err := sweep.Labs(&sweep.Runner{Workers: workers}, len(caps),
		func(c sweep.Case) lab.Setup { return setup(caps[c.Index]) })
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "storage sweep: %s on %s, runtime=%s, %d cases\n",
		workload, supply, runtimeName, len(caps))
	names := make([]string, len(caps))
	for i, c := range caps {
		names[i] = units.Format(c, "F")
	}
	result.WriteSweepTable(stdout, "C", 10, names, results)
	return nil
}

// printList enumerates every registry the scenario layer resolves names
// through, with each entry's tunables and defaults.
func printList(w io.Writer) {
	docs := func(ps []registry.ParamDoc) string {
		if len(ps) == 0 {
			return ""
		}
		parts := make([]string, len(ps))
		for i, p := range ps {
			parts[i] = fmt.Sprintf("%s=%g", p.Key, p.Default)
		}
		return "  [" + strings.Join(parts, " ") + "]"
	}

	fmt.Fprintln(w, "models:")
	for _, n := range scenario.ModelNames() {
		m, _ := scenario.LookupModel(n)
		fmt.Fprintf(w, "  %-16s %s%s\n", n, m.Desc(), docs(m.Params()))
		if ms := m.Metrics(); len(ms) > 0 {
			keys := make([]string, len(ms))
			for i, d := range ms {
				keys[i] = d.Key
				if d.Unit != "" {
					keys[i] += "(" + d.Unit + ")"
				}
			}
			fmt.Fprintf(w, "  %-16s metrics: %s\n", "", strings.Join(keys, " "))
		}
	}
	fmt.Fprintln(w, "workloads:")
	for _, n := range programs.Names() {
		f, _ := programs.Lookup(n)
		fmt.Fprintf(w, "  %-16s %s\n", n, f.Desc)
	}
	fmt.Fprintln(w, "sources:")
	for _, n := range source.Names() {
		e, _ := source.Lookup(n)
		kind := "voltage"
		if e.Power {
			kind = "power"
		}
		fmt.Fprintf(w, "  %-16s %s (%s)%s\n", n, e.Desc, kind, docs(e.Params))
	}
	fmt.Fprintln(w, "runtimes:")
	for _, n := range transient.RuntimeNames() {
		e, _ := transient.LookupRuntime(n)
		note := ""
		if e.UnifiedNV {
			note = " (unified-NV device)"
		}
		fmt.Fprintf(w, "  %-16s %s%s%s\n", n, e.Desc, note, docs(e.Params))
	}
	fmt.Fprintln(w, "governors:")
	for _, n := range powerneutral.GovernorNames() {
		e, _ := powerneutral.LookupGovernor(n)
		fmt.Fprintf(w, "  %-16s %s%s\n", n, e.Desc, docs(e.Params))
	}
}

// parseCap parses values like "10u", "470u", "6m", "0.01".
func parseCap(s string) (float64, error) {
	v, err := units.ParseSI(s)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("invalid capacitance %q", s)
	}
	return v, nil
}
