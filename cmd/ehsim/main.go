// Command ehsim runs a single transiently-powered scenario from the
// command line: pick a workload, a supply, a runtime, and a storage size;
// get completions, snapshot counts, energy figures and (optionally) a CSV
// trace of V_CC.
//
// Usage:
//
//	ehsim -workload fft64 -supply square -runtime hibernus -c 10u -dur 3
//
// Examples:
//
//	ehsim -workload sieve3000 -supply square -runtime none
//	ehsim -workload fft64 -supply wind -runtime hibernus-pn -c 330u
//	ehsim -workload crc256 -supply sine20 -runtime quickrecall -trace vcc.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/trace"
	"repro/internal/transient"
	"repro/internal/units"
)

func main() {
	workload := flag.String("workload", "fft64", "fft64|fft256|crc256|sieve3000|fib24")
	supply := flag.String("supply", "square", "square|sine20|wind|solar|rf|dc")
	runtimeName := flag.String("runtime", "hibernus", "none|hibernus|hibernus++|mementos|quickrecall|hibernus-pn")
	capFlag := flag.String("c", "10u", "rail capacitance, e.g. 10u, 470u, 6m")
	duration := flag.Float64("dur", 3.0, "simulated seconds")
	tracePath := flag.String("trace", "", "write a V_CC/freq/mode CSV trace to this file")
	flag.Parse()

	c, err := parseCap(*capFlag)
	if err != nil {
		fail(err)
	}

	unified := *runtimeName == "quickrecall"
	layout := programs.DefaultLayout()
	params := mcu.DefaultParams()
	if unified {
		layout = programs.UnifiedNVLayout()
		params = mcu.UnifiedNVParams()
	}

	w, err := pickWorkload(*workload, layout)
	if err != nil {
		fail(err)
	}
	vs, err := pickSupply(*supply)
	if err != nil {
		fail(err)
	}
	mk, err := pickRuntime(*runtimeName, c)
	if err != nil {
		fail(err)
	}

	s := lab.Setup{
		Workload:    w,
		Params:      params,
		MakeRuntime: mk,
		VSource:     vs,
		C:           c,
		LeakR:       50e3,
		Duration:    *duration,
	}
	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder()
		s.Recorder = rec
		s.RecordInterval = 1e-3
	}

	res, err := lab.Run(s)
	if err != nil {
		fail(err)
	}

	fmt.Printf("scenario: %s on %s, runtime=%s, C=%s, %gs\n",
		w.Name, *supply, *runtimeName, units.Format(c, "F"), *duration)
	fmt.Printf("  completions:        %d (wrong: %d)\n", res.Completions, res.WrongResults)
	fmt.Printf("  throughput:         %.2f ops/s\n", res.Throughput(*duration))
	if res.Completions > 0 {
		fmt.Printf("  energy/completion:  %s\n", units.Format(res.EnergyPerCompletion(), "J"))
		fmt.Printf("  first completion:   %s\n", units.FormatSeconds(res.FirstCompletion))
	}
	st := res.Stats
	fmt.Printf("  snapshots:          %d started, %d done, %d aborted\n",
		st.SavesStarted, st.SavesDone, st.SavesAborted)
	fmt.Printf("  restores/wakes:     %d / %d\n", st.Restores, st.WakeNoRestore)
	fmt.Printf("  power cycles:       %d brown-outs, %d cold starts\n", st.BrownOuts, st.ColdStarts)
	fmt.Printf("  time split:         active %.2fs, sleep %.2fs, save %.2fs, off %.2fs\n",
		st.ActiveSec, st.SleepSec, st.SaveSec, st.OffSec)
	fmt.Printf("  energy:             harvested %s, consumed %s\n",
		units.Format(res.HarvestedJ, "J"), units.Format(res.ConsumedJ, "J"))
	if res.RuntimeErr != nil {
		fmt.Printf("  guest fault:        %v\n", res.RuntimeErr)
	}

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fail(err)
		}
		fmt.Printf("  trace written to %s\n", *tracePath)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ehsim: %v\n", err)
	os.Exit(1)
}

// parseCap parses values like "10u", "470u", "6m", "0.01".
func parseCap(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, strings.TrimSuffix(s, "u")
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, strings.TrimSuffix(s, "n")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("invalid capacitance %q", s)
	}
	return v * mult, nil
}

func pickWorkload(name string, l programs.Layout) (*programs.Workload, error) {
	switch name {
	case "fft64":
		return programs.FFT(64, l), nil
	case "fft256":
		return programs.FFT(256, l), nil
	case "crc256":
		return programs.CRC16(256, l), nil
	case "sieve3000":
		return programs.Sieve(3000, l), nil
	case "fib24":
		return programs.Fib(24, l), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func pickSupply(name string) (source.VoltageSource, error) {
	switch name {
	case "square":
		return &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100}, nil
	case "sine20":
		return source.HalfWave(&source.SignalGenerator{Amplitude: 4.5, Frequency: 20, Rs: 100}, 0.2), nil
	case "wind":
		t := &source.WindTurbine{PeakVoltage: 4.5, ACFrequency: 8, GustStart: 0.3,
			GustRise: 0.5, GustHold: 2.2, GustFall: 0.8, Rs: 150}
		return source.HalfWave(t, 0.2), nil
	case "dc":
		return &source.ConstantVoltage{V: 3.3, Rs: 100}, nil
	case "solar":
		// Indoor PV behind a boost converter: present the power source as
		// a soft voltage source via Thevenin equivalent at ~1 mW.
		return &source.ConstantVoltage{V: 3.0, Rs: 3000}, nil
	case "rf":
		gated := &source.GatedVoltage{
			Source:  &source.ConstantVoltage{V: 3.3, Rs: 400},
			Windows: [][2]float64{},
		}
		// RF illumination: 300 ms bursts every second.
		for t := 0.0; t < 3600; t += 1.0 {
			gated.Windows = append(gated.Windows, [2]float64{t, t + 0.3})
		}
		return gated, nil
	default:
		return nil, fmt.Errorf("unknown supply %q", name)
	}
}

func pickRuntime(name string, c float64) (func(d *mcu.Device) mcu.Runtime, error) {
	switch name {
	case "none":
		return nil, nil
	case "hibernus":
		return func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernus(d, c, 1.1, 0.35)
		}, nil
	case "hibernus++":
		return func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernusPP(d)
		}, nil
	case "mementos":
		return func(d *mcu.Device) mcu.Runtime {
			return transient.NewMementos(d, 2.2)
		}, nil
	case "quickrecall":
		return func(d *mcu.Device) mcu.Runtime {
			return transient.NewQuickRecall(d, c, 1.1, 0.35)
		}, nil
	case "hibernus-pn":
		return func(d *mcu.Device) mcu.Runtime {
			return powerneutral.NewHibernusPN(d, c, 1.1, 0.35, 3.0)
		}, nil
	default:
		return nil, fmt.Errorf("unknown runtime %q", name)
	}
}
