// Command ehsim runs transiently-powered scenarios from the command line:
// pick a workload, a supply, a runtime, and a storage size; get
// completions, snapshot counts, energy figures and (optionally) a CSV
// trace of V_CC.
//
// The -c flag accepts a comma-separated list of capacitances; with more
// than one, ehsim becomes a storage-axis sweep: every case runs in
// parallel on the sweep engine and the results are printed as one table,
// in flag order. -ff enables the lab's analytic fast-forward through idle
// decay, which speeds up sparse supplies (long outages) several-fold at
// tolerance-level accuracy cost.
//
// Usage:
//
//	ehsim -workload fft64 -supply square -runtime hibernus -c 10u -dur 3
//
// Examples:
//
//	ehsim -workload sieve3000 -supply square -runtime none
//	ehsim -workload fft64 -supply wind -runtime hibernus-pn -c 330u
//	ehsim -workload crc256 -supply sine20 -runtime quickrecall -trace vcc.csv
//	ehsim -workload sieve3000 -supply square -c 4.7u,10u,47u,470u -ff
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/transient"
	"repro/internal/units"
)

func main() {
	workload := flag.String("workload", "fft64", "fft64|fft256|crc256|sieve3000|fib24")
	supply := flag.String("supply", "square", "square|sine20|wind|solar|rf|dc")
	runtimeName := flag.String("runtime", "hibernus", "none|hibernus|hibernus++|mementos|quickrecall|hibernus-pn")
	capFlag := flag.String("c", "10u", "rail capacitance(s), e.g. 10u or 4.7u,10u,47u")
	duration := flag.Float64("dur", 3.0, "simulated seconds")
	tracePath := flag.String("trace", "", "write a V_CC/freq/mode CSV trace to this file")
	ff := flag.Bool("ff", false, "fast-forward idle decay analytically (faster, tolerance-level accuracy)")
	workers := flag.Int("workers", 0, "sweep parallelism (0 = one per core)")
	flag.Parse()

	var caps []float64
	for _, part := range strings.Split(*capFlag, ",") {
		c, err := parseCap(strings.TrimSpace(part))
		if err != nil {
			fail(err)
		}
		caps = append(caps, c)
	}

	unified := *runtimeName == "quickrecall"
	layout := programs.DefaultLayout()
	params := mcu.DefaultParams()
	if unified {
		layout = programs.UnifiedNVLayout()
		params = mcu.UnifiedNVParams()
	}

	w, err := pickWorkload(*workload, layout)
	if err != nil {
		fail(err)
	}
	if _, err := pickSupply(*supply); err != nil {
		fail(err)
	}

	setup := func(c float64) lab.Setup {
		vs, _ := pickSupply(*supply) // validated above; fresh per case
		mk, err := pickRuntime(*runtimeName, c)
		if err != nil {
			fail(err)
		}
		return lab.Setup{
			Workload:    w,
			Params:      params,
			MakeRuntime: mk,
			VSource:     vs,
			C:           c,
			LeakR:       50e3,
			Duration:    *duration,
			FastForward: *ff,
		}
	}

	if len(caps) > 1 {
		if *tracePath != "" {
			fmt.Fprintln(os.Stderr, "ehsim: -trace applies to single runs only; ignoring it for the sweep")
		}
		sweepCaps(caps, setup, *workload, *supply, *runtimeName, *workers)
		return
	}

	c := caps[0]
	s := setup(c)
	var rec *trace.Recorder
	if *tracePath != "" {
		rec = trace.NewRecorder()
		s.Recorder = rec
		s.RecordInterval = 1e-3
	}

	res, err := lab.Run(s)
	if err != nil {
		fail(err)
	}

	fmt.Printf("scenario: %s on %s, runtime=%s, C=%s, %gs\n",
		w.Name, *supply, *runtimeName, units.Format(c, "F"), *duration)
	fmt.Printf("  completions:        %d (wrong: %d)\n", res.Completions, res.WrongResults)
	fmt.Printf("  throughput:         %.2f ops/s\n", res.Throughput(*duration))
	if res.Completions > 0 {
		fmt.Printf("  energy/completion:  %s\n", units.Format(res.EnergyPerCompletion(), "J"))
		fmt.Printf("  first completion:   %s\n", units.FormatSeconds(res.FirstCompletion))
	}
	st := res.Stats
	fmt.Printf("  snapshots:          %d started, %d done, %d aborted\n",
		st.SavesStarted, st.SavesDone, st.SavesAborted)
	fmt.Printf("  restores/wakes:     %d / %d\n", st.Restores, st.WakeNoRestore)
	fmt.Printf("  power cycles:       %d brown-outs, %d cold starts\n", st.BrownOuts, st.ColdStarts)
	fmt.Printf("  time split:         active %.2fs, sleep %.2fs, save %.2fs, off %.2fs\n",
		st.ActiveSec, st.SleepSec, st.SaveSec, st.OffSec)
	fmt.Printf("  energy:             harvested %s, consumed %s\n",
		units.Format(res.HarvestedJ, "J"), units.Format(res.ConsumedJ, "J"))
	if res.RuntimeErr != nil {
		fmt.Printf("  guest fault:        %v\n", res.RuntimeErr)
	}

	if rec != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			fail(err)
		}
		fmt.Printf("  trace written to %s\n", *tracePath)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "ehsim: %v\n", err)
	os.Exit(1)
}

// sweepCaps fans one run per capacitance out over the sweep engine and
// prints a storage-axis comparison table in flag order.
func sweepCaps(caps []float64, setup func(c float64) lab.Setup,
	workload, supply, runtimeName string, workers int) {
	results, err := sweep.Labs(&sweep.Runner{Workers: workers}, len(caps),
		func(c sweep.Case) lab.Setup { return setup(caps[c.Index]) })
	if err != nil {
		fail(err)
	}
	fmt.Printf("storage sweep: %s on %s, runtime=%s, %d cases\n",
		workload, supply, runtimeName, len(caps))
	fmt.Printf("%-10s %-12s %-8s %-10s %-10s %-12s %-12s\n",
		"C", "completions", "wrong", "snapshots", "brownouts", "energy/op", "harvested")
	for i, res := range results {
		eop := "∞"
		if res.Completions > 0 {
			eop = units.Format(res.EnergyPerCompletion(), "J")
		}
		fmt.Printf("%-10s %-12d %-8d %-10d %-10d %-12s %-12s\n",
			units.Format(caps[i], "F"), res.Completions, res.WrongResults,
			res.Stats.SavesStarted, res.Stats.BrownOuts, eop,
			units.Format(res.HarvestedJ, "J"))
	}
}

// parseCap parses values like "10u", "470u", "6m", "0.01".
func parseCap(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "u"):
		mult, s = 1e-6, strings.TrimSuffix(s, "u")
	case strings.HasSuffix(s, "m"):
		mult, s = 1e-3, strings.TrimSuffix(s, "m")
	case strings.HasSuffix(s, "n"):
		mult, s = 1e-9, strings.TrimSuffix(s, "n")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("invalid capacitance %q", s)
	}
	return v * mult, nil
}

func pickWorkload(name string, l programs.Layout) (*programs.Workload, error) {
	switch name {
	case "fft64":
		return programs.FFT(64, l), nil
	case "fft256":
		return programs.FFT(256, l), nil
	case "crc256":
		return programs.CRC16(256, l), nil
	case "sieve3000":
		return programs.Sieve(3000, l), nil
	case "fib24":
		return programs.Fib(24, l), nil
	default:
		return nil, fmt.Errorf("unknown workload %q", name)
	}
}

func pickSupply(name string) (source.VoltageSource, error) {
	switch name {
	case "square":
		return &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100}, nil
	case "sine20":
		return source.HalfWave(&source.SignalGenerator{Amplitude: 4.5, Frequency: 20, Rs: 100}, 0.2), nil
	case "wind":
		t := &source.WindTurbine{PeakVoltage: 4.5, ACFrequency: 8, GustStart: 0.3,
			GustRise: 0.5, GustHold: 2.2, GustFall: 0.8, Rs: 150}
		return source.HalfWave(t, 0.2), nil
	case "dc":
		return &source.ConstantVoltage{V: 3.3, Rs: 100}, nil
	case "solar":
		// Indoor PV behind a boost converter: present the power source as
		// a soft voltage source via Thevenin equivalent at ~1 mW.
		return &source.ConstantVoltage{V: 3.0, Rs: 3000}, nil
	case "rf":
		gated := &source.GatedVoltage{
			Source:  &source.ConstantVoltage{V: 3.3, Rs: 400},
			Windows: [][2]float64{},
		}
		// RF illumination: 300 ms bursts every second.
		for t := 0.0; t < 3600; t += 1.0 {
			gated.Windows = append(gated.Windows, [2]float64{t, t + 0.3})
		}
		return gated, nil
	default:
		return nil, fmt.Errorf("unknown supply %q", name)
	}
}

func pickRuntime(name string, c float64) (func(d *mcu.Device) mcu.Runtime, error) {
	switch name {
	case "none":
		return nil, nil
	case "hibernus":
		return func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernus(d, c, 1.1, 0.35)
		}, nil
	case "hibernus++":
		return func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernusPP(d)
		}, nil
	case "mementos":
		return func(d *mcu.Device) mcu.Runtime {
			return transient.NewMementos(d, 2.2)
		}, nil
	case "quickrecall":
		return func(d *mcu.Device) mcu.Runtime {
			return transient.NewQuickRecall(d, c, 1.1, 0.35)
		}, nil
	case "hibernus-pn":
		return func(d *mcu.Device) mcu.Runtime {
			return powerneutral.NewHibernusPN(d, c, 1.1, 0.35, 3.0)
		}, nil
	default:
		return nil, fmt.Errorf("unknown runtime %q", name)
	}
}
