package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goldenDir = "../../testdata/golden"

// runCLI executes the CLI in-process and captures its streams.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errb)
	return code, out.String(), errb.String()
}

// The CLI half of the exploration golden corpus: ehsim-explore must
// print exactly the bytes committed under testdata/golden for every
// curated exploration. internal/result's golden test pins
// RunExploration against the same files (and owns the -update flag), so
// the CLI, the daemon's /v1/explorations result path, and the corpus
// stay mutually byte-identical.
func TestGoldenExplorationCLIOutput(t *testing.T) {
	paths, err := filepath.Glob("../../examples/explorations/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no exploration specs found: %v", err)
	}
	for _, path := range paths {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		if name == "eq5-crossover" && testing.Short() {
			continue // tens of seconds of simulation; the result suite covers it
		}
		t.Run(name, func(t *testing.T) {
			code, out, errb := runCLI(t, "-spec", path)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errb)
			}
			want, err := os.ReadFile(filepath.Join(goldenDir, "exploration-"+name+".txt"))
			if err != nil {
				t.Fatalf("missing golden file (go test ./internal/result -run TestGolden -update): %v", err)
			}
			if out != string(want) {
				t.Errorf("CLI output differs from golden\n--- want\n%s\n--- got\n%s", want, out)
			}
		})
	}
}

func TestSpecFromStdin(t *testing.T) {
	data, err := os.ReadFile("../../examples/explorations/eq4-capacitor-topk.json")
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-spec", "-"}, bytes.NewReader(data), &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	want, err := os.ReadFile(filepath.Join(goldenDir, "exploration-eq4-capacitor-topk.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("stdin run differs from golden")
	}
}

func TestMissingSpecFlagIsUsageError(t *testing.T) {
	code, _, errb := runCLI(t)
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errb, "-spec is required") {
		t.Errorf("stderr %q lacks the usage hint", errb)
	}
}

func TestBadSpecIsRuntimeError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"name": "x"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errb := runCLI(t, "-spec", path)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if errb == "" {
		t.Error("no error message on stderr")
	}
}
