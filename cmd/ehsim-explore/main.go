// Command ehsim-explore runs a design-space exploration spec
// (internal/explore): a base scenario plus a search strategy — dense
// grid scan, bisection on an objective difference (e.g. the eq. 5
// FRAM-vs-SRAM break-even), or successive grid refinement around the
// incumbent — with streaming top-k and Pareto-frontier aggregators
// reducing the evaluation stream in bounded memory.
//
// Objectives are the structured metrics every scenario model reports
// (`ehsim -list` prints each model's metric keys). Execution and
// rendering go through internal/explore — the same path the ehsimd
// service runs for POST /v1/explorations — so the printed report is
// byte-identical to the daemon's /result body for the same spec.
//
// Usage:
//
//	ehsim-explore -spec examples/explorations/eq5-crossover.json
//	ehsim-explore -spec examples/explorations/fig5-pareto.json -workers 8
//	jq '.strategy.tolerance = "0.1m"' spec.json | ehsim-explore -spec -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/explore"
	"repro/internal/result"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes, and
// returns the process exit code.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ehsim-explore", flag.ContinueOnError)
	fs.SetOutput(stderr)
	specPath := fs.String("spec", "", "exploration spec (JSON); - reads stdin (required)")
	workers := fs.Int("workers", 0, "probe evaluation parallelism (0 = one per core)")
	progress := fs.Bool("progress", false, "report probe completions on stderr")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *specPath == "" {
		fmt.Fprintln(stderr, "ehsim-explore: -spec is required (see -h)")
		return 2
	}
	if err := runExploration(*specPath, *workers, *progress, stdin, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "ehsim-explore: %v\n", err)
		return 1
	}
	return 0
}

func runExploration(path string, workers int, progress bool,
	stdin io.Reader, stdout, stderr io.Writer) error {
	var es *explore.Spec
	var err error
	if path == "-" {
		data, rerr := io.ReadAll(stdin)
		if rerr != nil {
			return fmt.Errorf("reading spec from stdin: %w", rerr)
		}
		es, err = explore.Parse(data)
	} else {
		es, err = explore.Load(path)
	}
	if err != nil {
		return err
	}

	opts := result.Options{Workers: workers}
	if progress {
		opts.Progress = func(done, total int) {
			fmt.Fprintf(stderr, "ehsim-explore: %d/%d probes\n", done, total)
		}
	}
	rep, err := result.RunExploration(es, opts)
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, rep.Text)
	return err
}
