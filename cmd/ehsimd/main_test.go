package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/scenario"
	"repro/internal/service"
)

// syncBuf is a goroutine-safe bytes.Buffer: run writes from the server
// goroutine while the test polls.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

const bootSpec = `{
	"name": "daemon-smoke",
	"workload": "fib24",
	"storage": {"c": "10u"},
	"source": {"name": "dc"},
	"duration": 0.002
}`

var listenRE = regexp.MustCompile(`listening on (\S+)`)

func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out, errb syncBuf
	exit := make(chan int, 1)
	go func() { exit <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &out, &errb) }()

	// Wait for the daemon to announce its (dynamically chosen) address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", out.String(), errb.String())
		}
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(bootSpec))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%+v)", resp.StatusCode, st)
	}

	for deadline := time.Now().Add(30 * time.Second); ; {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.State == service.JobDone {
			break
		}
		if st.State == service.JobFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	r, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	sp, err := scenario.Parse([]byte(bootSpec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := result.RunSpec(sp, result.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != rep.Text {
		t.Errorf("daemon result diverges from shared renderer:\n%s\n---\n%s", body, rep.Text)
	}

	// Signal-path shutdown: cancel the context and expect a clean drain.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, stderr: %s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after shutdown")
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Errorf("missing drain log, stdout: %s", out.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h exited %d", code)
	}
	if !strings.Contains(errb.String(), "-addr") {
		t.Errorf("usage should mention -addr: %s", errb.String())
	}
}

func TestBadAddrFails(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}
