package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/scenario"
	"repro/internal/service"
)

// syncBuf is a goroutine-safe bytes.Buffer: run writes from the server
// goroutine while the test polls.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

const bootSpec = `{
	"name": "daemon-smoke",
	"workload": "fib24",
	"storage": {"c": "10u"},
	"source": {"name": "dc"},
	"duration": 0.002
}`

var listenRE = regexp.MustCompile(`listening on (\S+)`)

func TestDaemonEndToEnd(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var out, errb syncBuf
	exit := make(chan int, 1)
	go func() { exit <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &out, &errb) }()

	// Wait for the daemon to announce its (dynamically chosen) address.
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", out.String(), errb.String())
		}
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(bootSpec))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d (%+v)", resp.StatusCode, st)
	}

	for deadline := time.Now().Add(30 * time.Second); ; {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.State == service.JobDone {
			break
		}
		if st.State == service.JobFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}

	r, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	sp, err := scenario.Parse([]byte(bootSpec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := result.RunSpec(sp, result.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != rep.Text {
		t.Errorf("daemon result diverges from shared renderer:\n%s\n---\n%s", body, rep.Text)
	}

	// Signal-path shutdown: cancel the context and expect a clean drain.
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("exit code %d, stderr: %s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after shutdown")
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Errorf("missing drain log, stdout: %s", out.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-h"}, &out, &errb); code != 0 {
		t.Errorf("-h exited %d", code)
	}
	if !strings.Contains(errb.String(), "-addr") {
		t.Errorf("usage should mention -addr: %s", errb.String())
	}
}

func TestBadAddrFails(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(context.Background(), []string{"-addr", "256.0.0.1:bad"}, &out, &errb); code != 1 {
		t.Errorf("exit %d, want 1 (stderr: %s)", code, errb.String())
	}
}

// bootDaemon starts run() with args in a goroutine and waits for the
// announced listen address. Returns the base URL, the output buffers,
// the exit channel, and the cancel that triggers the SIGTERM drain
// path.
func bootDaemon(t *testing.T, args []string) (string, *syncBuf, *syncBuf, chan int, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out, errb := &syncBuf{}, &syncBuf{}
	exit := make(chan int, 1)
	go func() { exit <- run(ctx, args, out, errb) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(out.String()); m != nil {
			return "http://" + m[1], out, errb, exit, cancel
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("daemon never announced its address; stdout=%q stderr=%q", out.String(), errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// shutdownDaemon drives the signal path and waits for a clean exit.
func shutdownDaemon(t *testing.T, cancel context.CancelFunc, exit chan int, errb *syncBuf) {
	t.Helper()
	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d, stderr: %s", code, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after shutdown")
	}
}

// runJobOn submits bootSpec and waits it out, returning the terminal
// status and the result body plus its X-Spec-Hash header.
func runJobOn(t *testing.T, base string) (service.JobStatus, string, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(bootSpec))
	if err != nil {
		t.Fatal(err)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for deadline := time.Now().Add(30 * time.Second); ; {
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.State == service.JobDone {
			break
		}
		if st.State == service.JobFailed || time.Now().After(deadline) {
			t.Fatalf("job did not complete: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	r, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	hash := r.Header.Get("X-Spec-Hash")
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d: %s", r.StatusCode, body)
	}
	return st, string(body), hash
}

// The crash/restart cycle: a daemon with -cache-dir computes a result,
// drains out on SIGTERM, and a fresh daemon over the same directory
// serves the resubmission from disk — cached, byte-identical, same
// content address.
func TestDaemonRestartServesPersistedResult(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-addr", "127.0.0.1:0", "-cache-dir", dir}

	base1, _, errb1, exit1, cancel1 := bootDaemon(t, args)
	st1, body1, hash1 := runJobOn(t, base1)
	if st1.Cached {
		t.Fatal("first run unexpectedly cached")
	}
	shutdownDaemon(t, cancel1, exit1, errb1)

	base2, out2, errb2, exit2, cancel2 := bootDaemon(t, args)
	defer shutdownDaemon(t, cancel2, exit2, errb2)
	if !strings.Contains(out2.String(), "1 entries resident") {
		t.Errorf("restarted daemon did not report the persisted entry: %q", out2.String())
	}
	st2, body2, hash2 := runJobOn(t, base2)
	if !st2.Cached || st2.Source != service.SourceDisk {
		t.Errorf("restarted daemon: cached=%v source=%q, want a disk hit", st2.Cached, st2.Source)
	}
	if body2 != body1 {
		t.Error("restarted daemon served different bytes than the original run")
	}
	if hash1 == "" || hash2 != hash1 {
		t.Errorf("X-Spec-Hash %q / %q, want identical non-empty content addresses", hash1, hash2)
	}
}

// -peers without -self is a configuration error, caught at startup.
func TestPeersRequireSelf(t *testing.T) {
	var out, errb bytes.Buffer
	code := run(context.Background(), []string{"-peers", "http://127.0.0.1:1"}, &out, &errb)
	if code != 2 {
		t.Errorf("exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-self") {
		t.Errorf("error should point at -self: %s", errb.String())
	}
}
