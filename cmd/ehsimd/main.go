// Command ehsimd serves the simulator as a long-running HTTP daemon:
// scenario specs (the same JSON documents ehsim -scenario runs) are
// submitted as jobs, executed on a bounded worker pool, cached by
// content address, and served back byte-identical to the CLI's output.
//
// The REST surface (see docs/API.md for the full reference):
//
//	POST   /v1/jobs               submit a spec; 429 + Retry-After under backpressure
//	GET    /v1/jobs/{id}          poll status and progress
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/result   the report (byte-identical to ehsim -scenario)
//	GET    /v1/jobs/{id}/trace    the V_CC trace (full chunked CSV, or ?from=&to=&points= for a decimated window)
//	POST   /v1/batches            submit N specs; completions stream back as NDJSON
//	GET    /v1/cache/{hash}       peer cache lookup (encoded result blob)
//	PUT    /v1/cache/{hash}       peer cache push (replication to the hash's owner)
//	GET    /v1/registry           machine-readable ehsim -list
//	GET    /metrics               queue/cache/work/disk/peer counters
//
// With -cache-dir, computed results are written through to a disk CAS
// and survive restarts. With -peers/-self, nodes federate: each spec
// hash has an owner on a rendezvous ring, lookups consult the owner's
// cache before computing, and computed results replicate to their
// owner.
//
// On SIGINT/SIGTERM the daemon stops accepting work and drains. With
// -cache-dir, running jobs are checkpointed to <cache-dir>/checkpoints
// instead of discarded: the next boot with the same -cache-dir resumes
// them from the saved engine state and the finished result is
// byte-identical to an uninterrupted run. Without a cache dir, accepted
// jobs run to completion before exit.
//
// Usage:
//
//	ehsimd -addr :8080 -cache-dir /var/cache/ehsimd
//	curl -s -XPOST --data-binary @examples/scenarios/fig7-rectified-sine-hibernus.json localhost:8080/v1/jobs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/cas"
	"repro/internal/service"
)

// splitPeers parses the -peers list: comma-separated base URLs, blanks
// skipped, trailing slashes trimmed so ring identities compare cleanly.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimRight(strings.TrimSpace(p), "/")
		if p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it serves until ctx is canceled (or
// the listener fails) and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ehsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	queue := fs.Int("queue", 64, "job queue depth (submissions beyond it get 429)")
	jobs := fs.Int("jobs", 2, "jobs executed concurrently")
	workers := fs.Int("workers", 0, "per-job sweep parallelism (0 = one per core)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight HTTP requests")
	cacheDir := fs.String("cache-dir", "", "disk result cache directory (empty = memory-only; survives restarts)")
	cacheBytes := fs.Int64("cache-bytes", 256<<20, "disk cache byte budget (oldest results evicted beyond it)")
	peersFlag := fs.String("peers", "", "comma-separated base URLs of the other cluster nodes")
	self := fs.String("self", "", "this node's advertised base URL (required with -peers)")
	peerTimeout := fs.Duration("peer-timeout", 2*time.Second, "per-peer cache operation bound; slower peers are treated as misses")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	peers := splitPeers(*peersFlag)
	if len(peers) > 0 && *self == "" {
		fmt.Fprintln(stderr, "ehsimd: -peers requires -self (this node's advertised URL on the ring)")
		return 2
	}

	var store *cas.Store
	var ckpts *service.CheckpointStore
	if *cacheDir != "" {
		var err error
		store, err = cas.Open(*cacheDir, cas.Options{BudgetBytes: *cacheBytes})
		if err != nil {
			fmt.Fprintf(stderr, "ehsimd: opening cache dir: %v\n", err)
			return 1
		}
		ckpts, err = service.OpenCheckpointStore(filepath.Join(*cacheDir, "checkpoints"))
		if err != nil {
			fmt.Fprintf(stderr, "ehsimd: opening checkpoint store: %v\n", err)
			return 1
		}
	}

	svc := service.New(service.Config{
		QueueDepth:   *queue,
		JobWorkers:   *jobs,
		SweepWorkers: *workers,
		CAS:          store,
		Checkpoints:  ckpts,
		SelfURL:      strings.TrimRight(*self, "/"),
		Peers:        peers,
		PeerTimeout:  *peerTimeout,
	}).Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ehsimd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "ehsimd: listening on %s (queue=%d, jobs=%d)\n", ln.Addr(), *queue, *jobs)
	if store != nil {
		fmt.Fprintf(stdout, "ehsimd: disk cache at %s (%d entries resident, budget %d bytes)\n", *cacheDir, store.Len(), *cacheBytes)
	}
	if ckpts != nil {
		// Resume off the serving path: each checkpoint is resubmitted
		// through the normal queue, so boot stays fast and resumed jobs
		// respect the same concurrency bounds as fresh ones.
		go func() {
			if n := svc.ResumeCheckpoints(ctx); n > 0 {
				fmt.Fprintf(stdout, "ehsimd: resumed %d checkpointed job(s)\n", n)
			}
		}()
	}
	if len(peers) > 0 {
		fmt.Fprintf(stdout, "ehsimd: federated as %s with %d peer(s)\n", *self, len(peers))
	}

	hs := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "ehsimd: %v\n", err)
			return 1
		}
	case <-ctx.Done():
		// Restore default signal handling first: a second SIGINT/SIGTERM
		// during a long drain force-kills instead of being swallowed by
		// the already-canceled context.
		signal.Reset(os.Interrupt, syscall.SIGTERM)
		// Drain first: new submissions already get 503, but the HTTP
		// surface stays up throughout, so clients can keep polling and
		// fetch the results of the jobs being finished. Only then close
		// the server.
		fmt.Fprintln(stdout, "ehsimd: shutting down, draining accepted jobs (second signal force-kills)")
		svc.Drain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(stderr, "ehsimd: shutdown: %v\n", err)
		}
		fmt.Fprintln(stdout, "ehsimd: drained, exiting")
	}
	return 0
}
