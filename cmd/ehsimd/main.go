// Command ehsimd serves the simulator as a long-running HTTP daemon:
// scenario specs (the same JSON documents ehsim -scenario runs) are
// submitted as jobs, executed on a bounded worker pool, cached by
// content address, and served back byte-identical to the CLI's output.
//
// The REST surface (see docs/API.md for the full reference):
//
//	POST   /v1/jobs               submit a spec; 429 + Retry-After under backpressure
//	GET    /v1/jobs/{id}          poll status and progress
//	DELETE /v1/jobs/{id}          cancel
//	GET    /v1/jobs/{id}/result   the report (byte-identical to ehsim -scenario)
//	GET    /v1/jobs/{id}/trace    the V_CC trace, streamed as chunked CSV
//	GET    /v1/registry           machine-readable ehsim -list
//	GET    /metrics               queue/cache/work counters
//
// On SIGINT/SIGTERM the daemon stops accepting work, finishes every
// accepted job, and exits.
//
// Usage:
//
//	ehsimd -addr :8080
//	curl -s -XPOST --data-binary @examples/scenarios/fig7-rectified-sine-hibernus.json localhost:8080/v1/jobs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it serves until ctx is canceled (or
// the listener fails) and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ehsimd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address")
	queue := fs.Int("queue", 64, "job queue depth (submissions beyond it get 429)")
	jobs := fs.Int("jobs", 2, "jobs executed concurrently")
	workers := fs.Int("workers", 0, "per-job sweep parallelism (0 = one per core)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "shutdown grace for in-flight HTTP requests")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	svc := service.New(service.Config{
		QueueDepth:   *queue,
		JobWorkers:   *jobs,
		SweepWorkers: *workers,
	}).Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "ehsimd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "ehsimd: listening on %s (queue=%d, jobs=%d)\n", ln.Addr(), *queue, *jobs)

	hs := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "ehsimd: %v\n", err)
			return 1
		}
	case <-ctx.Done():
		// Restore default signal handling first: a second SIGINT/SIGTERM
		// during a long drain force-kills instead of being swallowed by
		// the already-canceled context.
		signal.Reset(os.Interrupt, syscall.SIGTERM)
		// Drain first: new submissions already get 503, but the HTTP
		// surface stays up throughout, so clients can keep polling and
		// fetch the results of the jobs being finished. Only then close
		// the server.
		fmt.Fprintln(stdout, "ehsimd: shutting down, draining accepted jobs (second signal force-kills)")
		svc.Drain()
		sctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fmt.Fprintf(stderr, "ehsimd: shutdown: %v\n", err)
		}
		fmt.Fprintln(stdout, "ehsimd: drained, exiting")
	}
	return 0
}
