// Command figures regenerates every figure and equation reproduction from
// the paper: it runs each registered experiment, prints the textual report,
// and (with -out) writes the recorded time series as CSV files suitable
// for external plotting.
//
// Experiments are independent, so they are fanned out over the sweep
// engine's worker pool (one worker per core by default; -workers to
// override) and reported in registration order — the output is
// byte-identical to a serial run.
//
// Usage:
//
//	figures [-out DIR] [-only ID] [-workers N]
//
// With no flags it runs everything and prints to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/sweep"
)

func main() {
	outDir := flag.String("out", "", "directory to write CSV traces and reports into")
	only := flag.String("only", "", "run a single experiment by ID (e.g. fig7)")
	workers := flag.Int("workers", 0, "experiment-level parallelism (0 = one per core)")
	flag.Parse()

	exps := experiments.All()
	if *only != "" {
		e, ok := experiments.ByID(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "figures: unknown experiment %q; available:\n", *only)
			for _, e := range exps {
				fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.ID, e.Title)
			}
			os.Exit(2)
		}
		exps = []experiments.Experiment{e}
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
	}

	// Fan the experiments out; a failure in one must not abort the rest,
	// so errors are carried per case instead of through the sweep error.
	type ran struct {
		out *experiments.Output
		err error
	}
	// Live progress goes to stderr so stdout stays byte-identical to a
	// serial run.
	runner := &sweep.Runner{Workers: *workers}
	if len(exps) > 1 {
		runner.OnProgress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "figures: %d/%d experiments done\n", done, total)
		}
	}
	runs, _ := sweep.Map(runner, len(exps),
		func(c sweep.Case) (ran, error) {
			out, err := exps[c.Index].Run()
			return ran{out: out, err: err}, nil
		})

	failed := 0
	for i, e := range exps {
		fmt.Printf("running %s: %s\n", e.ID, e.Title)
		out, err := runs[i].out, runs[i].err
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(out.Render())
		if *outDir == "" {
			continue
		}
		report := filepath.Join(*outDir, e.ID+".txt")
		if err := os.WriteFile(report, []byte(out.Render()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "figures: write %s: %v\n", report, err)
			failed++
		}
		if out.Recorder != nil {
			csvPath := filepath.Join(*outDir, e.ID+".csv")
			f, err := os.Create(csvPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				failed++
				continue
			}
			if err := out.Recorder.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "figures: write %s: %v\n", csvPath, err)
				failed++
			}
			f.Close()
			fmt.Printf("wrote %s\n", csvPath)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
