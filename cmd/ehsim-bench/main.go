// Command ehsim-bench runs the fixed benchmark suite — every curated
// spec under examples/scenarios at 1 and 8 workers — and writes a
// machine-readable BENCH_<rev>.json with ns per simulated second, steps
// per second, and allocation counts per cell.
//
// With -baseline it additionally compares the fresh measurement against
// a committed BENCH_*.json: a per-cell speedup column (new/old steps per
// second) is printed for every cell present in both files, and the exit
// code is non-zero when any cell regressed beyond -tolerance.
// Cross-machine comparisons are indicative only; use a generous tolerance
// in CI and exact before/after pairs (same host) when quoting speedups.
// See docs/BENCHMARKS.md.
//
// -cpuprofile/-memprofile capture pprof profiles of the measurement
// itself, for digging into where a hot-path regression (or win) lives.
//
// Usage:
//
//	ehsim-bench -rev $(git rev-parse --short HEAD)
//	ehsim-bench -out BENCH_pr.json -baseline BENCH_baseline.json -tolerance 1.0
//	ehsim-bench -runs 1 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ehsim-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rev := fs.String("rev", "dev", "revision label recorded in the output")
	out := fs.String("out", "", "output path (default BENCH_<rev>.json)")
	dir := fs.String("scenarios", "examples/scenarios", "directory of scenario specs to measure")
	runs := fs.Int("runs", 3, "repetitions per cell (best run is reported)")
	baseline := fs.String("baseline", "", "BENCH_*.json to compare against")
	tolerance := fs.Float64("tolerance", 0.5, "allowed ns/sim-second growth vs baseline (0.5 = 50%)")
	quiet := fs.Bool("q", false, "suppress per-cell progress")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the measured runs to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile (after the runs) to this file")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "ehsim-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "ehsim-bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	progress := func(cell string) {
		if !*quiet {
			fmt.Fprintf(stderr, "bench: %s\n", cell)
		}
	}
	results, err := bench.Suite(*dir, *runs, progress)
	if err != nil {
		fmt.Fprintf(stderr, "ehsim-bench: %v\n", err)
		return 1
	}
	f := bench.NewFile(*rev, results)

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *rev)
	}
	if err := f.Write(path); err != nil {
		fmt.Fprintf(stderr, "ehsim-bench: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	for _, r := range results {
		fmt.Fprintf(stdout, "  %-32s workers=%d  %12.0f ns/sim-s  %11.0f steps/s  %8d allocs\n",
			r.Name, r.Workers, r.NsPerSimSecond, r.StepsPerSecond, r.AllocsPerRun)
	}

	if *memprofile != "" {
		mf, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(stderr, "ehsim-bench: %v\n", err)
			return 1
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			mf.Close()
			fmt.Fprintf(stderr, "ehsim-bench: %v\n", err)
			return 1
		}
		mf.Close()
	}

	if *baseline != "" {
		base, err := bench.LoadFile(*baseline)
		if err != nil {
			fmt.Fprintf(stderr, "ehsim-bench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "speedup vs %s (rev %s):\n", *baseline, base.Rev)
		for _, s := range bench.Speedups(base, f) {
			fmt.Fprintf(stdout, "  %-32s workers=%d  %11.0f -> %11.0f steps/s  %5.2fx\n",
				s.Name, s.Workers, s.BaseStepsPerSecond, s.StepsPerSecond, s.Ratio)
		}
		regs := bench.Compare(base, f, *tolerance)
		if len(regs) > 0 {
			fmt.Fprintf(stderr, "ehsim-bench: %d cell(s) regressed beyond %.0f%% vs %s:\n",
				len(regs), *tolerance*100, *baseline)
			for _, r := range regs {
				fmt.Fprintf(stderr, "  %s\n", r)
			}
			return 1
		}
		fmt.Fprintf(stdout, "no regressions vs %s (tolerance %.0f%%)\n", *baseline, *tolerance*100)
	}
	return 0
}
