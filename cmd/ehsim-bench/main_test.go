package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

const tinySpec = `{
	"name": "cli-bench-tiny",
	"workload": "fib24",
	"storage": {"c": "10u"},
	"source": {"name": "dc"},
	"duration": 0.002
}`

func writeTiny(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tiny.json"), []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunWritesBenchFile(t *testing.T) {
	dir := writeTiny(t)
	out := filepath.Join(t.TempDir(), "BENCH_x.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scenarios", dir, "-runs", "1", "-out", out, "-q"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	f, err := bench.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 2 || f.Results[0].Name != "cli-bench-tiny" {
		t.Fatalf("unexpected results: %+v", f.Results)
	}
	if !strings.Contains(stdout.String(), "cli-bench-tiny") {
		t.Errorf("summary missing cell: %s", stdout.String())
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := writeTiny(t)
	tmp := t.TempDir()
	out := filepath.Join(tmp, "BENCH_x.json")
	cpu := filepath.Join(tmp, "cpu.pprof")
	mem := filepath.Join(tmp, "mem.pprof")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scenarios", dir, "-runs", "1", "-out", out, "-q",
		"-cpuprofile", cpu, "-memprofile", mem}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunBaselineGate(t *testing.T) {
	dir := writeTiny(t)
	tmp := t.TempDir()
	first := filepath.Join(tmp, "base.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-scenarios", dir, "-runs", "1", "-out", first, "-q"}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline run exit %d: %s", code, stderr.String())
	}

	// Comparing against itself with any tolerance passes.
	stdout.Reset()
	stderr.Reset()
	second := filepath.Join(tmp, "second.json")
	if code := run([]string{"-scenarios", dir, "-runs", "1", "-out", second, "-q",
		"-baseline", first, "-tolerance", "10"}, &stdout, &stderr); code != 0 {
		t.Fatalf("self-compare exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "no regressions") {
		t.Errorf("missing pass notice: %s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "speedup vs") || !strings.Contains(stdout.String(), "x\n") {
		t.Errorf("missing speedup ratio column: %s", stdout.String())
	}

	// A doctored too-fast baseline must trip the gate.
	base, err := bench.LoadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Results {
		base.Results[i].NsPerSimSecond /= 1e6
	}
	fast := filepath.Join(tmp, "fast.json")
	if err := base.Write(fast); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-scenarios", dir, "-runs", "1", "-out", second, "-q",
		"-baseline", fast, "-tolerance", "0.5"}, &stdout, &stderr); code != 1 {
		t.Fatalf("regression gate did not trip: exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "regressed") {
		t.Errorf("missing regression report: %s", stderr.String())
	}
}
