// Command ehsimvet is the repo's custom vettool: the internal/lint
// analyzer suite behind the `go vet -vettool` unit-checker protocol,
// plus a standalone package-pattern mode for direct runs.
//
// Vettool mode (what CI's lint job runs):
//
//	go build -o /tmp/ehsimvet ./cmd/ehsimvet
//	go vet -vettool=/tmp/ehsimvet ./...
//
// The go command invokes the tool once per package with a JSON config
// file (import maps, export-data locations, source lists); ehsimvet
// typechecks from that config — no network, no reanalysis of
// dependencies — runs the suite, and prints findings in the standard
// file:line:col form, failing the vet run when any survive.
//
// Standalone mode takes package patterns directly:
//
//	go run ./cmd/ehsimvet ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && (args[0] == "-V=full" || args[0] == "-V") {
		// The go command fingerprints vet tools via -V=full and caches
		// per-package results under the reported build ID, so the ID
		// must change when the tool does: hash our own executable.
		fmt.Printf("ehsimvet version devel buildID=%s\n", selfID())
		return
	}
	if len(args) > 0 && args[0] == "-flags" {
		// The go command asks which flags the tool accepts (as a JSON
		// array) before building the vet command line. The suite is not
		// configurable: exceptions live in the source as //lint:allow.
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: ehsimvet <packages>  (or: go vet -vettool=ehsimvet <packages>)")
		os.Exit(2)
	}
	os.Exit(standalone(args))
}

// selfID returns a content hash of the running executable ("unknown"
// when it cannot be read — the go command then just caches less).
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:12])
}

// standalone loads patterns through the go list pipeline and analyzes
// every matched package.
func standalone(patterns []string) int {
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		for _, d := range lint.Run(pkg, lint.All()) {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		return 1
	}
	return 0
}

// vetConfig mirrors the configuration the go command writes for vet
// tools (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string
	ImportMap    map[string]string
	PackageFile  map[string]string
	Standard     map[string]bool
	PackageVetx  map[string]string
	VetxOnly     bool
	VetxOutput   string

	SucceedOnTypecheckFailure bool
}

// unitcheck analyzes the single package described by cfgFile per the
// go vet unit-checker protocol, returning the process exit code.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ehsimvet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ehsimvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The suite computes no cross-package facts, but the go command
	// caches the vetx output file as the action's result — write it
	// first so dependency-only invocations are cheap cache hits.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("ehsimvet/v1 no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "ehsimvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "ehsimvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if cfg.Compiler != "gc" {
		fmt.Fprintf(os.Stderr, "ehsimvet: unsupported compiler %q\n", cfg.Compiler)
		return 1
	}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return gc.Import(path)
	})
	tpkg, info, err := lint.TypeCheck(fset, cfg.ImportPath, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ehsimvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &lint.Package{
		PkgPath: cfg.ImportPath,
		Name:    tpkg.Name(),
		Fset:    fset,
		Files:   files,
		Pkg:     tpkg,
		Info:    info,
	}
	diags := lint.Run(pkg, lint.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
