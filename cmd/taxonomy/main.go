// Command taxonomy prints the paper's Fig. 2 classification table: every
// reference system placed by storage autonomy, axis, adaptation class and
// region.
//
// Usage:
//
//	taxonomy [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	asJSON := flag.Bool("json", false, "emit the registry as JSON instead of a table")
	flag.Parse()

	if *asJSON {
		type row struct {
			Name         string  `json:"name"`
			Ref          string  `json:"ref"`
			StorageJ     float64 `json:"storage_j"`
			AutonomySec  float64 `json:"autonomy_sec"`
			Axis         string  `json:"axis"`
			Adaptation   string  `json:"adaptation"`
			PowerNeutral bool    `json:"power_neutral"`
			EnergyDriven bool    `json:"energy_driven"`
		}
		var rows []row
		for _, s := range core.ByAutonomy(core.Registry()) {
			rows = append(rows, row{
				Name: s.Name, Ref: s.Ref, StorageJ: s.StorageJ,
				AutonomySec: s.AutonomySec(), Axis: s.Axis(),
				Adaptation: s.Adaptation.String(), PowerNeutral: s.PowerNeutral,
				EnergyDriven: s.EnergyDriven,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			fmt.Fprintf(os.Stderr, "taxonomy: %v\n", err)
			os.Exit(1)
		}
		return
	}

	e, ok := experiments.ByID("fig2")
	if !ok {
		fmt.Fprintln(os.Stderr, "taxonomy: fig2 experiment missing")
		os.Exit(1)
	}
	out, err := e.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "taxonomy: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(out.Render())
}
