// Command evm is the standalone EVM-16 toolchain driver: assemble a
// source file, disassemble the image, or run a program on a flat memory
// and print the final register state.
//
// Usage:
//
//	evm asm  prog.s            assemble; print segment map and symbols
//	evm dis  prog.s            assemble then disassemble
//	evm run  prog.s [-steps N] assemble and execute until HALT
//	evm demo fft|crc|sieve|fib print a generated workload's source
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/isa"
	"repro/internal/programs"
	"repro/internal/units"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	switch cmd {
	case "asm":
		withProgram(args, func(p *isa.Program, _ string) {
			fmt.Printf("entry: 0x%04x\n", p.Entry)
			fmt.Printf("size:  %d bytes in %d segments\n", p.Size(), len(p.Segments))
			for _, seg := range p.Segments {
				fmt.Printf("  segment 0x%04x..0x%04x (%d bytes)\n",
					seg.Addr, int(seg.Addr)+len(seg.Data)-1, len(seg.Data))
			}
			fmt.Println("symbols:")
			for name, addr := range p.Labels {
				fmt.Printf("  %-20s 0x%04x\n", name, addr)
			}
		})
	case "dis":
		withProgram(args, func(p *isa.Program, _ string) {
			ram := &isa.FlatRAM{}
			p.LoadInto(ram)
			for _, seg := range p.Segments {
				for _, line := range isa.Disassemble(ram, seg.Addr, uint16(len(seg.Data))) {
					fmt.Println(line)
				}
			}
		})
	case "run":
		fs := flag.NewFlagSet("run", flag.ExitOnError)
		steps := fs.Int("steps", 10_000_000, "maximum instructions")
		rest := fs.Args()
		if err := fs.Parse(args); err != nil {
			fail(err)
		}
		rest = fs.Args()
		if len(rest) != 1 {
			usage()
		}
		src, err := os.ReadFile(rest[0])
		if err != nil {
			fail(err)
		}
		p, err := isa.Assemble(string(src))
		if err != nil {
			fail(err)
		}
		ram := &isa.FlatRAM{}
		p.LoadInto(ram)
		c := &isa.Core{Bus: ram}
		c.Reset(p.Entry)
		c.R[isa.SP] = 0xff00
		c.Sys = func(code uint16, core *isa.Core) {
			fmt.Printf("SYS #%d: r1=0x%04x r2=0x%04x\n", code, core.R[1], core.R[2])
			if code == programs.SysDone {
				core.Halted = true
			}
		}
		n, err := c.Run(*steps)
		if err != nil {
			fail(err)
		}
		fmt.Printf("retired %d instructions, %d cycles (%s at 8 MHz)\n",
			n, c.Cycles, units.FormatSeconds(float64(c.Cycles)/8e6))
		for i, v := range c.R {
			fmt.Printf("  r%-2d = 0x%04x (%d)\n", i, v, int16(v))
		}
		fmt.Printf("  pc  = 0x%04x  halted=%v\n", c.PC, c.Halted)
	case "demo":
		if len(args) != 1 {
			usage()
		}
		l := programs.DefaultLayout()
		var w *programs.Workload
		switch args[0] {
		case "fft":
			w = programs.FFT(64, l)
		case "crc":
			w = programs.CRC16(64, l)
		case "sieve":
			w = programs.Sieve(1000, l)
		case "fib":
			w = programs.Fib(24, l)
		default:
			usage()
		}
		fmt.Printf("; workload %s — expected result 0x%04x in r1 at SYS #%d\n",
			w.Name, w.Expected, programs.SysDone)
		fmt.Print(w.Source)
	default:
		usage()
	}
}

func withProgram(args []string, f func(p *isa.Program, path string)) {
	if len(args) != 1 {
		usage()
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		fail(err)
	}
	p, err := isa.Assemble(string(src))
	if err != nil {
		fail(err)
	}
	f(p, args[0])
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "evm: %v\n", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  evm asm  prog.s            assemble; print segments and symbols
  evm dis  prog.s            assemble then disassemble
  evm run  prog.s [-steps N] assemble and execute until HALT/SYS done
  evm demo fft|crc|sieve|fib print a generated workload's source`)
	os.Exit(2)
}
