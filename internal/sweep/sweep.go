// Package sweep is the lab's parallel experiment engine: it fans a set of
// independent simulation cases out over a worker pool and collects their
// results deterministically — ordered by case index, independent of
// goroutine scheduling or GOMAXPROCS.
//
// Every reproduction in this repo is a sweep of some parameter — storage
// capacitance (eq. 3), threshold margin (eq. 4), outage frequency (eq. 5),
// runtime policy, duty cycle — and every case is an isolated, deterministic
// simulation, so the whole experiment suite is embarrassingly parallel.
// The engine has three pieces:
//
//   - Case: one unit of work, carrying its index, a human-readable name,
//     a derived per-case seed, and (for grid sweeps) its parameter values.
//   - Grid: a declarative cross product over named parameter axes that
//     expands into cases in a fixed row-major order.
//   - Runner: the worker pool. Map, Setups, Labs and MapGrid drive a
//     Runner over cases and return results indexed exactly like the input.
//
// Determinism contract: fn is called once per case, cases may run in any
// order and concurrently, but results[i] always holds case i's output, and
// the error returned is always the error of the lowest-indexed failing
// case. A sweep therefore produces byte-identical output whether it runs
// on one worker or sixteen.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/lab"
)

// ErrCanceled is returned by the mapping functions when the runner's
// Cancel channel stopped the sweep before every case could run.
var ErrCanceled = errors.New("sweep: canceled")

// Case identifies one unit of work in a sweep.
type Case struct {
	Index int    // position in the sweep, 0-based; results[Index] is this case's slot
	Name  string // human-readable label, e.g. "C=47µF/margin=1.10"
	Seed  int64  // per-case deterministic seed, derived from Runner.BaseSeed and Index

	// Values holds the grid coordinates when the case was expanded from a
	// Grid (nil for plain Map/Labs cases). Use Float/Int/Bool/Val to read.
	Values map[string]any
}

// Val returns the named grid value (nil if absent).
func (c Case) Val(name string) any { return c.Values[name] }

// Float returns the named grid value as a float64 (0 if absent or not a
// float64).
func (c Case) Float(name string) float64 {
	v, _ := c.Values[name].(float64)
	return v
}

// Int returns the named grid value as an int (0 if absent or not an int).
func (c Case) Int(name string) int {
	v, _ := c.Values[name].(int)
	return v
}

// Bool returns the named grid value as a bool (false if absent or not a
// bool).
func (c Case) Bool(name string) bool {
	v, _ := c.Values[name].(bool)
	return v
}

// Runner is a worker pool configuration for sweeps. The zero value (and a
// nil *Runner) is ready to use: one worker per CPU, no progress reporting,
// base seed 0.
type Runner struct {
	// Workers is the pool size; ≤0 means GOMAXPROCS.
	Workers int

	// BaseSeed parameterises the per-case seeds: each case receives a
	// seed mixed from BaseSeed and its index, so two sweeps with the same
	// BaseSeed see identical per-case seeds regardless of worker count.
	BaseSeed int64

	// OnProgress, if non-nil, is called after each case completes with the
	// number done so far and the total. Calls are serialised and done is
	// strictly increasing, but the order in which specific cases finish is
	// scheduling-dependent — use it for progress bars, not bookkeeping.
	OnProgress func(done, total int)

	// Cancel, if non-nil, makes the sweep abortable: once the channel is
	// closed no new case starts — in-flight cases run to completion — and
	// the mapping function returns ErrCanceled. Cancellation that arrives
	// after every case has been claimed is too late to prevent any work,
	// so the sweep completes normally. Case errors take precedence over
	// cancellation in the returned error.
	Cancel <-chan struct{}
}

// canceled reports whether the runner's Cancel channel has been closed.
func (r *Runner) canceled() bool {
	if r == nil || r.Cancel == nil {
		return false
	}
	select {
	case <-r.Cancel:
		return true
	default:
		return false
	}
}

// workers resolves the pool size.
func (r *Runner) workers(n int) int {
	w := 0
	if r != nil {
		w = r.Workers
	}
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// caseSeed derives a per-case seed from the base seed and case index with
// a splitmix64-style mix, so neighbouring indices get uncorrelated seeds.
func caseSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// Map runs fn over n cases on the runner's worker pool and returns the
// results in case-index order. r may be nil for defaults.
//
// If any case fails, Map waits for in-flight cases, skips cases not yet
// started, and returns a nil slice and the error of the lowest-indexed
// failing case (which is deterministic: cases are claimed in index order,
// so the lowest-indexed failure always runs to completion).
func Map[T any](r *Runner, n int, fn func(c Case) (T, error)) ([]T, error) {
	cases := make([]Case, n)
	base := int64(0)
	if r != nil {
		base = r.BaseSeed
	}
	for i := range cases {
		cases[i] = Case{Index: i, Name: fmt.Sprintf("case %d", i), Seed: caseSeed(base, i)}
	}
	return mapCases(r, cases, fn)
}

// MapGrid expands the grid into its cross-product cases and runs fn over
// them; results are ordered row-major (first axis slowest, last fastest).
func MapGrid[T any](r *Runner, g *Grid, fn func(c Case) (T, error)) ([]T, error) {
	base := int64(0)
	if r != nil {
		base = r.BaseSeed
	}
	return mapCases(r, g.cases(base), fn)
}

// Setups runs lab.Run over each setup in parallel. results[i] corresponds
// to setups[i].
func Setups(r *Runner, setups []lab.Setup) ([]lab.Result, error) {
	return Map(r, len(setups), func(c Case) (lab.Result, error) {
		return lab.Run(setups[c.Index])
	})
}

// Labs builds one lab.Setup per case and runs them all in parallel — the
// shape of most figure reproductions: a builder closure over the swept
// parameter.
func Labs(r *Runner, n int, build func(c Case) lab.Setup) ([]lab.Result, error) {
	return Map(r, n, func(c Case) (lab.Result, error) {
		return lab.Run(build(c))
	})
}

// MapCases runs fn over an explicit case slice — cases that were already
// expanded (and possibly partitioned) by the caller, e.g. a checkpointing
// driver resuming a sweep from the first incomplete wave. results[i]
// corresponds to cases[i]; the cases keep their original names and seeds,
// so error attribution and per-case determinism are unchanged.
func MapCases[T any](r *Runner, cases []Case, fn func(c Case) (T, error)) ([]T, error) {
	return mapCases(r, cases, fn)
}

// mapCases is the engine core: an index-claiming worker pool with
// index-ordered collection and lowest-index error selection.
func mapCases[T any](r *Runner, cases []Case, fn func(c Case) (T, error)) ([]T, error) {
	n := len(cases)
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	errs := make([]error, n)

	var (
		next     atomic.Int64 // next unclaimed case index
		failed   atomic.Bool  // set on first failure: stop claiming new cases
		canceled atomic.Bool  // set when Cancel stopped a claim
		mu       sync.Mutex   // serialises OnProgress
		done     int
		wg       sync.WaitGroup
		workers  = r.workers(n)
	)
	report := func() {
		if r == nil || r.OnProgress == nil {
			return
		}
		mu.Lock()
		done++
		r.OnProgress(done, n)
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if r.canceled() {
					canceled.Store(true)
					return
				}
				out, err := fn(cases[i])
				if err != nil {
					errs[i] = err
					failed.Store(true)
				} else {
					results[i] = out
				}
				report()
			}
		}()
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: %w", cases[i].Name, err)
		}
	}
	if canceled.Load() {
		return nil, ErrCanceled
	}
	return results, nil
}
