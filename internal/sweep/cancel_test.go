package sweep

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestCancelStopsClaimingNewCases(t *testing.T) {
	cancel := make(chan struct{})
	var ran atomic.Int32
	r := &Runner{Workers: 2, Cancel: cancel}
	res, err := Map(r, 100, func(c Case) (int, error) {
		if ran.Add(1) == 1 {
			close(cancel) // cancel from inside the first finishing case
		}
		return c.Index, nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Errorf("canceled sweep returned results")
	}
	// In-flight cases finish (≤ Workers of them), but no new claims start
	// once the channel is closed.
	if n := ran.Load(); n < 1 || n > 10 {
		t.Errorf("ran %d cases after cancel, want a small handful", n)
	}
}

func TestCancelBeforeStartRunsNothing(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	var ran atomic.Int32
	_, err := Map(&Runner{Cancel: cancel}, 8, func(c Case) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d cases ran under a pre-closed cancel", ran.Load())
	}
}

func TestCancelAfterAllClaimedIsTooLate(t *testing.T) {
	cancel := make(chan struct{})
	r := &Runner{Workers: 1, Cancel: cancel}
	res, err := Map(r, 3, func(c Case) (int, error) {
		if c.Index == 2 {
			close(cancel) // the last case is already claimed
		}
		return c.Index + 1, nil
	})
	if err != nil {
		t.Fatalf("cancel after the final claim should not abort: %v", err)
	}
	if len(res) != 3 || res[2] != 3 {
		t.Errorf("results = %v", res)
	}
}

func TestCaseErrorWinsOverCancel(t *testing.T) {
	cancel := make(chan struct{})
	r := &Runner{Workers: 1, Cancel: cancel}
	boom := errors.New("boom")
	_, err := Map(r, 5, func(c Case) (int, error) {
		close(cancel)
		return 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the case error", err)
	}
}

func TestNilCancelIsInert(t *testing.T) {
	res, err := Map(&Runner{Workers: 4}, 16, func(c Case) (int, error) {
		return c.Index, nil
	})
	if err != nil || len(res) != 16 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}
