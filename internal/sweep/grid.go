package sweep

import (
	"fmt"
	"strings"
)

// axis is one named dimension of a Grid.
type axis struct {
	name   string
	values []any
	labels []string
}

// Grid is a declarative cross product over named parameter axes. Axes
// expand row-major: the first axis added varies slowest, the last varies
// fastest, so
//
//	NewGrid().Floats("c", 10e-6, 47e-6).Bools("unified", false, true)
//
// yields cases (10µ,false), (10µ,true), (47µ,false), (47µ,true) — a fixed
// order the collection side can rely on when rebuilding tables.
type Grid struct {
	axes []axis
}

// NewGrid returns an empty grid.
func NewGrid() *Grid { return &Grid{} }

// Axis adds a dimension with arbitrary values (runtime constructors,
// workloads, configs...). Labels default to %v of each value.
func (g *Grid) Axis(name string, values ...any) *Grid {
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("%v", v)
	}
	g.axes = append(g.axes, axis{name: name, values: values, labels: labels})
	return g
}

// Labels overrides the display labels of the most recently added axis
// (len(labels) must match that axis's value count).
func (g *Grid) Labels(labels ...string) *Grid {
	if len(g.axes) == 0 {
		panic("sweep: Labels before any Axis")
	}
	last := &g.axes[len(g.axes)-1]
	if len(labels) != len(last.values) {
		panic(fmt.Sprintf("sweep: axis %q has %d values, got %d labels",
			last.name, len(last.values), len(labels)))
	}
	last.labels = labels
	return g
}

// Floats adds a float64-valued dimension.
func (g *Grid) Floats(name string, values ...float64) *Grid {
	vs := make([]any, len(values))
	for i, v := range values {
		vs[i] = v
	}
	return g.Axis(name, vs...)
}

// Ints adds an int-valued dimension.
func (g *Grid) Ints(name string, values ...int) *Grid {
	vs := make([]any, len(values))
	for i, v := range values {
		vs[i] = v
	}
	return g.Axis(name, vs...)
}

// Bools adds a bool-valued dimension.
func (g *Grid) Bools(name string, values ...bool) *Grid {
	vs := make([]any, len(values))
	for i, v := range values {
		vs[i] = v
	}
	return g.Axis(name, vs...)
}

// Size returns the number of cases the cross product expands to.
func (g *Grid) Size() int {
	n := 1
	for _, a := range g.axes {
		n *= len(a.values)
	}
	if len(g.axes) == 0 {
		return 0
	}
	return n
}

// Cases expands the cross product into cases (seeds derived from base 0).
// MapGrid does this internally; Cases is exported for callers that want to
// inspect or schedule the expansion themselves.
func (g *Grid) Cases() []Case { return g.cases(0) }

// cases expands the grid with per-case seeds derived from base.
func (g *Grid) cases(base int64) []Case {
	n := g.Size()
	out := make([]Case, 0, n)
	for i := 0; i < n; i++ {
		vals := make(map[string]any, len(g.axes))
		var name strings.Builder
		rem := i
		// Row-major: decode from the fastest (last) axis upward, then
		// render the name in declaration order.
		idx := make([]int, len(g.axes))
		for a := len(g.axes) - 1; a >= 0; a-- {
			k := len(g.axes[a].values)
			idx[a] = rem % k
			rem /= k
		}
		for a, ax := range g.axes {
			vals[ax.name] = ax.values[idx[a]]
			if a > 0 {
				name.WriteByte('/')
			}
			fmt.Fprintf(&name, "%s=%s", ax.name, ax.labels[idx[a]])
		}
		out = append(out, Case{Index: i, Name: name.String(), Seed: caseSeed(base, i), Values: vals})
	}
	return out
}
