package sweep

import (
	"fmt"
	"math"
	"strings"
)

// axis is one named dimension of a Grid.
type axis struct {
	name   string
	values []any
	labels []string
}

// Grid is a declarative cross product over named parameter axes. Axes
// expand row-major: the first axis added varies slowest, the last varies
// fastest, so
//
//	NewGrid().Floats("c", 10e-6, 47e-6).Bools("unified", false, true)
//
// yields cases (10µ,false), (10µ,true), (47µ,false), (47µ,true) — a fixed
// order the collection side can rely on when rebuilding tables.
type Grid struct {
	axes []axis
}

// NewGrid returns an empty grid.
func NewGrid() *Grid { return &Grid{} }

// Axis adds a dimension with arbitrary values (runtime constructors,
// workloads, configs...). Labels default to %v of each value.
func (g *Grid) Axis(name string, values ...any) *Grid {
	labels := make([]string, len(values))
	for i, v := range values {
		labels[i] = fmt.Sprintf("%v", v)
	}
	g.axes = append(g.axes, axis{name: name, values: values, labels: labels})
	return g
}

// Labels overrides the display labels of the most recently added axis
// (len(labels) must match that axis's value count).
func (g *Grid) Labels(labels ...string) *Grid {
	if len(g.axes) == 0 {
		panic("sweep: Labels before any Axis")
	}
	last := &g.axes[len(g.axes)-1]
	if len(labels) != len(last.values) {
		panic(fmt.Sprintf("sweep: axis %q has %d values, got %d labels",
			last.name, len(last.values), len(labels)))
	}
	last.labels = labels
	return g
}

// Floats adds a float64-valued dimension.
func (g *Grid) Floats(name string, values ...float64) *Grid {
	vs := make([]any, len(values))
	for i, v := range values {
		vs[i] = v
	}
	return g.Axis(name, vs...)
}

// Ints adds an int-valued dimension.
func (g *Grid) Ints(name string, values ...int) *Grid {
	vs := make([]any, len(values))
	for i, v := range values {
		vs[i] = v
	}
	return g.Axis(name, vs...)
}

// Bools adds a bool-valued dimension.
func (g *Grid) Bools(name string, values ...bool) *Grid {
	vs := make([]any, len(values))
	for i, v := range values {
		vs[i] = v
	}
	return g.Axis(name, vs...)
}

// Size returns the number of cases the cross product expands to. It
// panics if the product overflows int — callers handling untrusted or
// machine-generated axes should use SizeChecked instead.
func (g *Grid) Size() int {
	n, err := g.SizeChecked()
	if err != nil {
		panic("sweep: " + err.Error())
	}
	return n
}

// SizeChecked returns the number of cases the cross product expands to,
// or an error when the per-axis product overflows int. Before this
// check existed the multiplication wrapped silently, so a pathological
// grid (say five axes of 100k values) could report a small, or even
// negative, size and make every index-based consumer miscount.
func (g *Grid) SizeChecked() (int, error) {
	if len(g.axes) == 0 {
		return 0, nil
	}
	n := 1
	for _, a := range g.axes {
		k := len(a.values)
		if k != 0 && n > math.MaxInt/k {
			return 0, fmt.Errorf("grid size overflows int: %d axes, product exceeds %d cases at axis %q",
				len(g.axes), math.MaxInt, a.name)
		}
		n *= k
	}
	return n, nil
}

// Cases expands the cross product into cases (seeds derived from base 0).
// MapGrid does this internally; Cases is exported for callers that want to
// inspect or schedule the expansion themselves.
func (g *Grid) Cases() []Case { return g.cases(0) }

// CaseAt returns case i of the cross product without materialising the
// other cases: the row-major decode is O(axes), so a caller can stream a
// huge grid one case at a time in bounded memory. It is equivalent to
// Cases()[i] (same name, seed, and values) and panics when i is outside
// [0, Size()).
func (g *Grid) CaseAt(i int) Case { return g.caseAt(0, i) }

// caseAt builds case i with a per-case seed derived from base.
func (g *Grid) caseAt(base int64, i int) Case {
	n := g.Size()
	if i < 0 || i >= n {
		panic(fmt.Sprintf("sweep: CaseAt(%d) out of range for a grid of %d cases", i, n))
	}
	vals := make(map[string]any, len(g.axes))
	var name strings.Builder
	rem := i
	// Row-major: decode from the fastest (last) axis upward, then
	// render the name in declaration order.
	idx := make([]int, len(g.axes))
	for a := len(g.axes) - 1; a >= 0; a-- {
		k := len(g.axes[a].values)
		idx[a] = rem % k
		rem /= k
	}
	for a, ax := range g.axes {
		vals[ax.name] = ax.values[idx[a]]
		if a > 0 {
			name.WriteByte('/')
		}
		fmt.Fprintf(&name, "%s=%s", ax.name, ax.labels[idx[a]])
	}
	return Case{Index: i, Name: name.String(), Seed: caseSeed(base, i), Values: vals}
}

// cases expands the grid with per-case seeds derived from base.
func (g *Grid) cases(base int64) []Case {
	n := g.Size()
	out := make([]Case, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.caseAt(base, i))
	}
	return out
}
