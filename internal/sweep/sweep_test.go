package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
)

// smallSetup is a cheap but real lab scenario (a few ms of simulated time)
// whose result depends visibly on the swept capacitance.
func smallSetup(c float64) lab.Setup {
	return lab.Setup{
		Workload: programs.Fib(10, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		VSource:  &source.ConstantVoltage{V: 3.3, Rs: 50},
		C:        c,
		Duration: 0.02,
	}
}

func TestMapOrdersResultsByIndex(t *testing.T) {
	out, err := Map(&Runner{Workers: 4}, 16, func(c Case) (int, error) {
		return c.Index * c.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("results[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestDeterminismAcrossWorkerCounts is the engine's core contract: the same
// sweep must produce identical results on one worker and on many,
// regardless of GOMAXPROCS.
func TestDeterminismAcrossWorkerCounts(t *testing.T) {
	caps := []float64{2e-6, 4.7e-6, 10e-6, 22e-6, 47e-6, 100e-6}
	run := func(workers, procs int) []lab.Result {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		res, err := Labs(&Runner{Workers: workers}, len(caps), func(c Case) lab.Setup {
			return smallSetup(caps[c.Index])
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1, 1)
	for _, cfg := range []struct{ workers, procs int }{{2, 2}, {8, 4}, {6, 8}} {
		parallel := run(cfg.workers, cfg.procs)
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d results, want %d", cfg.workers, len(parallel), len(serial))
		}
		for i := range serial {
			a, b := serial[i], parallel[i]
			// CompletionTimes is a slice; compare it and the scalar fields
			// exactly — bit-identical floats, not approximately equal.
			if a.Completions != b.Completions || a.ConsumedJ != b.ConsumedJ ||
				a.HarvestedJ != b.HarvestedJ || a.FinalV != b.FinalV ||
				!reflect.DeepEqual(a.CompletionTimes, b.CompletionTimes) ||
				a.Stats != b.Stats {
				t.Errorf("workers=%d procs=%d: case %d diverged from serial run",
					cfg.workers, cfg.procs, i)
			}
		}
	}
}

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	collect := func(workers int) []int64 {
		seeds := make([]int64, 32)
		_, err := Map(&Runner{Workers: workers, BaseSeed: 42}, 32, func(c Case) (int, error) {
			seeds[c.Index] = c.Seed
			return 0, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return seeds
	}
	a, b := collect(1), collect(8)
	if !reflect.DeepEqual(a, b) {
		t.Error("per-case seeds depend on worker count")
	}
	seen := map[int64]bool{}
	for _, s := range a {
		if seen[s] {
			t.Errorf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	// A different base seed must give different per-case seeds.
	other := make([]int64, 32)
	if _, err := Map(&Runner{BaseSeed: 43}, 32, func(c Case) (int, error) {
		other[c.Index] = c.Seed
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, other) {
		t.Error("base seed has no effect on case seeds")
	}
}

func TestErrorPropagatesLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		out, err := Map(&Runner{Workers: workers}, 64, func(c Case) (int, error) {
			if c.Index == 7 || c.Index == 40 {
				return 0, fmt.Errorf("case %d: %w", c.Index, boom)
			}
			return c.Index, nil
		})
		if out != nil {
			t.Errorf("workers=%d: results must be nil on error", workers)
		}
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error chain lost: %v", workers, err)
		}
		// The reported failure must be the lowest-indexed one — case 7 —
		// no matter how the pool scheduled case 40.
		if !strings.Contains(err.Error(), "case 7") {
			t.Errorf("workers=%d: err = %v, want the case-7 failure", workers, err)
		}
	}
}

func TestErrorStopsClaimingNewCases(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(&Runner{Workers: 1}, 1000, func(c Case) (int, error) {
		ran.Add(1)
		if c.Index == 3 {
			return 0, errors.New("fail fast")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n > 10 {
		t.Errorf("ran %d cases after the failure; claiming should stop", n)
	}
}

func TestProgressReporting(t *testing.T) {
	var calls []int
	last := 0
	_, err := Map(&Runner{Workers: 4, OnProgress: func(done, total int) {
		if total != 20 {
			t.Errorf("total = %d, want 20", total)
		}
		if done != last+1 {
			t.Errorf("done jumped %d → %d; must be strictly increasing by 1", last, done)
		}
		last = done
		calls = append(calls, done)
	}}, 20, func(c Case) (int, error) { return 0, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != 20 {
		t.Errorf("OnProgress called %d times, want 20", len(calls))
	}
}

func TestNilRunnerAndZeroCases(t *testing.T) {
	out, err := Map[int](nil, 0, func(c Case) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
	got, err := Map(nil, 3, func(c Case) (int, error) { return c.Index + 1, nil })
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("nil runner: out=%v err=%v", got, err)
	}
}

func TestGridCrossProduct(t *testing.T) {
	g := NewGrid().
		Floats("c", 10e-6, 47e-6, 100e-6).
		Bools("unified", false, true)
	if g.Size() != 6 {
		t.Fatalf("size = %d, want 6", g.Size())
	}
	cases := g.Cases()
	// Row-major: first axis slowest, last fastest.
	want := []struct {
		c   float64
		uni bool
	}{
		{10e-6, false}, {10e-6, true},
		{47e-6, false}, {47e-6, true},
		{100e-6, false}, {100e-6, true},
	}
	for i, w := range want {
		if cases[i].Float("c") != w.c || cases[i].Bool("unified") != w.uni {
			t.Errorf("case %d = %v, want c=%g unified=%v", i, cases[i].Values, w.c, w.uni)
		}
		if cases[i].Index != i {
			t.Errorf("case %d has Index %d", i, cases[i].Index)
		}
		if !strings.Contains(cases[i].Name, "c=") || !strings.Contains(cases[i].Name, "unified=") {
			t.Errorf("case %d name %q missing axis labels", i, cases[i].Name)
		}
	}
}

func TestGridLabelsAndAccessors(t *testing.T) {
	g := NewGrid().
		Floats("c", 10e-6, 330e-6).Labels("10µF", "330µF").
		Ints("freq", 2, 5).
		Axis("policy", "hillclimb", "proportional")
	cases := g.Cases()
	if len(cases) != 8 {
		t.Fatalf("size = %d, want 8", len(cases))
	}
	first := cases[0]
	if !strings.Contains(first.Name, "c=10µF") {
		t.Errorf("label override not applied: %q", first.Name)
	}
	if first.Int("freq") != 2 {
		t.Errorf("Int accessor = %d", first.Int("freq"))
	}
	if first.Val("policy").(string) != "hillclimb" {
		t.Errorf("Val accessor = %v", first.Val("policy"))
	}
	// Missing / mistyped lookups degrade to zero values.
	if first.Float("nope") != 0 || first.Int("policy") != 0 || first.Bool("c") {
		t.Error("typed accessors should zero-value on miss")
	}
}

func TestMapGridRunsEveryCell(t *testing.T) {
	g := NewGrid().Ints("a", 0, 1, 2).Ints("b", 0, 1)
	out, err := MapGrid(&Runner{Workers: 3}, g, func(c Case) (string, error) {
		return fmt.Sprintf("%d%d", c.Int("a"), c.Int("b")), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"00", "01", "10", "11", "20", "21"}
	if !reflect.DeepEqual(out, want) {
		t.Fatalf("grid order = %v, want %v", out, want)
	}
}

func TestSetups(t *testing.T) {
	setups := []lab.Setup{smallSetup(10e-6), smallSetup(47e-6)}
	res, err := Setups(nil, setups)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if r.Completions == 0 {
			t.Errorf("setup %d made no progress", i)
		}
	}
}
