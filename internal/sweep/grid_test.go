package sweep

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestCaseAtMatchesCases is the streaming contract: CaseAt(i) must equal
// Cases()[i] — same name, seed, and values — across randomized axis
// shapes, so a consumer can stream a grid without materialising it.
func TestCaseAtMatchesCases(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		g := NewGrid()
		nAxes := 1 + rng.Intn(4)
		for a := 0; a < nAxes; a++ {
			k := 1 + rng.Intn(5)
			switch rng.Intn(3) {
			case 0:
				vs := make([]float64, k)
				for i := range vs {
					vs[i] = rng.Float64() * 100
				}
				g.Floats(fmt.Sprintf("f%d", a), vs...)
			case 1:
				vs := make([]int, k)
				for i := range vs {
					vs[i] = rng.Intn(1000)
				}
				g.Ints(fmt.Sprintf("i%d", a), vs...)
			default:
				vs := make([]any, k)
				for i := range vs {
					vs[i] = fmt.Sprintf("name-%d", rng.Intn(100))
				}
				g.Axis(fmt.Sprintf("n%d", a), vs...)
			}
		}
		all := g.Cases()
		if len(all) != g.Size() {
			t.Fatalf("trial %d: len(Cases())=%d, Size()=%d", trial, len(all), g.Size())
		}
		for i, want := range all {
			got := g.CaseAt(i)
			if got.Name != want.Name || got.Seed != want.Seed || got.Index != want.Index {
				t.Fatalf("trial %d: CaseAt(%d)=%+v, Cases()[%d]=%+v", trial, i, got, i, want)
			}
			if !reflect.DeepEqual(got.Values, want.Values) {
				t.Fatalf("trial %d: CaseAt(%d).Values=%v, want %v", trial, i, got.Values, want.Values)
			}
		}
		// Non-zero seed bases must agree between the two paths too.
		seeded := g.cases(7)
		for i := range seeded {
			if got := g.caseAt(7, i); got.Seed != seeded[i].Seed {
				t.Fatalf("trial %d: caseAt(7,%d).Seed=%d, want %d", trial, i, got.Seed, seeded[i].Seed)
			}
		}
	}
}

// TestSizeCheckedOverflow pins the overflow fix: a cross product beyond
// int capacity must surface an error instead of wrapping silently.
func TestSizeCheckedOverflow(t *testing.T) {
	wide := make([]float64, 100_000)
	g := NewGrid()
	for a := 0; a < 5; a++ {
		g.Floats(fmt.Sprintf("axis%d", a), wide...) // (1e5)^5 = 1e25 >> MaxInt
	}
	if _, err := g.SizeChecked(); err == nil {
		t.Fatal("SizeChecked: want overflow error, got nil")
	} else if !strings.Contains(err.Error(), "overflows int") {
		t.Fatalf("SizeChecked error %q does not name the overflow", err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Size: want panic on overflow, got none")
		}
		if !strings.Contains(fmt.Sprint(r), "overflows int") {
			t.Fatalf("Size panic %v does not name the overflow", r)
		}
	}()
	g.Size()
}

// TestSizeCheckedBoundary exercises products right at the edge of int.
func TestSizeCheckedBoundary(t *testing.T) {
	g := NewGrid().Floats("a", make([]float64, 1<<16)...).
		Floats("b", make([]float64, 1<<16)...)
	n, err := g.SizeChecked()
	if err != nil || n != 1<<32 {
		t.Fatalf("SizeChecked = %d, %v; want %d, nil", n, err, 1<<32)
	}
	if math.MaxInt <= 1<<32 {
		t.Skip("32-bit int: the product above would overflow")
	}
}

// TestCaseAtOutOfRange pins the panic message: it must name the index
// and the grid size so a miscounting caller can see both at once.
func TestCaseAtOutOfRange(t *testing.T) {
	g := NewGrid().Floats("c", 1, 2, 3)
	for _, i := range []int{-1, 3, 100} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("CaseAt(%d): want panic, got none", i)
				}
				msg := fmt.Sprint(r)
				if !strings.Contains(msg, fmt.Sprintf("CaseAt(%d)", i)) || !strings.Contains(msg, "grid of 3 cases") {
					t.Fatalf("CaseAt(%d) panic %q does not name index and grid size", i, msg)
				}
			}()
			g.CaseAt(i)
		}()
	}
}

// TestEmptyGridSize: a grid with no axes has zero cases on both paths.
func TestEmptyGridSize(t *testing.T) {
	g := NewGrid()
	if n := g.Size(); n != 0 {
		t.Fatalf("empty grid Size = %d, want 0", n)
	}
	if cs := g.Cases(); len(cs) != 0 {
		t.Fatalf("empty grid Cases len = %d, want 0", len(cs))
	}
}
