package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/result"
	"repro/internal/scenario"
)

// tinySpec returns a fast-running single spec; the name salt lets tests
// mint distinct cache keys on demand.
func tinySpec(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002
	}`, name)
}

func tinySweepSpec(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002,
		"sweep": [{"param": "c", "values": ["4.7u", "10u"]}]
	}`, name)
}

// testServer boots a started service behind an httptest server.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg).Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// submit POSTs a spec and decodes the status.
func submit(t *testing.T, ts *httptest.Server, spec string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return st, resp
}

// await polls a job until it leaves the queued/running states.
func await(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != JobQueued && st.State != JobRunning {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not settle", id)
	return JobStatus{}
}

func getBody(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header
}

func TestSubmitRunsAndResultMatchesSharedRenderer(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, resp := submit(t, ts, tinySpec("svc-single"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if st.ID == "" || st.Hash == "" {
		t.Fatalf("bad status: %+v", st)
	}
	fin := await(t, ts, st.ID)
	if fin.State != JobDone || fin.Done != 1 || fin.Total != 1 {
		t.Fatalf("final status: %+v", fin)
	}

	code, body, hdr := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result status = %d: %s", code, body)
	}
	if hdr.Get("X-Spec-Hash") != st.Hash {
		t.Errorf("X-Spec-Hash = %q, want %q", hdr.Get("X-Spec-Hash"), st.Hash)
	}
	sp, err := scenario.Parse([]byte(tinySpec("svc-single")))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := result.RunSpec(sp, result.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if body != rep.Text {
		t.Errorf("daemon result diverges from the shared renderer:\n%s\n---\n%s", body, rep.Text)
	}
}

// TestCuratedSpecsServeByteIdentical submits every curated spec in
// examples/scenarios — all four scenario models — through the daemon
// and requires the served report to match the shared renderer byte for
// byte. This is the service half of the taxonomy-complete contract; the
// CLI half is cmd/ehsim's golden test over the same files.
func TestCuratedSpecsServeByteIdentical(t *testing.T) {
	paths, err := filepath.Glob("../../examples/scenarios/*.json")
	if err != nil || len(paths) == 0 {
		t.Fatalf("no curated specs: %v", err)
	}
	_, ts := testServer(t, Config{})
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			st, resp := submit(t, ts, string(data))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit status = %d", resp.StatusCode)
			}
			fin := await(t, ts, st.ID)
			if fin.State != JobDone {
				t.Fatalf("final status: %+v", fin)
			}
			code, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
			if code != http.StatusOK {
				t.Fatalf("result status = %d: %s", code, body)
			}
			sp, err := scenario.Parse(data)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := result.RunSpec(sp, result.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if body != rep.Text {
				t.Errorf("daemon result diverges from the shared renderer:\n%s\n---\n%s", body, rep.Text)
			}
			// Single-run jobs — every model — must also serve a trace.
			if !sp.HasSweep() {
				code, trc, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
				if code != http.StatusOK || !strings.HasPrefix(trc, "# spec-hash: "+st.Hash) {
					t.Errorf("trace status %d / missing spec-hash header:\n%.80s", code, trc)
				}
			}
		})
	}
}

func TestResubmitIdenticalSpecHitsCache(t *testing.T) {
	s, ts := testServer(t, Config{})
	st, _ := submit(t, ts, tinySpec("svc-cached"))
	await(t, ts, st.ID)

	st2, resp2 := submit(t, ts, tinySpec("svc-cached"))
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("cache-hit submit status = %d, want 200", resp2.StatusCode)
	}
	if st2.State != JobDone || !st2.Cached {
		t.Errorf("resubmission should be served from cache: %+v", st2)
	}
	if st2.Hash != st.Hash {
		t.Errorf("hash changed across identical submissions: %s vs %s", st.Hash, st2.Hash)
	}
	_, body1, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	_, body2, _ := getBody(t, ts.URL+"/v1/jobs/"+st2.ID+"/result")
	if body1 != body2 {
		t.Errorf("cached result differs from computed result")
	}
	m := s.Metrics()
	if m.CacheMisses != 1 || m.CacheHits != 1 {
		t.Errorf("metrics = hits %d / misses %d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	if m.SimSeconds != 0.002 {
		t.Errorf("SimSeconds = %g, want 0.002 (cache hits must not recount work)", m.SimSeconds)
	}
}

func TestParallelIdenticalSubmissionsSingleFlight(t *testing.T) {
	s, ts := testServer(t, Config{JobWorkers: 4})
	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := submit(t, ts, tinySpec("svc-flight"))
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()

	var text string
	for i, id := range ids {
		if id == "" {
			continue
		}
		fin := await(t, ts, id)
		if fin.State != JobDone {
			t.Fatalf("job %s: %+v", id, fin)
		}
		_, body, _ := getBody(t, ts.URL+"/v1/jobs/"+id+"/result")
		if i == 0 {
			text = body
		} else if body != text {
			t.Errorf("job %s result differs from job %s", id, ids[0])
		}
	}
	m := s.Metrics()
	if m.CacheMisses != 1 {
		t.Errorf("%d identical submissions computed %d times, want 1 (single-flight)", n, m.CacheMisses)
	}
	if m.CacheHits != n-1 {
		t.Errorf("cache hits = %d, want %d", m.CacheHits, n-1)
	}
	if int(m.JobsDone) != n {
		t.Errorf("jobs done = %d, want %d", m.JobsDone, n)
	}
}

func TestParallelDistinctSubmissionsAllCompute(t *testing.T) {
	s, ts := testServer(t, Config{JobWorkers: 4})
	const n = 6
	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, resp := submit(t, ts, tinySpec(fmt.Sprintf("svc-distinct-%d", i)))
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id == "" {
			continue
		}
		if fin := await(t, ts, id); fin.State != JobDone {
			t.Errorf("job %s: %+v", id, fin)
		}
	}
	m := s.Metrics()
	if m.CacheMisses != n || m.CacheHits != 0 {
		t.Errorf("metrics = hits %d / misses %d, want 0/%d", m.CacheHits, m.CacheMisses, n)
	}
}

func TestQueueBackpressure429(t *testing.T) {
	// Not yet started: the queue never drains, so the bound is observable
	// deterministically.
	s := New(Config{QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		_, resp := submit(t, ts, tinySpec(fmt.Sprintf("svc-bp-%d", i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d, want 202", i, resp.StatusCode)
		}
	}
	_, resp := submit(t, ts, tinySpec("svc-bp-overflow"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	// Deduplicated submissions ride the in-flight computation, not the
	// queue, so an identical spec is accepted even at capacity.
	if _, resp := submit(t, ts, tinySpec("svc-bp-0")); resp.StatusCode != http.StatusAccepted {
		t.Errorf("identical spec at capacity: status %d, want 202 (dedup bypasses the queue)", resp.StatusCode)
	}
	// An aborted overflow leader must not poison the cache key.
	s.Start()
	st, resp := submit(t, ts, tinySpec("svc-bp-overflow"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-overflow resubmit: status %d", resp.StatusCode)
	}
	if fin := await(t, ts, st.ID); fin.State != JobDone {
		t.Errorf("post-overflow resubmit: %+v", fin)
	}
	s.Drain()
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{}) // not started: jobs stay queued until Start
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _ := submit(t, ts, tinySpec("svc-cancel"))
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var got JobStatus
	json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if got.State != JobCanceled {
		t.Fatalf("cancel response state = %s", got.State)
	}
	code, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusGone {
		t.Errorf("canceled job result: status %d (%s), want 410", code, body)
	}
	// The canceled leader released its cache key: resubmission computes.
	s.Start()
	st2, _ := submit(t, ts, tinySpec("svc-cancel"))
	if fin := await(t, ts, st2.ID); fin.State != JobDone {
		t.Errorf("resubmit after cancel: %+v", fin)
	}
	s.Drain()
}

func TestResultNotReadyIs409(t *testing.T) {
	s := New(Config{}) // not started: the job stays queued
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()
	defer s.Start() // drain needs workers to consume the queued job

	st, _ := submit(t, ts, tinySpec("svc-pending"))
	code, _, hdr := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusConflict {
		t.Errorf("pending result: status %d, want 409", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("409 response missing Retry-After")
	}
}

func TestTraceEndpointStreamsCSVWithHash(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := submit(t, ts, tinySpec("svc-trace"))
	await(t, ts, st.ID)

	code, body, hdr := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("trace status = %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.HasPrefix(body, "# spec-hash: "+st.Hash+"\n") {
		t.Errorf("trace missing spec-hash header:\n%.120s", body)
	}
	if !strings.Contains(body, "t,vcc(V)") {
		t.Errorf("trace CSV columns missing:\n%.200s", body)
	}

	// Sweep jobs have no single trace.
	st2, _ := submit(t, ts, tinySweepSpec("svc-trace-sweep"))
	await(t, ts, st2.ID)
	if code, _, _ := getBody(t, ts.URL+"/v1/jobs/"+st2.ID+"/trace"); code != http.StatusNotFound {
		t.Errorf("sweep trace: status %d, want 404", code)
	}
}

func TestSweepJobReportsProgressAndResult(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := submit(t, ts, tinySweepSpec("svc-sweep"))
	fin := await(t, ts, st.ID)
	if fin.State != JobDone || !fin.Sweep || fin.Done != 2 || fin.Total != 2 {
		t.Fatalf("final status: %+v", fin)
	}
	_, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	for _, frag := range []string{"sweep over c, 2 cases", "c=4.7µF", "c=10µF"} {
		if !strings.Contains(body, frag) {
			t.Errorf("sweep result missing %q:\n%s", frag, body)
		}
	}
}

func TestInvalidSpecIs400(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"name":"bad","workload":"nope","storage":{"c":"10u"},"source":{"name":"dc"},"duration":1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(b, []byte("unknown workload")) {
		t.Errorf("error body should carry the registry message: %s", b)
	}
}

func TestDrainCompletesAcceptedJobsThenRejects(t *testing.T) {
	s := New(Config{}) // started only after both jobs are queued
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st1, _ := submit(t, ts, tinySpec("svc-drain-1"))
	st2, _ := submit(t, ts, tinySpec("svc-drain-2"))
	s.Start()
	s.Drain() // must run both queued jobs to completion before returning

	for _, id := range []string{st1.ID, st2.ID} {
		got, ok := s.Job(id)
		if !ok || got.State != JobDone {
			t.Errorf("after drain, job %s: %+v", id, got)
		}
	}
	_, resp := submit(t, ts, tinySpec("svc-drain-late"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d, want 503", resp.StatusCode)
	}
}

func TestRegistryEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, body, _ := getBody(t, ts.URL+"/v1/registry")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var reg struct {
		Engine    string          `json:"engine"`
		Models    []registryEntry `json:"models"`
		Workloads []registryEntry `json:"workloads"`
		Sources   []registryEntry `json:"sources"`
		Runtimes  []registryEntry `json:"runtimes"`
		Governors []registryEntry `json:"governors"`
	}
	if err := json.Unmarshal([]byte(body), &reg); err != nil {
		t.Fatalf("decoding registry: %v", err)
	}
	if reg.Engine != result.EngineVersion {
		t.Errorf("engine = %q", reg.Engine)
	}
	if len(reg.Models) != 4 || len(reg.Workloads) == 0 || len(reg.Sources) == 0 || len(reg.Runtimes) == 0 || len(reg.Governors) == 0 {
		t.Fatalf("registry sections empty or wrong: %s", body)
	}
	for _, frag := range []string{
		`"lab"`, `"mpsoc"`, `"taskburst"`, `"eneutral"`, `"taskenergy"`,
		"fft64", "rectified-sine", "hibernus-pn", "hillclimb", `"margin"`,
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("registry missing %q", frag)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := submit(t, ts, tinySpec("svc-metrics"))
	await(t, ts, st.ID)
	submit(t, ts, tinySpec("svc-metrics"))

	code, body, _ := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, frag := range []string{
		"ehsimd_jobs_done_total 2",
		"ehsimd_cache_hits_total 1",
		"ehsimd_cache_misses_total 1",
		"ehsimd_cache_hit_ratio 0.5",
		"ehsimd_sim_seconds_total 0.002",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("metrics missing %q:\n%s", frag, body)
		}
	}
}

// Regression: the queue-depth gauge used to report the *configured
// bound* (a constant) instead of the number of pending jobs, and the
// free-slot gauge was mislabelled as capacity. With jobs parked in the
// queue (no workers started), depth must track them and depth + free
// must equal the configured bound.
func TestQueueDepthTracksPendingJobs(t *testing.T) {
	s := New(Config{QueueDepth: 4}) // deliberately not Started: jobs stay queued
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	check := func(wantDepth int) {
		t.Helper()
		m := s.Metrics()
		if m.QueueBound != 4 {
			t.Fatalf("QueueBound = %d, want 4", m.QueueBound)
		}
		if m.QueueDepth != wantDepth {
			t.Errorf("QueueDepth = %d, want %d", m.QueueDepth, wantDepth)
		}
		if m.QueueDepth+m.QueueCapacity != m.QueueBound {
			t.Errorf("depth %d + free %d != bound %d", m.QueueDepth, m.QueueCapacity, m.QueueBound)
		}
	}
	check(0)
	submit(t, ts, tinySpec("svc-depth-a"))
	check(1)
	st, _ := submit(t, ts, tinySpec("svc-depth-b"))
	check(2)

	code, body, _ := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, frag := range []string{
		"ehsimd_queue_depth 2",
		"ehsimd_queue_bound 4",
		"ehsimd_queue_free 2",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("metrics missing %q:\n%s", frag, body)
		}
	}

	// Canceling a queued job frees its slot immediately.
	if _, ok := s.Cancel(st.ID); !ok {
		t.Fatal("cancel failed")
	}
	check(1)
}

func TestJobsListing(t *testing.T) {
	_, ts := testServer(t, Config{})
	a, _ := submit(t, ts, tinySpec("svc-list-a"))
	b, _ := submit(t, ts, tinySpec("svc-list-b"))
	await(t, ts, a.ID)
	await(t, ts, b.ID)
	code, body, _ := getBody(t, ts.URL+"/v1/jobs")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 2 || listing.Jobs[0].ID != a.ID || listing.Jobs[1].ID != b.ID {
		t.Errorf("listing = %+v", listing.Jobs)
	}
}

func TestJobHistoryPrunesOldestFinished(t *testing.T) {
	s, ts := testServer(t, Config{JobHistory: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		st, _ := submit(t, ts, tinySpec(fmt.Sprintf("svc-hist-%d", i)))
		await(t, ts, st.ID)
		ids = append(ids, st.ID)
	}
	if n := len(s.Jobs()); n != 2 {
		t.Errorf("registry retains %d jobs, want 2", n)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Errorf("oldest finished job %s should be pruned", ids[0])
	}
	if _, ok := s.Job(ids[3]); !ok {
		t.Errorf("newest job %s should survive", ids[3])
	}
}

func TestOversizedSweepRejectedAtSubmit(t *testing.T) {
	_, ts := testServer(t, Config{})
	// Three 60-point axes expand to 216k cases — over the grid bound
	// scenario.Validate enforces, surfaced as a 400 here.
	var pts []string
	for i := 0; i < 60; i++ {
		pts = append(pts, fmt.Sprintf("%g", 1e-6+float64(i)*1e-7))
	}
	vals := strings.Join(pts, ",")
	spec := fmt.Sprintf(`{
		"name": "svc-huge-grid",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002,
		"sweep": [
			{"param": "c", "values": [%s]},
			{"param": "duration", "values": [%s]},
			{"param": "v0", "values": [%s]}
		]
	}`, vals, vals, vals)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized sweep: status %d, want 400", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(b, []byte("cases")) {
		t.Errorf("error should explain the case bound: %s", b)
	}
}

func TestPruneSparesTheJobJustSubmitted(t *testing.T) {
	// With a history bound of 1, a cache-hit resubmission is born
	// finished and would be the prune's natural victim — but the id just
	// handed to the client must stay pollable.
	_, ts := testServer(t, Config{JobHistory: 1})
	st, _ := submit(t, ts, tinySpec("svc-prune-self"))
	await(t, ts, st.ID)
	st2, resp := submit(t, ts, tinySpec("svc-prune-self"))
	if resp.StatusCode != http.StatusOK || st2.State != JobDone {
		t.Fatalf("resubmit: status %d, %+v", resp.StatusCode, st2)
	}
	if code, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st2.ID); code != http.StatusOK {
		t.Errorf("just-returned job id %s: status %d (%s), want 200", st2.ID, code, body)
	}
}

func TestSubmitReportsTotalUpfront(t *testing.T) {
	s := New(Config{}) // not started: jobs stay queued
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Drain()
	defer s.Start()

	st, _ := submit(t, ts, tinySpec("svc-total-single"))
	if st.Total != 1 || st.Done != 0 {
		t.Errorf("single queued job progress = %d/%d, want 0/1", st.Done, st.Total)
	}
	st, _ = submit(t, ts, tinySweepSpec("svc-total-sweep"))
	if st.Total != 2 || st.Done != 0 {
		t.Errorf("sweep queued job progress = %d/%d, want 0/2", st.Done, st.Total)
	}
}

func TestTraceIntervalBoundsLongRuns(t *testing.T) {
	if got := traceInterval(0.5); got != result.TraceInterval {
		t.Errorf("short run interval = %g, want default %g", got, result.TraceInterval)
	}
	long := 3600.0
	got := traceInterval(long)
	if got <= result.TraceInterval {
		t.Errorf("long run interval = %g, want stretched above %g", got, result.TraceInterval)
	}
	// float division noise can land a fraction above the cap; a single
	// sample of slack is immaterial.
	if samples := long / got; samples > maxTraceSamples+1 {
		t.Errorf("long run still records %.0f samples, cap is %d", samples, maxTraceSamples)
	}
}

func TestCancelRunningSingleRunAbortsPromptly(t *testing.T) {
	_, ts := testServer(t, Config{})
	// A duration this long would take minutes of wall-clock; the test
	// passes only because cancellation interrupts the stepping loop.
	spec := `{
		"name": "svc-cancel-running",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 600
	}`
	st, _ := submit(t, ts, spec)
	// Wait until it is actually running, then cancel.
	for deadline := time.Now().Add(10 * time.Second); ; {
		got, _ := pollJob(t, ts, st.ID)
		if got.State == JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %+v", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fin := await(t, ts, st.ID); fin.State != JobCanceled {
		t.Errorf("final state = %s, want canceled", fin.State)
	}
}

// pollJob fetches a job status (helper for polling loops that need the
// raw state).
func pollJob(t *testing.T, ts *httptest.Server, id string) (JobStatus, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return JobStatus{}, false
	}
	return st, true
}

func TestFollowerBoundStopsRetryStorms(t *testing.T) {
	// Followers have their own bound (= queue depth, here 1). Not
	// started, so the leader stays queued; followers of the same spec
	// must hit the bound instead of growing without limit.
	s := New(Config{QueueDepth: 1, JobWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, resp := submit(t, ts, tinySpec("svc-active")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("leader: status %d", resp.StatusCode)
	}
	if _, resp := submit(t, ts, tinySpec("svc-active")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first follower: status %d", resp.StatusCode)
	}
	_, resp := submit(t, ts, tinySpec("svc-active"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("follower beyond the active bound: status %d, want 429", resp.StatusCode)
	}
	s.Start()
	s.Drain()
}

func TestCancelFreesQueueSlots(t *testing.T) {
	// Not started: jobs stay pending. Canceling a queued job must free
	// its queue slot immediately — no tombstones wedging intake while
	// workers are busy.
	s := New(Config{QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, resp := submit(t, ts, tinySpec("svc-slot-a"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	if _, resp := submit(t, ts, tinySpec("svc-slot-b")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue full: status %d, want 429", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if r, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		r.Body.Close()
	}
	st2, resp := submit(t, ts, tinySpec("svc-slot-b"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-cancel submit: status %d, want 202 (slot freed)", resp.StatusCode)
	}
	s.Start()
	if fin := await(t, ts, st2.ID); fin.State != JobDone {
		t.Errorf("replacement job: %+v", fin)
	}
	s.Drain()
}

func TestCacheHitServedEvenWhenSaturated(t *testing.T) {
	// Active bound = QueueDepth 1 + default 2 workers = 3.
	s, ts := testServer(t, Config{QueueDepth: 1})
	cached, _ := submit(t, ts, tinySpec("svc-sat-cached"))
	await(t, ts, cached.ID)

	// Saturate: two long-running jobs occupy both workers, a third
	// fills the queue.
	longSpec := func(i int) string {
		return fmt.Sprintf(`{
			"name": "svc-sat-long-%d",
			"workload": "fib24",
			"storage": {"c": "10u"},
			"source": {"name": "dc"},
			"duration": 600
		}`, i)
	}
	var longIDs []string
	for i := 0; i < 3; i++ {
		st, resp := submit(t, ts, longSpec(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("long submit %d: status %d", i, resp.StatusCode)
		}
		longIDs = append(longIDs, st.ID)
	}
	defer func() { // interrupt the long runs so Drain stays fast
		for _, id := range longIDs {
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
			if r, err := http.DefaultClient.Do(req); err == nil {
				r.Body.Close()
			}
		}
	}()
	for deadline := time.Now().Add(10 * time.Second); ; {
		m := s.Metrics()
		if m.JobsRunning == 2 && m.JobsQueued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never saturated: %+v", m)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// New work is rejected, but the known-cached spec still answers
	// instantly, and a duplicate of an in-flight spec still rides the
	// computation as a follower.
	if _, resp := submit(t, ts, tinySpec("svc-sat-fresh")); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("fresh spec under saturation: status %d, want 429", resp.StatusCode)
	}
	st, resp := submit(t, ts, tinySpec("svc-sat-cached"))
	if resp.StatusCode != http.StatusOK || st.State != JobDone || !st.Cached {
		t.Errorf("cached spec under saturation: status %d, %+v; want instant 200 done", resp.StatusCode, st)
	}
	dup, resp := submit(t, ts, longSpec(0))
	if resp.StatusCode != http.StatusAccepted || !dup.Cached {
		t.Errorf("duplicate of in-flight spec under saturation: status %d, %+v; want 202 follower", resp.StatusCode, dup)
	}
	longIDs = append(longIDs, dup.ID)
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result", "/v1/jobs/job-999999/trace"} {
		if code, _, _ := getBody(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, code)
		}
	}
}

// Regression: job-history pruning used to drop finished records purely
// by insertion order. A finished leader whose cache entry still has an
// unresolved single-flight follower must stay pollable until the rider
// releases — its id is what the follower's client correlates against.
func TestPruneSkipsFinishedJobWithActiveRider(t *testing.T) {
	srv, ts := testServer(t, Config{JobWorkers: 2, JobHistory: 1})
	st, _ := submit(t, ts, tinySpec("prune-rider"))
	fin := await(t, ts, st.ID)
	if fin.State != JobDone {
		t.Fatalf("job state = %s, want done", fin.State)
	}

	// Pin an artificial rider on the finished job's entry — a stand-in
	// for a follower between its leader's completion and its own resolve.
	e, ok := srv.cache.Probe(CacheKey(fin.Hash))
	if !ok {
		t.Fatal("finished job has no cache entry")
	}
	srv.cache.mu.Lock()
	e.riders++
	srv.cache.mu.Unlock()

	for i := 0; i < 4; i++ {
		fst, _ := submit(t, ts, tinySpec(fmt.Sprintf("prune-filler-%d", i)))
		await(t, ts, fst.ID)
	}
	if _, ok := srv.Job(st.ID); !ok {
		t.Fatal("finished job with an active rider was pruned from history")
	}

	srv.cache.Release(e)
	lst, _ := submit(t, ts, tinySpec("prune-last"))
	await(t, ts, lst.ID)
	if _, ok := srv.Job(st.ID); ok {
		t.Error("job record not pruned after its rider released")
	}
}

// The disk CAS is the warm-restart tier: a fresh server process opening
// the same cache directory must serve previously computed results
// byte-identically, marked cached with source "disk".
func TestDiskCASServesAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	store1, err := cas.Open(dir, cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{JobWorkers: 2, CAS: store1}).Start()
	ts1 := httptest.NewServer(s1.Handler())
	st, _ := submit(t, ts1, tinySpec("disk-restart"))
	fin := await(t, ts1, st.ID)
	if fin.State != JobDone || fin.Cached {
		t.Fatalf("first run: state=%s cached=%v, want fresh done", fin.State, fin.Cached)
	}
	code, body1, _ := getBody(t, ts1.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("first result: status %d", code)
	}
	ts1.Close()
	s1.Drain()

	// "Restart": a new process = new store handle over the same dir.
	store2, err := cas.Open(dir, cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() == 0 {
		t.Fatal("CAS empty after reopen; write-through did not persist")
	}
	srv2, ts2 := testServer(t, Config{JobWorkers: 2, CAS: store2})
	st2, _ := submit(t, ts2, tinySpec("disk-restart"))
	fin2 := await(t, ts2, st2.ID)
	if fin2.State != JobDone || !fin2.Cached || fin2.Source != SourceDisk {
		t.Fatalf("after restart: state=%s cached=%v source=%q, want done/cached/disk", fin2.State, fin2.Cached, fin2.Source)
	}
	code, body2, _ := getBody(t, ts2.URL+"/v1/jobs/"+st2.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("restart result: status %d", code)
	}
	if body2 != body1 {
		t.Errorf("disk-served result differs from computed result:\n%s\n---\n%s", body2, body1)
	}
	if m := srv2.Metrics(); m.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want 1", m.DiskHits)
	}
}

// A corrupted blob must read as a miss — the spec recomputes and the
// result stays byte-identical, never a served wrong body.
func TestDiskCASCorruptionForcesRecompute(t *testing.T) {
	dir := t.TempDir()
	store, err := cas.Open(dir, cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{JobWorkers: 2, CAS: store}).Start()
	ts1 := httptest.NewServer(s1.Handler())
	st, _ := submit(t, ts1, tinySpec("disk-corrupt"))
	await(t, ts1, st.ID)
	_, body1, _ := getBody(t, ts1.URL+"/v1/jobs/"+st.ID+"/result")
	ts1.Close()
	s1.Drain()

	// Flip bytes in the stored blob directly, then restart over it.
	path := store.BlobPath(CacheKey(st.Hash))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xff
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := cas.Open(dir, cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv2, ts2 := testServer(t, Config{JobWorkers: 2, CAS: store2})
	st2, _ := submit(t, ts2, tinySpec("disk-corrupt"))
	fin2 := await(t, ts2, st2.ID)
	if fin2.State != JobDone {
		t.Fatalf("recompute state = %s", fin2.State)
	}
	if fin2.Cached {
		t.Errorf("corrupt blob served as a cache hit (source %q)", fin2.Source)
	}
	_, body2, _ := getBody(t, ts2.URL+"/v1/jobs/"+st2.ID+"/result")
	if body2 != body1 {
		t.Error("recomputed result differs from original")
	}
	if m := srv2.Metrics(); m.DiskMisses == 0 {
		t.Errorf("DiskMisses = %d, want ≥1", m.DiskMisses)
	}
}

// POST /v1/batches streams one NDJSON line per spec as it completes,
// with per-line errors for invalid members and full report text for
// done ones.
func TestBatchEndpointStreamsCompletions(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 2})
	specs := []string{
		tinySpec("batch-a"),
		`{"this is": "not a scenario"}`,
		tinySweepSpec("batch-b"),
	}
	req := fmt.Sprintf(`{"specs":[%s]}`, strings.Join(specs, ","))
	resp, err := http.Post(ts.URL+"/v1/batches", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	if got := resp.Header.Get("X-Batch-Size"); got != "3" {
		t.Errorf("X-Batch-Size = %q", got)
	}

	byIndex := map[int]batchItem{}
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < len(specs); i++ {
		var item batchItem
		if err := dec.Decode(&item); err != nil {
			t.Fatalf("decoding stream line %d: %v", i, err)
		}
		byIndex[item.Index] = item
	}
	if dec.More() {
		t.Error("stream has extra lines past the batch size")
	}

	for _, idx := range []int{0, 2} {
		item := byIndex[idx]
		if item.State != JobDone || item.Error != "" {
			t.Fatalf("spec %d: state=%s err=%q", idx, item.State, item.Error)
		}
		// The streamed result must be byte-identical to the result
		// endpoint's body for the same job.
		code, want, _ := getBody(t, ts.URL+"/v1/jobs/"+item.ID+"/result")
		if code != http.StatusOK {
			t.Fatalf("spec %d result status %d", idx, code)
		}
		if item.Result != want {
			t.Errorf("spec %d: streamed result differs from /result body", idx)
		}
	}
	if bad := byIndex[1]; bad.Error == "" || bad.State == JobDone {
		t.Errorf("invalid spec: error=%q state=%s, want per-line error", bad.Error, bad.State)
	}
}
