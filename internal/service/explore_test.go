package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/explore"
	"repro/internal/result"
)

// tinyExploration returns a fast 3-probe grid exploration; the name
// salt mints distinct exploration (and derived-case) identities.
func tinyExploration(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"base": {
			"name": %q,
			"workload": "fib24",
			"storage": {"c": "10u"},
			"source": {"name": "dc"},
			"duration": 0.002
		},
		"strategy": {"kind": "grid", "axes": [{"param": "c", "values": ["4.7u", "10u", "22u"]}]},
		"aggregators": [{"kind": "topk", "k": 2, "metric": "completions", "goal": "max"}]
	}`, name, name)
}

// submitExploration POSTs an exploration spec and decodes the status.
func submitExploration(t *testing.T, ts *httptest.Server, spec string) (JobStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/explorations", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding exploration submit response: %v", err)
		}
	}
	return st, resp
}

func TestExplorationJobServesCLIIdenticalResult(t *testing.T) {
	_, ts := testServer(t, Config{})
	spec := tinyExploration("svc-explore-identity")

	st, resp := submitExploration(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if st.Kind != KindExploration || st.Spec != "svc-explore-identity" {
		t.Fatalf("status = %+v, want an exploration job", st)
	}
	fin := await(t, ts, st.ID)
	if fin.State != JobDone {
		t.Fatalf("final state = %s (%s), want done", fin.State, fin.Error)
	}
	if fin.Done != fin.Total || fin.Total != 3 {
		t.Errorf("progress = %d/%d, want 3/3", fin.Done, fin.Total)
	}

	code, body, _ := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	es, err := explore.Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := result.RunExploration(es, result.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if body != rep.Text {
		t.Errorf("daemon result differs from the CLI renderer:\n--- daemon\n%s\n--- cli\n%s", body, rep.Text)
	}
}

func TestRepeatedExplorationServesProbesFromCache(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := tinyExploration("svc-explore-cache")

	run := func() {
		st, resp := submitExploration(t, ts, spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		if fin := await(t, ts, st.ID); fin.State != JobDone {
			t.Fatalf("final state = %s (%s), want done", fin.State, fin.Error)
		}
	}

	run()
	m := s.Metrics()
	if m.ExploreProbes != 3 || m.ExploreCacheMisses != 3 || m.ExploreCacheHits != 0 {
		t.Fatalf("cold run: probes/misses/hits = %d/%d/%d, want 3/3/0",
			m.ExploreProbes, m.ExploreCacheMisses, m.ExploreCacheHits)
	}

	run()
	m = s.Metrics()
	if m.ExploreProbes != 6 || m.ExploreCacheMisses != 3 || m.ExploreCacheHits != 3 {
		t.Errorf("warm run: probes/misses/hits = %d/%d/%d, want 6/3/3 (every probe a cache hit)",
			m.ExploreProbes, m.ExploreCacheMisses, m.ExploreCacheHits)
	}
	if m.ExplorationsDone != 2 {
		t.Errorf("explorations done = %d, want 2", m.ExplorationsDone)
	}
}

func TestExplorationProbesSurviveRestartViaCAS(t *testing.T) {
	dir := t.TempDir()
	store, err := cas.Open(dir, cas.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := tinyExploration("svc-explore-cas")

	s1, ts1 := testServer(t, Config{CAS: store})
	st, _ := submitExploration(t, ts1, spec)
	if fin := await(t, ts1, st.ID); fin.State != JobDone {
		t.Fatalf("first daemon: state %s (%s)", fin.State, fin.Error)
	}
	if m := s1.Metrics(); m.ExploreCacheMisses != 3 {
		t.Fatalf("first daemon computed %d probes, want 3", m.ExploreCacheMisses)
	}

	// A fresh server on the same store has an empty memory cache; every
	// probe should resolve from disk.
	s2, ts2 := testServer(t, Config{CAS: store})
	st2, _ := submitExploration(t, ts2, spec)
	if fin := await(t, ts2, st2.ID); fin.State != JobDone {
		t.Fatalf("second daemon: state %s (%s)", fin.State, fin.Error)
	}
	if m := s2.Metrics(); m.ExploreCacheHits != 3 || m.ExploreCacheMisses != 0 || m.DiskHits != 3 {
		t.Errorf("second daemon: hits/misses/disk = %d/%d/%d, want 3/0/3",
			m.ExploreCacheHits, m.ExploreCacheMisses, m.DiskHits)
	}
}

func TestExplorationCancel(t *testing.T) {
	t.Run("queued", func(t *testing.T) {
		// Not started: the job can never leave the queue, so the cancel
		// path exercised is the queued one, deterministically.
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		st, _ := submitExploration(t, ts, tinyExploration("svc-explore-cancel-q"))
		fin, ok := s.Cancel(st.ID)
		if !ok || fin.State != JobCanceled {
			t.Fatalf("cancel: %+v ok=%v, want canceled", fin, ok)
		}
	})
	t.Run("running", func(t *testing.T) {
		_, ts := testServer(t, Config{})
		// Probes this long would take minutes; the test passes only
		// because cancellation interrupts the probe's stepping loop.
		spec := `{
			"name": "svc-explore-cancel-r",
			"base": {
				"name": "svc-explore-cancel-r",
				"workload": "fib24",
				"storage": {"c": "10u"},
				"source": {"name": "dc"},
				"duration": 600
			},
			"strategy": {"kind": "grid", "axes": [{"param": "c", "values": ["4.7u", "10u"]}]},
			"aggregators": [{"kind": "topk", "k": 1, "metric": "completions", "goal": "max"}]
		}`
		st, _ := submitExploration(t, ts, spec)
		for deadline := time.Now().Add(10 * time.Second); ; {
			got, _ := pollJob(t, ts, st.ID)
			if got.State == JobRunning {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("exploration never started running: %+v", got)
			}
			time.Sleep(2 * time.Millisecond)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if fin := await(t, ts, st.ID); fin.State != JobCanceled {
			t.Errorf("final state = %s, want canceled", fin.State)
		}
	})
}

func TestExplorationDrainCompletesAcceptedJob(t *testing.T) {
	s := New(Config{}).Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, resp := submitExploration(t, ts, tinyExploration("svc-explore-drain"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	s.Drain()
	if got, _ := s.Job(st.ID); got.State != JobDone {
		t.Errorf("after drain: state %s (%s), want done", got.State, got.Error)
	}
	if _, err := s.SubmitExploration([]byte(tinyExploration("svc-explore-drain-2"))); err != ErrDraining {
		t.Errorf("submit after drain: %v, want ErrDraining", err)
	}
}

func TestExplorationInvalidSpecIs400(t *testing.T) {
	_, ts := testServer(t, Config{})
	bad := `{"name": "nope", "base": {"name": "nope", "workload": "fib24",
		"storage": {"c": "10u"}, "source": {"name": "dc"}, "duration": 0.002},
		"strategy": {"kind": "anneal"}}`
	_, resp := submitExploration(t, ts, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

func TestExplorationBackpressure429(t *testing.T) {
	// Not started with a depth-1 queue: the first exploration occupies
	// the only slot, the second must bounce with Retry-After.
	s := New(Config{QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, resp := submitExploration(t, ts, tinyExploration("svc-explore-bp-1")); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	_, resp := submitExploration(t, ts, tinyExploration("svc-explore-bp-2"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After hint")
	}
}

func TestRegistryListsModelMetrics(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, body, _ := getBody(t, ts.URL+"/v1/registry")
	if code != http.StatusOK {
		t.Fatalf("registry: status %d", code)
	}
	for _, frag := range []string{`"metrics":[`, `"energy_per_op"`, `"mean_fps"`, `"first_fire"`, `"worst_window"`} {
		if !strings.Contains(body, frag) {
			t.Errorf("registry body lacks %s", frag)
		}
	}
}
