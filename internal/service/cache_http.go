package service

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"strconv"

	"repro/internal/result"
)

// maxReportBytes bounds a pushed report body. Reports are text plus a
// bounded trace (maxTraceSamples), so real bodies are sub-MB; the limit
// only guards against abuse.
const maxReportBytes = 32 << 20

// handleCacheGet is the peer cache lookup: the encoded report for a
// spec hash, served from the memory tier or the disk CAS. If the key is
// currently being computed, the handler waits for that computation
// (bounded by the client's request context) instead of answering "not
// cached" — this is what makes single-flight hold across nodes: a peer
// that routed the same spec here rides our in-flight run rather than
// starting its own.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	// A peer on a different engine version computes different bytes;
	// a cross-version transfer must read as a miss, never a wrong body.
	if v := r.Header.Get("X-Engine-Version"); v != "" && v != result.EngineVersion {
		writeError(w, http.StatusNotFound, "engine version %q not served (running %q)", v, result.EngineVersion)
		return
	}
	key := CacheKey(hash)
	if e, ok := s.cache.Probe(key); ok {
		select {
		case <-e.Done:
		case <-r.Context().Done():
			writeError(w, http.StatusNotFound, "computation for %s still in flight", hash)
			return
		}
		if e.Err == nil && e.Report != nil {
			s.serveEncodedReport(w, hash, e.Report)
			return
		}
		// Aborted: fall through to the disk tier.
	}
	if s.cfg.CAS != nil {
		if data, ok := s.cfg.CAS.Get(key); ok {
			// Validate before serving: a stale-codec blob must be a miss
			// for the peer too.
			if _, err := result.DecodeReport(data); err == nil {
				writeBlob(w, hash, data)
				return
			}
		}
	}
	writeError(w, http.StatusNotFound, "spec %s not cached", hash)
}

// handleCachePut is the peer cache push: a node that computed a result
// this node owns replicates it here. The body is verified (checksum,
// codec, engine, hash match) and adopted into the memory cache and the
// disk CAS. An in-flight local computation for the same key keeps its
// leader; the push is acknowledged and dropped.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReportBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading pushed report: %v", err)
		return
	}
	if want := r.Header.Get("X-Body-Sum"); want != "" {
		sum := sha256.Sum256(body)
		if hex.EncodeToString(sum[:]) != want {
			writeError(w, http.StatusBadRequest, "pushed report failed checksum")
			return
		}
	}
	rep, err := result.DecodeReport(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "pushed report: %v", err)
		return
	}
	if rep.SpecHash != hash {
		writeError(w, http.StatusBadRequest, "pushed report is for %s, not %s", rep.SpecHash, hash)
		return
	}
	key := CacheKey(hash)
	s.cache.AdoptCompleted(key, rep)
	if s.cfg.CAS != nil {
		s.cfg.CAS.Put(key, body) // failures land in the store's stats
	}
	w.WriteHeader(http.StatusNoContent)
}

// serveEncodedReport encodes and serves a report as a peer-transfer
// body.
func (s *Server) serveEncodedReport(w http.ResponseWriter, hash string, rep *result.Report) {
	data, err := result.EncodeReport(rep)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding report: %v", err)
		return
	}
	writeBlob(w, hash, data)
}

// writeBlob serves an encoded report with the integrity metadata the
// peer client verifies: an explicit length and a body checksum.
func writeBlob(w http.ResponseWriter, hash string, data []byte) {
	sum := sha256.Sum256(data)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("X-Spec-Hash", hash)
	w.Header().Set("X-Body-Sum", hex.EncodeToString(sum[:]))
	w.Write(data)
}
