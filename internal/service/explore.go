package service

import (
	"errors"
	"fmt"

	"repro/internal/explore"
	"repro/internal/result"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// KindExploration is JobStatus.Kind for exploration jobs; scenario jobs
// leave Kind empty.
const KindExploration = "exploration"

// SubmitExploration parses, validates, and queues one exploration spec
// as a job. Exploration jobs share the queue, worker pool, polling,
// cancellation, and /result surface with scenario jobs, but are not
// themselves cached: the unit of caching is each probed case, keyed by
// its derived spec's content address, so re-running an exploration —
// or running a different exploration over overlapping design points —
// rides the memory→disk→peer tiers probe by probe.
//
// Submission errors: spec errors (reject with 400), ErrQueueFull (429),
// ErrDraining (503).
func (s *Server) SubmitExploration(specJSON []byte) (JobStatus, error) {
	es, err := explore.Parse(specJSON)
	if err != nil {
		return JobStatus{}, err
	}
	hash, err := es.Hash()
	if err != nil {
		return JobStatus{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	if len(s.pending) >= s.cfg.queueDepth() {
		return JobStatus{}, ErrQueueFull
	}
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.nextID),
		expl:     es,
		hash:     hash,
		state:    JobQueued,
		cancel:   make(chan struct{}),
		finished: make(chan struct{}),
	}
	s.pending = append(s.pending, j)
	s.cond.Signal()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneJobsLocked()
	return j.status(), nil
}

// runExploration executes one exploration job on a queue worker. The
// strategy and rendering run in internal/explore — the same code path
// as ehsim-explore — so the /result body is byte-identical to the CLI
// for the same spec; only the evaluator differs, and it differs only in
// where metrics come from (the tiered cache), never in what they are.
func (s *Server) runExploration(j *job) {
	s.mu.Lock()
	if j.state != JobQueued {
		s.mu.Unlock() // canceled while queued
		return
	}
	j.state = JobRunning
	s.mu.Unlock()

	rep, err := explore.Run(j.expl, explore.Options{
		Workers: s.cfg.SweepWorkers,
		Cancel:  j.cancel,
		Evaluate: func(sp *scenario.Spec) (explore.Outcome, error) {
			return s.evaluateProbe(j, sp)
		},
		Progress: func(done, total int) {
			s.mu.Lock()
			j.done, j.total = done, total
			s.mu.Unlock()
		},
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case errors.Is(err, sweep.ErrCanceled):
		j.state = JobCanceled
		s.jobsCanceled++
	case err != nil:
		j.state = JobFailed
		j.errText = err.Error()
		s.jobsFailed++
	default:
		j.state = JobDone
		j.source = SourceCompute
		// The exploration's report rides the scenario report type so the
		// /result endpoint (and job-record memory bounds) need no second
		// code path. SimSeconds counts only work actually computed here —
		// evaluateProbe already fed s.simSeconds per computed probe.
		j.report = &result.Report{Text: rep.Text, SimSeconds: rep.SimSeconds}
		if j.total > 0 {
			j.done = j.total
		}
		s.jobsDone++
		s.explorationsDone++
	}
	s.markFinishedLocked(j)
}

// evaluateProbe resolves one derived case for an exploration through
// the full cache hierarchy: memory (including riding another job's or
// exploration's in-flight computation), then disk CAS, then the owning
// peer, then local compute. Probes are computed exactly as single-run
// jobs are — trace captured, same sampling interval — so a cache entry
// is indistinguishable whether a job or an exploration put it there,
// and either consumer can serve from it.
func (s *Server) evaluateProbe(j *job, sp *scenario.Spec) (explore.Outcome, error) {
	hash, err := sp.Hash()
	if err != nil {
		return explore.Outcome{}, err
	}
	key := CacheKey(hash)

	for {
		// Begin under s.mu, like Submit: claims are ordered against job
		// submissions, so a probe and an identical spec's job dedup onto
		// one computation no matter which arrives first.
		s.mu.Lock()
		entry, claim := s.cache.Begin(key)
		if claim == Done {
			s.exploreProbes++
			s.exploreHits++
		}
		s.mu.Unlock()

		switch claim {
		case Done:
			return probeOutcome(entry.Report)

		case Wait:
			select {
			case <-entry.Done:
			case <-j.cancel:
				s.cache.Release(entry)
				return explore.Outcome{}, sweep.ErrCanceled
			}
			leadErr := entry.Err
			s.cache.Release(entry)
			if leadErr == nil {
				s.addPeerCounts(func() { s.exploreProbes++; s.exploreHits++ })
				return probeOutcome(entry.Report)
			}
			if errors.Is(leadErr, sweep.ErrCanceled) {
				continue // the leader we rode was canceled, not us: reclaim
			}
			return explore.Outcome{}, leadErr

		case Lead:
		}

		// Leading: cold tiers, then compute — all off s.mu.
		if rep, _ := s.fetchCold(key, hash, j.cancel); rep != nil {
			s.mu.Lock()
			s.exploreProbes++
			s.exploreHits++
			s.cache.Complete(key, rep)
			s.mu.Unlock()
			return probeOutcome(rep)
		}

		rep, err := result.RunSpec(sp, result.Options{
			Workers:       s.cfg.SweepWorkers,
			Trace:         true,
			TraceInterval: traceInterval(float64(sp.Duration)),
			Cancel:        j.cancel,
		})
		if err != nil {
			s.mu.Lock()
			s.cache.Abort(key, err)
			s.mu.Unlock()
			return explore.Outcome{}, err
		}

		// Write-through to disk before publishing, mirroring runJob: once
		// the entry is visible, a crash must not lose the only copy.
		if s.cfg.CAS != nil {
			if data, encErr := result.EncodeReport(rep); encErr == nil {
				s.cfg.CAS.Put(key, data)
			}
		}
		s.mu.Lock()
		s.exploreProbes++
		s.exploreMisses++
		s.simSeconds += rep.SimSeconds
		s.cache.Complete(key, rep)
		s.mu.Unlock()
		s.pushToOwner(hash, rep)

		out, err := probeOutcome(rep)
		if err == nil {
			out.SimSeconds = rep.SimSeconds
		}
		return out, err
	}
}

// probeOutcome extracts a cached or computed report's metrics for the
// explorer. Probes are sweep-free by construction, so the report holds
// exactly one case. SimSeconds is left zero: a served report did no new
// work (the computing path overrides it).
func probeOutcome(rep *result.Report) (explore.Outcome, error) {
	if len(rep.Cases) != 1 {
		return explore.Outcome{}, fmt.Errorf("service: probe resolved to %d cases, want 1", len(rep.Cases))
	}
	return explore.Outcome{Metrics: rep.Cases[0].Metrics}, nil
}
