// Package service is the simulation-as-a-service layer behind cmd/ehsimd:
// a job subsystem (submit/poll/cancel over a bounded queue with
// backpressure), a content-addressed single-flight result cache keyed by
// canonical spec hash plus engine version, and the REST surface that
// exposes both (http.go).
//
// The cache is tiered. Tier 1 is the in-memory single-flight Cache
// (cache.go). Tier 2, when configured, is a disk-backed CAS
// (internal/cas) written through on every computed result, so a daemon
// rebooted on the same cache directory serves prior results
// byte-identically without recomputing. Tier 3, when peers are
// configured, is the rest of the cluster: spec hashes are routed to an
// owning node by rendezvous hashing, and a leader whose spec belongs to
// a peer asks that peer's cache (bounded by a timeout) before falling
// back to computing locally (peer.go).
//
// Execution goes through internal/result — the same path the ehsim CLI
// prints from — so a job's result body is byte-identical to
// `ehsim -scenario` output for the same spec.
package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cas"
	"repro/internal/explore"
	"repro/internal/result"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Submission errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull signals backpressure: the bounded queue is at capacity
	// (429 + Retry-After).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining signals shutdown: the server no longer accepts jobs (503).
	ErrDraining = errors.New("service: draining, not accepting jobs")
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the number of jobs waiting to run; submissions
	// beyond it are rejected with ErrQueueFull. Default 64.
	QueueDepth int

	// JobWorkers is the number of jobs executed concurrently once Start
	// runs. Default 2.
	JobWorkers int

	// SweepWorkers is the per-job sweep parallelism (0 = one per core).
	SweepWorkers int

	// CacheEntries bounds the completed reports the result cache
	// retains; beyond it the oldest-completed entry is evicted. Default
	// 256. In-flight computations are never evicted.
	CacheEntries int

	// JobHistory bounds the finished job records (done/failed/canceled)
	// retained for polling; beyond it the oldest finished records are
	// pruned and their ids return 404. Queued and running jobs are never
	// pruned. Default 256 — finished records can pin a report with a
	// trace, so the bound is also a memory bound.
	JobHistory int

	// RetryAfter is the backoff hint returned with backpressure
	// responses. Default 1s.
	RetryAfter time.Duration

	// CAS, if non-nil, is the disk-backed persistence tier: every
	// computed result is written through to it, and a memory-cache miss
	// consults it before computing. The Server owns lookups and
	// write-throughs but not the store's lifecycle.
	CAS *cas.Store

	// SelfURL is this node's advertised base URL (e.g.
	// "http://10.0.0.1:8080") — its identity on the rendezvous ring.
	// Required when Peers is non-empty, and it must be the URL the peers
	// reach this node at, or the ring views diverge.
	SelfURL string

	// Peers lists the other cluster nodes' base URLs. Non-empty enables
	// the federation tier: spec hashes are routed to an owner node by
	// rendezvous hashing over {SelfURL} ∪ Peers, leaders consult the
	// owner's cache before computing, and computed results owned by a
	// peer are pushed to it.
	Peers []string

	// PeerTimeout bounds each peer cache operation (lookup or push). A
	// peer that cannot answer in time is treated as a miss and the job
	// falls back to local compute. Default 2s.
	PeerTimeout time.Duration

	// Checkpoints, if non-nil, enables checkpoint-on-drain: Drain asks
	// every running job to suspend through the engine contract, the
	// suspended state is persisted here, and ResumeCheckpoints on the
	// next boot resubmits the work — which picks its state back up and
	// finishes byte-identical to an uninterrupted run.
	Checkpoints *CheckpointStore
}

func (c Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 64
	}
	return c.QueueDepth
}

func (c Config) jobWorkers() int {
	if c.JobWorkers <= 0 {
		return 2
	}
	return c.JobWorkers
}

func (c Config) cacheEntries() int {
	if c.CacheEntries <= 0 {
		return 256
	}
	return c.CacheEntries
}

func (c Config) jobHistory() int {
	if c.JobHistory <= 0 {
		return 256
	}
	return c.JobHistory
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

func (c Config) peerTimeout() time.Duration {
	if c.PeerTimeout <= 0 {
		return 2 * time.Second
	}
	return c.PeerTimeout
}

// CacheKey builds the cache/CAS key for a spec hash under the current
// engine version — the content address the whole tiered cache speaks.
func CacheKey(specHash string) string {
	return specHash + "|engine=" + result.EngineVersion
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	JobQueued   JobState = "queued"
	JobRunning  JobState = "running"
	JobDone     JobState = "done"
	JobFailed   JobState = "failed"
	JobCanceled JobState = "canceled"
	// JobCheckpointed: the run was suspended by a draining server and its
	// state persisted; a resubmission after the next boot resumes it.
	JobCheckpointed JobState = "checkpointed"
)

// errCheckpointed marks a cache entry aborted because its leader
// checkpointed for shutdown rather than failing.
var errCheckpointed = errors.New("service: job checkpointed for shutdown")

// Result provenance values for JobStatus.Source.
const (
	SourceCompute = "compute" // executed on this node
	SourceCache   = "cache"   // in-memory cache hit or single-flight ride
	SourceDisk    = "disk"    // disk CAS hit
	SourcePeer    = "peer"    // fetched from the owning peer's cache
)

// job is the server-side record. All fields are guarded by Server.mu
// except cancel (closed at most once, guarded by the canceled flag under
// mu) and the immutable identity fields.
type job struct {
	id   string
	spec *scenario.Spec // nil for exploration jobs
	expl *explore.Spec  // non-nil for exploration jobs (explore.go)
	hash string         // spec content address
	key  string         // cache key: hash + engine version (unused by explorations)

	state    JobState
	cached   bool   // served without computing (any cache tier)
	source   string // result provenance, set on completion
	lead     bool   // owns the cache computation for key
	done     int    // progress: cases finished
	total    int    // progress: cases overall (0 until known)
	report   *result.Report
	errText  string
	cancel   chan struct{}
	canceled bool   // cancel closed
	entry    *Entry // the cache entry this job resolved against
	finished chan struct{}
	ended    bool // finished closed
}

// JobStatus is the JSON-facing snapshot of one job.
type JobStatus struct {
	ID     string   `json:"id"`
	Kind   string   `json:"kind,omitempty"` // "exploration" for exploration jobs
	State  JobState `json:"state"`
	Spec   string   `json:"spec"`
	Hash   string   `json:"hash"`
	Sweep  bool     `json:"sweep"`
	Cached bool     `json:"cached"`
	Source string   `json:"source,omitempty"`
	Done   int      `json:"done"`
	Total  int      `json:"total"`
	Error  string   `json:"error,omitempty"`
}

func (j *job) status() JobStatus {
	st := JobStatus{
		ID:     j.id,
		State:  j.state,
		Hash:   j.hash,
		Cached: j.cached,
		Source: j.source,
		Done:   j.done,
		Total:  j.total,
		Error:  j.errText,
	}
	if j.expl != nil {
		st.Kind = KindExploration
		st.Spec = j.expl.Name
	} else {
		st.Spec = j.spec.Name
		st.Sweep = j.spec.HasSweep()
	}
	return st
}

// Metrics is a point-in-time snapshot of the server's counters.
type Metrics struct {
	JobsQueued    int     // leader jobs holding queue slots
	JobsWaiting   int     // single-flight followers riding an in-flight computation
	JobsRunning   int     // jobs currently executing
	JobsDone      int64   // jobs completed successfully (cache hits included)
	JobsFailed    int64   // jobs that errored
	JobsCanceled  int64   // jobs canceled before completing
	CacheHits     int64   // submissions served by the memory cache (incl. dedup waits)
	CacheMisses   int64   // submissions that missed the memory cache
	CacheEntries  int     // resident memory-cache entries
	SimSeconds    float64 // total simulated seconds actually computed
	QueueDepth    int     // jobs currently pending in the queue
	QueueBound    int     // configured queue bound (Config.QueueDepth)
	QueueCapacity int     // free queue slots (bound − depth)

	// Disk tier (zero-valued when no CAS is configured).
	DiskHits        int64 // CAS reads served
	DiskMisses      int64 // CAS reads that found nothing servable
	DiskEntries     int   // resident CAS blobs
	DiskBytes       int64 // resident CAS bytes
	DiskEvictions   int64 // CAS blobs evicted by the byte budget
	DiskCorrupt     int64 // CAS blobs dropped for checksum/framing failures
	DiskWriteErrors int64 // CAS writes that failed

	// Peer tier (zero-valued when no peers are configured).
	PeerHits   int64 // jobs served from a peer's cache
	PeerMisses int64 // peer lookups answered "not cached"
	PeerErrors int64 // peer operations that failed (down, slow, bad body)
	PeerPushes int64 // computed results pushed to their owning peer

	// Exploration subsystem (explore.go). Probes are the per-case
	// evaluations an exploration strategy requested; each resolves
	// either from a cache tier (hit — memory, single-flight ride, disk,
	// or peer) or by computing locally (miss), so a repeated exploration
	// shows pure hit growth here.
	ExplorationsDone   int64 // exploration jobs completed successfully
	ExploreProbes      int64 // probes resolved (hits + misses)
	ExploreCacheHits   int64 // probes served without computing
	ExploreCacheMisses int64 // probes computed on this node

	// Checkpoint subsystem (zero-valued when no store is configured).
	CheckpointsSaved   int64 // running jobs suspended and persisted at drain
	CheckpointsResumed int64 // jobs completed from a persisted checkpoint
	CheckpointsPending int   // records awaiting resume in the store
}

// HitRatio returns hits/(hits+misses), or 0 before any submission.
func (m Metrics) HitRatio() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// Server is the daemon core: job registry, bounded queue, worker pool,
// and tiered result cache. Construct with New, launch the workers with
// Start, stop with Drain.
type Server struct {
	cfg   Config
	cache *Cache
	peers *peerSet // nil when no peers are configured

	mu       sync.Mutex
	cond     *sync.Cond // wakes workers; tied to mu
	jobs     map[string]*job
	order    []string // submission order, for listing
	nextID   int
	pending  []*job // FIFO of leader jobs awaiting a worker
	draining bool

	jobsDone     int64
	jobsFailed   int64
	jobsCanceled int64
	cacheHits    int64
	cacheMisses  int64
	simSeconds   float64

	diskHits   int64
	diskMisses int64
	peerHits   int64
	peerMisses int64
	peerErrors int64
	peerPushes int64

	explorationsDone int64
	exploreProbes    int64
	exploreHits      int64
	exploreMisses    int64

	checkpointsSaved   int64
	checkpointsResumed int64

	// ckptReq is closed by Drain when a checkpoint store is configured —
	// the server-wide "suspend now" signal every running job's engine
	// driver watches.
	ckptReq    chan struct{}
	ckptClosed bool

	started  bool
	workerWG sync.WaitGroup // queue workers
	followWG sync.WaitGroup // single-flight followers
}

// New builds a Server. No goroutines run until Start.
func New(cfg Config) *Server {
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.cacheEntries()),
		jobs:    make(map[string]*job),
		ckptReq: make(chan struct{}),
	}
	if len(cfg.Peers) > 0 {
		s.peers = newPeerSet(cfg.SelfURL, cfg.Peers, cfg.peerTimeout())
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// ResultCache exposes the in-memory cache tier — read/introspection
// surface for the peer endpoints and the test harness.
func (s *Server) ResultCache() *Cache { return s.cache }

// Start launches the worker pool. It is idempotent.
func (s *Server) Start() *Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return s
	}
	s.started = true
	for i := 0; i < s.cfg.jobWorkers(); i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Drain gracefully shuts the job subsystem down: new submissions are
// rejected with ErrDraining, already-accepted jobs (queued and running)
// run to completion, and Drain returns once every worker and follower
// has exited. With a checkpoint store configured, running jobs are
// instead asked to suspend: each engine checkpoints at its next step
// boundary, the state is persisted, and ResumeCheckpoints on the next
// boot picks the work back up.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.cond.Broadcast()
	}
	if s.cfg.Checkpoints != nil && !s.ckptClosed {
		s.ckptClosed = true
		close(s.ckptReq)
	}
	s.mu.Unlock()
	s.workerWG.Wait()
	s.followWG.Wait()
}

// RetryAfter is the backoff hint for backpressure responses.
func (s *Server) RetryAfter() time.Duration { return s.cfg.retryAfter() }

// Submit parses, validates, and accepts one scenario spec. The returned
// status is the job's initial state: "done" immediately on a memory
// cache hit, "queued" otherwise. Submission errors: spec errors (reject
// with 400), ErrQueueFull (429), ErrDraining (503).
func (s *Server) Submit(specJSON []byte) (JobStatus, error) {
	sp, err := scenario.Parse(specJSON)
	if err != nil {
		return JobStatus{}, err
	}
	hash, err := sp.Hash()
	if err != nil {
		return JobStatus{}, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return JobStatus{}, ErrDraining
	}
	// scenario.Validate bounds the sweep (MaxSweepPoints, MaxGridCases),
	// so the expansion size here is small and safe to compute.
	total := 1
	if sp.HasSweep() {
		total = sp.Grid().Size()
	}
	s.nextID++
	j := &job{
		id:       fmt.Sprintf("job-%06d", s.nextID),
		spec:     sp,
		hash:     hash,
		key:      CacheKey(hash),
		state:    JobQueued,
		total:    total,
		cancel:   make(chan struct{}),
		finished: make(chan struct{}),
	}

	// All cache.Begin calls happen under s.mu, so a Lead claim aborted
	// before this function returns can have no waiters yet.
	entry, claim := s.cache.Begin(j.key)
	j.entry = entry
	switch claim {
	case Done:
		s.cacheHits++
		s.jobsDone++
		j.cached = true
		j.source = SourceCache
		j.state = JobDone
		j.report = entry.Report
		j.done, j.total = len(entry.Report.Cases), len(entry.Report.Cases)
		s.markFinishedLocked(j)
	case Wait:
		// Followers ride the in-flight computation instead of the queue,
		// so an identical spec is accepted even when the queue is full —
		// but a retry storm must not grow follower goroutines without
		// limit, so they get their own bound, independent of how
		// saturated the queue and workers are.
		if s.followersLocked() >= s.cfg.queueDepth() {
			s.cache.Release(entry) // undo the ride Begin registered
			return JobStatus{}, ErrQueueFull
		}
		// cacheHits is counted in follow() once the ride succeeds — a
		// canceled or failed leader must not register phantom hits.
		j.cached = true
		j.source = SourceCache
		s.followWG.Add(1)
		go s.follow(j, entry)
	case Lead:
		j.lead = true
		if len(s.pending) >= s.cfg.queueDepth() {
			s.cache.Abort(j.key, ErrQueueFull)
			return JobStatus{}, ErrQueueFull
		}
		s.pending = append(s.pending, j)
		s.cacheMisses++
		s.cond.Signal()
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.pruneJobsLocked()
	return j.status(), nil
}

// SubmitWait behaves like Submit but, instead of failing fast on a full
// queue, waits for a slot until ctx is done. It is the batch endpoint's
// intake: a batch client asked for N specs in one round trip, so
// backpressure should pace the stream, not reject its tail.
func (s *Server) SubmitWait(ctx context.Context, specJSON []byte) (JobStatus, error) {
	for {
		st, err := s.Submit(specJSON)
		if !errors.Is(err, ErrQueueFull) {
			return st, err
		}
		select {
		case <-ctx.Done():
			return JobStatus{}, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// WaitJob blocks until the job reaches a terminal state (done, failed,
// canceled) or ctx is done, and returns its final status. ok is false
// for unknown ids.
func (s *Server) WaitJob(ctx context.Context, id string) (JobStatus, bool, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, false, nil
	}
	fin := j.finished
	s.mu.Unlock()
	select {
	case <-fin:
	case <-ctx.Done():
		return JobStatus{}, true, ctx.Err()
	}
	st, _ := s.Job(id)
	return st, true, nil
}

// markFinishedLocked closes the job's finished channel exactly once.
// Callers hold s.mu and have already moved the job to a terminal state.
func (s *Server) markFinishedLocked(j *job) {
	if !j.ended {
		j.ended = true
		close(j.finished)
	}
}

// followersLocked counts single-flight followers: non-leader jobs still
// waiting on their leader's computation. (A leader popped from pending
// but not yet marked running is lead, so it never miscounts here;
// exploration jobs hold queue slots themselves and are never
// followers.) Callers hold s.mu.
func (s *Server) followersLocked() int {
	n := 0
	for _, j := range s.jobs {
		if !j.lead && j.expl == nil && j.state == JobQueued {
			n++
		}
	}
	return n
}

// pruneJobsLocked drops the oldest finished job records once the
// registry exceeds the configured history bound. Never pruned: queued
// and running jobs (single-flight waiters stay queued), the newest
// record — Submit calls this right after registering a job that may
// already be finished (cache hit), and the id it is about to return
// must stay pollable — and finished jobs whose cache entry still has
// active riders: a follower resolving against that entry must find the
// leader's world intact, not a vanished record. Callers hold s.mu.
func (s *Server) pruneJobsLocked() {
	excess := len(s.order) - s.cfg.jobHistory()
	if excess <= 0 {
		return
	}
	last := len(s.order) - 1
	keep := s.order[:0]
	for i, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && i != last &&
			(j.state == JobDone || j.state == JobFailed || j.state == JobCanceled) &&
			(j.entry == nil || s.cache.Riders(j.entry) == 0) {
			delete(s.jobs, id)
			excess--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// follow resolves a deduplicated job once its leader's computation
// finishes (or its own cancellation arrives first).
func (s *Server) follow(j *job, e *Entry) {
	defer s.followWG.Done()
	select {
	case <-e.Done:
	case <-j.cancel:
		// Cancel already moved the state under s.mu; the job stays
		// canceled even if the entry completes a moment later.
		s.cache.Release(e)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.cache.Release(e)
	if j.state != JobQueued {
		return // canceled while waiting
	}
	switch {
	case e.Err == nil:
		j.state = JobDone
		j.report = e.Report
		j.done, j.total = len(e.Report.Cases), len(e.Report.Cases)
		s.jobsDone++
		s.cacheHits++
	case errors.Is(e.Err, errCheckpointed):
		j.state = JobCheckpointed
		j.errText = "deduplicated onto a job that checkpointed for shutdown; resubmit after restart"
	case errors.Is(e.Err, sweep.ErrCanceled):
		j.state = JobCanceled
		j.errText = "deduplicated onto a job that was canceled; resubmit to recompute"
		s.jobsCanceled++
	default:
		j.state = JobFailed
		j.errText = e.Err.Error()
		s.jobsFailed++
	}
	s.markFinishedLocked(j)
}

// worker pops pending jobs until the queue is empty and Drain has been
// requested.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.draining {
			s.cond.Wait()
		}
		if len(s.pending) == 0 {
			s.mu.Unlock() // draining, nothing left
			return
		}
		j := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		if j.expl != nil {
			s.runExploration(j)
		} else {
			s.runJob(j)
		}
	}
}

// runJob executes one leader job and publishes its outcome to the job
// record and the cache: first the colder cache tiers (disk, then the
// owning peer), then actual computation.
func (s *Server) runJob(j *job) {
	s.mu.Lock()
	if j.state != JobQueued {
		s.mu.Unlock() // canceled while queued; cache entry already aborted
		return
	}
	j.state = JobRunning
	s.mu.Unlock()

	// Cold tiers — outside s.mu: disk and network I/O must not stall
	// submissions or polling.
	if rep, src := s.fetchCold(j.key, j.hash, j.cancel); rep != nil {
		// A cached result supersedes any partial checkpoint for the key.
		if s.cfg.Checkpoints != nil {
			s.cfg.Checkpoints.Delete(j.key)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if j.state != JobRunning {
			// Canceled mid-lookup: the Cancel path closed j.cancel but the
			// state flip is ours. Honor the cancellation; the entry must
			// not be completed by a job already written off.
			j.state = JobCanceled
			s.jobsCanceled++
			s.cache.Abort(j.key, sweep.ErrCanceled)
			s.markFinishedLocked(j)
			return
		}
		j.state = JobDone
		j.cached = true
		j.source = src
		j.report = rep
		j.done, j.total = len(rep.Cases), len(rep.Cases)
		s.jobsDone++
		s.cache.Complete(j.key, rep)
		s.markFinishedLocked(j)
		return
	}

	rep, resumed, err := s.execute(j)

	// A checkpoint interruption persists the engine state before the job
	// is published as checkpointed (still off s.mu — disk I/O): once
	// visible, the state must actually be on disk for the next boot. A
	// persist failure degrades to a job failure.
	var ckptErr *scenario.CheckpointError
	checkpointed := errors.As(err, &ckptErr)
	if checkpointed {
		if perr := s.saveCheckpoint(j, ckptErr.State); perr != nil {
			checkpointed, err = false, perr
		}
	}

	// Write-through to disk before publishing (still off s.mu): once the
	// job is visible as done, a crash must not lose the only copy.
	if err == nil && s.cfg.CAS != nil {
		if data, encErr := result.EncodeReport(rep); encErr == nil {
			s.cfg.CAS.Put(j.key, data) // failures are counted in the store's stats
		}
	}
	// A run that finished (or definitively failed or was canceled) has
	// consumed any checkpoint it resumed from.
	if !checkpointed && s.cfg.Checkpoints != nil {
		s.cfg.Checkpoints.Delete(j.key)
	}

	s.mu.Lock()
	switch {
	case checkpointed:
		j.state = JobCheckpointed
		j.errText = "checkpointed for shutdown; resumes on next boot"
		s.checkpointsSaved++
		s.cache.Abort(j.key, errCheckpointed)
		s.markFinishedLocked(j)
	case errors.Is(err, sweep.ErrCanceled):
		j.state = JobCanceled
		s.jobsCanceled++
		s.cache.Abort(j.key, err)
		s.markFinishedLocked(j)
	case err != nil:
		j.state = JobFailed
		j.errText = err.Error()
		s.jobsFailed++
		s.cache.Abort(j.key, err)
		s.markFinishedLocked(j)
	default:
		if resumed {
			s.checkpointsResumed++
		}
		j.state = JobDone
		j.source = SourceCompute
		j.report = rep
		j.done, j.total = len(rep.Cases), len(rep.Cases)
		s.jobsDone++
		s.simSeconds += rep.SimSeconds
		s.cache.Complete(j.key, rep)
		s.markFinishedLocked(j)
	}
	s.mu.Unlock()

	// Replicate to the owning peer (best-effort, bounded by the peer
	// timeout) so the ring converges: the next lookup for this hash on
	// any node finds it at its owner.
	if err == nil {
		s.pushToOwner(j.hash, rep)
	}
}

// execute runs a leader job's spec — resuming from a persisted
// checkpoint when one exists, computing from scratch otherwise.
// resumed reports whether a checkpoint was consumed. Callers must not
// hold s.mu.
func (s *Server) execute(j *job) (rep *result.Report, resumed bool, err error) {
	opts := result.Options{
		Workers:       s.cfg.SweepWorkers,
		Trace:         !j.spec.HasSweep(),
		TraceInterval: traceInterval(float64(j.spec.Duration)),
		Cancel:        j.cancel,
		Progress: func(done, total int) {
			s.mu.Lock()
			j.done, j.total = done, total
			s.mu.Unlock()
		},
	}
	if st := s.cfg.Checkpoints; st != nil {
		opts.Checkpoint = s.ckptReq
		if rec, ok := st.Get(j.key); ok {
			rep, err = result.ResumeSpec(j.spec, rec.State, opts)
			var ck *scenario.CheckpointError
			if err == nil || errors.Is(err, sweep.ErrCanceled) || errors.As(err, &ck) {
				return rep, true, err
			}
			// The persisted state is unusable (stale envelope, corrupt
			// blob): drop it and compute from scratch rather than failing
			// a job the engine can still run.
			st.Delete(j.key)
		}
	}
	rep, err = result.RunSpec(j.spec, opts)
	return rep, false, err
}

// saveCheckpoint persists a suspended job's engine state keyed by its
// cache key, alongside the canonical spec the next boot resubmits.
// Callers must not hold s.mu.
func (s *Server) saveCheckpoint(j *job, state []byte) error {
	canon, err := j.spec.Canonical()
	if err != nil {
		return err
	}
	return s.cfg.Checkpoints.Put(j.key, canon, state)
}

// ResumeCheckpoints resubmits every job a previous process checkpointed
// on shutdown. Call it after Start (typically in its own goroutine —
// submissions pace themselves against the queue via SubmitWait); the
// resubmitted jobs find their persisted state through the normal
// execution path and finish byte-identical to uninterrupted runs. It
// returns the number of jobs resubmitted.
func (s *Server) ResumeCheckpoints(ctx context.Context) int {
	st := s.cfg.Checkpoints
	if st == nil {
		return 0
	}
	n := 0
	for _, rec := range st.List() {
		js, err := s.SubmitWait(ctx, rec.Spec)
		if err != nil {
			continue
		}
		n++
		if CacheKey(js.Hash) != rec.Key {
			// The record predates an engine-version bump: the fresh
			// submission runs under a new key, so the stale state can
			// never be consumed — drop it.
			st.Delete(rec.Key)
		}
	}
	return n
}

// pushToOwner replicates a computed report to the hash's owning peer,
// if that peer is not this node. Best-effort, bounded by the peer
// timeout; callers must not hold s.mu.
func (s *Server) pushToOwner(hash string, rep *result.Report) {
	if s.peers == nil {
		return
	}
	if owner := s.peers.owner(hash); owner != s.peers.self {
		if pushErr := s.peers.push(owner, hash, rep); pushErr == nil {
			s.addPeerCounts(func() { s.peerPushes++ })
		} else {
			s.addPeerCounts(func() { s.peerErrors++ })
		}
	}
}

// fetchCold consults the cold cache tiers for a leader's key: the disk
// CAS, then the owning peer. It returns a decoded report and its
// provenance, or nil to compute locally. Callers must not hold s.mu.
func (s *Server) fetchCold(key, hash string, cancel chan struct{}) (*result.Report, string) {
	if s.cfg.CAS != nil {
		if data, ok := s.cfg.CAS.Get(key); ok {
			if rep, err := result.DecodeReport(data); err == nil {
				s.addPeerCounts(func() { s.diskHits++ })
				return rep, SourceDisk
			}
			// Undecodable despite a clean checksum (stale codec): miss.
			s.addPeerCounts(func() { s.diskMisses++ })
		} else {
			s.addPeerCounts(func() { s.diskMisses++ })
		}
	}
	if s.peers != nil {
		if owner := s.peers.owner(hash); owner != s.peers.self {
			rep, err := s.peers.lookup(owner, hash, cancel)
			switch {
			case rep != nil:
				s.addPeerCounts(func() { s.peerHits++ })
				// Write through to disk: a peer hit should survive our own
				// restarts too.
				if s.cfg.CAS != nil {
					if data, encErr := result.EncodeReport(rep); encErr == nil {
						s.cfg.CAS.Put(key, data)
					}
				}
				return rep, SourcePeer
			case err == nil:
				s.addPeerCounts(func() { s.peerMisses++ })
			default:
				s.addPeerCounts(func() { s.peerErrors++ })
			}
		}
	}
	return nil, ""
}

// addPeerCounts runs a counter mutation under s.mu — tiny helper so the
// cold path's counting stays race-free without holding the lock across
// I/O.
func (s *Server) addPeerCounts(fn func()) {
	s.mu.Lock()
	fn()
	s.mu.Unlock()
}

// maxTraceSamples bounds a captured trace's length: the daemon records
// every single-run job's V_CC trace (so /trace is always servable and
// cache entries stay self-contained), and long simulated durations must
// not translate into unbounded trace memory. 20k samples ≈ sub-MB of
// CSV per job, so the worst case across the cache and job-history
// bounds stays in the low hundreds of MB.
const maxTraceSamples = 20_000

// traceInterval picks the trace sampling interval for a run of the
// given simulated duration: the CLI-matching default, stretched so the
// trace never exceeds maxTraceSamples points per series. The recorder
// keeps samples at both ends of the run — up to duration/interval + 1
// of them — so the divisor is maxTraceSamples−1: stretching to exactly
// duration/maxTraceSamples would admit maxTraceSamples+1 points, one
// over the bound.
func traceInterval(duration float64) float64 {
	iv := result.TraceInterval
	if duration/iv > float64(maxTraceSamples-1) {
		iv = duration / float64(maxTraceSamples-1)
	}
	return iv
}

// Job returns a job's status snapshot.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs lists every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id].status()
	}
	return out
}

// Result returns a job's report alongside its status. The report is
// non-nil only in state "done".
func (s *Server) Result(id string) (*result.Report, JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	return j.report, j.status(), true
}

// Cancel requests a job's cancellation. Queued jobs cancel immediately;
// running jobs stop promptly — no new sweep case starts and the case
// currently stepping aborts at its next step boundary (lab.Setup.Abort).
// A run that has already finished its last case may still complete as
// "done". Finished jobs are unaffected.
func (s *Server) Cancel(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	switch j.state {
	case JobQueued:
		j.state = JobCanceled
		s.jobsCanceled++
		s.removePendingLocked(j) // free the queue slot immediately
		if j.lead {
			// Release any single-flight waiters and free the key so a
			// resubmission recomputes.
			s.cache.Abort(j.key, sweep.ErrCanceled)
		}
		s.closeCancelLocked(j)
		s.markFinishedLocked(j)
	case JobRunning:
		s.closeCancelLocked(j) // state flips when the worker observes it
	}
	return j.status(), true
}

// removePendingLocked removes j from the pending queue, if present —
// canceled jobs must not hold queue slots (a job already popped by a
// worker is simply absent; runJob's state check skips it). Callers hold
// s.mu.
func (s *Server) removePendingLocked(j *job) {
	for i, p := range s.pending {
		if p == j {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			return
		}
	}
}

// closeCancelLocked closes j.cancel exactly once. Callers hold s.mu.
func (s *Server) closeCancelLocked(j *job) {
	if !j.canceled {
		j.canceled = true
		close(j.cancel)
	}
}

// Metrics snapshots the server counters.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	m := Metrics{
		JobsDone:      s.jobsDone,
		JobsFailed:    s.jobsFailed,
		JobsCanceled:  s.jobsCanceled,
		CacheHits:     s.cacheHits,
		CacheMisses:   s.cacheMisses,
		CacheEntries:  s.cache.Len(),
		SimSeconds:    s.simSeconds,
		QueueDepth:    len(s.pending),
		QueueBound:    s.cfg.queueDepth(),
		QueueCapacity: s.cfg.queueDepth() - len(s.pending),
		DiskHits:      s.diskHits,
		DiskMisses:    s.diskMisses,
		PeerHits:      s.peerHits,
		PeerMisses:    s.peerMisses,
		PeerErrors:    s.peerErrors,
		PeerPushes:    s.peerPushes,

		ExplorationsDone:   s.explorationsDone,
		ExploreProbes:      s.exploreProbes,
		ExploreCacheHits:   s.exploreHits,
		ExploreCacheMisses: s.exploreMisses,

		CheckpointsSaved:   s.checkpointsSaved,
		CheckpointsResumed: s.checkpointsResumed,
	}
	for _, j := range s.jobs {
		if j.state == JobRunning {
			m.JobsRunning++
		}
	}
	// Only leaders occupy queue slots; followers are reported
	// separately so the queue gauges stay mutually consistent.
	m.JobsQueued = len(s.pending)
	m.JobsWaiting = s.followersLocked()
	s.mu.Unlock()

	// The CAS keeps its own counters; snapshot them outside s.mu (the
	// store has its own lock).
	if s.cfg.CAS != nil {
		st := s.cfg.CAS.Stats()
		m.DiskEntries = st.Entries
		m.DiskBytes = st.Bytes
		m.DiskEvictions = st.Evictions
		m.DiskCorrupt = st.Corrupt
		m.DiskWriteErrors = st.WriteErrors
	}
	if s.cfg.Checkpoints != nil {
		m.CheckpointsPending = s.cfg.Checkpoints.Len()
	}
	return m
}
