package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/registry"
	"repro/internal/result"
	"repro/internal/scenario"
	"repro/internal/source"
	"repro/internal/transient"
)

// maxSpecBytes bounds a submitted spec body.
const maxSpecBytes = 1 << 20

// traceChunk is the streaming granularity of the trace endpoint.
const traceChunk = 32 << 10

// Handler returns the daemon's REST surface:
//
//	POST   /v1/jobs          submit a scenario spec (JSON body)
//	GET    /v1/jobs          list jobs
//	GET    /v1/jobs/{id}     poll one job
//	DELETE /v1/jobs/{id}     cancel one job
//	GET    /v1/jobs/{id}/result   the report, byte-identical to `ehsim -scenario`
//	GET    /v1/jobs/{id}/trace    the captured V_CC trace, streamed as chunked CSV
//	POST   /v1/batches       submit N specs; per-spec completions stream back as NDJSON
//	POST   /v1/explorations  submit an exploration spec; runs as a job, probes ride the cache tiers
//	GET    /v1/cache/{hash}  peer cache lookup: the encoded report for a spec hash
//	PUT    /v1/cache/{hash}  peer cache push: adopt a report computed elsewhere
//	GET    /v1/registry      machine-readable form of `ehsim -list`
//	GET    /metrics          queue/cache/work counters, Prometheus text format
//	GET    /healthz          liveness probe
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/batches", s.handleBatch)
	mux.HandleFunc("POST /v1/explorations", s.handleSubmitExploration)
	mux.HandleFunc("GET /v1/cache/{hash}", s.handleCacheGet)
	mux.HandleFunc("PUT /v1/cache/{hash}", s.handleCachePut)
	mux.HandleFunc("GET /v1/registry", s.handleRegistry)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError renders a JSON error body.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retrySeconds renders the Retry-After hint (whole seconds, min 1).
func (s *Server) retrySeconds() string {
	secs := int(s.RetryAfter().Seconds())
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// readSpecBody reads a bounded spec body, writing the error response
// itself on failure.
func readSpecBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "reading spec: %v", err)
		} else {
			writeError(w, http.StatusBadRequest, "reading spec: %v", err)
		}
		return nil, false
	}
	return body, true
}

// writeSubmitError maps a submission error onto its response; it
// reports whether it wrote one.
func (s *Server) writeSubmitError(w http.ResponseWriter, err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", s.retrySeconds())
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", s.retrySeconds())
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
	return true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := readSpecBody(w, r)
	if !ok {
		return
	}
	st, err := s.Submit(body)
	if s.writeSubmitError(w, err) {
		return
	}
	code := http.StatusAccepted
	if st.State == JobDone {
		code = http.StatusOK // cache hit: nothing left to wait for
	}
	writeJSON(w, code, st)
}

// handleSubmitExploration accepts an exploration spec and queues it as
// a job. The response is always 202: explorations are never served
// whole from cache — their probes are the cached unit — so there is
// always a run to wait for. Poll, cancel, and fetch the report through
// the job endpoints.
func (s *Server) handleSubmitExploration(w http.ResponseWriter, r *http.Request) {
	body, ok := readSpecBody(w, r)
	if !ok {
		return
	}
	st, err := s.SubmitExploration(body)
	if s.writeSubmitError(w, err) {
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// notReady maps an unfinished job's state onto a response for the
// result/trace endpoints; it reports whether it wrote one.
func (s *Server) notReady(w http.ResponseWriter, st JobStatus) bool {
	switch st.State {
	case JobDone:
		return false
	case JobFailed:
		writeError(w, http.StatusInternalServerError, "job %s failed: %s", st.ID, st.Error)
	case JobCanceled:
		writeError(w, http.StatusGone, "job %s was canceled", st.ID)
	case JobCheckpointed:
		w.Header().Set("Retry-After", s.retrySeconds())
		writeError(w, http.StatusServiceUnavailable,
			"job %s was checkpointed for shutdown; resubmit the spec after the daemon restarts", st.ID)
	default: // queued, running
		w.Header().Set("Retry-After", s.retrySeconds())
		writeJSON(w, http.StatusConflict, st)
	}
	return true
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	rep, st, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if s.notReady(w, st) {
		return
	}
	// The body is served verbatim from the shared renderer, so it is
	// byte-identical to `ehsim -scenario` stdout for the same spec.
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Spec-Hash", st.Hash)
	io.WriteString(w, rep.Text)
}

// Windowed-trace query bounds: points defaults to defaultTracePoints
// buckets and is clamped to maxTracePoints — the endpoint's cost is
// O(points), independent of the underlying series length, so the bound
// is about response size, not compute.
const (
	defaultTracePoints = 256
	maxTracePoints     = 10_000
)

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	rep, st, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	if s.notReady(w, st) {
		return
	}
	if rep.TraceCSV == nil {
		writeError(w, http.StatusNotFound,
			"job %s has no trace (traces are captured for single-run specs only)", st.ID)
		return
	}
	q := r.URL.Query()
	if q.Has("from") || q.Has("to") || q.Has("points") {
		s.serveTraceWindow(w, st, rep, q)
		return
	}
	// Unqualified: the full CSV, byte-identical to the CLI's trace file.
	// Stream in bounded chunks — no Content-Length, so net/http uses
	// chunked transfer encoding and clients can consume the CSV as it
	// arrives.
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("X-Spec-Hash", st.Hash)
	flusher, _ := w.(http.Flusher)
	for data := rep.TraceCSV; len(data) > 0; {
		n := min(traceChunk, len(data))
		if _, err := w.Write(data[:n]); err != nil {
			return
		}
		data = data[n:]
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// traceQueryFloat parses one optional float query parameter.
func traceQueryFloat(q url.Values, name string, fallback float64) (float64, error) {
	raw := q.Get(name)
	if raw == "" {
		return fallback, nil
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("query parameter %s=%q is not a finite number", name, raw)
	}
	return v, nil
}

// serveTraceWindow answers a windowed trace query: server-side min/max
// decimation of [from, to] into at most `points` buckets per series,
// O(points) regardless of how many samples the trace holds. Defaults:
// the trace's full time range and defaultTracePoints buckets.
func (s *Server) serveTraceWindow(w http.ResponseWriter, st JobStatus, rep *result.Report, q url.Values) {
	if rep.Trace == nil {
		writeError(w, http.StatusBadRequest,
			"job %s carries a pre-columnar trace; only the unqualified full-CSV form is available", st.ID)
		return
	}
	lo, hi, _ := rep.Trace.TimeRange()
	from, err := traceQueryFloat(q, "from", lo)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	to, err := traceQueryFloat(q, "to", hi)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if to < from {
		writeError(w, http.StatusBadRequest, "query window is empty: from=%g > to=%g", from, to)
		return
	}
	points := defaultTracePoints
	if raw := q.Get("points"); raw != "" {
		points, err = strconv.Atoi(raw)
		if err != nil || points < 1 {
			writeError(w, http.StatusBadRequest, "query parameter points=%q must be a positive integer", raw)
			return
		}
		if points > maxTracePoints {
			points = maxTracePoints
		}
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	w.Header().Set("X-Spec-Hash", st.Hash)
	fmt.Fprintf(w, "# spec-hash: %s\n", st.Hash)
	rep.Trace.WriteWindowCSV(w, from, to, points)
}

// registryEntry is one name in the /v1/registry listing.
type registryEntry struct {
	Name      string           `json:"name"`
	Desc      string           `json:"desc"`
	Kind      string           `json:"kind,omitempty"`      // sources: voltage|power
	UnifiedNV bool             `json:"unifiednv,omitempty"` // runtimes on unified-NV devices
	Params    []registryParam  `json:"params,omitempty"`
	Metrics   []registryMetric `json:"metrics,omitempty"` // models: objectives explorations can target
}

// registryParam documents one tunable.
type registryParam struct {
	Key     string  `json:"key"`
	Default float64 `json:"default"`
	Desc    string  `json:"desc,omitempty"`
}

// registryMetric documents one structured metric a model reports — the
// objective vocabulary for exploration specs.
type registryMetric struct {
	Key  string `json:"key"`
	Unit string `json:"unit,omitempty"`
	Desc string `json:"desc,omitempty"`
}

func docMetrics(ms []scenario.MetricDoc) []registryMetric {
	if len(ms) == 0 {
		return nil
	}
	out := make([]registryMetric, len(ms))
	for i, m := range ms {
		out[i] = registryMetric{Key: m.Key, Unit: m.Unit, Desc: m.Desc}
	}
	return out
}

func docParams(ps []registry.ParamDoc) []registryParam {
	if len(ps) == 0 {
		return nil
	}
	out := make([]registryParam, len(ps))
	for i, p := range ps {
		out[i] = registryParam{Key: p.Key, Default: p.Default, Desc: p.Desc}
	}
	return out
}

// handleRegistry serves the machine-readable registry listing — the same
// facts `ehsim -list` prints, as JSON, so clients can discover valid
// spec names and parameter defaults before submitting.
func (s *Server) handleRegistry(w http.ResponseWriter, r *http.Request) {
	var modelEntries []registryEntry
	for _, n := range scenario.ModelNames() {
		m, _ := scenario.LookupModel(n)
		modelEntries = append(modelEntries, registryEntry{
			Name: n, Desc: m.Desc(), Params: docParams(m.Params()), Metrics: docMetrics(m.Metrics()),
		})
	}
	var workloads []registryEntry
	for _, n := range programs.Names() {
		f, _ := programs.Lookup(n)
		workloads = append(workloads, registryEntry{Name: n, Desc: f.Desc})
	}
	var sources []registryEntry
	for _, n := range source.Names() {
		e, _ := source.Lookup(n)
		kind := "voltage"
		if e.Power {
			kind = "power"
		}
		sources = append(sources, registryEntry{Name: n, Desc: e.Desc, Kind: kind, Params: docParams(e.Params)})
	}
	var runtimes []registryEntry
	for _, n := range transient.RuntimeNames() {
		e, _ := transient.LookupRuntime(n)
		runtimes = append(runtimes, registryEntry{Name: n, Desc: e.Desc, UnifiedNV: e.UnifiedNV, Params: docParams(e.Params)})
	}
	var governors []registryEntry
	for _, n := range powerneutral.GovernorNames() {
		e, _ := powerneutral.LookupGovernor(n)
		governors = append(governors, registryEntry{Name: n, Desc: e.Desc, Params: docParams(e.Params)})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"engine":    result.EngineVersion,
		"models":    modelEntries,
		"workloads": workloads,
		"sources":   sources,
		"runtimes":  runtimes,
		"governors": governors,
	})
}

// handleMetrics serves the counters in Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ehsimd_jobs_queued %d\n", m.JobsQueued)
	fmt.Fprintf(w, "ehsimd_jobs_waiting %d\n", m.JobsWaiting)
	fmt.Fprintf(w, "ehsimd_jobs_running %d\n", m.JobsRunning)
	fmt.Fprintf(w, "ehsimd_jobs_done_total %d\n", m.JobsDone)
	fmt.Fprintf(w, "ehsimd_jobs_failed_total %d\n", m.JobsFailed)
	fmt.Fprintf(w, "ehsimd_jobs_canceled_total %d\n", m.JobsCanceled)
	fmt.Fprintf(w, "ehsimd_queue_depth %d\n", m.QueueDepth)
	fmt.Fprintf(w, "ehsimd_queue_bound %d\n", m.QueueBound)
	fmt.Fprintf(w, "ehsimd_queue_free %d\n", m.QueueCapacity)
	fmt.Fprintf(w, "ehsimd_cache_hits_total %d\n", m.CacheHits)
	fmt.Fprintf(w, "ehsimd_cache_misses_total %d\n", m.CacheMisses)
	fmt.Fprintf(w, "ehsimd_cache_entries %d\n", m.CacheEntries)
	fmt.Fprintf(w, "ehsimd_cache_hit_ratio %g\n", m.HitRatio())
	fmt.Fprintf(w, "ehsimd_disk_hits_total %d\n", m.DiskHits)
	fmt.Fprintf(w, "ehsimd_disk_misses_total %d\n", m.DiskMisses)
	fmt.Fprintf(w, "ehsimd_disk_entries %d\n", m.DiskEntries)
	fmt.Fprintf(w, "ehsimd_disk_bytes %d\n", m.DiskBytes)
	fmt.Fprintf(w, "ehsimd_disk_evictions_total %d\n", m.DiskEvictions)
	fmt.Fprintf(w, "ehsimd_disk_corrupt_total %d\n", m.DiskCorrupt)
	fmt.Fprintf(w, "ehsimd_disk_write_errors_total %d\n", m.DiskWriteErrors)
	fmt.Fprintf(w, "ehsimd_peer_hits_total %d\n", m.PeerHits)
	fmt.Fprintf(w, "ehsimd_peer_misses_total %d\n", m.PeerMisses)
	fmt.Fprintf(w, "ehsimd_peer_errors_total %d\n", m.PeerErrors)
	fmt.Fprintf(w, "ehsimd_peer_pushes_total %d\n", m.PeerPushes)
	fmt.Fprintf(w, "ehsimd_explorations_done_total %d\n", m.ExplorationsDone)
	fmt.Fprintf(w, "ehsimd_explore_probes_total %d\n", m.ExploreProbes)
	fmt.Fprintf(w, "ehsimd_explore_cache_hits_total %d\n", m.ExploreCacheHits)
	fmt.Fprintf(w, "ehsimd_explore_cache_misses_total %d\n", m.ExploreCacheMisses)
	fmt.Fprintf(w, "ehsimd_checkpoints_saved_total %d\n", m.CheckpointsSaved)
	fmt.Fprintf(w, "ehsimd_checkpoints_resumed_total %d\n", m.CheckpointsResumed)
	fmt.Fprintf(w, "ehsimd_checkpoints_pending %d\n", m.CheckpointsPending)
	fmt.Fprintf(w, "ehsimd_sim_seconds_total %g\n", m.SimSeconds)
}
