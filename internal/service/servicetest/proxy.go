// Package servicetest boots multi-node ehsimd clusters in-process for
// integration tests: every node is a real service.Server behind a real
// loopback listener, and all peer traffic flows through a per-node
// fault-injection proxy so tests can make a peer refuse connections,
// answer slowly, or disconnect mid-body without touching the node
// itself.
package servicetest

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP relay with switchable faults. It sits between a node's
// advertised address (the proxy listener — what peers dial) and the
// node's actual HTTP listener (the backend), so injected faults affect
// exactly the traffic a real network fault would: everything addressed
// to the node from outside.
//
// Faults are sampled once per connection, when it is accepted; flipping
// a fault never disturbs connections already relaying.
type Proxy struct {
	ln net.Listener

	mu       sync.Mutex
	backend  string        // node's real listener address
	refuse   bool          // drop connections on accept (node "down")
	latency  time.Duration // sleep before dialing the backend (node "slow")
	cutAfter int64         // >0: close both ends after relaying this many response bytes
}

// NewProxy starts a relay on a fresh loopback port. The backend is set
// later (SetBackend) — the proxy's address must exist before the node
// boots, because it is the node's advertised identity on the ring.
func NewProxy() (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln}
	go p.acceptLoop()
	return p, nil
}

// URL is the proxy's base URL — the node's advertised address.
func (p *Proxy) URL() string { return "http://" + p.ln.Addr().String() }

// SetBackend points the relay at the node's real listener. Called on
// boot and again on every restart (the backend port changes).
func (p *Proxy) SetBackend(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.backend = addr
}

// Refuse makes new connections fail immediately, like a dead host.
func (p *Proxy) Refuse(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refuse = v
}

// SetLatency delays each new connection before the backend dial — a
// slow peer. Set it past the cluster's peer timeout to force timeouts.
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.latency = d
}

// CutResponseAfter relays only n bytes of each response (headers
// included) and then drops both ends — a mid-body disconnect.
func (p *Proxy) CutResponseAfter(n int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cutAfter = n
}

// Reset clears all injected faults.
func (p *Proxy) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refuse, p.latency, p.cutAfter = false, 0, 0
}

// Close stops accepting. Existing relays finish on their own.
func (p *Proxy) Close() { p.ln.Close() }

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		go p.relay(conn)
	}
}

func (p *Proxy) relay(client net.Conn) {
	p.mu.Lock()
	refuse, latency, cut, backend := p.refuse, p.latency, p.cutAfter, p.backend
	p.mu.Unlock()

	if refuse || backend == "" {
		client.Close()
		return
	}
	if latency > 0 {
		time.Sleep(latency)
	}
	server, err := net.Dial("tcp", backend)
	if err != nil {
		client.Close()
		return
	}

	done := make(chan struct{}, 2)
	go func() { // request direction
		io.Copy(server, client)
		if tc, ok := server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}()
	go func() { // response direction — where the cut applies
		if cut > 0 {
			io.CopyN(client, server, cut)
			client.Close()
			server.Close()
		} else {
			io.Copy(client, server)
			if tc, ok := client.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}
		done <- struct{}{}
	}()
	<-done
	<-done
	client.Close()
	server.Close()
}
