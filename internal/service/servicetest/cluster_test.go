package servicetest

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/scenario"
	"repro/internal/service"
)

// expectedText renders a spec exactly as the service does, independent
// of any cluster — the reference for "correct body" assertions.
func expectedText(t *testing.T, spec string) string {
	t.Helper()
	sp, err := scenario.Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := result.RunSpec(sp, result.Options{
		Trace:         !sp.HasSweep(),
		TraceInterval: result.TraceInterval,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep.Text
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// Routing is a pure function of the URL set and the hash: every node
// must compute the same owner regardless of the order it learned its
// peers in, or the ring diverges and federation silently degrades.
func TestRoutingIsDeterministicAcrossRingPermutations(t *testing.T) {
	nodes := []string{
		"http://127.0.0.1:9001",
		"http://127.0.0.1:9002",
		"http://127.0.0.1:9003",
	}
	perms := [][]string{
		{nodes[0], nodes[1], nodes[2]},
		{nodes[0], nodes[2], nodes[1]},
		{nodes[1], nodes[0], nodes[2]},
		{nodes[1], nodes[2], nodes[0]},
		{nodes[2], nodes[0], nodes[1]},
		{nodes[2], nodes[1], nodes[0]},
	}
	counts := map[string]int{}
	for i := 0; i < 64; i++ {
		hash := fmt.Sprintf("sha256:%064d", i)
		want := service.Owner(perms[0], hash)
		for _, p := range perms[1:] {
			if got := service.Owner(p, hash); got != want {
				t.Fatalf("hash %s: owner %q under %v, %q under %v", hash, got, p, want, perms[0])
			}
		}
		counts[want]++
	}
	// Rendezvous hashing should also spread keys: no node owns everything.
	for _, n := range nodes {
		if counts[n] == 0 || counts[n] == 64 {
			t.Errorf("degenerate key spread: %v", counts)
		}
	}
}

// A spec submitted to the "wrong" node computes there, replicates to
// its owner, and from then on both nodes serve the same bytes without
// recomputing.
func TestFederationConvergesToOwner(t *testing.T) {
	c := NewCluster(t, 2)
	a, b := c.Nodes[0], c.Nodes[1]
	spec, hash := c.OwnedSpec(0, "converge")

	finB, bodyB := b.Run(spec)
	if finB.Cached || finB.Source != service.SourceCompute {
		t.Fatalf("first run on B: cached=%v source=%q, want a fresh compute", finB.Cached, finB.Source)
	}
	if finB.Hash != hash {
		t.Fatalf("hash mismatch: job %s, minted %s", finB.Hash, hash)
	}
	if want := expectedText(t, spec); bodyB != want {
		t.Fatal("B's computed body differs from the reference renderer")
	}

	// The push to the owner is asynchronous after the job publishes.
	waitFor(t, "replication push", func() bool {
		return b.Server().Metrics().PeerPushes >= 1
	})

	// The owner now serves from its adopted memory tier — no compute.
	finA, bodyA := a.Run(spec)
	if !finA.Cached || finA.Source != service.SourceCache {
		t.Errorf("owner after push: cached=%v source=%q, want memory-cache hit", finA.Cached, finA.Source)
	}
	if bodyA != bodyB {
		t.Error("owner-served body differs from computing node's body")
	}
	// And the push was written through to the owner's disk tier.
	if !a.Store().Contains(service.CacheKey(hash)) {
		t.Error("owner's CAS missing the pushed result")
	}
}

// A spec owned by a peer that already has it is fetched, not
// recomputed: source "peer", byte-identical, written through to the
// fetching node's own disk tier.
func TestPeerLookupServesByteIdenticalResult(t *testing.T) {
	c := NewCluster(t, 2)
	a, b := c.Nodes[0], c.Nodes[1]
	spec, hash := c.OwnedSpec(0, "peerhit")

	_, bodyA := a.Run(spec)

	finB, bodyB := b.Run(spec)
	if !finB.Cached || finB.Source != service.SourcePeer {
		t.Fatalf("B: cached=%v source=%q, want a peer hit", finB.Cached, finB.Source)
	}
	if bodyB != bodyA {
		t.Error("peer-served body differs from the owner's computed body")
	}
	m := b.Server().Metrics()
	if m.PeerHits != 1 {
		t.Errorf("B PeerHits = %d, want 1", m.PeerHits)
	}
	if m.SimSeconds != 0 {
		t.Errorf("B simulated %v seconds; a peer hit must not compute", m.SimSeconds)
	}
	if !b.Store().Contains(service.CacheKey(hash)) {
		t.Error("peer hit not written through to B's CAS")
	}
}

// The fault matrix: every degraded peer path must end in a correct
// local compute — job done, body byte-identical to the reference
// renderer — never a failed job or a wrong body.
func TestFaultMatrixDegradesToLocalCompute(t *testing.T) {
	c := NewCluster(t, 2)
	a, b := c.Nodes[0], c.Nodes[1]

	cases := []struct {
		name   string
		arm    func(t *testing.T, spec, hash string)
		disarm func()
	}{
		{
			name: "peer-down",
			arm: func(t *testing.T, spec, hash string) {
				a.Proxy.Refuse(true)
			},
			disarm: func() { a.Proxy.Reset() },
		},
		{
			name: "peer-slow-past-timeout",
			arm: func(t *testing.T, spec, hash string) {
				a.Proxy.SetLatency(PeerTimeout * 4)
			},
			disarm: func() { a.Proxy.Reset() },
		},
		{
			name: "mid-body-disconnect",
			arm: func(t *testing.T, spec, hash string) {
				// The owner must have the result so the lookup gets far
				// enough to be cut mid-transfer. Cut past the response
				// headers (~300 bytes) but well short of the full blob,
				// so the disconnect lands inside the body proper.
				a.Run(spec)
				data, ok := a.Store().Get(service.CacheKey(hash))
				if !ok {
					t.Fatal("owner CAS missing the blob to truncate")
				}
				a.Proxy.CutResponseAfter(400 + int64(len(data))/2)
			},
			disarm: func() { a.Proxy.Reset() },
		},
		{
			name: "disk-write-error",
			arm: func(t *testing.T, spec, hash string) {
				b.FailDiskWrites(errors.New("injected: disk full"))
			},
			disarm: func() { b.FailDiskWrites(nil) },
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, hash := c.OwnedSpec(0, "fault-"+tc.name)
			tc.arm(t, spec, hash)
			defer tc.disarm()

			errsBefore := b.Server().Metrics().PeerErrors
			fin, body := b.Run(spec) // Run fails the test unless the job ends done
			if want := expectedText(t, spec); body != want {
				t.Error("degraded path served a wrong body")
			}
			switch tc.name {
			case "disk-write-error":
				if fin.Source != service.SourceCompute {
					t.Errorf("source = %q, want local compute", fin.Source)
				}
				if b.Store().Stats().WriteErrors == 0 {
					t.Error("injected disk fault not counted by the CAS")
				}
				if b.Store().Contains(service.CacheKey(hash)) {
					t.Error("CAS contains a key whose write was faulted")
				}
			default:
				if fin.Cached {
					t.Errorf("source = %q, want an uncached local compute", fin.Source)
				}
				if b.Server().Metrics().PeerErrors <= errsBefore {
					t.Error("peer fault not surfaced in the error counter")
				}
			}
		})
	}
}

// Single-flight holds across the federation: while the owner is
// computing a key, a peer routing the same spec rides that in-flight
// computation through the cache API instead of starting its own.
func TestSingleFlightAcrossNodes(t *testing.T) {
	c := NewCluster(t, 2)
	a, b := c.Nodes[0], c.Nodes[1]
	spec, hash := c.OwnedSpec(0, "oneflight")
	key := service.CacheKey(hash)

	// Claim the computation on the owner by hand so the test controls
	// exactly when it completes.
	entry, claim := a.Server().ResultCache().Begin(key)
	if claim != service.Lead {
		t.Fatalf("claim = %v, want Lead", claim)
	}
	_ = entry

	stB := b.Submit(spec)

	// B's lookup is now parked on A's in-flight entry. Complete it with
	// a real report after a beat.
	time.Sleep(100 * time.Millisecond)
	sp, err := scenario.Parse([]byte(spec))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := result.RunSpec(sp, result.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.Server().ResultCache().Complete(key, rep)

	finB := b.Await(stB.ID)
	if finB.State != service.JobDone {
		t.Fatalf("B job: state=%s err=%q", finB.State, finB.Error)
	}
	if !finB.Cached || finB.Source != service.SourcePeer {
		t.Fatalf("B: cached=%v source=%q, want a peer-served ride", finB.Cached, finB.Source)
	}
	body, gotHash := b.ResultBody(stB.ID)
	if body != rep.Text {
		t.Error("B served different bytes than the owner's completed report")
	}
	if gotHash != hash {
		t.Errorf("X-Spec-Hash = %q, want %q", gotHash, hash)
	}
	if m := b.Server().Metrics(); m.SimSeconds != 0 {
		t.Errorf("B simulated %v seconds; it must not have computed", m.SimSeconds)
	}
}

// A restarted node serves its pre-restart results from disk: the warm
// cache survives the process.
func TestRestartServesFromDisk(t *testing.T) {
	c := NewCluster(t, 2)
	a := c.Nodes[0]
	spec, _ := c.OwnedSpec(0, "restart")

	fin1, body1 := a.Run(spec)
	if fin1.Cached {
		t.Fatal("first run unexpectedly cached")
	}

	a.Restart()

	fin2, body2 := a.Run(spec)
	if !fin2.Cached || fin2.Source != service.SourceDisk {
		t.Fatalf("after restart: cached=%v source=%q, want a disk hit", fin2.Cached, fin2.Source)
	}
	if body2 != body1 {
		t.Error("disk-served body differs from the pre-restart body")
	}
	if m := a.Server().Metrics(); m.DiskHits < 1 {
		t.Errorf("DiskHits = %d, want ≥1", m.DiskHits)
	}
}

// The batch endpoint works across the federation: one POST to one node
// completes specs owned by every node, streaming each as it finishes.
func TestBatchStreamsAcrossFederation(t *testing.T) {
	c := NewCluster(t, 2)
	a := c.Nodes[0]

	specA, _ := c.OwnedSpec(0, "batch-a")
	specB, _ := c.OwnedSpec(1, "batch-b")
	req := fmt.Sprintf(`{"specs":[%s,%s]}`, specA, specB)

	resp, err := http.Post(a.DirectURL()+"/v1/batches", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}

	type line struct {
		Index  int    `json:"index"`
		ID     string `json:"id"`
		State  string `json:"state"`
		Error  string `json:"error"`
		Result string `json:"result"`
	}
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < 2; i++ {
		var ln line
		if err := dec.Decode(&ln); err != nil {
			t.Fatalf("stream line %d: %v", i, err)
		}
		if ln.State != "done" || ln.Error != "" {
			t.Fatalf("line %d: state=%s err=%q", ln.Index, ln.State, ln.Error)
		}
		spec := specA
		if ln.Index == 1 {
			spec = specB
		}
		if want := expectedText(t, spec); ln.Result != want {
			t.Errorf("line %d: streamed result differs from the reference renderer", ln.Index)
		}
	}
}
