package servicetest

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cas"
	"repro/internal/scenario"
	"repro/internal/service"
)

// PeerTimeout is the cluster-wide peer operation bound. Fault tests
// inject latency well past it to force timeouts without slowing the
// suite.
const PeerTimeout = 500 * time.Millisecond

// Node is one in-process daemon: a service.Server on a real loopback
// listener, a disk CAS in its own directory, and a fault proxy in front
// of everything its peers (and, by advertised URL, its clients) see.
type Node struct {
	t     *testing.T
	Proxy *Proxy

	dir   string   // CAS directory; survives Restart
	self  string   // advertised URL (the proxy)
	peers []string // the other nodes' advertised URLs

	mu      sync.Mutex
	diskErr error // non-nil: injected CAS write fault

	srv    *service.Server
	store  *cas.Store
	hs     *http.Server
	direct string // the real listener's base URL (bypasses the proxy)
}

// FailDiskWrites makes every CAS write on this node fail with err (nil
// clears the fault). Reads are unaffected — the fault models a full or
// read-only disk, not a missing one.
func (n *Node) FailDiskWrites(err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.diskErr = err
}

func (n *Node) writeFault() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.diskErr
}

// Server exposes the node's service for white-box assertions (metrics,
// cache claims).
func (n *Node) Server() *service.Server { return n.srv }

// Store exposes the node's disk CAS.
func (n *Node) Store() *cas.Store { return n.store }

// URL is the node's advertised base URL — traffic through it is subject
// to the proxy's faults.
func (n *Node) URL() string { return n.self }

// DirectURL bypasses the fault proxy; tests use it for client traffic
// so injected peer faults don't corrupt the test's own plumbing.
func (n *Node) DirectURL() string { return n.direct }

func (n *Node) start() {
	n.t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		n.t.Fatal(err)
	}
	store, err := cas.Open(n.dir, cas.Options{WriteFault: n.writeFault})
	if err != nil {
		n.t.Fatal(err)
	}
	srv := service.New(service.Config{
		JobWorkers:  2,
		CAS:         store,
		SelfURL:     n.self,
		Peers:       n.peers,
		PeerTimeout: PeerTimeout,
	}).Start()
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)

	n.srv, n.store, n.hs = srv, store, hs
	n.direct = "http://" + ln.Addr().String()
	n.Proxy.SetBackend(ln.Addr().String())
}

func (n *Node) stop() {
	n.srv.Drain()
	n.hs.Close()
}

// Restart drains and stops the node, then boots a fresh server process
// image over the same CAS directory — the crash/upgrade cycle. The
// advertised URL is stable (the proxy re-points at the new listener);
// the memory cache is gone; the disk tier persists.
func (n *Node) Restart() {
	n.t.Helper()
	n.stop()
	n.start()
}

// Submit POSTs a spec to the node (direct, unfaulted) and returns the
// accepted status.
func (n *Node) Submit(spec string) service.JobStatus {
	n.t.Helper()
	resp, err := http.Post(n.direct+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		n.t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		n.t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		n.t.Fatal(err)
	}
	return st
}

// Await polls a job until it leaves queued/running, then returns its
// terminal status.
func (n *Node) Await(id string) service.JobStatus {
	n.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(n.direct + "/v1/jobs/" + id)
		if err != nil {
			n.t.Fatal(err)
		}
		var st service.JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			n.t.Fatal(err)
		}
		if st.State != service.JobQueued && st.State != service.JobRunning {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	n.t.Fatalf("job %s did not finish in time", id)
	return service.JobStatus{}
}

// ResultBody fetches a done job's rendered report and the spec-hash
// header.
func (n *Node) ResultBody(id string) (string, string) {
	n.t.Helper()
	resp, err := http.Get(n.direct + "/v1/jobs/" + id + "/result")
	if err != nil {
		n.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		n.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		n.t.Fatalf("result: status %d: %s", resp.StatusCode, body)
	}
	return string(body), resp.Header.Get("X-Spec-Hash")
}

// Run submits a spec and waits it out, failing the test unless it ends
// done. Returns the terminal status and the result body.
func (n *Node) Run(spec string) (service.JobStatus, string) {
	n.t.Helper()
	st := n.Submit(spec)
	fin := n.Await(st.ID)
	if fin.State != service.JobDone {
		n.t.Fatalf("job %s: state=%s err=%q, want done", st.ID, fin.State, fin.Error)
	}
	body, _ := n.ResultBody(st.ID)
	return fin, body
}

// Cluster is N federated nodes, each peered with all others through
// their fault proxies.
type Cluster struct {
	t     *testing.T
	Nodes []*Node
}

// NewCluster boots n nodes on loopback, fully peered. Cleanup is
// registered on t.
func NewCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	proxies := make([]*Proxy, n)
	urls := make([]string, n)
	for i := range proxies {
		p, err := NewProxy()
		if err != nil {
			t.Fatal(err)
		}
		proxies[i] = p
		urls[i] = p.URL()
	}
	c := &Cluster{t: t}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		node := &Node{
			t:     t,
			Proxy: proxies[i],
			dir:   t.TempDir(),
			self:  urls[i],
			peers: peers,
		}
		node.start()
		c.Nodes = append(c.Nodes, node)
	}
	t.Cleanup(c.Close)
	return c
}

// Close drains every node and stops the proxies.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.stop()
		n.Proxy.Close()
	}
}

// Ring is the cluster's advertised URL set — the rendezvous ring every
// node routes over.
func (c *Cluster) Ring() []string {
	urls := make([]string, len(c.Nodes))
	for i, n := range c.Nodes {
		urls[i] = n.self
	}
	return urls
}

// Spec returns a fast-running scenario document salted with name.
func Spec(name string) string {
	return fmt.Sprintf(`{
		"name": %q,
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002
	}`, name)
}

// OwnedSpec mints a spec whose hash rendezvous-routes to the given
// node, by salting the scenario name until the ring agrees. Returns the
// spec document and its canonical hash.
func (c *Cluster) OwnedSpec(owner int, salt string) (string, string) {
	c.t.Helper()
	ring := c.Ring()
	want := c.Nodes[owner].self
	for i := 0; i < 4096; i++ {
		spec := Spec(fmt.Sprintf("%s-%d", salt, i))
		sp, err := scenario.Parse([]byte(spec))
		if err != nil {
			c.t.Fatal(err)
		}
		hash, err := sp.Hash()
		if err != nil {
			c.t.Fatal(err)
		}
		if service.Owner(ring, hash) == want {
			return spec, hash
		}
	}
	c.t.Fatalf("no spec routed to node %d in 4096 salts", owner)
	return "", ""
}
