package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
)

// Batch intake bounds. A batch is one heavy client's sweep, not a bulk
// import channel; the queue still paces actual execution.
const (
	maxBatchBytes = 16 << 20
	maxBatchSpecs = 1024
)

// batchRequest is the POST /v1/batches body: the specs to run, each a
// complete scenario document exactly as POST /v1/jobs accepts.
type batchRequest struct {
	Specs []json.RawMessage `json:"specs"`
}

// batchItem is one NDJSON line of the batch response stream, emitted
// when the corresponding spec finishes (completion order, correlated by
// Index). Done specs carry the full report text so a sweep client makes
// exactly one round trip.
type batchItem struct {
	Index  int      `json:"index"`
	ID     string   `json:"id,omitempty"`
	Hash   string   `json:"hash,omitempty"`
	State  JobState `json:"state,omitempty"`
	Cached bool     `json:"cached,omitempty"`
	Source string   `json:"source,omitempty"`
	Error  string   `json:"error,omitempty"`
	Result string   `json:"result,omitempty"`
}

// handleBatch accepts N specs in one request and streams one NDJSON
// line per spec as it completes. Intake respects the queue bound by
// waiting (not rejecting): a full queue paces the batch. Per-spec
// failures — invalid spec, failed job — become per-line errors; the
// stream itself stays 200 once headers are out.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBatchBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "reading batch: %v", err)
		} else {
			writeError(w, http.StatusBadRequest, "reading batch: %v", err)
		}
		return
	}
	var req batchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(req.Specs) == 0 {
		writeError(w, http.StatusBadRequest, "batch has no specs")
		return
	}
	if len(req.Specs) > maxBatchSpecs {
		writeError(w, http.StatusRequestEntityTooLarge, "batch has %d specs, limit %d", len(req.Specs), maxBatchSpecs)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Batch-Size", strconv.Itoa(len(req.Specs)))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	ctx := r.Context()
	items := make(chan batchItem)
	for i, spec := range req.Specs {
		go func(i int, spec []byte) {
			items <- s.runBatchSpec(ctx, i, spec)
		}(i, spec)
	}

	enc := json.NewEncoder(w)
	for n := 0; n < len(req.Specs); n++ {
		item := <-items
		if err := enc.Encode(item); err != nil {
			// Client went away; drain remaining completions so the
			// goroutines exit (their jobs still run to completion).
			go drainItems(items, len(req.Specs)-n-1)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// runBatchSpec submits one batch member (waiting out backpressure) and
// blocks until it finishes, returning its stream line.
func (s *Server) runBatchSpec(ctx context.Context, i int, spec []byte) batchItem {
	st, err := s.SubmitWait(ctx, spec)
	if err != nil {
		return batchItem{Index: i, Error: err.Error()}
	}
	fin, known, err := s.WaitJob(ctx, st.ID)
	if err != nil || !known {
		return batchItem{Index: i, ID: st.ID, Hash: st.Hash, Error: "wait interrupted"}
	}
	item := batchItem{
		Index:  i,
		ID:     fin.ID,
		Hash:   fin.Hash,
		State:  fin.State,
		Cached: fin.Cached,
		Source: fin.Source,
		Error:  fin.Error,
	}
	if fin.State == JobDone {
		if rep, _, ok := s.Result(fin.ID); ok && rep != nil {
			item.Result = rep.Text
		}
	}
	return item
}

// drainItems consumes the remaining completions of an abandoned batch.
func drainItems(items <-chan batchItem, n int) {
	for i := 0; i < n; i++ {
		<-items
	}
}
