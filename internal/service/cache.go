package service

import (
	"sync"

	"repro/internal/result"
)

// Claim is the caller's role after Cache.Begin.
type Claim int

const (
	// Lead: the key was absent; the caller owns the computation and must
	// finish it with Complete or Abort.
	Lead Claim = iota
	// Wait: another caller is computing the key; wait on Entry.Done,
	// then release the ride with Release.
	Wait
	// Done: the key is already computed; Entry.Report is ready.
	Done
)

// Entry is one cache slot. Report and Err are immutable once Done is
// closed; waiters must not read them before.
type Entry struct {
	// Done is closed when the computation completes or aborts.
	Done chan struct{}

	// Report is the computed result (nil after Abort).
	Report *result.Report

	// Err is the abort reason (nil after Complete).
	Err error

	// riders counts single-flight followers still resolving against this
	// entry (claimed Wait, not yet Released). Guarded by Cache.mu. An
	// entry with riders is exempt from cap eviction, and the job layer
	// keeps the leader's record pollable while riders remain.
	riders int
}

// Cache is the content-addressed result store: keys are canonical spec
// hashes mixed with the engine version, values are completed reports.
// It is single-flight — concurrent Begins for one key elect exactly one
// leader, and everyone else waits for that computation instead of
// duplicating it. Aborted computations are evicted, so a failed or
// canceled run never poisons the key: the next Begin leads again.
//
// Completed entries are bounded: beyond the cap the oldest-completed
// entry is evicted, so a long-running daemon's memory stays bounded.
// In-flight entries, and completed entries that still have riders (a
// follower between its leader's completion and its own resolution), are
// never evicted — eviction skips them and takes the next-oldest
// completed entry instead.
type Cache struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*Entry
	doneOrder []string // keys in completion order, oldest first
}

// NewCache returns an empty cache retaining at most cap completed
// entries (≤0 = unbounded).
func NewCache(cap int) *Cache {
	return &Cache{cap: cap, entries: make(map[string]*Entry)}
}

// Begin claims the key. The returned Entry is shared among everyone who
// asked for this key; the Claim tells the caller its role. A Wait claim
// registers the caller as a rider — it must call Release once it has
// read the entry's outcome.
func (c *Cache) Begin(key string) (*Entry, Claim) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.Done:
			return e, Done
		default:
			e.riders++
			return e, Wait
		}
	}
	e := &Entry{Done: make(chan struct{})}
	c.entries[key] = e
	return e, Lead
}

// Probe returns the key's entry without claiming anything: no leader
// election, no rider registration. Callers may wait on Entry.Done but
// must not mutate the entry. It is the peer-lookup read path.
func (c *Cache) Probe(key string) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	return e, ok
}

// Release ends a Wait claim's ride on e, making the entry evictable
// again once no riders remain.
func (c *Cache) Release(e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.riders > 0 {
		e.riders--
	}
}

// Riders reports e's current rider count.
func (c *Cache) Riders(e *Entry) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return e.riders
}

// Complete publishes the leader's report and releases all waiters,
// evicting the oldest completed riderless entry if the cap is exceeded.
func (c *Cache) Complete(key string, rep *result.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	select {
	case <-e.Done:
		return // already completed (e.g. adopted from a peer push)
	default:
	}
	e.Report = rep
	close(e.Done)
	c.doneOrder = append(c.doneOrder, key)
	c.evictLocked()
}

// AdoptCompleted inserts an externally computed report under key — the
// peer-push ingest path. The key must be absent: an in-flight local
// computation keeps its leader (the push is dropped, reported false),
// and a completed entry is left as is.
func (c *Cache) AdoptCompleted(key string, rep *result.Report) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &Entry{Done: make(chan struct{}), Report: rep}
	close(e.Done)
	c.entries[key] = e
	c.doneOrder = append(c.doneOrder, key)
	c.evictLocked()
	return true
}

// evictLocked enforces the completed-entry cap, oldest first, skipping
// entries that still have riders. Callers hold c.mu.
func (c *Cache) evictLocked() {
	if c.cap <= 0 {
		return
	}
	over := len(c.doneOrder) - c.cap
	if over <= 0 {
		return
	}
	keep := c.doneOrder[:0]
	for i, key := range c.doneOrder {
		e, ok := c.entries[key]
		if over > 0 && i != len(c.doneOrder)-1 {
			if !ok {
				over-- // stale order slot (key already replaced); drop it
				continue
			}
			if e.riders == 0 {
				delete(c.entries, key)
				over--
				continue
			}
		}
		keep = append(keep, key)
	}
	c.doneOrder = keep
}

// Abort evicts the in-flight key and releases its waiters with err.
func (c *Cache) Abort(key string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	select {
	case <-e.Done:
		return // already completed; nothing to abort
	default:
	}
	e.Err = err
	close(e.Done)
	delete(c.entries, key)
}

// Len returns the number of resident entries (completed and in-flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
