package service

import (
	"sync"

	"repro/internal/result"
)

// Claim is the caller's role after Cache.Begin.
type Claim int

const (
	// Lead: the key was absent; the caller owns the computation and must
	// finish it with Complete or Abort.
	Lead Claim = iota
	// Wait: another caller is computing the key; wait on Entry.Done.
	Wait
	// Done: the key is already computed; Entry.Report is ready.
	Done
)

// Entry is one cache slot. Report and Err are immutable once Done is
// closed; waiters must not read them before.
type Entry struct {
	// Done is closed when the computation completes or aborts.
	Done chan struct{}

	// Report is the computed result (nil after Abort).
	Report *result.Report

	// Err is the abort reason (nil after Complete).
	Err error
}

// Cache is the content-addressed result store: keys are canonical spec
// hashes mixed with the engine version, values are completed reports.
// It is single-flight — concurrent Begins for one key elect exactly one
// leader, and everyone else waits for that computation instead of
// duplicating it. Aborted computations are evicted, so a failed or
// canceled run never poisons the key: the next Begin leads again.
//
// Completed entries are bounded: beyond the cap the oldest-completed
// entry is evicted, so a long-running daemon's memory stays bounded.
// In-flight entries are never evicted.
type Cache struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*Entry
	doneOrder []string // keys in completion order, oldest first
}

// NewCache returns an empty cache retaining at most cap completed
// entries (≤0 = unbounded).
func NewCache(cap int) *Cache {
	return &Cache{cap: cap, entries: make(map[string]*Entry)}
}

// Begin claims the key. The returned Entry is shared among everyone who
// asked for this key; the Claim tells the caller its role.
func (c *Cache) Begin(key string) (*Entry, Claim) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		select {
		case <-e.Done:
			return e, Done
		default:
			return e, Wait
		}
	}
	e := &Entry{Done: make(chan struct{})}
	c.entries[key] = e
	return e, Lead
}

// Complete publishes the leader's report and releases all waiters,
// evicting the oldest completed entry if the cap is exceeded.
func (c *Cache) Complete(key string, rep *result.Report) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	e.Report = rep
	close(e.Done)
	c.doneOrder = append(c.doneOrder, key)
	for c.cap > 0 && len(c.doneOrder) > c.cap {
		old := c.doneOrder[0]
		c.doneOrder = c.doneOrder[1:]
		delete(c.entries, old)
	}
}

// Abort evicts the in-flight key and releases its waiters with err.
func (c *Cache) Abort(key string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	select {
	case <-e.Done:
		return // already completed; nothing to abort
	default:
	}
	e.Err = err
	close(e.Done)
	delete(c.entries, key)
}

// Len returns the number of resident entries (completed and in-flight).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
