package service

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/result"
	"repro/internal/scenario"
)

// ckptSpec is a single-run spec long enough (5M integration steps) that
// a drain issued right after submission always lands mid-run.
const ckptSpec = `{"name":"ckpt-drain","model":"eneutral",
	"source":{"name":"const-power","params":{"p":"50m"}},"duration":5000000}`

func TestDrainCheckpointsRunningJobAndResumesByteIdentical(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// The uninterrupted reference, rendered with the daemon's own
	// options so the trace bytes are comparable too.
	sp, err := scenario.Parse([]byte(ckptSpec))
	if err != nil {
		t.Fatal(err)
	}
	want, err := result.RunSpec(sp, result.Options{
		Trace:         true,
		TraceInterval: traceInterval(float64(sp.Duration)),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Boot 1: accept the job, then drain while it runs.
	s1 := New(Config{Checkpoints: store}).Start()
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()
	st, resp := submit(t, ts1, ckptSpec)
	if resp.StatusCode != 202 {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	s1.Drain()

	fin, ok := s1.Job(st.ID)
	if !ok || fin.State != JobCheckpointed {
		t.Fatalf("after drain: %+v, want state %q", fin, JobCheckpointed)
	}
	if code, body, _ := getBody(t, ts1.URL+"/v1/jobs/"+st.ID+"/result"); code != 503 {
		t.Errorf("checkpointed job result = %d (%s), want 503", code, body)
	}
	if store.Len() != 1 {
		t.Fatalf("checkpoint store holds %d records, want 1", store.Len())
	}
	if m := s1.Metrics(); m.CheckpointsSaved != 1 || m.CheckpointsPending != 1 {
		t.Errorf("boot-1 metrics: saved=%d pending=%d, want 1/1", m.CheckpointsSaved, m.CheckpointsPending)
	}

	// Boot 2: same store, resume, and the finished result must match the
	// uninterrupted reference byte for byte — report and trace.
	s2 := New(Config{Checkpoints: store}).Start()
	ts2 := httptest.NewServer(s2.Handler())
	defer func() { ts2.Close(); s2.Drain() }()
	if n := s2.ResumeCheckpoints(context.Background()); n != 1 {
		t.Fatalf("ResumeCheckpoints = %d, want 1", n)
	}
	jobs := s2.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("boot 2 carries %d jobs, want the 1 resumed", len(jobs))
	}
	fin2 := await(t, ts2, jobs[0].ID)
	if fin2.State != JobDone {
		t.Fatalf("resumed job: %+v", fin2)
	}
	if code, body, _ := getBody(t, ts2.URL+"/v1/jobs/"+fin2.ID+"/result"); code != 200 || body != want.Text {
		t.Errorf("resumed result (status %d) diverges from uninterrupted run:\n%s\n---\n%s", code, body, want.Text)
	}
	if code, body, _ := getBody(t, ts2.URL+"/v1/jobs/"+fin2.ID+"/trace"); code != 200 || body != string(want.TraceCSV) {
		t.Errorf("resumed trace (status %d) diverges from uninterrupted run", code)
	}
	if m := s2.Metrics(); m.CheckpointsResumed != 1 {
		t.Errorf("boot-2 CheckpointsResumed = %d, want 1", m.CheckpointsResumed)
	}
	// The consumed checkpoint is gone: a third boot has nothing to do.
	if store.Len() != 0 {
		t.Errorf("store still holds %d records after resume", store.Len())
	}
}

func TestDrainWithoutStoreStillCompletesJobs(t *testing.T) {
	// Without a checkpoint store, drain keeps the old contract: accepted
	// jobs run to completion.
	s := New(Config{}).Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, _ := submit(t, ts, tinySpec("drain-no-store"))
	s.Drain()
	fin, ok := s.Job(st.ID)
	if !ok || fin.State != JobDone {
		t.Fatalf("after storeless drain: %+v, want done", fin)
	}
}

func TestCheckpointStoreRoundTrip(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := CacheKey("abc123")
	if _, ok := store.Get(key); ok {
		t.Fatal("empty store served a record")
	}
	if err := store.Put(key, []byte(`{"name":"x"}`), []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	rec, ok := store.Get(key)
	if !ok || rec.Key != key || string(rec.Spec) != `{"name":"x"}` || string(rec.State) != `{"v":1}` {
		t.Fatalf("round trip: %+v", rec)
	}
	if err := store.Put(key, []byte(`{"name":"x"}`), []byte(`{"v":2}`)); err != nil {
		t.Fatal(err) // replace in place
	}
	if rec, _ = store.Get(key); string(rec.State) != `{"v":2}` {
		t.Fatalf("replace kept stale state: %s", rec.State)
	}
	if got := store.List(); len(got) != 1 || store.Len() != 1 {
		t.Fatalf("List = %d records, Len = %d, want 1", len(got), store.Len())
	}
	if _, ok := store.Get(CacheKey("other")); ok {
		t.Error("store served a record under a different key")
	}
	store.Delete(key)
	if store.Len() != 0 {
		t.Error("Delete left the record behind")
	}
}

func TestResumeCheckpointsDropsStaleKeys(t *testing.T) {
	store, err := OpenCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// A record whose key does not match the current engine's CacheKey
	// for its spec (as after an engine-version bump): the resubmission
	// runs fresh and the unreachable state is dropped.
	sp, err := scenario.Parse([]byte(tinySpec("stale-key")))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("v0|deadbeef", canon, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	s := New(Config{Checkpoints: store}).Start()
	defer s.Drain()
	if n := s.ResumeCheckpoints(context.Background()); n != 1 {
		t.Fatalf("ResumeCheckpoints = %d, want 1 (stale records still resubmit)", n)
	}
	if store.Len() != 0 {
		t.Error("stale-keyed record survived resume")
	}
	jobs := s.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("%d jobs, want 1", len(jobs))
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		js, _ := s.Job(jobs[0].ID)
		if js.State == JobDone {
			break
		}
		if js.State != JobQueued && js.State != JobRunning {
			t.Fatalf("resubmitted job: %+v", js)
		}
		if time.Now().After(deadline) {
			t.Fatal("resubmitted job did not finish")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTraceIntervalFencepost pins the off-by-one fix: the recorder
// keeps samples at both ends of a run — up to duration/interval + 1 —
// so stretching the interval with a divisor of maxTraceSamples admits
// maxTraceSamples+1 points. The divisor must be maxTraceSamples−1.
func TestTraceIntervalFencepost(t *testing.T) {
	boundary := result.TraceInterval * float64(maxTraceSamples-1)
	for _, d := range []float64{
		0.002, 1.0,
		boundary * 0.999, boundary, boundary * 1.000001,
		3600, 5e6, 1e9,
	} {
		iv := traceInterval(d)
		if pts := math.Floor(d/iv) + 1; pts > maxTraceSamples {
			t.Errorf("duration %g: interval %g admits %.0f samples, cap is %d", d, iv, pts, maxTraceSamples)
		}
		if d <= boundary*0.999 && iv != result.TraceInterval {
			t.Errorf("duration %g: interval stretched to %g below the cap", d, iv)
		}
	}
	// The cap binds tightly: a long run still lands on (not far under)
	// the sample budget.
	if iv := traceInterval(1e6); math.Floor(1e6/iv)+1 < maxTraceSamples-1 {
		t.Errorf("long-run interval %g wastes the sample budget", iv)
	}
}

func TestTraceWindowEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	st, _ := submit(t, ts, tinySpec("win"))
	fin := await(t, ts, st.ID)
	if fin.State != JobDone {
		t.Fatalf("job: %+v", fin)
	}
	base := ts.URL + "/v1/jobs/" + st.ID + "/trace"

	// Unqualified: the legacy full-CSV contract, untouched.
	code, full, hdr := getBody(t, base)
	if code != 200 || hdr.Get("X-Spec-Hash") != st.Hash {
		t.Fatalf("full trace: status %d, hash %q", code, hdr.Get("X-Spec-Hash"))
	}
	if strings.Count(full, "\n") < 3 {
		t.Fatalf("full trace too short:\n%s", full)
	}

	// Windowed: decimated min/max CSV with the spec-hash comment.
	code, body, hdr := getBody(t, base+"?points=2")
	if code != 200 {
		t.Fatalf("windowed trace: status %d: %s", code, body)
	}
	if hdr.Get("X-Spec-Hash") != st.Hash {
		t.Errorf("windowed X-Spec-Hash = %q, want %q", hdr.Get("X-Spec-Hash"), st.Hash)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if lines[0] != "# spec-hash: "+st.Hash {
		t.Errorf("windowed comment line = %q", lines[0])
	}
	if len(lines) < 3 || !strings.HasPrefix(lines[1], "t,") {
		t.Errorf("windowed body lacks header + rows:\n%s", body)
	}
	if len(lines)-2 > 2 {
		t.Errorf("asked for 2 points, got %d rows", len(lines)-2)
	}
	// A sub-window is honoured.
	if code, body, _ = getBody(t, base+"?from=0&to=0.001&points=5"); code != 200 {
		t.Errorf("sub-window: status %d: %s", code, body)
	}

	// Malformed queries are 400s, not silent full dumps.
	for _, q := range []string{"?from=2&to=1", "?points=0", "?points=-3", "?points=abc", "?from=abc", "?to=Inf"} {
		if code, body, _ := getBody(t, base+q); code != 400 {
			t.Errorf("%s: status %d (%s), want 400", q, code, body)
		}
	}

	// Oversized points clamps instead of failing: 3 recorded samples
	// cannot fill 100k buckets, but the request is fine.
	if code, _, _ := getBody(t, base+"?points=100000"); code != 200 {
		t.Errorf("clamped points: status %d, want 200", code)
	}
}
