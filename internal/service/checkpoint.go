package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CheckpointRecord is one suspended job persisted for resume: the cache
// key it was running under, the canonical spec JSON (resubmittable
// as-is), and the engine-state envelope scenario.ResumeModel consumes.
type CheckpointRecord struct {
	Key   string          `json:"key"`
	Spec  json.RawMessage `json:"spec"`
	State json.RawMessage `json:"state"`
}

// CheckpointStore persists suspended jobs across daemon restarts: one
// JSON record per cache key, written atomically (temp file + rename)
// into its own directory. The daemon conventionally nests it under the
// disk cache directory ("<cache-dir>/checkpoints"); the CAS scan skips
// subdirectories and non-blob files, so the two stores coexist.
type CheckpointStore struct {
	mu  sync.Mutex
	dir string
}

// OpenCheckpointStore creates (if needed) and opens the directory.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: opening checkpoint store: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// ckptExt marks the store's files; anything else in the directory is
// ignored.
const ckptExt = ".ckpt"

// path derives the record filename: keys carry characters filesystems
// reject ("|" from CacheKey), so the name is the key's digest.
func (s *CheckpointStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16])+ckptExt)
}

// Put persists (or replaces) the record for key.
//
//lint:allow mutexio the store mutex exists to serialise this directory, not the server
func (s *CheckpointStore) Put(key string, spec, state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := json.Marshal(CheckpointRecord{Key: key, Spec: spec, State: state})
	if err != nil {
		return fmt.Errorf("service: encoding checkpoint: %w", err)
	}
	path := s.path(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("service: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("service: writing checkpoint: %w", err)
	}
	return nil
}

// Get returns the record for key, if present and intact.
//
//lint:allow mutexio the store mutex exists to serialise this directory, not the server
func (s *CheckpointStore) Get(key string) (CheckpointRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return CheckpointRecord{}, false
	}
	var rec CheckpointRecord
	if err := json.Unmarshal(data, &rec); err != nil || rec.Key != key {
		return CheckpointRecord{}, false
	}
	return rec, true
}

// Delete removes the record for key, if present.
//
//lint:allow mutexio the store mutex exists to serialise this directory, not the server
func (s *CheckpointStore) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.Remove(s.path(key))
}

// List returns every intact record, ordered by filename for
// deterministic resume order. Corrupt files are skipped, not deleted —
// a transient read error must not discard a resumable job.
//
//lint:allow mutexio the store mutex exists to serialise this directory, not the server
func (s *CheckpointStore) List() []CheckpointRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ckptExt) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []CheckpointRecord
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		var rec CheckpointRecord
		if err := json.Unmarshal(data, &rec); err != nil || rec.Key == "" || len(rec.Spec) == 0 {
			continue
		}
		out = append(out, rec)
	}
	return out
}

// Len counts the resident records.
func (s *CheckpointStore) Len() int { return len(s.List()) }
