package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/result"
)

func TestCacheSingleFlightElectsOneLeader(t *testing.T) {
	c := NewCache(0)
	const n = 32
	var leaders atomic.Int32
	var wg sync.WaitGroup
	rep := &result.Report{Text: "report"}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, claim := c.Begin("k")
			switch claim {
			case Lead:
				leaders.Add(1)
				c.Complete("k", rep)
			case Wait, Done:
				<-e.Done
				if e.Err != nil || e.Report != rep {
					t.Errorf("waiter got rep=%v err=%v", e.Report, e.Err)
				}
			}
		}()
	}
	wg.Wait()
	if leaders.Load() != 1 {
		t.Errorf("%d leaders elected, want exactly 1", leaders.Load())
	}
	if c.Len() != 1 {
		t.Errorf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCacheCompletedKeyReturnsDone(t *testing.T) {
	c := NewCache(0)
	_, claim := c.Begin("k")
	if claim != Lead {
		t.Fatalf("first Begin = %v, want Lead", claim)
	}
	rep := &result.Report{Text: "x"}
	c.Complete("k", rep)
	e, claim := c.Begin("k")
	if claim != Done || e.Report != rep {
		t.Errorf("after Complete: claim=%v report=%v", claim, e.Report)
	}
}

func TestCacheAbortEvictsAndReleasesWaiters(t *testing.T) {
	c := NewCache(0)
	if _, claim := c.Begin("k"); claim != Lead {
		t.Fatalf("claim = %v, want Lead", claim)
	}
	e, claim := c.Begin("k")
	if claim != Wait {
		t.Fatalf("claim = %v, want Wait", claim)
	}
	boom := errors.New("boom")
	c.Abort("k", boom)
	<-e.Done
	if !errors.Is(e.Err, boom) {
		t.Errorf("waiter err = %v, want boom", e.Err)
	}
	// The key is free again: the next Begin leads a fresh computation.
	if _, claim := c.Begin("k"); claim != Lead {
		t.Errorf("post-abort claim = %v, want Lead", claim)
	}
}

func TestCacheCapEvictsOldestCompleted(t *testing.T) {
	c := NewCache(2)
	rep := &result.Report{Text: "r"}
	for _, k := range []string{"a", "b", "c"} {
		if _, claim := c.Begin(k); claim != Lead {
			t.Fatalf("%s: claim not Lead", k)
		}
		c.Complete(k, rep)
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want 2", c.Len())
	}
	if _, claim := c.Begin("a"); claim != Lead {
		t.Errorf("oldest key should have been evicted; claim = %v", claim)
	}
	if _, claim := c.Begin("c"); claim != Done {
		t.Errorf("newest key should survive; claim = %v", claim)
	}
}

func TestCacheCapSparesInFlight(t *testing.T) {
	c := NewCache(1)
	if _, claim := c.Begin("inflight"); claim != Lead {
		t.Fatal("claim not Lead")
	}
	rep := &result.Report{Text: "r"}
	for _, k := range []string{"a", "b"} {
		c.Begin(k)
		c.Complete(k, rep)
	}
	// Only completed entries count against the cap; the in-flight leader
	// keeps its entry, so its waiters still resolve.
	if _, claim := c.Begin("inflight"); claim != Wait {
		t.Errorf("in-flight entry evicted; claim = %v", claim)
	}
}

func TestCacheDistinctKeysAreIndependent(t *testing.T) {
	c := NewCache(0)
	const n = 16
	var wg sync.WaitGroup
	claims := make([]Claim, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, claims[i] = c.Begin(string(rune('a' + i)))
		}(i)
	}
	wg.Wait()
	for i, cl := range claims {
		if cl != Lead {
			t.Errorf("key %d: claim = %v, want Lead", i, cl)
		}
	}
	if c.Len() != n {
		t.Errorf("cache holds %d entries, want %d", c.Len(), n)
	}
}

// Regression: completed-entry cap eviction used to go purely by
// completion order; an entry whose single-flight follower had not yet
// resolved could be evicted out from under it. Eviction must skip
// entries with active riders and take the next-oldest instead.
func TestCacheCapEvictionSkipsEntriesWithRiders(t *testing.T) {
	c := NewCache(2)
	rep := &result.Report{Text: "r"}

	if _, claim := c.Begin("ridden"); claim != Lead {
		t.Fatal("claim not Lead")
	}
	e, claim := c.Begin("ridden")
	if claim != Wait {
		t.Fatalf("claim = %v, want Wait", claim)
	}
	c.Complete("ridden", rep)

	// Two younger completions push the cap; "ridden" is oldest but must
	// survive while its rider is unresolved. "b" pays instead.
	for _, k := range []string{"b", "c"} {
		c.Begin(k)
		c.Complete(k, rep)
	}
	if _, claim := c.Begin("ridden"); claim != Done {
		t.Fatalf("ridden entry evicted under an active rider; claim = %v", claim)
	}
	c.Release(e)
	if _, claim := c.Begin("b"); claim != Lead {
		t.Errorf("eviction should have taken the next-oldest riderless entry; b claim = %v", claim)
	}

	// Rider released: the entry is ordinary again and evictable.
	c.Complete("b", rep)
	c.Begin("d")
	c.Complete("d", rep)
	if _, claim := c.Begin("ridden"); claim != Lead {
		t.Errorf("released entry should eventually evict; claim = %v", claim)
	}
}

// A follower that claimed Wait must observe the completed entry even if
// a burst of completions would otherwise evict it first — the vanished-
// entry regression this cache's rider accounting exists to prevent.
func TestFollowerNeverObservesVanishedEntry(t *testing.T) {
	c := NewCache(1)
	rep := &result.Report{Text: "the follower's report"}
	if _, claim := c.Begin("k"); claim != Lead {
		t.Fatal("claim not Lead")
	}
	e, claim := c.Begin("k")
	if claim != Wait {
		t.Fatalf("claim = %v, want Wait", claim)
	}

	resolved := make(chan string, 1)
	go func() {
		<-e.Done
		resolved <- e.Report.Text
		c.Release(e)
	}()

	c.Complete("k", rep)
	// Flood the cap while the follower resolves.
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("flood-%d", i)
		c.Begin(k)
		c.Complete(k, rep)
	}
	if got := <-resolved; got != rep.Text {
		t.Errorf("follower read %q", got)
	}
}
