package service

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/result"
)

// watchCancel derives a context that cancels when the job's cancel
// channel closes, so an in-flight peer lookup aborts with its job. The
// watcher goroutine exits when stop closes (lookup finished) or the
// context dies.
func watchCancel(parent context.Context, cancel, stop <-chan struct{}) (context.Context, context.CancelFunc) {
	ctx, cfn := context.WithCancel(parent)
	go func() {
		select {
		case <-cancel:
			cfn()
		case <-stop:
		case <-ctx.Done():
		}
	}()
	return ctx, cfn
}

// Owner picks the node that owns a spec hash from a set of node URLs by
// rendezvous (highest-random-weight) hashing: every node scores
// sha256(node, hash) and the highest score wins. Deterministic, order-
// independent, and minimally disruptive — adding or removing one node
// only moves the keys that node gains or loses. Every cluster member
// must run this over the same URL set or routing diverges.
func Owner(nodes []string, specHash string) string {
	var best string
	var bestScore [sha256.Size]byte
	for _, n := range nodes {
		h := sha256.New()
		io.WriteString(h, n)
		h.Write([]byte{0})
		io.WriteString(h, specHash)
		var score [sha256.Size]byte
		h.Sum(score[:0])
		if best == "" || bytes.Compare(score[:], bestScore[:]) > 0 {
			best, bestScore = n, score
		}
	}
	return best
}

// peerSet is the federation tier: the rendezvous ring plus the HTTP
// client used for peer cache lookups and pushes.
type peerSet struct {
	self    string
	ring    []string // self ∪ peers, sorted (order is irrelevant to Owner; sorted for stable logs)
	timeout time.Duration
	client  *http.Client
}

func newPeerSet(self string, peers []string, timeout time.Duration) *peerSet {
	ring := append([]string{self}, peers...)
	sort.Strings(ring)
	return &peerSet{
		self:    self,
		ring:    ring,
		timeout: timeout,
		// The client timeout bounds the whole exchange — dial, headers,
		// and body. A peer that stalls mid-body is as absent as one that
		// never answered.
		client: &http.Client{Timeout: timeout},
	}
}

func (p *peerSet) owner(specHash string) string { return Owner(p.ring, specHash) }

// lookup asks owner's cache for a spec hash. Returns (report, nil) on a
// verified hit, (nil, nil) on a clean miss, and (nil, err) when the
// peer was unreachable, slow, or served a corrupt body — callers treat
// the last two identically (compute locally) but count them apart.
func (p *peerSet) lookup(owner, specHash string, cancel <-chan struct{}) (*result.Report, error) {
	req, err := http.NewRequest(http.MethodGet, owner+"/v1/cache/"+specHash, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Engine-Version", result.EngineVersion)
	if cancel != nil {
		stop := make(chan struct{})
		defer close(stop)
		ctx, cancelReq := watchCancel(req.Context(), cancel, stop)
		defer cancelReq()
		req = req.WithContext(ctx)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer %s: status %d", owner, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("peer %s: reading body: %w", owner, err)
	}
	// Verify the transfer end to end: a mid-body disconnect or proxy
	// mangling must read as an error, never as a servable result.
	if want := resp.Header.Get("X-Body-Sum"); want != "" {
		sum := sha256.Sum256(body)
		if hex.EncodeToString(sum[:]) != want {
			return nil, fmt.Errorf("peer %s: body checksum mismatch", owner)
		}
	}
	rep, err := result.DecodeReport(body)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", owner, err)
	}
	if rep.SpecHash != specHash {
		return nil, fmt.Errorf("peer %s: served report for %s, want %s", owner, rep.SpecHash, specHash)
	}
	return rep, nil
}

// push replicates a computed report to its owning peer (PUT, best
// effort). The peer validates and adopts it into its own cache tiers.
func (p *peerSet) push(owner, specHash string, rep *result.Report) error {
	data, err := result.EncodeReport(rep)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, owner+"/v1/cache/"+specHash, bytes.NewReader(data))
	if err != nil {
		return err
	}
	sum := sha256.Sum256(data)
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Engine-Version", result.EngineVersion)
	req.Header.Set("X-Body-Sum", hex.EncodeToString(sum[:]))
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer %s: push status %d", owner, resp.StatusCode)
	}
	return nil
}
