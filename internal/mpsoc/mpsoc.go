// Package mpsoc models the power-neutral MPSoC of the paper's Fig. 5 and
// reference [11]: an ODROID XU-4-class board (Samsung Exynos 5422
// big.LITTLE — four Cortex-A15 "big" cores and four Cortex-A7 "LITTLE"
// cores) running a raytracing workload. Operating points are combinations
// of per-cluster DVFS level and hot-plugged core count; each point has a
// board power and a raytrace frame rate, reproducing the paper's scatter
// of performance against consumption with roughly an order of magnitude of
// power modulation range.
//
// The numbers are a behavioural model (C_eff·V²·f dynamic power, Amdahl
// scaling with heterogeneous core throughput), not Exynos measurements;
// the shape — the Pareto frontier, the power range, the big/LITTLE
// crossover — is what the reproduction needs.
package mpsoc

import (
	"fmt"
	"math"
	"sort"
)

// Cluster describes one CPU cluster's electrical and performance model.
type Cluster struct {
	Name     string
	MaxCores int
	// DVFS table: frequencies in Hz with the matching supply voltage.
	FreqHz []float64
	VoltV  []float64
	// CEff is the effective switched capacitance per core, farads.
	CEff float64
	// IPC is the relative instructions-per-cycle throughput factor.
	IPC float64
	// StaticW is the cluster's leakage power when any core is online.
	StaticW float64
}

// Board is a two-cluster big.LITTLE platform plus uncore power.
type Board struct {
	Little, Big Cluster
	UncoreW     float64 // memory/IO/fan base draw while the board runs

	// Raytrace workload model: FPSPerGOPS converts aggregate throughput
	// to frames per second; ParallelFrac is the Amdahl parallel fraction.
	FPSPerGOPS   float64
	ParallelFrac float64
}

// XU4 returns the ODROID XU-4-flavoured model used for Fig. 5.
func XU4() *Board {
	return &Board{
		Little: Cluster{
			Name:     "A7",
			MaxCores: 4,
			FreqHz:   []float64{200e6, 400e6, 600e6, 800e6, 1000e6, 1200e6, 1400e6},
			VoltV:    []float64{0.90, 0.95, 1.00, 1.05, 1.10, 1.15, 1.20},
			CEff:     0.30e-9,
			IPC:      1.0,
			StaticW:  0.12,
		},
		Big: Cluster{
			Name:     "A15",
			MaxCores: 4,
			FreqHz:   []float64{200e6, 400e6, 600e6, 800e6, 1000e6, 1200e6, 1400e6, 1600e6, 1800e6, 2000e6},
			VoltV:    []float64{0.92, 0.96, 1.00, 1.04, 1.08, 1.13, 1.18, 1.24, 1.30, 1.3625},
			CEff:     0.85e-9,
			IPC:      2.1,
			StaticW:  0.45,
		},
		UncoreW:      1.1,
		FPSPerGOPS:   0.013,
		ParallelFrac: 0.97,
	}
}

// OperatingPoint is one (cores, frequency) configuration per cluster.
type OperatingPoint struct {
	LittleCores int
	LittleFreq  int // index into Little.FreqHz; meaningful when cores > 0
	BigCores    int
	BigFreq     int

	PowerW float64
	FPS    float64
}

// Label renders the configuration compactly, e.g. "4xA7@1.4G+2xA15@2.0G".
func (op OperatingPoint) Label(b *Board) string {
	part := func(n int, c *Cluster, f int) string {
		if n == 0 {
			return ""
		}
		return fmt.Sprintf("%dx%s@%.1fG", n, c.Name, c.FreqHz[f]/1e9)
	}
	l := part(op.LittleCores, &b.Little, op.LittleFreq)
	bg := part(op.BigCores, &b.Big, op.BigFreq)
	switch {
	case l == "":
		return bg
	case bg == "":
		return l
	default:
		return l + "+" + bg
	}
}

// clusterPower returns the power of n active cores at DVFS index f.
func clusterPower(c *Cluster, n, f int) float64 {
	if n == 0 {
		return 0
	}
	dyn := float64(n) * c.CEff * c.VoltV[f] * c.VoltV[f] * c.FreqHz[f]
	return c.StaticW + dyn
}

// clusterGOPS returns the aggregate throughput contribution of n cores at
// DVFS index f in giga-operations per second.
func clusterGOPS(c *Cluster, n, f int) float64 {
	return float64(n) * c.IPC * c.FreqHz[f] / 1e9
}

// Evaluate computes power and FPS for a configuration.
func (b *Board) Evaluate(littleCores, littleFreq, bigCores, bigFreq int) OperatingPoint {
	op := OperatingPoint{
		LittleCores: littleCores, LittleFreq: littleFreq,
		BigCores: bigCores, BigFreq: bigFreq,
	}
	op.PowerW = b.UncoreW +
		clusterPower(&b.Little, littleCores, littleFreq) +
		clusterPower(&b.Big, bigCores, bigFreq)

	gops := clusterGOPS(&b.Little, littleCores, littleFreq) +
		clusterGOPS(&b.Big, bigCores, bigFreq)
	n := littleCores + bigCores
	if n == 0 || gops == 0 {
		op.FPS = 0
		return op
	}
	// Amdahl with heterogeneous cores: serial work runs on the fastest
	// online core; parallel work on the aggregate.
	fastest := 0.0
	if littleCores > 0 {
		fastest = math.Max(fastest, clusterGOPS(&b.Little, 1, littleFreq))
	}
	if bigCores > 0 {
		fastest = math.Max(fastest, clusterGOPS(&b.Big, 1, bigFreq))
	}
	p := b.ParallelFrac
	effGOPS := 1.0 / ((1-p)/fastest + p/gops)
	op.FPS = b.FPSPerGOPS * effGOPS
	return op
}

// OperatingPoints enumerates every hot-plug × DVFS combination with at
// least one core online. Offline clusters contribute one canonical entry
// (frequency index 0) rather than one per frequency.
func (b *Board) OperatingPoints() []OperatingPoint {
	var pts []OperatingPoint
	for lc := 0; lc <= b.Little.MaxCores; lc++ {
		lfMax := len(b.Little.FreqHz) - 1
		if lc == 0 {
			lfMax = 0
		}
		for lf := 0; lf <= lfMax; lf++ {
			for bc := 0; bc <= b.Big.MaxCores; bc++ {
				bfMax := len(b.Big.FreqHz) - 1
				if bc == 0 {
					bfMax = 0
				}
				for bf := 0; bf <= bfMax; bf++ {
					if lc == 0 && bc == 0 {
						continue
					}
					pts = append(pts, b.Evaluate(lc, lf, bc, bf))
				}
			}
		}
	}
	return pts
}

// ParetoFrontier returns the subset of points not dominated in the
// (lower power, higher FPS) sense, sorted by ascending power.
func ParetoFrontier(pts []OperatingPoint) []OperatingPoint {
	sorted := make([]OperatingPoint, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PowerW != sorted[j].PowerW {
			return sorted[i].PowerW < sorted[j].PowerW
		}
		return sorted[i].FPS > sorted[j].FPS
	})
	var front []OperatingPoint
	bestFPS := math.Inf(-1)
	for _, p := range sorted {
		if p.FPS > bestFPS {
			front = append(front, p)
			bestFPS = p.FPS
		}
	}
	return front
}

// Selector picks operating points against a power budget — the
// power-neutral MPSoC's runtime policy [11]: the highest-FPS point whose
// power fits the instantaneously harvested budget.
type Selector struct {
	Frontier []OperatingPoint

	// Observe, if non-nil, is called by Simulate after every control
	// step with the step time, the instantaneous budget, and the chosen
	// point (ok=false on starved steps, where op is zero). It is a pure
	// observer — tracing hooks in here.
	Observe func(t, budgetW float64, op OperatingPoint, ok bool)

	// Abort, if non-nil, stops Simulate early once the channel is
	// closed; the partial result is returned with Aborted set.
	Abort <-chan struct{}
}

// NewSelector precomputes the Pareto frontier for a board.
func NewSelector(b *Board) *Selector {
	return &Selector{Frontier: ParetoFrontier(b.OperatingPoints())}
}

// Pick returns the best point with PowerW ≤ budget, and false if even the
// lowest point exceeds the budget (the system must power down or buffer).
func (s *Selector) Pick(budgetW float64) (OperatingPoint, bool) {
	i := sort.Search(len(s.Frontier), func(i int) bool {
		return s.Frontier[i].PowerW > budgetW
	})
	if i == 0 {
		return OperatingPoint{}, false
	}
	return s.Frontier[i-1], true
}

// PowerRange returns the min and max power across a point set — the
// paper's "order of magnitude" modulation claim is max/min ≈ 10.
func PowerRange(pts []OperatingPoint) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		min = math.Min(min, p.PowerW)
		max = math.Max(max, p.PowerW)
	}
	return min, max
}
