package mpsoc

import (
	"math"
	"sort"
	"testing"
)

func TestOperatingPointCount(t *testing.T) {
	b := XU4()
	pts := b.OperatingPoints()
	// (4 little-core counts × 7 freqs + 1 off) × (4 big × 10 + 1 off) − 1
	want := (4*7+1)*(4*10+1) - 1
	if len(pts) != want {
		t.Errorf("operating points = %d, want %d", len(pts), want)
	}
}

func TestPowerRangeSpansOrderOfMagnitude(t *testing.T) {
	// The paper: "the power consumption can be modulated by an order of
	// magnitude" (Fig. 5 spans roughly 1.5–18 W).
	b := XU4()
	min, max := PowerRange(b.OperatingPoints())
	if ratio := max / min; ratio < 8 || ratio > 20 {
		t.Errorf("power modulation ratio = %.1f (%.2f–%.2f W), want ≈10×", ratio, min, max)
	}
	if min < 1.0 || min > 2.5 {
		t.Errorf("min power %.2f W outside the Fig. 5 ballpark", min)
	}
	if max < 12 || max > 22 {
		t.Errorf("max power %.2f W outside the Fig. 5 ballpark", max)
	}
}

func TestFPSRangeMatchesFig5(t *testing.T) {
	// Fig. 5's y-axis tops out around 0.22 FPS for the raytracer.
	b := XU4()
	var maxFPS float64
	for _, p := range b.OperatingPoints() {
		maxFPS = math.Max(maxFPS, p.FPS)
	}
	if maxFPS < 0.15 || maxFPS > 0.30 {
		t.Errorf("max FPS = %.3f, want ≈0.2", maxFPS)
	}
}

func TestMoreResourcesNeverHurt(t *testing.T) {
	b := XU4()
	// Adding a core at fixed frequency must not reduce FPS and must not
	// reduce power.
	for cores := 1; cores < 4; cores++ {
		p1 := b.Evaluate(0, 0, cores, 5)
		p2 := b.Evaluate(0, 0, cores+1, 5)
		if p2.FPS < p1.FPS {
			t.Errorf("FPS dropped adding a big core: %d→%d cores %.4f→%.4f",
				cores, cores+1, p1.FPS, p2.FPS)
		}
		if p2.PowerW <= p1.PowerW {
			t.Errorf("power did not rise adding a big core")
		}
	}
	// Raising frequency at fixed cores must raise both.
	for f := 0; f < len(b.Big.FreqHz)-1; f++ {
		p1 := b.Evaluate(0, 0, 4, f)
		p2 := b.Evaluate(0, 0, 4, f+1)
		if p2.FPS <= p1.FPS || p2.PowerW <= p1.PowerW {
			t.Errorf("frequency step %d→%d not monotone", f, f+1)
		}
	}
}

func TestBigCoresFasterButHungrier(t *testing.T) {
	b := XU4()
	little := b.Evaluate(4, len(b.Little.FreqHz)-1, 0, 0)
	big := b.Evaluate(0, 0, 4, len(b.Big.FreqHz)-1)
	if big.FPS <= little.FPS {
		t.Errorf("4×A15 (%.3f FPS) should outperform 4×A7 (%.3f FPS)", big.FPS, little.FPS)
	}
	if big.PowerW <= 2*little.PowerW {
		t.Errorf("4×A15 (%.1f W) should cost far more than 4×A7 (%.1f W)", big.PowerW, little.PowerW)
	}
}

func TestZeroCoresZeroFPS(t *testing.T) {
	b := XU4()
	p := b.Evaluate(0, 0, 0, 0)
	if p.FPS != 0 {
		t.Error("no cores should mean no frames")
	}
	if p.PowerW != b.UncoreW {
		t.Errorf("idle power = %.2f, want uncore %.2f", p.PowerW, b.UncoreW)
	}
}

func TestParetoFrontierProperties(t *testing.T) {
	b := XU4()
	pts := b.OperatingPoints()
	front := ParetoFrontier(pts)
	if len(front) == 0 || len(front) >= len(pts) {
		t.Fatalf("frontier size %d of %d points", len(front), len(pts))
	}
	// Strictly increasing in both power and FPS.
	for i := 1; i < len(front); i++ {
		if front[i].PowerW <= front[i-1].PowerW || front[i].FPS <= front[i-1].FPS {
			t.Fatalf("frontier not strictly monotone at %d", i)
		}
	}
	// No point in the full set dominates a frontier point.
	for _, f := range front {
		for _, p := range pts {
			if p.PowerW < f.PowerW && p.FPS > f.FPS {
				t.Fatalf("frontier point (%.2f W, %.4f FPS) dominated by (%.2f W, %.4f FPS)",
					f.PowerW, f.FPS, p.PowerW, p.FPS)
			}
		}
	}
}

func TestSelectorPicksWithinBudget(t *testing.T) {
	s := NewSelector(XU4())
	budgets := []float64{2.0, 4.0, 8.0, 16.0}
	lastFPS := 0.0
	for _, w := range budgets {
		op, ok := s.Pick(w)
		if !ok {
			t.Fatalf("no point fits %.1f W", w)
		}
		if op.PowerW > w {
			t.Errorf("picked %.2f W for a %.1f W budget", op.PowerW, w)
		}
		if op.FPS < lastFPS {
			t.Errorf("FPS should grow with budget")
		}
		lastFPS = op.FPS
	}
	// Below the minimum point the selector must refuse.
	if _, ok := s.Pick(0.5); ok {
		t.Error("0.5 W budget should be unsatisfiable")
	}
}

func TestSelectorTracksVaryingBudget(t *testing.T) {
	// Sweep a sinusoidal power budget (a harvesting profile) and verify
	// the selected FPS follows it — the power-neutral MPSoC behaviour.
	s := NewSelector(XU4())
	var fpsAt []float64
	for i := 0; i <= 100; i++ {
		budget := 2.0 + 14.0*(0.5-0.5*math.Cos(2*math.Pi*float64(i)/100))
		op, ok := s.Pick(budget)
		if !ok {
			t.Fatalf("budget %.1f W unsatisfiable", budget)
		}
		fpsAt = append(fpsAt, op.FPS)
	}
	// FPS at the crest must far exceed FPS at the trough.
	if fpsAt[50] < 3*fpsAt[0] {
		t.Errorf("FPS crest %.4f vs trough %.4f: should scale with budget", fpsAt[50], fpsAt[0])
	}
}

func TestLabels(t *testing.T) {
	b := XU4()
	op := b.Evaluate(4, 6, 2, 9)
	if got := op.Label(b); got != "4xA7@1.4G+2xA15@2.0G" {
		t.Errorf("label = %q", got)
	}
	op2 := b.Evaluate(0, 0, 1, 0)
	if got := op2.Label(b); got != "1xA15@0.2G" {
		t.Errorf("label = %q", got)
	}
	op3 := b.Evaluate(2, 0, 0, 0)
	if got := op3.Label(b); got != "2xA7@0.2G" {
		t.Errorf("label = %q", got)
	}
}

func TestFrontierCoversLittleAndBig(t *testing.T) {
	// The efficient frontier should use LITTLE cores at the low end and
	// big cores at the high end — the heterogeneity rationale.
	front := ParetoFrontier(XU4().OperatingPoints())
	sort.Slice(front, func(i, j int) bool { return front[i].PowerW < front[j].PowerW })
	lowest, highest := front[0], front[len(front)-1]
	if lowest.BigCores != 0 {
		t.Errorf("cheapest frontier point uses %d big cores; expected LITTLE-only", lowest.BigCores)
	}
	if highest.BigCores != 4 {
		t.Errorf("fastest frontier point uses %d big cores; expected all four", highest.BigCores)
	}
}

func TestSimulateSolarDay(t *testing.T) {
	// A solar-shaped budget over one simulated "day": the selector keeps
	// utilization high, renders frames in proportion to the energy
	// available, and starves only when the budget dips below the cheapest
	// operating point.
	s := NewSelector(XU4())
	budget := SolarBudget(0.5, 16.0, 100)
	res := s.Simulate(budget, 100, 0.1)
	if res.Steps != 1000 {
		t.Fatalf("steps = %d", res.Steps)
	}
	if res.Frames <= 0 {
		t.Fatal("no frames rendered")
	}
	if res.Starved == 0 {
		t.Error("0.5 W troughs should starve the board (min point ≈1.3 W)")
	}
	if res.Starved > res.Steps/2 {
		t.Errorf("starved %d of %d steps — selector wasting budget", res.Starved, res.Steps)
	}
	if res.Utilization < 0.5 || res.Utilization > 1.0 {
		t.Errorf("utilization = %.2f, want within (0.5, 1.0]", res.Utilization)
	}
	if res.MeanUsedW > res.MeanBudgetW {
		t.Error("used more power than budgeted on average")
	}
	if res.Switches == 0 {
		t.Error("a varying budget must cause operating-point switches")
	}
}

func TestSimulateConstantBudgetNoSwitches(t *testing.T) {
	s := NewSelector(XU4())
	res := s.Simulate(func(float64) float64 { return 8.0 }, 10, 0.1)
	if res.Switches != 0 {
		t.Errorf("constant budget switched %d times", res.Switches)
	}
	if res.Starved != 0 {
		t.Error("8 W should always fit")
	}
	// FPS constant at the 8 W point.
	op, _ := s.Pick(8.0)
	if math.Abs(res.MeanFPS-op.FPS) > 1e-9 {
		t.Errorf("mean FPS %.4f != selected point FPS %.4f", res.MeanFPS, op.FPS)
	}
}

func TestSimulateFramesScaleWithBudget(t *testing.T) {
	s := NewSelector(XU4())
	low := s.Simulate(func(float64) float64 { return 3.0 }, 10, 0.1)
	high := s.Simulate(func(float64) float64 { return 14.0 }, 10, 0.1)
	if high.Frames < 2*low.Frames {
		t.Errorf("14 W budget (%.1f frames) should far out-render 3 W (%.1f frames)",
			high.Frames, low.Frames)
	}
}
