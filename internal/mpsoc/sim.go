package mpsoc

import "math"

// SimResult summarises a time-domain power-neutral MPSoC run.
type SimResult struct {
	Steps         int
	Frames        float64 // total frames rendered
	MeanFPS       float64
	MeanBudgetW   float64
	MeanUsedW     float64
	Utilization   float64 // used power / budget, where a point fit
	Starved       int     // steps where even the lowest point didn't fit
	Switches      int     // operating-point changes
	MaxSustainedW float64 // largest budget observed
	Aborted       bool    // Selector.Abort closed before the run finished
}

// Simulate runs the power-neutral selector against a time-varying power
// budget for duration seconds at step dt: at every control step the
// highest-FPS operating point fitting the instantaneous budget is chosen
// (the runtime policy of [11]). Frames accumulate at the selected point's
// rate; steps whose budget cannot fit even the cheapest point render
// nothing (the board must buffer or power down).
func (s *Selector) Simulate(budget func(t float64) float64, duration, dt float64) SimResult {
	sim := NewSim(s, budget, duration, dt)
	for !sim.Done() {
		if s.Abort != nil {
			select {
			case <-s.Abort:
				res := sim.res
				res.Aborted = true
				return res
			default:
			}
		}
		sim.Step(1024)
	}
	return sim.Result()
}

// Sim is a resumable stepper over the same control loop as Simulate: it
// advances in bounded chunks so a caller can interleave cancellation
// checks or capture a checkpoint between chunks, with its full state
// exposed through State/Restore. The per-step arithmetic is identical
// to an uninterrupted run.
type Sim struct {
	s      *Selector
	budget func(t float64) float64
	dt     float64
	steps  int

	i                                   int
	sumFPS, sumBudget, sumUsed, sumUtil float64
	utilSamples                         int
	lastPoint                           int
	res                                 SimResult
}

// NewSim prepares a stepper for the selector against the budget over
// duration seconds at control step dt.
func NewSim(s *Selector, budget func(t float64) float64, duration, dt float64) *Sim {
	return &Sim{s: s, budget: budget, dt: dt, steps: int(math.Round(duration / dt)), lastPoint: -1}
}

// Done reports whether every control step has run.
func (m *Sim) Done() bool { return m.i >= m.steps }

// Step advances up to maxSteps control steps (all remaining when
// maxSteps ≤ 0).
func (m *Sim) Step(maxSteps int) {
	s := m.s
	for k := 0; (maxSteps <= 0 || k < maxSteps) && m.i < m.steps; k++ {
		i := m.i
		t := float64(i) * m.dt
		w := m.budget(t)
		m.res.MaxSustainedW = math.Max(m.res.MaxSustainedW, w)
		m.sumBudget += w
		op, ok := s.Pick(w)
		if s.Observe != nil {
			s.Observe(t, w, op, ok)
		}
		m.i++
		if !ok {
			m.res.Starved++
			if m.lastPoint != -1 {
				m.res.Switches++
				m.lastPoint = -1
			}
			continue
		}
		// Identify the frontier index for switch counting.
		idx := s.frontierIndex(op)
		if idx != m.lastPoint {
			if m.lastPoint != -2 { // not first step
				m.res.Switches++
			}
			m.lastPoint = idx
		}
		m.res.Frames += op.FPS * m.dt
		m.sumFPS += op.FPS
		m.sumUsed += op.PowerW
		m.sumUtil += op.PowerW / math.Max(w, 1e-9)
		m.utilSamples++
	}
}

// Result finalises and returns the run summary. Call after Done.
func (m *Sim) Result() SimResult {
	res := m.res
	res.Steps = m.steps
	if m.steps > 0 {
		res.MeanFPS = m.sumFPS / float64(m.steps)
		res.MeanBudgetW = m.sumBudget / float64(m.steps)
		res.MeanUsedW = m.sumUsed / float64(m.steps)
	}
	if m.utilSamples > 0 {
		res.Utilization = m.sumUtil / float64(m.utilSamples)
	}
	if res.Switches > 0 {
		res.Switches-- // the first selection is not a switch
	}
	return res
}

// SimState is the complete serialisable state of a Sim: the step cursor,
// the running accumulators, and the partial result. The selector itself
// is stateless between steps (Pick is a pure function of the budget), so
// no selector state is captured.
type SimState struct {
	I                                   int
	SumFPS, SumBudget, SumUsed, SumUtil float64
	UtilSamples                         int
	LastPoint                           int
	Res                                 SimResult
}

// State captures the stepper for later Restore.
func (m *Sim) State() SimState {
	return SimState{
		I: m.i, SumFPS: m.sumFPS, SumBudget: m.sumBudget,
		SumUsed: m.sumUsed, SumUtil: m.sumUtil,
		UtilSamples: m.utilSamples, LastPoint: m.lastPoint, Res: m.res,
	}
}

// Restore rewinds the stepper to a captured state.
func (m *Sim) Restore(st SimState) {
	m.i = st.I
	m.sumFPS, m.sumBudget, m.sumUsed, m.sumUtil = st.SumFPS, st.SumBudget, st.SumUsed, st.SumUtil
	m.utilSamples = st.UtilSamples
	m.lastPoint = st.LastPoint
	m.res = st.Res
}

// frontierIndex locates op in the frontier by power (unique per point).
func (s *Selector) frontierIndex(op OperatingPoint) int {
	for i, p := range s.Frontier {
		if p.PowerW == op.PowerW && p.FPS == op.FPS {
			return i
		}
	}
	return -1
}

// SolarBudget returns a day-shaped power budget: base watts overnight,
// rising to peak at solar noon, over a period of periodSec.
func SolarBudget(base, peak, periodSec float64) func(t float64) float64 {
	return func(t float64) float64 {
		phase := math.Mod(t, periodSec) / periodSec // 0..1
		s := math.Sin(math.Pi * phase)
		return base + (peak-base)*s*s
	}
}
