package mpsoc

import "math"

// SimResult summarises a time-domain power-neutral MPSoC run.
type SimResult struct {
	Steps         int
	Frames        float64 // total frames rendered
	MeanFPS       float64
	MeanBudgetW   float64
	MeanUsedW     float64
	Utilization   float64 // used power / budget, where a point fit
	Starved       int     // steps where even the lowest point didn't fit
	Switches      int     // operating-point changes
	MaxSustainedW float64 // largest budget observed
	Aborted       bool    // Selector.Abort closed before the run finished
}

// Simulate runs the power-neutral selector against a time-varying power
// budget for duration seconds at step dt: at every control step the
// highest-FPS operating point fitting the instantaneous budget is chosen
// (the runtime policy of [11]). Frames accumulate at the selected point's
// rate; steps whose budget cannot fit even the cheapest point render
// nothing (the board must buffer or power down).
func (s *Selector) Simulate(budget func(t float64) float64, duration, dt float64) SimResult {
	var res SimResult
	var sumFPS, sumBudget, sumUsed, sumUtil float64
	utilSamples := 0
	lastPoint := -1
	steps := int(math.Round(duration / dt))
	for i := 0; i < steps; i++ {
		if s.Abort != nil && i%1024 == 0 {
			select {
			case <-s.Abort:
				res.Aborted = true
				return res
			default:
			}
		}
		t := float64(i) * dt
		w := budget(t)
		res.MaxSustainedW = math.Max(res.MaxSustainedW, w)
		sumBudget += w
		op, ok := s.Pick(w)
		if s.Observe != nil {
			s.Observe(t, w, op, ok)
		}
		if !ok {
			res.Starved++
			if lastPoint != -1 {
				res.Switches++
				lastPoint = -1
			}
			continue
		}
		// Identify the frontier index for switch counting.
		idx := s.frontierIndex(op)
		if idx != lastPoint {
			if lastPoint != -2 { // not first step
				res.Switches++
			}
			lastPoint = idx
		}
		res.Frames += op.FPS * dt
		sumFPS += op.FPS
		sumUsed += op.PowerW
		sumUtil += op.PowerW / math.Max(w, 1e-9)
		utilSamples++
	}
	res.Steps = steps
	if steps > 0 {
		res.MeanFPS = sumFPS / float64(steps)
		res.MeanBudgetW = sumBudget / float64(steps)
		res.MeanUsedW = sumUsed / float64(steps)
	}
	if utilSamples > 0 {
		res.Utilization = sumUtil / float64(utilSamples)
	}
	if res.Switches > 0 {
		res.Switches-- // the first selection is not a switch
	}
	return res
}

// frontierIndex locates op in the frontier by power (unique per point).
func (s *Selector) frontierIndex(op OperatingPoint) int {
	for i, p := range s.Frontier {
		if p.PowerW == op.PowerW && p.FPS == op.FPS {
			return i
		}
	}
	return -1
}

// SolarBudget returns a day-shaped power budget: base watts overnight,
// rising to peak at solar noon, over a period of periodSec.
func SolarBudget(base, peak, periodSec float64) func(t float64) float64 {
	return func(t float64) float64 {
		phase := math.Mod(t, periodSec) / periodSec // 0..1
		s := math.Sin(math.Pi * phase)
		return base + (peak-base)*s*s
	}
}
