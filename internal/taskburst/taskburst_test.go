package taskburst

import (
	"math"
	"strings"
	"testing"

	"repro/internal/source"
)

func TestMonjoloPingRateTracksPower(t *testing.T) {
	// Monjolo's principle: the wireless ping frequency is proportional to
	// the harvested power. Doubling the power should roughly double the
	// rate.
	rate := func(p float64) float64 {
		n, err := NewNode(500e-6, MonjoloTask(), &source.ConstantPower{P: p}, 1.8, 5.0, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		n.Simulate(60, 1e-4)
		return n.Rate(10, 60) // skip the first charge
	}
	r1 := rate(5e-3)
	r2 := rate(10e-3)
	if r1 <= 0 {
		t.Fatal("no pings at 5 mW")
	}
	ratio := r2 / r1
	if ratio < 1.7 || ratio > 2.3 {
		t.Errorf("rate ratio for 2× power = %.2f, want ≈2 (Monjolo linearity)", ratio)
	}
}

func TestWISPCamTakesPhotosOnRFBursts(t *testing.T) {
	// WISPCam charges its 6 mF supercap from RF power and takes one photo
	// per charge cycle; with the reader off it never fires.
	rf := &source.RFBurst{BurstPower: 5e-3, Period: 2, Duty: 0.9}
	n, err := NewNode(6e-3, WISPCamTask(), rf, 1.8, 5.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	n.Simulate(60, 1e-4)
	if len(n.Events) == 0 {
		t.Fatal("WISPCam never captured a photo")
	}
	// Energy accounting: each event must be separated by at least the
	// task recharge time E/(P·duty).
	minGap := WISPCamTask().EnergyJ / 0.8 / (5e-3 * 0.9) * 0.85
	for i := 1; i < len(n.Events); i++ {
		if gap := n.Events[i] - n.Events[i-1]; gap < minGap {
			t.Errorf("events %d,%d only %.2fs apart; recharge needs ≥%.2fs", i-1, i, gap, minGap)
		}
	}
	// No harvest, no photos.
	n2, err := NewNode(6e-3, WISPCamTask(), &source.ConstantPower{P: 0}, 1.8, 5.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	n2.Simulate(30, 1e-4)
	if len(n2.Events) != 0 {
		t.Error("photos without power")
	}
}

func TestGomezBurstHighRateSmallCap(t *testing.T) {
	// The 80 µF regime: small tasks, small storage, high burst rate.
	n, err := NewNode(80e-6, GomezBurstTask(), &source.ConstantPower{P: 2e-3}, 1.8, 5.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	n.Simulate(20, 1e-5)
	r := n.Rate(5, 20)
	// 2 mW harvest, 125 µJ per firing (incl. η): ≈16 Hz ideal; accept a
	// broad band (charging tail effects).
	if r < 8 || r > 20 {
		t.Errorf("burst rate = %.1f Hz, want ≈16", r)
	}
}

func TestCapacitorTooSmallRejected(t *testing.T) {
	// A 6 mJ photo cannot fit in 80 µF below 5 V.
	_, err := NewNode(80e-6, WISPCamTask(), &source.ConstantPower{P: 1e-3}, 1.8, 5.0, 0.8)
	if err == nil {
		t.Fatal("expected sizing error")
	}
	if !strings.Contains(err.Error(), "cannot hold") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestVFireSatisfiesEnergyBudget(t *testing.T) {
	// The computed firing threshold must store ≥ task/η between floor and
	// fire voltages.
	n, err := NewNode(500e-6, MonjoloTask(), &source.ConstantPower{P: 1e-3}, 1.8, 5.0, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	stored := 0.5 * 500e-6 * (n.VFire*n.VFire - n.VFloor*n.VFloor)
	if stored < MonjoloTask().EnergyJ/0.8 {
		t.Errorf("threshold stores %.3g J < required %.3g J", stored, MonjoloTask().EnergyJ/0.8)
	}
}

func TestRateWindowing(t *testing.T) {
	n := &Node{Events: []float64{1, 2, 3, 11, 12}}
	if got := n.Rate(0, 10); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("rate = %g, want 0.3", got)
	}
	if n.Rate(5, 5) != 0 {
		t.Error("degenerate window should be 0")
	}
}
