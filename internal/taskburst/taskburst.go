// Package taskburst implements the task-based transient systems on the
// right side of the paper's continuous/task-based adaptation arc (§II.B):
// systems that buffer just enough energy in a small capacitor to complete
// one atomic task, then fire. WISPCam [4] (one photo per 6 mF charge),
// Gomez et al.'s dynamic energy-burst scaling [5] (one sample/transmit
// burst per 80 µF charge) and Monjolo [6] (one wireless ping per 500 µF
// charge — where the ping *rate* is itself the power measurement) are all
// instances.
//
// The model: harvested power charges the capacitor; when the stored energy
// above the operating floor covers the task (voltage reaches VFire), the
// task executes and drains the capacitor back toward the floor. Between
// firings the system is effectively off — eq. (2) is violated constantly,
// and the application is designed so that this does not matter, which is
// what places these systems in the transient class of the taxonomy.
package taskburst

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/source"
	"repro/internal/units"
)

// Task is an atomic unit of work with a fixed energy cost.
type Task struct {
	Name    string
	EnergyJ float64
}

// Node is a task-based transient device.
type Node struct {
	Cap     *circuit.Capacitor
	Harvest source.PowerSource

	Task   Task
	VFire  float64 // fire when the capacitor reaches this voltage
	VFloor float64 // minimum useful operating voltage
	Eta    float64 // usable fraction of stored energy (converter losses)

	Events []float64 // firing timestamps

	// Observe, if non-nil, is called by Simulate after every step with
	// the time, the capacitor voltage, and whether a task fired on this
	// step. It is a pure observer — tracing hooks in here.
	Observe func(t, v float64, fired bool)

	// Abort, if non-nil, stops Simulate early once the channel is
	// closed; Aborted records that the run was cut short.
	Abort   <-chan struct{}
	Aborted bool
}

// NewNode builds a node and sizes VFire so that the energy stored between
// VFloor and VFire, de-rated by eta, covers exactly one task (plus a 5 %
// guard band).
func NewNode(c float64, task Task, harvest source.PowerSource, vFloor, vMax, eta float64) (*Node, error) {
	n := &Node{
		Cap:     circuit.NewCapacitor(c, 0),
		Harvest: harvest,
		Task:    task,
		VFloor:  vFloor,
		Eta:     eta,
	}
	need := task.EnergyJ * 1.05 / eta
	vFire := math.Sqrt(2*need/c + vFloor*vFloor)
	if vFire > vMax {
		return nil, ErrCapacitorTooSmall{C: c, Need: need, VMax: vMax, VFloor: vFloor}
	}
	n.VFire = vFire
	n.Cap.MaxV = vMax
	return n, nil
}

// ErrCapacitorTooSmall reports a storage sizing failure: the task cannot
// fit in the capacitor below its voltage rating.
type ErrCapacitorTooSmall struct {
	C, Need, VMax, VFloor float64
}

// Error implements error.
func (e ErrCapacitorTooSmall) Error() string {
	return "taskburst: capacitor " + units.Format(e.C, "F") +
		" cannot hold a " + units.Format(e.Need, "J") + " task below " +
		units.Format(e.VMax, "V")
}

// Simulate charges the node from its harvester for duration seconds at
// step dt, firing tasks as energy permits. Firing timestamps accumulate in
// Events. It is a chunked wrapper over Sim, preserving the historical
// abort cadence: the Abort channel is polled every 1024 steps.
func (n *Node) Simulate(duration, dt float64) {
	n.Aborted = false
	sim := NewSim(n, duration, dt)
	for !sim.Done() {
		if n.Abort != nil {
			select {
			case <-n.Abort:
				n.Aborted = true
				return
			default:
			}
		}
		sim.Step(1024)
	}
}

// Sim is a resumable stepper over the same charge/fire loop as Simulate:
// it advances in bounded chunks so a caller can interleave cancellation
// checks or capture a checkpoint between chunks, with its full state
// exposed through State/Restore. The per-step arithmetic is identical to
// an uninterrupted run.
type Sim struct {
	n            *Node
	duration, dt float64
	t            float64
}

// NewSim prepares a stepper for n over duration seconds at step dt.
func NewSim(n *Node, duration, dt float64) *Sim {
	return &Sim{n: n, duration: duration, dt: dt}
}

// Done reports whether the charge/fire loop has covered the duration.
func (s *Sim) Done() bool { return !(s.t < s.duration) }

// Step advances up to maxSteps integration steps (all remaining when
// maxSteps ≤ 0).
func (s *Sim) Step(maxSteps int) {
	n := s.n
	dt := s.dt
	const maxI = 1.0
	for k := 0; (maxSteps <= 0 || k < maxSteps) && s.t < s.duration; k++ {
		t := s.t
		p := n.Harvest.Power(t)
		if p > 0 {
			v := math.Max(n.Cap.V, 0.1)
			i := math.Min(p/v, maxI)
			n.Cap.Step(i, dt)
		} else {
			n.Cap.Step(0, dt)
		}
		fired := false
		if n.Cap.V >= n.VFire {
			drawn := n.Cap.DrawEnergy(n.Task.EnergyJ/n.Eta, n.VFloor)
			if drawn >= n.Task.EnergyJ/n.Eta*0.999 {
				n.Events = append(n.Events, t)
				fired = true
			}
		}
		if n.Observe != nil {
			n.Observe(t, n.Cap.V, fired)
		}
		s.t += dt
	}
}

// SimState is the complete serialisable state of a Sim plus the mutable
// node state the loop evolves: the clock, the capacitor's voltage and
// clamp accounting, and the firing log.
type SimState struct {
	T        float64
	V        float64
	ClampedJ float64
	Events   []float64
}

// State captures the stepper for later Restore.
func (s *Sim) State() SimState {
	return SimState{T: s.t, V: s.n.Cap.V, ClampedJ: s.n.Cap.ClampedJ, Events: s.n.Events}
}

// Restore rewinds the stepper and its node to a captured state. The node
// must have been rebuilt identically to the one that produced the state.
func (s *Sim) Restore(st SimState) {
	s.t = st.T
	s.n.Cap.V = st.V
	s.n.Cap.ClampedJ = st.ClampedJ
	s.n.Events = append([]float64(nil), st.Events...)
}

// Rate returns the mean firing rate in events per second over [t0, t1].
func (n *Node) Rate(t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	count := 0
	for _, e := range n.Events {
		if e >= t0 && e < t1 {
			count++
		}
	}
	return float64(count) / (t1 - t0)
}

// WISPCamTask is the reference photo-capture task: ≈6 mJ per VGA photo
// including NVM storage (the WISPCam fires once per 6 mF super-capacitor
// charge).
func WISPCamTask() Task { return Task{Name: "photo", EnergyJ: 6e-3} }

// MonjoloTask is the reference energy-meter ping: one packet per 500 µF
// charge, ≈ 1 mJ including radio startup.
func MonjoloTask() Task { return Task{Name: "ping", EnergyJ: 1e-3} }

// GomezBurstTask is a sample+transmit burst in the 80 µF regime of [5].
func GomezBurstTask() Task { return Task{Name: "burst", EnergyJ: 100e-6} }
