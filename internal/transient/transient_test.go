package transient

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/units"
)

// intermittentSetup is the shared testbed: a 3.3 V square-wave supply with
// 4 ms on / 150 ms off, a 10 µF rail with 50 kΩ leakage, and a sieve-3000
// workload (~21 ms at 8 MHz — longer than any uninterrupted window, so
// nothing completes without state retention across outages; the 3 KiB flag
// array also fits the 4 KiB SRAM).
func intermittentSetup(mk func(d *mcu.Device) mcu.Runtime) lab.Setup {
	return lab.Setup{
		Workload:    programs.Sieve(3000, programs.DefaultLayout()),
		Params:      mcu.DefaultParams(),
		MakeRuntime: mk,
		VSource:     &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
		C:           10e-6,
		LeakR:       50e3,
		Duration:    3.0,
	}
}

func TestBaselineNeverCompletesLongWorkload(t *testing.T) {
	res, err := lab.Run(intermittentSetup(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 0 {
		t.Errorf("bare device completed %d iterations across outages; the workload should not fit in one window", res.Completions)
	}
	if res.Stats.BrownOuts < 10 {
		t.Errorf("expected many brown-outs, got %d", res.Stats.BrownOuts)
	}
	if res.Stats.ColdStarts < 10 {
		t.Errorf("every power-on should cold start, got %d", res.Stats.ColdStarts)
	}
}

func TestHibernusCompletesAcrossOutages(t *testing.T) {
	var h *Hibernus
	res, err := lab.Run(intermittentSetup(func(d *mcu.Device) mcu.Runtime {
		h = NewHibernus(d, 10e-6, 1.1, 0.35)
		return h
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions < 3 {
		t.Errorf("hibernus completions = %d, want ≥3", res.Completions)
	}
	if res.WrongResults != 0 {
		t.Errorf("%d wrong results — state corruption across restores", res.WrongResults)
	}
	if res.Stats.Restores == 0 {
		t.Error("hibernus never restored a snapshot")
	}
	if res.RuntimeErr != nil {
		t.Errorf("guest fault: %v", res.RuntimeErr)
	}
}

func TestHibernusOneSnapshotPerOutage(t *testing.T) {
	// The paper: hibernus "usually only makes a single snapshot per supply
	// failure". Count supply periods and compare.
	s := intermittentSetup(func(d *mcu.Device) mcu.Runtime {
		return NewHibernus(d, 10e-6, 1.1, 0.35)
	})
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	periods := int(s.Duration / (0.004 + 0.150)) // ≈19
	if res.Stats.SavesDone < periods-3 || res.Stats.SavesDone > periods+3 {
		t.Errorf("snapshots = %d over %d supply periods; hibernus should take ≈1 per outage",
			res.Stats.SavesDone, periods)
	}
}

func TestMementosRedundantSnapshots(t *testing.T) {
	// Same supply: Mementos checkpoints at every loop latch below its
	// threshold, so it takes several snapshots per outage where hibernus
	// takes one, and still completes (more slowly) thanks to restore.
	var m *Mementos
	resM, err := lab.Run(intermittentSetup(func(d *mcu.Device) mcu.Runtime {
		m = NewMementos(d, 2.2)
		return m
	}))
	if err != nil {
		t.Fatal(err)
	}
	resH, err := lab.Run(intermittentSetup(func(d *mcu.Device) mcu.Runtime {
		return NewHibernus(d, 10e-6, 1.1, 0.35)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if resM.WrongResults != 0 {
		t.Errorf("mementos produced %d wrong results", resM.WrongResults)
	}
	if resM.Completions == 0 {
		t.Error("mementos made no progress at all")
	}
	if float64(resM.Stats.SavesStarted) < 1.5*float64(resH.Stats.SavesStarted) {
		t.Errorf("mementos saves (%d) should exceed hibernus (%d) by ≥1.5× — redundant snapshots",
			resM.Stats.SavesStarted, resH.Stats.SavesStarted)
	}
	// Snapshot efficiency: hibernus spends fewer snapshots per unit of
	// completed work (the paper's "removes wasted snapshots" claim).
	if resH.Completions > 0 && resM.Completions > 0 {
		perH := float64(resH.Stats.SavesStarted) / float64(resH.Completions)
		perM := float64(resM.Stats.SavesStarted) / float64(resM.Completions)
		if perH >= perM {
			t.Errorf("snapshots per completion: hibernus %.1f should be below mementos %.1f", perH, perM)
		}
	}
}

func TestQuickRecallRegisterOnlySnapshots(t *testing.T) {
	s := intermittentSetup(func(d *mcu.Device) mcu.Runtime {
		return NewQuickRecall(d, 10e-6, 1.1, 0.35)
	})
	s.Workload = programs.Sieve(3000, programs.UnifiedNVLayout())
	s.Params = mcu.UnifiedNVParams()
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions < 3 {
		t.Errorf("quickrecall completions = %d, want ≥3", res.Completions)
	}
	if res.WrongResults != 0 {
		t.Errorf("%d wrong results under unified NV", res.WrongResults)
	}
	if res.Stats.Restores == 0 {
		t.Error("quickrecall never restored")
	}
}

func TestHibernusPPSurvivesUnknownCapacitance(t *testing.T) {
	// hibernus calibrated for a 47 µF rail but deployed on 4.7 µF: V_H is
	// far too low, every snapshot is cut off by the brown-out, and no
	// progress survives an outage. hibernus++ self-calibrates on the same
	// rail and completes. (Paper §III: "if there is less storage than it
	// was pre-characterised for, hibernus++ will still operate, whereas
	// hibernus ... will no longer be able to operate correctly".)
	mis := intermittentSetup(func(d *mcu.Device) mcu.Runtime {
		return NewHibernus(d, 47e-6, 1.0, 0.35) // wrong C: thinks 47 µF
	})
	mis.C = 4.7e-6
	resMis, err := lab.Run(mis)
	if err != nil {
		t.Fatal(err)
	}
	if resMis.Completions != 0 {
		t.Errorf("mischaracterised hibernus completed %d times; expected failure", resMis.Completions)
	}
	if resMis.Stats.SavesAborted == 0 {
		t.Error("expected snapshots to be cut off by brown-outs")
	}

	pp := intermittentSetup(func(d *mcu.Device) mcu.Runtime {
		return NewHibernusPP(d)
	})
	pp.C = 4.7e-6
	resPP, err := lab.Run(pp)
	if err != nil {
		t.Fatal(err)
	}
	if resPP.Completions == 0 {
		t.Error("hibernus++ failed on the same rail it should self-calibrate to")
	}
	if resPP.WrongResults != 0 {
		t.Errorf("hibernus++ produced %d wrong results", resPP.WrongResults)
	}
}

func TestHibernusPPCalibrationConverges(t *testing.T) {
	var pp *HibernusPP
	s := intermittentSetup(func(d *mcu.Device) mcu.Runtime {
		pp = NewHibernusPP(d)
		return pp
	})
	if _, err := lab.Run(s); err != nil {
		t.Fatal(err)
	}
	if pp.Calibrations < 2 {
		t.Fatalf("calibrations = %d, want ≥2", pp.Calibrations)
	}
	// Converged V_H should be in a sane band: above the device floor plus
	// the measured drop, below the initial conservative guess.
	if pp.VH <= 1.8 || pp.VH >= 2.8 {
		t.Errorf("converged V_H = %.3f, want within (1.8, 2.8)", pp.VH)
	}
	if pp.VR <= pp.VH {
		t.Errorf("V_R (%.3f) must stay above V_H (%.3f)", pp.VR, pp.VH)
	}
}

func TestHibernusWakesWithoutRestoreOnShallowDip(t *testing.T) {
	// Supply dips below V_H but the rail never browns out: hibernus
	// snapshots, sleeps through the dip, and WAKES — no restore, no
	// reboot. This is the "usually only makes a single snapshot ...
	// ensures a valid snapshot" efficiency path.
	var h *Hibernus
	s := lab.Setup{
		Workload: programs.FFT(64, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		MakeRuntime: func(d *mcu.Device) mcu.Runtime {
			h = NewHibernus(d, 10e-6, 1.1, 0.35)
			return h
		},
		VSource:  &source.SquareWaveVoltage{High: 3.3, OnTime: 0.030, OffTime: 0.025, Rs: 100},
		C:        10e-6,
		Duration: 1.0,
	}
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BrownOuts != 0 {
		t.Fatalf("rail browned out %d times; dip was meant to be shallow", res.Stats.BrownOuts)
	}
	if h.Wakes == 0 {
		t.Error("hibernus never took the wake-without-restore fast path")
	}
	if res.Stats.Restores != 0 {
		t.Errorf("restores = %d, want 0 (state never lost)", res.Stats.Restores)
	}
	if res.Completions == 0 {
		t.Error("no completions across shallow dips")
	}
}

func TestHibernusCalibrationSatisfiesEq4(t *testing.T) {
	// The calibrated V_H must leave at least E_s of energy between V_H and
	// V_min on the rail capacitance (eq. 4), including the guard margin.
	for _, c := range []float64{4.7e-6, 10e-6, 100e-6, 6e-3} {
		d := deviceForCalibration(t)
		h := NewHibernus(d, c, 1.0, 0.3)
		es := d.EstimateSnapshotEnergy(3.0, d.DefaultSnapshotKind())
		budget := units.EnergyBetween(c, h.VH, d.P.VOff)
		if budget < es*0.999 {
			t.Errorf("C=%s: budget %.3g J < E_s %.3g J — eq. 4 violated",
				units.Format(c, "F"), budget, es)
		}
		// Larger C ⇒ lower V_H (threshold approaches V_min).
		if c >= 100e-6 && h.VH > 2.0 {
			t.Errorf("C=%s: V_H=%.3f should be near V_min for big storage", units.Format(c, "F"), h.VH)
		}
	}
}

// deviceForCalibration builds a throwaway device for threshold math.
func deviceForCalibration(t *testing.T) *mcu.Device {
	t.Helper()
	w := programs.Fib(5, programs.DefaultLayout())
	prog, err := isa.Assemble(w.Source)
	if err != nil {
		t.Fatal(err)
	}
	return mcu.New(mcu.DefaultParams(), prog)
}

func TestCrossoverFrequencyEq5(t *testing.T) {
	// eq. (5): f = (P_FRAM − P_SRAM)/(E_hib − E_qr).
	got := CrossoverFrequency(4e-3, 3.5e-3, 10e-6, 1e-6)
	want := 0.5e-3 / 9e-6 // ≈ 55.6 Hz
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("crossover = %g, want %g", got, want)
	}
	// Non-positive denominator: QuickRecall never wins → +Inf.
	if !math.IsInf(CrossoverFrequency(4e-3, 3e-3, 1e-6, 2e-6), 1) {
		t.Error("expected +Inf when E_hib ≤ E_qr")
	}
}

func TestRuntimeNames(t *testing.T) {
	d := deviceForCalibration(t)
	checks := map[string]mcu.Runtime{
		"hibernus":    NewHibernus(d, 10e-6, 1.1, 0.3),
		"hibernus++":  NewHibernusPP(d),
		"mementos":    NewMementos(d, 2.5),
		"quickrecall": NewQuickRecall(d, 10e-6, 1.1, 0.3),
		"nvp":         NewNVP(d, 10e-6, 1.1, 0.3),
	}
	for want, rt := range checks {
		if rt.Name() != want {
			t.Errorf("Name() = %q, want %q", rt.Name(), want)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	run := func() lab.Result {
		res, err := lab.Run(intermittentSetup(func(d *mcu.Device) mcu.Runtime {
			return NewHibernus(d, 10e-6, 1.1, 0.35)
		}))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Completions != b.Completions || a.Stats.SavesDone != b.Stats.SavesDone ||
		a.Stats.BrownOuts != b.Stats.BrownOuts || a.HarvestedJ != b.HarvestedJ {
		t.Errorf("simulation is not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}
