// Package transient implements the checkpointing runtimes the paper
// surveys and builds on (§II.B, §III): Hibernus, Hibernus++, Mementos,
// QuickRecall, and an NVP-style hardware-backup model. All of them attach
// to a simulated mcu.Device and manipulate genuine machine state through
// the device's snapshot engine, so their relative costs — snapshot count,
// saved bytes, re-executed cycles, quiescent power — emerge from the
// simulation rather than being asserted.
//
// The shared contract (mcu.Runtime):
//
//   - OnPowerOn runs after a power-on reset and decides between restoring
//     a snapshot and cold-starting the application.
//   - OnTick observes V_CC each simulation step — the voltage-interrupt
//     mechanism of hibernus/QuickRecall.
//   - OnCheckpointTrap runs at CHK instructions — the compile-time
//     checkpoint sites Mementos instruments.
package transient

import (
	"math"

	"repro/internal/mcu"
	"repro/internal/units"
)

// Hibernus is the paper's §III runtime [9]: an interrupt-driven scheme
// that snapshots all volatile state to NVM exactly once per supply
// failure, when V_CC falls below the hibernate threshold V_H, and restores
// (or simply wakes) when V_CC recovers above the restore threshold V_R.
//
// V_H is chosen from eq. (4): E_s ≤ (V_H² − V_min²)·C/2, where E_s is the
// snapshot energy and C the rail capacitance — a design-time calibration
// against the platform. V_R is a design-time calibration against the
// energy source.
type Hibernus struct {
	VH, VR float64
	Kind   mcu.SnapshotKind

	// Telemetry beyond the device's own stats.
	SnapshotsTriggered int
	Wakes              int
	RestoresRequested  int

	wasAboveVH     bool
	pendingRestore bool
	pendingStart   bool
}

// NewHibernus calibrates a Hibernus runtime for a device on a rail of
// capacitance c farads: V_H from eq. (4) with the given guard margin
// (e.g. 1.1 for +10 %), V_R = V_H + vrHeadroom.
func NewHibernus(d *mcu.Device, c, margin, vrHeadroom float64) *Hibernus {
	kind := d.DefaultSnapshotKind()
	es := d.EstimateSnapshotEnergy(3.0, kind)
	vh := units.HibernateThreshold(es, c, d.P.VOff) * margin
	return &Hibernus{VH: vh, VR: vh + vrHeadroom, Kind: kind}
}

// Name implements mcu.Runtime.
func (h *Hibernus) Name() string { return "hibernus" }

// OnPowerOn implements mcu.Runtime: wait (asleep) until V_CC reaches V_R,
// then restore the snapshot if one exists, else start the application.
func (h *Hibernus) OnPowerOn(d *mcu.Device) {
	h.wasAboveVH = false
	if d.HasSnapshot() {
		h.pendingRestore = true
	} else {
		h.pendingStart = true
	}
	d.Sleep()
}

// OnTick implements mcu.Runtime.
func (h *Hibernus) OnTick(d *mcu.Device, v float64) {
	switch d.Mode() {
	case mcu.ModeActive:
		if h.wasAboveVH && v <= h.VH {
			// Falling V_H crossing: hibernate. Exactly one snapshot per
			// supply failure.
			h.wasAboveVH = false
			h.SnapshotsTriggered++
			d.BeginSave(h.Kind, func() { d.Sleep() })
			return
		}
		if v > h.VH {
			h.wasAboveVH = true
		}
	case mcu.ModeSleep:
		if v < h.VR {
			return
		}
		switch {
		case h.pendingRestore:
			h.pendingRestore = false
			h.RestoresRequested++
			if !d.BeginRestore(nil) {
				d.ColdStart()
			}
		case h.pendingStart:
			h.pendingStart = false
			d.ColdStart()
		default:
			// Slept through a dip without losing power: resume directly,
			// skipping the restore entirely — hibernus' efficiency win
			// over reboot-based schemes.
			h.Wakes++
			d.Wake()
		}
	}
}

// OnCheckpointTrap implements mcu.Runtime: hibernus ignores compile-time
// checkpoint sites.
func (h *Hibernus) OnCheckpointTrap(*mcu.Device) {}

// WakeThreshold implements mcu.SleepWaker: below V_R a sleeping hibernus
// only waits, so idle decay can be fast-forwarded.
func (h *Hibernus) WakeThreshold() float64 { return h.VR }

// ActiveThresholds implements mcu.ActiveThresholds: while executing,
// hibernus reacts only to V_CC crossing V_H — falling triggers the
// hibernate snapshot, rising re-arms the detector — so active stretches
// away from V_H may be advanced analytically. (QuickRecall and NVP
// inherit this: their active-mode logic is exactly hibernus'.)
func (h *Hibernus) ActiveThresholds() []float64 { return []float64{h.VH} }

// ActiveSettled implements mcu.ActiveThresholds: OnTick is a no-op
// exactly when the falling-edge detector already matches which side of
// V_H the voltage is on. Right after a restore completes above V_H the
// detector is still disarmed, and the first tick arms it — that tick
// must run stepwise.
func (h *Hibernus) ActiveSettled(v float64) bool { return h.wasAboveVH == (v > h.VH) }

// QuickRecall [8] is the unified-FRAM variant: program and data memory are
// non-volatile, so a snapshot covers CPU registers only — tiny and fast —
// at the price of FRAM's higher quiescent/active power (the device must be
// configured with UnifiedNVParams). The trigger logic is hibernus-like:
// a V_CC interrupt saves as late as possible.
type QuickRecall struct {
	Hibernus
}

// NewQuickRecall calibrates a QuickRecall runtime: same eq. (4) threshold
// machinery, but with the registers-only snapshot cost.
func NewQuickRecall(d *mcu.Device, c, margin, vrHeadroom float64) *QuickRecall {
	es := d.EstimateSnapshotEnergy(3.0, mcu.SnapRegs)
	vh := units.HibernateThreshold(es, c, d.P.VOff) * margin
	return &QuickRecall{Hibernus{VH: vh, VR: vh + vrHeadroom, Kind: mcu.SnapRegs}}
}

// Name implements mcu.Runtime.
func (q *QuickRecall) Name() string { return "quickrecall" }

// NVP models a non-volatile-processor architecture [10]: every flip-flop
// has a parallel NV shadow cell, so backup is a near-instant hardware
// broadcast rather than a software copy loop. It behaves like an
// aggressive QuickRecall with an even later threshold; the architectural
// price (larger, higher-power flip-flops) is modelled in the device
// parameters, not here.
type NVP struct {
	Hibernus
}

// NewNVP builds an NVP runtime for a device (which should use NVPParams-
// style extra active current to reflect the NV flip-flop overhead).
func NewNVP(d *mcu.Device, c, margin, vrHeadroom float64) *NVP {
	es := d.EstimateSnapshotEnergy(3.0, mcu.SnapRegs)
	vh := units.HibernateThreshold(es, c, d.P.VOff) * margin
	return &NVP{Hibernus{VH: vh, VR: vh + vrHeadroom, Kind: mcu.SnapRegs}}
}

// Name implements mcu.Runtime.
func (n *NVP) Name() string { return "nvp" }

// Mementos [7] places checkpoints at compile time (loop latches and
// function boundaries — the CHK sites in the guest programs) and, at each
// site, snapshots if V_CC is below a fixed threshold. The paper lists its
// three structural downsides, all of which this implementation exhibits:
//
//  1. redundant snapshots — every checkpoint below threshold saves, even
//     when the supply recovers without failing;
//  2. a snapshot may start too late and be cut off by the outage (the
//     device's double buffering keeps the previous one intact);
//  3. code executed since the last snapshot is re-executed after restore.
type Mementos struct {
	VCheck float64 // snapshot when V_CC < VCheck at a checkpoint site
	Kind   mcu.SnapshotKind

	SnapshotsTriggered int
	RestoresRequested  int
}

// NewMementos returns a Mementos runtime with the given voltage-check
// threshold.
func NewMementos(d *mcu.Device, vCheck float64) *Mementos {
	return &Mementos{VCheck: vCheck, Kind: d.DefaultSnapshotKind()}
}

// Name implements mcu.Runtime.
func (m *Mementos) Name() string { return "mementos" }

// OnPowerOn implements mcu.Runtime: restore immediately if possible
// (Mementos has no source-aware restore gating), else restart from main.
func (m *Mementos) OnPowerOn(d *mcu.Device) {
	if d.HasSnapshot() {
		m.RestoresRequested++
		if d.BeginRestore(nil) {
			return
		}
	}
	d.ColdStart()
}

// OnTick implements mcu.Runtime: Mementos is oblivious to V_CC between
// checkpoints.
func (m *Mementos) OnTick(*mcu.Device, float64) {}

// WakeThreshold implements mcu.SleepWaker: Mementos' OnTick never acts at
// all, so any sleeping stretch may be fast-forwarded.
func (m *Mementos) WakeThreshold() float64 { return math.Inf(1) }

// OnCheckpointTrap implements mcu.Runtime: the compiled-in trampoline.
func (m *Mementos) OnCheckpointTrap(d *mcu.Device) {
	if d.Mode() != mcu.ModeActive {
		return
	}
	if d.LastV() < m.VCheck {
		m.SnapshotsTriggered++
		d.BeginSave(m.Kind, nil) // continues executing after the save
	}
}

// HibernusPP is hibernus++ [2]: the self-calibrating extension that learns
// V_H and V_R at run time instead of requiring the design-time
// characterisation of the platform (C) and source.
//
// Calibration runs in both directions:
//
//   - each snapshot completed during a genuine supply dip measures the
//     V_CC drop the save costs, and V_H descends (rate-limited) toward
//     V_min + margin·drop;
//   - each snapshot that was cut off by a brown-out (detected at the next
//     power-on via the device's aborted-save counter) proves V_H was too
//     low, and V_H steps back up.
//
// V_R adapts to the observed supply dynamics: hibernating again within
// milliseconds of a resume means V_R released execution too early, so it
// rises; long productive stints decay it toward V_H. The price of all this
// is the online-characterisation overhead — a conservative initial V_H and
// a first-boot calibration snapshot — matching the paper's "slightly less
// efficient than a manually calibrated hibernus, but robust to unknown
// storage".
type HibernusPP struct {
	VH, VR float64
	Kind   mcu.SnapshotKind

	VMin       float64
	DropMargin float64 // multiplier on the measured save drop (e.g. 1.25)
	DescendCap float64 // max V_H decrease per successful calibration
	RaiseStep  float64 // V_H increase after an aborted save

	SnapshotsTriggered int
	Wakes              int
	RestoresRequested  int
	Calibrations       int

	wasAboveVH     bool
	pendingRestore bool
	pendingStart   bool
	calibrated     bool
	lastResumeT    float64
	lastAborted    int
}

// NewHibernusPP returns a hibernus++ runtime with conservative initial
// thresholds derived only from the device's electrical limits — no
// knowledge of the rail capacitance.
func NewHibernusPP(d *mcu.Device) *HibernusPP {
	vmin := d.P.VOff
	return &HibernusPP{
		// Start very conservative: hibernate high, restore higher.
		VH:         vmin + 1.0,
		VR:         vmin + 1.3,
		Kind:       d.DefaultSnapshotKind(),
		VMin:       vmin,
		DropMargin: 1.25,
		DescendCap: 0.1,
		RaiseStep:  0.15,
	}
}

// Name implements mcu.Runtime.
func (h *HibernusPP) Name() string { return "hibernus++" }

// OnPowerOn implements mcu.Runtime. An aborted save observed here is the
// failure-feedback half of calibration: the previous V_H did not leave
// enough energy to finish a snapshot, so it steps back up.
func (h *HibernusPP) OnPowerOn(d *mcu.Device) {
	h.wasAboveVH = false
	if d.Stats.SavesAborted > h.lastAborted {
		h.lastAborted = d.Stats.SavesAborted
		h.VH = math.Min(h.VH+h.RaiseStep, h.VMin+1.2)
		if h.VR < h.VH+0.05 {
			h.VR = h.VH + 0.05
		}
		h.Calibrations++
	}
	if d.HasSnapshot() {
		h.pendingRestore = true
	} else {
		h.pendingStart = true
	}
	d.Sleep()
}

// recalibrate folds a measured save drop into the thresholds. Saves
// measured while the supply was rising (non-positive or negligible drop)
// carry no information about the discharge cost and are ignored; valid
// measurements move V_H toward V_min + margin·drop, descending at most
// DescendCap per step so one source-assisted (shallow) measurement cannot
// collapse the threshold below the safe level.
func (h *HibernusPP) recalibrate(drop float64) {
	if drop <= 0.005 {
		return
	}
	h.Calibrations++
	target := math.Max(h.VMin+drop*h.DropMargin, h.VMin+0.05)
	if target < h.VH {
		h.VH = math.Max(target, h.VH-h.DescendCap)
	} else {
		h.VH = math.Min(target, h.VMin+1.2)
	}
	if h.VR < h.VH+0.05 {
		h.VR = h.VH + 0.05
	}
}

// adaptVR nudges the restore threshold from observed behaviour: resuming
// and hibernating again within 5 ms means V_R released us too early. The
// upward excursion is capped at V_H + 0.5 V so a burst of early wakes can
// never push V_R beyond what the source actually reaches.
func (h *HibernusPP) adaptVR(d *mcu.Device) {
	dt := d.Now() - h.lastResumeT
	if h.lastResumeT > 0 && dt < 0.005 {
		h.VR = math.Min(h.VR+0.08, h.VH+0.5)
	} else {
		h.VR = math.Max(h.VR-0.01, h.VH+0.05)
	}
}

// OnTick implements mcu.Runtime.
func (h *HibernusPP) OnTick(d *mcu.Device, v float64) {
	switch d.Mode() {
	case mcu.ModeActive:
		if !h.calibrated {
			// First-boot calibration snapshot: measure the save drop at a
			// safe (high) voltage before trusting any threshold. If the
			// supply happens to be rising during the measurement the drop
			// is meaningless and is discarded — the conservative initial
			// V_H stays in force until a genuine falling-supply save.
			h.calibrated = true
			vStart := v
			h.SnapshotsTriggered++
			d.BeginSave(h.Kind, func() {
				h.recalibrate(vStart - d.LastV())
			})
			return
		}
		if h.wasAboveVH && v <= h.VH {
			h.wasAboveVH = false
			h.SnapshotsTriggered++
			h.adaptVR(d)
			vStart := v
			d.BeginSave(h.Kind, func() {
				h.recalibrate(vStart - d.LastV())
				d.Sleep()
			})
			return
		}
		if v > h.VH {
			h.wasAboveVH = true
		}
	case mcu.ModeSleep:
		if v < h.VR {
			return
		}
		switch {
		case h.pendingRestore:
			h.pendingRestore = false
			h.RestoresRequested++
			h.lastResumeT = d.Now()
			if !d.BeginRestore(nil) {
				d.ColdStart()
			}
		case h.pendingStart:
			h.pendingStart = false
			h.lastResumeT = d.Now()
			d.ColdStart()
		default:
			h.Wakes++
			h.lastResumeT = d.Now()
			d.Wake()
		}
	}
}

// OnCheckpointTrap implements mcu.Runtime.
func (h *HibernusPP) OnCheckpointTrap(*mcu.Device) {}

// WakeThreshold implements mcu.SleepWaker: like hibernus, a sleeping
// hibernus++ only waits for V_CC ≥ V_R. V_R moves between stints, but
// never while the device sleeps, so the threshold is stable across a dip.
func (h *HibernusPP) WakeThreshold() float64 { return h.VR }

// CrossoverFrequency evaluates the paper's eq. (5): the supply-interruption
// frequency above which a unified-FRAM (QuickRecall) system beats a
// hibernus (SRAM + snapshot) system:
//
//	f = (P_FRAM − P_SRAM) / (E_hibernus − E_quickrecall)
//
// pFRAM/pSRAM are the steady active power draws of the two systems and
// eHib/eQR the per-outage snapshot+restore energies. A non-positive
// denominator (QuickRecall's per-outage cost is not smaller) yields +Inf.
func CrossoverFrequency(pFRAM, pSRAM, eHib, eQR float64) float64 {
	den := eHib - eQR
	if den <= 0 {
		return math.Inf(1)
	}
	return (pFRAM - pSRAM) / den
}
