package transient

import "repro/internal/mcu"

// TaskBased is the Gomez/Monjolo-style policy (§II.B's task-based
// adaptation arc) running on the full MCU substrate: sleep until the rail
// has buffered enough energy for one complete task (voltage reaches
// VFire), execute, and — when the task boundary is reached (signalled by
// the application through NotifyTaskDone, typically wired to SysDone) —
// go back to sleep and let the capacitor recharge.
//
// Unlike the checkpointing runtimes, TaskBased never snapshots: it relies
// on tasks being atomic and restartable. A brown-out mid-task simply means
// the task re-runs from scratch next charge cycle — acceptable by design
// for idempotent tasks (take a photo, sample and transmit), which is
// exactly the application class the paper assigns to this arc.
type TaskBased struct {
	VFire  float64 // start a task when V_CC reaches this
	VAbort float64 // optional early-sleep threshold mid-task; 0 disables

	TasksStarted  int
	TasksFinished int

	running  bool
	doneFlag bool
}

// NewTaskBased returns a task-based runtime firing at vFire.
func NewTaskBased(vFire float64) *TaskBased {
	return &TaskBased{VFire: vFire}
}

// Name implements mcu.Runtime.
func (tb *TaskBased) Name() string { return "task-based" }

// NotifyTaskDone marks the current task complete; call it from the
// device's SysHandler on the workload's completion trap.
func (tb *TaskBased) NotifyTaskDone() {
	if tb.running {
		tb.doneFlag = true
	}
}

// OnPowerOn implements mcu.Runtime: always a cold start (there is nothing
// to restore), gated on the firing threshold.
func (tb *TaskBased) OnPowerOn(d *mcu.Device) {
	tb.running = false
	tb.doneFlag = false
	d.Sleep()
}

// OnTick implements mcu.Runtime.
func (tb *TaskBased) OnTick(d *mcu.Device, v float64) {
	switch d.Mode() {
	case mcu.ModeSleep:
		if !tb.running && v >= tb.VFire {
			tb.running = true
			tb.doneFlag = false
			tb.TasksStarted++
			d.ColdStart() // each task restarts the (idempotent) guest
		}
	case mcu.ModeActive:
		if tb.doneFlag {
			tb.doneFlag = false
			tb.running = false
			tb.TasksFinished++
			d.Sleep()
			return
		}
		if tb.VAbort > 0 && v < tb.VAbort {
			// Energy ran out mid-task: abandon it and wait for the next
			// charge cycle (the task will re-run in full).
			tb.running = false
			d.Sleep()
		}
	}
}

// OnCheckpointTrap implements mcu.Runtime: task-based systems do not
// checkpoint.
func (tb *TaskBased) OnCheckpointTrap(*mcu.Device) {}
