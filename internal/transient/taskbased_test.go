package transient

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
)

// runTaskBased wires the TaskBased runtime's completion notification to
// the workload's SysDone through the lab's device hook.
func runTaskBased(t *testing.T, vFire float64, supply source.VoltageSource,
	c, duration float64) (lab.Result, *TaskBased) {
	t.Helper()
	var tb *TaskBased
	s := lab.Setup{
		Workload: programs.FFT(64, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		Configure: func(d *mcu.Device) {
			tb = NewTaskBased(vFire)
			prev := d.SysHandler
			d.SysHandler = func(code uint16, core *isa.Core) {
				if prev != nil {
					prev(code, core)
				}
				if code == programs.SysDone {
					tb.NotifyTaskDone()
				}
			}
		},
		MakeRuntime: func(d *mcu.Device) mcu.Runtime { return tb },
		VSource:     supply,
		C:           c,
		Duration:    duration,
	}
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return res, tb
}

func TestTaskBasedChargeFireCycle(t *testing.T) {
	// A weak DC supply charges a large capacitor; each firing runs one
	// full FFT from the buffered energy and the node then sleeps to
	// recharge — the Monjolo/Gomez/WISPCam pattern on the real MCU.
	weak := &source.ConstantVoltage{V: 4.2, Rs: 4000}
	res, tb := runTaskBased(t, 4.0, weak, 220e-6, 3.0)
	if tb.TasksFinished < 2 {
		t.Fatalf("tasks finished = %d, want ≥2 charge-fire cycles", tb.TasksFinished)
	}
	if res.WrongResults != 0 {
		t.Errorf("task-based run produced %d wrong results", res.WrongResults)
	}
	if res.Completions < tb.TasksFinished {
		t.Errorf("completions %d < finished tasks %d", res.Completions, tb.TasksFinished)
	}
	// The node must actually duty-cycle: sleep time dominates.
	if res.Stats.SleepSec < res.Stats.ActiveSec {
		t.Errorf("expected charge-dominated duty cycle: active %.3fs, sleep %.3fs",
			res.Stats.ActiveSec, res.Stats.SleepSec)
	}
}

func TestTaskBasedRateTracksSupplyStrength(t *testing.T) {
	// Stronger harvest ⇒ faster recharge ⇒ higher task rate (the Monjolo
	// metering principle, here on the MCU substrate).
	weak, _ := runTaskBased(t, 4.0, &source.ConstantVoltage{V: 4.2, Rs: 6000}, 220e-6, 3.0)
	strong, _ := runTaskBased(t, 4.0, &source.ConstantVoltage{V: 4.2, Rs: 2000}, 220e-6, 3.0)
	if strong.Completions <= weak.Completions {
		t.Errorf("stronger supply should fire more tasks: %d vs %d",
			strong.Completions, weak.Completions)
	}
}

func TestTaskBasedUndersizedStorageNeverCompletes(t *testing.T) {
	// The storage buffers less energy than one task needs: every attempt
	// runs out mid-task (V_abort), the node recharges and tries again,
	// forever. This is the §II.B sizing constraint — a task-based system
	// must buffer a FULL task's energy — demonstrated as the failure mode
	// taskburst.NewNode's sizing check exists to prevent. Crucially, the
	// doomed retries still never emit a wrong result.
	var tb *TaskBased
	s := lab.Setup{
		Workload: programs.FFT(256, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		Configure: func(d *mcu.Device) {
			tb = NewTaskBased(2.6)
			tb.VAbort = 2.1
			prev := d.SysHandler
			d.SysHandler = func(code uint16, core *isa.Core) {
				if prev != nil {
					prev(code, core)
				}
				if code == programs.SysDone {
					tb.NotifyTaskDone()
				}
			}
		},
		MakeRuntime: func(d *mcu.Device) mcu.Runtime { return tb },
		VSource:     &source.ConstantVoltage{V: 3.0, Rs: 2500},
		C:           22e-6,
		Duration:    3.0,
	}
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if tb.TasksStarted < 3 {
		t.Fatalf("expected repeated attempts, got %d", tb.TasksStarted)
	}
	if tb.TasksFinished != 0 || res.Completions != 0 {
		t.Errorf("undersized storage should never complete a task: finished %d, completions %d",
			tb.TasksFinished, res.Completions)
	}
	if res.WrongResults != 0 {
		t.Errorf("aborted attempts produced %d wrong results", res.WrongResults)
	}
}

func TestTaskBasedName(t *testing.T) {
	if NewTaskBased(3).Name() != "task-based" {
		t.Error("name")
	}
}
