package transient

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/registry"
)

// probeDevice builds a throwaway device for factory construction.
func probeDevice(t *testing.T, unified bool) *mcu.Device {
	t.Helper()
	layout, params := programs.DefaultLayout(), mcu.DefaultParams()
	if unified {
		layout, params = programs.UnifiedNVLayout(), mcu.UnifiedNVParams()
	}
	prog, err := isa.Assemble(programs.Fib(5, layout).Source)
	if err != nil {
		t.Fatal(err)
	}
	return mcu.New(params, prog)
}

func TestRuntimeRegistryConstructsEveryName(t *testing.T) {
	for _, name := range RuntimeNames() {
		e, err := LookupRuntime(name)
		if err != nil {
			t.Fatalf("LookupRuntime(%q): %v", name, err)
		}
		mk, got, err := RuntimeFactory(name, 10e-6, nil)
		if err != nil {
			t.Errorf("RuntimeFactory(%q): %v", name, err)
			continue
		}
		if got.UnifiedNV != e.UnifiedNV {
			t.Errorf("RuntimeFactory(%q): UnifiedNV mismatch", name)
		}
		if name == "none" {
			if mk != nil {
				t.Errorf("RuntimeFactory(none) should yield a nil factory")
			}
			continue
		}
		if mk == nil {
			t.Errorf("RuntimeFactory(%q): nil factory", name)
			continue
		}
		rt := mk(probeDevice(t, e.UnifiedNV))
		if rt == nil {
			t.Errorf("factory %q built a nil runtime", name)
			continue
		}
		if rt.Name() == "" {
			t.Errorf("runtime %q reports an empty Name()", name)
		}
	}
}

func TestRuntimeRegistryParamsReachConstructor(t *testing.T) {
	mk, _, err := RuntimeFactory("mementos", 10e-6, registry.Params{"vcheck": 2.7})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := mk(probeDevice(t, false)).(*Mementos)
	if !ok {
		t.Fatal("mementos factory built the wrong type")
	}
	if m.VCheck != 2.7 {
		t.Errorf("vcheck = %g, want 2.7", m.VCheck)
	}
}

func TestRuntimeRegistryUnknownNameAndParam(t *testing.T) {
	if _, _, err := RuntimeFactory("hibernuss", 10e-6, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown runtime") {
		t.Errorf("unknown name: got %v", err)
	}
	if _, _, err := RuntimeFactory("hibernus", 10e-6, registry.Params{"margn": 1.1}); err == nil ||
		!strings.Contains(err.Error(), `"margn"`) {
		t.Errorf("unknown param: got %v", err)
	}
}
