// Registry of transient-computing runtimes by name: the checkpointing
// schemes a scenario spec or the ehsim CLI can attach to the simulated
// device. Each entry documents its tunables and whether it requires the
// unified-FRAM device configuration (QuickRecall-style systems), so the
// scenario compiler can pick the matching memory layout automatically.
//
// The registry is open: sibling policy packages register their combined
// runtimes here too (powerneutral adds "hibernus-pn"), which is what
// lets one namespace cover the whole taxonomy.
package transient

import (
	"repro/internal/mcu"
	"repro/internal/registry"
)

// RuntimeEntry describes one registered runtime kind.
type RuntimeEntry struct {
	Desc      string
	UnifiedNV bool // requires UnifiedNVParams/UnifiedNVLayout
	Params    []registry.ParamDoc
	// Make builds the runtime for a device on a rail of capacitance c
	// farads. A nil Make means "no runtime" (the unprotected baseline).
	Make func(d *mcu.Device, c float64, p registry.Params) mcu.Runtime
}

var runtimes = registry.New[RuntimeEntry]("runtime")

// RegisterRuntime adds a runtime under name (panics on duplicates).
func RegisterRuntime(name string, e RuntimeEntry) { runtimes.Register(name, e) }

// RuntimeNames returns every registered runtime name, sorted.
func RuntimeNames() []string { return runtimes.Names() }

// LookupRuntime returns the entry for name, or an error listing the
// known names.
func LookupRuntime(name string) (RuntimeEntry, error) { return runtimes.Get(name) }

// RuntimeFactory resolves name into a lab.Setup.MakeRuntime-shaped
// factory (nil for the bare-device baseline) plus the entry's unified-NV
// requirement. Params are validated against the entry's docs.
func RuntimeFactory(name string, c float64, p registry.Params) (func(d *mcu.Device) mcu.Runtime, RuntimeEntry, error) {
	e, err := runtimes.Get(name)
	if err != nil {
		return nil, RuntimeEntry{}, err
	}
	full, err := registry.Resolve("runtime", name, e.Params, p)
	if err != nil {
		return nil, RuntimeEntry{}, err
	}
	if e.Make == nil {
		return nil, e, nil
	}
	return func(d *mcu.Device) mcu.Runtime { return e.Make(d, c, full) }, e, nil
}

// hibernusParams is the shared tunable set of the eq. (4)-calibrated
// runtimes.
var hibernusParams = []registry.ParamDoc{
	{Key: "margin", Default: 1.1, Desc: "guard margin on the eq. (4) V_H"},
	{Key: "vrheadroom", Default: 0.35, Desc: "V_R − V_H headroom (V)"},
}

func init() {
	RegisterRuntime("none", RuntimeEntry{
		Desc: "no runtime: the unprotected restart-on-every-outage baseline",
	})
	RegisterRuntime("hibernus", RuntimeEntry{
		Desc:   "interrupt-driven snapshot at V_H, restore/wake at V_R (eq. 4)",
		Params: hibernusParams,
		Make: func(d *mcu.Device, c float64, p registry.Params) mcu.Runtime {
			return NewHibernus(d, c, p["margin"], p["vrheadroom"])
		},
	})
	RegisterRuntime("hibernus++", RuntimeEntry{
		Desc: "self-calibrating hibernus: learns V_H/V_R online, no design-time characterisation",
		Make: func(d *mcu.Device, _ float64, _ registry.Params) mcu.Runtime {
			return NewHibernusPP(d)
		},
	})
	RegisterRuntime("mementos", RuntimeEntry{
		Desc: "compile-time checkpoints (CHK sites), snapshot when V_CC < vcheck",
		Params: []registry.ParamDoc{
			{Key: "vcheck", Default: 2.2, Desc: "checkpoint-site voltage threshold (V)"},
		},
		Make: func(d *mcu.Device, _ float64, p registry.Params) mcu.Runtime {
			return NewMementos(d, p["vcheck"])
		},
	})
	RegisterRuntime("quickrecall", RuntimeEntry{
		Desc:      "unified-FRAM registers-only snapshots",
		UnifiedNV: true,
		Params:    hibernusParams,
		Make: func(d *mcu.Device, c float64, p registry.Params) mcu.Runtime {
			return NewQuickRecall(d, c, p["margin"], p["vrheadroom"])
		},
	})
	RegisterRuntime("nvp", RuntimeEntry{
		Desc:   "non-volatile-processor model: near-instant hardware backup of registers",
		Params: hibernusParams,
		Make: func(d *mcu.Device, c float64, p registry.Params) mcu.Runtime {
			return NewNVP(d, c, p["margin"], p["vrheadroom"])
		},
	})
}
