package transient

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
)

// randomOutageSupply builds a seeded supply with irregular on/off windows:
// on-times 2–20 ms, off-times 20–250 ms — a hostile, unpredictable energy
// environment.
func randomOutageSupply(seed int64, duration float64) source.VoltageSource {
	rng := rand.New(rand.NewSource(seed))
	g := &source.GatedVoltage{Source: &source.ConstantVoltage{V: 3.3, Rs: 100}}
	t := 0.0
	for t < duration {
		on := 0.002 + rng.Float64()*0.018
		off := 0.020 + rng.Float64()*0.230
		g.Windows = append(g.Windows, [2]float64{t, t + on})
		t += on + off
	}
	return g
}

// TestOutageFuzzNeverCorrupts is the headline correctness property of the
// whole stack: across randomized outage schedules, every runtime either
// completes iterations with the exact reference checksum or makes no
// progress — a wrong result is never acceptable. This exercises arbitrary
// interleavings of snapshot, abort, brown-out, restore and cold start.
func TestOutageFuzzNeverCorrupts(t *testing.T) {
	workloads := []func() *lab.Setup{
		func() *lab.Setup {
			return &lab.Setup{Workload: programs.Sieve(3000, programs.DefaultLayout()),
				Params: mcu.DefaultParams()}
		},
		func() *lab.Setup {
			return &lab.Setup{Workload: programs.FFT(128, programs.DefaultLayout()),
				Params: mcu.DefaultParams()}
		},
		func() *lab.Setup {
			return &lab.Setup{Workload: programs.MatMul(8, programs.DefaultLayout()),
				Params: mcu.DefaultParams()}
		},
	}
	runtimes := map[string]func(d *mcu.Device) mcu.Runtime{
		"hibernus":   func(d *mcu.Device) mcu.Runtime { return NewHibernus(d, 10e-6, 1.1, 0.35) },
		"hibernus++": func(d *mcu.Device) mcu.Runtime { return NewHibernusPP(d) },
		"mementos":   func(d *mcu.Device) mcu.Runtime { return NewMementos(d, 2.2) },
	}
	totalCompletions := 0
	for seed := int64(1); seed <= 4; seed++ {
		for wi, mkSetup := range workloads {
			for name, mk := range runtimes {
				s := mkSetup()
				s.MakeRuntime = mk
				s.VSource = randomOutageSupply(seed*100+int64(wi), 2.0)
				s.C = 10e-6
				s.LeakR = 50e3
				s.Duration = 2.0
				res, err := lab.Run(*s)
				if err != nil {
					t.Fatalf("seed %d %s/%s: %v", seed, s.Workload.Name, name, err)
				}
				if res.WrongResults != 0 {
					t.Errorf("seed %d %s/%s: %d WRONG results — state corruption",
						seed, s.Workload.Name, name, res.WrongResults)
				}
				if res.RuntimeErr != nil {
					t.Errorf("seed %d %s/%s: guest fault %v",
						seed, s.Workload.Name, name, res.RuntimeErr)
				}
				totalCompletions += res.Completions
			}
		}
	}
	// The fuzz must also demonstrate actual progress somewhere, or the
	// zero-wrong-results property is vacuous.
	if totalCompletions < 20 {
		t.Errorf("only %d completions across the whole fuzz — too weak to be meaningful", totalCompletions)
	}
}

// TestQuickRecallOutageFuzz runs the unified-FRAM configuration through
// the same gauntlet.
func TestQuickRecallOutageFuzz(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		s := lab.Setup{
			Workload: programs.FFT(128, programs.UnifiedNVLayout()),
			Params:   mcu.UnifiedNVParams(),
			MakeRuntime: func(d *mcu.Device) mcu.Runtime {
				return NewQuickRecall(d, 10e-6, 1.1, 0.35)
			},
			VSource:  randomOutageSupply(seed, 2.0),
			C:        10e-6,
			LeakR:    50e3,
			Duration: 2.0,
		}
		res, err := lab.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if res.WrongResults != 0 {
			t.Errorf("seed %d: %d wrong results under unified NV", seed, res.WrongResults)
		}
	}
}

// TestFuzzDeterminism re-runs one fuzz case and demands identical results:
// the randomness lives entirely in the seeded supply schedule.
func TestFuzzDeterminism(t *testing.T) {
	run := func() string {
		s := lab.Setup{
			Workload: programs.Sieve(3000, programs.DefaultLayout()),
			Params:   mcu.DefaultParams(),
			MakeRuntime: func(d *mcu.Device) mcu.Runtime {
				return NewHibernus(d, 10e-6, 1.1, 0.35)
			},
			VSource:  randomOutageSupply(7, 2.0),
			C:        10e-6,
			LeakR:    50e3,
			Duration: 2.0,
		}
		res, err := lab.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%d/%d/%d/%d", res.Completions, res.Stats.SavesDone,
			res.Stats.BrownOuts, res.Stats.Restores)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("fuzz case not deterministic: %s vs %s", a, b)
	}
}
