package bench

import (
	"os"
	"path/filepath"
	"testing"
)

// tinySpec is a millisecond-scale scenario so the suite machinery can be
// exercised without meaningful wall time.
const tinySpec = `{
	"name": "bench-tiny",
	"workload": "fib24",
	"storage": {"c": "10u"},
	"source": {"name": "dc"},
	"duration": 0.002
}`

func tinySuiteDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tiny.json"), []byte(tinySpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestSuiteMeasuresEveryCell(t *testing.T) {
	var cells []string
	results, err := Suite(tinySuiteDir(t), 2, func(c string) { cells = append(cells, c) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (workers 1 and %d)", len(results), SuiteWorkers)
	}
	if len(cells) != 2 {
		t.Fatalf("progress reported %d cells, want 2", len(cells))
	}
	for _, r := range results {
		if r.Name != "bench-tiny" || r.Runs != 2 {
			t.Errorf("unexpected cell identity: %+v", r)
		}
		if r.NsPerRun <= 0 || r.SimSeconds != 0.002 || r.Steps <= 0 {
			t.Errorf("unmeasured cell: %+v", r)
		}
		if r.NsPerSimSecond <= 0 || r.StepsPerSecond <= 0 {
			t.Errorf("derived rates missing: %+v", r)
		}
	}
	if results[0].Workers != 1 || results[1].Workers != SuiteWorkers {
		t.Errorf("worker cells out of order: %d, %d", results[0].Workers, results[1].Workers)
	}
}

func TestSuiteErrorsOnEmptyDir(t *testing.T) {
	if _, err := Suite(t.TempDir(), 1, nil); err == nil {
		t.Fatal("expected an error for a directory without specs")
	}
}

func TestFileRoundTrip(t *testing.T) {
	f := NewFile("testrev", []Result{{Name: "x", Workers: 1, NsPerSimSecond: 42}})
	path := filepath.Join(t.TempDir(), "BENCH_testrev.json")
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rev != "testrev" || len(got.Results) != 1 || got.Results[0].NsPerSimSecond != 42 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.GoVersion == "" || got.CPUs <= 0 || got.Timestamp == "" {
		t.Fatalf("environment header missing: %+v", got)
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	base := &File{Results: []Result{
		{Name: "a", Workers: 1, NsPerSimSecond: 100},
		{Name: "b", Workers: 1, NsPerSimSecond: 100},
		{Name: "gone", Workers: 1, NsPerSimSecond: 100},
	}}
	cur := &File{Results: []Result{
		{Name: "a", Workers: 1, NsPerSimSecond: 120},  // +20%: inside tolerance
		{Name: "b", Workers: 1, NsPerSimSecond: 200},  // +100%: regression
		{Name: "new", Workers: 1, NsPerSimSecond: 99}, // no baseline: ignored
	}}
	regs := Compare(base, cur, 0.5)
	if len(regs) != 1 || regs[0].Name != "b" {
		t.Fatalf("got %v, want exactly cell b", regs)
	}
	if regs[0].Ratio != 2.0 {
		t.Errorf("ratio %g, want 2.0", regs[0].Ratio)
	}
	if regs[0].String() == "" {
		t.Error("empty regression rendering")
	}
}
