// Package bench is the repository's performance-measurement subsystem:
// a fixed, machine-readable benchmark suite over the curated scenario
// specs, plus the shared testbed helpers the root-level ad-hoc benchmarks
// (bench_test.go) drive through the same lab path.
//
// The suite exists to make hot-path work regression-proof: every run
// emits a BENCH_<rev>.json with ns per simulated second, steps per
// second, and allocation counts for each (spec, workers) cell, and
// Compare checks a fresh measurement against a committed baseline with a
// tolerance wide enough to absorb machine noise but not a real
// regression. cmd/ehsim-bench is the CLI front-end; CI runs it on every
// change and uploads the JSON as an artifact (see docs/BENCHMARKS.md).
//
// Performance numbers are only meaningful alongside correctness, so the
// suite measures exactly the path the golden-output conformance corpus
// pins (internal/result.RunSpec): if an optimization changes output, the
// goldens fail; if it changes speed, this suite shows it.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"repro/internal/result"
	"repro/internal/scenario"
)

// Result is one measured (spec, workers) cell of the suite.
type Result struct {
	Name    string `json:"name"`    // scenario name
	Workers int    `json:"workers"` // sweep parallelism the cell ran at
	Runs    int    `json:"runs"`    // measurement repetitions (best-of)

	SimSeconds float64 `json:"sim_seconds"` // simulated seconds per run, all cases
	Steps      int64   `json:"steps"`       // Dt-steps per run, all cases

	NsPerRun       int64   `json:"ns_per_run"`        // best wall time of one run
	NsPerSimSecond float64 `json:"ns_per_sim_second"` // NsPerRun / SimSeconds
	StepsPerSecond float64 `json:"steps_per_second"`  // Steps / best wall time

	AllocsPerRun uint64 `json:"allocs_per_run"` // heap objects, best run
	BytesPerRun  uint64 `json:"bytes_per_run"`  // heap bytes, best run
}

// File is the on-disk BENCH_<rev>.json document.
type File struct {
	Rev       string   `json:"rev"`        // revision label the numbers describe
	GoVersion string   `json:"go_version"` //
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Timestamp string   `json:"timestamp"` // RFC 3339
	Results   []Result `json:"results"`
}

// SuiteWorkers is the parallel cell's worker count: every spec is
// measured single-core (workers=1) and at this fan-out.
const SuiteWorkers = 8

// Suite measures every *.json spec in dir at 1 and SuiteWorkers workers,
// runs times each (reporting the best run, the standard way to strip
// scheduler noise from a deterministic workload). Results are ordered by
// spec name, then workers.
func Suite(dir string, runs int, progress func(string)) ([]Result, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("bench: no scenario specs in %s", dir)
	}
	sort.Strings(paths)
	var out []Result
	for _, path := range paths {
		sp, err := scenario.Load(path)
		if err != nil {
			return nil, err
		}
		for _, workers := range []int{1, SuiteWorkers} {
			if progress != nil {
				progress(fmt.Sprintf("%s workers=%d", sp.Name, workers))
			}
			r, err := MeasureSpec(sp, workers, runs)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// MeasureSpec times result.RunSpec on one spec at the given parallelism,
// runs times, and reports the best run.
func MeasureSpec(sp *scenario.Spec, workers, runs int) (Result, error) {
	if runs < 1 {
		runs = 1
	}
	r := Result{Name: sp.Name, Workers: workers, Runs: runs}
	for i := 0; i < runs; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		rep, err := result.RunSpec(sp, result.Options{Workers: workers})
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return Result{}, fmt.Errorf("bench: %s: %w", sp.Name, err)
		}
		if i == 0 || elapsed.Nanoseconds() < r.NsPerRun {
			r.NsPerRun = elapsed.Nanoseconds()
			r.AllocsPerRun = after.Mallocs - before.Mallocs
			r.BytesPerRun = after.TotalAlloc - before.TotalAlloc
			r.SimSeconds = rep.SimSeconds
			r.Steps = 0
			for _, c := range rep.Cases {
				r.Steps += int64(c.Result.Steps)
			}
		}
	}
	if r.SimSeconds > 0 {
		r.NsPerSimSecond = float64(r.NsPerRun) / r.SimSeconds
	}
	if r.NsPerRun > 0 {
		r.StepsPerSecond = float64(r.Steps) / (float64(r.NsPerRun) / 1e9)
	}
	return r, nil
}

// NewFile wraps measured results with the environment header.
func NewFile(rev string, results []Result) *File {
	return &File{
		Rev:       rev,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Results:   results,
	}
}

// Write serialises f as indented JSON at path.
func (f *File) Write(path string) error {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadFile reads a BENCH_*.json document.
func LoadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &f, nil
}

// Regression is one suite cell that got slower than the baseline allows.
type Regression struct {
	Name    string
	Workers int
	// Base and Current are ns per simulated second.
	Base, Current float64
	Ratio         float64 // Current / Base
}

// String renders the regression for error output.
func (r Regression) String() string {
	return fmt.Sprintf("%s workers=%d: %.0f -> %.0f ns/sim-second (%.2fx)",
		r.Name, r.Workers, r.Base, r.Current, r.Ratio)
}

// Speedup is one suite cell present in both a baseline and a fresh
// measurement, expressed as a throughput ratio.
type Speedup struct {
	Name    string
	Workers int
	// BaseStepsPerSecond and StepsPerSecond are the old and new
	// throughput; Ratio is new/old, so >1 means faster.
	BaseStepsPerSecond float64
	StepsPerSecond     float64
	Ratio              float64
}

// Speedups pairs every cell of current with its baseline counterpart and
// reports the steps/s ratio (new/old) for each, in current's order.
// Cells missing from either file, or with non-positive throughput, are
// skipped — the suite's shape may grow across PRs.
func Speedups(base, current *File) []Speedup {
	type key struct {
		name    string
		workers int
	}
	baseBy := make(map[key]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[key{r.Name, r.Workers}] = r
	}
	var out []Speedup
	for _, cur := range current.Results {
		b, ok := baseBy[key{cur.Name, cur.Workers}]
		if !ok || b.StepsPerSecond <= 0 || cur.StepsPerSecond <= 0 {
			continue
		}
		out = append(out, Speedup{
			Name: cur.Name, Workers: cur.Workers,
			BaseStepsPerSecond: b.StepsPerSecond,
			StepsPerSecond:     cur.StepsPerSecond,
			Ratio:              cur.StepsPerSecond / b.StepsPerSecond,
		})
	}
	return out
}

// Compare checks current against base: any cell whose ns/sim-second grew
// by more than tolerance (0.5 = 50% slower) is reported. Cells present
// in only one file are ignored — the suite's shape may grow across PRs.
// Wall-clock comparisons across different machines are only indicative;
// CI uses a generous tolerance for exactly that reason.
func Compare(base, current *File, tolerance float64) []Regression {
	type key struct {
		name    string
		workers int
	}
	baseBy := make(map[key]Result, len(base.Results))
	for _, r := range base.Results {
		baseBy[key{r.Name, r.Workers}] = r
	}
	var regs []Regression
	for _, cur := range current.Results {
		b, ok := baseBy[key{cur.Name, cur.Workers}]
		if !ok || b.NsPerSimSecond <= 0 || cur.NsPerSimSecond <= 0 {
			continue
		}
		ratio := cur.NsPerSimSecond / b.NsPerSimSecond
		if ratio > 1+tolerance {
			regs = append(regs, Regression{
				Name: cur.Name, Workers: cur.Workers,
				Base: b.NsPerSimSecond, Current: cur.NsPerSimSecond,
				Ratio: ratio,
			})
		}
	}
	return regs
}
