// Package benchtest holds the shared testbed helpers benchmarks build
// their workloads with. They live beside internal/bench (one bench
// layer, one timing/reporting path) but in their own package so the
// testing dependency never links into production binaries like
// cmd/ehsim-bench.
package benchtest

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/transient"
)

// MustAsm assembles a workload or fails the test/benchmark.
func MustAsm(tb testing.TB, w *programs.Workload) *isa.Program {
	tb.Helper()
	p, err := isa.Assemble(w.Source)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// NewFlatRAM loads a program into a fresh flat memory.
func NewFlatRAM(p *isa.Program) *isa.FlatRAM {
	ram := &isa.FlatRAM{}
	p.LoadInto(ram)
	return ram
}

// NewCore returns a core reset to the program entry with a stack.
func NewCore(ram *isa.FlatRAM, entry uint16) *isa.Core {
	c := &isa.Core{Bus: ram}
	c.Reset(entry)
	c.R[isa.SP] = 0xff00
	return c
}

// SysStop returns a SYS handler that halts on workload completion.
func SysStop(done *bool) func(code uint16, c *isa.Core) {
	return func(code uint16, c *isa.Core) {
		if code == programs.SysDone {
			*done = true
			c.Halted = true
		}
	}
}

// Intermittent is the shared ablation testbed: a sieve workload on the
// standard square intermittent supply (4 ms on, 150 ms dark) with the
// given runtime factory and storage capacitance.
func Intermittent(mk func(d *mcu.Device) mcu.Runtime, c float64) lab.Setup {
	return lab.Setup{
		Workload:    programs.Sieve(3000, programs.DefaultLayout()),
		Params:      mcu.DefaultParams(),
		MakeRuntime: mk,
		VSource:     &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
		C:           c,
		LeakR:       50e3,
		Duration:    3.0,
	}
}

// NewHibernus adapts transient.NewHibernus to the Intermittent testbed's
// factory shape at the given margin.
func NewHibernus(c, margin float64) func(d *mcu.Device) mcu.Runtime {
	return func(d *mcu.Device) mcu.Runtime {
		return transient.NewHibernus(d, c, margin, 0.35)
	}
}
