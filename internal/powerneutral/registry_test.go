package powerneutral

import (
	"strings"
	"testing"

	"repro/internal/registry"
	"repro/internal/transient"
)

func TestGovernorRegistryBuildsEveryPolicy(t *testing.T) {
	names := GovernorNames()
	if len(names) == 0 {
		t.Fatal("no registered governors")
	}
	for _, n := range names {
		g, err := BuildGovernor(n, nil)
		if err != nil {
			t.Errorf("BuildGovernor(%q): %v", n, err)
			continue
		}
		if g.VTarget != 3.0 || g.Period != 2e-3 {
			t.Errorf("BuildGovernor(%q) defaults drifted: %+v", n, g)
		}
	}
}

func TestGovernorRegistryParamsAndPolicy(t *testing.T) {
	g, err := BuildGovernor("proportional", registry.Params{"vtarget": 2.5, "period": 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Policy != Proportional || g.VTarget != 2.5 || g.Period != 1e-3 {
		t.Errorf("governor params not applied: %+v", g)
	}
}

func TestGovernorRegistryErrors(t *testing.T) {
	if _, err := BuildGovernor("hillclimber", nil); err == nil ||
		!strings.Contains(err.Error(), "unknown governor") {
		t.Errorf("unknown name: got %v", err)
	}
	if _, err := BuildGovernor("hillclimb", registry.Params{"target": 3}); err == nil ||
		!strings.Contains(err.Error(), `"target"`) {
		t.Errorf("unknown param: got %v", err)
	}
}

// TestHibernusPNRegisteredCrossPackage pins the open-registry contract:
// importing powerneutral extends the transient runtime namespace.
func TestHibernusPNRegisteredCrossPackage(t *testing.T) {
	e, err := transient.LookupRuntime("hibernus-pn")
	if err != nil {
		t.Fatalf("hibernus-pn not registered: %v", err)
	}
	if e.UnifiedNV {
		t.Error("hibernus-pn should use the split-memory device")
	}
	mk, _, err := transient.RuntimeFactory("hibernus-pn", 330e-6, registry.Params{"vtarget": 2.8})
	if err != nil {
		t.Fatal(err)
	}
	if mk == nil {
		t.Fatal("nil factory")
	}
}
