package powerneutral

import (
	"math"
	"testing"

	"repro/internal/bench/benchtest"
	"repro/internal/circuit"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/transient"
)

// governedSetup: a 20 Hz half-wave rectified lab supply (the signal-
// generator regime hibernus was validated on) sized so the mean harvest
// (~2 mA at 3 V) sits between the MCU's 8 MHz and 16 MHz draw, a 470 µF
// rail, and a governor holding V_CC at 3.0 V.
func governedSetup(policy Policy) (lab.Setup, *Governor, *Tracker) {
	gov := NewGovernor(3.0)
	gov.Policy = policy
	gov.Hysteresis = 0.25
	tr := NewTracker()
	gen := &source.SignalGenerator{Amplitude: 4.5, Frequency: 20, Rs: 100}
	s := lab.Setup{
		Workload: programs.FFT(64, programs.DefaultLayout()),
		Params:   mcu.DefaultParams(),
		VSource:  source.HalfWave(gen, 0.2),
		C:        470e-6,
		V0:       3.0,
		Duration: 3.0,
	}
	s.OnTick = func(t float64, d *mcu.Device, rail *circuit.Rail) {
		gov.Act(t, d, rail.V())
		tr.Observe(rail, rail.V(), s.Dt)
	}
	s.Dt = 5e-6
	return s, gov, tr
}

func TestGovernorHoldsVoltageBand(t *testing.T) {
	s, gov, _ := governedSetup(HillClimb)
	inBand, total := 0, 0
	s.OnTick = func(tm float64, d *mcu.Device, rail *circuit.Rail) {
		gov.Act(tm, d, rail.V())
		if tm > 0.5 { // after settling
			total++
			if v := rail.V(); v > 2.4 && v < 3.8 {
				inBand++
			}
		}
	}
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BrownOuts != 0 {
		t.Errorf("governed system browned out %d times", res.Stats.BrownOuts)
	}
	if frac := float64(inBand) / float64(total); frac < 0.9 {
		t.Errorf("V_CC in band only %.0f%% of the time", frac*100)
	}
	if gov.UpSteps == 0 || gov.DownSteps == 0 {
		t.Errorf("governor never modulated both ways: up=%d down=%d", gov.UpSteps, gov.DownSteps)
	}
	if res.Completions == 0 {
		t.Error("governed workload made no progress")
	}
}

func TestGovernorStabilisesVoltageVsStatic(t *testing.T) {
	// Power neutrality's operational definition: V_CC stays flat. A
	// static low frequency wastes harvest (V_CC wanders up toward the
	// source peak); a static high frequency overdraws (brown-outs). The
	// governed run avoids both.
	type outcome struct {
		stats     TrackingStats
		brownOuts int
		harvested float64
		done      int
	}
	// Three independent 3-second runs — governed, static-low, static-high —
	// fan out over the sweep engine.
	variants := []struct {
		governed  bool
		staticIdx int
	}{
		{true, 0},
		{false, 0}, // 1 MHz: underdraws, wastes harvest
		{false, 5}, // 24 MHz: overdraws, rides near collapse
	}
	outs, err := sweep.Map(nil, len(variants), func(c sweep.Case) (outcome, error) {
		v := variants[c.Index]
		s, gov, tr := governedSetup(HillClimb)
		if !v.governed {
			s.Params.FreqIndex = v.staticIdx
			s.OnTick = func(tm float64, d *mcu.Device, rail *circuit.Rail) {
				tr.Observe(rail, rail.V(), s.Dt)
			}
		}
		_ = gov
		res, err := lab.Run(s)
		if err != nil {
			return outcome{}, err
		}
		return outcome{stats: tr.Stats(), brownOuts: res.Stats.BrownOuts,
			harvested: res.HarvestedJ, done: res.Completions}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gv, low, high := outs[0], outs[1], outs[2]
	if gv.brownOuts != 0 {
		t.Errorf("governed run browned out %d times", gv.brownOuts)
	}
	// Static-high equilibrium sits far below the target band (the source
	// only balances its draw at a sagged voltage).
	if high.stats.VMin >= 2.4 {
		t.Errorf("static 24 MHz V_CC floor %.2f should sag below the band", high.stats.VMin)
	}
	// Static-low rails near the open-circuit peak, throttling the source:
	// it harvests less in total and completes less work.
	if gv.stats.VMax >= low.stats.VMax {
		t.Errorf("governed V_CC peak %.2f should stay below static-1MHz peak %.2f (wasted harvest)",
			gv.stats.VMax, low.stats.VMax)
	}
	if gv.harvested < 1.5*low.harvested {
		t.Errorf("governed harvest %.3g J should exceed static-1MHz %.3g J by ≥1.5×",
			gv.harvested, low.harvested)
	}
	if gv.done <= low.done {
		t.Errorf("governed completions (%d) should exceed static-1MHz (%d)", gv.done, low.done)
	}
}

func TestProportionalPolicyAlsoHolds(t *testing.T) {
	s, gov, tr := governedSetup(Proportional)
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BrownOuts != 0 {
		t.Errorf("proportional policy browned out %d times", res.Stats.BrownOuts)
	}
	st := tr.Stats()
	if st.RelativeError() > 1.0 {
		t.Errorf("proportional tracking error %.3f too high", st.RelativeError())
	}
	if gov.Decisions == 0 {
		t.Error("proportional governor never acted")
	}
}

// fig8Setup: the paper's Fig. 8 regime — a micro wind turbine gust,
// half-wave rectified, driving the MCU through a 330 µF rail. The static
// comparison frequency (16 MHz) deliberately overdraws the mean harvest,
// as a fixed operating point generically does ("likely to either waste
// power or draw too much").
func fig8Setup(mk func(d *mcu.Device) mcu.Runtime) lab.Setup {
	turbine := &source.WindTurbine{
		PeakVoltage: 4.5,
		ACFrequency: 8,
		GustStart:   0.3,
		GustRise:    0.5,
		GustHold:    2.2,
		GustFall:    0.8,
		Rs:          150,
	}
	p := mcu.DefaultParams()
	p.FreqIndex = 4 // 16 MHz static for the plain-hibernus baseline
	return lab.Setup{
		Workload:    programs.FFT(64, programs.DefaultLayout()),
		Params:      p,
		MakeRuntime: mk,
		VSource:     source.HalfWave(turbine, 0.2),
		C:           330e-6,
		Duration:    5.0,
	}
}

// longestActiveStretch runs a fig8 setup and reports the longest
// continuous stretch of non-interrupted operation (device neither off nor
// hibernating) together with the run result.
func longestActiveStretch(t *testing.T, mk func(d *mcu.Device) mcu.Runtime) (float64, lab.Result) {
	t.Helper()
	s := fig8Setup(mk)
	var longest, cur, last float64
	s.OnTick = func(tm float64, d *mcu.Device, rail *circuit.Rail) {
		dt := tm - last
		last = tm
		switch d.Mode() {
		case mcu.ModeActive, mcu.ModeSaving, mcu.ModeRestoring:
			cur += dt
			if cur > longest {
				longest = cur
			}
		default:
			cur = 0
		}
	}
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	return longest, res
}

func TestHibernusPNAvoidsInterruptionOverheads(t *testing.T) {
	// Paper Fig. 8: DFS modulation lets the PN system ride the supply
	// without V_CC being interrupted — fewer snapshots and a much longer
	// uninterrupted operating window than static-frequency hibernus.
	plainStretch, plain := longestActiveStretch(t, func(d *mcu.Device) mcu.Runtime {
		return transient.NewHibernus(d, 330e-6, 1.1, 0.35)
	})
	var pnH *HibernusPN
	pnStretch, pn := longestActiveStretch(t, func(d *mcu.Device) mcu.Runtime {
		pnH = NewHibernusPN(d, 330e-6, 1.1, 0.35, 3.0)
		return pnH
	})
	if pn.WrongResults != 0 || plain.WrongResults != 0 {
		t.Fatalf("wrong results: pn=%d plain=%d", pn.WrongResults, plain.WrongResults)
	}
	if pn.Stats.SavesStarted >= plain.Stats.SavesStarted {
		t.Errorf("hibernus-PN snapshots (%d) should be below plain hibernus (%d)",
			pn.Stats.SavesStarted, plain.Stats.SavesStarted)
	}
	if pnStretch < 2*plainStretch {
		t.Errorf("PN uninterrupted window %.2fs should dwarf plain hibernus %.2fs",
			pnStretch, plainStretch)
	}
	if pn.Completions < 50 {
		t.Errorf("PN completions = %d, want ≥50 across the gust", pn.Completions)
	}
	if pnH.Gov.Decisions == 0 {
		t.Error("PN governor never acted")
	}
}

func TestHibernusPNSurvivesGustTrough(t *testing.T) {
	res, err := lab.Run(fig8Setup(func(d *mcu.Device) mcu.Runtime {
		return NewHibernusPN(d, 330e-6, 1.1, 0.35, 3.0)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions < 5 {
		t.Errorf("completions = %d, want ≥5 during the gust", res.Completions)
	}
	if res.RuntimeErr != nil {
		t.Errorf("guest fault: %v", res.RuntimeErr)
	}
}

func TestHibernusPNOptsOutOfSleepFastForward(t *testing.T) {
	// Embedding Hibernus would promote its WakeThreshold and silently make
	// the PN runtime eligible for sleep fast-forwarding — but the governor
	// does bookkeeping on every tick, so PN must shadow the method with an
	// always-ineligible threshold.
	var pn HibernusPN
	if !math.IsInf(mcu.SleepWaker(&pn).WakeThreshold(), -1) {
		t.Errorf("HibernusPN.WakeThreshold() = %v, want -Inf (opt-out)",
			pn.WakeThreshold())
	}
}

func TestTrackerStats(t *testing.T) {
	tr := NewTracker()
	if !math.IsInf(tr.Stats().RelativeError(), 1) {
		t.Error("empty tracker should report infinite error")
	}
	cap := circuit.NewCapacitor(1e-6, 3)
	rail := circuit.NewRail(cap)
	rail.VSource = &source.ConstantVoltage{V: 3.3, Rs: 100}
	rail.AddLoad(&circuit.ResistiveLoad{R: 1000})
	tr.Window = 1e-4
	for i := 0; i < 1000; i++ {
		rail.Step(1e-5)
		tr.Observe(rail, rail.V(), 1e-5)
	}
	st := tr.Stats()
	if st.Windows != 100 {
		t.Errorf("windows = %d, want 100", st.Windows)
	}
	if st.VMin > st.VMax {
		t.Error("voltage range inverted")
	}
	if st.MeanHarvestJ <= 0 {
		t.Error("no harvest recorded")
	}
	if st.VRange() < 0 {
		t.Error("negative V range")
	}
}

func TestGovernorIgnoresSleepingDevice(t *testing.T) {
	// The governor must not actuate DFS while the device is saving or
	// sleeping (consumption there is not frequency-bound).
	s, gov, _ := governedSetup(HillClimb)
	s.MakeRuntime = func(d *mcu.Device) mcu.Runtime {
		return transient.NewHibernus(d, 470e-6, 1.1, 0.35)
	}
	// Kill the supply after 1 s: hibernus sleeps, governor must go quiet.
	gen := &source.SignalGenerator{Amplitude: 4.5, Frequency: 20, Rs: 100}
	s.VSource = &source.GatedVoltage{
		Source:  source.HalfWave(gen, 0.2),
		Windows: [][2]float64{{0, 1.0}},
	}
	decisionsLate := 0
	s.OnTick = func(tm float64, d *mcu.Device, rail *circuit.Rail) {
		before := gov.Decisions
		gov.Act(tm, d, rail.V())
		if tm > 1.5 && gov.Decisions > before && d.Mode() != mcu.ModeActive {
			decisionsLate++
		}
	}
	if _, err := lab.Run(s); err != nil {
		t.Fatal(err)
	}
	if decisionsLate != 0 {
		t.Errorf("governor made %d decisions on a non-active device", decisionsLate)
	}
}

// Regression: the Proportional policy used to compare the raw
// (unclamped) target index against the current level, so a device
// already pinned at a rail extreme counted an Up/DownStep on every
// decision even though SetFreqIndex clamped the actuation to a no-op.
func TestProportionalClampsTelemetryAtRailExtremes(t *testing.T) {
	w := programs.FFT(64, programs.DefaultLayout())
	prog := benchtest.MustAsm(t, w)
	top := len(mcu.DefaultParams().FreqLevels) - 1

	// High rail, device already at the top level: the raw index lands
	// beyond the table, the clamped actuation is a no-op, and the
	// telemetry must not count it as an up-step.
	p := mcu.DefaultParams()
	p.FreqIndex = top
	d := mcu.New(p, prog)
	d.ColdStart()
	gov := NewGovernor(3.0)
	gov.Policy = Proportional
	gov.Act(0, d, 10) // first call arms the period clock
	gov.Act(1, d, 10) // far above the band
	if gov.UpSteps != 0 {
		t.Errorf("clamped no-op at the top rail counted UpSteps=%d, want 0", gov.UpSteps)
	}
	if d.FreqIndex() != top {
		t.Fatalf("device moved off the top level: %d", d.FreqIndex())
	}

	// Low rail, device already at the bottom level: same, downward.
	p = mcu.DefaultParams()
	p.FreqIndex = 0
	d = mcu.New(p, prog)
	d.ColdStart()
	gov = NewGovernor(3.0)
	gov.Policy = Proportional
	gov.Act(0, d, 0)
	gov.Act(1, d, 0) // far below the band
	if gov.DownSteps != 0 {
		t.Errorf("clamped no-op at the bottom rail counted DownSteps=%d, want 0", gov.DownSteps)
	}
	if d.FreqIndex() != 0 {
		t.Fatalf("device moved off the bottom level: %d", d.FreqIndex())
	}

	// Sanity: a genuine move still counts exactly once.
	gov.Act(2, d, 10)
	if gov.UpSteps != 1 || d.FreqIndex() != top {
		t.Errorf("real move: UpSteps=%d freq=%d, want 1 and %d", gov.UpSteps, d.FreqIndex(), top)
	}
}
