// Registries for the power-neutral layer: DFS governors by policy name,
// plus registration of the combined hibernus-PN runtime into the shared
// transient runtime namespace — the cross-package half of the registry
// contract (the runtime table is open; policy packages extend it).
package powerneutral

import (
	"repro/internal/mcu"
	"repro/internal/registry"
	"repro/internal/transient"
)

// GovernorEntry describes one registered governor policy.
type GovernorEntry struct {
	Desc   string
	Params []registry.ParamDoc
	Make   func(p registry.Params) *Governor
}

var governors = registry.New[GovernorEntry]("governor")

// RegisterGovernor adds a governor policy under name (panics on
// duplicates).
func RegisterGovernor(name string, e GovernorEntry) { governors.Register(name, e) }

// GovernorNames returns every registered governor name, sorted.
func GovernorNames() []string { return governors.Names() }

// LookupGovernor returns the entry for name, or an error listing the
// known names.
func LookupGovernor(name string) (GovernorEntry, error) { return governors.Get(name) }

// BuildGovernor constructs the named governor, validating params against
// the entry's docs. Governors are stateful; build a fresh one per run.
func BuildGovernor(name string, p registry.Params) (*Governor, error) {
	e, err := governors.Get(name)
	if err != nil {
		return nil, err
	}
	full, err := registry.Resolve("governor", name, e.Params, p)
	if err != nil {
		return nil, err
	}
	return e.Make(full), nil
}

// governorParams is the tunable set both policies share.
var governorParams = []registry.ParamDoc{
	{Key: "vtarget", Default: 3.0, Desc: "V_CC setpoint (V)"},
	{Key: "hysteresis", Default: 0.08, Desc: "dead-band half-width (V)"},
	{Key: "period", Default: 2e-3, Desc: "control period (s)"},
}

// makeGovernor builds a governor with the shared tunables and the given
// policy.
func makeGovernor(p registry.Params, policy Policy) *Governor {
	g := NewGovernor(p["vtarget"])
	g.Hysteresis = p["hysteresis"]
	g.Period = p["period"]
	g.Policy = policy
	return g
}

func init() {
	RegisterGovernor("hillclimb", GovernorEntry{
		Desc:   "step DFS up/down when V_CC leaves the hysteresis band",
		Params: governorParams,
		Make:   func(p registry.Params) *Governor { return makeGovernor(p, HillClimb) },
	})
	RegisterGovernor("proportional", GovernorEntry{
		Desc:   "map the V_CC error directly onto the DFS range",
		Params: governorParams,
		Make:   func(p registry.Params) *Governor { return makeGovernor(p, Proportional) },
	})

	transient.RegisterRuntime("hibernus-pn", transient.RuntimeEntry{
		Desc: "hibernus plus a power-neutral DFS governor (the Fig. 8 system)",
		Params: []registry.ParamDoc{
			{Key: "margin", Default: 1.1, Desc: "guard margin on the eq. (4) V_H"},
			{Key: "vrheadroom", Default: 0.35, Desc: "V_R − V_H headroom (V)"},
			{Key: "vtarget", Default: 3.0, Desc: "governor V_CC setpoint (V)"},
		},
		Make: func(d *mcu.Device, c float64, p registry.Params) mcu.Runtime {
			return NewHibernusPN(d, c, p["margin"], p["vrheadroom"], p["vtarget"])
		},
	})
}
