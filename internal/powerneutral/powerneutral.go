// Package powerneutral implements the paper's §II.C: controllers that keep
// a system power-neutral, i.e. satisfying eq. (3), P_h(t) = P_c(t), with
// only parasitic/decoupling storage smoothing the residual. Because the
// load cannot change what the harvester supplies, the controller modulates
// the load's own consumption — here through the MCU's DFS hook — to hold
// V_CC at a setpoint: a constant V_CC means the decoupling capacitance is
// neither charging nor discharging, which is precisely power neutrality.
//
// Two governor policies are provided (an ablation the DESIGN calls out):
// a hill-climbing stepper and a proportional mapper. HibernusPN combines a
// governor with the hibernus runtime, reproducing the paper's Fig. 8
// system: DFS absorbs supply variation while it can, hibernation catches
// the troughs DFS cannot ride out.
package powerneutral

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/mcu"
	"repro/internal/transient"
)

// Policy selects the governor's decision rule.
type Policy int

// Governor policies.
const (
	// HillClimb steps the DFS level up/down by one when V_CC leaves the
	// hysteresis band around the target — slow but smooth and model-free.
	HillClimb Policy = iota
	// Proportional maps the voltage error directly onto the DFS range —
	// faster response, larger frequency swings.
	Proportional
)

// Governor holds V_CC at VTarget by modulating the device's DFS level.
// Call Act from the simulation loop (e.g. lab.Setup.OnTick).
type Governor struct {
	VTarget    float64
	Hysteresis float64 // half-width of the dead band
	Period     float64 // control period, seconds
	Policy     Policy

	// Telemetry.
	Decisions int
	UpSteps   int
	DownSteps int

	lastAct float64
	started bool
}

// NewGovernor returns a hill-climbing governor with a 2 ms control period.
func NewGovernor(vTarget float64) *Governor {
	return &Governor{
		VTarget:    vTarget,
		Hysteresis: 0.08,
		Period:     2e-3,
		Policy:     HillClimb,
	}
}

// Act runs one control decision if a full period has elapsed. It only
// actuates while the device is actively executing — sleeping or saving
// devices are left alone (their consumption is not frequency-bound).
func (g *Governor) Act(t float64, d *mcu.Device, v float64) {
	if !g.started {
		g.started = true
		g.lastAct = t
		return
	}
	if t-g.lastAct < g.Period {
		return
	}
	g.lastAct = t
	if d.Mode() != mcu.ModeActive {
		return
	}
	g.Decisions++
	switch g.Policy {
	case HillClimb:
		switch {
		case v > g.VTarget+g.Hysteresis:
			// Surplus power is charging the rail: run faster.
			d.SetFreqIndex(d.FreqIndex() + 1)
			g.UpSteps++
		case v < g.VTarget-g.Hysteresis:
			// Deficit: slow down before the rail collapses.
			d.SetFreqIndex(d.FreqIndex() - 1)
			g.DownSteps++
		}
	case Proportional:
		span := 0.6 // volts of error that sweeps the full DFS range
		frac := (v - (g.VTarget - span/2)) / span
		idx := int(math.Round(frac * float64(len(d.P.FreqLevels)-1)))
		// Clamp before comparing with the current level: beyond the rail
		// extremes SetFreqIndex would clamp anyway, and counting those
		// no-op decisions as Up/DownSteps inflates the telemetry.
		if idx < 0 {
			idx = 0
		}
		if max := len(d.P.FreqLevels) - 1; idx > max {
			idx = max
		}
		cur := d.FreqIndex()
		if idx > cur {
			g.UpSteps++
		} else if idx < cur {
			g.DownSteps++
		}
		d.SetFreqIndex(idx)
	}
}

// HibernusPN is the paper's §III combined system (the "hibernus-PN" point
// of Fig. 2): transient computing via hibernus plus power-neutral DFS.
// While the supply can sustain any DFS level, the governor rides it and
// V_CC never crosses V_H — avoiding snapshot/restore overhead entirely
// (the paper's 0.4–1.1 s window in Fig. 8). When even the lowest level is
// too expensive, the inherited hibernus machinery hibernates as usual.
type HibernusPN struct {
	transient.Hibernus
	Gov *Governor
}

// NewHibernusPN builds the combined runtime: hibernus thresholds from
// eq. (4) plus a governor targeting vTarget.
func NewHibernusPN(d *mcu.Device, c, margin, vrHeadroom, vTarget float64) *HibernusPN {
	h := transient.NewHibernus(d, c, margin, vrHeadroom)
	return &HibernusPN{Hibernus: *h, Gov: NewGovernor(vTarget)}
}

// Name implements mcu.Runtime.
func (p *HibernusPN) Name() string { return "hibernus-pn" }

// OnTick implements mcu.Runtime: govern first (so consumption tracks the
// supply), then let hibernus handle thresholds.
func (p *HibernusPN) OnTick(d *mcu.Device, v float64) {
	p.Gov.Act(d.Now(), d, v)
	p.Hibernus.OnTick(d, v)
}

// WakeThreshold shadows the promoted hibernus implementation to opt OUT of
// mcu.SleepWaker fast-forwarding: unlike plain hibernus, HibernusPN's
// OnTick is not a no-op while the device sleeps — the governor's control
// clock (Act's period bookkeeping) advances on every tick, so skipping
// sleep ticks would shift post-wake DFS decisions. Returning -Inf tells
// the lab there is no voltage below which ticks can be elided.
func (p *HibernusPN) WakeThreshold() float64 { return math.Inf(-1) }

// ActiveSettled shadows the promoted hibernus implementation to opt OUT
// of mcu.ActiveThresholds adaptive stepping for the same reason: the
// governor acts on every active tick (not just at V_H crossings), so no
// active stretch is ever skippable. Never settled means never hopped.
func (p *HibernusPN) ActiveSettled(float64) bool { return false }

// TrackingStats measures how well eq. (3) held over a run. Because an
// instantaneous P_h(t) = P_c(t) is unattainable for pulsed sources (the
// paper itself relaxes T to "a sufficiently small period"), the metric is
// windowed: harvested and consumed energy are compared over fixed windows
// (defaulting to one AC period) and the mismatch normalised by the energy
// harvested. V_CC excursion is reported alongside, since a flat V_CC is
// the operational definition of power neutrality.
type TrackingStats struct {
	Windows      int
	MeanAbsErrJ  float64 // mean |E_h − E_c| per window
	MeanHarvestJ float64 // mean E_h per window
	VMin, VMax   float64
}

// RelativeError returns mean|E_h−E_c| / mean(E_h) over the observation
// windows (0 = perfectly power-neutral at the window timescale).
func (ts TrackingStats) RelativeError() float64 {
	if ts.MeanHarvestJ <= 0 {
		return math.Inf(1)
	}
	return ts.MeanAbsErrJ / ts.MeanHarvestJ
}

// VRange returns the observed V_CC excursion.
func (ts TrackingStats) VRange() float64 { return ts.VMax - ts.VMin }

// Tracker accumulates TrackingStats from rail observations.
type Tracker struct {
	Window float64 // window length, seconds

	curEh, curEc, curT float64
	sumErr, sumEh      float64
	windows            int
	vMin, vMax         float64
}

// NewTracker returns a tracker with a 50 ms comparison window (one 20 Hz
// supply period).
func NewTracker() *Tracker {
	return &Tracker{Window: 0.05, vMin: math.Inf(1), vMax: math.Inf(-1)}
}

// Observe records one simulation step of length dt.
func (tr *Tracker) Observe(rail *circuit.Rail, v, dt float64) {
	tr.curEh += rail.LastSourceI * v * dt
	tr.curEc += rail.LastLoadI * v * dt
	tr.curT += dt
	tr.vMin = math.Min(tr.vMin, v)
	tr.vMax = math.Max(tr.vMax, v)
	if tr.curT >= tr.Window {
		tr.sumErr += math.Abs(tr.curEh - tr.curEc)
		tr.sumEh += tr.curEh
		tr.windows++
		tr.curEh, tr.curEc, tr.curT = 0, 0, 0
	}
}

// Stats returns the accumulated statistics over completed windows.
func (tr *Tracker) Stats() TrackingStats {
	ts := TrackingStats{Windows: tr.windows, VMin: tr.vMin, VMax: tr.vMax}
	if tr.windows > 0 {
		ts.MeanAbsErrJ = tr.sumErr / float64(tr.windows)
		ts.MeanHarvestJ = tr.sumEh / float64(tr.windows)
	}
	return ts
}
