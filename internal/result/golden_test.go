package result

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// update regenerates the golden corpus from the current engine:
//
//	go test ./internal/result -run TestGolden -update
//
// Run it only after verifying an intentional output change; the corpus is
// the conformance contract every optimization PR is pinned against.
var update = flag.Bool("update", false, "rewrite testdata/golden from current output")

// goldenDir is the shared corpus at the repository root: expected
// `ehsim -scenario` output for every curated spec. cmd/ehsim's golden
// test compares the CLI against the same files, so the two layers cannot
// drift from each other or from the corpus.
const goldenDir = "../../testdata/golden"

const scenarioDir = "../../examples/scenarios"

// goldenSpecs returns the curated spec paths, sorted.
func goldenSpecs(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(scenarioDir, "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no scenario specs found: %v", err)
	}
	return paths
}

// TestGoldenReports byte-compares RunSpec's rendered report for every
// curated spec against the committed golden corpus.
func TestGoldenReports(t *testing.T) {
	for _, path := range goldenSpecs(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			sp, err := scenario.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunSpec(sp, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, filepath.Join(goldenDir, name+".txt"), []byte(rep.Text))
		})
	}
}

// TestGoldenTrace byte-compares pinned trace captures — recording must
// not perturb the simulation, and the serialised CSV (spec-hash header
// included) must be stable. The set covers the three run shapes: a
// single lab case (fig7), a lab sweep where the first grid case is the
// one traced (fram-vs-sram), and a duty-cycle model run (eneutral), so
// interpolated-sample cadence is byte-pinned on all of them.
func TestGoldenTrace(t *testing.T) {
	for _, name := range []string{
		"fig7-rectified-sine-hibernus",
		"transient-fram-vs-sram",
		"eneutral-duty-cycle",
	} {
		t.Run(name, func(t *testing.T) {
			sp, err := scenario.Load(filepath.Join(scenarioDir, name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunSpec(sp, Options{Workers: 1, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.TraceCSV) == 0 {
				t.Fatal("no trace captured")
			}
			goldenCompare(t, filepath.Join(goldenDir, name+".trace.csv"), rep.TraceCSV)

			// The summary must be identical with and without the
			// recorder: a trace is a pure observer.
			plain, err := RunSpec(sp, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if plain.Text != rep.Text {
				t.Errorf("attaching a recorder changed the report:\nplain:\n%s\ntraced:\n%s", plain.Text, rep.Text)
			}
		})
	}
}

// goldenCompare asserts got matches the golden file byte-for-byte,
// rewriting the file under -update.
func goldenCompare(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (run with -update after verifying the change is intended)\n--- want\n%s\n--- got\n%s",
			path, want, got)
	}
}
