package result

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

const singleSpec = `{
	"name": "tiny",
	"workload": "fib24",
	"storage": {"c": "10u"},
	"source": {"name": "dc"},
	"duration": 0.002
}`

const sweepSpec = `{
	"name": "tiny-sweep",
	"workload": "fib24",
	"storage": {"c": "10u"},
	"source": {"name": "dc"},
	"duration": 0.002,
	"sweep": [{"param": "c", "values": ["4.7u", "10u"]}]
}`

func parse(t *testing.T, src string) *scenario.Spec {
	t.Helper()
	sp, err := scenario.Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestRunSpecSingle(t *testing.T) {
	sp := parse(t, singleSpec)
	var done, total int
	rep, err := RunSpec(sp, Options{Progress: func(d, n int) { done, total = d, n }})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sweep {
		t.Error("single spec reported as sweep")
	}
	if done != 1 || total != 1 {
		t.Errorf("progress = %d/%d, want 1/1", done, total)
	}
	if !strings.HasPrefix(rep.Text, "scenario tiny: fib24 on dc, runtime=none, C=10µF, 0.002s\n") {
		t.Errorf("title line wrong:\n%s", rep.Text)
	}
	if !strings.Contains(rep.Text, "  completions:        ") {
		t.Errorf("summary missing:\n%s", rep.Text)
	}
	if len(rep.Cases) != 1 || rep.Cases[0].Result.Completions == 0 {
		t.Errorf("cases = %+v", rep.Cases)
	}
	if rep.SimSeconds != 0.002 {
		t.Errorf("SimSeconds = %g", rep.SimSeconds)
	}
	if !strings.HasPrefix(rep.SpecHash, "sha256:") {
		t.Errorf("SpecHash = %q", rep.SpecHash)
	}
	if rep.TraceCSV != nil {
		t.Error("trace captured without Options.Trace")
	}
}

func TestRunSpecIsDeterministic(t *testing.T) {
	// The cache serves one job's report to later identical submissions,
	// which is only sound if re-running the spec reproduces it exactly.
	a, err := RunSpec(parse(t, sweepSpec), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpec(parse(t, sweepSpec), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Text != b.Text {
		t.Errorf("reports differ across runs/worker counts:\n%s\n%s", a.Text, b.Text)
	}
	if a.SpecHash != b.SpecHash {
		t.Errorf("hashes differ: %s vs %s", a.SpecHash, b.SpecHash)
	}
}

func TestRunSpecSweep(t *testing.T) {
	sp := parse(t, sweepSpec)
	var last int
	rep, err := RunSpec(sp, Options{Progress: func(d, n int) { last = n }})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sweep || len(rep.Cases) != 2 {
		t.Fatalf("sweep=%v cases=%d", rep.Sweep, len(rep.Cases))
	}
	if last != 2 {
		t.Errorf("progress total = %d, want 2", last)
	}
	for _, frag := range []string{"scenario tiny-sweep: sweep over c, 2 cases\n", "c=4.7µF", "c=10µF"} {
		if !strings.Contains(rep.Text, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep.Text)
		}
	}
	if rep.SimSeconds != 0.004 {
		t.Errorf("SimSeconds = %g, want 0.004", rep.SimSeconds)
	}
}

func TestRunSpecTraceCarriesSpecHash(t *testing.T) {
	sp := parse(t, singleSpec)
	rep, err := RunSpec(sp, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	head := "# spec-hash: " + rep.SpecHash + "\n"
	if !strings.HasPrefix(string(rep.TraceCSV), head) {
		t.Errorf("trace header wrong:\n%.120s", rep.TraceCSV)
	}
	if !strings.Contains(string(rep.TraceCSV), "t,vcc(V)") {
		t.Errorf("trace CSV header missing:\n%.200s", rep.TraceCSV)
	}
}

func TestRunSpecCancelBeforeStart(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	if _, err := RunSpec(parse(t, singleSpec), Options{Cancel: cancel}); !errors.Is(err, sweep.ErrCanceled) {
		t.Errorf("single: err = %v, want ErrCanceled", err)
	}
	if _, err := RunSpec(parse(t, sweepSpec), Options{Cancel: cancel}); !errors.Is(err, sweep.ErrCanceled) {
		t.Errorf("sweep: err = %v, want ErrCanceled", err)
	}
}

// Analytic-model specs, one per registered non-lab family. Cheap enough
// to run in every test.
const mpsocSpec = `{
	"name": "tiny-mpsoc",
	"model": "mpsoc",
	"source": {"name": "const-power", "params": {"p": 3}},
	"duration": 600,
	"dt": 1
}`

const taskburstSpec = `{
	"name": "tiny-taskburst",
	"model": "taskburst",
	"storage": {"c": "6m"},
	"source": {"name": "const-power", "params": {"p": "2m"}},
	"params": {"taskenergy": "6m"},
	"duration": 30,
	"dt": "1m"
}`

const eneutralSpec = `{
	"name": "tiny-eneutral",
	"model": "eneutral",
	"source": {"name": "const-power", "params": {"p": "1m"}},
	"params": {"pactive": "5m", "window": 900},
	"duration": 3600,
	"dt": 1
}`

// TestRunSpecModels drives every analytic model through the same RunSpec
// path the CLI and daemon share: a non-empty deterministic report, a
// captured trace with the spec-hash header, and prompt cancellation.
func TestRunSpecModels(t *testing.T) {
	cases := []struct {
		name, spec, firstLine, traceCol string
	}{
		{"mpsoc", mpsocSpec, "scenario tiny-mpsoc: mpsoc power-neutral governor on const-power, 600s", "budget(W)"},
		{"taskburst", taskburstSpec, "scenario tiny-taskburst: task-burst charge-fire on const-power, C=6mF, 30s", "vcap(V)"},
		{"eneutral", eneutralSpec, "scenario tiny-eneutral: energy-neutral duty cycling on const-power, 3600s", "soc"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := parse(t, tc.spec)
			var done, total int
			rep, err := RunSpec(sp, Options{Trace: true, Progress: func(d, n int) { done, total = d, n }})
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(rep.Text, tc.firstLine+"\n") {
				t.Errorf("report starts with %q, want %q", strings.SplitN(rep.Text, "\n", 2)[0], tc.firstLine)
			}
			if done != 1 || total != 1 {
				t.Errorf("progress = %d/%d, want 1/1", done, total)
			}
			if len(rep.Cases) != 1 || rep.Cases[0].Name != sp.Name {
				t.Errorf("cases = %+v", rep.Cases)
			}
			if rep.SimSeconds != float64(sp.Duration) {
				t.Errorf("SimSeconds = %g, want %g", rep.SimSeconds, float64(sp.Duration))
			}
			wantHdr := "# spec-hash: " + rep.SpecHash + "\n"
			if !strings.HasPrefix(string(rep.TraceCSV), wantHdr) {
				t.Errorf("trace missing spec-hash header:\n%.80s", rep.TraceCSV)
			}
			if !strings.Contains(string(rep.TraceCSV), tc.traceCol) {
				t.Errorf("trace missing %q column:\n%.200s", tc.traceCol, rep.TraceCSV)
			}

			// Deterministic: an identical second run renders identical bytes.
			rep2, err := RunSpec(parse(t, tc.spec), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep2.Text != rep.Text {
				t.Errorf("model output not deterministic:\n%s\n---\n%s", rep.Text, rep2.Text)
			}

			// A pre-closed cancel channel stops the run before it starts.
			cancel := make(chan struct{})
			close(cancel)
			if _, err := RunSpec(parse(t, tc.spec), Options{Cancel: cancel}); !errors.Is(err, sweep.ErrCanceled) {
				t.Errorf("canceled run: got %v, want ErrCanceled", err)
			}
		})
	}
}

// TestRunSpecModelSweep pins the analytic models' sweep path: a grid
// over a model param renders the generic comparison table.
func TestRunSpecModelSweep(t *testing.T) {
	sp := parse(t, `{
		"name": "burst-sizes",
		"model": "taskburst",
		"storage": {"c": "6m"},
		"source": {"name": "const-power", "params": {"p": "2m"}},
		"duration": 30,
		"dt": "1m",
		"sweep": [{"param": "model.taskenergy", "values": ["1m", "6m"]}]
	}`)
	var last int
	rep, err := RunSpec(sp, Options{Progress: func(d, n int) { last = n }})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sweep || len(rep.Cases) != 2 || last != 2 {
		t.Fatalf("sweep shape: sweep=%v cases=%d total=%d", rep.Sweep, len(rep.Cases), last)
	}
	if !strings.HasPrefix(rep.Text, "scenario burst-sizes: sweep over model.taskenergy, 2 cases\n") {
		t.Errorf("sweep header wrong:\n%s", rep.Text)
	}
	for _, frag := range []string{"case", "events", "rate", "v-fire", "first-fire"} {
		if !strings.Contains(rep.Text, frag) {
			t.Errorf("sweep table missing %q:\n%s", frag, rep.Text)
		}
	}
	if rep.SimSeconds != 60 {
		t.Errorf("SimSeconds = %g, want 60 (2 cases × 30s)", rep.SimSeconds)
	}
	// The smaller task fires more often: the table rows must differ.
	lines := strings.Split(strings.TrimRight(rep.Text, "\n"), "\n")
	if len(lines) != 4 || lines[2] == lines[3] {
		t.Errorf("sweep rows should differ:\n%s", rep.Text)
	}
}
