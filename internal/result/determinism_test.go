package result

import (
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

// TestDeterminismAcrossWorkersAndFastForward pins the engine's
// determinism contract on the fig7 single run and the fram-vs-sram
// sweep: the rendered report must be byte-identical across worker counts
// (the sweep engine's index-ordered collection) and with the analytic
// fast-forward on (whose float-level deviations must stay below report
// rendering precision on these scenarios). CI runs this under -race, so
// it also guards the sweep engine's memory discipline.
func TestDeterminismAcrossWorkersAndFastForward(t *testing.T) {
	for _, name := range []string{
		"fig7-rectified-sine-hibernus",
		"transient-fram-vs-sram",
	} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(scenarioDir, name+".json")
			render := func(workers int, ff bool) string {
				t.Helper()
				sp, err := scenario.Load(path)
				if err != nil {
					t.Fatal(err)
				}
				sp.FastForward = ff
				rep, err := RunSpec(sp, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				return rep.Text
			}
			serial := render(1, false)
			if parallel := render(8, false); parallel != serial {
				t.Errorf("workers=8 diverged from workers=1:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
			}
			if ff := render(1, true); ff != serial {
				t.Errorf("fast-forward diverged from full integration:\n--- full\n%s\n--- ff\n%s", serial, ff)
			}
		})
	}
}
