package result

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/scenario"
)

// RunExploration executes a validated exploration spec with a direct
// evaluator: every probe runs through RunSpec, the same execution path
// as `ehsim -scenario`. The service wires its own evaluator (the
// tiered result cache) into explore.Run instead — and because the
// report text is a pure function of the spec and the deterministic
// evaluation stream, both front-ends render byte-identical reports.
func RunExploration(es *explore.Spec, opts Options) (*explore.Report, error) {
	eval := func(sp *scenario.Spec) (explore.Outcome, error) {
		rep, err := RunSpec(sp, Options{Workers: 1, Cancel: opts.Cancel})
		if err != nil {
			return explore.Outcome{}, err
		}
		if len(rep.Cases) != 1 {
			return explore.Outcome{}, fmt.Errorf("result: exploration probe expanded to %d cases, want 1", len(rep.Cases))
		}
		return explore.Outcome{Metrics: rep.Cases[0].Metrics, SimSeconds: rep.SimSeconds}, nil
	}
	return explore.Run(es, explore.Options{
		Evaluate: eval,
		Workers:  opts.Workers,
		Progress: opts.Progress,
		Cancel:   opts.Cancel,
	})
}
