package result

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/explore"
)

const explorationDir = "../../examples/explorations"

// explorationSpecs returns the curated exploration spec paths, sorted.
func explorationSpecs(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(explorationDir, "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no exploration specs found: %v", err)
	}
	return paths
}

// TestGoldenExplorations byte-compares RunExploration's rendered report
// for every curated exploration against the committed golden corpus —
// the same conformance pinning the scenario corpus provides, extended
// to the explorer. The service's /v1/explorations endpoint serves the
// same bytes by construction (its evaluator only changes where metrics
// come from, never what the report says).
func TestGoldenExplorations(t *testing.T) {
	for _, path := range explorationSpecs(t) {
		name := strings.TrimSuffix(filepath.Base(path), ".json")
		t.Run(name, func(t *testing.T) {
			es, err := explore.Load(path)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunExploration(es, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, filepath.Join(goldenDir, "exploration-"+name+".txt"), []byte(rep.Text))
		})
	}
}

// TestExplorationDeterministicAcrossWorkers pins the worker-count
// independence the byte-identity contract rests on: the same
// exploration at Workers 1 and 8 must render identical bytes and keep
// the same aggregates. Run under -race in CI, this also shakes out
// data races in the batch evaluation path.
func TestExplorationDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range []string{"fig5-pareto", "eq4-capacitor-topk"} {
		t.Run(name, func(t *testing.T) {
			es, err := explore.Load(filepath.Join(explorationDir, name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			seq, err := RunExploration(es, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := RunExploration(es, Options{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Text != par.Text {
				t.Errorf("report differs across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s", seq.Text, par.Text)
			}
			if len(seq.Aggregates) != len(par.Aggregates) {
				t.Fatalf("aggregate counts differ: %d vs %d", len(seq.Aggregates), len(par.Aggregates))
			}
			for i := range seq.Aggregates {
				a, b := seq.Aggregates[i], par.Aggregates[i]
				if len(a) != len(b) {
					t.Fatalf("aggregate %d sizes differ: %d vs %d", i, len(a), len(b))
				}
				for j := range a {
					if a[j].Case != b[j].Case || a[j].Seq != b[j].Seq {
						t.Errorf("aggregate %d entry %d differs: %+v vs %+v", i, j, a[j], b[j])
					}
				}
			}
		})
	}
}

// TestEq5BisectionConvergence pins the eq. 5 crossover hunt: the
// bisection must land on the FRAM-vs-SRAM break-even on-time within
// tolerance, and do it in no more than half the simulations the
// equivalent dense grid would burn — the exploration subsystem's
// headline acceptance criterion.
func TestEq5BisectionConvergence(t *testing.T) {
	es, err := explore.Load(filepath.Join(explorationDir, "eq5-crossover.json"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunExploration(es, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Crossover
	if c == nil {
		t.Fatal("bisection produced no crossover")
	}
	st := &es.Strategy
	lo, hi, tol := float64(*st.Lo), float64(*st.Hi), float64(*st.Tolerance)
	if c.Hi-c.Lo > tol {
		t.Errorf("final bracket [%g, %g] wider than tolerance %g", c.Lo, c.Hi, tol)
	}
	if c.Value < lo || c.Value > hi {
		t.Errorf("crossover %g escaped the search bracket [%g, %g]", c.Value, lo, hi)
	}
	// The bracket ends must straddle the sign change (or sit on it).
	if c.DeltaLo*c.DeltaHi > 0 {
		t.Errorf("bracket ends do not straddle zero: Δ(lo)=%g, Δ(hi)=%g", c.DeltaLo, c.DeltaHi)
	}
	dense := 2 * (int(math.Floor((hi-lo)/tol)) + 1)
	if rep.Evaluations > dense/2 {
		t.Errorf("bisection used %d evaluations; the dense grid equivalent is %d, budget is half that",
			rep.Evaluations, dense)
	}
}
