// Package result is the shared result-encoding path between the ehsim
// CLI and the ehsimd service: one implementation of "execute a scenario
// spec and render its report", so the two front-ends cannot drift. The
// byte-identity contract — `GET /v1/jobs/{id}/result` returns exactly
// what `ehsim -scenario` prints for the same spec — holds because both
// call RunSpec and serve Report.Text verbatim.
//
// Execution itself lives behind the scenario model registry
// (internal/scenario's Model interface): RunSpec resolves the spec's
// model — lab, mpsoc, taskburst, eneutral — runs it, and wraps the
// rendered report with the spec's content address. Every front-end that
// goes through RunSpec gains new models the moment they register.
//
// The package also re-exports the textual building blocks the CLI's
// legacy flag path shares with lab scenario reports (WriteSummary,
// WriteSweepTable) and owns the trace serialisation that stamps every
// CSV with the spec's content address (WriteTrace).
package result

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/lab"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// EngineVersion names the simulation-and-rendering contract a cached
// report was produced under. The service mixes it into cache keys, so
// bump it whenever lab semantics, registry defaults, model behaviour,
// or report text change in a way that should invalidate previously
// computed results.
const EngineVersion = "1"

// TraceInterval is the sampling interval (simulated seconds) used for
// captured traces, matching the CLI's -trace behaviour.
const TraceInterval = scenario.DefaultTraceInterval

// Options tunes one RunSpec execution.
type Options struct {
	// Workers is the sweep parallelism (0 = one per core).
	Workers int

	// Trace captures a trace during the run. Single-run specs trace the
	// run itself; sweeps trace their first grid case (sweep.Case.Index
	// 0), a deterministic representative. Recording does not perturb the
	// simulation — the recorder is a pure observer. What the trace
	// carries is model-defined: V_CC/freq/mode for lab runs,
	// budget/used/fps for mpsoc, vcap/events for taskburst,
	// soc/duty/harvest for eneutral.
	Trace bool

	// TraceInterval overrides the trace sampling interval (simulated
	// seconds); ≤0 selects the TraceInterval default. Callers bounding
	// trace memory for long runs raise it (service.maxTraceSamples).
	TraceInterval float64

	// Progress, if non-nil, is called after each case completes; single
	// runs report (1, 1).
	Progress func(done, total int)

	// Cancel, if non-nil, aborts the run when closed: RunSpec returns
	// sweep.ErrCanceled. It stops new sweep cases from starting and
	// interrupts the stepping loop of cases already running, so even
	// long single runs cancel promptly.
	Cancel <-chan struct{}

	// Checkpoint, if non-nil, suspends the run when closed: RunSpec
	// returns *scenario.CheckpointError carrying a resumable state
	// envelope for ResumeSpec. Cancel wins when both have fired.
	Checkpoint <-chan struct{}
}

// CaseResult pairs one executed case with its name. Result carries the
// structured lab metrics for lab-model cases and is zero for the
// analytic models. Metrics carries the model's structured objectives
// (scenario.ModelCase.Metrics) for every model — the values the
// design-space explorer optimises, persisted through the cache codec
// so a disk- or peer-served report still answers objective queries.
type CaseResult struct {
	Name    string
	Result  lab.Result
	Metrics map[string]float64
}

// Report is one scenario execution's complete outcome.
type Report struct {
	// SpecHash is the executed spec's content address (scenario.Hash).
	SpecHash string

	// Sweep reports whether the spec expanded into a grid.
	Sweep bool

	// Text is the canonical rendering — byte-identical to what
	// `ehsim -scenario` prints on stdout for the same spec.
	Text string

	// Cases holds the structured per-case results, in grid order (one
	// entry for a single run).
	Cases []CaseResult

	// SimSeconds is the total simulated time across all cases — the
	// service's work-done metric.
	SimSeconds float64

	// TraceCSV is the captured trace (Options.Trace; on sweeps, the
	// first grid case's), serialised by WriteTrace: a spec-hash header
	// comment, then CSV.
	TraceCSV []byte

	// Trace is the live recorder behind TraceCSV — the columnar store
	// windowed trace queries run against (trace.Window); nil when the
	// run captured no trace.
	Trace *trace.Recorder
}

// runOptions maps the package's options onto the scenario driver's.
func runOptions(opts Options) scenario.RunOptions {
	return scenario.RunOptions{
		Workers:       opts.Workers,
		Trace:         opts.Trace,
		TraceInterval: opts.TraceInterval,
		Progress:      opts.Progress,
		Cancel:        opts.Cancel,
		Checkpoint:    opts.Checkpoint,
	}
}

// RunSpec executes a validated spec — a single run without sweep axes, a
// parallel grid sweep with them — through its scenario model's engine
// and renders its report.
func RunSpec(sp *scenario.Spec, opts Options) (*Report, error) {
	hash, err := sp.Hash()
	if err != nil {
		return nil, err
	}
	mr, err := scenario.RunModel(sp, runOptions(opts))
	if err != nil {
		return nil, err
	}
	return wrapReport(sp, hash, mr)
}

// ResumeSpec continues a run suspended by a checkpoint request: state is
// the envelope a previous RunSpec/ResumeSpec returned inside
// *scenario.CheckpointError. The finished report is byte-identical to an
// uninterrupted RunSpec of the same spec.
func ResumeSpec(sp *scenario.Spec, state []byte, opts Options) (*Report, error) {
	hash, err := sp.Hash()
	if err != nil {
		return nil, err
	}
	mr, err := scenario.ResumeModel(sp, state, runOptions(opts))
	if err != nil {
		return nil, err
	}
	return wrapReport(sp, hash, mr)
}

// wrapReport stamps a model report with the spec's content address and
// serialises its trace.
func wrapReport(sp *scenario.Spec, hash string, mr *scenario.ModelReport) (*Report, error) {
	rep := &Report{
		SpecHash:   hash,
		Sweep:      mr.Sweep,
		Text:       mr.Text,
		SimSeconds: mr.SimSeconds,
		Cases:      make([]CaseResult, len(mr.Cases)),
	}
	for i, c := range mr.Cases {
		rep.Cases[i] = CaseResult{Name: c.Name, Result: c.Lab, Metrics: c.Metrics}
	}
	if mr.Trace != nil {
		var tb bytes.Buffer
		if err := WriteTrace(&tb, mr.Trace, hash); err != nil {
			return nil, err
		}
		rep.TraceCSV = tb.Bytes()
		rep.Trace = mr.Trace
	}
	return rep, nil
}

// SingleTitle renders a single-run lab scenario's report title line.
func SingleTitle(sp *scenario.Spec) string { return scenario.SingleTitle(sp) }

// SweepAxesLabel joins the spec's sweep axis names for the report header.
func SweepAxesLabel(sp *scenario.Spec) string { return scenario.SweepAxesLabel(sp) }

// WriteSummary renders one run's result block — the per-run body shared
// by the CLI's flag and scenario paths and the service's reports.
func WriteSummary(w io.Writer, res lab.Result, duration float64) {
	scenario.WriteSummary(w, res, duration)
}

// WriteSweepTable renders the sweep comparison table: a header row, then
// one row per case. width sets the first column's width, col0 its title
// ("case" for scenario sweeps, "C" for the CLI's storage sweeps).
func WriteSweepTable(w io.Writer, col0 string, width int, names []string, results []lab.Result) {
	scenario.WriteSweepTable(w, col0, width, names, results)
}

// WriteTrace serialises a recorded trace as CSV, prefixed (when specHash
// is non-empty) with a header comment carrying the spec's content
// address — so a trace file on disk is traceable back to the exact spec
// that produced it.
func WriteTrace(w io.Writer, rec *trace.Recorder, specHash string) error {
	if specHash != "" {
		if _, err := fmt.Fprintf(w, "# spec-hash: %s\n", specHash); err != nil {
			return err
		}
	}
	return rec.WriteCSV(w)
}
