// Package result is the shared result-encoding path between the ehsim
// CLI and the ehsimd service: one implementation of "execute a scenario
// spec and render its report", so the two front-ends cannot drift. The
// byte-identity contract — `GET /v1/jobs/{id}/result` returns exactly
// what `ehsim -scenario` prints for the same spec — holds because both
// call RunSpec and serve Report.Text verbatim.
//
// The package also owns the textual building blocks the CLI's legacy
// flag path shares with scenario reports (WriteSummary, WriteSweepTable)
// and the trace serialisation that stamps every CSV with the spec's
// content address (WriteTrace).
package result

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/lab"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/units"
)

// EngineVersion names the simulation-and-rendering contract a cached
// report was produced under. The service mixes it into cache keys, so
// bump it whenever lab semantics, registry defaults, or report text
// change in a way that should invalidate previously computed results.
const EngineVersion = "1"

// TraceInterval is the sampling interval (simulated seconds) used for
// captured V_CC traces, matching the CLI's -trace behaviour.
const TraceInterval = 1e-3

// Options tunes one RunSpec execution.
type Options struct {
	// Workers is the sweep parallelism (0 = one per core).
	Workers int

	// Trace captures a V_CC/freq/mode trace during the run. It applies to
	// single-run specs only (sweeps have no single trace) and does not
	// perturb the simulation — the recorder is a pure observer.
	Trace bool

	// TraceInterval overrides the trace sampling interval (simulated
	// seconds); ≤0 selects the TraceInterval default. Callers bounding
	// trace memory for long runs raise it (service.maxTraceSamples).
	TraceInterval float64

	// Progress, if non-nil, is called after each case completes; single
	// runs report (1, 1).
	Progress func(done, total int)

	// Cancel, if non-nil, aborts the run when closed: RunSpec returns
	// sweep.ErrCanceled. It stops new sweep cases from starting and, via
	// lab's Setup.Abort, interrupts the stepping loop of cases already
	// running, so even long single runs cancel promptly.
	Cancel <-chan struct{}
}

// CaseResult pairs one executed case with its name.
type CaseResult struct {
	Name   string
	Result lab.Result
}

// Report is one scenario execution's complete outcome.
type Report struct {
	// SpecHash is the executed spec's content address (scenario.Hash).
	SpecHash string

	// Sweep reports whether the spec expanded into a grid.
	Sweep bool

	// Text is the canonical rendering — byte-identical to what
	// `ehsim -scenario` prints on stdout for the same spec.
	Text string

	// Cases holds the structured per-case results, in grid order (one
	// entry for a single run).
	Cases []CaseResult

	// SimSeconds is the total simulated time across all cases — the
	// service's work-done metric.
	SimSeconds float64

	// TraceCSV is the captured trace (Options.Trace, single runs only),
	// serialised by WriteTrace: a spec-hash header comment, then CSV.
	TraceCSV []byte
}

// RunSpec executes a validated spec — a single run without sweep axes, a
// parallel grid sweep with them — and renders its report.
func RunSpec(sp *scenario.Spec, opts Options) (*Report, error) {
	hash, err := sp.Hash()
	if err != nil {
		return nil, err
	}
	rep := &Report{SpecHash: hash}
	var buf bytes.Buffer

	if !sp.HasSweep() {
		if opts.Cancel != nil {
			select {
			case <-opts.Cancel:
				return nil, sweep.ErrCanceled
			default:
			}
		}
		s, err := sp.Setup()
		if err != nil {
			return nil, err
		}
		s.Abort = opts.Cancel
		var rec *trace.Recorder
		if opts.Trace {
			rec = trace.NewRecorder()
			s.Recorder = rec
			s.RecordInterval = opts.TraceInterval
			if s.RecordInterval <= 0 {
				s.RecordInterval = TraceInterval
			}
		}
		res, err := lab.Run(s)
		if errors.Is(err, lab.ErrAborted) {
			return nil, sweep.ErrCanceled
		}
		if err != nil {
			return nil, err
		}
		if opts.Progress != nil {
			opts.Progress(1, 1)
		}
		fmt.Fprintln(&buf, SingleTitle(sp))
		WriteSummary(&buf, res, float64(sp.Duration))
		rep.Cases = []CaseResult{{Name: sp.Name, Result: res}}
		rep.SimSeconds = float64(sp.Duration)
		if rec != nil {
			var tb bytes.Buffer
			if err := WriteTrace(&tb, rec, hash); err != nil {
				return nil, err
			}
			rep.TraceCSV = tb.Bytes()
		}
		rep.Text = buf.String()
		return rep, nil
	}

	rep.Sweep = true
	grid := sp.Grid()
	cases := grid.Cases()
	r := &sweep.Runner{Workers: opts.Workers, OnProgress: opts.Progress, Cancel: opts.Cancel}
	results, err := sweep.MapGrid(r, grid, func(c sweep.Case) (lab.Result, error) {
		s, err := sp.SetupAt(c)
		if err != nil {
			return lab.Result{}, err
		}
		s.Abort = opts.Cancel
		return lab.Run(s)
	})
	if err != nil {
		// A case interrupted mid-run by Cancel surfaces as its abort
		// error; fold it into the uniform cancellation signal.
		if errors.Is(err, lab.ErrAborted) {
			return nil, sweep.ErrCanceled
		}
		return nil, err
	}
	fmt.Fprintf(&buf, "scenario %s: sweep over %s, %d cases\n",
		sp.Name, SweepAxesLabel(sp), len(cases))
	names := make([]string, len(cases))
	rep.Cases = make([]CaseResult, len(cases))
	for i, c := range cases {
		names[i] = c.Name
		rep.Cases[i] = CaseResult{Name: c.Name, Result: results[i]}
		rep.SimSeconds += caseDuration(sp, c)
	}
	WriteSweepTable(&buf, "case", 32, names, results)
	rep.Text = buf.String()
	return rep, nil
}

// caseDuration resolves one grid case's simulated duration: the spec's,
// unless a "duration" axis overrides it.
func caseDuration(sp *scenario.Spec, c sweep.Case) float64 {
	if v, ok := c.Values["duration"]; ok {
		if f, ok := v.(float64); ok {
			return f
		}
	}
	return float64(sp.Duration)
}

// SingleTitle renders a single-run scenario's report title line.
func SingleTitle(sp *scenario.Spec) string {
	return fmt.Sprintf("scenario %s: %s on %s, runtime=%s, C=%s, %gs",
		sp.Name, sp.Workload, sp.Source.Name, runtimeLabel(sp),
		units.Format(float64(sp.Storage.C), "F"), float64(sp.Duration))
}

// runtimeLabel names the spec's runtime for report headers ("" → none).
func runtimeLabel(sp *scenario.Spec) string {
	if sp.Runtime.Name == "" {
		return "none"
	}
	return sp.Runtime.Name
}

// SweepAxesLabel joins the spec's sweep axis names for the report header.
func SweepAxesLabel(sp *scenario.Spec) string {
	names := make([]string, len(sp.Sweep))
	for i, ax := range sp.Sweep {
		names[i] = ax.Param
	}
	return strings.Join(names, " × ")
}

// WriteSummary renders one run's result block — the per-run body shared
// by the CLI's flag and scenario paths and the service's reports.
func WriteSummary(w io.Writer, res lab.Result, duration float64) {
	fmt.Fprintf(w, "  completions:        %d (wrong: %d)\n", res.Completions, res.WrongResults)
	fmt.Fprintf(w, "  throughput:         %.2f ops/s\n", res.Throughput(duration))
	if res.Completions > 0 {
		fmt.Fprintf(w, "  energy/completion:  %s\n", units.Format(res.EnergyPerCompletion(), "J"))
		fmt.Fprintf(w, "  first completion:   %s\n", units.FormatSeconds(res.FirstCompletion))
	}
	st := res.Stats
	fmt.Fprintf(w, "  snapshots:          %d started, %d done, %d aborted\n",
		st.SavesStarted, st.SavesDone, st.SavesAborted)
	fmt.Fprintf(w, "  restores/wakes:     %d / %d\n", st.Restores, st.WakeNoRestore)
	fmt.Fprintf(w, "  power cycles:       %d brown-outs, %d cold starts\n", st.BrownOuts, st.ColdStarts)
	fmt.Fprintf(w, "  time split:         active %.2fs, sleep %.2fs, save %.2fs, off %.2fs\n",
		st.ActiveSec, st.SleepSec, st.SaveSec, st.OffSec)
	fmt.Fprintf(w, "  energy:             harvested %s, consumed %s\n",
		units.Format(res.HarvestedJ, "J"), units.Format(res.ConsumedJ, "J"))
	if res.RuntimeErr != nil {
		fmt.Fprintf(w, "  guest fault:        %v\n", res.RuntimeErr)
	}
}

// WriteSweepTable renders the sweep comparison table: a header row, then
// one row per case. width sets the first column's width, col0 its title
// ("case" for scenario sweeps, "C" for the CLI's storage sweeps).
func WriteSweepTable(w io.Writer, col0 string, width int, names []string, results []lab.Result) {
	fmt.Fprintf(w, "%-*s %-12s %-8s %-10s %-10s %-12s %-12s\n",
		width, col0, "completions", "wrong", "snapshots", "brownouts", "energy/op", "harvested")
	for i, res := range results {
		eop := "∞"
		if res.Completions > 0 {
			eop = units.Format(res.EnergyPerCompletion(), "J")
		}
		fmt.Fprintf(w, "%-*s %-12d %-8d %-10d %-10d %-12s %-12s\n",
			width, names[i], res.Completions, res.WrongResults,
			res.Stats.SavesStarted, res.Stats.BrownOuts, eop,
			units.Format(res.HarvestedJ, "J"))
	}
}

// WriteTrace serialises a recorded trace as CSV, prefixed (when specHash
// is non-empty) with a header comment carrying the spec's content
// address — so a trace file on disk is traceable back to the exact spec
// that produced it.
func WriteTrace(w io.Writer, rec *trace.Recorder, specHash string) error {
	if specHash != "" {
		if _, err := fmt.Fprintf(w, "# spec-hash: %s\n", specHash); err != nil {
			return err
		}
	}
	return rec.WriteCSV(w)
}
