package result

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func codecSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	sp, err := scenario.Parse([]byte(`{
		"name": "codec-roundtrip",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestReportCodecRoundTripsServedArtifacts(t *testing.T) {
	rep, err := RunSpec(codecSpec(t), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	// The service contract is byte identity of the served artifacts.
	if got.Text != rep.Text {
		t.Errorf("Text diverged across the codec:\n%s\n---\n%s", got.Text, rep.Text)
	}
	if !bytes.Equal(got.TraceCSV, rep.TraceCSV) {
		t.Error("TraceCSV diverged across the codec")
	}
	if got.SpecHash != rep.SpecHash || got.Sweep != rep.Sweep || got.SimSeconds != rep.SimSeconds {
		t.Errorf("metadata diverged: %+v vs %+v", got, rep)
	}
	if len(got.Cases) != len(rep.Cases) || got.Cases[0].Name != rep.Cases[0].Name {
		t.Errorf("case names diverged: %v", got.Cases)
	}
}

func TestDecodeRejectsForeignEngineAndCodec(t *testing.T) {
	rep, err := RunSpec(codecSpec(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(data), `"engine":"`+EngineVersion+`"`, `"engine":"0-ancient"`, 1)
	if _, err := DecodeReport([]byte(stale)); err == nil {
		t.Error("report from a foreign engine version decoded cleanly")
	}
	wrongCodec := strings.Replace(string(data), `{"codec":1`, `{"codec":99`, 1)
	if _, err := DecodeReport([]byte(wrongCodec)); err == nil {
		t.Error("unknown codec version decoded cleanly")
	}
	if _, err := DecodeReport([]byte(`{"codec":1}`)); err == nil {
		t.Error("empty report decoded cleanly")
	}
	if _, err := DecodeReport([]byte("not json")); err == nil {
		t.Error("garbage decoded cleanly")
	}
}
