package result

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/scenario"
)

func codecSpec(t *testing.T) *scenario.Spec {
	t.Helper()
	sp, err := scenario.Parse([]byte(`{
		"name": "codec-roundtrip",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "dc"},
		"duration": 0.002
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestReportCodecRoundTripsServedArtifacts(t *testing.T) {
	rep, err := RunSpec(codecSpec(t), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReport(data)
	if err != nil {
		t.Fatal(err)
	}
	// The service contract is byte identity of the served artifacts.
	if got.Text != rep.Text {
		t.Errorf("Text diverged across the codec:\n%s\n---\n%s", got.Text, rep.Text)
	}
	if !bytes.Equal(got.TraceCSV, rep.TraceCSV) {
		t.Error("TraceCSV diverged across the codec")
	}
	// v3 persists the columnar recorder itself, so cache-served reports
	// answer windowed trace queries without a recompute — and the
	// decoded recorder must window identically to the original.
	if got.Trace == nil {
		t.Fatal("decoded report lost its columnar trace")
	}
	var a, b strings.Builder
	if err := rep.Trace.WriteWindowCSV(&a, 0, 1, 16); err != nil {
		t.Fatal(err)
	}
	if err := got.Trace.WriteWindowCSV(&b, 0, 1, 16); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("windowed rendering diverged across the codec")
	}
	if got.SpecHash != rep.SpecHash || got.Sweep != rep.Sweep || got.SimSeconds != rep.SimSeconds {
		t.Errorf("metadata diverged: %+v vs %+v", got, rep)
	}
	if len(got.Cases) != len(rep.Cases) || got.Cases[0].Name != rep.Cases[0].Name {
		t.Errorf("case names diverged: %v", got.Cases)
	}
	// v2 persists the structured metrics, so a cache-served report can
	// still answer exploration objective queries.
	if len(got.Cases[0].Metrics) == 0 {
		t.Fatal("decoded report lost its case metrics")
	}
	for k, v := range rep.Cases[0].Metrics {
		if got.Cases[0].Metrics[k] != v {
			t.Errorf("metric %q diverged: %g vs %g", k, got.Cases[0].Metrics[k], v)
		}
	}
}

func TestDecodeRejectsForeignEngineAndCodec(t *testing.T) {
	rep, err := RunSpec(codecSpec(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(data), `"engine":"`+EngineVersion+`"`, `"engine":"0-ancient"`, 1)
	if _, err := DecodeReport([]byte(stale)); err == nil {
		t.Error("report from a foreign engine version decoded cleanly")
	}
	wrongCodec := strings.Replace(string(data), `{"codec":`, `{"codec":9`, 1)
	if _, err := DecodeReport([]byte(wrongCodec)); err == nil {
		t.Error("unknown codec version decoded cleanly")
	}
	// A v1 blob (pre-metrics) must decode as a miss, not half-read.
	v1 := strings.Replace(string(data), fmt.Sprintf(`{"codec":%d`, codecVersion), `{"codec":1`, 1)
	if _, err := DecodeReport([]byte(v1)); err == nil {
		t.Error("stale codec v1 blob decoded cleanly")
	}
	if _, err := DecodeReport([]byte(fmt.Sprintf(`{"codec":%d}`, codecVersion))); err == nil {
		t.Error("empty report decoded cleanly")
	}
	if _, err := DecodeReport([]byte("not json")); err == nil {
		t.Error("garbage decoded cleanly")
	}
}
