package result

import (
	"encoding/json"
	"fmt"
)

// codecVersion frames the serialised report format. Bump it when the
// wire struct changes shape; decoders reject other versions so a stale
// blob can never be half-read into the wrong fields.
const codecVersion = 1

// wireReport is the persisted/transferred form of a Report — the disk
// CAS blob payload and the peer cache-transfer body. It carries the
// rendered artifacts the service contract is about (Text, TraceCSV —
// both served verbatim, byte for byte) plus the metadata the job layer
// needs (hash, sweep flag, case names for progress accounting).
// Structured per-case lab metrics are deliberately not persisted: they
// feed live rendering only, and rendering already happened.
type wireReport struct {
	Codec      int      `json:"codec"`
	Engine     string   `json:"engine"`
	SpecHash   string   `json:"spec_hash"`
	Sweep      bool     `json:"sweep,omitempty"`
	Text       string   `json:"text"`
	SimSeconds float64  `json:"sim_seconds"`
	CaseNames  []string `json:"case_names,omitempty"`
	TraceCSV   []byte   `json:"trace_csv,omitempty"`
}

// EncodeReport serialises a report for the disk CAS and peer transfer.
func EncodeReport(rep *Report) ([]byte, error) {
	w := wireReport{
		Codec:      codecVersion,
		Engine:     EngineVersion,
		SpecHash:   rep.SpecHash,
		Sweep:      rep.Sweep,
		Text:       rep.Text,
		SimSeconds: rep.SimSeconds,
		TraceCSV:   rep.TraceCSV,
	}
	for _, c := range rep.Cases {
		w.CaseNames = append(w.CaseNames, c.Name)
	}
	b, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("result: encoding report %s: %w", rep.SpecHash, err)
	}
	return b, nil
}

// DecodeReport deserialises an EncodeReport payload. It rejects unknown
// codec versions and reports produced by a different engine version —
// both would otherwise let a stale blob impersonate a current result.
func DecodeReport(data []byte) (*Report, error) {
	var w wireReport
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("result: decoding report: %w", err)
	}
	if w.Codec != codecVersion {
		return nil, fmt.Errorf("result: report codec %d, want %d", w.Codec, codecVersion)
	}
	if w.Engine != EngineVersion {
		return nil, fmt.Errorf("result: report from engine %q, current engine is %q", w.Engine, EngineVersion)
	}
	if w.SpecHash == "" || w.Text == "" {
		return nil, fmt.Errorf("result: decoded report missing spec hash or text")
	}
	rep := &Report{
		SpecHash:   w.SpecHash,
		Sweep:      w.Sweep,
		Text:       w.Text,
		SimSeconds: w.SimSeconds,
		TraceCSV:   w.TraceCSV,
		Cases:      make([]CaseResult, len(w.CaseNames)),
	}
	for i, n := range w.CaseNames {
		rep.Cases[i] = CaseResult{Name: n}
	}
	return rep, nil
}
