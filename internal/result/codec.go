package result

import (
	"encoding/json"
	"fmt"
)

// codecVersion frames the serialised report format. Bump it when the
// wire struct changes shape; decoders reject other versions so a stale
// blob can never be half-read into the wrong fields. v2 added per-case
// structured metrics, which the design-space explorer reads off cached
// reports — v1 blobs decode as misses and recompute.
const codecVersion = 2

// wireReport is the persisted/transferred form of a Report — the disk
// CAS blob payload and the peer cache-transfer body. It carries the
// rendered artifacts the service contract is about (Text, TraceCSV —
// both served verbatim, byte for byte) plus the metadata the job and
// exploration layers need: hash, sweep flag, and per-case name +
// structured metrics. Raw lab.Result fields stay unpersisted — every
// number worth caching is in the metrics map by the model contract.
type wireReport struct {
	Codec      int        `json:"codec"`
	Engine     string     `json:"engine"`
	SpecHash   string     `json:"spec_hash"`
	Sweep      bool       `json:"sweep,omitempty"`
	Text       string     `json:"text"`
	SimSeconds float64    `json:"sim_seconds"`
	Cases      []wireCase `json:"cases,omitempty"`
	TraceCSV   []byte     `json:"trace_csv,omitempty"`
}

// wireCase is one persisted case: its display name and its structured
// metrics.
type wireCase struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// EncodeReport serialises a report for the disk CAS and peer transfer.
func EncodeReport(rep *Report) ([]byte, error) {
	w := wireReport{
		Codec:      codecVersion,
		Engine:     EngineVersion,
		SpecHash:   rep.SpecHash,
		Sweep:      rep.Sweep,
		Text:       rep.Text,
		SimSeconds: rep.SimSeconds,
		TraceCSV:   rep.TraceCSV,
	}
	for _, c := range rep.Cases {
		w.Cases = append(w.Cases, wireCase{Name: c.Name, Metrics: c.Metrics})
	}
	b, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("result: encoding report %s: %w", rep.SpecHash, err)
	}
	return b, nil
}

// DecodeReport deserialises an EncodeReport payload. It rejects unknown
// codec versions and reports produced by a different engine version —
// both would otherwise let a stale blob impersonate a current result.
func DecodeReport(data []byte) (*Report, error) {
	var w wireReport
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("result: decoding report: %w", err)
	}
	if w.Codec != codecVersion {
		return nil, fmt.Errorf("result: report codec %d, want %d", w.Codec, codecVersion)
	}
	if w.Engine != EngineVersion {
		return nil, fmt.Errorf("result: report from engine %q, current engine is %q", w.Engine, EngineVersion)
	}
	if w.SpecHash == "" || w.Text == "" {
		return nil, fmt.Errorf("result: decoded report missing spec hash or text")
	}
	rep := &Report{
		SpecHash:   w.SpecHash,
		Sweep:      w.Sweep,
		Text:       w.Text,
		SimSeconds: w.SimSeconds,
		TraceCSV:   w.TraceCSV,
		Cases:      make([]CaseResult, len(w.Cases)),
	}
	for i, c := range w.Cases {
		rep.Cases[i] = CaseResult{Name: c.Name, Metrics: c.Metrics}
	}
	return rep, nil
}
