package result

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/trace"
)

// codecVersion frames the serialised report format. Bump it when the
// wire struct changes shape; decoders reject other versions so a stale
// blob can never be half-read into the wrong fields. v2 added per-case
// structured metrics, which the design-space explorer reads off cached
// reports; v3 replaced the rendered trace CSV with the columnar trace
// blob, so disk- and peer-served reports answer windowed trace queries
// without a recompute — older blobs decode as misses.
const codecVersion = 3

// wireReport is the persisted/transferred form of a Report — the disk
// CAS blob payload and the peer cache-transfer body. It carries the
// rendered artifacts the service contract is about (Text served
// verbatim, byte for byte; the trace as the columnar blob the CSV is
// deterministically re-rendered from) plus the metadata the job and
// exploration layers need: hash, sweep flag, and per-case name +
// structured metrics. Raw lab.Result fields stay unpersisted — every
// number worth caching is in the metrics map by the model contract.
type wireReport struct {
	Codec      int        `json:"codec"`
	Engine     string     `json:"engine"`
	SpecHash   string     `json:"spec_hash"`
	Sweep      bool       `json:"sweep,omitempty"`
	Text       string     `json:"text"`
	SimSeconds float64    `json:"sim_seconds"`
	Cases      []wireCase `json:"cases,omitempty"`

	// Trace is the columnar trace blob (trace.EncodeRecorder); TraceCSV
	// is the legacy fallback for reports that carry rendered CSV without
	// a live recorder. At most one is set.
	Trace    []byte `json:"trace,omitempty"`
	TraceCSV []byte `json:"trace_csv,omitempty"`
}

// wireCase is one persisted case: its display name and its structured
// metrics.
type wireCase struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// EncodeReport serialises a report for the disk CAS and peer transfer.
func EncodeReport(rep *Report) ([]byte, error) {
	w := wireReport{
		Codec:      codecVersion,
		Engine:     EngineVersion,
		SpecHash:   rep.SpecHash,
		Sweep:      rep.Sweep,
		Text:       rep.Text,
		SimSeconds: rep.SimSeconds,
	}
	if rep.Trace != nil {
		w.Trace = trace.EncodeRecorder(rep.Trace)
	} else {
		w.TraceCSV = rep.TraceCSV
	}
	for _, c := range rep.Cases {
		w.Cases = append(w.Cases, wireCase{Name: c.Name, Metrics: c.Metrics})
	}
	b, err := json.Marshal(w)
	if err != nil {
		return nil, fmt.Errorf("result: encoding report %s: %w", rep.SpecHash, err)
	}
	return b, nil
}

// DecodeReport deserialises an EncodeReport payload. It rejects unknown
// codec versions and reports produced by a different engine version —
// both would otherwise let a stale blob impersonate a current result.
func DecodeReport(data []byte) (*Report, error) {
	var w wireReport
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("result: decoding report: %w", err)
	}
	if w.Codec != codecVersion {
		return nil, fmt.Errorf("result: report codec %d, want %d", w.Codec, codecVersion)
	}
	if w.Engine != EngineVersion {
		return nil, fmt.Errorf("result: report from engine %q, current engine is %q", w.Engine, EngineVersion)
	}
	if w.SpecHash == "" || w.Text == "" {
		return nil, fmt.Errorf("result: decoded report missing spec hash or text")
	}
	rep := &Report{
		SpecHash:   w.SpecHash,
		Sweep:      w.Sweep,
		Text:       w.Text,
		SimSeconds: w.SimSeconds,
		TraceCSV:   w.TraceCSV,
		Cases:      make([]CaseResult, len(w.Cases)),
	}
	if w.Trace != nil {
		rec, err := trace.DecodeRecorder(w.Trace)
		if err != nil {
			return nil, fmt.Errorf("result: decoding report trace: %w", err)
		}
		rep.Trace = rec
		// Re-render the CSV the byte-identity contract serves: the
		// columnar codec round-trips the recorder losslessly, so the
		// rendering matches the original byte for byte.
		var tb bytes.Buffer
		if err := WriteTrace(&tb, rec, w.SpecHash); err != nil {
			return nil, err
		}
		rep.TraceCSV = tb.Bytes()
	}
	for i, c := range w.Cases {
		rep.Cases[i] = CaseResult{Name: c.Name, Metrics: c.Metrics}
	}
	return rep, nil
}
