package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestCapacitorChargeDischarge(t *testing.T) {
	c := NewCapacitor(100e-6, 0)
	// 1 mA for 100 ms into 100 µF: ΔV = I·t/C = 1 V.
	for i := 0; i < 1000; i++ {
		c.Step(1e-3, 100e-6)
	}
	if math.Abs(c.V-1.0) > 1e-9 {
		t.Errorf("charged V = %g, want 1.0", c.V)
	}
	// Discharge the same charge symmetrically.
	for i := 0; i < 1000; i++ {
		c.Step(-1e-3, 100e-6)
	}
	if math.Abs(c.V) > 1e-9 {
		t.Errorf("discharged V = %g, want 0", c.V)
	}
}

func TestCapacitorVoltageNeverNegative(t *testing.T) {
	c := NewCapacitor(1e-6, 0.1)
	for i := 0; i < 100; i++ {
		c.Step(-1, 1e-3) // massive discharge current
	}
	if c.V < 0 {
		t.Errorf("voltage went negative: %g", c.V)
	}
}

func TestCapacitorOvervoltageClamp(t *testing.T) {
	c := NewCapacitor(1e-6, 0)
	c.MaxV = 3.3
	for i := 0; i < 1000; i++ {
		c.Step(1e-3, 1e-3)
	}
	if c.V != 3.3 {
		t.Errorf("clamped V = %g, want 3.3", c.V)
	}
	if c.ClampedJ <= 0 {
		t.Error("clamp should account for shed energy")
	}
}

func TestCapacitorLeakage(t *testing.T) {
	c := NewCapacitor(100e-6, 3.0)
	c.LeakR = 100e3 // τ = 10 s
	for i := 0; i < 100000; i++ {
		c.Step(0, 100e-6) // 10 s total
	}
	// After one time constant, V ≈ 3/e ≈ 1.104.
	want := 3.0 / math.E
	if math.Abs(c.V-want)/want > 0.01 {
		t.Errorf("after τ: V = %g, want ≈%g", c.V, want)
	}
}

func TestCapacitorEnergyAccessor(t *testing.T) {
	c := NewCapacitor(10e-6, 3)
	if got := c.Energy(); math.Abs(got-45e-6) > 1e-12 {
		t.Errorf("Energy = %g, want 45e-6", got)
	}
}

func TestCapacitorZeroCapacitanceNoop(t *testing.T) {
	c := &Capacitor{C: 0, V: 2}
	c.Step(1, 1)
	if c.V != 2 {
		t.Error("zero-capacitance step should not change voltage")
	}
}

func TestDrawEnergy(t *testing.T) {
	c := NewCapacitor(10e-6, 3)
	// Draw 25 µJ above a 2 V floor: exactly the available budget.
	got := c.DrawEnergy(25e-6, 2)
	if math.Abs(got-25e-6) > 1e-12 {
		t.Errorf("drawn = %g, want 25e-6", got)
	}
	if math.Abs(c.V-2) > 1e-9 {
		t.Errorf("post-draw V = %g, want 2", c.V)
	}
	// Nothing left above the floor.
	if c.DrawEnergy(1e-6, 2) != 0 {
		t.Error("draw below floor should return 0")
	}
	// Partial draw when requesting more than available.
	c2 := NewCapacitor(10e-6, 3)
	got2 := c2.DrawEnergy(1, 2)
	if math.Abs(got2-25e-6) > 1e-12 {
		t.Errorf("over-draw should cap at available: %g", got2)
	}
	if c.DrawEnergy(-1, 0) != 0 {
		t.Error("negative request should return 0")
	}
}

func TestDrawEnergyConservation(t *testing.T) {
	f := func(vRaw, eRaw float64) bool {
		v := math.Mod(math.Abs(vRaw), 5) + 1 // 1..6 V
		c := NewCapacitor(47e-6, v)
		before := c.Energy()
		req := math.Mod(math.Abs(eRaw), before)
		got := c.DrawEnergy(req, 0.5)
		after := c.Energy()
		return units.ApproxEqual(before-after, got, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSupercapacitorDefaults(t *testing.T) {
	sc := Supercapacitor(6e-3, 2.5)
	if sc.C != 6e-3 || sc.V != 2.5 {
		t.Error("supercap constructor values wrong")
	}
	if sc.LeakR <= 0 || sc.ESR <= 0 {
		t.Error("supercap should have leakage and ESR")
	}
}

func TestBatteryChargeDischarge(t *testing.T) {
	b := NewBattery(1000, 0.5)
	if math.Abs(b.Energy()-500) > 1e-9 {
		t.Errorf("energy = %g, want 500", b.Energy())
	}
	// Charge 100 J: stored 95 J at η=0.95.
	spill := b.Charge(100)
	if spill != 0 {
		t.Errorf("unexpected spill %g", spill)
	}
	if math.Abs(b.Energy()-595) > 1e-9 {
		t.Errorf("post-charge energy = %g, want 595", b.Energy())
	}
	// Discharge 95 J delivered: removes 100 J stored.
	got := b.Discharge(95)
	if math.Abs(got-95) > 1e-9 {
		t.Errorf("delivered = %g, want 95", got)
	}
	if math.Abs(b.Energy()-495) > 1e-9 {
		t.Errorf("post-discharge energy = %g, want 495", b.Energy())
	}
}

func TestBatterySpillAndDepletion(t *testing.T) {
	b := NewBattery(100, 0.99)
	spill := b.Charge(100) // 95 stored vs 1 J room: most spills
	if spill <= 0 {
		t.Error("overcharge should spill")
	}
	if b.SoC > 1.0001 {
		t.Errorf("SoC exceeded 1: %g", b.SoC)
	}
	b2 := NewBattery(100, 0.01)
	got := b2.Discharge(1000)
	if got >= 1000 || got <= 0 {
		t.Errorf("deep discharge delivered %g", got)
	}
	if !b2.Depleted() {
		t.Error("battery should be depleted")
	}
}

func TestBatteryVoltageTracksSoC(t *testing.T) {
	b := NewBattery(100, 1)
	vFull := b.Voltage()
	b.SoC = 0
	vEmpty := b.Voltage()
	if vFull != 4.2 || vEmpty != 3.0 {
		t.Errorf("voltage range %g..%g, want 3.0..4.2", vEmpty, vFull)
	}
}

func TestBatteryEdgeCases(t *testing.T) {
	b := NewBattery(100, 0.5)
	if b.Charge(-5) != 0 || b.Discharge(-5) != 0 {
		t.Error("negative energy should be a no-op")
	}
	zero := &Battery{}
	if zero.Charge(5) != 0 || zero.Discharge(5) != 0 {
		t.Error("zero-capacity battery should be a no-op")
	}
}

func TestRegulatorEfficiencyCurve(t *testing.T) {
	r := NewRegulator(3.3)
	// Efficiency rises with load current toward the peak.
	e1 := r.Efficiency(10e-6)
	e2 := r.Efficiency(10e-3)
	if e1 >= e2 {
		t.Errorf("efficiency should rise with load: %g vs %g", e1, e2)
	}
	if e2 > r.EtaPeak {
		t.Errorf("efficiency exceeded peak: %g", e2)
	}
}

func TestRegulatorInputCurrent(t *testing.T) {
	r := NewRegulator(3.3)
	// Power balance: vIn·iIn·η ≈ vOut·iOut (+ quiescent).
	iOut := 5e-3
	vIn := 4.0
	iIn := r.InputCurrent(vIn, iOut)
	eta := r.Efficiency(iOut)
	want := (3.3*iOut)/(vIn*eta) + 2e-6
	if math.Abs(iIn-want) > 1e-12 {
		t.Errorf("input current = %g, want %g", iIn, want)
	}
	// Below dropout only quiescent.
	if got := r.InputCurrent(1.0, iOut); got != 2e-6 {
		t.Errorf("dropout input current = %g, want 2e-6", got)
	}
}

func TestRegulatorOutput(t *testing.T) {
	r := NewRegulator(3.3)
	if r.Output(5) != 3.3 {
		t.Error("regulated output should be VOut")
	}
	if r.Output(1) != 0 {
		t.Error("below dropout output should collapse")
	}
	// LDO region: passes through input when between dropout and VOut.
	if got := r.Output(2.5); got != 2.5 {
		t.Errorf("LDO region output = %g, want 2.5", got)
	}
}
