// Package circuit provides the electrical substrate between a harvesting
// source and a computational load: storage elements (capacitors,
// supercapacitors, batteries), power conversion (regulators, rectifiers are
// in package source), voltage comparators with hysteresis, and a fixed-step
// rail solver that ties them together.
//
// The paper's taxonomy is fundamentally about how much energy storage sits
// on this rail (Fig. 2's horizontal axis) and whether the load tolerates
// the rail collapsing (eq. 2). Every experiment therefore runs on a Rail:
// a single storage node charged by a source and discharged by loads, with
// comparators watching V_CC to drive the transient runtimes.
package circuit

import (
	"math"

	"repro/internal/units"
)

// Capacitor models the storage node capacitance: the sum of deliberate
// storage (e.g. a 6 mF supercapacitor) and the parasitic/decoupling
// capacitance that is always present (the paper's "practical minimum").
type Capacitor struct {
	C        float64 // farads
	V        float64 // present voltage
	ESR      float64 // equivalent series resistance, ohms (informational)
	LeakR    float64 // parallel leakage resistance, ohms; 0 = no leakage
	MaxV     float64 // overvoltage clamp (zener/protection); 0 = unclamped
	ClampedJ float64 // cumulative energy shed by the clamp, joules
}

// NewCapacitor returns a capacitor of c farads starting at v0 volts.
func NewCapacitor(c, v0 float64) *Capacitor {
	return &Capacitor{C: c, V: v0}
}

// Energy returns the stored energy C·V²/2 in joules.
func (c *Capacitor) Energy() float64 { return units.CapacitorEnergy(c.C, c.V) }

// Step integrates the node for dt seconds with net current iNet flowing in
// (amperes; negative discharges). Leakage is applied internally. The
// voltage is clamped to [0, MaxV].
func (c *Capacitor) Step(iNet, dt float64) {
	if c.C <= 0 {
		return
	}
	if c.LeakR > 0 {
		iNet -= c.V / c.LeakR
	}
	c.V += iNet * dt / c.C
	if c.V < 0 {
		c.V = 0
	}
	if c.MaxV > 0 && c.V > c.MaxV {
		c.clamp()
	}
}

// clamp sheds the energy above MaxV into the protection clamp — split
// out of Step so the common (unclamped) step stays inlinable.
func (c *Capacitor) clamp() {
	c.ClampedJ += units.EnergyBetween(c.C, c.V, c.MaxV)
	c.V = c.MaxV
}

// DrawEnergy removes e joules from the capacitor instantaneously (used for
// event-style consumption such as a packet transmission). It returns the
// energy actually removed (limited by what is stored above vFloor).
func (c *Capacitor) DrawEnergy(e, vFloor float64) float64 {
	if e <= 0 || c.C <= 0 {
		return 0
	}
	avail := units.EnergyBetween(c.C, c.V, vFloor)
	if avail <= 1e-18 { // below any physically meaningful budget
		return 0
	}
	if e > avail {
		e = avail
	}
	newE := units.CapacitorEnergy(c.C, c.V) - e
	c.V = units.CapacitorVoltage(c.C, newE)
	if c.V < vFloor {
		c.V = vFloor
	}
	return e
}

// Supercapacitor is a Capacitor with the leakage and ESR characteristics
// typical of supercapacitors pre-filled.
func Supercapacitor(c, v0 float64) *Capacitor {
	return &Capacitor{
		C:     c,
		V:     v0,
		ESR:   0.05,
		LeakR: 200e3, // microamp-scale leakage at a few volts
	}
}

// Battery is a simple state-of-charge energy reservoir with a terminal
// voltage that sags linearly with depth of discharge and separate
// charge/discharge efficiencies. It is sufficient for the energy-neutral
// experiments, where what matters is eq. (1) bookkeeping over hours–days.
type Battery struct {
	CapacityJ   float64 // full-charge energy, joules
	SoC         float64 // state of charge, 0..1
	VFull       float64 // terminal voltage at SoC=1
	VEmpty      float64 // terminal voltage at SoC=0
	EtaCharge   float64 // fraction of input energy stored
	EtaDischrg  float64 // fraction of stored energy delivered
	ThroughputJ float64 // cumulative energy cycled through (wear proxy)
}

// NewBattery returns a battery of capacityJ joules at the given initial
// state of charge, with typical Li-ion-ish parameters.
func NewBattery(capacityJ, soc float64) *Battery {
	return &Battery{
		CapacityJ:  capacityJ,
		SoC:        units.Clamp(soc, 0, 1),
		VFull:      4.2,
		VEmpty:     3.0,
		EtaCharge:  0.95,
		EtaDischrg: 0.95,
	}
}

// Voltage returns the present terminal voltage.
func (b *Battery) Voltage() float64 {
	return b.VEmpty + (b.VFull-b.VEmpty)*b.SoC
}

// Energy returns the stored energy in joules.
func (b *Battery) Energy() float64 { return b.SoC * b.CapacityJ }

// Charge adds e joules of input energy; the stored amount is scaled by the
// charge efficiency and clamped at capacity. It returns the energy that
// could not be accepted (spill).
func (b *Battery) Charge(e float64) (spill float64) {
	if e <= 0 || b.CapacityJ <= 0 {
		return 0
	}
	stored := e * b.EtaCharge
	room := (1 - b.SoC) * b.CapacityJ
	if stored > room {
		spill = (stored - room) / b.EtaCharge
		stored = room
	}
	b.SoC += stored / b.CapacityJ
	b.ThroughputJ += stored
	return spill
}

// Discharge removes enough stored energy to deliver e joules at the
// terminals, honouring the discharge efficiency. It returns the energy
// actually delivered (less than e if the battery empties).
func (b *Battery) Discharge(e float64) float64 {
	if e <= 0 || b.CapacityJ <= 0 || b.EtaDischrg <= 0 {
		return 0
	}
	need := e / b.EtaDischrg
	have := b.SoC * b.CapacityJ
	if need > have {
		need = have
	}
	b.SoC -= need / b.CapacityJ
	b.ThroughputJ += need
	return need * b.EtaDischrg
}

// Depleted reports whether the battery is effectively empty.
func (b *Battery) Depleted() bool { return b.SoC <= 1e-9 }

// Regulator models a switching converter between the storage node and the
// load: fixed output voltage, efficiency that droops at light load. The
// conversion stages in the paper's Fig. 3 (energy-neutral architecture)
// are instances of this; Fig. 4's harvesting-aware load omits them.
type Regulator struct {
	VOut    float64 // regulated output voltage
	VInMin  float64 // dropout: below this input, the output collapses
	EtaPeak float64 // peak efficiency (0..1)
	IKnee   float64 // output current at which efficiency reaches ~peak
}

// NewRegulator returns a buck/boost-ish regulator with the given output
// voltage, 85 % peak efficiency and a 1 mA efficiency knee.
func NewRegulator(vOut float64) *Regulator {
	return &Regulator{VOut: vOut, VInMin: vOut * 0.6, EtaPeak: 0.85, IKnee: 1e-3}
}

// Efficiency returns the conversion efficiency at output current iOut.
func (r *Regulator) Efficiency(iOut float64) float64 {
	if iOut <= 0 {
		return r.EtaPeak
	}
	// Quiescent-dominated droop at light load: η = ηpk · i/(i + knee/10).
	return r.EtaPeak * iOut / (iOut + r.IKnee/10)
}

// InputCurrent returns the current drawn from the storage node at voltage
// vIn to supply iOut at VOut. Below dropout the regulator is off and draws
// only a small quiescent current.
func (r *Regulator) InputCurrent(vIn, iOut float64) float64 {
	const iQuiescent = 2e-6
	if vIn < r.VInMin || vIn <= 0 {
		return iQuiescent
	}
	eta := r.Efficiency(iOut)
	if eta <= 0 {
		return iQuiescent
	}
	return (r.VOut*iOut)/(vIn*eta) + iQuiescent
}

// Output returns the regulated output voltage given input vIn (0 below
// dropout).
func (r *Regulator) Output(vIn float64) float64 {
	if vIn < r.VInMin {
		return 0
	}
	return math.Min(r.VOut, vIn) // LDO-like behaviour if vIn < VOut
}
