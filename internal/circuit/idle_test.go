package circuit

import (
	"math"
	"testing"
)

// stepIdle integrates n idle steps the slow way: Step with no source and a
// constant-current load, the reference AdvanceIdle must match.
func stepIdle(c, v0, leakR, iLoad, dt float64, n int) (*Rail, float64) {
	cap := NewCapacitor(c, v0)
	cap.LeakR = leakR
	r := NewRail(cap)
	r.AddLoad(&fixedLoad{i: iLoad})
	var v float64
	for i := 0; i < n; i++ {
		v = r.Step(dt)
	}
	return r, v
}

// fixedLoad draws a constant current at any voltage above zero — unlike
// ConstantCurrentLoad it has no VMin cutoff, matching the off-mode device
// draw AdvanceIdle assumes.
type fixedLoad struct{ i float64 }

func (l *fixedLoad) Current(v, _ float64) float64 {
	if v <= 0 {
		return 0
	}
	return l.i
}

func TestAdvanceIdleMatchesStepwise(t *testing.T) {
	cases := []struct {
		name         string
		c, v0        float64
		leakR, iLoad float64
		dt           float64
		n            int
	}{
		{"leak+load", 10e-6, 3.3, 50e3, 50e-9, 5e-6, 30000},
		{"leak-only", 10e-6, 3.3, 50e3, 0, 5e-6, 30000},
		{"load-only", 10e-6, 3.3, 0, 1.5e-6, 5e-6, 30000},
		{"sleep-draw", 330e-6, 2.8, 200e3, 1.5e-6, 5e-6, 100000},
		{"clamps-to-zero", 1e-6, 0.5, 10e3, 5e-6, 5e-6, 50000},
		{"from-zero", 10e-6, 0, 50e3, 50e-9, 5e-6, 1000},
		{"short-chunk", 10e-6, 3.0, 50e3, 50e-9, 5e-6, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, vRef := stepIdle(tc.c, tc.v0, tc.leakR, tc.iLoad, tc.dt, tc.n)

			cap := NewCapacitor(tc.c, tc.v0)
			cap.LeakR = tc.leakR
			r := NewRail(cap)
			vGot := r.AdvanceIdle(tc.n, tc.dt, tc.iLoad)

			if d := math.Abs(vGot - vRef); d > 1e-9+1e-9*vRef {
				t.Errorf("V after %d steps: closed form %.12f vs stepwise %.12f (Δ=%.3g)",
					tc.n, vGot, vRef, d)
			}
			if d := math.Abs(r.ConsumedJ - ref.ConsumedJ); d > 1e-12+1e-9*math.Abs(ref.ConsumedJ) {
				t.Errorf("ConsumedJ: closed form %.6g vs stepwise %.6g", r.ConsumedJ, ref.ConsumedJ)
			}
			if d := math.Abs(r.Now() - ref.Now()); d > 1e-12 {
				t.Errorf("clock: closed form %.9f vs stepwise %.9f", r.Now(), ref.Now())
			}
			if r.HarvestedJ != 0 {
				t.Errorf("idle advance harvested %.3g J from no source", r.HarvestedJ)
			}
		})
	}
}

func TestPeekIdleDoesNotMutate(t *testing.T) {
	cap := NewCapacitor(10e-6, 3.3)
	cap.LeakR = 50e3
	r := NewRail(cap)
	v := r.PeekIdle(10000, 5e-6, 1e-6)
	if v >= 3.3 {
		t.Errorf("predicted voltage %.3f should have decayed", v)
	}
	if r.V() != 3.3 || r.Now() != 0 || r.ConsumedJ != 0 {
		t.Error("PeekIdle mutated the rail")
	}
	got := r.AdvanceIdle(10000, 5e-6, 1e-6)
	if got != v {
		t.Errorf("AdvanceIdle %.12f disagrees with PeekIdle %.12f", got, v)
	}
}

func TestAdvanceIdleClocksComparators(t *testing.T) {
	cap := NewCapacitor(10e-6, 3.3)
	r := NewRail(cap)
	var fell bool
	cmp := NewComparator(2.0, 2.5, func(k EdgeKind, v, tm float64) {
		if k == EdgeFalling {
			fell = true
		}
	})
	cmp.Observe(3.3, 0) // arm above the band
	r.AddComparator(cmp)
	// Discharge well below the band in one analytic jump.
	r.AdvanceIdle(40000, 5e-6, 100e-6)
	if r.V() >= 2.0 {
		t.Fatalf("V = %.3f, expected deep discharge", r.V())
	}
	if !fell {
		t.Error("comparator missed the falling edge across an idle advance")
	}
}

func TestAdvanceIdleUnstableRegimeFallsBack(t *testing.T) {
	// dt comparable to the leak RC constant drives the Euler factor a ≤ 0;
	// the closed form must fall back to exact iteration, matching Step.
	c, v0, leakR := 1e-6, 3.0, 0.4 // RC = 0.4 µs < dt
	ref, vRef := stepIdle(c, v0, leakR, 0, 5e-6, 10)
	cap := NewCapacitor(c, v0)
	cap.LeakR = leakR
	r := NewRail(cap)
	vGot := r.AdvanceIdle(10, 5e-6, 0)
	if math.Abs(vGot-vRef) > 1e-12 {
		t.Errorf("unstable regime: got %.12f want %.12f", vGot, vRef)
	}
	_ = ref
}
