package circuit

import (
	"math"
	"testing"

	"repro/internal/source"
)

// stepDriven integrates n steps the slow way: Step with a DC voltage
// source conducting into a constant-current load — the reference
// AdvanceDriven must match.
func stepDriven(c, v0, leakR, iLoad, vs, rs, dt float64, n int) (*Rail, float64) {
	cap := NewCapacitor(c, v0)
	cap.LeakR = leakR
	r := NewRail(cap)
	r.VSource = &source.ConstantVoltage{V: vs, Rs: rs}
	r.AddLoad(&fixedLoad{i: iLoad})
	var v float64
	for i := 0; i < n; i++ {
		v = r.Step(dt)
	}
	return r, v
}

func TestAdvanceDrivenMatchesStepwise(t *testing.T) {
	cases := []struct {
		name         string
		c, v0        float64
		leakR, iLoad float64
		vs, rs       float64
		dt           float64
		n            int
	}{
		{"charge-from-zero", 10e-6, 0, 0, 0, 3.3, 100, 5e-6, 30000},
		{"charge-with-load", 10e-6, 1.0, 0, 2e-3, 3.3, 100, 5e-6, 30000},
		{"charge-with-leak", 10e-6, 0.5, 50e3, 50e-9, 3.3, 100, 5e-6, 30000},
		{"near-equilibrium", 10e-6, 3.29, 0, 0, 3.3, 100, 5e-6, 100000},
		// v0 > 0: fixedLoad cuts off at exactly 0 V while the closed form
		// assumes constant draw — the lab never hops from exactly 0 V
		// either (a 0 V start sits on the zero-clamp threshold).
		{"soft-source", 10e-6, 0.05, 0, 100e-6, 3.0, 3000, 5e-6, 60000},
		{"short-chunk", 10e-6, 2.0, 50e3, 1e-3, 3.3, 100, 5e-6, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref, vRef := stepDriven(tc.c, tc.v0, tc.leakR, tc.iLoad, tc.vs, tc.rs, tc.dt, tc.n)

			cap := NewCapacitor(tc.c, tc.v0)
			cap.LeakR = tc.leakR
			r := NewRail(cap)
			r.VSource = &source.ConstantVoltage{V: tc.vs, Rs: tc.rs}
			vGot := r.AdvanceDriven(tc.n, tc.dt, tc.iLoad, tc.vs)

			if d := math.Abs(vGot - vRef); d > 1e-9+1e-9*vRef {
				t.Errorf("V after %d steps: closed form %.12f vs stepwise %.12f (Δ=%.3g)",
					tc.n, vGot, vRef, d)
			}
			relTol := func(a, b float64) float64 { return 1e-12 + 1e-8*math.Abs(b) }
			if d := math.Abs(r.ConsumedJ - ref.ConsumedJ); d > relTol(r.ConsumedJ, ref.ConsumedJ) {
				t.Errorf("ConsumedJ: closed form %.6g vs stepwise %.6g", r.ConsumedJ, ref.ConsumedJ)
			}
			if d := math.Abs(r.HarvestedJ - ref.HarvestedJ); d > relTol(r.HarvestedJ, ref.HarvestedJ) {
				t.Errorf("HarvestedJ: closed form %.6g vs stepwise %.6g", r.HarvestedJ, ref.HarvestedJ)
			}
			if d := math.Abs(r.LastSourceI - ref.LastSourceI); d > 1e-12+1e-8*math.Abs(ref.LastSourceI) {
				t.Errorf("LastSourceI: closed form %.6g vs stepwise %.6g", r.LastSourceI, ref.LastSourceI)
			}
			if d := math.Abs(r.Now() - ref.Now()); d > 0 {
				t.Errorf("clock: closed form %.17g vs stepwise %.17g", r.Now(), ref.Now())
			}
		})
	}
}

func TestPeekDrivenDoesNotMutate(t *testing.T) {
	cap := NewCapacitor(10e-6, 0.5)
	cap.LeakR = 50e3
	r := NewRail(cap)
	r.VSource = &source.ConstantVoltage{V: 3.3, Rs: 100}
	v, ok := r.PeekDriven(10000, 5e-6, 1e-6, 3.3)
	if !ok {
		t.Fatal("stable recurrence refused")
	}
	if v <= 0.5 {
		t.Errorf("predicted voltage %.3f should have charged", v)
	}
	if r.V() != 0.5 || r.Now() != 0 || r.ConsumedJ != 0 || r.HarvestedJ != 0 {
		t.Error("PeekDriven mutated the rail")
	}
	got := r.AdvanceDriven(10000, 5e-6, 1e-6, 3.3)
	if got != v {
		t.Errorf("AdvanceDriven %.12f disagrees with PeekDriven %.12f", got, v)
	}
}

func TestPeekDrivenUnstableRegimeRefuses(t *testing.T) {
	// dt comparable to the source RC constant drives the Euler factor
	// a ≤ 0: the closed form must refuse so the caller integrates
	// stepwise (there is no silent fallback on the driven path — a hop
	// is only committed after PeekDriven accepts).
	cap := NewCapacitor(1e-6, 1.0)
	r := NewRail(cap)
	r.VSource = &source.ConstantVoltage{V: 3.3, Rs: 1} // RC = 1 µs < dt
	if _, ok := r.PeekDriven(10, 5e-6, 0, 3.3); ok {
		t.Error("unstable recurrence accepted")
	}
	if r.V() != 1.0 {
		t.Error("refusal mutated the rail")
	}
}

func TestAdvanceDrivenClocksComparators(t *testing.T) {
	cap := NewCapacitor(10e-6, 0)
	r := NewRail(cap)
	r.VSource = &source.ConstantVoltage{V: 3.3, Rs: 100}
	var rose bool
	cmp := NewComparator(2.0, 2.5, func(k EdgeKind, v, tm float64) {
		if k == EdgeRising {
			rose = true
		}
	})
	cmp.Observe(0, 0) // arm below the band
	r.AddComparator(cmp)
	// Charge well above the band in one analytic jump.
	r.AdvanceDriven(20000, 5e-6, 0, 3.3)
	if r.V() <= 2.5 {
		t.Fatalf("V = %.3f, expected full charge", r.V())
	}
	if !rose {
		t.Error("comparator missed the rising edge across a driven advance")
	}
}
