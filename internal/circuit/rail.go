package circuit

import (
	"math"

	"repro/internal/source"
)

// Load is anything that draws current from the rail. The rail calls
// Current once per step with the present rail voltage and time; the load
// returns its draw in amperes. Loads that are off (e.g. a browned-out MCU)
// return ~0.
type Load interface {
	Current(v, t float64) float64
}

// LoadFunc adapts a plain function to the Load interface.
type LoadFunc func(v, t float64) float64

// Current implements Load.
func (f LoadFunc) Current(v, t float64) float64 { return f(v, t) }

// ConstantCurrentLoad draws a fixed current whenever the rail is above a
// minimum operating voltage.
type ConstantCurrentLoad struct {
	I    float64
	VMin float64
}

// Current implements Load.
func (l *ConstantCurrentLoad) Current(v, _ float64) float64 {
	if v < l.VMin {
		return 0
	}
	return l.I
}

// ResistiveLoad draws V/R.
type ResistiveLoad struct {
	R float64
}

// Current implements Load.
func (l *ResistiveLoad) Current(v, _ float64) float64 {
	if l.R <= 0 {
		return 0
	}
	return v / l.R
}

// EdgeKind distinguishes comparator events.
type EdgeKind int

// Comparator edge kinds.
const (
	EdgeFalling EdgeKind = iota // crossed below the low threshold
	EdgeRising                  // crossed above the high threshold
)

// Comparator watches the rail voltage and fires a callback on hysteretic
// threshold crossings — the voltage-interrupt mechanism hibernus and
// QuickRecall rely on to detect imminent supply failure.
type Comparator struct {
	Low, High float64 // hysteresis band: fires falling at Low, rising at High
	OnEdge    func(kind EdgeKind, v, t float64)

	state bool // true = above band
	armed bool
}

// NewComparator returns a comparator with the given hysteresis band.
// low must be ≤ high.
func NewComparator(low, high float64, onEdge func(EdgeKind, float64, float64)) *Comparator {
	return &Comparator{Low: low, High: high, OnEdge: onEdge}
}

// Observe feeds the comparator a new voltage sample at time t, firing
// OnEdge on band crossings. The first observation initialises state
// without firing.
func (c *Comparator) Observe(v, t float64) {
	if !c.armed {
		c.armed = true
		c.state = v >= c.High
		return
	}
	if c.state && v < c.Low {
		c.state = false
		if c.OnEdge != nil {
			c.OnEdge(EdgeFalling, v, t)
		}
	} else if !c.state && v >= c.High {
		c.state = true
		if c.OnEdge != nil {
			c.OnEdge(EdgeRising, v, t)
		}
	}
}

// Above reports whether the comparator currently considers the voltage
// above its band.
func (c *Comparator) Above() bool { return c.state }

// Rail is the single-node power rail: a storage capacitor charged by a
// voltage or power source (through an ideal diode, so the source never
// discharges the node) and discharged by the attached loads.
//
// The solver is explicit forward Euler on the capacitor voltage. With the
// default step of a few microseconds and RC constants ≥ hundreds of
// microseconds the local error is far below the threshold hysteresis the
// runtimes use, which is what matters for event ordering fidelity.
type Rail struct {
	// VSource and PSource are resolved into devirtualized samplers on the
	// first Step; set them before stepping begins, and call Rebind after
	// swapping either on a rail that has already stepped.
	VSource source.VoltageSource // either VSource or PSource (or both) may be set
	PSource source.PowerSource
	Cap     *Capacitor
	Loads   []Load
	Comps   []*Comparator

	// MaxSourceI limits the current a power source can push at very low
	// rail voltage (models converter current limits); 0 = 1 A default.
	MaxSourceI float64

	// Telemetry (cumulative, joules / coulombs).
	HarvestedJ float64 // energy delivered into the node by the source
	ConsumedJ  float64 // energy drawn by loads

	// Last-step observables (amperes), for controllers that need the
	// instantaneous P_h and P_c of the paper's eq. (3).
	LastSourceI float64
	LastLoadI   float64

	now float64

	// Bound source fast path (see bind): precomputed samplers and the
	// clamped series resistance. SeriesResistance is constant by the
	// VoltageSource contract, so hoisting it out of the per-step path
	// cannot change results.
	bound   bool
	voltFn  func(float64) float64
	powerFn func(float64) float64
	rs      float64
}

// NewRail returns a rail over the given storage capacitor.
func NewRail(cap *Capacitor) *Rail {
	return &Rail{Cap: cap, MaxSourceI: 1}
}

// AddLoad attaches a load to the rail.
func (r *Rail) AddLoad(l Load) { r.Loads = append(r.Loads, l) }

// AddComparator attaches a comparator watching the rail voltage.
func (r *Rail) AddComparator(c *Comparator) { r.Comps = append(r.Comps, c) }

// Now returns the rail's current simulated time in seconds.
func (r *Rail) Now() float64 { return r.now }

// V returns the present rail voltage.
func (r *Rail) V() float64 { return r.Cap.V }

// bind resolves the per-step source fast path: devirtualized samplers
// (source.VoltageFn/PowerFn) and the clamped series resistance. It runs
// lazily on the first sourceCurrent, so the per-step cost of staying
// bound is a single bool check; Rebind forces re-resolution after a
// mid-run source swap.
func (r *Rail) bind() {
	r.bound = true
	r.voltFn, r.powerFn = nil, nil
	if r.VSource != nil {
		r.voltFn = source.VoltageFn(r.VSource)
		r.rs = r.VSource.SeriesResistance()
		if r.rs <= 0 {
			r.rs = 1e-3
		}
	}
	if r.PSource != nil {
		r.powerFn = source.PowerFn(r.PSource)
	}
}

// Rebind discards the bound samplers so the next step re-resolves
// VSource/PSource. Call it after swapping a source on a rail that has
// already stepped.
func (r *Rail) Rebind() { r.bound = false }

// sourceCurrent computes the current the source pushes into the node at
// rail voltage v and time t.
func (r *Rail) sourceCurrent(v, t float64) float64 {
	if !r.bound {
		r.bind()
	}
	var i float64
	if r.voltFn != nil {
		vs := r.voltFn(t)
		if vs > v { // ideal series diode: no reverse current
			i += (vs - v) / r.rs
		}
	}
	if r.powerFn != nil {
		p := r.powerFn(t)
		if p > 0 {
			// Current-limited constant-power injection; at very low rail
			// voltage the converter runs at its current limit.
			limit := r.MaxSourceI
			if limit <= 0 {
				limit = 1
			}
			vEff := math.Max(v, 0.1)
			i += math.Min(p/vEff, limit)
		}
	}
	return i
}

// Step advances the rail by dt seconds: computes source and load currents
// at the present voltage, integrates the capacitor, updates telemetry, and
// clocks the comparators. It returns the rail voltage after the step.
func (r *Rail) Step(dt float64) float64 {
	t := r.now
	v := r.Cap.V
	iSrc := r.sourceCurrent(v, t)
	var iLoad float64
	if len(r.Loads) == 1 { // the common shape: one MCU on the rail
		iLoad = r.Loads[0].Current(v, t)
	} else {
		for _, l := range r.Loads {
			iLoad += l.Current(v, t)
		}
	}
	r.LastSourceI, r.LastLoadI = iSrc, iLoad
	r.Cap.Step(iSrc-iLoad, dt)
	r.HarvestedJ += iSrc * v * dt
	r.ConsumedJ += iLoad * v * dt
	r.now += dt
	for _, c := range r.Comps {
		c.Observe(r.Cap.V, r.now)
	}
	return r.Cap.V
}

// idleSeries evaluates n steps of the affine recurrence V' = a·V + b (the
// discrete form Step integrates when the source is blocked and the load
// draws a constant current), clamping at zero exactly like Capacitor.Step.
// It returns the final voltage and the sum of the n pre-step voltages
// (what Step's load-energy telemetry integrates over).
func idleSeries(v0, a, b float64, n int) (vEnd, sumV float64) {
	if n <= 0 {
		return v0, 0
	}
	if b >= 0 && a >= 1 { // non-decaying: degenerate, nothing to solve
		return v0, v0 * float64(n)
	}
	if a <= 0 {
		// dt is not small against the leak RC constant: the closed form
		// (and forward Euler itself) is outside its stable regime, so just
		// iterate the recurrence exactly.
		v := v0
		for k := 0; k < n; k++ {
			sumV += v
			v = a*v + b
			if v < 0 {
				v = 0
			}
		}
		return v, sumV
	}
	if v0 <= 0 && b <= 0 {
		return 0, 0
	}
	// Find the first step index at which the voltage would clamp to zero;
	// beyond it the node sits at 0 V and contributes nothing.
	m := n // steps evaluated before the clamp
	if a == 1 {
		// No leak: linear discharge V_k = v0 + k·b.
		if b < 0 {
			k := int(math.Ceil(-v0 / b))
			if k < m {
				m = k
			}
		}
		vEnd = v0 + float64(n)*b
		if n > m {
			vEnd = 0
		}
		sumV = float64(m)*v0 + b*float64(m)*float64(m-1)/2
		if vEnd < 0 {
			vEnd = 0
		}
		return vEnd, sumV
	}
	// Leaky decay toward the fixed point V* = b/(1−a): V_k = (v0−V*)·a^k + V*.
	vStar := b / (1 - a)
	if vStar < 0 && v0 > 0 {
		// The trajectory crosses zero where a^k = −V*/(v0−V*).
		ratio := -vStar / (v0 - vStar)
		k := int(math.Ceil(math.Log(ratio) / math.Log(a)))
		if k >= 0 && k < m {
			m = k
		}
	}
	am := math.Pow(a, float64(m))
	sumV = (v0-vStar)*(1-am)/(1-a) + float64(m)*vStar
	if m < n {
		vEnd = 0
	} else {
		vEnd = (v0-vStar)*am + vStar
		if vEnd < 0 {
			vEnd = 0
		}
	}
	if sumV < 0 {
		sumV = 0
	}
	return vEnd, sumV
}

// idleCoeffs returns the recurrence coefficients a, b for an idle step of
// dt with constant load iLoad on this rail's capacitor.
func (r *Rail) idleCoeffs(dt, iLoad float64) (a, b float64) {
	a = 1.0
	if r.Cap.LeakR > 0 {
		a = 1 - dt/(r.Cap.LeakR*r.Cap.C)
	}
	b = -iLoad * dt / r.Cap.C
	return a, b
}

// PeekIdle predicts, without mutating any state, the rail voltage after n
// idle steps of dt — the source diode blocked, a constant load current
// iLoad. Used to decide whether a fast-forward skip is safe.
func (r *Rail) PeekIdle(n int, dt, iLoad float64) float64 {
	if r.Cap.C <= 0 {
		return r.Cap.V
	}
	a, b := r.idleCoeffs(dt, iLoad)
	vEnd, _ := idleSeries(r.Cap.V, a, b, n)
	return vEnd
}

// advanceClock adds n steps of dt to the rail clock one step at a time —
// the same additions in the same order as n Step calls — so a skipped
// run samples time-discontinuous sources (square waves, gated bursts) at
// bit-identical instants to stepwise integration. A single aggregated
// n·dt add rounds differently, and at a waveform edge that last-ulp shift
// can move the sampled discontinuity to the neighbouring step.
func (r *Rail) advanceClock(n int, dt float64) {
	for k := 0; k < n; k++ {
		r.now += dt
	}
}

// AdvanceIdle advances the rail by n steps of dt in closed form, under the
// caller-guaranteed assumptions that the source is not conducting (diode
// blocked, or no source at all) and the attached loads draw a constant
// current iLoad throughout. It is the analytic equivalent of n calls to
// Step — same forward-Euler recurrence, same telemetry integral, same
// zero clamp — accurate to floating-point evaluation of the geometric
// series rather than bit-identical iteration.
//
// Comparators observe only the final voltage: a decaying pass through a
// threshold still fires its falling edge, but timed at the skip boundary
// rather than the exact crossing step. Callers that need exact crossing
// times must keep stepping instead.
func (r *Rail) AdvanceIdle(n int, dt, iLoad float64) float64 {
	if n <= 0 || dt <= 0 {
		return r.Cap.V
	}
	if r.Cap.C <= 0 {
		r.advanceClock(n, dt)
		return r.Cap.V
	}
	a, b := r.idleCoeffs(dt, iLoad)
	vEnd, sumV := idleSeries(r.Cap.V, a, b, n)
	r.Cap.V = vEnd
	r.ConsumedJ += iLoad * sumV * dt
	r.LastSourceI, r.LastLoadI = 0, iLoad
	r.advanceClock(n, dt)
	for _, c := range r.Comps {
		c.Observe(r.Cap.V, r.now)
	}
	return r.Cap.V
}

// drivenCoeffs returns the affine per-step recurrence V' = a·V + b that
// Step integrates while the bound voltage source conducts at a constant
// vs through its series resistance into a constant load iLoad:
//
//	V' = V + dt/C · ((vs−V)/rs − iLoad − V/LeakR)
//
// matching Capacitor.Step's pre-step leak exactly.
func (r *Rail) drivenCoeffs(dt, iLoad, vs float64) (a, b float64) {
	c := r.Cap.C
	a = 1 - dt/(r.rs*c)
	if r.Cap.LeakR > 0 {
		a -= dt / (r.Cap.LeakR * c)
	}
	b = (vs/r.rs - iLoad) * dt / c
	return a, b
}

// drivenSeries evaluates n steps of V' = a·V + b for 0 < a < 1, returning
// the final voltage plus the sum and sum-of-squares of the n pre-step
// voltages — the integrals behind the load- and harvest-energy telemetry.
// The trajectory is monotone between v0 and the fixed point b/(1−a); the
// caller guarantees it stays inside the capacitor's clamp range.
func drivenSeries(v0, a, b float64, n int) (vEnd, sumV, sumV2 float64) {
	vStar := b / (1 - a)
	c := v0 - vStar
	an := math.Pow(a, float64(n))
	fn := float64(n)
	g1 := (1 - an) / (1 - a)      // Σ a^k, k = 0..n−1
	g2 := (1 - an*an) / (1 - a*a) // Σ a^2k
	vEnd = c*an + vStar
	sumV = c*g1 + fn*vStar
	sumV2 = c*c*g2 + 2*c*vStar*g1 + fn*vStar*vStar
	return vEnd, sumV, sumV2
}

// PeekDriven predicts, without mutating any state, the rail voltage after
// n steps of dt with the voltage source conducting at the constant
// plateau voltage vs and the loads drawing a constant iLoad. ok=false
// means the affine recurrence has no stable closed form here (no
// capacitance, no voltage source, or dt too coarse against the source RC
// constant) and the caller must integrate stepwise.
func (r *Rail) PeekDriven(n int, dt, iLoad, vs float64) (float64, bool) {
	if !r.bound {
		r.bind()
	}
	if r.Cap.C <= 0 || r.voltFn == nil {
		return r.Cap.V, false
	}
	a, b := r.drivenCoeffs(dt, iLoad, vs)
	if a <= 0 || a >= 1 {
		return r.Cap.V, false
	}
	vEnd, _, _ := drivenSeries(r.Cap.V, a, b, n)
	return vEnd, true
}

// AdvanceDriven advances the rail by n steps of dt in closed form while
// the voltage source conducts at the constant plateau voltage vs into a
// constant load iLoad — the charging counterpart of AdvanceIdle. The
// caller guarantees what PeekDriven checked (a stable recurrence) plus
// that neither the zero clamp nor MaxV is reached inside the hop and that
// the source plateau covers it. The diode cannot stop conducting on its
// own: the recurrence's fixed point lies strictly below vs, so a
// trajectory starting below vs stays below it. Telemetry matches n Step
// calls to closed-form accuracy — HarvestedJ integrates (vs−V)·V/rs·dt
// and ConsumedJ integrates iLoad·V·dt over the pre-step voltages, and
// the Last* observables reflect the final step. Comparators observe only
// the final voltage, as with AdvanceIdle.
func (r *Rail) AdvanceDriven(n int, dt, iLoad, vs float64) float64 {
	if n <= 0 || dt <= 0 {
		return r.Cap.V
	}
	if !r.bound {
		r.bind()
	}
	if r.Cap.C <= 0 {
		r.advanceClock(n, dt)
		return r.Cap.V
	}
	a, b := r.drivenCoeffs(dt, iLoad, vs)
	v0 := r.Cap.V
	vEnd, sumV, sumV2 := drivenSeries(v0, a, b, n)
	vPen := v0 // pre-step voltage of the final step
	if n > 1 {
		vPen, _, _ = drivenSeries(v0, a, b, n-1)
	}
	r.Cap.V = vEnd
	r.HarvestedJ += (vs*sumV - sumV2) / r.rs * dt
	r.ConsumedJ += iLoad * sumV * dt
	r.LastSourceI = (vs - vPen) / r.rs
	r.LastLoadI = iLoad
	r.advanceClock(n, dt)
	for _, c := range r.Comps {
		c.Observe(r.Cap.V, r.now)
	}
	return r.Cap.V
}

// Run steps the rail until time end, invoking observe (if non-nil) after
// every step. The step count is computed up front so accumulated floating-
// point drift in the clock cannot add or drop a step.
func (r *Rail) Run(end, dt float64, observe func(t, v float64)) {
	if dt <= 0 || end <= r.now {
		return
	}
	n := int(math.Round((end - r.now) / dt))
	for i := 0; i < n; i++ {
		v := r.Step(dt)
		if observe != nil {
			observe(r.now, v)
		}
	}
}
