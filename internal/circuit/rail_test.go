package circuit

import (
	"math"
	"testing"

	"repro/internal/source"
	"repro/internal/units"
)

func TestComparatorHysteresis(t *testing.T) {
	var events []EdgeKind
	c := NewComparator(2.0, 2.5, func(k EdgeKind, v, tm float64) {
		events = append(events, k)
	})
	// First observation arms without firing.
	c.Observe(3.0, 0)
	if len(events) != 0 {
		t.Fatal("arming observation must not fire")
	}
	if !c.Above() {
		t.Fatal("should start above band")
	}
	// Dip into band: no event (hysteresis).
	c.Observe(2.2, 1)
	if len(events) != 0 {
		t.Fatal("in-band sample must not fire")
	}
	// Cross below low: falling edge.
	c.Observe(1.9, 2)
	if len(events) != 1 || events[0] != EdgeFalling {
		t.Fatalf("expected falling edge, got %v", events)
	}
	// Rise into band: nothing.
	c.Observe(2.3, 3)
	if len(events) != 1 {
		t.Fatal("in-band rise must not fire")
	}
	// Cross above high: rising edge.
	c.Observe(2.6, 4)
	if len(events) != 2 || events[1] != EdgeRising {
		t.Fatalf("expected rising edge, got %v", events)
	}
}

func TestComparatorNilCallback(t *testing.T) {
	c := NewComparator(1, 2, nil)
	c.Observe(3, 0)
	c.Observe(0.5, 1) // must not panic
	if c.Above() {
		t.Error("state should be below after falling")
	}
}

func TestRailChargesFromVoltageSource(t *testing.T) {
	// DC source charging RC: V(t) = Vs(1 - e^{-t/RC}).
	cap := NewCapacitor(100e-6, 0)
	r := NewRail(cap)
	r.VSource = &source.ConstantVoltage{V: 3.0, Rs: 1000} // τ = 100 ms
	r.Run(0.1, 10e-6, nil)
	want := 3.0 * (1 - math.Exp(-1))
	if math.Abs(cap.V-want)/want > 0.005 {
		t.Errorf("RC charge after τ: V = %g, want ≈%g", cap.V, want)
	}
}

func TestRailDiodeBlocksReverse(t *testing.T) {
	// Cap pre-charged above the source: no discharge through the source.
	cap := NewCapacitor(100e-6, 3.0)
	r := NewRail(cap)
	r.VSource = &source.ConstantVoltage{V: 1.0, Rs: 100}
	r.Run(0.05, 10e-6, nil)
	if cap.V < 3.0-1e-9 {
		t.Errorf("diode leaked: V = %g", cap.V)
	}
}

func TestRailPowerSourceCurrentLimit(t *testing.T) {
	cap := NewCapacitor(100e-6, 0)
	r := NewRail(cap)
	r.PSource = &source.ConstantPower{P: 10} // would be 100 A at 0.1 V
	r.MaxSourceI = 0.01
	v := r.Step(1e-3)
	// ΔV = I·dt/C = 0.01·1e-3/100e-6 = 0.1 V exactly at the limit.
	if math.Abs(v-0.1) > 1e-9 {
		t.Errorf("current-limited step V = %g, want 0.1", v)
	}
}

func TestRailLoadDischarges(t *testing.T) {
	cap := NewCapacitor(100e-6, 3.0)
	r := NewRail(cap)
	r.AddLoad(&ConstantCurrentLoad{I: 1e-3, VMin: 1.0})
	r.Run(0.1, 10e-6, nil) // 1 mA for 100 ms = 1 V drop
	if math.Abs(cap.V-2.0) > 1e-6 {
		t.Errorf("V after discharge = %g, want 2.0", cap.V)
	}
	// Load cuts out below VMin.
	r.Run(0.3, 10e-6, nil)
	if cap.V < 1.0-1e-6 {
		t.Errorf("load drew below its VMin: %g", cap.V)
	}
}

func TestRailEnergyAccounting(t *testing.T) {
	// Source energy in = capacitor energy + load energy (no leakage).
	cap := NewCapacitor(470e-6, 0)
	r := NewRail(cap)
	r.VSource = &source.ConstantVoltage{V: 3.3, Rs: 100}
	r.AddLoad(&ResistiveLoad{R: 10e3})
	r.Run(0.5, 5e-6, nil)
	// HarvestedJ counts energy into the node (after the source resistance
	// loss), so it must equal stored + consumed.
	balance := cap.Energy() + r.ConsumedJ
	if !units.ApproxEqual(r.HarvestedJ, balance, 0.01) {
		t.Errorf("energy imbalance: harvested %g vs stored+consumed %g",
			r.HarvestedJ, balance)
	}
}

func TestRailComparatorFiresOnOutage(t *testing.T) {
	cap := NewCapacitor(47e-6, 3.3)
	r := NewRail(cap)
	sq := &source.SquareWaveVoltage{High: 3.3, OnTime: 0.05, OffTime: 0.05, Rs: 100}
	r.VSource = sq
	r.AddLoad(&ConstantCurrentLoad{I: 2e-3, VMin: 1.0})
	falls, rises := 0, 0
	r.AddComparator(NewComparator(2.0, 3.0, func(k EdgeKind, v, tm float64) {
		if k == EdgeFalling {
			falls++
		} else {
			rises++
		}
	}))
	r.Run(0.5, 5e-6, nil)
	// 5 outages in 0.5 s at 10 Hz square wave: expect ≈5 falling edges and
	// recoveries.
	if falls < 4 || falls > 6 {
		t.Errorf("falling edges = %d, want ≈5", falls)
	}
	if rises < 4 || rises > 6 {
		t.Errorf("rising edges = %d, want ≈5", rises)
	}
}

func TestRailObserveCallback(t *testing.T) {
	cap := NewCapacitor(1e-6, 1)
	r := NewRail(cap)
	n := 0
	var lastT float64
	r.Run(0.001, 1e-4, func(tm, v float64) {
		n++
		if tm <= lastT {
			t.Fatal("time must advance monotonically")
		}
		lastT = tm
	})
	if n != 10 {
		t.Errorf("observe called %d times, want 10", n)
	}
	if math.Abs(r.Now()-0.001) > 1e-12 {
		t.Errorf("Now() = %g, want 0.001", r.Now())
	}
}

func TestLoadFuncAdapter(t *testing.T) {
	l := LoadFunc(func(v, _ float64) float64 { return v / 100 })
	if l.Current(5, 0) != 0.05 {
		t.Error("LoadFunc adapter broken")
	}
}

func TestResistiveLoadZeroR(t *testing.T) {
	l := &ResistiveLoad{R: 0}
	if l.Current(3, 0) != 0 {
		t.Error("zero resistance should draw 0 (guard)")
	}
}

func TestRailHalfWaveRectifiedSineShape(t *testing.T) {
	// The Fig. 7 supply: half-wave rectified sine charges the cap each
	// positive half-cycle; with a load, V ripples between charge peaks.
	gen := &source.SignalGenerator{Amplitude: 3.6, Frequency: 4.7, Rs: 200}
	cap := NewCapacitor(22e-6, 0)
	r := NewRail(cap)
	r.VSource = source.HalfWave(gen, 0.2)
	r.AddLoad(&ConstantCurrentLoad{I: 500e-6, VMin: 1.8})
	var minV, maxV float64 = math.Inf(1), math.Inf(-1)
	r.Run(2.0, 5e-6, func(tm, v float64) {
		if tm > 0.5 { // after initial charge
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	})
	if maxV < 2.5 {
		t.Errorf("rail never charged: max %g", maxV)
	}
	if maxV-minV < 0.2 {
		t.Errorf("expected ripple across half-cycles, got %g..%g", minV, maxV)
	}
}
