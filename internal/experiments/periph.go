package experiments

import (
	"fmt"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/periph"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/transient"
)

func init() {
	register(Experiment{
		ID:    "periph",
		Title: "Peripheral state across outages: the discussion-section gap, quantified",
		Run:   runPeriph,
	})
}

// runPeriph compares naive hibernus (CPU+RAM snapshots only) against the
// peripheral-aware extension on a sensing workload whose correctness
// depends on ADC calibration registers and a radio configuration
// handshake — the exact failure mode the paper's discussion warns about.
func runPeriph() (*Output, error) {
	type outcome struct {
		res  lab.Result
		bank *periph.Bank
	}
	run := func(aware bool) (outcome, error) {
		var bank *periph.Bank
		res, err := lab.Run(lab.Setup{
			Workload:  periph.SenseWorkload(64, 3, programs.DefaultLayout()),
			Params:    mcu.DefaultParams(),
			Configure: func(d *mcu.Device) { bank = periph.Attach(d, aware) },
			MakeRuntime: func(d *mcu.Device) mcu.Runtime {
				return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
			},
			VSource:  &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
			C:        10e-6,
			LeakR:    50e3,
			Duration: 3.0,
		})
		return outcome{res: res, bank: bank}, err
	}
	outs, err := sweep.Map(nil, 2, func(c sweep.Case) (outcome, error) {
		return run(c.Index == 1)
	})
	if err != nil {
		return nil, err
	}
	naive, aware := outs[0], outs[1]

	row := func(name string, o outcome) []string {
		return []string{
			name,
			fmt.Sprintf("%d", o.res.Completions),
			fmt.Sprintf("%d", o.res.WrongResults),
			fmt.Sprintf("%d", len(o.bank.TxDelivered)),
			fmt.Sprintf("%d", o.bank.TxDropped),
			fmt.Sprintf("%d", o.res.Stats.BrownOuts),
		}
	}
	tbl := Table{
		Title: "Calibrated sensing (ADC gain + radio handshake) across 20 outages",
		Columns: []string{"runtime", "correct results", "wrong results",
			"packets delivered", "packets dropped", "brown-outs"},
		Rows: [][]string{
			row("hibernus (CPU+RAM only)", naive),
			row("hibernus + peripheral state", aware),
		},
	}
	out := &Output{
		ID:          "periph",
		Description: "restoring computation without peripheral state resumes on a misconfigured sensor and a deaf radio",
		Tables:      []Table{tbl},
	}
	out.Note("paper discussion: \"work to date has primarily focused on computation, and not the plethora of peripherals\"; measured: naive restore yields %d wrong results and drops %d packets, the peripheral-aware extension yields %d wrong results and drops %d",
		naive.res.WrongResults, naive.bank.TxDropped,
		aware.res.WrongResults, aware.bank.TxDropped)
	if aware.res.WrongResults != 0 || aware.bank.TxDropped != 0 {
		return nil, fmt.Errorf("periph: aware runtime should be clean")
	}
	return out, nil
}
