// Package experiments contains one reproduction harness per figure and
// equation of the paper's evaluation. Each experiment runs the relevant
// simulation, produces structured tables and traces, and states the shape
// finding the paper reported so the benchmark layer (and a reader) can
// check it. cmd/figures regenerates everything; the root bench_test.go
// wraps each experiment in a testing.B target.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Table is a titled grid of rendered cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Render returns the table as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Output is everything an experiment produced.
type Output struct {
	ID          string
	Description string
	Tables      []Table
	Recorder    *trace.Recorder // time series for figure regeneration, if any
	Plots       []string        // pre-rendered ASCII charts
	Notes       []string        // shape findings, paper-vs-measured
}

// Note appends a finding.
func (o *Output) Note(format string, args ...any) {
	o.Notes = append(o.Notes, fmt.Sprintf(format, args...))
}

// Render returns the full textual report of the experiment.
func (o *Output) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", o.ID, o.Description)
	for i := range o.Tables {
		b.WriteString(o.Tables[i].Render())
		b.WriteByte('\n')
	}
	for _, p := range o.Plots {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	for _, n := range o.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment is a registered reproduction target.
type Experiment struct {
	ID    string // e.g. "fig7", "eq5"
	Title string // what the paper's artefact shows
	Run   func() (*Output, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments sorted by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
