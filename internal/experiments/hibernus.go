package experiments

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/scenario"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/transient"
)

func init() {
	register(Experiment{
		ID:    "fig7",
		Title: "hibernus executing an FFT across a half-wave rectified sine supply",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "hibernus-PN: DFS modulation against a rectified micro wind turbine",
		Run:   runFig8,
	})
}

// fig7SupplyHz is the supply frequency for the Fig. 7 reproduction. The
// paper drives hibernus from a signal generator; the published waveform
// uses a low-frequency half-wave rectified sine with the FFT completing in
// the third supply cycle.
const fig7SupplyHz = 20.0

// Fig7Spec is the declarative form of the Fig. 7 reproduction — the same
// values as examples/scenarios/fig7-rectified-sine-hibernus.json (a test
// pins the two together), so `ehsim -scenario` on that file reproduces
// this harness's numbers exactly.
func Fig7Spec() *scenario.Spec {
	return &scenario.Spec{
		Name:        "fig7-rectified-sine-hibernus",
		Description: "Hibernus executing a 128-point FFT across a 20 Hz half-wave rectified sine supply: one snapshot per dip at V_H, restore/wake at V_R, completion a few supply cycles after the start. This file is the declarative twin of the registered fig7 experiment (cmd/figures -only fig7); a test pins the two together.",
		Paper:       "conf_date_MerrettA17 §III, Fig. 7",
		Workload:    "fft128",
		Device:      scenario.DeviceSpec{FreqIndex: scenario.IntPtr(1)}, // 2 MHz: the FFT spans several supply cycles
		Storage:     scenario.StorageSpec{C: 10e-6},
		Source: scenario.SourceSpec{
			Name: "rectified-sine",
			Params: map[string]scenario.Value{
				"amplitude": 3.6, "freq": fig7SupplyHz, "rs": 150, "diodev": 0.2,
			},
		},
		Runtime: scenario.RuntimeSpec{
			Name:   "hibernus",
			Params: map[string]scenario.Value{"margin": 1.05, "vrheadroom": 0.3},
		},
		Duration: 0.5,
	}
}

// runFig7 reproduces the hibernus waveform: V_CC riding the rectified
// supply, a single snapshot per dip at V_H, a restore/wake at V_R, and the
// FFT completing a few supply cycles after it started. The Setup is
// compiled from Fig7Spec — the declarative round trip — with the
// harness-only observers (recorder, event timestamps, runtime capture)
// layered on after compilation.
func runFig7() (*Output, error) {
	rec := trace.NewRecorder()
	rec.SetInterval(0.5e-3)

	s, err := Fig7Spec().Setup()
	if err != nil {
		return nil, err
	}
	var h *transient.Hibernus
	makeRuntime := s.MakeRuntime
	s.MakeRuntime = func(d *mcu.Device) mcu.Runtime {
		rt := makeRuntime(d)
		h = rt.(*transient.Hibernus)
		return rt
	}

	var snapshotTimes, wakeTimes []float64
	var lastSaves, lastWakes int
	s.Recorder = rec
	s.OnTick = func(t float64, d *mcu.Device, rail *circuit.Rail) {
		if d.Stats.SavesDone > lastSaves {
			lastSaves = d.Stats.SavesDone
			snapshotTimes = append(snapshotTimes, t)
		}
		if w := d.Stats.WakeNoRestore + d.Stats.Restores; w > lastWakes {
			lastWakes = w
			wakeTimes = append(wakeTimes, t)
		}
	}
	res, err := lab.Run(s)
	if err != nil {
		return nil, err
	}

	period := 1.0 / fig7SupplyHz
	completionCycle := -1
	if res.FirstCompletion >= 0 {
		completionCycle = int(res.FirstCompletion/period) + 1
	}
	out := &Output{
		ID:          "fig7",
		Description: "hibernus riding a half-wave rectified sine; FFT completes across supply cycles",
		Recorder:    rec,
	}
	out.Tables = append(out.Tables, Table{
		Title:   "Run summary",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"supply", fmt.Sprintf("%.1f Hz half-wave rectified sine, 3.6 V peak", fig7SupplyHz)},
			{"V_H (eq. 4)", fmt.Sprintf("%.2f V", h.VH)},
			{"V_R", fmt.Sprintf("%.2f V", h.VR)},
			{"snapshots", fmt.Sprintf("%d", res.Stats.SavesDone)},
			{"restores", fmt.Sprintf("%d", res.Stats.Restores)},
			{"wakes without restore", fmt.Sprintf("%d", res.Stats.WakeNoRestore)},
			{"first FFT completion", fmt.Sprintf("%.1f ms (supply cycle %d)", res.FirstCompletion*1e3, completionCycle)},
			{"wrong results", fmt.Sprintf("%d", res.WrongResults)},
		},
	})
	if vcc := rec.Series("vcc"); vcc != nil {
		out.Plots = append(out.Plots, trace.Plot(vcc, 96, 14))
	}
	out.Note("paper: snapshot on each V_H crossing, restore at V_R, FFT completes in the 3rd supply cycle; measured completion in cycle %d with %d snapshots over %d cycles",
		completionCycle, res.Stats.SavesDone, int(0.5/period))
	if res.WrongResults > 0 {
		return nil, fmt.Errorf("fig7: %d corrupted completions", res.WrongResults)
	}
	_ = snapshotTimes
	_ = wakeTimes
	return out, nil
}

// fig8Turbine returns the rectified-turbine supply of the Fig. 8 run.
func fig8Turbine() source.VoltageSource {
	t := &source.WindTurbine{
		PeakVoltage: 4.5,
		ACFrequency: 8,
		GustStart:   0.3,
		GustRise:    0.5,
		GustHold:    2.2,
		GustFall:    0.8,
		Rs:          150,
	}
	return source.HalfWave(t, 0.2)
}

// runFig8 compares hibernus-PN against static-frequency hibernus on the
// turbine gust, reporting the DFS trace and the uninterrupted-operation
// window.
func runFig8() (*Output, error) {
	type runOut struct {
		res     lab.Result
		stretch float64
		rec     *trace.Recorder
	}
	run := func(pn bool) (runOut, error) {
		rec := trace.NewRecorder()
		rec.SetInterval(2e-3)
		params := mcu.DefaultParams()
		if !pn {
			params.FreqIndex = 4 // 16 MHz static baseline
		}
		var longest, cur, last float64
		s := lab.Setup{
			Workload: programs.FFT(64, programs.DefaultLayout()),
			Params:   params,
			MakeRuntime: func(d *mcu.Device) mcu.Runtime {
				if pn {
					return powerneutral.NewHibernusPN(d, 330e-6, 1.1, 0.35, 3.0)
				}
				return transient.NewHibernus(d, 330e-6, 1.1, 0.35)
			},
			VSource:  fig8Turbine(),
			C:        330e-6,
			Duration: 5.0,
			Recorder: rec,
			OnTick: func(t float64, d *mcu.Device, rail *circuit.Rail) {
				dt := t - last
				last = t
				switch d.Mode() {
				case mcu.ModeActive, mcu.ModeSaving, mcu.ModeRestoring:
					cur += dt
					longest = math.Max(longest, cur)
				default:
					cur = 0
				}
			},
		}
		res, err := lab.Run(s)
		return runOut{res: res, stretch: longest, rec: rec}, err
	}

	// The PN system and its static baseline share nothing but the supply —
	// run them as a two-case sweep.
	outs, err := sweep.Map(nil, 2, func(c sweep.Case) (runOut, error) {
		return run(c.Index == 0)
	})
	if err != nil {
		return nil, err
	}
	pn, plain := outs[0], outs[1]

	out := &Output{
		ID:          "fig8",
		Description: "power-neutral DFS against a rectified wind turbine gust",
		Recorder:    pn.rec,
	}
	out.Tables = append(out.Tables, Table{
		Title:   "hibernus-PN vs static-frequency hibernus (same supply)",
		Columns: []string{"metric", "hibernus-PN", "hibernus (16 MHz static)"},
		Rows: [][]string{
			{"completions", fmt.Sprintf("%d", pn.res.Completions), fmt.Sprintf("%d", plain.res.Completions)},
			{"snapshots", fmt.Sprintf("%d", pn.res.Stats.SavesStarted), fmt.Sprintf("%d", plain.res.Stats.SavesStarted)},
			{"restores", fmt.Sprintf("%d", pn.res.Stats.Restores), fmt.Sprintf("%d", plain.res.Stats.Restores)},
			{"longest uninterrupted run", fmt.Sprintf("%.2f s", pn.stretch), fmt.Sprintf("%.2f s", plain.stretch)},
			{"energy consumed", fmt.Sprintf("%.1f mJ", pn.res.ConsumedJ*1e3), fmt.Sprintf("%.1f mJ", plain.res.ConsumedJ*1e3)},
		},
	})
	if vcc := pn.rec.Series("vcc"); vcc != nil {
		out.Plots = append(out.Plots, trace.Plot(vcc, 96, 12))
	}
	if freq := pn.rec.Series("freq"); freq != nil {
		out.Plots = append(out.Plots, trace.Plot(freq, 96, 8))
	}
	out.Note("paper: DFS modulation sustains V_CC through the gust without save/restore overhead; measured uninterrupted window %.2f s (PN) vs %.2f s (static), snapshots %d vs %d",
		pn.stretch, plain.stretch, pn.res.Stats.SavesStarted, plain.res.Stats.SavesStarted)
	return out, nil
}
