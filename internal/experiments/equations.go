package experiments

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/eneutral"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/scenario"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/transient"
	"repro/internal/units"
)

func init() {
	register(Experiment{
		ID:    "eq1",
		Title: "Energy-neutral WSN: adaptive duty-cycling satisfies eq. (1)/(2) where fixed duty fails",
		Run:   runEq1,
	})
	register(Experiment{
		ID:    "eq3",
		Title: "Power-neutral tracking quality vs storage size",
		Run:   runEq3,
	})
	register(Experiment{
		ID:    "eq4",
		Title: "Hibernate-threshold boundary: eq. (4) margins vs snapshot survival",
		Run:   runEq4,
	})
	register(Experiment{
		ID:    "eq5",
		Title: "hibernus vs QuickRecall crossover frequency",
		Run:   runEq5,
	})
	register(Experiment{
		ID:    "runtimes",
		Title: "Transient runtime comparison on a common intermittent supply",
		Run:   runRuntimes,
	})
}

// runEq1 pits the Kansal-adaptive node against fixed-duty baselines over
// four solar days.
func runEq1() (*Output, error) {
	variants := []struct {
		ctl  func() eneutral.Controller
		duty float64
	}{
		{func() eneutral.Controller { return eneutral.NewKansal() }, 0.2},
		{func() eneutral.Controller { return &eneutral.FixedController{Value: 0.8} }, 0.8},
		{func() eneutral.Controller { return &eneutral.FixedController{Value: 0.02} }, 0.02},
	}
	results, err := sweep.Map(nil, len(variants), func(c sweep.Case) (eneutral.Result, error) {
		v := variants[c.Index]
		n := eneutral.NewNode(20, 0.6, source.DefaultPhotovoltaic())
		n.PActive = 3e-3
		n.PSleep = 3e-6
		n.Duty = v.duty
		n.Controller = v.ctl()
		return n.Simulate(4*units.Day, 10, units.Day), nil
	})
	if err != nil {
		return nil, err
	}
	adaptive, greedy, timid := results[0], results[1], results[2]

	row := func(name string, r eneutral.Result) []string {
		return []string{
			name,
			fmt.Sprintf("%.1f%%", r.WorstWindow()*100),
			fmt.Sprintf("%d", r.Violations),
			fmt.Sprintf("%.1f h", r.DowntimeSec/3600),
			fmt.Sprintf("%.1f h", r.ActiveSec/3600),
			fmt.Sprintf("%.2f", r.FinalSoC),
		}
	}
	tbl := Table{
		Title: "Four solar days, 20 J battery, 3 mW active load",
		Columns: []string{"controller", "worst eq.(1) imbalance", "eq.(2) violations",
			"downtime", "productive time", "final SoC"},
		Rows: [][]string{
			row("kansal-adaptive", adaptive),
			row("fixed 80%", greedy),
			row("fixed 2%", timid),
		},
	}
	out := &Output{
		ID:          "eq1",
		Description: "energy-neutrality over daily windows (eq. 1) and supply maintenance (eq. 2)",
		Tables:      []Table{tbl},
	}
	out.Note("adaptive: worst imbalance %.1f%%, %d violations; greedy fixed duty dies (%d violations); timid duty wastes %.0f%% of the adaptive node's productive time",
		adaptive.WorstWindow()*100, adaptive.Violations, greedy.Violations,
		100*(1-timid.ActiveSec/math.Max(adaptive.ActiveSec, 1)))
	if adaptive.Violations != 0 {
		return nil, fmt.Errorf("eq1: adaptive controller violated eq. (2)")
	}
	return out, nil
}

// runEq3 sweeps the rail capacitance under the power-neutral governor and
// quantifies the taxonomy's central trade: with minimal storage the rail
// voltage swings on every supply pulse, forcing the governor into tight
// instantaneous matching (small windowed eq. (3) error, large V_CC
// excursion pressure); with generous storage the buffer absorbs the
// mismatch and consumption needn't track harvest at short timescales at
// all — the system is drifting from power-neutral toward energy-neutral
// operation along Fig. 2's storage axis.
func runEq3() (*Output, error) {
	caps := []float64{47e-6, 100e-6, 220e-6, 470e-6, 1000e-6}
	tbl := Table{
		Title:   "Governed MCU on a 20 Hz rectified supply, V target 3.0 V",
		Columns: []string{"C", "windowed eq.(3) error", "V_CC excursion", "brown-outs", "completions"},
	}
	type eq3Out struct {
		res lab.Result
		st  powerneutral.TrackingStats
	}
	outs, err := sweep.Map(nil, len(caps), func(c sweep.Case) (eq3Out, error) {
		gov := powerneutral.NewGovernor(3.0)
		gov.Hysteresis = 0.25
		tr := powerneutral.NewTracker()
		gen := &source.SignalGenerator{Amplitude: 4.5, Frequency: 20, Rs: 100}
		s := lab.Setup{
			Workload: programs.FFT(64, programs.DefaultLayout()),
			Params:   mcu.DefaultParams(),
			VSource:  source.HalfWave(gen, 0.2),
			C:        caps[c.Index],
			V0:       3.0,
			Duration: 2.0,
			Dt:       5e-6,
		}
		s.OnTick = func(t float64, d *mcu.Device, rail *circuit.Rail) {
			gov.Act(t, d, rail.V())
			tr.Observe(rail, rail.V(), s.Dt)
		}
		res, err := lab.Run(s)
		if err != nil {
			return eq3Out{}, err
		}
		return eq3Out{res: res, st: tr.Stats()}, nil
	})
	if err != nil {
		return nil, err
	}
	var errs []float64
	for i, o := range outs {
		errs = append(errs, o.st.RelativeError())
		tbl.Rows = append(tbl.Rows, []string{
			units.Format(caps[i], "F"),
			fmt.Sprintf("%.3f", o.st.RelativeError()),
			fmt.Sprintf("%.2f V", o.st.VRange()),
			fmt.Sprintf("%d", o.res.Stats.BrownOuts),
			fmt.Sprintf("%d", o.res.Completions),
		})
	}
	out := &Output{
		ID:          "eq3",
		Description: "power-neutral tracking vs storage (the storage-axis continuum)",
		Tables:      []Table{tbl},
	}
	out.Note("tracking error grows from %.3f at %s to %.3f at %s: minimal storage FORCES eq. (3) to hold at short timescales, while added storage relaxes the system toward energy-neutral buffering",
		errs[0], units.Format(caps[0], "F"), errs[len(errs)-1], units.Format(caps[len(caps)-1], "F"))
	return out, nil
}

// Eq4Spec is the declarative form of the eq. (4) margin sweep: the
// standard square-wave testbed with a sweep axis over the hibernus guard
// margin — the spec-driven twin of runEq4's hand-built grid.
func Eq4Spec() *scenario.Spec {
	return &scenario.Spec{
		Name:        "eq4-margin-sweep",
		Description: "hibernus V_H margin sweep on the square-wave testbed: under-margined eq. (4) thresholds abort snapshots",
		Paper:       "conf_date_MerrettA17 §II.B, eq. (4)",
		Workload:    "sieve3000",
		Storage:     scenario.StorageSpec{C: 10e-6, LeakR: 50e3},
		Source:      scenario.SourceSpec{Name: "square"},
		Runtime: scenario.RuntimeSpec{
			Name:   "hibernus",
			Params: map[string]scenario.Value{"vrheadroom": 0.35},
		},
		Duration: 3.0,
		Sweep: []scenario.Axis{
			{Param: "runtime.margin", Values: []scenario.Value{0.80, 0.90, 0.95, 1.00, 1.10, 1.25}},
		},
	}
}

// runEq4 sweeps the guard margin on the eq. (4) threshold. Below 1.0 the
// snapshot energy budget is violated and saves are cut off; at and above
// 1.0 every save survives. Cases come from Eq4Spec's sweep axis; the
// harness wraps each compiled Setup only to capture the calibrated V_H.
func runEq4() (*Output, error) {
	sp := Eq4Spec()
	var margins []float64
	for _, v := range sp.Sweep[0].Values {
		margins = append(margins, float64(v))
	}
	tbl := Table{
		Title:   "hibernus V_H margin sweep (10 µF rail, square-wave outages)",
		Columns: []string{"margin on eq.(4) V_H", "V_H", "saves started", "saves aborted", "completions"},
	}
	type eq4Out struct {
		res lab.Result
		vh  float64
	}
	outs, err := sweep.MapGrid(nil, sp.Grid(), func(c sweep.Case) (eq4Out, error) {
		s, err := sp.SetupAt(c)
		if err != nil {
			return eq4Out{}, err
		}
		var h *transient.Hibernus
		makeRuntime := s.MakeRuntime
		s.MakeRuntime = func(d *mcu.Device) mcu.Runtime {
			rt := makeRuntime(d)
			h = rt.(*transient.Hibernus)
			return rt
		}
		res, err := lab.Run(s)
		if err != nil {
			return eq4Out{}, err
		}
		return eq4Out{res: res, vh: h.VH}, nil
	})
	if err != nil {
		return nil, err
	}
	var failBelow, okAbove bool
	for i, o := range outs {
		m, res := margins[i], o.res
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.2f", m),
			fmt.Sprintf("%.2f V", o.vh),
			fmt.Sprintf("%d", res.Stats.SavesStarted),
			fmt.Sprintf("%d", res.Stats.SavesAborted),
			fmt.Sprintf("%d", res.Completions),
		})
		if m < 0.95 && res.Stats.SavesAborted > 0 {
			failBelow = true
		}
		if m >= 1.0 && res.Stats.SavesAborted == 0 && res.Completions > 0 {
			okAbove = true
		}
	}
	out := &Output{
		ID:          "eq4",
		Description: "the eq. (4) energy budget is a real boundary: under-margined thresholds abort snapshots",
		Tables:      []Table{tbl},
	}
	out.Note("saves aborted below the eq. (4) threshold: %v; clean completion at margin ≥ 1.0: %v",
		failBelow, okAbove)
	if !okAbove {
		return nil, fmt.Errorf("eq4: margin ≥ 1.0 failed to complete cleanly")
	}
	return out, nil
}

// runEq5 sweeps the supply interruption frequency and measures the energy
// per completed iteration for hibernus (split SRAM system) vs QuickRecall
// (unified FRAM system), locating the measured crossover and comparing it
// with the analytic eq. (5) prediction.
func runEq5() (*Output, error) {
	freqs := []float64{2, 5, 10, 20, 40}
	tbl := Table{
		Title:   "Energy per completed FFT-64 vs outage frequency",
		Columns: []string{"outage freq", "hibernus (µJ/op)", "quickrecall (µJ/op)", "winner"},
	}
	// The full comparison is a 5×2 grid — outage frequency × memory system —
	// of independent six-second runs: exactly the shape the sweep engine
	// fans out. Row-major order means results arrive [f0/hib, f0/qr, f1/hib, ...].
	grid := sweep.NewGrid().
		Floats("freq", freqs...).
		Bools("unified", false, true)
	runs, err := sweep.MapGrid(nil, grid, func(c sweep.Case) (lab.Result, error) {
		unified := c.Bool("unified")
		period := 1.0 / c.Float("freq")
		layout := programs.DefaultLayout()
		params := mcu.DefaultParams()
		if unified {
			layout = programs.UnifiedNVLayout()
			params = mcu.UnifiedNVParams()
		}
		s := lab.Setup{
			Workload: programs.FFT(64, layout),
			Params:   params,
			MakeRuntime: func(d *mcu.Device) mcu.Runtime {
				if unified {
					return transient.NewQuickRecall(d, 10e-6, 1.1, 0.35)
				}
				return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
			},
			VSource: &source.SquareWaveVoltage{
				High: 3.3, OnTime: period / 2, OffTime: period / 2, Rs: 100,
			},
			C:        10e-6,
			Duration: 6.0,
		}
		return lab.Run(s)
	})
	if err != nil {
		return nil, err
	}

	var hibE, qrE []float64
	for i, f := range freqs {
		h, q := runs[2*i], runs[2*i+1]
		he := h.EnergyPerCompletion() * 1e6
		qe := q.EnergyPerCompletion() * 1e6
		hibE = append(hibE, he)
		qrE = append(qrE, qe)
		winner := "hibernus"
		if qe < he {
			winner = "quickrecall"
		}
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.0f Hz", f),
			fmt.Sprintf("%.2f", he),
			fmt.Sprintf("%.2f", qe),
			winner,
		})
	}

	// Measured crossover: first frequency where QuickRecall wins.
	measured := math.Inf(1)
	for i, f := range freqs {
		if qrE[i] < hibE[i] {
			measured = f
			break
		}
	}
	// Analytic eq. (5) from the device parameters at 8 MHz / 3 V.
	p := mcu.DefaultParams()
	pSRAM := (p.IActiveBase + p.IActivePerMHz*8) * 3.0
	pFRAM := pSRAM + p.IFRAMExtra*3.0
	// Per-outage snapshot(+restore) energies from the device model.
	probe, err := probeDevice(false)
	if err != nil {
		return nil, err
	}
	eHib := probe.EstimateSnapshotEnergy(3.0, mcu.SnapFull) +
		probe.EstimateRestoreEnergy(3.0, mcu.SnapFull)
	probeU, err := probeDevice(true)
	if err != nil {
		return nil, err
	}
	eQR := probeU.EstimateSnapshotEnergy(3.0, mcu.SnapRegs) +
		probeU.EstimateRestoreEnergy(3.0, mcu.SnapRegs)
	analytic := transient.CrossoverFrequency(pFRAM, pSRAM, eHib, eQR)

	out := &Output{
		ID:          "eq5",
		Description: "the eq. (5) crossover between split-SRAM hibernus and unified-FRAM QuickRecall",
		Tables:      []Table{tbl},
	}
	out.Note("analytic eq. (5) crossover: %.1f Hz; measured crossover band: ≥%.0f Hz", analytic, measured)
	out.Note("shape: hibernus wins at low outage rates (FRAM quiescent power dominates); quickrecall wins at high rates (snapshot energy dominates)")
	return out, nil
}

// probeDevice builds a throwaway device for parameter queries.
func probeDevice(unified bool) (*mcu.Device, error) {
	layout := programs.DefaultLayout()
	params := mcu.DefaultParams()
	if unified {
		layout = programs.UnifiedNVLayout()
		params = mcu.UnifiedNVParams()
	}
	w := programs.Fib(5, layout)
	prog, err := asmProgram(w)
	if err != nil {
		return nil, err
	}
	return mcu.New(params, prog), nil
}

// runRuntimes compares all five protection strategies on the standard
// intermittent testbed.
func runRuntimes() (*Output, error) {
	type entry struct {
		name string
		mk   func(d *mcu.Device) mcu.Runtime
		uni  bool
	}
	entries := []entry{
		{"none (restart)", nil, false},
		{"mementos", func(d *mcu.Device) mcu.Runtime { return transient.NewMementos(d, 2.2) }, false},
		{"hibernus", func(d *mcu.Device) mcu.Runtime { return transient.NewHibernus(d, 10e-6, 1.1, 0.35) }, false},
		{"hibernus++", func(d *mcu.Device) mcu.Runtime { return transient.NewHibernusPP(d) }, false},
		{"quickrecall", func(d *mcu.Device) mcu.Runtime { return transient.NewQuickRecall(d, 10e-6, 1.1, 0.35) }, true},
	}
	tbl := Table{
		Title: "sieve-3000 on 3.3 V square wave (4 ms on / 150 ms off), 10 µF rail",
		Columns: []string{"runtime", "completions", "wrong", "saves", "aborted",
			"restores", "cold starts", "energy/op (µJ)"},
	}
	out := &Output{
		ID:          "runtimes",
		Description: "comparative behaviour of the surveyed transient runtimes",
	}
	runs, err := sweep.Labs(nil, len(entries), func(c sweep.Case) lab.Setup {
		e := entries[c.Index]
		layout := programs.DefaultLayout()
		params := mcu.DefaultParams()
		if e.uni {
			layout = programs.UnifiedNVLayout()
			params = mcu.UnifiedNVParams()
		}
		return lab.Setup{
			Workload:    programs.Sieve(3000, layout),
			Params:      params,
			MakeRuntime: e.mk,
			VSource:     &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
			C:           10e-6,
			LeakR:       50e3,
			Duration:    3.0,
		}
	})
	if err != nil {
		return nil, err
	}
	results := map[string]lab.Result{}
	for i, e := range entries {
		res := runs[i]
		results[e.name] = res
		eop := "∞"
		if res.Completions > 0 {
			eop = fmt.Sprintf("%.0f", res.EnergyPerCompletion()*1e6)
		}
		tbl.Rows = append(tbl.Rows, []string{
			e.name,
			fmt.Sprintf("%d", res.Completions),
			fmt.Sprintf("%d", res.WrongResults),
			fmt.Sprintf("%d", res.Stats.SavesStarted),
			fmt.Sprintf("%d", res.Stats.SavesAborted),
			fmt.Sprintf("%d", res.Stats.Restores),
			fmt.Sprintf("%d", res.Stats.ColdStarts),
			eop,
		})
	}
	out.Tables = append(out.Tables, tbl)
	out.Note("shape: the bare device never completes; hibernus takes ≈1 snapshot per outage; mementos takes ≥1.5× more snapshots; hibernus++ completes without design-time calibration; all protected runtimes produce only correct results")
	if results["none (restart)"].Completions != 0 {
		return nil, fmt.Errorf("runtimes: baseline unexpectedly completed")
	}
	for name, r := range results {
		if r.WrongResults != 0 {
			return nil, fmt.Errorf("runtimes: %s produced %d wrong results", name, r.WrongResults)
		}
	}
	return out, nil
}
