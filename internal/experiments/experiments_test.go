package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"eq1", "eq3", "eq4", "eq5", "fig1a", "fig1b", "fig2", "fig5", "fig7", "fig8", "periph", "runtimes"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
	if _, ok := ByID("fig7"); !ok {
		t.Error("ByID(fig7) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
}

// runExp runs one experiment and returns its output.
func runExp(t *testing.T, id string) *Output {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	out, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if out.ID != id {
		t.Errorf("%s: output ID %q", id, out.ID)
	}
	if len(out.Notes) == 0 {
		t.Errorf("%s: no shape notes", id)
	}
	if r := out.Render(); !strings.Contains(r, id) {
		t.Errorf("%s: render missing ID", id)
	}
	return out
}

// cell fetches a named row's column from the first table with that row.
func cell(t *testing.T, out *Output, rowKey string, col int) string {
	t.Helper()
	for _, tbl := range out.Tables {
		for _, row := range tbl.Rows {
			if len(row) > col && row[0] == rowKey {
				return row[col]
			}
		}
	}
	t.Fatalf("%s: row %q not found", out.ID, rowKey)
	return ""
}

func TestFig1aShape(t *testing.T) {
	out := runExp(t, "fig1a")
	peak := cell(t, out, "peak voltage", 1)
	if !strings.HasPrefix(peak, "+5.") && !strings.HasPrefix(peak, "+6.") {
		t.Errorf("peak voltage %q outside the ±6 V shape", peak)
	}
	if out.Recorder == nil || out.Recorder.Series("vout") == nil {
		t.Error("fig1a should record the waveform")
	}
}

func TestFig1bShape(t *testing.T) {
	out := runExp(t, "fig1b")
	floor := cell(t, out, "overnight floor", 1)
	peakS := cell(t, out, "midday peak", 1)
	f, _ := strconv.ParseFloat(strings.Fields(floor)[0], 64)
	p, _ := strconv.ParseFloat(strings.Fields(peakS)[0], 64)
	if f < 260 || f > 300 {
		t.Errorf("floor %v µA outside 280±20", f)
	}
	if p < 410 || p > 450 {
		t.Errorf("peak %v µA outside 430±20", p)
	}
}

func TestFig2Shape(t *testing.T) {
	out := runExp(t, "fig2")
	if len(out.Tables) == 0 || len(out.Tables[0].Rows) != 13 {
		t.Fatal("fig2 should tabulate the 13 registry systems")
	}
	// Sorted ascending by autonomy: first row must be a continuous
	// energy-driven system, last a traditional one.
	first, last := out.Tables[0].Rows[0], out.Tables[0].Rows[len(out.Tables[0].Rows)-1]
	if first[7] != "energy-driven" {
		t.Errorf("least-storage system should be energy-driven, got %v", first)
	}
	if last[7] != "traditional" {
		t.Errorf("most-storage system should be traditional, got %v", last)
	}
}

func TestFig5Shape(t *testing.T) {
	out := runExp(t, "fig5")
	ratio := cell(t, out, "modulation ratio", 1)
	r, _ := strconv.ParseFloat(strings.TrimSuffix(ratio, "×"), 64)
	if r < 8 || r > 20 {
		t.Errorf("modulation ratio %v outside the order-of-magnitude claim", r)
	}
	if len(out.Plots) == 0 {
		t.Error("fig5 should render the scatter")
	}
}

func TestFig7Shape(t *testing.T) {
	out := runExp(t, "fig7")
	// The paper's shape: completion a few supply cycles in, with roughly
	// one snapshot per supply cycle.
	comp := cell(t, out, "first FFT completion", 1)
	if !strings.Contains(comp, "cycle") {
		t.Fatalf("unexpected completion cell %q", comp)
	}
	var cyc int
	if _, err := fmt_Sscanf(comp, &cyc); err != nil {
		t.Fatalf("cannot parse completion cycle from %q: %v", comp, err)
	}
	if cyc < 2 || cyc > 5 {
		t.Errorf("FFT completed in supply cycle %d; the paper's shape is cycle 3 (accept 2–5)", cyc)
	}
	if cell(t, out, "wrong results", 1) != "0" {
		t.Error("fig7 produced corrupted results")
	}
}

// fmt_Sscanf extracts the "(supply cycle N)" integer.
func fmt_Sscanf(cellVal string, cyc *int) (int, error) {
	i := strings.Index(cellVal, "cycle ")
	if i < 0 {
		return 0, strconvError("no cycle")
	}
	rest := strings.TrimSuffix(cellVal[i+len("cycle "):], ")")
	v, err := strconv.Atoi(strings.TrimSpace(rest))
	if err != nil {
		return 0, err
	}
	*cyc = v
	return 1, nil
}

type strconvError string

func (e strconvError) Error() string { return string(e) }

func TestFig8Shape(t *testing.T) {
	out := runExp(t, "fig8")
	// PN's uninterrupted window must dwarf the static baseline's.
	stretchRow := cell(t, out, "longest uninterrupted run", 1)
	staticRow := cell(t, out, "longest uninterrupted run", 2)
	pn, _ := strconv.ParseFloat(strings.Fields(stretchRow)[0], 64)
	st, _ := strconv.ParseFloat(strings.Fields(staticRow)[0], 64)
	if pn < 2*st {
		t.Errorf("PN stretch %.2f s vs static %.2f s: expected ≥2×", pn, st)
	}
	if len(out.Plots) < 2 {
		t.Error("fig8 should plot V_CC and the DFS trace")
	}
}

func TestEq1Shape(t *testing.T) {
	out := runExp(t, "eq1")
	if cell(t, out, "kansal-adaptive", 2) != "0" {
		t.Error("adaptive node should have zero eq.(2) violations")
	}
	gv, _ := strconv.Atoi(cell(t, out, "fixed 80%", 2))
	if gv == 0 {
		t.Error("greedy fixed duty should violate eq.(2)")
	}
}

func TestEq3Shape(t *testing.T) {
	out := runExp(t, "eq3")
	rows := out.Tables[0].Rows
	if len(rows) != 5 {
		t.Fatalf("eq3 rows = %d", len(rows))
	}
	// Minimal storage forces tight short-timescale tracking; generous
	// storage relaxes it (the power-neutral → energy-neutral continuum).
	first, _ := strconv.ParseFloat(rows[0][1], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if first >= last {
		t.Errorf("tracking error should grow with storage: %.3f → %.3f", first, last)
	}
	// No configuration may brown out (the governor's whole job).
	for _, row := range rows {
		if row[3] != "0" {
			t.Errorf("C=%s browned out %s times", row[0], row[3])
		}
	}
}

func TestEq4Shape(t *testing.T) {
	out := runExp(t, "eq4")
	var sawAbort, sawClean bool
	for _, row := range out.Tables[0].Rows {
		m, _ := strconv.ParseFloat(row[0], 64)
		aborted, _ := strconv.Atoi(row[3])
		completions, _ := strconv.Atoi(row[4])
		if m < 0.95 && aborted > 0 {
			sawAbort = true
		}
		if m >= 1.0 {
			if aborted != 0 {
				t.Errorf("margin %.2f aborted %d saves; eq.(4) budget should hold", m, aborted)
			}
			if completions > 0 {
				sawClean = true
			}
		}
	}
	if !sawAbort {
		t.Error("under-margined thresholds never aborted a save — boundary not demonstrated")
	}
	if !sawClean {
		t.Error("no clean completions at margin ≥ 1.0")
	}
}

func TestEq5Shape(t *testing.T) {
	out := runExp(t, "eq5")
	rows := out.Tables[0].Rows
	if rows[0][3] != "hibernus" {
		t.Errorf("at the lowest outage rate hibernus should win, got %q", rows[0][3])
	}
	if rows[len(rows)-1][3] != "quickrecall" {
		t.Errorf("at the highest outage rate quickrecall should win, got %q", rows[len(rows)-1][3])
	}
	// Winner flips exactly once along the sweep (monotone crossover).
	flips := 0
	for i := 1; i < len(rows); i++ {
		if rows[i][3] != rows[i-1][3] {
			flips++
		}
	}
	if flips != 1 {
		t.Errorf("crossover should flip once, flipped %d times", flips)
	}
}

func TestRuntimesShape(t *testing.T) {
	out := runExp(t, "runtimes")
	if cell(t, out, "none (restart)", 1) != "0" {
		t.Error("bare device should never complete")
	}
	for _, name := range []string{"mementos", "hibernus", "hibernus++", "quickrecall"} {
		c, _ := strconv.Atoi(cell(t, out, name, 1))
		if c == 0 {
			t.Errorf("%s made no progress", name)
		}
		if cell(t, out, name, 2) != "0" {
			t.Errorf("%s produced wrong results", name)
		}
	}
	hib, _ := strconv.Atoi(cell(t, out, "hibernus", 3))
	mem, _ := strconv.Atoi(cell(t, out, "mementos", 3))
	if float64(mem) < 1.5*float64(hib) {
		t.Errorf("mementos saves (%d) should exceed hibernus (%d) by ≥1.5×", mem, hib)
	}
}

func TestPeriphShape(t *testing.T) {
	out := runExp(t, "periph")
	naiveWrong, _ := strconv.Atoi(cell(t, out, "hibernus (CPU+RAM only)", 2))
	naiveDropped, _ := strconv.Atoi(cell(t, out, "hibernus (CPU+RAM only)", 4))
	if naiveWrong == 0 || naiveDropped == 0 {
		t.Error("naive restore should corrupt results and drop packets")
	}
	if cell(t, out, "hibernus + peripheral state", 2) != "0" {
		t.Error("aware restore should produce no wrong results")
	}
	if cell(t, out, "hibernus + peripheral state", 4) != "0" {
		t.Error("aware restore should drop no packets")
	}
}

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:   "t",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
	}
	r := tbl.Render()
	if !strings.Contains(r, "xxx") || !strings.Contains(r, "---") {
		t.Errorf("render = %q", r)
	}
}
