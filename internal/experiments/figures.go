package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mpsoc"
	"repro/internal/source"
	"repro/internal/trace"
	"repro/internal/units"
)

func init() {
	register(Experiment{
		ID:    "fig1a",
		Title: "Micro wind turbine output voltage during a single gust",
		Run:   runFig1a,
	})
	register(Experiment{
		ID:    "fig1b",
		Title: "Indoor photovoltaic harvested power over two days",
		Run:   runFig1b,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Taxonomy of energy-neutral, transient, energy-driven and power-neutral systems",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "ODROID XU-4 raytrace performance vs board power across DVFS/hot-plug operating points",
		Run:   runFig5,
	})
}

// runFig1a regenerates the wind turbine gust waveform: ±6 V AC at a few Hz
// under a single gust envelope over 8 s.
func runFig1a() (*Output, error) {
	w := source.DefaultWindTurbine()
	rec := trace.NewRecorder()
	for t := 0.0; t <= 8.0; t += 1e-3 {
		rec.Record("vout", "V", t, w.Voltage(t))
		rec.Record("envelope", "", t, w.Envelope(t))
	}
	s := rec.Series("vout")
	st := s.Summarize()
	out := &Output{
		ID:          "fig1a",
		Description: "micro wind turbine gust: AC voltage, gust envelope",
		Recorder:    rec,
	}
	out.Tables = append(out.Tables, Table{
		Title:   "Waveform summary",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"peak voltage", fmt.Sprintf("%+.2f V", st.Max)},
			{"trough voltage", fmt.Sprintf("%+.2f V", st.Min)},
			{"AC frequency", fmt.Sprintf("%.1f Hz", w.ACFrequency)},
			{"gust span", fmt.Sprintf("%.1f s window", 8.0)},
		},
	})
	out.Plots = append(out.Plots, trace.Plot(s, 90, 14))
	out.Note("paper: ±6 V AC at several Hz across one gust; measured peak %+.2f/%+.2f V at %.1f Hz",
		st.Max, st.Min, w.ACFrequency)
	return out, nil
}

// runFig1b regenerates the indoor PV profile: harvested current between
// ≈280 and ≈430 µA across two diurnal cycles.
func runFig1b() (*Output, error) {
	p := source.DefaultPhotovoltaic()
	rec := trace.NewRecorder()
	for t := 0.0; t <= 2*units.Day; t += 60 {
		rec.Record("iharvest", "µA", t, p.Current(t)*1e6)
	}
	s := rec.Series("iharvest")
	st := s.Summarize()
	out := &Output{
		ID:          "fig1b",
		Description: "indoor photovoltaic harvested current over two days",
		Recorder:    rec,
	}
	out.Tables = append(out.Tables, Table{
		Title:   "Profile summary",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"overnight floor", fmt.Sprintf("%.0f µA", st.Min)},
			{"midday peak", fmt.Sprintf("%.0f µA", st.Max)},
			{"diurnal cycles", "2"},
		},
	})
	out.Plots = append(out.Plots, trace.Plot(s, 96, 12))
	out.Note("paper: 280–430 µA band over two days; measured %.0f–%.0f µA", st.Min, st.Max)
	return out, nil
}

// runFig2 renders the taxonomy placement of the paper's example systems.
func runFig2() (*Output, error) {
	systems := core.ByAutonomy(core.Registry())
	tbl := Table{
		Title: "Fig. 2 taxonomy (sorted along the storage axis, least storage first)",
		Columns: []string{"system", "ref", "storage", "autonomy", "axis",
			"adaptation", "power-neutral", "region"},
	}
	for _, s := range systems {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, []string{
			s.Name,
			s.Ref,
			units.Format(s.StorageJ, "J"),
			units.FormatSeconds(s.AutonomySec()),
			s.Axis(),
			s.Adaptation.String(),
			fmt.Sprintf("%v", s.PowerNeutral),
			s.Region(),
		})
	}
	out := &Output{
		ID:          "fig2",
		Description: "energy-based taxonomy of computing systems",
		Tables:      []Table{tbl},
	}
	edCount := 0
	for _, s := range systems {
		if s.EnergyDriven {
			edCount++
		}
	}
	out.Note("%d/%d systems fall in the energy-driven region; storage spans %s to %s of autonomy",
		edCount, len(systems),
		units.FormatSeconds(systems[0].AutonomySec()),
		units.FormatSeconds(systems[len(systems)-1].AutonomySec()))
	return out, nil
}

// runFig5 enumerates the MPSoC operating points and reports the
// performance/power scatter and its Pareto frontier.
func runFig5() (*Output, error) {
	b := mpsoc.XU4()
	pts := b.OperatingPoints()
	minW, maxW := mpsoc.PowerRange(pts)
	var maxFPS float64
	scatter := make([]trace.ScatterPoint, 0, len(pts))
	for _, p := range pts {
		maxFPS = math.Max(maxFPS, p.FPS)
		scatter = append(scatter, trace.ScatterPoint{X: p.PowerW, Y: p.FPS})
	}
	front := mpsoc.ParetoFrontier(pts)

	frontier := Table{
		Title:   "Pareto frontier (every 4th point)",
		Columns: []string{"configuration", "power (W)", "raytrace FPS"},
	}
	for i, p := range front {
		if i%4 != 0 && i != len(front)-1 {
			continue
		}
		frontier.Rows = append(frontier.Rows, []string{
			p.Label(b), fmt.Sprintf("%.2f", p.PowerW), fmt.Sprintf("%.4f", p.FPS),
		})
	}
	summary := Table{
		Title:   "Operating-point summary",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"operating points", fmt.Sprintf("%d", len(pts))},
			{"power range", fmt.Sprintf("%.2f – %.2f W", minW, maxW)},
			{"modulation ratio", fmt.Sprintf("%.1f×", maxW/minW)},
			{"peak FPS", fmt.Sprintf("%.3f", maxFPS)},
			{"frontier size", fmt.Sprintf("%d", len(front))},
		},
	}
	out := &Output{
		ID:          "fig5",
		Description: "power/performance operating points of the big.LITTLE MPSoC raytracer",
		Tables:      []Table{summary, frontier},
	}
	out.Plots = append(out.Plots,
		trace.Scatter("Fig. 5: raytrace FPS vs board power", "W", "FPS", scatter, 90, 18))
	out.Note("paper: order-of-magnitude power modulation, ≈0.22 FPS peak near 18 W; measured %.1f× over %.1f–%.1f W, peak %.3f FPS",
		maxW/minW, minW, maxW, maxFPS)
	return out, nil
}
