package experiments

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// TestFig7SpecMatchesExampleFile pins the acceptance contract: the spec
// the registered fig7 harness compiles its Setup from and the curated
// example file are the same scenario, so `ehsim -scenario` on the file
// reproduces the harness's numbers exactly.
func TestFig7SpecMatchesExampleFile(t *testing.T) {
	fromFile, err := scenario.Load("../../examples/scenarios/fig7-rectified-sine-hibernus.json")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromFile, Fig7Spec()) {
		t.Errorf("example file and Fig7Spec diverged:\nfile: %+v\ncode: %+v", fromFile, Fig7Spec())
	}
}

// TestPortedSpecsCompile keeps the spec-driven experiments compiling
// through the scenario layer.
func TestPortedSpecsCompile(t *testing.T) {
	if _, err := Fig7Spec().Setup(); err != nil {
		t.Errorf("Fig7Spec: %v", err)
	}
	sp := Eq4Spec()
	if err := sp.Validate(); err != nil {
		t.Fatalf("Eq4Spec: %v", err)
	}
	grid := sp.Grid()
	if grid.Size() != 6 {
		t.Errorf("Eq4Spec grid size = %d, want 6", grid.Size())
	}
	for _, c := range grid.Cases() {
		if _, err := sp.SetupAt(c); err != nil {
			t.Errorf("Eq4Spec case %s: %v", c.Name, err)
		}
	}
}
