package experiments

import (
	"repro/internal/isa"
	"repro/internal/programs"
)

// asmProgram assembles a workload's source.
func asmProgram(w *programs.Workload) (*isa.Program, error) {
	return isa.Assemble(w.Source)
}
