package mcu

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/programs"
)

// buildDevice assembles a workload and returns a device plus a counter of
// completed iterations wired to SysDone.
func buildDevice(t *testing.T, w *programs.Workload, p Params) (*Device, *int) {
	t.Helper()
	prog, err := isa.Assemble(w.Source)
	if err != nil {
		t.Fatalf("assemble %s: %v", w.Name, err)
	}
	d := New(p, prog)
	done := new(int)
	expected := w.Expected
	d.SysHandler = func(code uint16, c *isa.Core) {
		if code == programs.SysDone {
			if c.R[1] != expected {
				t.Errorf("%s completed with result 0x%04x, want 0x%04x", w.Name, c.R[1], expected)
			}
			*done++
		}
	}
	return d, done
}

// tickUntil drives the device at voltage v until pred is true or the time
// budget elapses, returning the elapsed simulated seconds.
func tickUntil(d *Device, v, dt, budget float64, pred func() bool) float64 {
	elapsed := 0.0
	for elapsed < budget && !pred() {
		d.Tick(v, dt)
		elapsed += dt
	}
	return elapsed
}

func TestBusMappingAndOpenBus(t *testing.T) {
	b := NewBus()
	b.Write8(0x0010, 0xAB)
	if b.Read8(0x0010) != 0xAB {
		t.Error("SRAM write lost")
	}
	b.Write16(0x4100, 0xBEEF)
	if b.Read16(0x4100) != 0xBEEF {
		t.Error("FRAM write lost")
	}
	// Unmapped hole: reads zero, writes dropped.
	b.Write8(0x2000, 0xFF)
	if b.Read8(0x2000) != 0 {
		t.Error("open bus should read 0")
	}
}

func TestBusWaitStates(t *testing.T) {
	b := NewBus()
	if b.AccessCycles(0x0000, false) != 0 {
		t.Error("SRAM should be zero-wait")
	}
	if b.AccessCycles(0x4000, false) != 0 {
		t.Error("FRAM at low clock should be zero-wait")
	}
	b.FRAMWait = 1
	if b.AccessCycles(0x4000, true) != 1 {
		t.Error("FRAM wait state not applied")
	}
	if b.AccessCycles(0x0000, true) != 0 {
		t.Error("SRAM must never pay FRAM waits")
	}
}

func TestScrambleSRAMDestroysContents(t *testing.T) {
	b := NewBus()
	for i := 0; i < 64; i++ {
		b.SRAM[i] = byte(i)
	}
	b.ScrambleSRAM(1)
	intact := 0
	for i := 0; i < 64; i++ {
		if b.SRAM[i] == byte(i) {
			intact++
		}
	}
	if intact > 8 {
		t.Errorf("%d/64 bytes survived scrambling", intact)
	}
}

func TestDevicePowersOnAndRuns(t *testing.T) {
	d, done := buildDevice(t, programs.Fib(24, programs.DefaultLayout()), DefaultParams())
	if d.Mode() != ModeOff {
		t.Fatal("device should start off")
	}
	tickUntil(d, 3.3, 10e-6, 1.0, func() bool { return *done >= 1 })
	if *done < 1 {
		t.Fatal("workload never completed under stable power")
	}
	if d.Stats.PowerOns != 1 || d.Stats.ColdStarts != 1 {
		t.Errorf("stats = %+v, want one power-on cold start", d.Stats)
	}
	if d.Err != nil {
		t.Errorf("guest fault: %v", d.Err)
	}
}

func TestDeviceBelowVOnStaysOff(t *testing.T) {
	d, _ := buildDevice(t, programs.Fib(10, programs.DefaultLayout()), DefaultParams())
	tickUntil(d, 1.5, 10e-6, 0.01, func() bool { return false })
	if d.Mode() != ModeOff || d.Stats.PowerOns != 0 {
		t.Error("device must stay off below VOn")
	}
}

func TestBrownOutLosesProgress(t *testing.T) {
	// Run a long FFT, cut power mid-way, restore power: without a runtime
	// the guest restarts from scratch (cold start), and completes later
	// than it would have.
	w := programs.FFT(256, programs.DefaultLayout())
	d, done := buildDevice(t, w, DefaultParams())
	// Let it run briefly, then cut power.
	tickUntil(d, 3.3, 10e-6, 0.005, func() bool { return false })
	if d.Stats.CyclesRun == 0 {
		t.Fatal("no execution before outage")
	}
	if *done != 0 {
		t.Fatal("workload finished before the planned outage; lengthen it")
	}
	tickUntil(d, 0.0, 10e-6, 0.001, func() bool { return false })
	if d.Mode() != ModeOff || d.Stats.BrownOuts != 1 {
		t.Fatalf("expected brown-out, mode=%v stats=%+v", d.Mode(), d.Stats)
	}
	// Power returns: cold start again.
	tickUntil(d, 3.3, 10e-6, 1.0, func() bool { return *done >= 1 })
	if *done < 1 {
		t.Fatal("guest did not complete after restart")
	}
	if d.Stats.ColdStarts != 2 {
		t.Errorf("cold starts = %d, want 2", d.Stats.ColdStarts)
	}
}

func TestSnapshotSaveRestoreExactness(t *testing.T) {
	// Save mid-computation, let it finish, brown out, restore the
	// snapshot: execution resumes from the snapshot point and still
	// produces the correct result.
	w := programs.CRC16(64, programs.DefaultLayout())
	d, done := buildDevice(t, w, DefaultParams())
	tickUntil(d, 3.3, 10e-6, 0.002, func() bool { return false })

	if !d.BeginSave(SnapFull, nil) {
		t.Fatal("BeginSave refused")
	}
	if d.Mode() != ModeSaving {
		t.Fatal("device should be saving")
	}
	saved := false
	tickUntil(d, 3.3, 10e-6, 0.1, func() bool { return d.Mode() == ModeActive })
	if d.Stats.SavesDone != 1 {
		t.Fatalf("save did not complete: %+v", d.Stats)
	}
	saved = d.HasSnapshot()
	if !saved {
		t.Fatal("no valid snapshot after save")
	}

	// Brown out: volatile state destroyed.
	tickUntil(d, 0, 10e-6, 0.001, func() bool { return false })
	if d.Stats.BrownOuts != 1 {
		t.Fatal("expected brown-out")
	}
	// Power on and restore manually (no runtime attached).
	tickUntil(d, 3.3, 10e-6, 0.0001, func() bool { return d.Mode() == ModeActive })
	if !d.BeginRestore(nil) {
		t.Fatal("BeginRestore refused")
	}
	tickUntil(d, 3.3, 10e-6, 0.1, func() bool { return d.Mode() == ModeActive })
	if d.Stats.Restores != 1 {
		t.Fatalf("restore did not complete: %+v", d.Stats)
	}
	// Must now run to a CORRECT completion from the snapshot point.
	tickUntil(d, 3.3, 10e-6, 1.0, func() bool { return *done >= 1 })
	if *done < 1 {
		t.Fatal("restored execution never completed")
	}
}

func TestInterruptedSaveKeepsPreviousSnapshot(t *testing.T) {
	w := programs.Fib(30, programs.DefaultLayout())
	d, _ := buildDevice(t, w, DefaultParams())
	tickUntil(d, 3.3, 10e-6, 0.001, func() bool { return false })
	// First complete save.
	d.BeginSave(SnapFull, nil)
	tickUntil(d, 3.3, 10e-6, 0.1, func() bool { return d.Mode() == ModeActive })
	if !d.HasSnapshot() {
		t.Fatal("first snapshot missing")
	}
	// Second save interrupted by power failure mid-DMA.
	tickUntil(d, 3.3, 10e-6, 0.001, func() bool { return false })
	d.BeginSave(SnapFull, nil)
	d.Tick(3.3, 10e-6) // a little progress, not enough to finish
	tickUntil(d, 0, 10e-6, 0.001, func() bool { return false })
	if d.Stats.SavesAborted != 1 {
		t.Fatalf("expected aborted save, stats=%+v", d.Stats)
	}
	// The first snapshot must still be valid (double buffering).
	if !d.HasSnapshot() {
		t.Fatal("interrupted save destroyed the previous snapshot")
	}
}

func TestRestoreWithoutSnapshotFails(t *testing.T) {
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	tickUntil(d, 3.3, 10e-6, 0.0001, func() bool { return d.Mode() == ModeActive })
	if d.BeginRestore(nil) {
		t.Fatal("restore should fail with no snapshot")
	}
	if d.Mode() != ModeActive {
		t.Error("failed restore must not change mode")
	}
}

func TestSleepWakePath(t *testing.T) {
	d, done := buildDevice(t, programs.Fib(24, programs.DefaultLayout()), DefaultParams())
	tickUntil(d, 3.3, 10e-6, 0.0002, func() bool { return d.Mode() == ModeActive })
	d.Sleep()
	if d.Mode() != ModeSleep {
		t.Fatal("sleep failed")
	}
	before := d.Stats.CyclesRun
	tickUntil(d, 3.3, 10e-6, 0.01, func() bool { return false })
	if d.Stats.CyclesRun != before {
		t.Error("device executed while asleep")
	}
	d.Wake()
	if d.Mode() != ModeActive || d.Stats.WakeNoRestore != 1 {
		t.Error("wake failed")
	}
	tickUntil(d, 3.3, 10e-6, 1.0, func() bool { return *done >= 1 })
	if *done < 1 {
		t.Error("no completion after wake")
	}
}

func TestCurrentModel(t *testing.T) {
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	// Off.
	if got := d.Current(3.3, 0); got != d.P.IOff {
		t.Errorf("off current = %g", got)
	}
	if d.Current(0, 0) != 0 {
		t.Error("zero rail voltage draws nothing")
	}
	tickUntil(d, 3.3, 10e-6, 0.0002, func() bool { return d.Mode() == ModeActive })
	// Active at 8 MHz: base + slope·8.
	want := d.P.IActiveBase + d.P.IActivePerMHz*8
	if got := d.Current(3.3, 0); math.Abs(got-want) > 1e-12 {
		t.Errorf("active current = %g, want %g", got, want)
	}
	d.Sleep()
	if got := d.Current(3.3, 0); got != d.P.ISleep {
		t.Errorf("sleep current = %g", got)
	}
	d.Wake()
	d.BeginSave(SnapFull, nil)
	if got := d.Current(3.3, 0); math.Abs(got-(want+d.P.ISaveExtra)) > 1e-12 {
		t.Errorf("saving current = %g", got)
	}
}

func TestUnifiedNVCurrentPenalty(t *testing.T) {
	sram, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	fram, _ := buildDevice(t, programs.Fib(5, programs.UnifiedNVLayout()), UnifiedNVParams())
	tickUntil(sram, 3.3, 10e-6, 0.0002, func() bool { return sram.Mode() == ModeActive })
	tickUntil(fram, 3.3, 10e-6, 0.0002, func() bool { return fram.Mode() == ModeActive })
	diff := fram.Current(3.3, 0) - sram.Current(3.3, 0)
	if math.Abs(diff-fram.P.IFRAMExtra) > 1e-12 {
		t.Errorf("FRAM quiescent penalty = %g, want %g", diff, fram.P.IFRAMExtra)
	}
}

func TestDFSAffectsSpeedAndWaitStates(t *testing.T) {
	p := DefaultParams()
	w := programs.Fib(24, programs.DefaultLayout())
	run := func(freqIdx int) float64 {
		pp := p
		pp.FreqIndex = freqIdx
		d, done := buildDevice(t, w, pp)
		return tickUntil(d, 3.3, 10e-6, 1.0, func() bool { return *done >= 1 })
	}
	tSlow := run(0) // 1 MHz
	tFast := run(3) // 8 MHz
	if tFast >= tSlow {
		t.Errorf("8 MHz (%gs) not faster than 1 MHz (%gs)", tFast, tSlow)
	}
	// Wait states engage above 8 MHz.
	d, _ := buildDevice(t, w, p)
	d.SetFreqIndex(5) // 24 MHz
	if d.Bus.FRAMWait == 0 {
		t.Error("FRAM wait states should engage at 24 MHz")
	}
	d.SetFreqIndex(2) // 4 MHz
	if d.Bus.FRAMWait != 0 {
		t.Error("FRAM wait states should disengage at 4 MHz")
	}
	// Clamping.
	d.SetFreqIndex(99)
	if d.FreqIndex() != len(p.FreqLevels)-1 {
		t.Error("freq index should clamp high")
	}
	d.SetFreqIndex(-5)
	if d.FreqIndex() != 0 {
		t.Error("freq index should clamp low")
	}
}

func TestSnapshotSizesAndEstimates(t *testing.T) {
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	full := d.SnapshotBytes(SnapFull)
	regs := d.SnapshotBytes(SnapRegs)
	if full <= regs {
		t.Errorf("full snapshot (%d B) must exceed regs-only (%d B)", full, regs)
	}
	if regs >= 100 {
		t.Errorf("regs snapshot suspiciously large: %d B", regs)
	}
	if full < len(d.Bus.SRAM) {
		t.Errorf("full snapshot (%d B) smaller than SRAM (%d B)", full, len(d.Bus.SRAM))
	}
	// Energy estimate (eq. 4's E_s) scales with size and is positive.
	eFull := d.EstimateSnapshotEnergy(3.0, SnapFull)
	eRegs := d.EstimateSnapshotEnergy(3.0, SnapRegs)
	if eFull <= eRegs || eRegs <= 0 {
		t.Errorf("snapshot energies: full=%g regs=%g", eFull, eRegs)
	}
	// Durations likewise.
	if d.SaveDuration(SnapFull) <= d.SaveDuration(SnapRegs) {
		t.Error("full save must take longer")
	}
	if d.RestoreDuration(SnapFull) <= 0 || d.EstimateRestoreEnergy(3.0, SnapFull) <= 0 {
		t.Error("restore cost must be positive")
	}
}

func TestDefaultSnapshotKind(t *testing.T) {
	sram, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	fram, _ := buildDevice(t, programs.Fib(5, programs.UnifiedNVLayout()), UnifiedNVParams())
	if sram.DefaultSnapshotKind() != SnapFull {
		t.Error("split-memory device should default to full snapshots")
	}
	if fram.DefaultSnapshotKind() != SnapRegs {
		t.Error("unified-NV device should default to register snapshots")
	}
}

func TestInvalidateSnapshots(t *testing.T) {
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	tickUntil(d, 3.3, 10e-6, 0.0002, func() bool { return d.Mode() == ModeActive })
	d.BeginSave(SnapRegs, nil)
	tickUntil(d, 3.3, 10e-6, 0.1, func() bool { return d.Mode() == ModeActive })
	if !d.HasSnapshot() {
		t.Fatal("snapshot missing")
	}
	d.InvalidateSnapshots()
	if d.HasSnapshot() {
		t.Error("snapshots should be invalidated")
	}
}

func TestRuntimeCallbacks(t *testing.T) {
	w := programs.CRC16(32, programs.DefaultLayout())
	d, _ := buildDevice(t, w, DefaultParams())
	rt := &recordingRuntime{}
	d.Attach(rt)
	if d.Runtime() != rt {
		t.Fatal("runtime not attached")
	}
	tickUntil(d, 3.3, 10e-6, 0.01, func() bool { return rt.traps > 3 })
	if rt.powerOns != 1 {
		t.Errorf("OnPowerOn calls = %d, want 1", rt.powerOns)
	}
	if rt.ticks == 0 {
		t.Error("OnTick never called")
	}
	if rt.traps == 0 {
		t.Error("OnCheckpointTrap never called (CRC has CHK sites)")
	}
}

// recordingRuntime counts callbacks and cold-starts on power-on.
type recordingRuntime struct {
	powerOns, ticks, traps int
}

func (r *recordingRuntime) Name() string { return "recording" }
func (r *recordingRuntime) OnPowerOn(d *Device) {
	r.powerOns++
	d.ColdStart()
}
func (r *recordingRuntime) OnTick(*Device, float64) { r.ticks++ }
func (r *recordingRuntime) OnCheckpointTrap(*Device) {
	r.traps++
}

func TestSnapshotRoundTripProperty(t *testing.T) {
	// capture→write→read→apply must reproduce registers and SRAM exactly.
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	core := d.Core
	for trial := 0; trial < 50; trial++ {
		for i := range core.R {
			core.R[i] = uint16(trial*31 + i*7)
		}
		core.PC = uint16(0x4000 + trial)
		core.HI = uint16(trial * 3)
		core.ZF = trial%2 == 0
		core.NF = trial%3 == 0
		core.CF = trial%5 == 0
		core.GE = trial%7 == 0
		for i := range d.Bus.SRAM {
			d.Bus.SRAM[i] = byte(i * trial)
		}
		payload := d.capture(SnapFull)
		d.snaps.write(trial%2, payload)

		// Destroy state.
		wantR := core.R
		wantPC, wantHI := core.PC, core.HI
		wantZ, wantN, wantC, wantGE := core.ZF, core.NF, core.CF, core.GE
		wantSRAM := make([]byte, len(d.Bus.SRAM))
		copy(wantSRAM, d.Bus.SRAM)
		core.Reset(0)
		d.Bus.ScrambleSRAM(uint32(trial))

		got, _ := d.snaps.newest()
		if got == nil {
			t.Fatal("snapshot vanished")
		}
		d.applySnapshot(got)
		if core.R != wantR || core.PC != wantPC || core.HI != wantHI {
			t.Fatalf("trial %d: register state mismatch", trial)
		}
		if core.ZF != wantZ || core.NF != wantN || core.CF != wantC || core.GE != wantGE {
			t.Fatalf("trial %d: flag state mismatch", trial)
		}
		for i := range wantSRAM {
			if d.Bus.SRAM[i] != wantSRAM[i] {
				t.Fatalf("trial %d: SRAM[%d] mismatch", trial, i)
			}
		}
	}
}

func TestSnapshotSequencePicksNewest(t *testing.T) {
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	core := d.Core
	core.R[1] = 111
	d.snaps.write(0, d.capture(SnapRegs))
	core.R[1] = 222
	d.snaps.write(1, d.capture(SnapRegs))
	payload, next := d.snaps.newest()
	if payload == nil || next != 0 {
		t.Fatalf("newest slot wrong: next=%d", next)
	}
	core.Reset(0)
	d.applySnapshot(payload)
	if core.R[1] != 222 {
		t.Errorf("restored r1 = %d, want 222 (newest)", core.R[1])
	}
}

func TestCorruptedSnapshotRejected(t *testing.T) {
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	d.snaps.write(0, d.capture(SnapRegs))
	if !d.HasSnapshot() {
		t.Fatal("snapshot missing")
	}
	// Flip a payload byte: checksum must catch it.
	addr := d.snaps.slotAddr(0) + headerLen + 3
	d.Bus.Write8(addr, d.Bus.Read8(addr)^0xff)
	if d.HasSnapshot() {
		t.Error("corrupted snapshot accepted")
	}
}

func TestRestoreFallsBackToOlderSlot(t *testing.T) {
	// Corrupt the NEWER of two committed snapshots: restore must fall back
	// to the older one rather than fail or apply garbage.
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	tickUntil(d, 3.3, 10e-6, 0.001, func() bool { return d.Mode() == ModeActive })
	d.Core.R[2] = 0x1111
	d.snaps.write(0, d.capture(SnapRegs)) // seq 1 (older)
	d.Core.R[2] = 0x2222
	d.snaps.write(1, d.capture(SnapRegs)) // seq 2 (newer)
	// Corrupt slot 1's payload.
	addr := d.snaps.slotAddr(1) + headerLen + 5
	d.Bus.Write8(addr, d.Bus.Read8(addr)^0xff)
	payload, _ := d.snaps.newest()
	if payload == nil {
		t.Fatal("no snapshot survived")
	}
	d.Core.Reset(0)
	d.applySnapshot(payload)
	if d.Core.R[2] != 0x1111 {
		t.Errorf("restored r2 = 0x%04x, want the older slot's 0x1111", d.Core.R[2])
	}
}

func TestAuxSnapshotRoundTrip(t *testing.T) {
	// A device with aux state enabled must restore it exactly.
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	aux := &fakeAux{state: []byte{1, 2, 3, 4}}
	d.Aux = aux
	d.SnapshotAux = true
	tickUntil(d, 3.3, 10e-6, 0.001, func() bool { return d.Mode() == ModeActive })
	d.snaps.write(0, d.capture(SnapFull))
	aux.state = []byte{9, 9, 9, 9}
	payload, _ := d.snaps.newest()
	d.applySnapshot(payload)
	if string(aux.state) != string([]byte{1, 2, 3, 4}) {
		t.Errorf("aux state not restored: %v", aux.state)
	}
	// With SnapshotAux disabled, aux bytes are excluded.
	d.SnapshotAux = false
	if n := d.SnapshotBytes(SnapRegs); n != headerLen+regBytes+trailerLen {
		t.Errorf("naive regs snapshot = %d bytes", n)
	}
	d.SnapshotAux = true
	if n := d.SnapshotBytes(SnapRegs); n != headerLen+regBytes+4+trailerLen {
		t.Errorf("aware regs snapshot = %d bytes", n)
	}
}

func TestBrownOutResetsAux(t *testing.T) {
	d, _ := buildDevice(t, programs.Fib(5, programs.DefaultLayout()), DefaultParams())
	aux := &fakeAux{state: []byte{5}}
	d.Aux = aux
	tickUntil(d, 3.3, 10e-6, 0.001, func() bool { return d.Mode() == ModeActive })
	tickUntil(d, 0, 10e-6, 0.001, func() bool { return false })
	if !aux.wasReset {
		t.Error("brown-out must reset aux (peripheral) state")
	}
}

// fakeAux is a minimal AuxState for device tests.
type fakeAux struct {
	state    []byte
	wasReset bool
}

func (f *fakeAux) Capture() []byte { out := make([]byte, len(f.state)); copy(out, f.state); return out }
func (f *fakeAux) Restore(d []byte) error {
	f.state = append([]byte(nil), d...)
	return nil
}
func (f *fakeAux) Reset() { f.wasReset = true; f.state = []byte{0} }
