package mcu

// SnapshotKind selects how much volatile state a snapshot covers.
type SnapshotKind uint8

// Snapshot kinds.
const (
	// SnapFull saves CPU registers plus the whole SRAM image — what
	// hibernus and Mementos must do on a split-memory system.
	SnapFull SnapshotKind = iota
	// SnapRegs saves CPU registers only — sufficient on a unified-FRAM
	// (QuickRecall-style) system where data memory is already non-volatile.
	SnapRegs
)

// Snapshot slot framing constants.
const (
	snapMagic  = 0xc0de
	snapCommit = 0xa11d
	regBytes   = 2*16 + 2 + 2 + 2 // R0–R15, PC, HI, packed flags
	headerLen  = 10               // magic, seq, kind+pad, sramLen, auxLen
	trailerLen = 4                // checksum, commit
	// maxAuxBytes bounds the peripheral-state area reserved per slot.
	maxAuxBytes = 256
)

// snapshotStore manages two alternating snapshot slots in FRAM,
// double-buffered so an interrupted save can never destroy the previous
// good snapshot.
type snapshotStore struct {
	bus  *Bus
	base uint16
	seq  uint16

	// nextSave is the slot the next save will target, maintained
	// host-side so BeginSave does not have to read back and checksum
	// both slots (a full SRAM-sized traversal each) on every save just
	// to find which one to overwrite. Initialised lazily from newest()
	// and advanced by write(); an interrupted save leaves it unchanged,
	// so the retry targets the same (invalidated) slot, exactly as the
	// read-back computed it.
	nextSave int
	haveNext bool
}

func newSnapshotStore(bus *Bus, base uint16) *snapshotStore {
	return &snapshotStore{bus: bus, base: base}
}

// slotSize returns the byte size of one slot for the bus's SRAM size.
func (s *snapshotStore) slotSize() uint16 {
	return uint16(headerLen + regBytes + len(s.bus.SRAM) + maxAuxBytes + trailerLen)
}

// slotAddr returns the base address of slot i (0 or 1).
func (s *snapshotStore) slotAddr(i int) uint16 {
	return s.base + uint16(i)*s.slotSize()
}

// capture serialises the core + SRAM (+ peripheral aux state, if enabled)
// into a host-side buffer. kind controls whether SRAM is included.
func (d *Device) capture(kind SnapshotKind) []byte {
	core, bus := d.Core, d.Bus
	sramLen := 0
	if kind == SnapFull {
		sramLen = len(bus.SRAM)
	}
	var aux []byte
	if d.SnapshotAux && d.Aux != nil {
		aux = d.Aux.Capture()
		if len(aux) > maxAuxBytes {
			aux = aux[:maxAuxBytes]
		}
	}
	buf := make([]byte, 0, headerLen+regBytes+sramLen+len(aux)+trailerLen)
	put16 := func(v uint16) { buf = append(buf, byte(v), byte(v>>8)) }
	put16(snapMagic)
	put16(0) // seq patched at write time
	buf = append(buf, byte(kind), 0)
	put16(uint16(sramLen))
	put16(uint16(len(aux)))
	for _, r := range core.R {
		put16(r)
	}
	put16(core.PC)
	put16(core.HI)
	var flags uint16
	if core.ZF {
		flags |= 1
	}
	if core.NF {
		flags |= 2
	}
	if core.CF {
		flags |= 4
	}
	if core.GE {
		flags |= 8
	}
	put16(flags)
	if kind == SnapFull {
		buf = append(buf, bus.SRAM...)
	}
	buf = append(buf, aux...)
	return buf
}

// checksum is a simple multiplicative checksum over the payload:
// sum_{k} payload[k]·31^(n-1-k) mod 2^16 (Horner's rule). The loop is
// unrolled four bytes per iteration with precomputed powers of 31; all
// arithmetic is exact mod 2^16 (the widest intermediate fits uint32), so
// the result is bit-identical to the byte-at-a-time recurrence. Snapshot
// saves checksum a whole SRAM image per save, which is why the loop is
// worth unrolling.
func checksum(payload []byte) uint16 {
	const (
		p1 = 31
		p2 = p1 * p1 % (1 << 16)
		p3 = p2 * p1 % (1 << 16)
		p4 = p3 * p1 % (1 << 16)
	)
	var sum uint16
	for len(payload) >= 4 {
		sum = uint16(uint32(sum)*p4 +
			uint32(payload[0])*p3 + uint32(payload[1])*p2 +
			uint32(payload[2])*p1 + uint32(payload[3]))
		payload = payload[4:]
	}
	for _, b := range payload {
		sum = sum*31 + uint16(b)
	}
	return sum
}

// invalidate clears the commit flag of slot i (done at save start so an
// interrupted save leaves an invalid slot, never a stale-but-committed
// one).
func (s *snapshotStore) invalidate(i int) {
	addr := s.slotAddr(i)
	size := s.slotSize()
	s.bus.Write16(addr+size-2, 0)
}

// nextSlot returns the slot the next save should overwrite: the one
// that does not hold the newest valid snapshot. After the first lookup
// the answer is tracked host-side (see snapshotStore.nextSave), since a
// completed write makes its own slot the newest by sequence number.
func (s *snapshotStore) nextSlot() int {
	if !s.haveNext {
		_, s.nextSave = s.newest()
		s.haveNext = true
	}
	return s.nextSave
}

// write stores payload into slot i with the next sequence number,
// checksum, and commit flag. Called at save completion.
func (s *snapshotStore) write(i int, payload []byte) {
	s.seq++
	payload[2] = byte(s.seq)
	payload[3] = byte(s.seq >> 8)
	addr := s.slotAddr(i)
	s.bus.WriteRange(addr, payload)
	sum := checksum(payload)
	size := s.slotSize()
	s.bus.Write16(addr+size-4, sum)
	s.bus.Write16(addr+size-2, snapCommit)
	s.nextSave, s.haveNext = 1-i, true
}

// read validates slot i and returns its payload, or nil.
func (s *snapshotStore) read(i int) []byte {
	addr := s.slotAddr(i)
	size := s.slotSize()
	if s.bus.Read16(addr) != snapMagic {
		return nil
	}
	if s.bus.Read16(addr+size-2) != snapCommit {
		return nil
	}
	sramLen := s.bus.Read16(addr + 6)
	auxLen := s.bus.Read16(addr + 8)
	payloadLen := uint16(headerLen+regBytes) + sramLen + auxLen
	if payloadLen > size-trailerLen {
		return nil
	}
	payload := make([]byte, payloadLen)
	s.bus.ReadRange(addr, payload)
	if checksum(payload) != s.bus.Read16(addr+size-4) {
		return nil
	}
	return payload
}

// newest returns the valid slot payload with the highest sequence number,
// plus the index to use for the NEXT save (the other slot), or nil if no
// valid snapshot exists.
func (s *snapshotStore) newest() (payload []byte, nextSlot int) {
	p0, p1 := s.read(0), s.read(1)
	seqOf := func(p []byte) uint16 { return uint16(p[2]) | uint16(p[3])<<8 }
	switch {
	case p0 == nil && p1 == nil:
		return nil, 0
	case p1 == nil:
		return p0, 1
	case p0 == nil:
		return p1, 0
	case int16(seqOf(p0)-seqOf(p1)) > 0: // wrap-safe comparison
		return p0, 1
	default:
		return p1, 0
	}
}

// applySnapshot deserialises a payload into the core, (for full
// snapshots) SRAM, and (if present) the peripheral aux state.
func (d *Device) applySnapshot(payload []byte) {
	core, bus := d.Core, d.Bus
	get16 := func(off int) uint16 {
		return uint16(payload[off]) | uint16(payload[off+1])<<8
	}
	kind := SnapshotKind(payload[4])
	sramLen := int(get16(6))
	auxLen := int(get16(8))
	off := headerLen
	for i := range core.R {
		core.R[i] = get16(off)
		off += 2
	}
	core.PC = get16(off)
	off += 2
	core.HI = get16(off)
	off += 2
	flags := get16(off)
	off += 2
	core.ZF = flags&1 != 0
	core.NF = flags&2 != 0
	core.CF = flags&4 != 0
	core.GE = flags&8 != 0
	core.Halted = false
	if kind == SnapFull {
		copy(bus.SRAM, payload[off:off+sramLen])
		off += sramLen
	}
	if auxLen > 0 && d.Aux != nil {
		if err := d.Aux.Restore(payload[off : off+auxLen]); err != nil {
			// A corrupt aux section must not resume with half-applied
			// peripheral state. Restore guarantees no mutation on error,
			// but make the outcome explicit: power-on defaults, the same
			// state a peripheral-naive runtime resumes with.
			d.Aux.Reset()
		}
	}
}

// SnapshotBytes returns the number of bytes a snapshot of the given kind
// moves to NVM, including peripheral aux state when enabled.
func (d *Device) SnapshotBytes(kind SnapshotKind) int {
	aux := 0
	if d.SnapshotAux && d.Aux != nil {
		aux = len(d.Aux.Capture())
		if aux > maxAuxBytes {
			aux = maxAuxBytes
		}
	}
	if kind == SnapRegs {
		return headerLen + regBytes + aux + trailerLen
	}
	return headerLen + regBytes + len(d.Bus.SRAM) + aux + trailerLen
}

// DefaultSnapshotKind returns the snapshot kind natural to the device
// configuration: registers-only for unified-FRAM systems, full otherwise.
func (d *Device) DefaultSnapshotKind() SnapshotKind {
	if d.P.UnifiedNV {
		return SnapRegs
	}
	return SnapFull
}

// SaveDuration returns the wall-clock time a snapshot of kind takes at the
// present clock frequency.
func (d *Device) SaveDuration(kind SnapshotKind) float64 {
	return float64(d.SnapshotBytes(kind)) * d.P.SaveCyclesPerByte / d.freq
}

// RestoreDuration returns the wall-clock time a restore of kind takes.
func (d *Device) RestoreDuration(kind SnapshotKind) float64 {
	return float64(d.SnapshotBytes(kind)) * d.P.RestoreCyclesPerByte / d.freq
}

// EstimateSnapshotEnergy returns E_s of the paper's eq. (4): the energy
// needed to complete one snapshot of the given kind at nominal rail
// voltage v.
func (d *Device) EstimateSnapshotEnergy(v float64, kind SnapshotKind) float64 {
	i := d.activeCurrent() + d.P.ISaveExtra
	return i * v * d.SaveDuration(kind)
}

// EstimateRestoreEnergy returns the energy one restore consumes at rail
// voltage v.
func (d *Device) EstimateRestoreEnergy(v float64, kind SnapshotKind) float64 {
	i := d.activeCurrent() + d.P.IRestoreExtra
	return i * v * d.RestoreDuration(kind)
}

// HasSnapshot reports whether a valid committed snapshot exists.
func (d *Device) HasSnapshot() bool {
	p, _ := d.snaps.newest()
	return p != nil
}

// InvalidateSnapshots erases both slots (used between experiments).
func (d *Device) InvalidateSnapshots() {
	d.snaps.invalidate(0)
	d.snaps.invalidate(1)
	d.snaps.nextSave, d.snaps.haveNext = 0, true
}

// BeginSave starts an asynchronous snapshot: the device enters ModeSaving
// for the DMA duration and, if power holds, commits the snapshot and calls
// onDone. The target slot's commit flag is cleared immediately, so a save
// interrupted by a brown-out leaves the previous snapshot untouched and
// the new slot invalid. Returns false if the device is not in a state that
// can save (off, or already busy).
func (d *Device) BeginSave(kind SnapshotKind, onDone func()) bool {
	if d.mode != ModeActive && d.mode != ModeSleep {
		return false
	}
	slot := d.snaps.nextSlot()
	d.snaps.invalidate(slot)
	payload := d.capture(kind)
	d.Stats.SavesStarted++
	d.mode = ModeSaving
	d.busyCyclesLeft = float64(len(payload)+trailerLen) * d.P.SaveCyclesPerByte
	d.onBusyDone = func() {
		d.snaps.write(slot, payload)
		d.Stats.SavesDone++
		d.mode = ModeActive
		if onDone != nil {
			onDone()
		}
	}
	return true
}

// BeginRestore starts an asynchronous restore of the newest valid
// snapshot. Returns false (and leaves the device state untouched) if no
// valid snapshot exists or the device cannot restore right now. On
// completion the volatile state is applied and execution resumes where the
// snapshot was taken; onDone (if non-nil) runs first.
func (d *Device) BeginRestore(onDone func()) bool {
	if d.mode != ModeActive && d.mode != ModeSleep {
		return false
	}
	payload, _ := d.snaps.newest()
	if payload == nil {
		return false
	}
	d.mode = ModeRestoring
	d.busyCyclesLeft = float64(len(payload)+trailerLen) * d.P.RestoreCyclesPerByte
	d.onBusyDone = func() {
		d.applySnapshot(payload)
		d.Stats.Restores++
		d.mode = ModeActive
		if onDone != nil {
			onDone()
		}
	}
	return true
}
