// Package mcu models the transiently-powered microcontroller the paper's
// runtimes execute on: an EVM-16 core behind a split SRAM/FRAM memory map,
// a DFS clock tree, an MSP430FR-flavoured current model, brown-out and
// power-on-reset behaviour, and an asynchronous snapshot engine that
// serialises volatile state into non-volatile memory.
//
// The Device implements circuit.Load, so it plugs directly onto a Rail: the
// rail integrates V_CC, the device draws mode-dependent current, and the
// experiment loop alternates rail steps with device ticks. Volatile state
// (registers + SRAM) is genuinely lost on brown-out — restored state can
// only come from a snapshot a runtime explicitly committed to FRAM, which
// is what makes the transient-computing comparisons honest.
package mcu

import "repro/internal/isa"

// Memory map defaults (matching programs.DefaultLayout).
const (
	DefaultSRAMBase = 0x0000
	DefaultSRAMSize = 0x1000 // 4 KiB volatile
	DefaultFRAMBase = 0x4000
	DefaultFRAMSize = 0xc000 // 48 KiB non-volatile
	DefaultSnapBase = 0xa000 // snapshot slots inside FRAM
)

// MMIO is a memory-mapped peripheral region handler. Offsets are relative
// to the region base.
type MMIO interface {
	ReadReg(off uint16) byte
	WriteReg(off uint16, v byte)
}

// DefaultMMIOBase is where the peripheral register window sits in the
// default memory map (the hole between SRAM and FRAM).
const (
	DefaultMMIOBase = 0x2000
	DefaultMMIOLen  = 0x0100
)

// Bus is the MCU memory system: SRAM (volatile) and FRAM (non-volatile)
// regions with per-region wait states, plus an optional memory-mapped
// peripheral window. Accesses outside all regions read zero and drop
// writes (open bus).
type Bus struct {
	SRAMBase uint16
	SRAM     []byte
	FRAMBase uint16
	FRAM     []byte

	// Peripheral window (optional; nil Periph disables it).
	MMIOBase uint16
	MMIOLen  uint16
	Periph   MMIO

	// FRAMWait is the extra cycles per FRAM access at the present core
	// frequency (MSP430FR parts insert wait states above ~8 MHz). The
	// Device updates it on frequency changes.
	FRAMWait uint64
}

// NewBus returns a bus with the default 4 KiB SRAM / 48 KiB FRAM map.
func NewBus() *Bus {
	return &Bus{
		SRAMBase: DefaultSRAMBase,
		SRAM:     make([]byte, DefaultSRAMSize),
		FRAMBase: DefaultFRAMBase,
		FRAM:     make([]byte, DefaultFRAMSize),
	}
}

// inSRAM reports whether addr falls in the SRAM region.
func (b *Bus) inSRAM(addr uint16) bool {
	return addr >= b.SRAMBase && uint32(addr) < uint32(b.SRAMBase)+uint32(len(b.SRAM))
}

// inFRAM reports whether addr falls in the FRAM region.
func (b *Bus) inFRAM(addr uint16) bool {
	return addr >= b.FRAMBase && uint32(addr) < uint32(b.FRAMBase)+uint32(len(b.FRAM))
}

// inMMIO reports whether addr falls in an enabled peripheral window.
func (b *Bus) inMMIO(addr uint16) bool {
	return b.Periph != nil && addr >= b.MMIOBase &&
		uint32(addr) < uint32(b.MMIOBase)+uint32(b.MMIOLen)
}

// Read8 implements isa.Bus.
func (b *Bus) Read8(addr uint16) byte {
	switch {
	case b.inSRAM(addr):
		return b.SRAM[addr-b.SRAMBase]
	case b.inFRAM(addr):
		return b.FRAM[addr-b.FRAMBase]
	case b.inMMIO(addr):
		return b.Periph.ReadReg(addr - b.MMIOBase)
	default:
		return 0
	}
}

// Write8 implements isa.Bus.
func (b *Bus) Write8(addr uint16, v byte) {
	switch {
	case b.inSRAM(addr):
		b.SRAM[addr-b.SRAMBase] = v
	case b.inFRAM(addr):
		b.FRAM[addr-b.FRAMBase] = v
	case b.inMMIO(addr):
		b.Periph.WriteReg(addr-b.MMIOBase, v)
	}
}

// Read16 implements isa.Bus (little endian). Accesses that fall entirely
// inside one RAM region take a single-bounds-check fast path; anything
// else (region edges, MMIO, open bus) falls back to the byte-wise reads,
// preserving their exact semantics and side-effect order.
func (b *Bus) Read16(addr uint16) uint16 {
	if i := int(addr) - int(b.SRAMBase); i >= 0 && i+1 < len(b.SRAM) {
		return uint16(b.SRAM[i]) | uint16(b.SRAM[i+1])<<8
	}
	if i := int(addr) - int(b.FRAMBase); i >= 0 && i+1 < len(b.FRAM) {
		return uint16(b.FRAM[i]) | uint16(b.FRAM[i+1])<<8
	}
	return uint16(b.Read8(addr)) | uint16(b.Read8(addr+1))<<8
}

// Write16 implements isa.Bus.
func (b *Bus) Write16(addr uint16, v uint16) {
	if i := int(addr) - int(b.SRAMBase); i >= 0 && i+1 < len(b.SRAM) {
		b.SRAM[i] = byte(v)
		b.SRAM[i+1] = byte(v >> 8)
		return
	}
	if i := int(addr) - int(b.FRAMBase); i >= 0 && i+1 < len(b.FRAM) {
		b.FRAM[i] = byte(v)
		b.FRAM[i+1] = byte(v >> 8)
		return
	}
	b.Write8(addr, byte(v))
	b.Write8(addr+1, byte(v>>8))
}

// Fetch implements isa.FetchBus: the instruction bytes at addr and the
// fetch's wait-state cycles in one call. FRAM is probed first — code
// lives there in both memory layouts. The cross-region fallback mirrors
// the interpreter's legacy byte-wise fetch exactly, including not
// touching bytes 2–3 for a 2-byte opcode (so an instruction adjacent to
// the MMIO window cannot trigger spurious peripheral reads).
func (b *Bus) Fetch(addr uint16) ([4]byte, uint64) {
	var raw [4]byte
	if i := int(addr) - int(b.FRAMBase); i >= 0 && i+3 < len(b.FRAM) {
		copy(raw[:], b.FRAM[i:i+4])
		return raw, b.FRAMWait
	}
	if i := int(addr) - int(b.SRAMBase); i >= 0 && i+3 < len(b.SRAM) {
		copy(raw[:], b.SRAM[i:i+4])
		return raw, 0
	}
	raw[0] = b.Read8(addr)
	raw[1] = b.Read8(addr + 1)
	if isa.Length(isa.Op(raw[0])) == 4 {
		raw[2] = b.Read8(addr + 2)
		raw[3] = b.Read8(addr + 3)
	}
	return raw, b.AccessCycles(addr, false)
}

// AccessCycles implements isa.Bus: FRAM accesses pay the configured wait
// states; SRAM is zero-wait.
func (b *Bus) AccessCycles(addr uint16, _ bool) uint64 {
	if b.inFRAM(addr) {
		return b.FRAMWait
	}
	return 0
}

// ReadRange fills dst with the bytes at addr..addr+len(dst)-1, exactly
// as len(dst) successive Read8 calls would (including address wrap and
// open-bus zeros), but block-copying the spans that fall inside SRAM or
// FRAM. MMIO bytes still go through Read8 so peripheral side effects and
// ordering are preserved.
func (b *Bus) ReadRange(addr uint16, dst []byte) {
	for len(dst) > 0 {
		if i := int(addr) - int(b.SRAMBase); i >= 0 && i < len(b.SRAM) {
			n := copy(dst, b.SRAM[i:])
			dst = dst[n:]
			addr += uint16(n)
			continue
		}
		if i := int(addr) - int(b.FRAMBase); i >= 0 && i < len(b.FRAM) {
			n := copy(dst, b.FRAM[i:])
			dst = dst[n:]
			addr += uint16(n)
			continue
		}
		dst[0] = b.Read8(addr)
		dst = dst[1:]
		addr++
	}
}

// WriteRange stores src at addr..addr+len(src)-1, exactly as len(src)
// successive Write8 calls would (wrap, dropped open-bus writes), with
// SRAM/FRAM spans block-copied and MMIO bytes routed through Write8.
func (b *Bus) WriteRange(addr uint16, src []byte) {
	for len(src) > 0 {
		if i := int(addr) - int(b.SRAMBase); i >= 0 && i < len(b.SRAM) {
			n := copy(b.SRAM[i:], src)
			src = src[n:]
			addr += uint16(n)
			continue
		}
		if i := int(addr) - int(b.FRAMBase); i >= 0 && i < len(b.FRAM) {
			n := copy(b.FRAM[i:], src)
			src = src[n:]
			addr += uint16(n)
			continue
		}
		b.Write8(addr, src[0])
		src = src[1:]
		addr++
	}
}

// ScrambleSRAM overwrites all SRAM with a decaying-retention pattern,
// modelling the loss of volatile contents during a brown-out. The pattern
// is deliberately non-zero so code that "accidentally works" with zeroed
// memory still fails without a genuine restore.
func (b *Bus) ScrambleSRAM(seed uint32) {
	x := seed | 1
	for i := range b.SRAM {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		b.SRAM[i] = byte(x)
	}
}

// FetchWindow implements isa.WindowBus: SRAM and FRAM are side-effect-
// free contiguous regions the core may fetch from by direct indexing.
// The FRAM window's wait pointer tracks frequency-dependent wait states
// live, so a DFS switch needs no window re-probe. MMIO and open bus have
// no window.
func (b *Bus) FetchWindow(addr uint16) (isa.FetchWindow, bool) {
	if b.inFRAM(addr) {
		return isa.FetchWindow{Mem: b.FRAM, Base: b.FRAMBase, Wait: &b.FRAMWait}, true
	}
	if b.inSRAM(addr) {
		return isa.FetchWindow{Mem: b.SRAM, Base: b.SRAMBase}, true
	}
	return isa.FetchWindow{}, false
}

var _ isa.Bus = (*Bus)(nil)
var _ isa.FetchBus = (*Bus)(nil)
var _ isa.WindowBus = (*Bus)(nil)
