package mcu

import (
	"fmt"

	"repro/internal/isa"
)

// Mode is the device power/activity state.
type Mode int

// Device modes.
const (
	ModeOff       Mode = iota // unpowered; volatile state lost
	ModeActive                // executing instructions
	ModeSleep                 // retention sleep (LPM): state held, no execution
	ModeSaving                // snapshot DMA to NVM in progress
	ModeRestoring             // snapshot DMA from NVM in progress
)

// String returns a short mode name.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeActive:
		return "active"
	case ModeSleep:
		return "sleep"
	case ModeSaving:
		return "saving"
	case ModeRestoring:
		return "restoring"
	}
	return "?"
}

// Params is the device's electrical and architectural configuration. The
// defaults are MSP430FR-flavoured: a low-power 16-bit MCU with DFS levels
// from 1–24 MHz, microamp sleep currents, and FRAM wait states above 8 MHz.
type Params struct {
	FreqLevels []float64 // selectable core frequencies, Hz (ascending)
	FreqIndex  int       // initial DFS level index

	VOn  float64 // power-on-reset threshold (rising)
	VOff float64 // brown-out threshold (falling)

	// Current model (amperes). Active draw is IActiveBase +
	// IActivePerMHz·f(MHz), plus IFRAMExtra when running with unified
	// (always-on) FRAM data memory, the QuickRecall configuration.
	IActiveBase   float64
	IActivePerMHz float64
	ISleep        float64
	IOff          float64
	ISaveExtra    float64 // added to active draw during snapshot writes
	IRestoreExtra float64
	IFRAMExtra    float64

	// Snapshot DMA costs, cycles per byte moved.
	SaveCyclesPerByte    float64
	RestoreCyclesPerByte float64

	// FRAM wait states: accesses pay FRAMWaitCycles when the core clock
	// exceeds FRAMWaitAboveHz.
	FRAMWaitAboveHz float64
	FRAMWaitCycles  uint64

	// UnifiedNV marks a QuickRecall-style system: program data lives in
	// FRAM (higher quiescent power) and snapshots cover registers only.
	UnifiedNV bool
}

// DefaultParams returns the split-memory (SRAM working set) configuration.
func DefaultParams() Params {
	return Params{
		FreqLevels:           []float64{1e6, 2e6, 4e6, 8e6, 16e6, 24e6},
		FreqIndex:            3, // 8 MHz
		VOn:                  2.0,
		VOff:                 1.8,
		IActiveBase:          200e-6,
		IActivePerMHz:        150e-6,
		ISleep:               1.5e-6,
		IOff:                 50e-9,
		ISaveExtra:           1.5e-3,
		IRestoreExtra:        0.8e-3,
		IFRAMExtra:           125e-6,
		SaveCyclesPerByte:    2,
		RestoreCyclesPerByte: 1,
		FRAMWaitAboveHz:      8e6,
		FRAMWaitCycles:       1,
	}
}

// UnifiedNVParams returns the QuickRecall-style unified-FRAM configuration.
func UnifiedNVParams() Params {
	p := DefaultParams()
	p.UnifiedNV = true
	return p
}

// Stats counts externally observable events over a run.
type Stats struct {
	PowerOns      int // power-on resets
	BrownOuts     int // volatile-state losses
	ColdStarts    int // boots with no valid snapshot (restart from scratch)
	Restores      int // successful snapshot restores
	SavesStarted  int
	SavesDone     int
	SavesAborted  int // save in progress when power failed
	WakeNoRestore int // slept through a dip and resumed without restore

	ActiveSec  float64
	SleepSec   float64
	SaveSec    float64
	RestoreSec float64
	OffSec     float64

	CyclesRun uint64
}

// AuxState is volatile device state that lives outside the memory map —
// peripheral configuration registers, above all. The paper's discussion
// section calls out exactly this gap: "work to date has primarily focused
// on computation, and not the plethora of peripherals that are typically
// present in embedded systems". A brown-out resets aux state; snapshots
// include it only when SnapshotAux is enabled on the device, which is what
// separates a peripheral-aware runtime from a naive one.
type AuxState interface {
	// Capture serialises the present state.
	Capture() []byte
	// Restore applies a previously captured state. A payload that does
	// not match the implementation's Capture layout must be rejected
	// with an error and leave the state untouched — a half-applied
	// restore is exactly the silent-corruption failure mode snapshots
	// exist to prevent.
	Restore(data []byte) error
	// Reset returns the state to its power-on defaults.
	Reset()
}

// Runtime is a transient-computing runtime attached to the device: it
// receives power-on, per-tick and checkpoint-trap callbacks, and drives
// snapshots through the device's Begin* methods. Implementations live in
// package transient.
type Runtime interface {
	Name() string
	// OnPowerOn runs after a power-on reset, before any instruction
	// executes. Typical actions: BeginRestore, or Sleep until a restore
	// threshold.
	OnPowerOn(d *Device)
	// OnTick runs every simulation tick while the device is powered.
	OnTick(d *Device, v float64)
	// OnCheckpointTrap runs when the guest executes a CHK instruction.
	OnCheckpointTrap(d *Device)
}

// SleepWaker is optionally implemented by runtimes whose OnTick is a
// guaranteed no-op while the device sleeps below a wake threshold: the
// runtime is only waiting for V_CC to rise to that level (hibernus waiting
// for V_R, for example). Simulation harnesses use it to fast-forward
// sleeping stretches analytically — a runtime that does work while the
// device sleeps must not implement it.
type SleepWaker interface {
	// WakeThreshold returns the voltage below which a sleeping device's
	// OnTick does nothing (+Inf if OnTick never acts on a sleeping device).
	WakeThreshold() float64
}

// ActiveThresholds is optionally implemented by runtimes whose behaviour
// while the device executes is governed purely by rail-voltage
// thresholds. Implementations promise that, in ModeActive:
//
//   - OnTick mutates state only on a tick whose voltage lies on the
//     other side of one of the returned thresholds than the previous
//     tick's voltage did, and is a guaranteed no-op in between; and
//   - OnCheckpointTrap never mutates device or runtime state.
//
// ActiveSettled refines the first promise for hop entry: it reports
// whether OnTick is already a no-op at rail voltages on v's side of
// every threshold (hibernus, for example, is unsettled right after a
// restore completes above V_H, because its first tick re-arms the
// falling-edge detector). Simulation harnesses use the contract to
// execute whole active stretches against a closed-form rail trajectory,
// ending each stretch strictly before a threshold crossing so the
// runtime observes every crossing on its exact step boundary.
type ActiveThresholds interface {
	// ActiveThresholds returns the rail-voltage thresholds governing the
	// runtime's active-mode behaviour.
	ActiveThresholds() []float64
	// ActiveSettled reports whether active-mode OnTick is a guaranteed
	// no-op at voltages on v's side of every threshold.
	ActiveSettled(v float64) bool
}

// Device is the simulated MCU.
type Device struct {
	P    Params
	Core *isa.Core
	Bus  *Bus

	prog  *isa.Program
	entry uint16
	rt    Runtime

	mode  Mode
	now   float64
	lastV float64

	freq           float64
	cycleRemainder float64

	// busy DMA state (ModeSaving / ModeRestoring)
	busyCyclesLeft float64
	onBusyDone     func()

	snaps    *snapshotStore
	scramble uint32

	// Aux is volatile out-of-memory state (peripheral registers); nil if
	// the device has none. SnapshotAux controls whether snapshots cover
	// it — the peripheral-awareness switch.
	Aux         AuxState
	SnapshotAux bool

	Stats Stats
	Err   error // first guest execution error, if any

	// SysHandler receives guest SYS traps (set by the harness before
	// Attach so workload completions can be counted).
	SysHandler func(code uint16, c *isa.Core)
}

// New builds a device from params and a program image. The image is loaded
// into the bus once; the non-volatile part survives power cycles, while
// any part the program keeps in SRAM must be re-initialised by the guest
// after a cold start (the workloads in package programs do this).
func New(p Params, prog *isa.Program) *Device {
	if len(p.FreqLevels) == 0 {
		p.FreqLevels = DefaultParams().FreqLevels
	}
	if p.FreqIndex < 0 || p.FreqIndex >= len(p.FreqLevels) {
		p.FreqIndex = len(p.FreqLevels) - 1
	}
	d := &Device{
		P:     p,
		Bus:   NewBus(),
		prog:  prog,
		entry: prog.Entry,
		mode:  ModeOff,
	}
	d.Core = &isa.Core{Bus: d.Bus}
	d.Core.Sys = func(code uint16, c *isa.Core) {
		if d.SysHandler != nil {
			d.SysHandler(code, c)
		}
	}
	d.Core.Checkpoint = func(*isa.Core) {
		if d.rt != nil {
			d.rt.OnCheckpointTrap(d)
		}
	}
	prog.LoadInto(d.Bus)
	d.snaps = newSnapshotStore(d.Bus, DefaultSnapBase)
	d.setFreq(p.FreqIndex)
	return d
}

// Attach installs a transient runtime. Pass nil for a bare device (the
// "unprotected" baseline that loses all progress on every outage).
func (d *Device) Attach(rt Runtime) { d.rt = rt }

// Runtime returns the attached runtime, or nil.
func (d *Device) Runtime() Runtime { return d.rt }

// Mode returns the device's present mode.
func (d *Device) Mode() Mode { return d.mode }

// Now returns the device-local time in seconds.
func (d *Device) Now() float64 { return d.now }

// LastV returns the rail voltage seen at the most recent tick — the
// ADC/comparator view runtimes use for threshold decisions.
func (d *Device) LastV() float64 { return d.lastV }

// Freq returns the present core frequency in Hz.
func (d *Device) Freq() float64 { return d.freq }

// FreqIndex returns the present DFS level index.
func (d *Device) FreqIndex() int { return d.P.FreqIndex }

// SetFreqIndex switches the DFS level (clamped to the valid range). This
// is the "hook" power-neutral governors actuate.
func (d *Device) SetFreqIndex(i int) {
	if i < 0 {
		i = 0
	}
	if i >= len(d.P.FreqLevels) {
		i = len(d.P.FreqLevels) - 1
	}
	d.setFreq(i)
}

func (d *Device) setFreq(i int) {
	d.P.FreqIndex = i
	d.freq = d.P.FreqLevels[i]
	if d.freq > d.P.FRAMWaitAboveHz {
		d.Bus.FRAMWait = d.P.FRAMWaitCycles
	} else {
		d.Bus.FRAMWait = 0
	}
}

// activeCurrent returns the execution-mode current at the present clock.
func (d *Device) activeCurrent() float64 {
	i := d.P.IActiveBase + d.P.IActivePerMHz*(d.freq/1e6)
	if d.P.UnifiedNV {
		i += d.P.IFRAMExtra
	}
	return i
}

// Current implements circuit.Load: the mode-dependent supply draw.
func (d *Device) Current(v, _ float64) float64 {
	if v <= 0 {
		return 0
	}
	switch d.mode {
	case ModeOff:
		return d.P.IOff
	case ModeSleep:
		return d.P.ISleep
	case ModeActive:
		return d.activeCurrent()
	case ModeSaving:
		return d.activeCurrent() + d.P.ISaveExtra
	case ModeRestoring:
		return d.activeCurrent() + d.P.IRestoreExtra
	}
	return 0
}

// Tick advances the device by dt seconds at rail voltage v: handles
// power-on/brown-out transitions, gives the runtime its tick, and executes
// instructions or advances DMA according to mode.
func (d *Device) Tick(v, dt float64) {
	d.now += dt
	d.lastV = v

	if d.mode == ModeOff {
		d.Stats.OffSec += dt
		if v >= d.P.VOn {
			d.powerOn()
		}
		return
	}
	if v < d.P.VOff {
		d.brownOut()
		d.Stats.OffSec += dt
		return
	}

	if d.rt != nil {
		d.rt.OnTick(d, v)
	}

	switch d.mode {
	case ModeActive:
		d.Stats.ActiveSec += dt
		d.executeFor(dt)
	case ModeSleep:
		d.Stats.SleepSec += dt
	case ModeSaving:
		d.Stats.SaveSec += dt
		d.advanceBusy(dt)
	case ModeRestoring:
		d.Stats.RestoreSec += dt
		d.advanceBusy(dt)
	}
}

// AdvanceActive advances an executing device by n steps of dt without
// per-step rail coupling: simulated time, ActiveSec, and the execution
// budget advance step by step exactly as n Tick calls would, but the
// runtime's OnTick is not invoked and LastV is not refreshed. The caller
// (the lab's adaptive stepper) has verified via the ActiveThresholds
// contract that no threshold crossing — brown-out included — can occur
// inside the span, so every skipped OnTick would have been a no-op; it
// must advance the rail by the same count afterwards and publish the
// resulting voltage with NoteRailV. The return value is the number of
// steps actually taken: fewer than n only if the device left ModeActive
// mid-span (a guest fault cannot do this; only a contract breach can).
func (d *Device) AdvanceActive(n int, dt float64) int {
	for k := 0; k < n; k++ {
		if d.mode != ModeActive {
			return k
		}
		d.now += dt
		d.Stats.ActiveSec += dt
		d.executeFor(dt)
	}
	return n
}

// NoteRailV records the rail voltage after an externally advanced active
// stretch, keeping LastV coherent for runtimes and governors without
// re-running the tick's mode machinery.
func (d *Device) NoteRailV(v float64) { d.lastV = v }

// TickSpan advances an off or sleeping device through n steps of dt
// ending at rail voltage v, with the clock and the time-in-mode stats
// accumulated per step so their floating-point rounding matches n
// successive Tick calls bit-for-bit. The caller guarantees no
// mode-changing threshold is crossed inside the span (v and every
// intermediate voltage stay on the quiescent side of V_On / V_Off / the
// runtime's wake threshold); a sleeping runtime's OnTick is invoked
// once, at the end, where the SleepWaker contract makes it a no-op.
func (d *Device) TickSpan(v, dt float64, n int) {
	for k := 0; k < n; k++ {
		d.now += dt
	}
	d.lastV = v
	switch d.mode {
	case ModeOff:
		for k := 0; k < n; k++ {
			d.Stats.OffSec += dt
		}
	case ModeSleep:
		for k := 0; k < n; k++ {
			d.Stats.SleepSec += dt
		}
		if d.rt != nil {
			d.rt.OnTick(d, v)
		}
	}
}

// executeFor runs guest instructions for dt seconds of core time. The
// budget carries a fractional remainder so slow ticks against fast clocks
// stay cycle-exact on average.
func (d *Device) executeFor(dt float64) {
	budget := d.freq*dt + d.cycleRemainder
	// RunBudget replays cached superblocks with per-instruction budget
	// accounting identical to a Step loop; it returns after every SYS/CHK
	// trap so the mode gate below is re-checked exactly where the
	// stepwise loop would have checked it.
	for budget >= 1 && d.mode == ModeActive && !d.Core.Halted {
		rem, spent, err := d.Core.RunBudget(budget)
		budget = rem
		d.Stats.CyclesRun += spent
		if err != nil {
			if d.Err == nil {
				d.Err = fmt.Errorf("mcu: guest fault at t=%.6fs: %w", d.now, err)
			}
			break
		}
	}
	if budget < 0 {
		budget = 0
	}
	if d.mode != ModeActive {
		// A runtime hook switched modes mid-tick; drop the remainder so
		// save/restore timing does not borrow execution budget.
		budget = 0
	}
	if budget >= 1 && (d.Core.Halted || d.Err != nil) {
		budget = 0 // halted cores burn no further cycles
	}
	d.cycleRemainder = budget
}

// advanceBusy progresses an in-flight save/restore DMA.
func (d *Device) advanceBusy(dt float64) {
	d.busyCyclesLeft -= d.freq * dt
	if d.busyCyclesLeft <= 0 {
		done := d.onBusyDone
		d.onBusyDone = nil
		d.busyCyclesLeft = 0
		if done != nil {
			done()
		}
	}
}

// brownOut destroys volatile state and powers the device down.
func (d *Device) brownOut() {
	if d.mode == ModeSaving {
		d.Stats.SavesAborted++
		// The in-flight slot was invalidated at BeginSave time; the
		// partial write simply never commits.
	}
	d.Stats.BrownOuts++
	d.scramble++
	d.Bus.ScrambleSRAM(d.scramble*2654435761 + 0x9e37)
	d.Core.Reset(d.entry)
	d.Core.R[1] = 0xdead // registers are garbage after power loss
	if d.Aux != nil {
		d.Aux.Reset() // peripheral registers are just as volatile
	}
	d.mode = ModeOff
	d.busyCyclesLeft = 0
	d.onBusyDone = nil
	d.cycleRemainder = 0
}

// powerOn performs a power-on reset and hands control to the runtime.
func (d *Device) powerOn() {
	d.Stats.PowerOns++
	d.Core.Reset(d.entry)
	d.mode = ModeActive
	d.cycleRemainder = 0
	if d.rt != nil {
		d.rt.OnPowerOn(d)
	} else {
		d.Stats.ColdStarts++
	}
}

// ColdStart restarts the guest from its entry point, abandoning any saved
// state. Runtimes call this when no valid snapshot exists.
func (d *Device) ColdStart() {
	d.Core.Reset(d.entry)
	d.mode = ModeActive
	d.cycleRemainder = 0
	d.Stats.ColdStarts++
}

// Sleep puts the device into retention sleep (state held, ~µA draw).
func (d *Device) Sleep() {
	if d.mode == ModeActive || d.mode == ModeSleep {
		d.mode = ModeSleep
	}
}

// Wake resumes execution from retention sleep without a restore — the
// hibernus fast path when the supply recovered before a brown-out.
func (d *Device) Wake() {
	if d.mode == ModeSleep {
		d.mode = ModeActive
		d.Stats.WakeNoRestore++
	}
}
