package periph

import (
	"testing"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/transient"
)

func TestBankRegisterDefaults(t *testing.T) {
	b := NewBank()
	if b.ReadReg(RegADCGain) != 1 {
		t.Error("default gain should be 1")
	}
	if b.ReadReg(RegADCCtrl) != 0 {
		t.Error("ADC should power on disabled")
	}
	// Disabled ADC reads zero and does not advance the sequencer.
	if b.ReadReg(RegADCData) != 0 || b.SamplesRead != 0 {
		t.Error("disabled ADC must read 0")
	}
}

func TestADCGainAndSequence(t *testing.T) {
	b := NewBank()
	b.WriteReg(RegADCCtrl, 1)
	b.WriteReg(RegADCGain, 3)
	v0 := b.ReadReg(RegADCData)
	v1 := b.ReadReg(RegADCData)
	if v0 != 3*RawSample(0, 0) || v1 != 3*RawSample(0, 1) {
		t.Errorf("gained samples = %d,%d want %d,%d", v0, v1, 3*RawSample(0, 0), 3*RawSample(0, 1))
	}
	// Channel select changes the raw value.
	b.WriteReg(RegADCChan, 2)
	if got := b.ReadReg(RegADCData); got != 3*RawSample(2, 2) {
		t.Errorf("channel sample = %d, want %d", got, 3*RawSample(2, 2))
	}
	// Saturation at 255.
	b.WriteReg(RegADCGain, 255)
	if got := b.ReadReg(RegADCData); got != 255 {
		t.Errorf("saturated sample = %d, want 255", got)
	}
}

func TestRadioHandshake(t *testing.T) {
	b := NewBank()
	b.WriteReg(RegRadTx, 0x42) // unconfigured: dropped
	if len(b.TxDelivered) != 0 || b.TxDropped != 1 {
		t.Error("unconfigured radio must drop")
	}
	b.WriteReg(RegRadCfg, RadioMagic)
	b.WriteReg(RegRadTx, 0x42)
	if len(b.TxDelivered) != 1 || b.TxDelivered[0] != 0x42 {
		t.Error("configured radio must deliver")
	}
}

func TestAuxStateRoundTrip(t *testing.T) {
	b := NewBank()
	b.WriteReg(RegADCCtrl, 1)
	b.WriteReg(RegADCGain, 7)
	b.WriteReg(RegADCChan, 3)
	b.WriteReg(RegRadCfg, RadioMagic)
	b.ReadReg(RegADCData) // advance seq
	b.ReadReg(RegADCData)
	snap := b.Capture()
	b.Reset()
	if b.ReadReg(RegADCGain) != 1 {
		t.Fatal("reset did not restore defaults")
	}
	if err := b.Restore(snap); err != nil {
		t.Fatalf("restoring a Capture payload: %v", err)
	}
	if b.ReadReg(RegADCGain) != 7 || b.ReadReg(RegADCChan) != 3 ||
		b.ReadReg(RegRadCfg) != RadioMagic {
		t.Error("restore lost register state")
	}
	// Sequence continues where it left off.
	if got := b.ReadReg(RegADCData); got != 7*RawSample(3, 2) {
		t.Errorf("post-restore sample = %d, want %d", got, 7*RawSample(3, 2))
	}
}

func TestRestoreRejectsMalformedPayloads(t *testing.T) {
	b := NewBank()
	b.WriteReg(RegADCCtrl, 1)
	b.WriteReg(RegADCGain, 7)
	b.WriteReg(RegADCChan, 3)
	b.WriteReg(RegRadCfg, RadioMagic)
	b.ReadReg(RegADCData) // seq = 1
	want := b.Capture()

	bad := [][]byte{
		nil,
		{},
		{1, 2}, // truncated
		make([]byte, bankStateLen-1),
		make([]byte, bankStateLen+1), // trailing garbage
		make([]byte, 64),
	}
	for _, payload := range bad {
		if err := b.Restore(payload); err == nil {
			t.Errorf("Restore accepted a %d-byte payload", len(payload))
		}
		// A rejected restore must not have touched any register: the
		// bank still captures to exactly the pre-call state.
		if got := b.Capture(); string(got) != string(want) {
			t.Fatalf("failed restore mutated state: % x -> % x (payload %d bytes)",
				want, got, len(payload))
		}
	}
	// The exact Capture length still restores.
	if err := b.Restore(want); err != nil {
		t.Fatalf("round-trip after rejections: %v", err)
	}
}

func TestExpectedSumReference(t *testing.T) {
	// Hand-check a tiny case: n=2, gain=2, channel 0.
	want := uint16(2*RawSample(0, 0)) + uint16(2*RawSample(0, 1))
	if got := ExpectedSum(2, 2, 0); got != want {
		t.Errorf("ExpectedSum = %d, want %d", got, want)
	}
}

func TestSenseWorkloadStablePower(t *testing.T) {
	// Under stable power the guest must reproduce the host reference sum
	// and deliver every transmission.
	var bank *Bank
	res, err := lab.Run(lab.Setup{
		Workload:  SenseWorkload(64, 3, programs.DefaultLayout()),
		Params:    mcu.DefaultParams(),
		Configure: func(d *mcu.Device) { bank = Attach(d, false) },
		VSource:   &source.ConstantVoltage{V: 3.3, Rs: 50},
		C:         10e-6,
		Duration:  0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions == 0 || res.WrongResults != 0 {
		t.Fatalf("stable run: %d ok, %d wrong", res.Completions, res.WrongResults)
	}
	if bank.TxDropped != 0 {
		t.Errorf("%d transmissions dropped under stable power", bank.TxDropped)
	}
	if len(bank.TxDelivered) == 0 {
		t.Error("no transmissions delivered")
	}
}

// periphSetup builds the intermittent-supply scenario for the
// naive-vs-aware comparison.
func periphSetup(aware bool, bank **Bank) lab.Setup {
	return lab.Setup{
		Workload:  SenseWorkload(64, 3, programs.DefaultLayout()),
		Params:    mcu.DefaultParams(),
		Configure: func(d *mcu.Device) { *bank = Attach(d, aware) },
		MakeRuntime: func(d *mcu.Device) mcu.Runtime {
			return transient.NewHibernus(d, 10e-6, 1.1, 0.35)
		},
		VSource:  &source.SquareWaveVoltage{High: 3.3, OnTime: 0.004, OffTime: 0.150, Rs: 100},
		C:        10e-6,
		LeakR:    50e3,
		Duration: 3.0,
	}
}

func TestNaiveCheckpointingCorruptsPeripheralWork(t *testing.T) {
	// The paper's discussion-gap, demonstrated: hibernus restores CPU and
	// RAM perfectly, but the restored program believes it already
	// configured the ADC gain and the radio — which a brown-out silently
	// reset. Results are wrong and transmissions vanish.
	var bank *Bank
	res, err := lab.Run(periphSetup(false, &bank))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BrownOuts == 0 {
		t.Fatal("testbed produced no outages")
	}
	if res.WrongResults == 0 {
		t.Error("naive restore should produce wrong results (stale calibration)")
	}
	if bank.TxDropped == 0 {
		t.Error("naive restore should drop transmissions (deaf radio)")
	}
}

func TestAwareCheckpointingPreservesPeripheralWork(t *testing.T) {
	var bank *Bank
	res, err := lab.Run(periphSetup(true, &bank))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BrownOuts == 0 {
		t.Fatal("testbed produced no outages")
	}
	if res.Completions == 0 {
		t.Fatal("aware system made no progress")
	}
	if res.WrongResults != 0 {
		t.Errorf("aware restore still produced %d wrong results", res.WrongResults)
	}
	if bank.TxDropped != 0 {
		t.Errorf("aware restore still dropped %d transmissions", bank.TxDropped)
	}
}

func TestAwareSnapshotIsLarger(t *testing.T) {
	// Peripheral awareness costs snapshot bytes — the trade the paper's
	// discussion implies. Verify it is visible and bounded.
	w := SenseWorkload(8, 1, programs.DefaultLayout())
	mk := func(aware bool) *mcu.Device {
		p, err := asm(w)
		if err != nil {
			t.Fatal(err)
		}
		d := mcu.New(mcu.DefaultParams(), p)
		Attach(d, aware)
		return d
	}
	naive := mk(false).SnapshotBytes(mcu.SnapFull)
	aware := mk(true).SnapshotBytes(mcu.SnapFull)
	if aware <= naive {
		t.Errorf("aware snapshot (%d B) should exceed naive (%d B)", aware, naive)
	}
	if aware-naive > 64 {
		t.Errorf("peripheral state added %d B; expected a small register file", aware-naive)
	}
}
