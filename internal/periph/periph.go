// Package periph implements the extension the paper's discussion section
// identifies as missing from transient-computing work: peripherals.
// ("However, work to date has primarily focused on computation, and not
// the plethora of peripherals that are typically present in embedded
// systems.")
//
// The package provides a memory-mapped peripheral bank — an ADC-style
// sensor with configuration registers (gain, channel) and a radio with a
// configuration handshake — whose registers are genuinely volatile: a
// brown-out resets them to power-on defaults, exactly like the CPU's own
// state. A checkpointing runtime that restores CPU + RAM but not the
// peripheral bank resumes with a *misconfigured* sensor and a deaf radio;
// the guest then computes dutifully on garbage. Enabling the device's
// SnapshotAux switch includes the bank in snapshots (through mcu.AuxState)
// and closes the gap.
//
// Register map (offsets within the MMIO window at mcu.DefaultMMIOBase):
//
//	0x00  ADC_CTRL   bit0 = enable (default 0)
//	0x01  ADC_GAIN   sample multiplier (default 1)
//	0x02  ADC_CHAN   input channel (default 0)
//	0x03  ADC_DATA   read: next sample = raw(chan, seq) × gain (enable required)
//	0x10  RAD_CFG    must be written 0xA5 before the radio accepts data
//	0x11  RAD_PWR    transmit power (informational)
//	0x12  RAD_TX     write: transmit one byte (dropped if unconfigured)
package periph

import (
	"fmt"
	"math"
)

// Register offsets.
const (
	RegADCCtrl = 0x00
	RegADCGain = 0x01
	RegADCChan = 0x02
	RegADCData = 0x03
	RegRadCfg  = 0x10
	RegRadPwr  = 0x11
	RegRadTx   = 0x12

	// RadioMagic is the configuration value the radio requires.
	RadioMagic = 0xa5
)

// Bank is the peripheral set. It implements both mcu.MMIO (bus side) and
// mcu.AuxState (snapshot side).
type Bank struct {
	// Volatile register file.
	adcCtrl byte
	adcGain byte
	adcChan byte
	radCfg  byte
	radPwr  byte
	// seq is the ADC sample sequencer — also volatile device state: a
	// restart replays the sequence, a true restore continues it.
	seq uint16

	// Telemetry (host side, not part of device state).
	SamplesRead int
	TxDelivered []byte
	TxDropped   int
}

// NewBank returns a bank in its power-on state.
func NewBank() *Bank {
	b := &Bank{}
	b.Reset()
	return b
}

// Reset implements mcu.AuxState: power-on defaults.
func (b *Bank) Reset() {
	b.adcCtrl = 0
	b.adcGain = 1
	b.adcChan = 0
	b.radCfg = 0
	b.radPwr = 0
	b.seq = 0
}

// Capture implements mcu.AuxState.
func (b *Bank) Capture() []byte {
	return []byte{
		b.adcCtrl, b.adcGain, b.adcChan, b.radCfg, b.radPwr,
		byte(b.seq), byte(b.seq >> 8),
	}
}

// bankStateLen is the exact Capture payload size: five registers plus
// the 16-bit sequencer.
const bankStateLen = 7

// Restore implements mcu.AuxState. Anything but an exact Capture
// payload — truncated or oversized — is rejected without touching the
// register file: a trailing-garbage payload accepted leniently would
// mask a framing bug in the snapshot codec, and a partial apply would
// be the silent peripheral corruption this package exists to model.
func (b *Bank) Restore(data []byte) error {
	if len(data) != bankStateLen {
		return fmt.Errorf("periph: aux payload is %d bytes, want %d", len(data), bankStateLen)
	}
	b.adcCtrl = data[0]
	b.adcGain = data[1]
	b.adcChan = data[2]
	b.radCfg = data[3]
	b.radPwr = data[4]
	b.seq = uint16(data[5]) | uint16(data[6])<<8
	return nil
}

// RawSample returns the deterministic underlying sensor value for a given
// channel and sequence index — the physical quantity, before gain.
func RawSample(channel byte, seq uint16) byte {
	return byte((uint32(seq)*7 + 13 + uint32(channel)*5) & 0x1f)
}

// ReadReg implements mcu.MMIO.
func (b *Bank) ReadReg(off uint16) byte {
	switch off {
	case RegADCCtrl:
		return b.adcCtrl
	case RegADCGain:
		return b.adcGain
	case RegADCChan:
		return b.adcChan
	case RegADCData:
		if b.adcCtrl&1 == 0 {
			return 0 // disabled ADC reads zero
		}
		raw := RawSample(b.adcChan, b.seq)
		b.seq++
		b.SamplesRead++
		v := uint32(raw) * uint32(b.adcGain)
		return byte(math.Min(float64(v), 255))
	case RegRadCfg:
		return b.radCfg
	case RegRadPwr:
		return b.radPwr
	default:
		return 0
	}
}

// WriteReg implements mcu.MMIO.
func (b *Bank) WriteReg(off uint16, v byte) {
	switch off {
	case RegADCCtrl:
		b.adcCtrl = v
	case RegADCGain:
		b.adcGain = v
	case RegADCChan:
		b.adcChan = v
	case RegRadCfg:
		b.radCfg = v
	case RegRadPwr:
		b.radPwr = v
	case RegRadTx:
		if b.radCfg == RadioMagic {
			b.TxDelivered = append(b.TxDelivered, v)
		} else {
			b.TxDropped++
		}
	}
}
