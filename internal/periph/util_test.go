package periph

import (
	"repro/internal/isa"
	"repro/internal/programs"
)

// asm assembles a workload for tests.
func asm(w *programs.Workload) (*isa.Program, error) {
	return isa.Assemble(w.Source)
}
