package periph

import (
	"fmt"
	"math"

	"repro/internal/mcu"
	"repro/internal/programs"
)

// SenseWorkload generates the calibrated-sensing guest: at boot it
// configures the ADC (enable, gain) and the radio (magic handshake), then
// loops reading n samples, accumulating them and transmitting each running
// sum byte. It reports the 16-bit sum at SysDone.
//
// The configuration happens ONCE, at the top of main — exactly how real
// firmware is written. A transparent checkpointing runtime restores the
// PC *past* the configuration code, so unless peripheral state is part of
// the snapshot, every post-outage sample is taken at the power-on default
// gain and every transmission is dropped by the unconfigured radio.
func SenseWorkload(n int, gain byte, l programs.Layout) *programs.Workload {
	src := fmt.Sprintf(`
RAM   = 0x%04x
STACK = 0x%04x
MMIO  = 0x%04x
.org 0x%04x
start:
    MOVI sp, #STACK
    MOVI r9, #MMIO
    MOVI r1, #1
    STB  [r9+%d], r1    ; ADC enable
    MOVI r1, #%d
    STB  [r9+%d], r1    ; ADC gain (calibration)
    MOVI r1, #0x%02x
    STB  [r9+%d], r1    ; radio configuration handshake
    MOVI r3, #0         ; running sum
    MOVI r4, #0         ; sample count
loop:
    CHK
    LDB  r5, [r9+%d]    ; read calibrated sample
    ADD  r3, r5
    STB  [r9+%d], r3    ; transmit running-sum byte
    ADDI r4, #1
    CMPI r4, #%d
    JLT  loop
    MOV  r1, r3
    ADDI r8, #1
    MOV  r2, r8
    SYS  #%d
    JMP  start
`, l.RAMBase, l.StackTop, mcu.DefaultMMIOBase, l.NVBase,
		RegADCCtrl, gain, RegADCGain, RadioMagic, RegRadCfg,
		RegADCData, RegRadTx, n, programs.SysDone)

	return &programs.Workload{
		Name:     fmt.Sprintf("sense-mmio-%d", n),
		Source:   src,
		Expected: ExpectedSum(n, gain, 0),
		RAMBase:  l.RAMBase,
		NVBase:   l.NVBase,
		StackTop: l.StackTop,
	}
}

// ExpectedSum returns the correct 16-bit running-sum result for n samples
// at the given gain on channel, assuming the sample sequence starts at
// startSeq and the calibration stays in force — the host reference for
// SenseWorkload.
func ExpectedSum(n int, gain byte, channel byte) uint16 {
	var sum uint16
	for i := 0; i < n; i++ {
		raw := RawSample(channel, uint16(i))
		v := uint32(raw) * uint32(gain)
		sum += uint16(math.Min(float64(v), 255))
	}
	return sum
}

// Attach wires a fresh peripheral bank onto a device at the default MMIO
// window. aware selects whether snapshots cover the bank (the
// peripheral-aware runtime extension) or not (the naive baseline the
// paper's discussion criticises).
func Attach(d *mcu.Device, aware bool) *Bank {
	bank := NewBank()
	d.Bus.MMIOBase = mcu.DefaultMMIOBase
	d.Bus.MMIOLen = mcu.DefaultMMIOLen
	d.Bus.Periph = bank
	d.Aux = bank
	d.SnapshotAux = aware
	return bank
}
