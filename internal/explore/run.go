package explore

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Outcome is what evaluating one derived case yields: the model's
// structured metrics and the simulated seconds the evaluation covered
// (zero when a cache tier served it — sim-seconds measure work done).
type Outcome struct {
	Metrics    map[string]float64
	SimSeconds float64
}

// Evaluator maps one sweep-free scenario spec to its metrics. The CLI
// injects a direct internal/result call; the service injects its
// tiered result cache. The evaluator must be safe for concurrent use —
// strategies fan probe batches out across workers.
type Evaluator func(sp *scenario.Spec) (Outcome, error)

// Options tunes one exploration run.
type Options struct {
	// Evaluate executes one probe (required).
	Evaluate Evaluator

	// Workers bounds the per-batch evaluation parallelism (0 = one per
	// core). The report is identical for every worker count: batches
	// are collected and aggregated in probe order.
	Workers int

	// Progress, if non-nil, is called as probes complete. total is the
	// strategy's upper bound on evaluations (bisection and refinement
	// may finish under it).
	Progress func(done, total int)

	// Cancel, if non-nil, aborts the exploration when closed: Run
	// returns sweep.ErrCanceled.
	Cancel <-chan struct{}
}

// Crossover is a bisection strategy's answer.
type Crossover struct {
	Param string

	// Value is the bracket midpoint — the crossover estimate.
	Value float64

	// Lo, Hi is the final bracket (Hi-Lo ≤ tolerance), and DeltaLo,
	// DeltaHi the objective difference A−B at its ends (opposite
	// signs, or zero when a probe landed exactly on the crossing).
	Lo, Hi           float64
	DeltaLo, DeltaHi float64

	// Probes counts bracketing steps; each costs two evaluations.
	Probes int
}

// Report is one exploration's complete outcome.
type Report struct {
	// Text is the canonical rendering — byte-identical between
	// `ehsim-explore` and the service's /result endpoint because it is
	// a pure function of the spec and the (deterministic) evaluations.
	Text string

	// Evaluations counts evaluator calls; Memoized counts refinement
	// probes answered from the in-run memo instead.
	Evaluations int
	Memoized    int

	// SimSeconds totals the evaluators' reported simulated time — the
	// service's work-done metric. It is the one field that legitimately
	// differs between a cold and a warm run (cache hits do no work), so
	// it stays out of Text.
	SimSeconds float64

	// Crossover is the bisection answer (nil for other strategies).
	Crossover *Crossover

	// Incumbent is the refinement winner (nil for other strategies).
	Incumbent *Eval

	// Aggregates holds each aggregator's surviving evaluations, in
	// spec order.
	Aggregates [][]Eval
}

// batchSize bounds how many derived specs exist at once: grids stream
// through CaseAt in batches, so a million-case exploration holds a few
// hundred cases in memory, not a slice of all of them.
const batchSize = 256

// Run executes a validated exploration spec.
func Run(s *Spec, opts Options) (*Report, error) {
	if opts.Evaluate == nil {
		return nil, s.errf("explore.Run needs an Evaluator")
	}
	r := &runner{spec: s, opts: opts}
	for _, a := range s.Aggregators {
		r.aggs = append(r.aggs, newAggregator(a))
	}
	var err error
	switch s.Strategy.Kind {
	case "grid":
		err = r.runGrid()
	case "bisect":
		r.crossover, err = r.runBisect()
	case "refine":
		err = r.runRefine()
	default:
		err = s.errf("unknown strategy kind %q (valid: grid, bisect, refine)", s.Strategy.Kind)
	}
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Evaluations: r.evals,
		Memoized:    r.memoized,
		SimSeconds:  r.sim,
		Crossover:   r.crossover,
		Incumbent:   r.incumbent,
	}
	for _, a := range r.aggs {
		rep.Aggregates = append(rep.Aggregates, a.results())
	}
	rep.Text = r.renderText()
	return rep, nil
}

// runner carries one Run's state.
type runner struct {
	spec *Spec
	opts Options

	aggs      []aggregator
	crossover *Crossover
	incumbent *Eval // refinement winner

	seq      int     // next evaluation sequence number
	evals    int     // evaluator calls
	memoized int     // refinement memo hits
	sim      float64 // simulated seconds across evaluations
	total    int     // progress upper bound

	progressDone atomic.Int64
	progressMu   sync.Mutex
}

// probe is one derived case awaiting evaluation.
type probe struct {
	name string
	sp   *scenario.Spec
}

func (r *runner) canceled() bool {
	if r.opts.Cancel == nil {
		return false
	}
	select {
	case <-r.opts.Cancel:
		return true
	default:
		return false
	}
}

// reportProgress is called from evaluation workers; the mutex
// serialises the callback like sweep.mapCases does.
func (r *runner) reportProgress() {
	if r.opts.Progress == nil {
		return
	}
	done := int(r.progressDone.Add(1))
	r.progressMu.Lock()
	r.opts.Progress(done, max(done, r.total))
	r.progressMu.Unlock()
}

// evalBatch evaluates one probe batch across the worker pool and
// returns the evaluations in probe order, sequence numbers assigned in
// that same order — so downstream aggregation is worker-count
// independent. The lowest-index error wins, matching sweep.Map.
func (r *runner) evalBatch(probes []probe) ([]Eval, error) {
	n := len(probes)
	outs := make([]Outcome, n)
	errs := make([]error, n)
	workers := r.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = min(workers, n)

	var (
		next     atomic.Int64
		failed   atomic.Bool
		canceled atomic.Bool
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if r.canceled() {
					canceled.Store(true)
					return
				}
				out, err := r.opts.Evaluate(probes[i].sp)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				outs[i] = out
				r.reportProgress()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exploration %q: case %q: %w", r.spec.Name, probes[i].name, err)
		}
	}
	if canceled.Load() {
		return nil, sweep.ErrCanceled
	}
	evals := make([]Eval, n)
	for i := range probes {
		evals[i] = Eval{Seq: r.seq, Case: probes[i].name, Metrics: outs[i].Metrics}
		r.seq++
		r.evals++
		r.sim += outs[i].SimSeconds
	}
	return evals, nil
}

// feed streams one evaluation to every aggregator, in spec order.
func (r *runner) feed(e Eval) {
	for _, a := range r.aggs {
		a.add(e)
	}
}

// objective extracts the strategy's objective from one evaluation,
// erroring with the case and metric names when the model left it
// undefined there.
func (r *runner) objective(e Eval) (float64, error) {
	v, ok := e.Metrics[r.spec.Strategy.Objective]
	if !ok {
		return 0, r.spec.errf("case %q reports no %q (the objective is undefined there — e.g. no completions for energy_per_op); narrow the search space",
			e.Case, r.spec.Strategy.Objective)
	}
	return v, nil
}

// ---- grid strategy ----

// runGrid streams the declared grid through CaseAt in bounded batches.
func (r *runner) runGrid() error {
	work := r.spec.Base.Clone()
	work.Sweep = r.spec.Strategy.Axes
	grid := work.Grid()
	n, err := grid.SizeChecked()
	if err != nil {
		return r.spec.errf("%w", err)
	}
	r.total = n
	for start := 0; start < n; start += batchSize {
		if r.canceled() {
			return sweep.ErrCanceled
		}
		end := min(start+batchSize, n)
		probes := make([]probe, 0, end-start)
		for i := start; i < end; i++ {
			c := grid.CaseAt(i)
			cs, err := work.At(c)
			if err != nil {
				return r.spec.errf("%w", err)
			}
			probes = append(probes, probe{name: c.Name, sp: cs})
		}
		evals, err := r.evalBatch(probes)
		if err != nil {
			return err
		}
		for _, e := range evals {
			r.feed(e)
		}
	}
	return nil
}

// ---- bisect strategy ----

// bisectSteps returns the bracketing-step bound for a bracket span and
// tolerance: each step halves the span.
func bisectSteps(span, tol float64) int {
	return int(math.Ceil(math.Log2(span / tol)))
}

// runBisect hunts the sign change of objective(A)−objective(B) along
// the strategy's param. Each probe evaluates both variants (one batch
// of two, so they can run in parallel) and feeds the aggregators too.
func (r *runner) runBisect() (*Crossover, error) {
	st := &r.spec.Strategy
	lo, hi, tol := float64(*st.Lo), float64(*st.Hi), float64(*st.Tolerance)
	r.total = 2 * (2 + bisectSteps(hi-lo, tol))

	delta := func(x float64) (float64, error) {
		if r.canceled() {
			return 0, sweep.ErrCanceled
		}
		probes := make([]probe, 0, 2)
		for _, v := range []*Variant{st.A, st.B} {
			sp, err := r.spec.variantSpec(v, x)
			if err != nil {
				return 0, err
			}
			name := fmt.Sprintf("%s@%s=%s", v.Name, st.Param, scenario.AxisLabel(st.Param, x))
			probes = append(probes, probe{name: name, sp: sp})
		}
		evals, err := r.evalBatch(probes)
		if err != nil {
			return 0, err
		}
		var vals [2]float64
		for i, e := range evals {
			r.feed(e)
			if vals[i], err = r.objective(e); err != nil {
				return 0, err
			}
		}
		return vals[0] - vals[1], nil
	}

	dlo, err := delta(lo)
	if err != nil {
		return nil, err
	}
	dhi, err := delta(hi)
	if err != nil {
		return nil, err
	}
	probes := 2
	switch {
	case dlo == 0:
		return &Crossover{Param: st.Param, Value: lo, Lo: lo, Hi: lo, Probes: probes}, nil
	case dhi == 0:
		return &Crossover{Param: st.Param, Value: hi, Lo: hi, Hi: hi, Probes: probes}, nil
	case (dlo > 0) == (dhi > 0):
		return nil, r.spec.errf("no crossover: Δ%s keeps its sign over [%g, %g] (Δ(lo)=%g, Δ(hi)=%g)",
			st.Objective, lo, hi, dlo, dhi)
	}
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		dmid, err := delta(mid)
		if err != nil {
			return nil, err
		}
		probes++
		if dmid == 0 {
			lo, hi, dlo, dhi = mid, mid, 0, 0
			break
		}
		if (dmid > 0) == (dlo > 0) {
			lo, dlo = mid, dmid
		} else {
			hi, dhi = mid, dmid
		}
	}
	return &Crossover{
		Param: st.Param, Value: lo + (hi-lo)/2,
		Lo: lo, Hi: hi, DeltaLo: dlo, DeltaHi: dhi, Probes: probes,
	}, nil
}

// ---- refine strategy ----

// refineState is one refinement run's search box.
type refineState struct {
	axes             []RefineAxis
	lo, hi           []float64 // current box
	origLo, origHi   []float64 // original bounds (the box never leaves them)
	points           []int
	perRound, rounds int
}

// runRefine scans successively smaller grids centered on the incumbent:
// each round evaluates an evenly spaced grid over the current box,
// re-centers the box on the best point seen so far, and halves every
// axis span. Probes are memoized by coordinate, so overlapping rounds
// pay for new points only — and the aggregators still see each unique
// point exactly once, in a spec-deterministic order.
func (r *runner) runRefine() error {
	st := &r.spec.Strategy
	rs := &refineState{rounds: st.rounds(), perRound: 1}
	for _, ax := range st.Refine {
		rs.axes = append(rs.axes, ax)
		rs.lo = append(rs.lo, float64(ax.Lo))
		rs.hi = append(rs.hi, float64(ax.Hi))
		rs.origLo = append(rs.origLo, float64(ax.Lo))
		rs.origHi = append(rs.origHi, float64(ax.Hi))
		rs.points = append(rs.points, ax.points())
		rs.perRound *= ax.points()
	}
	r.total = rs.perRound * rs.rounds

	memo := map[string]Eval{}
	var incumbent *Eval
	var incCoord []float64
	goalMax := st.Goal == "max"
	better := func(a Eval, b *Eval) bool {
		av, ok := a.Metrics[st.Objective]
		if !ok {
			return false // undefined objective: never the incumbent
		}
		if b == nil {
			return true
		}
		bv := b.Metrics[st.Objective]
		if av != bv {
			if goalMax {
				return av > bv
			}
			return av < bv
		}
		return a.Seq < b.Seq
	}

	for round := 0; round < rs.rounds; round++ {
		if r.canceled() {
			return sweep.ErrCanceled
		}
		coords := rs.roundCoords()
		// Partition this round's grid into memo hits and fresh probes,
		// preserving coordinate order for aggregation.
		var fresh []probe
		var freshCoords [][]float64
		for _, coord := range coords {
			if _, ok := memo[coordKey(coord)]; ok {
				r.memoized++
				continue
			}
			sp, name, err := r.refineSpec(rs, coord)
			if err != nil {
				return err
			}
			fresh = append(fresh, probe{name: name, sp: sp})
			freshCoords = append(freshCoords, coord)
		}
		evals, err := r.evalBatch(fresh)
		if err != nil {
			return err
		}
		for i, e := range evals {
			r.feed(e)
			memo[coordKey(freshCoords[i])] = e
		}
		// Re-center on the best point of the full round grid (memoized
		// points included — an earlier round's point can stay the
		// incumbent).
		for _, coord := range coords {
			e := memo[coordKey(coord)]
			if better(e, incumbent) {
				cp := e
				incumbent, incCoord = &cp, append([]float64(nil), coord...)
			}
		}
		if incumbent == nil {
			return r.spec.errf("refinement round %d: objective %q undefined at every probed point",
				round+1, st.Objective)
		}
		rs.shrink(incCoord)
	}
	r.incumbent = incumbent
	return nil
}

// roundCoords enumerates the current box's grid row-major (first axis
// slowest), matching the sweep engine's declared-order convention.
func (rs *refineState) roundCoords() [][]float64 {
	coords := [][]float64{{}}
	for a := range rs.axes {
		vals := linspace(rs.lo[a], rs.hi[a], rs.points[a])
		next := make([][]float64, 0, len(coords)*len(vals))
		for _, c := range coords {
			for _, v := range vals {
				next = append(next, append(append([]float64(nil), c...), v))
			}
		}
		coords = next
	}
	return coords
}

// shrink halves every axis span and re-centers it on the incumbent,
// clamped inside the original bounds.
func (rs *refineState) shrink(center []float64) {
	for a := range rs.axes {
		span := (rs.hi[a] - rs.lo[a]) / 2
		lo := center[a] - span/2
		if lo < rs.origLo[a] {
			lo = rs.origLo[a]
		}
		if lo+span > rs.origHi[a] {
			lo = rs.origHi[a] - span
		}
		rs.lo[a], rs.hi[a] = lo, lo+span
	}
}

// refineSpec derives the scenario spec and display name for one
// refinement coordinate, re-validating because interior points were
// not probed at parse time.
func (r *runner) refineSpec(rs *refineState, coord []float64) (*scenario.Spec, string, error) {
	sp := r.spec.Base.Clone()
	var name strings.Builder
	for a, ax := range rs.axes {
		if err := sp.Apply(ax.Param, coord[a]); err != nil {
			return nil, "", r.spec.errf("%w", err)
		}
		if a > 0 {
			name.WriteByte('/')
		}
		fmt.Fprintf(&name, "%s=%s", ax.Param, scenario.AxisLabel(ax.Param, coord[a]))
	}
	if err := sp.Validate(); err != nil {
		return nil, "", r.spec.errf("refinement point %s: %w", name.String(), err)
	}
	return sp, name.String(), nil
}

// linspace returns n evenly spaced values over [lo, hi], endpoints
// included. Computed as lo + i*step (not accumulated), so the values —
// and through them the memo keys and report bytes — are exactly
// reproducible.
func linspace(lo, hi float64, n int) []float64 {
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// coordKey renders a refinement coordinate for memoization; %.17g
// round-trips float64 exactly.
func coordKey(coord []float64) string {
	var b strings.Builder
	for i, v := range coord {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%.17g", v)
	}
	return b.String()
}
