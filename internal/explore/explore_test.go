package explore

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// synBase is a cheap, valid mpsoc base for synthetic-evaluator tests —
// the model never actually runs, so tests exercise the explorer's
// control flow in microseconds.
const synBase = `{"name":"syn","model":"mpsoc","source":{"name":"const-power","params":{"p":2}},"duration":60,"dt":1}`

func mustSpec(t *testing.T, js string) *Spec {
	t.Helper()
	s, err := Parse([]byte(js))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// synEval returns an evaluator computing mean_fps as f(scale, p) — a
// pure function of the derived spec, safe for any worker count.
func synEval(f func(scale, p float64) float64) Evaluator {
	return func(sp *scenario.Spec) (Outcome, error) {
		scale := 1.0
		if v, ok := sp.Params["scale"]; ok {
			scale = float64(v)
		}
		p := float64(sp.Source.Params["p"])
		return Outcome{Metrics: map[string]float64{"mean_fps": f(scale, p)}, SimSeconds: 1}, nil
	}
}

func TestBisectFindsSyntheticCrossover(t *testing.T) {
	s := mustSpec(t, `{
		"name": "syn-bisect",
		"base": `+synBase+`,
		"strategy": {
			"kind": "bisect", "param": "source.p",
			"lo": 0.1, "hi": 0.9, "tolerance": 0.01,
			"objective": "mean_fps",
			"a": {"name": "steep", "set": [{"param": "model.scale", "value": 1}]},
			"b": {"name": "flat",  "set": [{"param": "model.scale", "value": 2}]}
		}
	}`)
	// Δ = f(1, p) − f(2, p) = p² − 0.09: one root at p = 0.3.
	eval := synEval(func(scale, p float64) float64 {
		if scale == 1 {
			return p * p
		}
		return 0.09
	})
	rep, err := Run(s, Options{Evaluate: eval, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Crossover
	if c == nil {
		t.Fatal("no crossover")
	}
	if math.Abs(c.Value-0.3) > 0.01 {
		t.Errorf("crossover %g, want 0.3 ± 0.01", c.Value)
	}
	if c.Hi-c.Lo > 0.01 {
		t.Errorf("bracket [%g, %g] wider than tolerance", c.Lo, c.Hi)
	}
	// 2 bracket-end probes + ceil(log2(0.8/0.01)) = 7 midpoints, 2
	// evaluations each.
	if want := 2 * (2 + 7); rep.Evaluations != want {
		t.Errorf("evaluations = %d, want %d", rep.Evaluations, want)
	}
	if !strings.Contains(rep.Text, "crossover:          source.p = ") {
		t.Errorf("report lacks the crossover line:\n%s", rep.Text)
	}
}

func TestBisectNoCrossoverIsAnError(t *testing.T) {
	s := mustSpec(t, `{
		"name": "syn-flat",
		"base": `+synBase+`,
		"strategy": {
			"kind": "bisect", "param": "source.p",
			"lo": 0.1, "hi": 0.9, "tolerance": 0.01,
			"objective": "mean_fps",
			"a": {"name": "up", "set": [{"param": "model.scale", "value": 1}]},
			"b": {"name": "down", "set": [{"param": "model.scale", "value": 2}]}
		}
	}`)
	eval := synEval(func(scale, p float64) float64 { return scale }) // Δ = -1 everywhere
	_, err := Run(s, Options{Evaluate: eval})
	if err == nil || !strings.Contains(err.Error(), "no crossover") {
		t.Fatalf("want a no-crossover error, got %v", err)
	}
}

func TestRefineConvergesAndMemoizes(t *testing.T) {
	s := mustSpec(t, `{
		"name": "syn-refine",
		"base": `+synBase+`,
		"strategy": {
			"kind": "refine",
			"refine": [{"param": "model.scale", "lo": 0.25, "hi": 1.25, "points": 5}],
			"rounds": 3, "objective": "mean_fps", "goal": "max"
		},
		"aggregators": [{"kind": "topk", "k": 2, "metric": "mean_fps", "goal": "max"}]
	}`)
	// Peak at scale = 0.5, a round-1 grid point; later rounds re-center
	// on it, and because every coordinate here is a dyadic rational the
	// shared grid points hash to identical memo keys.
	eval := synEval(func(scale, p float64) float64 { return -(scale - 0.5) * (scale - 0.5) })
	rep, err := Run(s, Options{Evaluate: eval, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Incumbent == nil || rep.Incumbent.Case != "model.scale=0.5" {
		t.Fatalf("incumbent = %+v, want model.scale=0.5", rep.Incumbent)
	}
	// Round 1: 5 fresh. Round 2 box [0.25, 0.75]: 0.25/0.5/0.75
	// memoized, 2 fresh. Round 3 box [0.375, 0.625]: 3 memoized, 2 fresh.
	if rep.Evaluations != 9 || rep.Memoized != 6 {
		t.Errorf("evaluations/memoized = %d/%d, want 9/6", rep.Evaluations, rep.Memoized)
	}
	if len(rep.Aggregates) != 1 || len(rep.Aggregates[0]) != 2 {
		t.Fatalf("topk aggregate = %+v", rep.Aggregates)
	}
	if rep.Aggregates[0][0].Case != "model.scale=0.5" {
		t.Errorf("topk winner %q, want the peak", rep.Aggregates[0][0].Case)
	}
}

func TestGridDeterministicAcrossWorkers(t *testing.T) {
	js := `{
		"name": "syn-grid",
		"base": ` + synBase + `,
		"strategy": {"kind": "grid", "axes": [
			{"param": "model.scale", "values": [0.5, 1, 1.5, 2]},
			{"param": "source.p", "values": [1, 2, 3]}
		]},
		"aggregators": [
			{"kind": "topk", "k": 3, "metric": "mean_fps", "goal": "min"},
			{"kind": "pareto", "metrics": ["mean_fps", "used_w"], "senses": ["max", "min"]}
		]
	}`
	eval := func(sp *scenario.Spec) (Outcome, error) {
		scale := float64(sp.Params["scale"])
		p := float64(sp.Source.Params["p"])
		return Outcome{Metrics: map[string]float64{
			"mean_fps": scale * p,
			"used_w":   scale + p,
		}}, nil
	}
	var texts []string
	for _, workers := range []int{1, 8} {
		rep, err := Run(mustSpec(t, js), Options{Evaluate: eval, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Evaluations != 12 {
			t.Fatalf("evaluations = %d, want 12", rep.Evaluations)
		}
		texts = append(texts, rep.Text)
	}
	if texts[0] != texts[1] {
		t.Errorf("grid report differs across worker counts:\n%s\n---\n%s", texts[0], texts[1])
	}
}

func TestUndefinedObjectiveSkipsAndErrors(t *testing.T) {
	// topk skips cases missing its metric and says so in the report.
	s := mustSpec(t, `{
		"name": "syn-skip",
		"base": `+synBase+`,
		"strategy": {"kind": "grid", "axes": [{"param": "source.p", "values": [1, 2, 3]}]},
		"aggregators": [{"kind": "topk", "k": 2, "metric": "frames", "goal": "max"}]
	}`)
	eval := func(sp *scenario.Spec) (Outcome, error) {
		m := map[string]float64{"mean_fps": 1}
		if float64(sp.Source.Params["p"]) > 1.5 {
			m["frames"] = float64(sp.Source.Params["p"])
		}
		return Outcome{Metrics: m}, nil
	}
	rep, err := Run(s, Options{Evaluate: eval})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Text, "(1 cases skipped: frames undefined)") {
		t.Errorf("report does not surface the skipped case:\n%s", rep.Text)
	}
	// A bisection objective that is undefined at a probe is an error —
	// the crossover would be meaningless.
	b := mustSpec(t, `{
		"name": "syn-undef",
		"base": `+synBase+`,
		"strategy": {
			"kind": "bisect", "param": "source.p",
			"lo": 0.1, "hi": 0.9, "tolerance": 0.01,
			"objective": "frames",
			"a": {"name": "x", "set": [{"param": "model.scale", "value": 1}]},
			"b": {"name": "y", "set": [{"param": "model.scale", "value": 2}]}
		}
	}`)
	none := func(sp *scenario.Spec) (Outcome, error) {
		return Outcome{Metrics: map[string]float64{"mean_fps": 0}}, nil
	}
	if _, err := Run(b, Options{Evaluate: none}); err == nil || !strings.Contains(err.Error(), `no "frames"`) {
		t.Fatalf("want an undefined-objective error, got %v", err)
	}
}

func TestParetoStreamingDominance(t *testing.T) {
	p := newAggregator(Aggregator{Kind: "pareto", Metrics: []string{"a", "b"}, Senses: []string{"min", "max"}, Capacity: 3}).(*pareto)
	add := func(seq int, a, b float64) {
		p.add(Eval{Seq: seq, Case: fmt.Sprintf("e%d", seq), Metrics: map[string]float64{"a": a, "b": b}})
	}
	add(0, 2, 2)     // first point: trivially on the frontier
	add(1, 3, 1)     // worse on both axes → dominated by e0, discarded
	add(2, 1, 1)     // cheaper but slower → non-dominated, joins
	add(3, 0.5, 1.5) // dominates e2 on both axes → evicts it; trades off against e0
	if got := p.results(); len(got) != 2 || got[0].Case != "e3" || got[1].Case != "e0" {
		t.Fatalf("frontier = %+v, want [e3 e0]", got)
	}
	// Fill past capacity with mutually non-dominated points; the worst
	// by the first metric (e0, a=2) is dropped deterministically.
	add(4, 1, 1.8)
	add(5, 0.25, 1)
	if p.dropped != 1 {
		t.Fatalf("dropped = %d, want 1", p.dropped)
	}
	got := p.results()
	if len(got) != 3 {
		t.Fatalf("frontier size = %d, want capacity 3", len(got))
	}
	for _, e := range got {
		if e.Case == "e0" {
			t.Errorf("capacity eviction kept the worst-by-first-metric point: %+v", got)
		}
	}
}

func TestTopKTieBreaksBySequence(t *testing.T) {
	k := newAggregator(Aggregator{Kind: "topk", K: 2, Metric: "m", Goal: "max"}).(*topK)
	for seq, v := range []float64{5, 5, 5, 7} {
		k.add(Eval{Seq: seq, Case: fmt.Sprintf("e%d", seq), Metrics: map[string]float64{"m": v}})
	}
	got := k.results()
	if len(got) != 2 || got[0].Case != "e3" || got[1].Case != "e0" {
		t.Fatalf("topk = %+v, want [e3 e0] (ties to the earlier case)", got)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		js   string
		want []string
	}{
		{"base with sweep",
			`{"name":"x","base":{"name":"b","model":"mpsoc","source":{"name":"const-power"},"duration":1,
				"sweep":[{"param":"dt","values":[1]}]},
			 "strategy":{"kind":"grid","axes":[{"param":"dt","values":[1]}]},
			 "aggregators":[{"kind":"topk","k":1,"metric":"frames"}]}`,
			[]string{"sweep-free"}},
		{"unknown strategy",
			`{"name":"x","base":` + synBase + `,"strategy":{"kind":"anneal"}}`,
			[]string{"anneal", "grid, bisect, refine"}},
		{"undocumented objective",
			`{"name":"x","base":` + synBase + `,
			 "strategy":{"kind":"bisect","param":"source.p","lo":0.1,"hi":1,"tolerance":0.01,
				"objective":"joules","a":{"name":"a"},"b":{"name":"b"}}}`,
			[]string{`"joules"`, "mpsoc", "mean_fps"}},
		{"tolerance wider than bracket",
			`{"name":"x","base":` + synBase + `,
			 "strategy":{"kind":"bisect","param":"source.p","lo":0.1,"hi":0.2,"tolerance":0.5,
				"objective":"mean_fps","a":{"name":"a"},"b":{"name":"b"}}}`,
			[]string{"tolerance", "span"}},
		{"grid without aggregators",
			`{"name":"x","base":` + synBase + `,
			 "strategy":{"kind":"grid","axes":[{"param":"source.p","values":[1,2]}]}}`,
			[]string{"aggregator", "sweep"}},
		{"pareto sense mismatch",
			`{"name":"x","base":` + synBase + `,
			 "strategy":{"kind":"grid","axes":[{"param":"source.p","values":[1,2]}]},
			 "aggregators":[{"kind":"pareto","metrics":["used_w","mean_fps"],"senses":["min"]}]}`,
			[]string{"one sense per metric"}},
		{"topk without k",
			`{"name":"x","base":` + synBase + `,
			 "strategy":{"kind":"grid","axes":[{"param":"source.p","values":[1,2]}]},
			 "aggregators":[{"kind":"topk","metric":"frames"}]}`,
			[]string{"k ≥ 1"}},
		{"refine lo >= hi",
			`{"name":"x","base":` + synBase + `,
			 "strategy":{"kind":"refine","refine":[{"param":"source.p","lo":2,"hi":1}],
				"objective":"mean_fps"},
			 "aggregators":[{"kind":"topk","k":1,"metric":"mean_fps"}]}`,
			[]string{"lo < hi"}},
		{"bad axis param surfaces at parse",
			`{"name":"x","base":` + synBase + `,
			 "strategy":{"kind":"grid","axes":[{"param":"warp","values":[1,2]}]},
			 "aggregators":[{"kind":"topk","k":1,"metric":"mean_fps"}]}`,
			[]string{"warp"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.js))
			if err == nil {
				t.Fatal("expected error")
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q should contain %q", err, frag)
				}
			}
		})
	}
}

func TestHashIsStableAndSensitive(t *testing.T) {
	s1 := mustSpec(t, `{"name":"x","base":`+synBase+`,
		"strategy":{"kind":"grid","axes":[{"param":"source.p","values":[1,2]}]},
		"aggregators":[{"kind":"topk","k":1,"metric":"mean_fps"}]}`)
	s2 := mustSpec(t, `{"name":"x","base":`+synBase+`,
		"strategy":{"kind":"grid","axes":[{"param":"source.p","values":[1,2]}]},
		"aggregators":[{"kind":"topk","k":2,"metric":"mean_fps"}]}`)
	h1a, err := s1.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h1b, _ := s1.Hash()
	h2, _ := s2.Hash()
	if h1a != h1b {
		t.Error("hash not stable across calls")
	}
	if h1a == h2 {
		t.Error("k=1 and k=2 explorations must have distinct hashes")
	}
}
