// Package explore is the design-space exploration subsystem: it turns
// the paper's sizing questions — the eq. 4 capacitor/threshold budgets,
// the eq. 5 FRAM-vs-SRAM runtime crossover, the Fig. 5 power-neutral
// Pareto frontier — from hand-written sweep tables a user eyeballs into
// declarative explorations a machine answers.
//
// An exploration Spec names a sweep-free base scenario, a strategy that
// decides which points of the design space to probe (an exhaustive grid
// scan, a bisection hunting a crossover to a tolerance, or successive
// grid refinement around the incumbent), and streaming aggregators that
// reduce the probe stream to a bounded answer (top-k by one objective,
// a Pareto frontier over several). Objectives are the structured
// metrics every scenario model documents (scenario.Model.Metrics) and
// fills into ModelCase.Metrics — no report-text parsing anywhere.
//
// The package never executes scenarios itself: Run takes an Evaluator
// that maps a sweep-free scenario spec to its metrics. The CLI injects
// a direct internal/result call; the ehsimd service injects its tiered
// result cache, so every probed case is keyed by its per-case spec hash
// and repeated explorations over overlapping grids get cheaper over
// time. Because the report text is rendered here from the evaluation
// stream alone — deterministic in the spec, independent of worker count
// and cache state — the two front-ends are byte-identical by
// construction.
package explore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/scenario"
)

// MaxEvaluations bounds the total number of case evaluations one
// exploration may perform across all rounds — the same allocation-bomb
// guard scenario.MaxGridCases provides for declared sweeps, applied to
// machine-generated probe streams.
const MaxEvaluations = scenario.MaxGridCases

// DefaultRefinePoints is the per-axis grid resolution of a refinement
// round when the spec leaves it unset.
const DefaultRefinePoints = 5

// DefaultRefineRounds is the refinement depth when the spec leaves it
// unset: each round halves every axis span, so three rounds shrink the
// search box 8x while re-using the incumbent's neighbourhood.
const DefaultRefineRounds = 3

// DefaultParetoCapacity bounds a Pareto frontier aggregator when the
// spec leaves it unset.
const DefaultParetoCapacity = 512

// Spec is one declarative exploration.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Base is the sweep-free scenario every probe derives from; the
	// strategy owns the axes, so a base declaring its own sweep is
	// rejected.
	Base scenario.Spec `json:"base"`

	Strategy Strategy `json:"strategy"`

	// Aggregators reduce the evaluation stream; each renders one block
	// of the report. Optional for bisect (the crossover is the answer),
	// required for grid and refine (an unaggregated grid scan is just a
	// sweep — write a sweep spec instead).
	Aggregators []Aggregator `json:"aggregators,omitempty"`
}

// Strategy selects and parameterises the probe-point generator.
type Strategy struct {
	// Kind is "grid", "bisect", or "refine".
	Kind string `json:"kind"`

	// Axes declares the scan grid (kind "grid"): the same axis syntax
	// as a scenario sweep, applied to the base spec.
	Axes []scenario.Axis `json:"axes,omitempty"`

	// Refine declares the numeric search box (kind "refine").
	Refine []RefineAxis `json:"refine,omitempty"`

	// Rounds is the refinement depth (kind "refine"); 0 selects
	// DefaultRefineRounds.
	Rounds int `json:"rounds,omitempty"`

	// Objective names the metric the strategy optimises (kinds
	// "refine" and "bisect"); it must be one the base model documents.
	Objective string `json:"objective,omitempty"`

	// Goal is "min" or "max" (kind "refine"; default "min").
	Goal string `json:"goal,omitempty"`

	// Param, Lo, Hi, Tolerance bracket the bisection (kind "bisect"):
	// the strategy hunts the sign change of A's objective minus B's
	// along Param until the bracket is narrower than Tolerance.
	Param     string          `json:"param,omitempty"`
	Lo        *scenario.Value `json:"lo,omitempty"`
	Hi        *scenario.Value `json:"hi,omitempty"`
	Tolerance *scenario.Value `json:"tolerance,omitempty"`

	// A and B are the two design variants whose objective difference
	// crosses zero (kind "bisect") — for eq. 5, the quickrecall (FRAM)
	// and hibernus (SRAM) runtimes.
	A *Variant `json:"a,omitempty"`
	B *Variant `json:"b,omitempty"`
}

// RefineAxis is one numeric dimension of a refinement search box.
type RefineAxis struct {
	Param  string         `json:"param"`
	Lo     scenario.Value `json:"lo"`
	Hi     scenario.Value `json:"hi"`
	Points int            `json:"points,omitempty"` // 0 selects DefaultRefinePoints
}

// Variant is one named design alternative: a set of spec overrides
// applied on top of the base (and the bisection coordinate).
type Variant struct {
	Name string     `json:"name"`
	Set  []Override `json:"set,omitempty"`
}

// Override sets one spec parameter: Value for numeric params, Name for
// registry-name params (workload, source, runtime, governor) — the
// same split as a sweep axis.
type Override struct {
	Param string          `json:"param"`
	Value *scenario.Value `json:"value,omitempty"`
	Name  string          `json:"name,omitempty"`
}

// Aggregator declares one streaming reduction over the evaluations.
type Aggregator struct {
	// Kind is "topk" or "pareto".
	Kind string `json:"kind"`

	// K and Metric parameterise topk: keep the K best cases by Metric.
	K      int    `json:"k,omitempty"`
	Metric string `json:"metric,omitempty"`

	// Goal is "min" or "max" for topk (default "min").
	Goal string `json:"goal,omitempty"`

	// Metrics and Senses parameterise pareto: the frontier dimensions
	// and, per dimension, "min" or "max".
	Metrics []string `json:"metrics,omitempty"`
	Senses  []string `json:"senses,omitempty"`

	// Capacity bounds the frontier (default DefaultParetoCapacity);
	// on overflow the worst point by the first dimension is dropped,
	// deterministically.
	Capacity int `json:"capacity,omitempty"`
}

// Parse decodes and validates an exploration spec. Unknown fields are
// errors, matching scenario.Parse.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses an exploration spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("explore: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// errf wraps an error with the exploration's identity.
func (s *Spec) errf(format string, args ...any) error {
	return fmt.Errorf("exploration %q: %w", s.Name, fmt.Errorf(format, args...))
}

// Validate checks the exploration's shape: the base is a valid
// sweep-free scenario, the strategy is complete and within evaluation
// bounds, and every objective names a metric the base's model documents.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("explore: name is required")
	}
	if s.Base.HasSweep() {
		return s.errf("base must be sweep-free (the strategy owns the axes)")
	}
	if err := s.Base.Validate(); err != nil {
		return s.errf("base: %w", err)
	}
	m, err := scenario.LookupModel(s.Base.ModelName())
	if err != nil {
		return s.errf("%w", err)
	}
	docs := map[string]bool{}
	var keys []string
	for _, d := range m.Metrics() {
		docs[d.Key] = true
		keys = append(keys, d.Key)
	}
	checkMetric := func(what, key string) error {
		if key == "" {
			return s.errf("%s is required", what)
		}
		if !docs[key] {
			return s.errf("%s %q is not a metric of model %q (metrics: %s)",
				what, key, s.Base.ModelName(), strings.Join(keys, ", "))
		}
		return nil
	}

	st := &s.Strategy
	switch st.Kind {
	case "grid":
		if len(st.Axes) == 0 {
			return s.errf("grid strategy needs at least one axis")
		}
		if st.Param != "" || st.A != nil || st.B != nil || len(st.Refine) > 0 {
			return s.errf("grid strategy takes only axes")
		}
		// Delegate axis validation (shape, point probing, grid bounds)
		// to the scenario layer by validating the expanded work spec.
		work := s.Base.Clone()
		work.Sweep = st.Axes
		if err := work.Validate(); err != nil {
			return s.errf("axes: %w", err)
		}
	case "bisect":
		if len(st.Axes) > 0 || len(st.Refine) > 0 {
			return s.errf("bisect strategy takes param/lo/hi/tolerance, not axes")
		}
		if st.Param == "" {
			return s.errf("bisect strategy needs a param")
		}
		if st.Lo == nil || st.Hi == nil || float64(*st.Lo) >= float64(*st.Hi) {
			return s.errf("bisect strategy needs lo < hi")
		}
		if st.Tolerance == nil || float64(*st.Tolerance) <= 0 {
			return s.errf("bisect strategy needs a positive tolerance")
		}
		if float64(*st.Tolerance) >= float64(*st.Hi)-float64(*st.Lo) {
			return s.errf("tolerance %g is not smaller than the bracket span %g",
				float64(*st.Tolerance), float64(*st.Hi)-float64(*st.Lo))
		}
		if err := checkMetric("bisect objective", st.Objective); err != nil {
			return err
		}
		if st.A == nil || st.B == nil {
			return s.errf("bisect strategy needs variants a and b")
		}
		for _, v := range []*Variant{st.A, st.B} {
			if v.Name == "" {
				return s.errf("bisect variants need names")
			}
			// Probe both bracket ends through Apply+Validate so a bad
			// param or override fails at parse time, not mid-bisection.
			for _, x := range []float64{float64(*st.Lo), float64(*st.Hi)} {
				if _, err := s.variantSpec(v, x); err != nil {
					return err
				}
			}
		}
		if st.A.Name == st.B.Name {
			return s.errf("bisect variants need distinct names (both %q)", st.A.Name)
		}
	case "refine":
		if len(st.Refine) == 0 {
			return s.errf("refine strategy needs at least one refine axis")
		}
		if len(st.Axes) > 0 || st.Param != "" {
			return s.errf("refine strategy takes refine axes only")
		}
		if err := checkMetric("refine objective", st.Objective); err != nil {
			return err
		}
		switch st.Goal {
		case "", "min", "max":
		default:
			return s.errf("refine goal must be min or max (got %q)", st.Goal)
		}
		perRound := 1
		for i, ax := range st.Refine {
			if ax.Param == "" {
				return s.errf("refine[%d]: param is required", i)
			}
			if float64(ax.Lo) >= float64(ax.Hi) {
				return s.errf("refine[%d] (%s): lo < hi required", i, ax.Param)
			}
			if ax.Points < 0 || ax.Points == 1 {
				return s.errf("refine[%d] (%s): points must be ≥ 2", i, ax.Param)
			}
			perRound *= ax.points()
			// Probe the box corners for shape errors.
			for _, x := range []float64{float64(ax.Lo), float64(ax.Hi)} {
				probe := s.Base.Clone()
				if err := probe.Apply(ax.Param, x); err != nil {
					return s.errf("refine[%d]: %w", i, err)
				}
				if err := probe.Validate(); err != nil {
					return s.errf("refine[%d] (%s=%g): %w", i, ax.Param, x, err)
				}
			}
		}
		if perRound*st.rounds() > MaxEvaluations {
			return s.errf("refinement probes up to %d cases (limit %d)", perRound*st.rounds(), MaxEvaluations)
		}
	default:
		return s.errf("unknown strategy kind %q (valid: grid, bisect, refine)", st.Kind)
	}

	if st.Kind != "bisect" && len(s.Aggregators) == 0 {
		return s.errf("%s strategy needs at least one aggregator (an unaggregated scan is a sweep — use a scenario spec)", st.Kind)
	}
	for i, a := range s.Aggregators {
		switch a.Kind {
		case "topk":
			if a.K < 1 {
				return s.errf("aggregators[%d]: topk needs k ≥ 1", i)
			}
			if err := checkMetric(fmt.Sprintf("aggregators[%d] metric", i), a.Metric); err != nil {
				return err
			}
			switch a.Goal {
			case "", "min", "max":
			default:
				return s.errf("aggregators[%d]: goal must be min or max (got %q)", i, a.Goal)
			}
			if len(a.Metrics) > 0 || len(a.Senses) > 0 {
				return s.errf("aggregators[%d]: topk takes metric/goal, not metrics/senses", i)
			}
		case "pareto":
			if len(a.Metrics) < 2 {
				return s.errf("aggregators[%d]: pareto needs at least two metrics", i)
			}
			if len(a.Senses) != len(a.Metrics) {
				return s.errf("aggregators[%d]: pareto needs one sense per metric (%d metrics, %d senses)",
					i, len(a.Metrics), len(a.Senses))
			}
			for j, sense := range a.Senses {
				if sense != "min" && sense != "max" {
					return s.errf("aggregators[%d]: sense[%d] must be min or max (got %q)", i, j, sense)
				}
				if err := checkMetric(fmt.Sprintf("aggregators[%d] metric", i), a.Metrics[j]); err != nil {
					return err
				}
			}
			if a.Capacity < 0 {
				return s.errf("aggregators[%d]: capacity must be non-negative", i)
			}
			if a.K != 0 || a.Metric != "" {
				return s.errf("aggregators[%d]: pareto takes metrics/senses, not k/metric", i)
			}
		default:
			return s.errf("aggregators[%d]: unknown kind %q (valid: topk, pareto)", i, a.Kind)
		}
	}
	return nil
}

// rounds resolves the effective refinement depth.
func (st *Strategy) rounds() int {
	if st.Rounds > 0 {
		return st.Rounds
	}
	return DefaultRefineRounds
}

// points resolves one refine axis's effective per-round resolution.
func (ax *RefineAxis) points() int {
	if ax.Points > 0 {
		return ax.Points
	}
	return DefaultRefinePoints
}

// variantSpec derives the sweep-free scenario spec for variant v at
// bisection coordinate x: base + param=x + the variant's overrides,
// re-validated so model constraints hold at every probed point.
func (s *Spec) variantSpec(v *Variant, x float64) (*scenario.Spec, error) {
	sp := s.Base.Clone()
	if err := sp.Apply(s.Strategy.Param, x); err != nil {
		return nil, s.errf("variant %q: %w", v.Name, err)
	}
	for _, o := range v.Set {
		var val any
		switch {
		case o.Value != nil && o.Name != "":
			return nil, s.errf("variant %q: override %q sets both value and name", v.Name, o.Param)
		case o.Value != nil:
			val = float64(*o.Value)
		case o.Name != "":
			val = o.Name
		default:
			return nil, s.errf("variant %q: override %q needs a value or a name", v.Name, o.Param)
		}
		if err := sp.Apply(o.Param, val); err != nil {
			return nil, s.errf("variant %q: %w", v.Name, err)
		}
	}
	if err := sp.Validate(); err != nil {
		return nil, s.errf("variant %q at %s=%g: %w", v.Name, s.Strategy.Param, x, err)
	}
	return sp, nil
}

// Hash returns the exploration's content address: sha256 over the
// canonical JSON encoding (struct field order, sorted map keys — the
// deterministic form encoding/json produces for this shape). The
// service keys exploration jobs by it, mixed with the engine version.
func (s *Spec) Hash() (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", s.errf("hash: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
