package explore

import (
	"strings"
	"testing"
)

// TestRunUnknownStrategyListsOptions pins the registry contract on the
// runner's defensive strategy dispatch: Validate rejects unknown kinds
// first, but a caller that skips validation still gets an error naming
// the valid kinds, not a bare name.
func TestRunUnknownStrategyListsOptions(t *testing.T) {
	s := mustSpec(t, `{
		"name": "syn-unknown",
		"base": `+synBase+`,
		"strategy": {
			"kind": "grid",
			"axes": [{"param": "model.scale", "values": [1, 2]}]
		},
		"aggregators": [
			{"kind": "topk", "k": 1, "metric": "mean_fps", "goal": "max"}
		]
	}`)
	s.Strategy.Kind = "anneal"
	eval := synEval(func(scale, p float64) float64 { return scale * p })
	_, err := Run(s, Options{Evaluate: eval})
	if err == nil {
		t.Fatal("unknown strategy kind accepted")
	}
	for _, want := range []string{`"anneal"`, "valid: grid, bisect, refine"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}
