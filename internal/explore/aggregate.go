package explore

import (
	"fmt"
	"io"
	"sort"
)

// Eval is one completed probe: a derived case's display name, its
// deterministic sequence number in the strategy's probe order, and the
// metrics its model reported.
type Eval struct {
	Seq     int
	Case    string
	Metrics map[string]float64
}

// aggregator is one streaming reduction over the evaluation stream.
// add must be called in strictly increasing Seq order — the strategies
// guarantee it — so every aggregate is deterministic in the spec alone.
type aggregator interface {
	add(e Eval)
	render(w io.Writer)
	results() []Eval
}

// newAggregator builds the runtime form of one validated Aggregator.
func newAggregator(a Aggregator) aggregator {
	switch a.Kind {
	case "topk":
		return &topK{spec: a}
	case "pareto":
		cap := a.Capacity
		if cap == 0 {
			cap = DefaultParetoCapacity
		}
		senses := make([]bool, len(a.Senses))
		for i, s := range a.Senses {
			senses[i] = s == "max"
		}
		return &pareto{spec: a, capacity: cap, maxSense: senses}
	}
	panic("explore: unvalidated aggregator kind " + a.Kind)
}

// topK keeps the k best evaluations by one metric — bounded memory no
// matter how many cases stream past. Ties break toward the earlier
// sequence number, so the aggregate is order-deterministic.
type topK struct {
	spec    Aggregator
	items   []Eval
	skipped int // cases missing the metric (undefined objective)
}

func (t *topK) better(a, b Eval) bool {
	av, bv := a.Metrics[t.spec.Metric], b.Metrics[t.spec.Metric]
	if av != bv {
		if t.spec.Goal == "max" {
			return av > bv
		}
		return av < bv
	}
	return a.Seq < b.Seq
}

func (t *topK) add(e Eval) {
	if _, ok := e.Metrics[t.spec.Metric]; !ok {
		t.skipped++
		return
	}
	t.items = append(t.items, e)
	sort.Slice(t.items, func(i, j int) bool { return t.better(t.items[i], t.items[j]) })
	if len(t.items) > t.spec.K {
		t.items = t.items[:t.spec.K]
	}
}

func (t *topK) results() []Eval { return t.items }

func (t *topK) render(w io.Writer) {
	goal := t.spec.Goal
	if goal == "" {
		goal = "min"
	}
	fmt.Fprintf(w, "  top %d by %s (%s):\n", t.spec.K, t.spec.Metric, goal)
	fmt.Fprintf(w, "    %-4s %-36s %s\n", "rank", "case", t.spec.Metric)
	for i, e := range t.items {
		fmt.Fprintf(w, "    %-4d %-36s %s\n", i+1, e.Case, formatMetric(e.Metrics[t.spec.Metric]))
	}
	if t.skipped > 0 {
		fmt.Fprintf(w, "    (%d cases skipped: %s undefined)\n", t.skipped, t.spec.Metric)
	}
}

// pareto maintains the non-dominated frontier over several metrics in
// bounded memory. Insertion is streaming: a new point is dropped if any
// frontier point dominates it, else it evicts every point it dominates.
// Overflow beyond capacity deterministically drops the worst point by
// the first metric (ties toward the later sequence number), so the
// surviving set depends only on the stream order — which the
// strategies fix — never on timing.
type pareto struct {
	spec     Aggregator
	capacity int
	maxSense []bool
	items    []Eval
	skipped  int
	dropped  int // capacity evictions, surfaced in the report
}

// dominates reports whether a is at least as good as b on every metric
// and strictly better on one.
func (p *pareto) dominates(a, b Eval) bool {
	strict := false
	for i, m := range p.spec.Metrics {
		av, bv := a.Metrics[m], b.Metrics[m]
		if p.maxSense[i] {
			av, bv = -av, -bv
		}
		if av > bv {
			return false
		}
		if av < bv {
			strict = true
		}
	}
	return strict
}

func (p *pareto) add(e Eval) {
	for _, m := range p.spec.Metrics {
		if _, ok := e.Metrics[m]; !ok {
			p.skipped++
			return
		}
	}
	kept := p.items[:0]
	for _, it := range p.items {
		if p.dominates(it, e) {
			return // e is dominated; the frontier is unchanged
		}
		if !p.dominates(e, it) {
			kept = append(kept, it)
		}
	}
	p.items = append(kept, e)
	if len(p.items) > p.capacity {
		worst := 0
		for i := 1; i < len(p.items); i++ {
			if p.frontierLess(p.items[worst], p.items[i]) {
				worst = i
			}
		}
		p.items = append(p.items[:worst], p.items[worst+1:]...)
		p.dropped++
	}
}

// frontierLess orders frontier points best-first by the first metric
// (the conventional reading axis), ties toward the earlier sequence.
func (p *pareto) frontierLess(a, b Eval) bool {
	m := p.spec.Metrics[0]
	av, bv := a.Metrics[m], b.Metrics[m]
	if p.maxSense[0] {
		av, bv = -av, -bv
	}
	if av != bv {
		return av < bv
	}
	return a.Seq < b.Seq
}

func (p *pareto) results() []Eval {
	out := append([]Eval(nil), p.items...)
	sort.Slice(out, func(i, j int) bool { return p.frontierLess(out[i], out[j]) })
	return out
}

func (p *pareto) render(w io.Writer) {
	dims := make([]string, len(p.spec.Metrics))
	for i, m := range p.spec.Metrics {
		dims[i] = fmt.Sprintf("%s (%s)", m, p.spec.Senses[i])
	}
	pts := p.results()
	fmt.Fprintf(w, "  pareto frontier over %s: %d points\n", joinDims(dims), len(pts))
	fmt.Fprintf(w, "    %-36s", "case")
	for _, m := range p.spec.Metrics {
		fmt.Fprintf(w, " %-12s", m)
	}
	fmt.Fprintln(w)
	for _, e := range pts {
		fmt.Fprintf(w, "    %-36s", e.Case)
		for _, m := range p.spec.Metrics {
			fmt.Fprintf(w, " %-12s", formatMetric(e.Metrics[m]))
		}
		fmt.Fprintln(w)
	}
	if p.skipped > 0 {
		fmt.Fprintf(w, "    (%d cases skipped: metric undefined)\n", p.skipped)
	}
	if p.dropped > 0 {
		fmt.Fprintf(w, "    (%d points dropped: frontier capacity %d)\n", p.dropped, p.capacity)
	}
}

// joinDims renders "a (min) × b (max)".
func joinDims(dims []string) string {
	out := ""
	for i, d := range dims {
		if i > 0 {
			out += " × "
		}
		out += d
	}
	return out
}

// formatMetric renders one metric value for report tables: %.6g is
// stable, compact, and round-trips every count exactly.
func formatMetric(v float64) string { return fmt.Sprintf("%.6g", v) }
