package explore

import (
	"bytes"
	"fmt"
	"strings"
)

// renderText builds the canonical exploration report. Everything here
// is a pure function of the spec and the deterministic evaluation
// stream — no wall clock, no cache state, no worker count — which is
// what makes the CLI and the service byte-identical by construction.
func (r *runner) renderText() string {
	var buf bytes.Buffer
	s := r.spec
	st := &s.Strategy
	fmt.Fprintf(&buf, "exploration %s: %s, model %s\n", s.Name, r.strategyLabel(), s.Base.ModelName())

	switch st.Kind {
	case "bisect":
		c := r.crossover
		fmt.Fprintf(&buf, "  objective:          Δ%s (%s - %s)\n", st.Objective, st.A.Name, st.B.Name)
		fmt.Fprintf(&buf, "  crossover:          %s = %.6g (bracket [%.6g, %.6g])\n",
			c.Param, c.Value, c.Lo, c.Hi)
		fmt.Fprintf(&buf, "  at bracket ends:    Δ(lo) = %.6g, Δ(hi) = %.6g\n", c.DeltaLo, c.DeltaHi)
		fmt.Fprintf(&buf, "  probes:             %d bracketing steps (%d evaluations; dense grid at this tolerance: %d)\n",
			c.Probes, r.evals, r.denseEquivalent())
	case "refine":
		goal := st.Goal
		if goal == "" {
			goal = "min"
		}
		fmt.Fprintf(&buf, "  objective:          %s (%s)\n", st.Objective, goal)
		fmt.Fprintf(&buf, "  incumbent:          %s → %s\n",
			r.incumbent.Case, formatMetric(r.incumbent.Metrics[st.Objective]))
		fmt.Fprintf(&buf, "  rounds:             %d (%d evaluations, %d memoized)\n",
			st.rounds(), r.evals, r.memoized)
	}
	for _, a := range r.aggs {
		a.render(&buf)
	}
	fmt.Fprintf(&buf, "  evaluations:        %d\n", r.evals)
	return buf.String()
}

// strategyLabel renders the title line's strategy summary.
func (r *runner) strategyLabel() string {
	st := &r.spec.Strategy
	switch st.Kind {
	case "grid":
		names := make([]string, len(st.Axes))
		for i, ax := range st.Axes {
			names[i] = ax.Param
		}
		return fmt.Sprintf("grid over %s, %d cases", strings.Join(names, " × "), r.total)
	case "bisect":
		return fmt.Sprintf("bisect %s in [%g, %g] to ±%g",
			st.Param, float64(*st.Lo), float64(*st.Hi), float64(*st.Tolerance))
	case "refine":
		names := make([]string, len(st.Refine))
		for i, ax := range st.Refine {
			names[i] = ax.Param
		}
		return fmt.Sprintf("refine %s", strings.Join(names, " × "))
	}
	return st.Kind
}

// denseEquivalent is the evaluation count a dense grid scan would need
// to locate the crossover at the bisection's tolerance: one case per
// tolerance step across the bracket, times two variants. The report
// carries it so the adaptive strategy's saving is visible (and
// CI-checkable) next to the actual count.
func (r *runner) denseEquivalent() int {
	st := &r.spec.Strategy
	span := float64(*st.Hi) - float64(*st.Lo)
	tol := float64(*st.Tolerance)
	return 2 * (int(span/tol) + 1)
}
