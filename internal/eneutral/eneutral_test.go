package eneutral

import (
	"math"
	"testing"

	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/units"
)

// solarHarvest returns the Fig. 1(b)-scale indoor PV source (≈0.7–1.1 mW).
func solarHarvest() source.PowerSource {
	return source.DefaultPhotovoltaic()
}

func TestAdaptiveNodeIsEnergyNeutral(t *testing.T) {
	// Over each 24 h window the Kansal-controlled node must balance
	// consumption against harvest (eq. 1) within 15 % and never violate
	// eq. (2). Battery: 20 J ≈ 6 mAh at 3.3 V aggregate-scale model.
	n := NewNode(20, 0.6, solarHarvest())
	// Scale the load to the indoor-PV harvest (~1 mW): 3 mW active.
	n.PActive = 3e-3
	n.PSleep = 3e-6
	n.Controller = NewKansal()
	res := n.Simulate(4*units.Day, 10, units.Day)
	if res.Violations != 0 {
		t.Errorf("eq. (2) violated %d times", res.Violations)
	}
	if len(res.Windows) < 3 {
		t.Fatalf("only %d neutrality windows evaluated", len(res.Windows))
	}
	// Skip the first window (controller converging).
	for i, w := range res.Windows[1:] {
		if w > 0.15 {
			t.Errorf("window %d: eq. (1) imbalance %.1f%%, want ≤15%%", i+1, w*100)
		}
	}
	if res.FinalSoC < 0.3 || res.FinalSoC > 0.9 {
		t.Errorf("final SoC %.2f drifted out of the sustainable band", res.FinalSoC)
	}
}

func TestOverAggressiveFixedDutyViolatesEq2(t *testing.T) {
	// A fixed duty cycle consuming more than the harvest drains the
	// battery and kills the node — the failure mode energy-neutral
	// adaptation exists to avoid.
	n := NewNode(20, 0.6, solarHarvest())
	n.PActive = 3e-3
	n.PSleep = 3e-6
	n.Duty = 0.8 // 2.4 mW demand against ≈1 mW harvest
	n.Controller = &FixedController{Value: 0.8}
	res := n.Simulate(4*units.Day, 10, units.Day)
	if res.Violations == 0 {
		t.Error("over-aggressive fixed duty should deplete the battery (eq. 2)")
	}
	if res.DowntimeSec == 0 {
		t.Error("depleted node should accumulate downtime")
	}
}

func TestConservativeFixedDutyWastesHarvest(t *testing.T) {
	// The opposite mis-design: a tiny fixed duty survives but does far
	// less work than the adaptive node on the same energy input. The two
	// four-day simulations are independent, so they run as a sweep.
	variants := []struct {
		ctl  func() Controller
		duty float64
	}{
		{func() Controller { return NewKansal() }, 0.2},
		{func() Controller { return &FixedController{Value: 0.02} }, 0.02},
	}
	outs, err := sweep.Map(nil, len(variants), func(c sweep.Case) (Result, error) {
		v := variants[c.Index]
		n := NewNode(20, 0.6, solarHarvest())
		n.PActive = 3e-3
		n.PSleep = 3e-6
		n.Duty = v.duty
		n.Controller = v.ctl()
		return n.Simulate(4*units.Day, 10, units.Day), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, timid := outs[0], outs[1]
	if timid.Violations != 0 {
		t.Fatal("timid duty should at least survive")
	}
	if adaptive.ActiveSec < 2*timid.ActiveSec {
		t.Errorf("adaptive productive time %.0fs should dwarf timid %.0fs",
			adaptive.ActiveSec, timid.ActiveSec)
	}
}

func TestKansalTracksDiurnalCycle(t *testing.T) {
	// The duty trace must rise during the day and fall at night —
	// consumption following harvest is the essence of eq. (1) adaptation.
	n := NewNode(20, 0.6, solarHarvest())
	n.PActive = 3e-3
	n.PSleep = 3e-6
	n.Controller = NewKansal()
	res := n.Simulate(2*units.Day, 10, units.Day)
	if len(res.DutyTrace) < 40 {
		t.Fatalf("duty trace too short: %d", len(res.DutyTrace))
	}
	// Hour-indexed trace (hourly control): compare midday vs 4 am on day 2.
	day2 := res.DutyTrace[24:]
	if len(day2) < 15 {
		t.Fatal("trace does not cover day 2")
	}
	night := day2[3]   // ≈ 04:00
	midday := day2[12] // ≈ 13:00
	if midday <= night {
		t.Errorf("midday duty %.3f should exceed night duty %.3f", midday, night)
	}
}

func TestNodeRevivesAfterDepletion(t *testing.T) {
	// A dead node must come back once the battery recovers.
	n := NewNode(5, 0.02, solarHarvest())
	n.PActive = 3e-3
	n.PSleep = 3e-6
	n.Duty = 0.5
	n.Controller = NewKansal()
	res := n.Simulate(2*units.Day, 10, units.Day)
	if res.DowntimeSec == 0 {
		t.Skip("node never died; nothing to test")
	}
	if res.ActiveSec == 0 {
		t.Error("node never revived after depletion")
	}
}

func TestWorstWindowEmpty(t *testing.T) {
	var r Result
	if !math.IsInf(r.WorstWindow(), 1) {
		t.Error("no windows should report +Inf")
	}
	r.Windows = []float64{0.1, 0.4, 0.2}
	if r.WorstWindow() != 0.4 {
		t.Errorf("worst window = %g", r.WorstWindow())
	}
}

func TestControllerNames(t *testing.T) {
	if NewKansal().Name() != "kansal-adaptive" {
		t.Error("kansal name")
	}
	if (&FixedController{}).Name() != "fixed-duty" {
		t.Error("fixed name")
	}
}

func TestSimulationDeterminism(t *testing.T) {
	run := func() Result {
		n := NewNode(20, 0.6, solarHarvest())
		n.PActive = 3e-3
		n.PSleep = 3e-6
		n.Controller = NewKansal()
		return n.Simulate(units.Day, 10, units.Day)
	}
	a, b := run(), run()
	if a.HarvestedJ != b.HarvestedJ || a.ConsumedJ != b.ConsumedJ ||
		a.Violations != b.Violations {
		t.Error("energy-neutral simulation is not deterministic")
	}
}
