// Package eneutral implements the paper's §II.A: energy-neutral computing,
// the "make the harvester look like a battery" approach of Kansal et
// al. [3]. A sensor node buffers harvested energy in meaningful storage
// (battery or supercapacitor) and adapts its duty cycle so that, over a
// period T matched to the energy environment (24 h for solar), consumption
// equals harvest — eq. (1) — while the buffer keeps the supply alive —
// eq. (2). The package provides the node model, an adaptive (Kansal-style)
// duty-cycle controller and a fixed-duty baseline, and the windowed
// eq. (1)/(2) metrics the taxonomy and experiments evaluate.
package eneutral

import (
	"math"

	"repro/internal/circuit"
	"repro/internal/source"
)

// Controller adjusts a node's duty cycle at each control epoch.
type Controller interface {
	Name() string
	// Adjust returns the new duty cycle given the node state, the time,
	// and the controller-period mean harvested power observed since the
	// previous call.
	Adjust(n *Node, t, meanHarvestW float64) float64
}

// Node is an energy-neutral sensing node: storage, harvester, and a
// duty-cycled load.
type Node struct {
	Storage *circuit.Battery
	Harvest source.PowerSource

	PActive float64 // consumption while performing duty (sense+transmit), W
	PSleep  float64 // sleep floor, W
	Duty    float64 // fraction of time active (0..1)
	DutyMin float64
	DutyMax float64

	// ReviveSoC: a node that died (eq. 2 violation) restarts only once
	// the battery recovers to this state of charge.
	ReviveSoC float64

	Controller Controller
	CtrlPeriod float64 // seconds between controller invocations

	// Observe, if non-nil, is called by Simulate after every step with
	// the time, the battery state of charge, the present duty cycle,
	// and whether the node is dead. It is a pure observer — tracing
	// hooks in here.
	Observe func(t, soc, duty float64, dead bool)

	// Abort, if non-nil, stops Simulate early once the channel is
	// closed; the partial Result is returned with Aborted set.
	Abort <-chan struct{}

	dead bool
}

// NewNode returns a solar-WSN-flavoured node: 60 mW active, 60 µW sleep,
// duty limited to [1 %, 80 %], hourly control.
func NewNode(batteryJ, soc float64, harvest source.PowerSource) *Node {
	return &Node{
		Storage:    circuit.NewBattery(batteryJ, soc),
		Harvest:    harvest,
		PActive:    60e-3,
		PSleep:     60e-6,
		Duty:       0.2,
		DutyMin:    0.01,
		DutyMax:    0.8,
		ReviveSoC:  0.05,
		CtrlPeriod: 3600,
	}
}

// consumptionW returns the node's mean power at its present duty cycle.
func (n *Node) consumptionW() float64 {
	if n.dead {
		return 0
	}
	return n.Duty*n.PActive + (1-n.Duty)*n.PSleep
}

// Result summarises a simulation.
type Result struct {
	HarvestedJ float64
	ConsumedJ  float64
	FinalSoC   float64

	Violations  int     // eq. (2) violations: storage depleted, node dead
	DowntimeSec float64 // time spent dead
	ActiveSec   float64 // duty-weighted productive time

	// Windows holds the per-window eq. (1) imbalance ratios
	// |E_h − E_c| / E_h for each completed neutrality window.
	Windows []float64

	DutyTrace []float64 // duty cycle at each control epoch

	Aborted bool // Node.Abort closed before the run finished
}

// WorstWindow returns the largest eq. (1) imbalance ratio, or +Inf if no
// window completed.
func (r Result) WorstWindow() float64 {
	if len(r.Windows) == 0 {
		return math.Inf(1)
	}
	worst := 0.0
	for _, w := range r.Windows {
		worst = math.Max(worst, w)
	}
	return worst
}

// Simulate runs the node for duration seconds with the given integration
// step and eq. (1) evaluation window (typically 24 h). It is a chunked
// wrapper over Sim, preserving the historical abort cadence: the Abort
// channel is polled every 1024 steps, and an aborted run returns the
// partial Result with Aborted set.
func (n *Node) Simulate(duration, dt, window float64) Result {
	sim := NewSim(n, duration, dt, window)
	for !sim.Done() {
		if n.Abort != nil {
			select {
			case <-n.Abort:
				res := sim.res
				res.Aborted = true
				res.FinalSoC = n.Storage.SoC
				return res
			default:
			}
		}
		sim.Step(1024)
	}
	return sim.Result()
}

// Sim is a resumable stepper over the same integration loop as Simulate:
// it advances in bounded chunks so a caller can interleave cancellation
// checks or capture a checkpoint between chunks, and its full state is
// exposed through State/Restore. The step-by-step arithmetic is identical
// to an uninterrupted run, so a restored Sim produces bit-identical
// results.
type Sim struct {
	n                    *Node
	duration, dt, window float64

	t                float64
	winH, winC, winT float64
	ctlH, ctlT       float64
	nextCtrl         float64
	res              Result
}

// NewSim prepares a stepper for n over duration seconds at step dt with
// the eq. (1) window.
func NewSim(n *Node, duration, dt, window float64) *Sim {
	return &Sim{n: n, duration: duration, dt: dt, window: window, nextCtrl: n.CtrlPeriod}
}

// Done reports whether the integration loop has covered the duration.
func (s *Sim) Done() bool { return !(s.t < s.duration) }

// Step advances up to maxSteps integration steps (all remaining when
// maxSteps ≤ 0).
func (s *Sim) Step(maxSteps int) {
	n := s.n
	dt := s.dt
	for k := 0; (maxSteps <= 0 || k < maxSteps) && s.t < s.duration; k++ {
		t := s.t
		ph := n.Harvest.Power(t)
		eh := ph * dt
		spill := n.Storage.Charge(eh)
		_ = spill

		if n.dead && n.Storage.SoC >= n.ReviveSoC {
			n.dead = false
		}
		pc := n.consumptionW()
		ec := pc * dt
		got := n.Storage.Discharge(ec)
		if !n.dead {
			s.res.ActiveSec += n.Duty * dt
		}
		if got < ec*0.999 && !n.dead {
			// Storage could not supply the demand: eq. (2) violated.
			n.dead = true
			s.res.Violations++
		}
		if n.dead {
			s.res.DowntimeSec += dt
		}

		s.res.HarvestedJ += eh
		s.res.ConsumedJ += got
		s.winH += eh
		s.winC += got
		s.winT += dt
		s.ctlH += eh
		s.ctlT += dt

		if s.winT >= s.window {
			if s.winH > 0 {
				s.res.Windows = append(s.res.Windows, math.Abs(s.winH-s.winC)/s.winH)
			}
			s.winH, s.winC, s.winT = 0, 0, 0
		}
		if n.Controller != nil && t >= s.nextCtrl {
			mean := 0.0
			if s.ctlT > 0 {
				mean = s.ctlH / s.ctlT
			}
			n.Duty = clamp(n.Controller.Adjust(n, t, mean), n.DutyMin, n.DutyMax)
			s.res.DutyTrace = append(s.res.DutyTrace, n.Duty)
			s.ctlH, s.ctlT = 0, 0
			s.nextCtrl = t + n.CtrlPeriod
		}
		if n.Observe != nil {
			n.Observe(t, n.Storage.SoC, n.Duty, n.dead)
		}
		s.t += dt
	}
}

// Result finalises and returns the run summary. Call after Done.
func (s *Sim) Result() Result {
	res := s.res
	res.FinalSoC = s.n.Storage.SoC
	return res
}

// SimState is the complete serialisable state of a Sim plus the mutable
// node state the loop evolves: clock, windows, accumulators, battery
// SoC, duty cycle, liveness, and the Kansal controller's harvest
// estimate (nil for other controllers).
type SimState struct {
	T                float64
	WinH, WinC, WinT float64
	CtlH, CtlT       float64
	NextCtrl         float64
	Res              Result

	SoC         float64
	ThroughputJ float64
	Duty        float64
	Dead        bool
	Kansal      *float64 // KansalController.estimateW, when in use
}

// State captures the stepper for later Restore.
func (s *Sim) State() SimState {
	st := SimState{
		T: s.t, WinH: s.winH, WinC: s.winC, WinT: s.winT,
		CtlH: s.ctlH, CtlT: s.ctlT, NextCtrl: s.nextCtrl,
		Res:         s.res,
		SoC:         s.n.Storage.SoC,
		ThroughputJ: s.n.Storage.ThroughputJ,
		Duty:        s.n.Duty,
		Dead:        s.n.dead,
	}
	if k, ok := s.n.Controller.(*KansalController); ok {
		est := k.estimateW
		st.Kansal = &est
	}
	return st
}

// Restore rewinds the stepper and its node to a captured state. The node
// must have been rebuilt identically to the one that produced the state
// (same parameters, sources, and controller type).
func (s *Sim) Restore(st SimState) {
	s.t = st.T
	s.winH, s.winC, s.winT = st.WinH, st.WinC, st.WinT
	s.ctlH, s.ctlT = st.CtlH, st.CtlT
	s.nextCtrl = st.NextCtrl
	s.res = st.Res
	s.n.Storage.SoC = st.SoC
	s.n.Storage.ThroughputJ = st.ThroughputJ
	s.n.Duty = st.Duty
	s.n.dead = st.Dead
	if k, ok := s.n.Controller.(*KansalController); ok && st.Kansal != nil {
		k.estimateW = *st.Kansal
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// KansalController is the adaptive duty-cycling policy of [3]: estimate
// the mean harvest with an exponentially weighted average, set the duty so
// that expected consumption matches it, and bias toward the target state
// of charge so estimation errors do not accumulate in the buffer.
type KansalController struct {
	EWMAAlpha float64 // smoothing for the harvest estimate
	TargetSoC float64 // buffer setpoint
	SoCGain   float64 // proportional correction strength

	estimateW float64
}

// NewKansal returns the standard configuration (α=0.3, 60 % SoC target).
func NewKansal() *KansalController {
	return &KansalController{EWMAAlpha: 0.3, TargetSoC: 0.6, SoCGain: 1.2}
}

// Name implements Controller.
func (k *KansalController) Name() string { return "kansal-adaptive" }

// Adjust implements Controller.
func (k *KansalController) Adjust(n *Node, _, meanHarvestW float64) float64 {
	if k.estimateW == 0 {
		k.estimateW = meanHarvestW
	} else {
		k.estimateW = k.EWMAAlpha*meanHarvestW + (1-k.EWMAAlpha)*k.estimateW
	}
	// Power budget: the harvest estimate, biased by the SoC error so the
	// buffer converges to its setpoint.
	budget := k.estimateW * (1 + k.SoCGain*(n.Storage.SoC-k.TargetSoC))
	if budget < 0 {
		budget = 0
	}
	if n.PActive <= n.PSleep {
		return n.DutyMax
	}
	return (budget - n.PSleep) / (n.PActive - n.PSleep)
}

// FixedController is the non-adaptive baseline: a constant duty cycle,
// designed (or mis-designed) once.
type FixedController struct {
	Value float64
}

// Name implements Controller.
func (f *FixedController) Name() string { return "fixed-duty" }

// Adjust implements Controller.
func (f *FixedController) Adjust(*Node, float64, float64) float64 { return f.Value }
