package isa

import (
	"bytes"
	"fmt"
)

// Bus is the memory system the core executes against. The MCU layer
// implements it with distinct SRAM/FRAM regions, per-access wait states,
// and energy accounting; tests use a flat RAM.
type Bus interface {
	Read8(addr uint16) byte
	Write8(addr uint16, v byte)
	Read16(addr uint16) uint16
	Write16(addr uint16, v uint16)
	// AccessCycles returns the extra wait-state cycles for one access to
	// addr (0 for zero-wait memory).
	AccessCycles(addr uint16, write bool) uint64
}

// FetchBus is an optional Bus extension for the interpreter's hot path:
// one call returns the raw instruction bytes at addr together with the
// wait-state cycles an instruction fetch from addr pays, replacing up to
// four Read8 calls plus an AccessCycles call per executed instruction.
//
// Contract: raw[0] and raw[1] must equal Read8(addr) and Read8(addr+1);
// raw[2] and raw[3] must equal Read8(addr+2) and Read8(addr+3) whenever
// the opcode in raw[0] encodes a 4-byte instruction (they are don't-care
// otherwise, so implementations with side-effecting regions can skip
// them exactly like the byte-wise fetch would). wait must equal
// AccessCycles(addr, false).
type FetchBus interface {
	Fetch(addr uint16) (raw [4]byte, wait uint64)
}

// FetchWindow describes a contiguous, side-effect-free memory region the
// core may fetch instructions from by direct slice indexing — the zero-
// dispatch tier above FetchBus.
type FetchWindow struct {
	// Mem is the live backing store for addresses [Base, Base+len(Mem)):
	// writes through the bus to this region must be visible in it (i.e.
	// it aliases the implementation's storage, not a copy).
	Mem  []byte
	Base uint16
	// Wait, if non-nil, points at the live wait-state count for fetches
	// from this region (nil means zero-wait). A pointer rather than a
	// value so frequency-dependent wait states stay correct without
	// re-probing the window.
	Wait *uint64
}

// WindowBus is an optional Bus extension granting the core direct fetch
// windows. FetchWindow returns the window containing addr, or ok=false
// when addr has no window (MMIO, open bus) — the core then falls back to
// FetchBus/Read8 for that fetch.
type WindowBus interface {
	FetchWindow(addr uint16) (w FetchWindow, ok bool)
}

// SP is the register index used as the stack pointer by PUSH/POP/CALL/RET.
const SP = 15

// Core is one EVM-16 hardware thread: the full volatile execution state
// plus cycle accounting. Everything in Core (and the SRAM behind Bus) is
// lost on a brown-out unless a transient runtime saves it.
type Core struct {
	R      [16]uint16 // general registers; R[15] is the stack pointer
	PC     uint16
	HI     uint16 // high word of the last MUL
	ZF, NF bool   // zero, negative
	CF     bool   // carry (no-borrow for SUB/CMP)
	GE     bool   // signed >= from the last CMP/SUB

	Halted bool
	Cycles uint64 // total cycles retired, including wait states

	Bus Bus

	// Sys, if non-nil, handles SYS traps. The handler may read and write
	// core and bus state (calling convention: arguments in R1/R2, result
	// in R1).
	Sys func(code uint16, c *Core)

	// Checkpoint, if non-nil, is invoked by the CHK instruction after the
	// PC has advanced past it — the hook Mementos-style runtimes use.
	Checkpoint func(c *Core)

	// Decoded-instruction cache. Entries are validated against the raw
	// bytes re-read on every fetch, so the cache needs no invalidation
	// protocol: guest stores, snapshot restores, SRAM scrambling and any
	// other memory writer are all handled by construction — a stale entry
	// simply fails its byte comparison and is re-decoded.
	icache   []icLine
	knownBus Bus       // Bus value the fetch fast paths were resolved from
	fetchBus FetchBus  // non-nil when knownBus implements FetchBus
	winBus   WindowBus // non-nil when knownBus implements WindowBus

	// Cached fetch window: fetches with win.Base <= PC and PC+3 inside
	// win.Mem are served by direct slice indexing. Re-probed whenever PC
	// leaves the window.
	win   FetchWindow
	winOK bool

	// Superblock cache (see RunBudget): straight-line runs decoded into
	// one precompiled handler list, revalidated wholesale against live
	// memory before any effect is committed. Allocated lazily on the
	// first RunBudget call; plain Step never touches it.
	sbsets  [][sbWays]sblock
	sbHits  uint64 // block executions served by a revalidated cached block
	sbBuild uint64 // block (re)constructions

	// Last store site, recorded by execOne for the superblock runner's
	// self-modification check.
	storeAddr uint16
	storeLen  uint16
}

// icBits sizes the direct-mapped decode cache: 8192 lines covers any
// realistic guest program several times over (cross-line collisions are
// caught by the Addr check and only cost a re-decode).
const (
	icBits = 13
	icMask = 1<<icBits - 1
)

// icLine is one decode-cache entry: the decoded instruction plus the raw
// bytes it was decoded from, for validation.
type icLine struct {
	raw  [4]byte
	in   Instr
	size uint8 // encoded length (2 or 4); 0 marks an empty line
}

// Superblock cache geometry. Sets are indexed by (pc>>1) & sbMask —
// instructions are 2-byte aligned, so the shift keeps all index bits
// useful — and each set holds two ways so a pair of PCs that alias the
// same set (any 2 KiB multiple apart, which includes the 8 KiB distance
// that aliases the direct-mapped icache) can coexist instead of
// thrashing rebuilds. sbMaxInstrs is the fusion cap, the "cache-line
// boundary" of the block cache.
const (
	sbBits      = 10
	sbMask      = 1<<sbBits - 1
	sbWays      = 2
	sbMaxInstrs = 32
)

// sbEntry is one pre-decoded instruction of a superblock, with its base
// cycle cost and encoded length hoisted out of the dispatch loop. fast
// marks register-only ops (sbFast) whose cycle cost and fall-through
// successor are fully known at decode time, letting the dispatch loop
// skip the cycle-delta and exec-kind bookkeeping.
type sbEntry struct {
	in   Instr
	cyc  uint64
	ln   uint16
	fast bool
}

// sblock is a decoded straight-line run starting at start: the raw bytes
// it was decoded from (for wholesale revalidation) and the entry list. A
// zero rawLen marks an empty/unbuildable slot.
type sblock struct {
	start   uint16
	rawLen  uint16
	raw     []byte
	entries []sbEntry
}

// sbStop marks opcodes that terminate a superblock: control transfers
// and traps (the trap handlers may change mode, bus contents, or the
// core itself, so a block never runs past one).
var sbStop [opMax]bool

// sbFast marks register-only instructions: no bus access (so execOne
// adds exactly the entry's base cycle cost and never sets a wait state),
// no stores, no control transfer — execOne always returns the
// fall-through PC and kind 0. The dispatch loop exploits this to charge
// budget from the pre-decoded cost without the before/after Cycles diff
// or any exec-kind tests. Keep this list in sync with execOne: an op
// belongs here only if its case touches nothing but registers and flags.
var sbFast [opMax]bool

func init() {
	for _, op := range []Op{
		OpJMP, OpJZ, OpJNZ, OpJC, OpJNC, OpJN, OpJGE, OpJLT,
		OpCALL, OpRET, OpSYS, OpCHK, OpHALT,
	} {
		sbStop[op] = true
	}
	for _, op := range []Op{
		OpNOP, OpMOV, OpMOVI, OpADD, OpADDI, OpSUB, OpSUBI,
		OpAND, OpOR, OpXOR, OpNOT, OpNEG, OpSHL, OpSHR, OpSAR,
		OpMUL, OpQMUL, OpCMP, OpCMPI,
	} {
		sbFast[op] = true
	}
}

// Reset returns the core to its power-on state (registers and flags
// cleared, PC at the reset vector) without touching memory.
func (c *Core) Reset(resetVector uint16) {
	c.R = [16]uint16{}
	c.PC = resetVector
	c.HI = 0
	c.ZF, c.NF, c.CF, c.GE = false, false, false, false
	c.Halted = false
}

// setZN updates the Z and N flags from a result.
func (c *Core) setZN(v uint16) {
	c.ZF = v == 0
	c.NF = v&0x8000 != 0
}

// fetch returns the decoded instruction at PC and the fetch's wait-state
// cycles. It serves most fetches from the decode cache: the raw bytes are
// re-read every time (one FetchBus call when the bus supports it) and
// compared against the cached line, so the returned instruction is always
// exactly what a fresh decode of current memory would produce.
func (c *Core) fetch() (Instr, uint64, error) {
	pc := c.PC
	if c.Bus != c.knownBus {
		c.resolveBus()
	}
	var raw [4]byte
	var wait uint64
	if i := int(pc) - int(c.win.Base); c.winOK && i >= 0 && i+3 < len(c.win.Mem) {
		// Zero-dispatch tier: the PC sits inside the cached window.
		copy(raw[:], c.win.Mem[i:i+4])
		if c.win.Wait != nil {
			wait = *c.win.Wait
		}
	} else if c.winBus != nil && c.probeWindow(pc) {
		i := int(pc) - int(c.win.Base)
		copy(raw[:], c.win.Mem[i:i+4])
		if c.win.Wait != nil {
			wait = *c.win.Wait
		}
	} else if fb := c.fetchBus; fb != nil {
		raw, wait = fb.Fetch(pc)
	} else {
		raw[0] = c.Bus.Read8(pc)
		raw[1] = c.Bus.Read8(pc + 1)
		if Length(Op(raw[0])) == 4 {
			raw[2] = c.Bus.Read8(pc + 2)
			raw[3] = c.Bus.Read8(pc + 3)
		}
		wait = c.Bus.AccessCycles(pc, false)
	}
	line := &c.icache[pc&icMask]
	if line.size != 0 && line.in.Addr == pc {
		if (line.size == 2 && raw[0] == line.raw[0] && raw[1] == line.raw[1]) ||
			(line.size == 4 && raw == line.raw) {
			return line.in, wait, nil
		}
	}
	in, err := decodeChecked(raw[:], pc)
	if err != nil {
		return in, wait, err
	}
	line.raw = raw
	line.in = in
	line.size = uint8(Length(in.Op))
	return in, wait, nil
}

// resolveBus re-resolves the optional bus interfaces after Bus changed.
// Cached decode state survives a bus swap: every icache line and every
// superblock is revalidated against the (new) live bytes before use.
func (c *Core) resolveBus() {
	c.knownBus = c.Bus
	c.fetchBus, _ = c.Bus.(FetchBus)
	c.winBus, _ = c.Bus.(WindowBus)
	c.winOK = false
	if c.icache == nil {
		c.icache = make([]icLine, 1<<icBits)
	}
}

// probeWindow asks the WindowBus for a fetch window containing pc, and
// reports whether a usable one (pc+3 inside it) was cached.
func (c *Core) probeWindow(pc uint16) bool {
	w, ok := c.winBus.FetchWindow(pc)
	if !ok {
		c.winOK = false
		return false
	}
	c.win, c.winOK = w, true
	i := int(pc) - int(w.Base)
	return i >= 0 && i+3 < len(w.Mem)
}

func decodeChecked(buf []byte, addr uint16) (Instr, error) {
	in, _, err := Decode(buf, addr)
	return in, err
}

// Execution-outcome bits returned by execOne.
const (
	execTrap  = 1 << iota // SYS/CHK: PC already committed, handler already ran
	execHalt              // HALT: core halted, caller commits the returned PC
	execBad               // undefined opcode: core halted, PC must not advance
	execStore             // instruction wrote memory (see storeAddr/storeLen)
)

// Step executes one instruction. It returns the executed instruction and
// an error for invalid opcodes (which also halt the core). A halted core
// returns immediately.
func (c *Core) Step() (Instr, error) {
	if c.Halted {
		return Instr{}, nil
	}
	in, wait, err := c.fetch()
	if err != nil {
		c.Halted = true
		return in, err
	}
	// Instruction fetch pays the wait states of its own memory region.
	// in.Op is a decoded (hence defined) opcode, so direct table indexing
	// is safe.
	c.Cycles += opCycles[in.Op] + wait
	next, kind := c.execOne(in, c.PC+opLen[in.Op])
	if kind&execBad != 0 {
		return in, fmt.Errorf("isa: unimplemented opcode %v", in.Op)
	}
	if kind&execTrap == 0 {
		c.PC = next
	}
	return in, nil
}

// execOne executes one decoded instruction whose base cycles (and fetch
// wait states) have already been charged, and returns the next PC plus
// outcome bits. It is the single source of instruction semantics, shared
// by Step and the superblock runner. The caller commits the returned PC
// unless execTrap (committed here, before the handler ran) or execBad
// (the PC must stay on the faulting instruction) is set.
func (c *Core) execOne(in Instr, next uint16) (uint16, int) {
	switch in.Op {
	case OpNOP:
	case OpHALT:
		c.Halted = true
		return next, execHalt
	case OpMOV:
		c.R[in.Dst] = c.R[in.Src]
	case OpMOVI:
		c.R[in.Dst] = in.Imm
	case OpLD:
		addr := c.R[in.Src] + in.Imm
		c.R[in.Dst] = c.Bus.Read16(addr)
		c.Cycles += c.Bus.AccessCycles(addr, false)
	case OpST:
		addr := c.R[in.Dst] + in.Imm
		c.Bus.Write16(addr, c.R[in.Src])
		c.Cycles += c.Bus.AccessCycles(addr, true)
		c.storeAddr, c.storeLen = addr, 2
		return next, execStore
	case OpLDB:
		addr := c.R[in.Src] + in.Imm
		c.R[in.Dst] = uint16(c.Bus.Read8(addr))
		c.Cycles += c.Bus.AccessCycles(addr, false)
	case OpSTB:
		addr := c.R[in.Dst] + in.Imm
		c.Bus.Write8(addr, byte(c.R[in.Src]))
		c.Cycles += c.Bus.AccessCycles(addr, true)
		c.storeAddr, c.storeLen = addr, 1
		return next, execStore
	case OpPUSH:
		c.R[SP] -= 2
		c.Bus.Write16(c.R[SP], c.R[in.Dst])
		c.Cycles += c.Bus.AccessCycles(c.R[SP], true)
		c.storeAddr, c.storeLen = c.R[SP], 2
		return next, execStore
	case OpPOP:
		c.R[in.Dst] = c.Bus.Read16(c.R[SP])
		c.Cycles += c.Bus.AccessCycles(c.R[SP], false)
		c.R[SP] += 2
	case OpADD:
		c.add(in.Dst, c.R[in.Src])
	case OpADDI:
		c.add(in.Dst, in.Imm)
	case OpSUB:
		c.R[in.Dst] = c.sub(c.R[in.Dst], c.R[in.Src])
	case OpSUBI:
		c.R[in.Dst] = c.sub(c.R[in.Dst], in.Imm)
	case OpAND:
		c.R[in.Dst] &= c.R[in.Src]
		c.setZN(c.R[in.Dst])
	case OpOR:
		c.R[in.Dst] |= c.R[in.Src]
		c.setZN(c.R[in.Dst])
	case OpXOR:
		c.R[in.Dst] ^= c.R[in.Src]
		c.setZN(c.R[in.Dst])
	case OpNOT:
		c.R[in.Dst] = ^c.R[in.Dst]
		c.setZN(c.R[in.Dst])
	case OpNEG:
		c.R[in.Dst] = -c.R[in.Dst]
		c.setZN(c.R[in.Dst])
	case OpSHL:
		n := uint(in.Src)
		v := c.R[in.Dst]
		if n > 0 {
			c.CF = v&(1<<(16-n)) != 0
		}
		c.R[in.Dst] = v << n
		c.setZN(c.R[in.Dst])
	case OpSHR:
		n := uint(in.Src)
		v := c.R[in.Dst]
		if n > 0 {
			c.CF = v&(1<<(n-1)) != 0
		}
		c.R[in.Dst] = v >> n
		c.setZN(c.R[in.Dst])
	case OpSAR:
		n := uint(in.Src)
		v := int16(c.R[in.Dst])
		if n > 0 {
			c.CF = uint16(v)&(1<<(n-1)) != 0
		}
		c.R[in.Dst] = uint16(v >> n)
		c.setZN(c.R[in.Dst])
	case OpMUL:
		prod := int32(int16(c.R[in.Dst])) * int32(int16(c.R[in.Src]))
		c.R[in.Dst] = uint16(prod)
		c.HI = uint16(uint32(prod) >> 16)
		c.setZN(c.R[in.Dst])
	case OpQMUL:
		prod := int32(int16(c.R[in.Dst])) * int32(int16(c.R[in.Src]))
		q := prod >> 15
		if q > 32767 {
			q = 32767
		} else if q < -32768 {
			q = -32768
		}
		c.R[in.Dst] = uint16(int16(q))
		c.setZN(c.R[in.Dst])
	case OpCMP:
		c.sub(c.R[in.Dst], c.R[in.Src])
	case OpCMPI:
		c.sub(c.R[in.Dst], in.Imm)
	case OpJMP:
		next = in.Imm
		c.Cycles++
	case OpJZ:
		if c.ZF {
			next = in.Imm
			c.Cycles++
		}
	case OpJNZ:
		if !c.ZF {
			next = in.Imm
			c.Cycles++
		}
	case OpJC:
		if c.CF {
			next = in.Imm
			c.Cycles++
		}
	case OpJNC:
		if !c.CF {
			next = in.Imm
			c.Cycles++
		}
	case OpJN:
		if c.NF {
			next = in.Imm
			c.Cycles++
		}
	case OpJGE:
		if c.GE {
			next = in.Imm
			c.Cycles++
		}
	case OpJLT:
		if !c.GE {
			next = in.Imm
			c.Cycles++
		}
	case OpCALL:
		c.R[SP] -= 2
		c.Bus.Write16(c.R[SP], next)
		c.Cycles += c.Bus.AccessCycles(c.R[SP], true)
		c.storeAddr, c.storeLen = c.R[SP], 2
		return in.Imm, execStore
	case OpRET:
		next = c.Bus.Read16(c.R[SP])
		c.Cycles += c.Bus.AccessCycles(c.R[SP], false)
		c.R[SP] += 2
	case OpSYS:
		c.PC = next // handler sees the post-trap PC
		if c.Sys != nil {
			c.Sys(in.Imm, c)
		}
		return next, execTrap
	case OpCHK:
		c.PC = next // checkpoint captures the resume point past the trap
		if c.Checkpoint != nil {
			c.Checkpoint(c)
		}
		return next, execTrap
	default:
		c.Halted = true
		return next, execBad
	}
	return next, 0
}

// RunBudget executes instructions while budget >= 1 cycles remain and the
// core is not halted, using superblock execution: straight-line runs are
// decoded once into a cached block and replayed with a single fetch-path
// entry per block instead of one per instruction. It returns the budget
// left, the cycles actually retired (spent), and any guest fault.
//
// Semantics are step-for-step identical to calling Step in a loop and
// subtracting each instruction's cycle delta from the budget:
//
//   - a block revalidates every constituent instruction's raw bytes
//     against live memory before committing any effect, so guest stores,
//     snapshot restores and SRAM scrambling need no invalidation protocol
//     (the same property the per-fetch byte compare gives the icache);
//   - a store into the not-yet-executed remainder of the running block
//     aborts the replay at the next instruction boundary and re-enters
//     through revalidation;
//   - SYS/CHK return immediately after their handler (the handler may
//     have changed device mode — the caller must recheck its own gates);
//   - a faulting instruction's cycles are charged to the core but not to
//     budget/spent, matching the historical stepwise accounting;
//   - the budget check happens after every instruction, so the stop
//     decision lands on exactly the same instruction as the stepwise
//     loop (per-instruction deltas are small integers, so the float
//     subtractions are exact).
func (c *Core) RunBudget(budget float64) (float64, uint64, error) {
	if c.Bus != c.knownBus {
		c.resolveBus()
	}
	if c.sbsets == nil {
		c.sbsets = make([][sbWays]sblock, 1<<sbBits)
	}
	var spent uint64
	for budget >= 1 && !c.Halted {
		blk := c.lookupBlock(c.PC)
		if blk == nil {
			// MMIO fetch, window tail, or undecodable bytes: the plain
			// step path handles them exactly as before.
			before := c.Cycles
			if _, err := c.Step(); err != nil {
				return budget, spent, err
			}
			d := c.Cycles - before
			budget -= float64(d)
			spent += d
			continue
		}
		var wait uint64
		if c.win.Wait != nil {
			wait = *c.win.Wait
		}
		pc := blk.start
		for i := range blk.entries {
			e := &blk.entries[i]
			if e.fast {
				// Register-only op: execOne adds no cycles beyond the
				// pre-decoded cost, never stores, never redirects the PC
				// (sbFast's contract), so the budget charge is known up
				// front and the exec-kind tests below cannot fire. The
				// hottest ALU ops are dispatched right here to skip the
				// execOne call; each case is the same statement as the
				// corresponding execOne case (same helpers, same order),
				// with execOne itself as the fallback for the rest.
				d := e.cyc + wait
				c.Cycles += d
				in := &e.in
				switch in.Op {
				case OpMOV:
					c.R[in.Dst] = c.R[in.Src]
				case OpMOVI:
					c.R[in.Dst] = in.Imm
				case OpADD:
					c.add(in.Dst, c.R[in.Src])
				case OpADDI:
					c.add(in.Dst, in.Imm)
				case OpSUB:
					c.R[in.Dst] = c.sub(c.R[in.Dst], c.R[in.Src])
				case OpSUBI:
					c.R[in.Dst] = c.sub(c.R[in.Dst], in.Imm)
				case OpCMP:
					c.sub(c.R[in.Dst], c.R[in.Src])
				case OpCMPI:
					c.sub(c.R[in.Dst], in.Imm)
				default:
					c.execOne(e.in, 0)
				}
				pc += e.ln
				budget -= float64(d)
				spent += d
				if budget < 1 {
					break
				}
				continue
			}
			before := c.Cycles
			c.Cycles += e.cyc + wait
			pcNext, kind := c.execOne(e.in, pc+e.ln)
			if kind&execBad != 0 {
				c.PC = pc // stay on the faulting instruction, like Step
				return budget, spent, fmt.Errorf("isa: unimplemented opcode %v", e.in.Op)
			}
			d := c.Cycles - before
			budget -= float64(d)
			spent += d
			if kind&execTrap != 0 {
				return budget, spent, nil
			}
			pc = pcNext
			if kind&execHalt != 0 {
				break
			}
			if kind&execStore != 0 && storeHitsBlock(blk, pcNext, c.storeAddr, c.storeLen) {
				break
			}
			if budget < 1 {
				break
			}
		}
		c.PC = pc
	}
	return budget, spent, nil
}

// SuperblockStats reports superblock cache activity: hits are block
// executions served by a revalidated cached block, builds are block
// (re)constructions. Diagnostic only.
func (c *Core) SuperblockStats() (hits, builds uint64) { return c.sbHits, c.sbBuild }

// storeHitsBlock reports whether a store of n bytes at addr may overlap
// the not-yet-executed remainder [from, start+rawLen) of the running
// block. A store that wraps the address space is conservatively treated
// as overlapping.
func storeHitsBlock(blk *sblock, from uint16, addr uint16, n uint16) bool {
	a := int(addr)
	e := a + int(n)
	if e > 0x10000 {
		return true
	}
	return e > int(from) && a < int(blk.start)+int(blk.rawLen)
}

// lookupBlock returns a revalidated superblock starting at pc, building
// or rebuilding one as needed, or nil when pc has no usable fetch window
// or the bytes at pc do not decode (the caller falls back to Step).
func (c *Core) lookupBlock(pc uint16) *sblock {
	i := int(pc) - int(c.win.Base)
	if !c.winOK || i < 0 || i+3 >= len(c.win.Mem) {
		if c.winBus == nil || !c.probeWindow(pc) {
			return nil
		}
		i = int(pc) - int(c.win.Base)
	}
	set := &c.sbsets[(pc>>1)&sbMask]
	if set[0].start != pc || set[0].rawLen == 0 {
		if set[1].start == pc && set[1].rawLen != 0 {
			set[0], set[1] = set[1], set[0] // MRU to way 0
		} else {
			// Build into the LRU way, then promote. Freshly decoded from
			// live bytes, so no revalidation pass is needed this time.
			c.buildBlock(&set[1], pc, i)
			c.sbBuild++
			if set[1].rawLen == 0 {
				return nil
			}
			set[0], set[1] = set[1], set[0]
			return &set[0]
		}
	}
	blk := &set[0]
	if i+int(blk.rawLen) > len(c.win.Mem) || !bytes.Equal(blk.raw, c.win.Mem[i:i+int(blk.rawLen)]) {
		c.buildBlock(blk, pc, i)
		c.sbBuild++
		if blk.rawLen == 0 {
			return nil
		}
		return blk
	}
	c.sbHits++
	return blk
}

// buildBlock decodes a straight-line run from the cached window starting
// at pc (window offset i) into b, reusing b's backing storage. The block
// ends at a control transfer or trap (included as the final entry), at
// the fusion cap, at the window's fetch boundary, or at undecodable
// bytes (excluded — the fallback path reports them exactly like fetch).
func (c *Core) buildBlock(b *sblock, pc uint16, i int) {
	b.start = pc
	b.rawLen = 0
	b.raw = b.raw[:0]
	b.entries = b.entries[:0]
	mem := c.win.Mem
	addr := pc
	off := i
	for len(b.entries) < sbMaxInstrs && off+3 < len(mem) {
		in, n, err := Decode(mem[off:off+4], addr)
		if err != nil {
			break
		}
		b.entries = append(b.entries, sbEntry{in: in, cyc: opCycles[in.Op], ln: uint16(n), fast: sbFast[in.Op]})
		b.raw = append(b.raw, mem[off:off+n]...)
		off += n
		addr += uint16(n)
		if sbStop[in.Op] {
			break
		}
	}
	b.rawLen = uint16(len(b.raw))
}

// add performs dst += v with flag updates.
func (c *Core) add(dst uint8, v uint16) {
	a := c.R[dst]
	sum := uint32(a) + uint32(v)
	c.R[dst] = uint16(sum)
	c.CF = sum > 0xffff
	c.setZN(c.R[dst])
	// Signed comparison semantics are defined for SUB/CMP only, but keep
	// GE coherent for ADD as "result >= 0 signed".
	c.GE = int16(c.R[dst]) >= 0
}

// sub computes a - b, sets all flags, and returns the result. CF follows
// the MSP430 convention: set when no borrow occurred (a >= b unsigned).
func (c *Core) sub(a, b uint16) uint16 {
	r := a - b
	c.CF = a >= b
	c.setZN(r)
	c.GE = int16(a) >= int16(b)
	return r
}

// Run executes instructions until the core halts, maxSteps is reached, or
// an error occurs. It returns the number of instructions retired.
func (c *Core) Run(maxSteps int) (int, error) {
	for i := 0; i < maxSteps; i++ {
		if c.Halted {
			return i, nil
		}
		if _, err := c.Step(); err != nil {
			return i, err
		}
	}
	return maxSteps, nil
}

// FlatRAM is a simple zero-wait 64 KiB memory, primarily for tests and the
// standalone assembler tool.
type FlatRAM struct {
	Mem [65536]byte
}

// Read8 implements Bus.
func (m *FlatRAM) Read8(addr uint16) byte { return m.Mem[addr] }

// Write8 implements Bus.
func (m *FlatRAM) Write8(addr uint16, v byte) { m.Mem[addr] = v }

// Read16 implements Bus (little endian, unaligned allowed).
func (m *FlatRAM) Read16(addr uint16) uint16 {
	return uint16(m.Mem[addr]) | uint16(m.Mem[addr+1])<<8
}

// Write16 implements Bus.
func (m *FlatRAM) Write16(addr uint16, v uint16) {
	m.Mem[addr] = byte(v)
	m.Mem[addr+1] = byte(v >> 8)
}

// AccessCycles implements Bus (zero wait states).
func (m *FlatRAM) AccessCycles(uint16, bool) uint64 { return 0 }

// Fetch implements FetchBus (zero wait states; reads wrap like Read8).
func (m *FlatRAM) Fetch(addr uint16) ([4]byte, uint64) {
	var raw [4]byte
	if addr <= 0xfffc {
		copy(raw[:], m.Mem[addr:addr+4])
	} else {
		for i := range raw {
			raw[i] = m.Mem[addr+uint16(i)]
		}
	}
	return raw, 0
}

// FetchWindow implements WindowBus: the whole address space, zero-wait.
func (m *FlatRAM) FetchWindow(uint16) (FetchWindow, bool) {
	return FetchWindow{Mem: m.Mem[:], Base: 0}, true
}

var (
	_ FetchBus  = (*FlatRAM)(nil)
	_ WindowBus = (*FlatRAM)(nil)
)
