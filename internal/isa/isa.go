// Package isa defines EVM-16, the 16-bit embedded virtual machine the
// simulator's guest programs run on, together with its interpreter,
// two-pass assembler and disassembler.
//
// EVM-16 is deliberately MSP430-flavoured — the paper's transient-computing
// systems (hibernus, Mementos, QuickRecall) all target MSP430-class
// microcontrollers — without copying the MSP430 encoding:
//
//   - 16 general-purpose 16-bit registers R0–R15; R15 doubles as the stack
//     pointer (alias "sp" in assembly) used by PUSH/POP/CALL/RET.
//   - A separate 16-bit program counter and four condition flags
//     (Z zero, N negative, C carry/no-borrow, GE signed-greater-or-equal).
//   - 64 KiB byte-addressable little-endian memory behind a Bus interface,
//     so the MCU layer can map SRAM and FRAM regions with distinct wait
//     states and energy costs.
//   - A small DSP extension (MUL, QMUL) standing in for the MSP430 hardware
//     multiplier, which the FFT workload depends on.
//   - Two trap instructions used by the transient runtimes: CHK (a
//     compile-time checkpoint site, the hook Mementos instruments) and SYS
//     (host services: sensors, result emission).
//
// The volatile state of the machine — registers, PC, flags, and whatever
// SRAM the program uses — is exactly what the paper's checkpointing schemes
// must save and restore, so fidelity here is what makes the snapshot-size
// and snapshot-energy numbers meaningful.
package isa

import "fmt"

// Op is an EVM-16 opcode.
type Op uint8

// The EVM-16 instruction set.
const (
	OpNOP Op = iota
	OpHALT
	OpMOV  // MOV rd, rs
	OpMOVI // MOVI rd, #imm
	OpLD   // LD rd, [rs+imm]
	OpST   // ST [rd+imm], rs
	OpLDB  // LDB rd, [rs+imm]   (zero-extended byte load)
	OpSTB  // STB [rd+imm], rs   (low byte store)
	OpPUSH // PUSH rs
	OpPOP  // POP rd
	OpADD  // ADD rd, rs
	OpADDI // ADDI rd, #imm
	OpSUB  // SUB rd, rs
	OpSUBI // SUBI rd, #imm
	OpAND  // AND rd, rs
	OpOR   // OR rd, rs
	OpXOR  // XOR rd, rs
	OpNOT  // NOT rd
	OpNEG  // NEG rd
	OpSHL  // SHL rd, #n (n = 0..15, encoded in the src nibble)
	OpSHR  // SHR rd, #n (logical)
	OpSAR  // SAR rd, #n (arithmetic)
	OpMUL  // MUL rd, rs: rd = low 16 of signed product, HI = high 16
	OpQMUL // QMUL rd, rs: rd = (rd*rs)>>15 signed Q15 product, saturated
	OpCMP  // CMP rd, rs (flags only)
	OpCMPI // CMPI rd, #imm
	OpJMP  // JMP #addr
	OpJZ   // JZ #addr
	OpJNZ  // JNZ #addr
	OpJC   // JC #addr
	OpJNC  // JNC #addr
	OpJN   // JN #addr (negative)
	OpJGE  // JGE #addr (signed >=, from CMP/SUB)
	OpJLT  // JLT #addr (signed <)
	OpCALL // CALL #addr
	OpRET  // RET
	OpSYS  // SYS #code (host service trap)
	OpCHK  // CHK (checkpoint site trap; NOP unless a runtime hooks it)
	opMax
)

// Format describes how an instruction's operands are encoded.
type Format uint8

// Operand formats.
const (
	FmtNone      Format = iota // no operands            (2 bytes)
	FmtReg                     // one register in dst     (2 bytes)
	FmtRegReg                  // dst and src registers   (2 bytes)
	FmtRegImm4                 // dst register + 4-bit immediate in src nibble (2 bytes)
	FmtRegImm                  // dst register + 16-bit immediate (4 bytes)
	FmtRegRegImm               // dst, src registers + 16-bit immediate (4 bytes)
	FmtImm                     // 16-bit immediate only   (4 bytes)
)

// Spec describes one opcode: assembly mnemonic, operand format, and base
// cycle cost (memory wait states are added by the Bus).
type Spec struct {
	Mnemonic string
	Format   Format
	Cycles   uint64
}

// specs is indexed by Op.
var specs = [opMax]Spec{
	OpNOP:  {"NOP", FmtNone, 1},
	OpHALT: {"HALT", FmtNone, 1},
	OpMOV:  {"MOV", FmtRegReg, 1},
	OpMOVI: {"MOVI", FmtRegImm, 2},
	OpLD:   {"LD", FmtRegRegImm, 3},
	OpST:   {"ST", FmtRegRegImm, 3},
	OpLDB:  {"LDB", FmtRegRegImm, 3},
	OpSTB:  {"STB", FmtRegRegImm, 3},
	OpPUSH: {"PUSH", FmtReg, 3},
	OpPOP:  {"POP", FmtReg, 2},
	OpADD:  {"ADD", FmtRegReg, 1},
	OpADDI: {"ADDI", FmtRegImm, 2},
	OpSUB:  {"SUB", FmtRegReg, 1},
	OpSUBI: {"SUBI", FmtRegImm, 2},
	OpAND:  {"AND", FmtRegReg, 1},
	OpOR:   {"OR", FmtRegReg, 1},
	OpXOR:  {"XOR", FmtRegReg, 1},
	OpNOT:  {"NOT", FmtReg, 1},
	OpNEG:  {"NEG", FmtReg, 1},
	OpSHL:  {"SHL", FmtRegImm4, 1},
	OpSHR:  {"SHR", FmtRegImm4, 1},
	OpSAR:  {"SAR", FmtRegImm4, 1},
	OpMUL:  {"MUL", FmtRegReg, 3},
	OpQMUL: {"QMUL", FmtRegReg, 3},
	OpCMP:  {"CMP", FmtRegReg, 1},
	OpCMPI: {"CMPI", FmtRegImm, 2},
	OpJMP:  {"JMP", FmtImm, 2},
	OpJZ:   {"JZ", FmtImm, 2},
	OpJNZ:  {"JNZ", FmtImm, 2},
	OpJC:   {"JC", FmtImm, 2},
	OpJNC:  {"JNC", FmtImm, 2},
	OpJN:   {"JN", FmtImm, 2},
	OpJGE:  {"JGE", FmtImm, 2},
	OpJLT:  {"JLT", FmtImm, 2},
	OpCALL: {"CALL", FmtImm, 4},
	OpRET:  {"RET", FmtNone, 3},
	OpSYS:  {"SYS", FmtImm, 2},
	OpCHK:  {"CHK", FmtNone, 1},
}

// SpecFor returns the Spec for op and whether op is a defined opcode.
func SpecFor(op Op) (Spec, bool) {
	if op >= opMax {
		return Spec{}, false
	}
	return specs[op], true
}

// opCycles and opLen are flat hot-path views of specs: the interpreter
// charges cycles and advances PC once per executed instruction, and
// indexing a word-sized table there beats copying a Spec (with its
// string header) per instruction.
var (
	opCycles [opMax]uint64
	opLen    [opMax]uint16
)

func init() {
	for op := Op(0); op < opMax; op++ {
		opCycles[op] = specs[op].Cycles
		switch specs[op].Format {
		case FmtRegImm, FmtRegRegImm, FmtImm:
			opLen[op] = 4
		default:
			opLen[op] = 2
		}
	}
}

// Length returns the encoded length in bytes of an instruction with the
// given opcode (2 or 4).
func Length(op Op) int {
	if op >= opMax {
		return 2
	}
	return int(opLen[op])
}

// Instr is a decoded instruction.
type Instr struct {
	Op   Op
	Dst  uint8  // destination register (0–15)
	Src  uint8  // source register or 4-bit immediate (0–15)
	Imm  uint16 // 16-bit immediate, if the format carries one
	Addr uint16 // address the instruction was fetched from
}

// Size returns the encoded size of the instruction in bytes.
func (in Instr) Size() uint16 { return uint16(Length(in.Op)) }

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	s, ok := SpecFor(in.Op)
	if !ok {
		return fmt.Sprintf(".invalid 0x%02x", uint8(in.Op))
	}
	switch s.Format {
	case FmtNone:
		return s.Mnemonic
	case FmtReg:
		return fmt.Sprintf("%s r%d", s.Mnemonic, in.Dst)
	case FmtRegReg:
		return fmt.Sprintf("%s r%d, r%d", s.Mnemonic, in.Dst, in.Src)
	case FmtRegImm4:
		return fmt.Sprintf("%s r%d, #%d", s.Mnemonic, in.Dst, in.Src)
	case FmtRegImm:
		return fmt.Sprintf("%s r%d, #%d", s.Mnemonic, in.Dst, int16(in.Imm))
	case FmtRegRegImm:
		switch in.Op {
		case OpST, OpSTB:
			return fmt.Sprintf("%s [r%d+%d], r%d", s.Mnemonic, in.Dst, int16(in.Imm), in.Src)
		default:
			return fmt.Sprintf("%s r%d, [r%d+%d]", s.Mnemonic, in.Dst, in.Src, int16(in.Imm))
		}
	case FmtImm:
		return fmt.Sprintf("%s #0x%04x", s.Mnemonic, in.Imm)
	}
	return s.Mnemonic
}

// Encode serialises the instruction into buf (which must have room for
// Size() bytes) and returns the number of bytes written.
func (in Instr) Encode(buf []byte) int {
	buf[0] = byte(in.Op)
	buf[1] = (in.Dst << 4) | (in.Src & 0x0f)
	n := Length(in.Op)
	if n == 4 {
		buf[2] = byte(in.Imm)
		buf[3] = byte(in.Imm >> 8)
	}
	return n
}

// Decode reads one instruction from buf. It returns the instruction and
// the number of bytes consumed, or an error for an undefined opcode or a
// truncated buffer.
func Decode(buf []byte, addr uint16) (Instr, int, error) {
	if len(buf) < 2 {
		return Instr{}, 0, fmt.Errorf("isa: truncated instruction at 0x%04x", addr)
	}
	op := Op(buf[0])
	if _, ok := SpecFor(op); !ok {
		return Instr{}, 0, fmt.Errorf("isa: invalid opcode 0x%02x at 0x%04x", buf[0], addr)
	}
	in := Instr{
		Op:   op,
		Dst:  buf[1] >> 4,
		Src:  buf[1] & 0x0f,
		Addr: addr,
	}
	n := Length(op)
	if n == 4 {
		if len(buf) < 4 {
			return Instr{}, 0, fmt.Errorf("isa: truncated immediate at 0x%04x", addr)
		}
		in.Imm = uint16(buf[2]) | uint16(buf[3])<<8
	}
	return in, n, nil
}
