package isa

import (
	"testing"
	"testing/quick"
)

// runAsm assembles src, loads it into a FlatRAM, and returns a ready core
// with the stack at 0xFF00.
func runAsm(t *testing.T, src string) *Core {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ram := &FlatRAM{}
	p.LoadInto(ram)
	c := &Core{Bus: ram}
	c.Reset(p.Entry)
	c.R[SP] = 0xff00
	return c
}

// mustRun steps the core to completion.
func mustRun(t *testing.T, c *Core, maxSteps int) {
	t.Helper()
	if _, err := c.Run(maxSteps); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.Halted {
		t.Fatalf("program did not halt in %d steps (PC=0x%04x)", maxSteps, c.PC)
	}
}

func TestMoviAndArithmetic(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #10
    MOVI r2, #32
    ADD  r1, r2     ; r1 = 42
    SUBI r2, #2     ; r2 = 30
    HALT
`)
	mustRun(t, c, 100)
	if c.R[1] != 42 || c.R[2] != 30 {
		t.Errorf("r1=%d r2=%d, want 42, 30", c.R[1], c.R[2])
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..100 = 5050.
	c := runAsm(t, `
start:
    MOVI r1, #100
    MOVI r2, #0
loop:
    ADD  r2, r1
    SUBI r1, #1
    JNZ  loop
    HALT
`)
	mustRun(t, c, 1000)
	if c.R[2] != 5050 {
		t.Errorf("sum = %d, want 5050", c.R[2])
	}
}

func TestLoadStore(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #0x1234
    MOVI r2, #0x2000
    ST   [r2+4], r1
    LD   r3, [r2+4]
    STB  [r2+10], r1   ; low byte 0x34
    LDB  r4, [r2+10]
    HALT
`)
	mustRun(t, c, 100)
	if c.R[3] != 0x1234 {
		t.Errorf("word round-trip = 0x%04x, want 0x1234", c.R[3])
	}
	if c.R[4] != 0x34 {
		t.Errorf("byte round-trip = 0x%02x, want 0x34", c.R[4])
	}
}

func TestPushPopCallRet(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #7
    PUSH r1
    MOVI r1, #0
    CALL double     ; r2 = 2*r3
    POP  r4
    HALT
double:
    MOVI r3, #21
    MOV  r2, r3
    ADD  r2, r3
    RET
`)
	mustRun(t, c, 100)
	if c.R[2] != 42 {
		t.Errorf("call result = %d, want 42", c.R[2])
	}
	if c.R[4] != 7 {
		t.Errorf("stack round-trip = %d, want 7", c.R[4])
	}
	if c.R[SP] != 0xff00 {
		t.Errorf("SP not balanced: 0x%04x", c.R[SP])
	}
}

func TestFlagsAndConditionalJumps(t *testing.T) {
	// Signed comparison: -5 < 3 must take JLT.
	c := runAsm(t, `
start:
    MOVI r1, #-5
    CMPI r1, #3
    JLT  less
    MOVI r2, #0
    HALT
less:
    MOVI r2, #1
    HALT
`)
	mustRun(t, c, 100)
	if c.R[2] != 1 {
		t.Error("JLT should have been taken for -5 < 3")
	}
	// Unsigned view: 0xfffb >= 3, so JC (no borrow) is taken.
	c2 := runAsm(t, `
start:
    MOVI r1, #-5
    CMPI r1, #3
    JC   nb
    MOVI r2, #0
    HALT
nb:
    MOVI r2, #1
    HALT
`)
	mustRun(t, c2, 100)
	if c2.R[2] != 1 {
		t.Error("JC should reflect unsigned no-borrow")
	}
}

func TestLogicalOps(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #0x0f0f
    MOVI r2, #0x00ff
    MOV  r3, r1
    AND  r3, r2      ; 0x000f
    MOV  r4, r1
    OR   r4, r2      ; 0x0fff
    MOV  r5, r1
    XOR  r5, r2      ; 0x0ff0
    MOV  r6, r1
    NOT  r6          ; 0xf0f0
    MOVI r7, #5
    NEG  r7          ; -5
    HALT
`)
	mustRun(t, c, 100)
	want := map[int]uint16{3: 0x000f, 4: 0x0fff, 5: 0x0ff0, 6: 0xf0f0, 7: 0xfffb}
	for reg, w := range want {
		if c.R[reg] != w {
			t.Errorf("r%d = 0x%04x, want 0x%04x", reg, c.R[reg], w)
		}
	}
}

func TestShifts(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #1
    SHL  r1, #4      ; 16
    MOVI r2, #0x8000
    SHR  r2, #15     ; 1
    MOVI r3, #-16
    SAR  r3, #2      ; -4
    HALT
`)
	mustRun(t, c, 100)
	if c.R[1] != 16 || c.R[2] != 1 || int16(c.R[3]) != -4 {
		t.Errorf("shifts: r1=%d r2=%d r3=%d", c.R[1], c.R[2], int16(c.R[3]))
	}
}

func TestMulAndHI(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #300
    MOVI r2, #-200
    MUL  r1, r2      ; -60000 = 0xffff15a0
    HALT
`)
	mustRun(t, c, 100)
	prod := int32(uint32(c.HI)<<16 | uint32(c.R[1]))
	if prod != -60000 {
		t.Errorf("MUL product = %d, want -60000", prod)
	}
}

func TestQMulQ15(t *testing.T) {
	// Q15: 0.5 * 0.5 = 0.25 → 0x2000.
	c := runAsm(t, `
start:
    MOVI r1, #0x4000
    MOVI r2, #0x4000
    QMUL r1, r2
    MOVI r3, #-32768
    MOVI r4, #-32768
    QMUL r3, r4      ; (-1)*(-1) saturates to 0x7fff
    HALT
`)
	mustRun(t, c, 100)
	if c.R[1] != 0x2000 {
		t.Errorf("QMUL 0.5*0.5 = 0x%04x, want 0x2000", c.R[1])
	}
	if c.R[3] != 0x7fff {
		t.Errorf("QMUL saturation = 0x%04x, want 0x7fff", c.R[3])
	}
}

func TestQMulMatchesReference(t *testing.T) {
	ram := &FlatRAM{}
	// QMUL r1, r2; HALT
	prog := []Instr{
		{Op: OpQMUL, Dst: 1, Src: 2},
		{Op: OpHALT},
	}
	addr := uint16(0)
	for _, in := range prog {
		var buf [4]byte
		n := in.Encode(buf[:])
		for i := 0; i < n; i++ {
			ram.Mem[addr+uint16(i)] = buf[i]
		}
		addr += uint16(n)
	}
	f := func(a, b int16) bool {
		c := &Core{Bus: ram}
		c.Reset(0)
		c.R[1] = uint16(a)
		c.R[2] = uint16(b)
		if _, err := c.Run(10); err != nil {
			return false
		}
		want := (int32(a) * int32(b)) >> 15
		if want > 32767 {
			want = 32767
		}
		if want < -32768 {
			want = -32768
		}
		return int16(c.R[1]) == int16(want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSysTrap(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #5
    SYS  #2          ; host doubles r1
    HALT
`)
	calls := 0
	c.Sys = func(code uint16, core *Core) {
		calls++
		if code != 2 {
			t.Errorf("sys code = %d, want 2", code)
		}
		core.R[1] *= 2
	}
	mustRun(t, c, 100)
	if calls != 1 || c.R[1] != 10 {
		t.Errorf("sys calls=%d r1=%d, want 1, 10", calls, c.R[1])
	}
}

func TestChkTrapAdvancesPC(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #1
    CHK
    MOVI r2, #2
    HALT
`)
	var pcAtChk uint16
	c.Checkpoint = func(core *Core) { pcAtChk = core.PC }
	mustRun(t, c, 100)
	// The hook must see the PC already pointing past CHK, so a restored
	// snapshot resumes after the checkpoint, not at it.
	if pcAtChk == 0 {
		t.Fatal("checkpoint hook never ran")
	}
	if c.R[2] != 2 {
		t.Error("execution after CHK did not continue")
	}
	// CHK without a hook is a NOP.
	c2 := runAsm(t, "start:\n CHK\n HALT\n")
	mustRun(t, c2, 10)
}

func TestInvalidOpcodeHalts(t *testing.T) {
	ram := &FlatRAM{}
	ram.Mem[0] = 0xEE // undefined opcode
	c := &Core{Bus: ram}
	c.Reset(0)
	if _, err := c.Step(); err == nil {
		t.Fatal("invalid opcode should error")
	}
	if !c.Halted {
		t.Error("invalid opcode should halt the core")
	}
	// Further steps are no-ops.
	if _, err := c.Step(); err != nil {
		t.Error("halted step should not error")
	}
}

func TestCyclesAccumulate(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #3      ; 2 cycles
    NOP              ; 1
    HALT             ; 1
`)
	mustRun(t, c, 10)
	if c.Cycles != 4 {
		t.Errorf("cycles = %d, want 4", c.Cycles)
	}
}

func TestResetClearsVolatileState(t *testing.T) {
	c := runAsm(t, "start:\n MOVI r1, #9\n HALT\n")
	mustRun(t, c, 10)
	c.Reset(0x100)
	if c.R[1] != 0 || c.PC != 0x100 || c.Halted {
		t.Error("reset did not clear state")
	}
}

func TestRunMaxSteps(t *testing.T) {
	c := runAsm(t, "start:\n JMP start\n")
	n, err := c.Run(50)
	if err != nil || n != 50 {
		t.Errorf("infinite loop ran %d steps (err=%v), want 50", n, err)
	}
	if c.Halted {
		t.Error("loop should not halt")
	}
}

func TestAddCarryFlag(t *testing.T) {
	c := runAsm(t, `
start:
    MOVI r1, #0xffff
    ADDI r1, #1      ; wraps, sets C
    JC   carry
    MOVI r2, #0
    HALT
carry:
    MOVI r2, #1
    HALT
`)
	mustRun(t, c, 100)
	if c.R[2] != 1 || c.R[1] != 0 {
		t.Errorf("carry path: r1=%d r2=%d", c.R[1], c.R[2])
	}
}

func TestFlatRAMWord(t *testing.T) {
	m := &FlatRAM{}
	m.Write16(0x10, 0xBEEF)
	if m.Read16(0x10) != 0xBEEF {
		t.Error("word round-trip failed")
	}
	if m.Read8(0x10) != 0xEF || m.Read8(0x11) != 0xBE {
		t.Error("not little endian")
	}
	if m.AccessCycles(0, false) != 0 {
		t.Error("flat RAM should be zero-wait")
	}
}

func TestJGEJNBehaviour(t *testing.T) {
	// 3 >= 3 signed takes JGE; result of SUB sets N for negative.
	c := runAsm(t, `
start:
    MOVI r1, #3
    CMPI r1, #3
    JGE  ge
    HALT
ge:
    MOVI r2, #1
    MOVI r3, #1
    SUBI r3, #5      ; -4, N set
    JN   neg
    HALT
neg:
    MOVI r4, #1
    HALT
`)
	mustRun(t, c, 100)
	if c.R[2] != 1 || c.R[4] != 1 {
		t.Errorf("JGE/JN: r2=%d r4=%d, want 1,1", c.R[2], c.R[4])
	}
}

// TestSuperblockAliasHazard pins alias safety of both decode caches at
// once. PCs 0x4000 and 0x6000 collide in the direct-mapped icache
// (0x4000 & icMask == 0x6000 & icMask) AND map to the same superblock
// set ((pc>>1) & sbMask), so a tight ping-pong between them is the
// worst-case thrash pattern: the icache line flips owner on every
// bounce and the superblock set holds both hot blocks only because it
// is 2-way. Raw-byte revalidation must keep every replay correct, and
// in steady state block executions must be served from cache — hits
// vastly outnumbering builds proves neither block evicts the other.
func TestSuperblockAliasHazard(t *testing.T) {
	const rounds = 2000
	if 0x4000&icMask != 0x6000&icMask {
		t.Fatal("test premise broken: PCs no longer alias the icache")
	}
	if (0x4000>>1)&sbMask != (0x6000>>1)&sbMask {
		t.Fatal("test premise broken: PCs no longer share a superblock set")
	}
	c := runAsm(t, `
start:
    MOVI r1, #2000     ; ping-pong rounds
    MOVI r2, #0        ; accumulator
    JMP  ping
.org 0x4000
ping:
    ADDI r2, #3
    JMP  pong
.org 0x6000
pong:
    ADDI r2, #4
    SUBI r1, #1
    JNZ  ping
    HALT
`)
	// Drive execution through the superblock engine, as the device does.
	for !c.Halted {
		if _, _, err := c.RunBudget(4096); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	if want := uint16(rounds * 7); c.R[2] != want {
		t.Fatalf("accumulator = %d, want %d — stale decode survived aliasing", c.R[2], want)
	}
	hits, builds := c.SuperblockStats()
	if builds > 8 {
		t.Errorf("superblock builds = %d; aliased blocks are evicting each other", builds)
	}
	if hits < rounds {
		t.Errorf("superblock hits = %d, want >= %d (steady-state replay from cache)", hits, rounds)
	}
}
