package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAssembleDirectives(t *testing.T) {
	p, err := Assemble(`
BASE = 0x2000
.org 0x100
start:
    MOVI r1, #BASE
    HALT
.org 0x200
table: .word 1, 0x7fff, -2
buf:   .space 4
bytes: .byte 0xAA, 0xBB
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x100 {
		t.Errorf("entry = 0x%04x, want 0x100", p.Entry)
	}
	if p.Labels["table"] != 0x200 {
		t.Errorf("table = 0x%04x, want 0x200", p.Labels["table"])
	}
	if p.Labels["buf"] != 0x206 {
		t.Errorf("buf = 0x%04x, want 0x206", p.Labels["buf"])
	}
	if p.Labels["bytes"] != 0x20a {
		t.Errorf("bytes = 0x%04x, want 0x20a", p.Labels["bytes"])
	}
	ram := &FlatRAM{}
	p.LoadInto(ram)
	if ram.Read16(0x202) != 0x7fff || ram.Read16(0x204) != 0xfffe {
		t.Error(".word values wrong")
	}
	if ram.Read8(0x20a) != 0xAA || ram.Read8(0x20b) != 0xBB {
		t.Error(".byte values wrong")
	}
	// MOVI immediate resolved from the constant.
	if ram.Read16(0x102) != 0x2000 {
		t.Errorf("constant immediate = 0x%04x", ram.Read16(0x102))
	}
	if p.Size() != 6+6+4+2 {
		t.Errorf("size = %d", p.Size())
	}
}

func TestAssembleForwardReference(t *testing.T) {
	p, err := Assemble(`
start:
    JMP  end
    NOP
end:
    HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	ram := &FlatRAM{}
	p.LoadInto(ram)
	c := &Core{Bus: ram}
	c.Reset(p.Entry)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if !c.Halted {
		t.Error("forward jump failed")
	}
}

func TestAssembleLabelArithmetic(t *testing.T) {
	p, err := Assemble(`
.org 0x300
data: .word 10, 20, 30
start:
    MOVI r1, #data+4
    MOVI r2, #0
    LD   r3, [r1+0]
    HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	ram := &FlatRAM{}
	p.LoadInto(ram)
	c := &Core{Bus: ram}
	c.Reset(p.Entry)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.R[3] != 30 {
		t.Errorf("label+4 load = %d, want 30", c.R[3])
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", "FROB r1", "unknown mnemonic"},
		{"bad register", "MOV r1, r99", "invalid register"},
		{"undefined symbol", "MOVI r1, #nowhere", "undefined symbol"},
		{"duplicate label", "a:\nNOP\na:\nNOP", "duplicate label"},
		{"shift range", "SHL r1, #16", "out of range"},
		{"operand count", "MOV r1", "expects 2 operand"},
		{"bad memory operand", "LD r1, r2", "invalid memory operand"},
		{"duplicate constant", "x = 1\nx = 2", "duplicate constant"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble(tt.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestAssembleSPAlias(t *testing.T) {
	p, err := Assemble(`
start:
    MOVI sp, #0xfe00
    MOVI r1, #7
    PUSH r1
    HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	ram := &FlatRAM{}
	p.LoadInto(ram)
	c := &Core{Bus: ram}
	c.Reset(p.Entry)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.R[SP] != 0xfdfe || ram.Read16(0xfdfe) != 7 {
		t.Error("sp alias / push broken")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	// Property: every well-formed instruction survives encode→decode.
	f := func(opRaw, dst, src uint8, imm uint16) bool {
		op := Op(opRaw % uint8(opMax))
		in := Instr{Op: op, Dst: dst % 16, Src: src % 16, Imm: imm}
		spec, _ := SpecFor(op)
		switch spec.Format {
		case FmtNone:
			in.Dst, in.Src, in.Imm = 0, 0, 0
		case FmtReg:
			in.Src, in.Imm = 0, 0
		case FmtRegReg, FmtRegImm4:
			in.Imm = 0
		case FmtRegImm:
			in.Src = 0
		case FmtImm:
			in.Dst, in.Src = 0, 0
		}
		var buf [4]byte
		n := in.Encode(buf[:])
		got, m, err := Decode(buf[:n], 0)
		if err != nil || m != n {
			return false
		}
		got.Addr = in.Addr
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
start:
    MOVI r1, #100
    ADD  r1, r2
    LD   r3, [r1+8]
    ST   [r1+8], r3
    SHL  r3, #2
    JMP  start
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	ram := &FlatRAM{}
	p.LoadInto(ram)
	lines := Disassemble(ram, 0, uint16(p.Size()))
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"MOVI r1, #100", "ADD r1, r2", "LD r3, [r1+8]", "ST [r1+8], r3", "SHL r3, #2", "JMP #0x0000"} {
		if !strings.Contains(joined, want) {
			t.Errorf("disassembly missing %q:\n%s", want, joined)
		}
	}
}

func TestDisassembleInvalidBytes(t *testing.T) {
	ram := &FlatRAM{}
	ram.Mem[0] = 0xEE
	lines := Disassemble(ram, 0, 1)
	if len(lines) != 1 || !strings.Contains(lines[0], ".byte") {
		t.Errorf("invalid byte disassembly = %v", lines)
	}
}

func TestAssembleCommentsAndBlank(t *testing.T) {
	p, err := Assemble(`
; full-line comment

start: NOP ; trailing comment
       HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 4 {
		t.Errorf("size = %d, want 4", p.Size())
	}
}

func TestAssembleNegativeImmediates(t *testing.T) {
	p, err := Assemble(`
start:
    MOVI r1, #-1
    ADDI r1, #-2
    HALT
`)
	if err != nil {
		t.Fatal(err)
	}
	ram := &FlatRAM{}
	p.LoadInto(ram)
	c := &Core{Bus: ram}
	c.Reset(p.Entry)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if int16(c.R[1]) != -3 {
		t.Errorf("negative immediates: %d, want -3", int16(c.R[1]))
	}
}

// TestRandomProgramsNeverPanic fuzzes the decoder/interpreter with random
// memory images: the core must halt or keep running but never panic.
func TestRandomProgramsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		ram := &FlatRAM{}
		for i := 0; i < 4096; i++ {
			ram.Mem[i] = byte(rng.Intn(256))
		}
		c := &Core{Bus: ram}
		c.Reset(0)
		c.R[SP] = 0x8000
		c.Run(500) // errors are fine; panics are not
	}
}
