package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Segment is one contiguous assembled byte range in the image.
type Segment struct {
	Addr uint16
	Data []byte
}

// Program is the output of the assembler: a sparse 64 KiB image plus the
// symbol table.
type Program struct {
	Segments []Segment
	Labels   map[string]uint16
	Entry    uint16 // address of the "start" label, or of the first byte
}

// LoadInto copies all assembled segments into the bus.
func (p *Program) LoadInto(bus Bus) {
	for _, seg := range p.Segments {
		for i, b := range seg.Data {
			bus.Write8(seg.Addr+uint16(i), b)
		}
	}
}

// Size returns the total number of assembled bytes.
func (p *Program) Size() int {
	n := 0
	for _, seg := range p.Segments {
		n += len(seg.Data)
	}
	return n
}

// mnemonicOps maps assembly mnemonics to opcodes.
var mnemonicOps = func() map[string]Op {
	m := make(map[string]Op, int(opMax))
	for op := Op(0); op < opMax; op++ {
		m[specs[op].Mnemonic] = op
	}
	return m
}()

// assembler holds state across the two passes.
type assembler struct {
	labels map[string]uint16
	consts map[string]uint16
	errs   []string
}

// Assemble translates EVM-16 assembly source into a Program.
//
// Syntax summary:
//
//	; comment                 — to end of line
//	label:                    — define label at current address
//	name = expr               — define a constant
//	.org ADDR                 — set the location counter
//	.word e1, e2, ...         — emit 16-bit values
//	.byte e1, e2, ...         — emit 8-bit values
//	.space N                  — reserve N zero bytes
//	MOVI r1, #expr            — immediates take #; jump/call targets may
//	JMP  label                  omit it
//	LD   r1, [r2+4]           — base-register plus signed offset
//
// Expressions are sums/differences of decimal or 0x-hex numbers, labels,
// and constants. Registers are r0–r15; "sp" is an alias for r15.
func Assemble(src string) (*Program, error) {
	a := &assembler{
		labels: make(map[string]uint16),
		consts: make(map[string]uint16),
	}
	lines := strings.Split(src, "\n")

	// Pass 1: assign addresses to labels.
	pc := uint16(0)
	orgSeen := false
	first := uint16(0)
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		line = a.takeLabels(line, pc, ln)
		if line == "" {
			continue
		}
		if ok := a.defineConst(line, ln); ok {
			continue
		}
		fields := splitOperands(line)
		mnem := strings.ToUpper(fields.mnemonic)
		switch {
		case mnem == ".ORG":
			v, err := a.eval(fields.rest, ln)
			if err != nil {
				a.errorf(ln, "%v", err)
				continue
			}
			pc = v
			if !orgSeen {
				first, orgSeen = pc, true
			}
		case mnem == ".WORD":
			if !orgSeen {
				first, orgSeen = pc, true
			}
			pc += uint16(2 * len(splitList(fields.rest)))
		case mnem == ".BYTE":
			if !orgSeen {
				first, orgSeen = pc, true
			}
			pc += uint16(len(splitList(fields.rest)))
		case mnem == ".SPACE":
			v, err := a.eval(fields.rest, ln)
			if err != nil {
				a.errorf(ln, "%v", err)
				continue
			}
			if !orgSeen {
				first, orgSeen = pc, true
			}
			pc += v
		default:
			op, ok := mnemonicOps[mnem]
			if !ok {
				a.errorf(ln, "unknown mnemonic %q", fields.mnemonic)
				continue
			}
			if !orgSeen {
				first, orgSeen = pc, true
			}
			pc += uint16(Length(op))
		}
	}

	// Pass 2: encode.
	var segs []Segment
	var cur *Segment
	pc = 0
	emit := func(bytes ...byte) {
		if cur == nil || cur.Addr+uint16(len(cur.Data)) != pc {
			segs = append(segs, Segment{Addr: pc})
			cur = &segs[len(segs)-1]
		}
		cur.Data = append(cur.Data, bytes...)
		pc += uint16(len(bytes))
	}
	for ln, raw := range lines {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		line = dropLabels(line)
		if line == "" {
			continue
		}
		if isConstDef(line) {
			continue
		}
		fields := splitOperands(line)
		mnem := strings.ToUpper(fields.mnemonic)
		switch mnem {
		case ".ORG":
			v, _ := a.eval(fields.rest, ln)
			pc = v
			cur = nil
		case ".WORD":
			for _, item := range splitList(fields.rest) {
				v, err := a.eval(item, ln)
				if err != nil {
					a.errorf(ln, "%v", err)
					v = 0
				}
				emit(byte(v), byte(v>>8))
			}
		case ".BYTE":
			for _, item := range splitList(fields.rest) {
				v, err := a.eval(item, ln)
				if err != nil {
					a.errorf(ln, "%v", err)
					v = 0
				}
				emit(byte(v))
			}
		case ".SPACE":
			v, _ := a.eval(fields.rest, ln)
			for i := uint16(0); i < v; i++ {
				emit(0)
			}
		default:
			op := mnemonicOps[mnem]
			in, err := a.parseOperands(op, fields.rest, ln)
			if err != nil {
				a.errorf(ln, "%v", err)
				continue
			}
			var buf [4]byte
			n := in.Encode(buf[:])
			emit(buf[:n]...)
		}
	}

	if len(a.errs) > 0 {
		return nil, fmt.Errorf("assembly failed:\n  %s", strings.Join(a.errs, "\n  "))
	}
	entry := first
	if e, ok := a.labels["start"]; ok {
		entry = e
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Addr < segs[j].Addr })
	return &Program{Segments: segs, Labels: a.labels, Entry: entry}, nil
}

func (a *assembler) errorf(line int, format string, args ...any) {
	a.errs = append(a.errs, fmt.Sprintf("line %d: %s", line+1, fmt.Sprintf(format, args...)))
}

// stripComment removes ;-comments and surrounding whitespace.
func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// takeLabels peels leading "name:" definitions off the line, recording
// them at address pc, and returns the remainder.
func (a *assembler) takeLabels(line string, pc uint16, ln int) string {
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			return line
		}
		name := strings.TrimSpace(line[:i])
		if !isIdent(name) {
			return line
		}
		if _, dup := a.labels[name]; dup {
			a.errorf(ln, "duplicate label %q", name)
		}
		a.labels[name] = pc
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return ""
		}
	}
}

// dropLabels removes leading label definitions without recording them
// (pass 2).
func dropLabels(line string) string {
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			return line
		}
		if !isIdent(strings.TrimSpace(line[:i])) {
			return line
		}
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return ""
		}
	}
}

// defineConst handles "name = expr" lines in pass 1.
func (a *assembler) defineConst(line string, ln int) bool {
	if !isConstDef(line) {
		return false
	}
	i := strings.IndexByte(line, '=')
	name := strings.TrimSpace(line[:i])
	v, err := a.eval(strings.TrimSpace(line[i+1:]), ln)
	if err != nil {
		a.errorf(ln, "constant %q: %v", name, err)
		return true
	}
	if _, dup := a.consts[name]; dup {
		a.errorf(ln, "duplicate constant %q", name)
	}
	a.consts[name] = v
	return true
}

func isConstDef(line string) bool {
	i := strings.IndexByte(line, '=')
	if i <= 0 {
		return false
	}
	return isIdent(strings.TrimSpace(line[:i]))
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// lineFields separates the mnemonic from its operand text.
type lineFields struct {
	mnemonic string
	rest     string
}

func splitOperands(line string) lineFields {
	i := strings.IndexAny(line, " \t")
	if i < 0 {
		return lineFields{mnemonic: line}
	}
	return lineFields{mnemonic: line[:i], rest: strings.TrimSpace(line[i+1:])}
}

// splitList splits a comma-separated operand list.
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// eval evaluates a sum/difference expression of numbers, labels and
// constants.
func (a *assembler) eval(expr string, ln int) (uint16, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return 0, fmt.Errorf("empty expression")
	}
	var total int64
	sign := int64(1)
	tok := strings.Builder{}
	flush := func() error {
		if tok.Len() == 0 {
			return nil
		}
		v, err := a.term(tok.String())
		if err != nil {
			return err
		}
		total += sign * int64(v)
		tok.Reset()
		return nil
	}
	for i, r := range expr {
		switch r {
		case '+':
			if err := flush(); err != nil {
				return 0, err
			}
			sign = 1
		case '-':
			if i == 0 || tok.Len() > 0 {
				if tok.Len() == 0 && i == 0 {
					sign = -1
					continue
				}
				if err := flush(); err != nil {
					return 0, err
				}
				sign = -1
			} else {
				sign = -sign
			}
		case ' ', '\t':
		default:
			tok.WriteRune(r)
		}
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return uint16(total), nil
}

// term resolves one token: number, label, or constant.
func (a *assembler) term(tok string) (uint16, error) {
	if v, err := strconv.ParseInt(tok, 0, 32); err == nil {
		return uint16(v), nil
	}
	if v, ok := a.consts[tok]; ok {
		return v, nil
	}
	if v, ok := a.labels[tok]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("undefined symbol %q", tok)
}

// parseReg parses r0–r15 or sp.
func parseReg(tok string) (uint8, error) {
	tok = strings.ToLower(strings.TrimSpace(tok))
	if tok == "sp" {
		return SP, nil
	}
	if len(tok) >= 2 && tok[0] == 'r' {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n <= 15 {
			return uint8(n), nil
		}
	}
	return 0, fmt.Errorf("invalid register %q", tok)
}

// parseMem parses [rN], [rN+expr] or [rN-expr], returning base register and
// offset.
func (a *assembler) parseMem(tok string, ln int) (uint8, uint16, error) {
	tok = strings.TrimSpace(tok)
	if len(tok) < 2 || tok[0] != '[' || tok[len(tok)-1] != ']' {
		return 0, 0, fmt.Errorf("invalid memory operand %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	// Find the register part: up to the first +/- not at position 0.
	sep := -1
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			sep = i
			break
		}
	}
	regTok, offTok := inner, ""
	if sep > 0 {
		regTok, offTok = inner[:sep], inner[sep:]
	}
	reg, err := parseReg(regTok)
	if err != nil {
		return 0, 0, err
	}
	var off uint16
	if offTok != "" {
		off, err = a.eval(offTok, ln)
		if err != nil {
			return 0, 0, err
		}
	}
	return reg, off, nil
}

// parseImm parses an immediate, with or without a leading '#'.
func (a *assembler) parseImm(tok string, ln int) (uint16, error) {
	tok = strings.TrimSpace(tok)
	tok = strings.TrimPrefix(tok, "#")
	return a.eval(tok, ln)
}

// parseOperands builds an Instr for op from its operand text.
func (a *assembler) parseOperands(op Op, rest string, ln int) (Instr, error) {
	spec := specs[op]
	ops := splitList(rest)
	in := Instr{Op: op}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s expects %d operand(s), got %d", spec.Mnemonic, n, len(ops))
		}
		return nil
	}
	switch spec.Format {
	case FmtNone:
		if err := need(0); err != nil {
			return in, err
		}
	case FmtReg:
		if err := need(1); err != nil {
			return in, err
		}
		r, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		in.Dst = r
	case FmtRegReg:
		if err := need(2); err != nil {
			return in, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		s, err := parseReg(ops[1])
		if err != nil {
			return in, err
		}
		in.Dst, in.Src = d, s
	case FmtRegImm4:
		if err := need(2); err != nil {
			return in, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		v, err := a.parseImm(ops[1], ln)
		if err != nil {
			return in, err
		}
		if v > 15 {
			return in, fmt.Errorf("%s shift amount %d out of range 0–15", spec.Mnemonic, v)
		}
		in.Dst, in.Src = d, uint8(v)
	case FmtRegImm:
		if err := need(2); err != nil {
			return in, err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return in, err
		}
		v, err := a.parseImm(ops[1], ln)
		if err != nil {
			return in, err
		}
		in.Dst, in.Imm = d, v
	case FmtRegRegImm:
		if err := need(2); err != nil {
			return in, err
		}
		switch op {
		case OpST, OpSTB:
			// ST [rd+imm], rs
			base, off, err := a.parseMem(ops[0], ln)
			if err != nil {
				return in, err
			}
			s, err := parseReg(ops[1])
			if err != nil {
				return in, err
			}
			in.Dst, in.Src, in.Imm = base, s, off
		default:
			// LD rd, [rs+imm]
			d, err := parseReg(ops[0])
			if err != nil {
				return in, err
			}
			base, off, err := a.parseMem(ops[1], ln)
			if err != nil {
				return in, err
			}
			in.Dst, in.Src, in.Imm = d, base, off
		}
	case FmtImm:
		if err := need(1); err != nil {
			return in, err
		}
		v, err := a.parseImm(ops[0], ln)
		if err != nil {
			return in, err
		}
		in.Imm = v
	}
	return in, nil
}

// Disassemble decodes length bytes starting at addr from the bus into
// assembly listing lines ("ADDR: INSTR").
func Disassemble(bus Bus, addr, length uint16) []string {
	var out []string
	end := uint32(addr) + uint32(length)
	for pc := uint32(addr); pc < end; {
		var buf [4]byte
		for i := range buf {
			buf[i] = bus.Read8(uint16(pc) + uint16(i))
		}
		in, n, err := Decode(buf[:], uint16(pc))
		if err != nil {
			out = append(out, fmt.Sprintf("0x%04x: .byte 0x%02x", pc, buf[0]))
			pc++
			continue
		}
		out = append(out, fmt.Sprintf("0x%04x: %s", pc, in.String()))
		pc += uint32(n)
	}
	return out
}
