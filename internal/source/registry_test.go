package source

import (
	"strings"
	"testing"

	"repro/internal/registry"
)

func TestRegistryEveryBuiltinBuilds(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("no registered sources")
	}
	for _, n := range names {
		b, err := Build(n, nil)
		if err != nil {
			t.Errorf("Build(%q): %v", n, err)
			continue
		}
		e, _ := Lookup(n)
		switch {
		case e.Power && (b.P == nil || b.V != nil):
			t.Errorf("Build(%q): power entry should yield P only, got %+v", n, b)
		case !e.Power && (b.V == nil || b.P != nil):
			t.Errorf("Build(%q): voltage entry should yield V only, got %+v", n, b)
		}
	}
}

func TestRegistryParamOverride(t *testing.T) {
	b, err := Build("dc", registry.Params{"v": 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.V.Voltage(0); got != 5 {
		t.Errorf("dc v=5 → Voltage = %g", got)
	}
	// Unspecified params keep their documented defaults.
	if got := b.V.SeriesResistance(); got != 100 {
		t.Errorf("dc default rs = %g, want 100", got)
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := Build("windd", nil)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), `unknown source "windd"`) ||
		!strings.Contains(err.Error(), "wind") {
		t.Errorf("error %q should name the kind and list known names", err)
	}
}

func TestRegistryUnknownParam(t *testing.T) {
	_, err := Build("sine", registry.Params{"amp": 3})
	if err == nil {
		t.Fatal("expected error")
	}
	for _, frag := range []string{`"amp"`, "amplitude"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q should contain %q", err, frag)
		}
	}
}

func TestRegistryDefaultsMatchCanonicalTestbed(t *testing.T) {
	// The "square" defaults must stay the repo-wide 4 ms/150 ms testbed.
	b, err := Build("square", nil)
	if err != nil {
		t.Fatal(err)
	}
	sq, ok := b.V.(*SquareWaveVoltage)
	if !ok {
		t.Fatalf("square built %T", b.V)
	}
	if sq.High != 3.3 || sq.OnTime != 0.004 || sq.OffTime != 0.150 || sq.Rs != 100 {
		t.Errorf("square defaults drifted: %+v", sq)
	}
}
