package source

import (
	"math"
	"testing"
)

// samplerTimes is a dense, irregular probe grid covering sub-cycle,
// multi-cycle, day-scale and negative times.
func samplerTimes() []float64 {
	ts := []float64{-1.5, -1e-6, 0, 1e-7, 5e-6, 1.0 / 3, 0.4999, 0.5, 1.7, 12.34, 3600.5, 86400 * 1.25}
	for i := 0; i < 500; i++ {
		ts = append(ts, float64(i)*0.0137)
	}
	return ts
}

// TestSamplersMatchRegistry pins the sampler contract for every
// registered supply at its default parameters: VoltageFn/PowerFn must
// return bit-identical values to the interface methods at every probed
// time.
func TestSamplersMatchRegistry(t *testing.T) {
	for _, name := range Names() {
		b, err := Build(name, nil)
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		if b.V != nil {
			assertVoltageFn(t, name, b.V)
		}
		if b.P != nil {
			assertPowerFn(t, name, b.P)
		}
	}
}

// TestSamplersMatchCombinators covers the wrapper compositions the
// registry does not reach directly.
func TestSamplersMatchCombinators(t *testing.T) {
	gen := &SignalGenerator{Amplitude: 3.3, Frequency: 17, Offset: 0.2, Phase: 0.6, Rs: 120}
	dc := &SignalGenerator{Amplitude: 2.0, Rs: 50} // Frequency 0: DC path
	for name, vs := range map[string]VoltageSource{
		"halfwave":      HalfWave(gen, 0.2),
		"fullwave":      FullWaveRect(gen, 0.3),
		"scaled":        &ScaledVoltage{Source: gen, Gain: 0.7},
		"scaled-dc":     &ScaledVoltage{Source: dc, Gain: 1.3},
		"gated":         &GatedVoltage{Source: gen, Windows: [][2]float64{{0.5, 1.5}, {3, 4}}},
		"gated-invert":  &GatedVoltage{Source: gen, Windows: [][2]float64{{1, 2}}, Invert: true},
		"square-degen":  &SquareWaveVoltage{High: 2.5}, // zero period: constant
		"nested":        HalfWave(&ScaledVoltage{Source: gen, Gain: 0.9}, 0.25),
		"trace-voltage": &TraceSource{Times: []float64{0, 1, 2}, Values: []float64{0, 3, 1}, Loop: true, Rs: 10},
	} {
		assertVoltageFn(t, name, vs)
	}
	for name, ps := range map[string]PowerSource{
		"scaled-power": &ScaledPower{Source: &ConstantPower{P: 5e-3}, Gain: 0.8},
		"sum-power": &SumPower{Sources: []PowerSource{
			&ConstantPower{P: 1e-3},
			&RFBurst{BurstPower: 10e-3, Period: 0.5, Duty: 0.2, JitterFrac: 0.1},
		}},
		"kinetic":     &Kinetic{EventEnergy: 1e-3, EventPeriod: 0.7, Decay: 0.05, Seed: 42},
		"trace-power": &TraceSource{Times: []float64{0, 1}, Values: []float64{1e-3, 2e-3}},
	} {
		assertPowerFn(t, name, ps)
	}
}

func assertVoltageFn(t *testing.T, name string, vs VoltageSource) {
	t.Helper()
	fn := VoltageFn(vs)
	for _, tt := range samplerTimes() {
		want, got := vs.Voltage(tt), fn(tt)
		if want != got && !(math.IsNaN(want) && math.IsNaN(got)) {
			t.Fatalf("%s: VoltageFn(%g) = %v, Voltage = %v", name, tt, got, want)
		}
	}
}

func assertPowerFn(t *testing.T, name string, ps PowerSource) {
	t.Helper()
	fn := PowerFn(ps)
	for _, tt := range samplerTimes() {
		want, got := ps.Power(tt), fn(tt)
		if want != got && !(math.IsNaN(want) && math.IsNaN(got)) {
			t.Fatalf("%s: PowerFn(%g) = %v, Power = %v", name, tt, got, want)
		}
	}
}
