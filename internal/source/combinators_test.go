package source

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfWaveRectifier(t *testing.T) {
	g := &SignalGenerator{Amplitude: 5, Frequency: 1, Rs: 10}
	r := HalfWave(g, 0.3)
	// Positive peak: 5 - 0.3.
	if got := r.Voltage(0.25); math.Abs(got-4.7) > 1e-9 {
		t.Errorf("positive peak = %g, want 4.7", got)
	}
	// Negative half clipped to zero.
	if got := r.Voltage(0.75); got != 0 {
		t.Errorf("negative half = %g, want 0", got)
	}
	if r.SeriesResistance() != 10 {
		t.Error("series resistance should pass through")
	}
}

func TestHalfWaveNeverNegative(t *testing.T) {
	g := &SignalGenerator{Amplitude: 6, Frequency: 4.7}
	r := HalfWave(g, 0.25)
	f := func(raw float64) bool {
		return r.Voltage(math.Mod(math.Abs(raw), 100)) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFullWaveRectifier(t *testing.T) {
	g := &SignalGenerator{Amplitude: 5, Frequency: 1}
	r := FullWaveRect(g, 0.3)
	// Both half-cycles conduct; two diode drops.
	pos := r.Voltage(0.25)
	neg := r.Voltage(0.75)
	if math.Abs(pos-4.4) > 1e-9 || math.Abs(neg-4.4) > 1e-9 {
		t.Errorf("full-wave peaks = %g/%g, want 4.4", pos, neg)
	}
	// Sub-threshold input yields zero, never negative.
	if got := r.Voltage(0); got != 0 {
		t.Errorf("zero crossing = %g, want 0", got)
	}
}

func TestScaledVoltage(t *testing.T) {
	c := &ConstantVoltage{V: 2, Rs: 10}
	s := &ScaledVoltage{Source: c, Gain: 3}
	if s.Voltage(0) != 6 {
		t.Error("gain not applied to voltage")
	}
	if s.SeriesResistance() != 90 {
		t.Error("impedance should scale by gain²")
	}
}

func TestScaledAndSumPower(t *testing.T) {
	a := &ConstantPower{P: 2}
	b := &ConstantPower{P: 3}
	if (&ScaledPower{Source: a, Gain: 0.5}).Power(0) != 1 {
		t.Error("scaled power wrong")
	}
	sum := &SumPower{Sources: []PowerSource{a, b}}
	if sum.Power(0) != 5 {
		t.Error("sum power wrong")
	}
	if (&SumPower{}).Power(0) != 0 {
		t.Error("empty sum should be 0")
	}
}

func TestGatedVoltage(t *testing.T) {
	c := &ConstantVoltage{V: 3, Rs: 1}
	g := &GatedVoltage{Source: c, Windows: [][2]float64{{0, 1}, {2, 3}}}
	cases := []struct {
		t    float64
		want float64
	}{
		{0.5, 3}, {1.5, 0}, {2.5, 3}, {3.5, 0},
	}
	for _, tt := range cases {
		if got := g.Voltage(tt.t); got != tt.want {
			t.Errorf("gated V(%g) = %g, want %g", tt.t, got, tt.want)
		}
	}
	// Inverted: windows are outages.
	gi := &GatedVoltage{Source: c, Windows: [][2]float64{{0, 1}}, Invert: true}
	if gi.Voltage(0.5) != 0 || gi.Voltage(1.5) != 3 {
		t.Error("inverted gating wrong")
	}
	if g.SeriesResistance() != 1 {
		t.Error("gated source resistance should pass through")
	}
}

func TestSquareWaveVoltage(t *testing.T) {
	s := &SquareWaveVoltage{High: 3.3, OnTime: 0.7, OffTime: 0.3, Rs: 5}
	if s.Voltage(0.1) != 3.3 || s.Voltage(0.8) != 0 {
		t.Error("square wave phases wrong")
	}
	// Next period.
	if s.Voltage(1.1) != 3.3 || s.Voltage(1.95) != 0 {
		t.Error("square wave period wrong")
	}
	if s.SeriesResistance() != 5 {
		t.Error("Rs mismatch")
	}
	// Degenerate period: always high.
	d := &SquareWaveVoltage{High: 2}
	if d.Voltage(9) != 2 {
		t.Error("zero period should stay high")
	}
}

func TestSquareWaveDutyAverage(t *testing.T) {
	s := &SquareWaveVoltage{High: 1, OnTime: 0.25, OffTime: 0.75}
	var sum float64
	n := 0
	for tt := 0.0; tt < 50; tt += 1e-3 {
		sum += s.Voltage(tt)
		n++
	}
	if avg := sum / float64(n); math.Abs(avg-0.25) > 0.01 {
		t.Errorf("duty average = %g, want 0.25", avg)
	}
}
