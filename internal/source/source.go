// Package source models the energy-harvesting supplies the paper's systems
// operate from: micro wind turbines, indoor photovoltaic cells, RF and
// kinetic harvesters, and the laboratory signal generator used to validate
// hibernus (DC–20 Hz). Sources are pure functions of simulated time so that
// experiments are deterministic and replayable.
//
// Two source abstractions are provided, mirroring how real harvesters are
// attached to loads:
//
//   - VoltageSource: an open-circuit voltage waveform V_oc(t) plus a series
//     (Thevenin) resistance. Wind turbines and signal generators are voltage
//     sources; the circuit layer computes the current actually delivered
//     into the storage node.
//   - PowerSource: an available-power waveform P_h(t), as produced by a
//     harvester behind an MPPT converter (the indoor PV cell of Fig. 1(b)
//     is characterised this way in the paper).
//
// The Rectified and Scaled combinators compose sources, and TraceSource
// replays recorded data.
package source

import (
	"math"
	"math/rand"
)

// VoltageSource is a supply characterised by its open-circuit voltage over
// time and a constant series resistance.
type VoltageSource interface {
	// Voltage returns the open-circuit output voltage at time t (seconds).
	Voltage(t float64) float64
	// SeriesResistance returns the Thevenin source resistance in ohms.
	SeriesResistance() float64
}

// PowerSource is a supply characterised by the power available for harvest
// at time t, e.g. the output of an MPPT stage.
type PowerSource interface {
	// Power returns the available harvested power in watts at time t.
	Power(t float64) float64
}

// PlateauVoltage is an optional VoltageSource extension for supplies that
// are piecewise constant. Plateau returns the output voltage at time t and
// the end of the constant stretch containing t, so analytic steppers can
// substitute v for per-sample Voltage calls across the whole stretch.
//
// The contract is exact: Voltage(u) must equal v bit-for-bit for every u
// in [t, until). until itself is accurate only to floating-point rounding
// of the implementation's arithmetic, so callers must leave a safety
// margin (at least one sampling step) before it rather than sampling
// right up to the boundary. A source whose output is not genuinely
// constant around t returns ok=false for that instant; a source that can
// never make the guarantee must not implement the interface.
type PlateauVoltage interface {
	VoltageSource
	Plateau(t float64) (v, until float64, ok bool)
}

// SignalGenerator is the controlled laboratory source used to validate
// hibernus: a sine (optionally offset) between DC and tens of Hz. At
// Frequency == 0 it produces a DC level equal to Amplitude + Offset.
type SignalGenerator struct {
	Amplitude float64 // peak amplitude in volts
	Frequency float64 // Hz; 0 means DC
	Offset    float64 // DC offset in volts
	Phase     float64 // radians
	Rs        float64 // series resistance in ohms
}

// Voltage implements VoltageSource.
func (g *SignalGenerator) Voltage(t float64) float64 {
	if g.Frequency == 0 {
		return g.Amplitude + g.Offset
	}
	return g.Offset + g.Amplitude*math.Sin(2*math.Pi*g.Frequency*t+g.Phase)
}

// SeriesResistance implements VoltageSource.
func (g *SignalGenerator) SeriesResistance() float64 { return g.Rs }

// WindTurbine models a micro wind turbine producing an AC voltage whose
// envelope follows wind gusts, as in Fig. 1(a): during a gust the output is
// a several-Hz AC waveform with a peak of a few volts that grows and decays
// with the gust envelope.
type WindTurbine struct {
	PeakVoltage float64 // envelope peak in volts (≈6 V in Fig. 1(a))
	ACFrequency float64 // electrical frequency in Hz (many Hz per the paper)
	GustStart   float64 // gust onset time in seconds
	GustRise    float64 // envelope rise time constant in seconds
	GustFall    float64 // envelope decay time constant in seconds
	GustHold    float64 // duration at full strength in seconds
	Rs          float64 // series resistance in ohms
}

// DefaultWindTurbine returns parameters matching Fig. 1(a): a single gust
// over roughly 8 s, ±6 V peak, AC at a handful of hertz.
func DefaultWindTurbine() *WindTurbine {
	return &WindTurbine{
		PeakVoltage: 6.0,
		ACFrequency: 4.7,
		GustStart:   0.5,
		GustRise:    0.8,
		GustHold:    3.0,
		GustFall:    1.5,
		Rs:          90,
	}
}

// Envelope returns the gust envelope (0..1) at time t.
func (w *WindTurbine) Envelope(t float64) float64 {
	switch {
	case t < w.GustStart:
		return 0
	case t < w.GustStart+w.GustRise:
		// Smooth (raised-cosine) rise.
		x := (t - w.GustStart) / w.GustRise
		return 0.5 - 0.5*math.Cos(math.Pi*x)
	case t < w.GustStart+w.GustRise+w.GustHold:
		return 1
	default:
		dt := t - (w.GustStart + w.GustRise + w.GustHold)
		return math.Exp(-dt / w.GustFall)
	}
}

// Voltage implements VoltageSource: AC carrier scaled by the gust envelope.
func (w *WindTurbine) Voltage(t float64) float64 {
	return w.PeakVoltage * w.Envelope(t) * math.Sin(2*math.Pi*w.ACFrequency*t)
}

// SeriesResistance implements VoltageSource.
func (w *WindTurbine) SeriesResistance() float64 { return w.Rs }

// Photovoltaic models an indoor PV cell's harvested power over the day, as
// in Fig. 1(b): a baseline harvest (always-on ambient lighting) with a
// raised daytime plateau, smooth dawn/dusk transitions, and small
// deterministic flicker. The paper's Fig. 1(b) reports harvested current at
// a fixed operating voltage; Current() exposes that view directly.
type Photovoltaic struct {
	BaseCurrent float64 // overnight harvested current in amperes (≈280 µA)
	PeakCurrent float64 // midday harvested current in amperes (≈430 µA)
	OpVoltage   float64 // operating voltage used to convert current→power
	DawnHour    float64 // local hour lights/sun come up (0–24)
	DuskHour    float64 // local hour harvest decays (0–24)
	EdgeHours   float64 // width of the dawn/dusk transition in hours
	Flicker     float64 // relative amplitude of slow deterministic ripple
}

// DefaultPhotovoltaic returns parameters matching Fig. 1(b): 280–430 µA
// over a two-day window with dawn ≈07:00 and dusk ≈19:00.
func DefaultPhotovoltaic() *Photovoltaic {
	return &Photovoltaic{
		BaseCurrent: 280e-6,
		PeakCurrent: 430e-6,
		OpVoltage:   2.5,
		DawnHour:    7,
		DuskHour:    19,
		EdgeHours:   1.5,
		Flicker:     0.02,
	}
}

// Current returns the harvested current in amperes at time t seconds from
// local midnight of day zero.
func (p *Photovoltaic) Current(t float64) float64 {
	hour := math.Mod(t/3600.0, 24)
	if hour < 0 {
		hour += 24
	}
	day := smoothStep(hour, p.DawnHour, p.EdgeHours) *
		(1 - smoothStep(hour, p.DuskHour, p.EdgeHours))
	i := p.BaseCurrent + (p.PeakCurrent-p.BaseCurrent)*day
	if p.Flicker > 0 {
		// Slow deterministic ripple (occupancy/cloud proxy): two
		// incommensurate sinusoids.
		r := math.Sin(2*math.Pi*t/1700) * math.Sin(2*math.Pi*t/4100)
		i *= 1 + p.Flicker*r*day
	}
	return i
}

// Power implements PowerSource as Current × OpVoltage.
func (p *Photovoltaic) Power(t float64) float64 {
	return p.Current(t) * p.OpVoltage
}

// smoothStep ramps 0→1 around center over width hours (raised cosine).
func smoothStep(x, center, width float64) float64 {
	if width <= 0 {
		if x >= center {
			return 1
		}
		return 0
	}
	lo, hi := center-width/2, center+width/2
	switch {
	case x <= lo:
		return 0
	case x >= hi:
		return 1
	default:
		u := (x - lo) / width
		return 0.5 - 0.5*math.Cos(math.Pi*u)
	}
}

// RFBurst models an RFID/RF-power harvester: power arrives in bursts while
// the reader illuminates the tag, with silence in between (the WISPCam
// supply regime).
type RFBurst struct {
	BurstPower  float64 // power during illumination in watts
	Period      float64 // seconds between burst starts
	Duty        float64 // fraction of the period illuminated (0..1)
	JitterFrac  float64 // relative jitter on burst start (deterministic hash)
	IdleLeakage float64 // trickle power between bursts in watts
}

// Power implements PowerSource.
func (r *RFBurst) Power(t float64) float64 {
	if r.Period <= 0 {
		return r.BurstPower
	}
	n := math.Floor(t / r.Period)
	start := n * r.Period
	if r.JitterFrac > 0 {
		start += r.Period * r.JitterFrac * hashUnit(int64(n))
	}
	if t >= start && t < start+r.Duty*r.Period {
		return r.BurstPower
	}
	return r.IdleLeakage
}

// hashUnit maps an integer deterministically to [-0.5, 0.5).
func hashUnit(n int64) float64 {
	x := uint64(n)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return float64(x%1000000)/1000000 - 0.5
}

// Kinetic models a motion/vibration harvester as a train of decaying
// impulses (e.g. heel strikes): each event injects a burst of power that
// decays exponentially.
type Kinetic struct {
	EventEnergy float64 // energy per event in joules
	EventPeriod float64 // mean seconds between events
	Decay       float64 // exponential decay time constant in seconds
	Seed        int64   // deterministic jitter seed
	jitter      []float64
}

// eventTime returns the time of the n-th event with deterministic jitter.
func (k *Kinetic) eventTime(n int) float64 {
	base := float64(n) * k.EventPeriod
	return base + 0.2*k.EventPeriod*hashUnit(int64(n)+k.Seed)
}

// Power implements PowerSource: the superposition of the most recent few
// impulse decays (earlier ones have decayed to irrelevance).
func (k *Kinetic) Power(t float64) float64 {
	if k.EventPeriod <= 0 || k.Decay <= 0 {
		return 0
	}
	peak := k.EventEnergy / k.Decay // so that ∫ P dt = EventEnergy
	n := int(t / k.EventPeriod)
	var p float64
	for i := n - 3; i <= n+1; i++ {
		if i < 0 {
			continue
		}
		et := k.eventTime(i)
		if et <= t {
			p += peak * math.Exp(-(t-et)/k.Decay)
		}
	}
	return p
}

// MarkovSource is a two-state (on/off) power source driven by a seeded
// Markov chain sampled on a fixed slot width — a simple model of bursty
// ambient energy (intermittent machinery, foot traffic).
type MarkovSource struct {
	OnPower  float64 // watts while in the on state
	OffPower float64 // watts while in the off state
	SlotLen  float64 // seconds per state slot
	POnToOff float64 // transition probability per slot
	POffToOn float64
	Seed     int64

	states []bool // memoised state per slot index
	rng    *rand.Rand
}

// state returns the chain state for slot i, extending the memo as needed.
func (m *MarkovSource) state(i int) bool {
	if i < 0 {
		return false
	}
	if m.rng == nil {
		m.rng = rand.New(rand.NewSource(m.Seed))
		m.states = append(m.states, true) // start on
	}
	for len(m.states) <= i {
		prev := m.states[len(m.states)-1]
		r := m.rng.Float64()
		next := prev
		if prev && r < m.POnToOff {
			next = false
		} else if !prev && r < m.POffToOn {
			next = true
		}
		m.states = append(m.states, next)
	}
	return m.states[i]
}

// Power implements PowerSource.
func (m *MarkovSource) Power(t float64) float64 {
	if m.SlotLen <= 0 {
		return m.OffPower
	}
	if m.state(int(t / m.SlotLen)) {
		return m.OnPower
	}
	return m.OffPower
}

// TraceSource replays a recorded waveform with linear interpolation,
// optionally looping. It can serve as either a VoltageSource or a
// PowerSource depending on what the samples represent.
type TraceSource struct {
	Times  []float64
	Values []float64
	Loop   bool
	Rs     float64
}

// sample interpolates the trace at time t.
func (ts *TraceSource) sample(t float64) float64 {
	n := len(ts.Times)
	if n == 0 {
		return 0
	}
	if ts.Loop && ts.Times[n-1] > ts.Times[0] {
		span := ts.Times[n-1] - ts.Times[0]
		t = ts.Times[0] + math.Mod(t-ts.Times[0], span)
		if t < ts.Times[0] {
			t += span
		}
	}
	if t <= ts.Times[0] {
		return ts.Values[0]
	}
	if t >= ts.Times[n-1] {
		return ts.Values[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if ts.Times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := ts.Times[lo], ts.Times[hi]
	v0, v1 := ts.Values[lo], ts.Values[hi]
	if t1 == t0 {
		return v1
	}
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Voltage implements VoltageSource.
func (ts *TraceSource) Voltage(t float64) float64 { return ts.sample(t) }

// SeriesResistance implements VoltageSource.
func (ts *TraceSource) SeriesResistance() float64 { return ts.Rs }

// Power implements PowerSource.
func (ts *TraceSource) Power(t float64) float64 { return ts.sample(t) }
