package source

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSignalGeneratorDC(t *testing.T) {
	g := &SignalGenerator{Amplitude: 3.3, Frequency: 0, Rs: 50}
	for _, tt := range []float64{0, 1, 100} {
		if got := g.Voltage(tt); got != 3.3 {
			t.Errorf("DC voltage at t=%g = %g, want 3.3", tt, got)
		}
	}
	if g.SeriesResistance() != 50 {
		t.Error("series resistance mismatch")
	}
}

func TestSignalGeneratorSine(t *testing.T) {
	g := &SignalGenerator{Amplitude: 5, Frequency: 10, Offset: 1}
	// Peak at quarter period.
	if got := g.Voltage(0.025); math.Abs(got-6) > 1e-9 {
		t.Errorf("peak = %g, want 6", got)
	}
	// Zero crossing (offset only) at t=0.
	if got := g.Voltage(0); math.Abs(got-1) > 1e-9 {
		t.Errorf("t=0 = %g, want 1", got)
	}
	// Periodicity property.
	f := func(raw float64) bool {
		tt := math.Mod(math.Abs(raw), 100)
		return math.Abs(g.Voltage(tt)-g.Voltage(tt+0.1)) < 1e-6 // period 0.1 s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindTurbineEnvelopeShape(t *testing.T) {
	w := DefaultWindTurbine()
	if got := w.Envelope(0); got != 0 {
		t.Errorf("pre-gust envelope = %g, want 0", got)
	}
	if got := w.Envelope(w.GustStart + w.GustRise + 0.1); got != 1 {
		t.Errorf("hold envelope = %g, want 1", got)
	}
	// Decay is monotonically decreasing after the hold.
	endHold := w.GustStart + w.GustRise + w.GustHold
	prev := w.Envelope(endHold)
	for dt := 0.1; dt < 3; dt += 0.1 {
		cur := w.Envelope(endHold + dt)
		if cur > prev+1e-12 {
			t.Fatalf("envelope not decaying at +%g s", dt)
		}
		prev = cur
	}
}

func TestWindTurbinePeakMatchesFig1a(t *testing.T) {
	// Fig. 1(a): roughly ±6 V peak AC over the gust.
	w := DefaultWindTurbine()
	minV, maxV := 0.0, 0.0
	for tt := 0.0; tt < 8; tt += 1e-3 {
		v := w.Voltage(tt)
		minV = math.Min(minV, v)
		maxV = math.Max(maxV, v)
	}
	if maxV < 5.5 || maxV > 6.0 {
		t.Errorf("max voltage %g outside [5.5, 6]", maxV)
	}
	if minV > -5.5 || minV < -6.0 {
		t.Errorf("min voltage %g outside [-6, -5.5]", minV)
	}
}

func TestWindTurbineACFrequency(t *testing.T) {
	// Count zero crossings during full-strength hold; expect ≈2 per cycle.
	w := DefaultWindTurbine()
	start, end := w.GustStart+w.GustRise, w.GustStart+w.GustRise+w.GustHold
	crossings := 0
	prev := w.Voltage(start)
	for tt := start; tt < end; tt += 1e-4 {
		cur := w.Voltage(tt)
		if prev < 0 && cur >= 0 {
			crossings++
		}
		prev = cur
	}
	expected := w.ACFrequency * (end - start)
	if math.Abs(float64(crossings)-expected) > 1.5 {
		t.Errorf("rising crossings = %d, want ≈%g", crossings, expected)
	}
}

func TestPhotovoltaicRangeMatchesFig1b(t *testing.T) {
	// Fig. 1(b): harvested current between ≈280 µA (night) and ≈430 µA (day)
	// over two days.
	p := DefaultPhotovoltaic()
	minI, maxI := math.Inf(1), math.Inf(-1)
	for tt := 0.0; tt < 2*86400; tt += 60 {
		i := p.Current(tt)
		minI = math.Min(minI, i)
		maxI = math.Max(maxI, i)
	}
	if minI < 270e-6 || minI > 290e-6 {
		t.Errorf("min current %g µA outside [270, 290]", minI*1e6)
	}
	if maxI < 420e-6 || maxI > 445e-6 {
		t.Errorf("max current %g µA outside [420, 445]", maxI*1e6)
	}
}

func TestPhotovoltaicDiurnalPattern(t *testing.T) {
	p := DefaultPhotovoltaic()
	night := p.Current(3 * 3600)   // 03:00
	midday := p.Current(13 * 3600) // 13:00
	if night >= midday {
		t.Errorf("night %g should be below midday %g", night, midday)
	}
	// Second day repeats the first (same hour → similar value).
	d1 := p.Current(13 * 3600)
	d2 := p.Current((24 + 13) * 3600)
	if math.Abs(d1-d2)/d1 > 0.06 {
		t.Errorf("daily repetition off: %g vs %g", d1, d2)
	}
	// Power view is current × OpVoltage.
	if math.Abs(p.Power(0)-p.Current(0)*p.OpVoltage) > 1e-15 {
		t.Error("Power != Current × OpVoltage")
	}
}

func TestSmoothStep(t *testing.T) {
	if smoothStep(0, 5, 2) != 0 || smoothStep(10, 5, 2) != 1 {
		t.Error("smoothStep endpoints wrong")
	}
	if got := smoothStep(5, 5, 2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("smoothStep midpoint = %g, want 0.5", got)
	}
	// Degenerate width behaves as a hard step.
	if smoothStep(4.9, 5, 0) != 0 || smoothStep(5, 5, 0) != 1 {
		t.Error("zero-width smoothStep should be a step")
	}
}

func TestRFBurst(t *testing.T) {
	r := &RFBurst{BurstPower: 0.01, Period: 1, Duty: 0.3}
	if got := r.Power(0.1); got != 0.01 {
		t.Errorf("inside burst = %g, want 0.01", got)
	}
	if got := r.Power(0.5); got != 0 {
		t.Errorf("outside burst = %g, want 0", got)
	}
	// Degenerate period: always on.
	r2 := &RFBurst{BurstPower: 0.5}
	if r2.Power(3) != 0.5 {
		t.Error("zero period should be continuous power")
	}
	// Idle leakage applies between bursts.
	r3 := &RFBurst{BurstPower: 1, Period: 1, Duty: 0.1, IdleLeakage: 1e-6}
	if r3.Power(0.9) != 1e-6 {
		t.Error("idle leakage not applied")
	}
}

func TestRFBurstDutyCycleAverage(t *testing.T) {
	// Time-averaged power ≈ duty × burst power.
	r := &RFBurst{BurstPower: 1, Period: 0.5, Duty: 0.25}
	var sum float64
	n := 0
	for tt := 0.0; tt < 100; tt += 1e-3 {
		sum += r.Power(tt)
		n++
	}
	avg := sum / float64(n)
	if math.Abs(avg-0.25) > 0.01 {
		t.Errorf("average power = %g, want ≈0.25", avg)
	}
}

func TestKineticEnergyPerEvent(t *testing.T) {
	// Integral of power over one isolated event ≈ EventEnergy.
	k := &Kinetic{EventEnergy: 1e-3, EventPeriod: 10, Decay: 0.05}
	var e float64
	dt := 1e-4
	for tt := 0.0; tt < 9.0; tt += dt {
		e += k.Power(tt) * dt
	}
	if math.Abs(e-1e-3)/1e-3 > 0.05 {
		t.Errorf("event energy = %g, want ≈1e-3", e)
	}
	// Degenerate config returns zero.
	if (&Kinetic{}).Power(1) != 0 {
		t.Error("unconfigured kinetic source should output 0")
	}
}

func TestMarkovSourceDeterminism(t *testing.T) {
	mk := func() *MarkovSource {
		return &MarkovSource{OnPower: 1, OffPower: 0, SlotLen: 0.1,
			POnToOff: 0.3, POffToOn: 0.3, Seed: 42}
	}
	a, b := mk(), mk()
	for tt := 0.0; tt < 20; tt += 0.05 {
		if a.Power(tt) != b.Power(tt) {
			t.Fatalf("same seed diverged at t=%g", tt)
		}
	}
	// Both states visited over a long run.
	sawOn, sawOff := false, false
	for tt := 0.0; tt < 50; tt += 0.1 {
		if a.Power(tt) == 1 {
			sawOn = true
		} else {
			sawOff = true
		}
	}
	if !sawOn || !sawOff {
		t.Error("Markov chain never switched state")
	}
	if (&MarkovSource{OffPower: 7}).Power(1) != 7 {
		t.Error("zero slot length should return OffPower")
	}
}

func TestTraceSource(t *testing.T) {
	ts := &TraceSource{Times: []float64{0, 1, 2}, Values: []float64{0, 10, 0}}
	if got := ts.Voltage(0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("interp = %g, want 5", got)
	}
	if got := ts.Voltage(-1); got != 0 {
		t.Errorf("before start = %g, want 0 (clamp)", got)
	}
	if got := ts.Voltage(5); got != 0 {
		t.Errorf("after end = %g, want 0 (clamp)", got)
	}
	if (&TraceSource{}).Power(1) != 0 {
		t.Error("empty trace should be 0")
	}
}

func TestTraceSourceLoop(t *testing.T) {
	ts := &TraceSource{Times: []float64{0, 1, 2}, Values: []float64{0, 10, 0}, Loop: true}
	if got := ts.Voltage(2.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("looped interp = %g, want 5", got)
	}
	if got := ts.Voltage(4.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("second loop = %g, want 5", got)
	}
}

func TestHashUnitRange(t *testing.T) {
	f := func(n int64) bool {
		u := hashUnit(n)
		return u >= -0.5 && u < 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadTraceCSV(t *testing.T) {
	csvData := "t,vout(V)\n0,0\n1,10\n2,0\n"
	ts, err := LoadTraceCSV(strings.NewReader(csvData), 1, false, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.Voltage(0.5); math.Abs(got-5) > 1e-12 {
		t.Errorf("loaded trace interp = %g, want 5", got)
	}
	if ts.SeriesResistance() != 50 {
		t.Error("Rs not carried through")
	}
	// Headerless numeric data also loads.
	ts2, err := LoadTraceCSV(strings.NewReader("0,1\n1,2\n"), 1, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ts2.Voltage(1.5) != 1.5 { // loops back to interp of 0..1
		t.Errorf("looped headerless trace = %g", ts2.Voltage(1.5))
	}
}

func TestLoadTraceCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		data string
		col  int
	}{
		{"bad column", "t,v\n0,1\n", 0},
		{"short row", "t,v\n0\n", 1},
		{"bad time", "t,v\nxx,1\n", 1},
		{"bad value", "t,v\n0,yy\n", 1},
		{"time backwards", "t,v\n1,1\n0,2\n", 1},
		{"empty", "t,v\n", 1},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadTraceCSV(strings.NewReader(tt.data), tt.col, false, 0); err == nil {
				t.Error("expected error")
			}
		})
	}
}

// Edge cases the trace-driven models lean on: header detection, ragged
// rows, degenerate sample counts, and loop wraparound.
func TestLoadTraceCSVEdgeCases(t *testing.T) {
	t.Run("numeric-looking header is data", func(t *testing.T) {
		// A header whose first cell parses as a number is indistinguishable
		// from data, so the loader reads it as data — and the non-numeric
		// value cell fails, naming line 1.
		_, err := LoadTraceCSV(strings.NewReader("0,vcc(V)\n1,2\n"), 1, false, 0)
		if err == nil || !strings.Contains(err.Error(), "line 1") {
			t.Errorf("numeric-first-cell header: got %v, want a line 1 error", err)
		}
	})
	t.Run("trailing blank fields", func(t *testing.T) {
		ts, err := LoadTraceCSV(strings.NewReader("t,v\n0,1,\n1,3,\n"), 1, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ts.Times) != 2 || ts.Values[1] != 3 {
			t.Errorf("rows with trailing blank fields: got %d samples %v", len(ts.Times), ts.Values)
		}
	})
	t.Run("single sample", func(t *testing.T) {
		ts, err := LoadTraceCSV(strings.NewReader("t,v\n2,5\n"), 1, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, at := range []float64{-1, 0, 2, 100} {
			if got := ts.Voltage(at); got != 5 {
				t.Errorf("single-sample trace at t=%g = %g, want 5", at, got)
			}
		}
		// Looping a single sample must not divide by the zero span.
		lts, err := LoadTraceCSV(strings.NewReader("2,5\n"), 1, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := lts.Power(7); got != 5 {
			t.Errorf("looped single-sample trace = %g, want 5", got)
		}
	})
	t.Run("loop wraparound", func(t *testing.T) {
		ts, err := LoadTraceCSV(strings.NewReader("t,v\n0,0\n1,10\n2,0\n"), 1, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Span is 2 s: t=2.5 wraps to 0.5 (interp 5), t=-0.5 wraps to 1.5
		// (interp 5), t=4 wraps to 0 exactly.
		for _, tc := range []struct{ at, want float64 }{
			{2.5, 5}, {-0.5, 5}, {4, 0}, {0.5, 5},
		} {
			if got := ts.Voltage(tc.at); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("looped trace at t=%g = %g, want %g", tc.at, got, tc.want)
			}
		}
	})
}

// Regression: errors used to number records, not file lines, so a CSV
// with blank lines (which encoding/csv silently skips) pointed the user
// at the wrong row of their dataset.
func TestLoadTraceCSVErrorNamesFileLine(t *testing.T) {
	// The bad value sits on file line 5; record counting would call it
	// row 2 (header) or 3 (with it counted).
	data := "t,v\n\n\n0,1\n1,oops\n"
	_, err := LoadTraceCSV(strings.NewReader(data), 1, false, 0)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 5") {
		t.Errorf("error %q should name file line 5", err)
	}
	// Same for the backwards-time check.
	_, err = LoadTraceCSV(strings.NewReader("t,v\n1,1\n\n0,2\n"), 1, false, 0)
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Errorf("backwards-time error %v should name file line 4", err)
	}
}
