package source

import "math"

// This file provides precomputed samplers: plain funcs that evaluate a
// source's waveform without the per-call interface dispatch of
// VoltageSource.Voltage / PowerSource.Power. The simulation hot loop
// samples the supply once per 5 µs step, so the dispatch (and, for
// wrapped sources like Rectified(SignalGenerator), the dispatch chain)
// is paid millions of times per simulated second; binding it away is
// one of the lab's core optimizations.
//
// Correctness contract: a sampler returns bit-identical values to the
// method it replaces — each closure body is the same arithmetic in the
// same evaluation order, with only loop-invariant subexpressions (whose
// hoisting cannot change the result under IEEE-754 left-to-right
// evaluation) precomputed. TestSamplersMatchMethods pins this for every
// registered source and combinator.
//
// Samplers capture source parameters at bind time: mutate a source's
// fields mid-run and the sampler (unlike the method) will not see it.
// Nothing in this repository mutates a source during a run — sources
// are documented as pure functions of time.

// VoltageFn returns a sampler equivalent to vs.Voltage. Known concrete
// types get composed closures; anything else falls back to the bound
// interface method.
func VoltageFn(vs VoltageSource) func(t float64) float64 {
	switch s := vs.(type) {
	case *SignalGenerator:
		if s.Frequency == 0 {
			dc := s.Amplitude + s.Offset
			return func(float64) float64 { return dc }
		}
		// 2*math.Pi*s.Frequency*t evaluates as ((2π)·f)·t, so hoisting
		// w = (2π)·f leaves w·t bit-identical.
		w := 2 * math.Pi * s.Frequency
		off, amp, phase := s.Offset, s.Amplitude, s.Phase
		return func(t float64) float64 {
			return off + amp*math.Sin(w*t+phase)
		}
	case *ConstantVoltage:
		v := s.V
		return func(float64) float64 { return v }
	case *SquareWaveVoltage:
		period := s.OnTime + s.OffTime
		if period <= 0 {
			high := s.High
			return func(float64) float64 { return high }
		}
		high, on := s.High, s.OnTime
		return func(t float64) float64 {
			phase := math.Mod(t, period)
			if phase < 0 {
				phase += period
			}
			if phase < on {
				return high
			}
			return 0
		}
	case *Rectified:
		if gen, ok := s.Source.(*SignalGenerator); ok && !s.FullWave &&
			gen.Frequency > 0 && gen.Amplitude > 0 {
			// Fused half-wave rectified sine — the Fig. 7 supply, sampled
			// once per step for the whole run, where math.Sin dominates
			// the sampler cost. Roughly half of those calls land in the
			// negative lobe, where the rectifier clamps the output to
			// exactly 0 no matter what sin evaluates to; those calls can
			// skip the sin entirely, provided the clamp is *provable*
			// from the reduced phase alone.
			//
			// Proof obligation: for reduced phase θ ∈ [π+m, 2π−m],
			// sin(θ) ≤ −sin(m), so off + amp·sin − drop ≤
			// off − drop − amp·sin(m) ≤ 0 whenever off − drop ≤
			// amp·sin(m) (checked once at bind time). The cheap
			// floor-based reduction θ = x − ⌊x/2π⌋·2π carries rounding
			// error ~ulp(x) plus ~2.4e-16/period of drift against
			// math.Sin's internal reduction by the real π — the margin m
			// dwarfs both for any plausible run length (math.Mod would be
			// exact but costs several times a sin on common hardware).
			// Everything outside the provable window evaluates the
			// original expression on the unreduced argument,
			// bit-identical to the method chain.
			const m = 0.01
			w := 2 * math.Pi * gen.Frequency
			off, amp, phase := gen.Offset, gen.Amplitude, gen.Phase
			drop := s.DiodeV
			if off-drop <= amp*math.Sin(m) {
				const twoPi = 2 * math.Pi
				const inv2Pi = 1 / twoPi
				lo, hi := math.Pi+m, twoPi-m
				return func(t float64) float64 {
					x := w*t + phase
					if th := x - math.Floor(x*inv2Pi)*twoPi; th >= lo && th <= hi {
						return 0
					}
					v := off + amp*math.Sin(x) - drop
					if v < 0 {
						return 0
					}
					return v
				}
			}
		}
		inner := VoltageFn(s.Source)
		if s.FullWave {
			drop := 2 * s.DiodeV
			return func(t float64) float64 {
				v := math.Abs(inner(t)) - drop
				if v < 0 {
					return 0
				}
				return v
			}
		}
		drop := s.DiodeV
		return func(t float64) float64 {
			v := inner(t) - drop
			if v < 0 {
				return 0
			}
			return v
		}
	case *ScaledVoltage:
		inner := VoltageFn(s.Source)
		gain := s.Gain
		return func(t float64) float64 { return gain * inner(t) }
	case *GatedVoltage:
		inner := VoltageFn(s.Source)
		windows, invert := s.Windows, s.Invert
		return func(t float64) float64 {
			in := false
			for _, w := range windows {
				if t >= w[0] && t < w[1] {
					in = true
					break
				}
			}
			if in != invert {
				return inner(t)
			}
			return 0
		}
	case *WindTurbine:
		// Envelope branches on gust phase; binding the method skips only
		// the itab dispatch, which is all there is to save here.
		return s.Voltage
	case *TraceSource:
		return s.Voltage
	default:
		return vs.Voltage
	}
}

// PowerFn returns a sampler equivalent to ps.Power — the PowerSource
// counterpart of VoltageFn.
func PowerFn(ps PowerSource) func(t float64) float64 {
	switch s := ps.(type) {
	case *ConstantPower:
		p := s.P
		return func(float64) float64 { return p }
	case *ScaledPower:
		inner := PowerFn(s.Source)
		gain := s.Gain
		return func(t float64) float64 { return gain * inner(t) }
	case *SumPower:
		inners := make([]func(float64) float64, len(s.Sources))
		for i, src := range s.Sources {
			inners[i] = PowerFn(src)
		}
		return func(t float64) float64 {
			var p float64
			for _, fn := range inners {
				p += fn(t)
			}
			return p
		}
	case *Photovoltaic:
		return s.Power
	case *RFBurst:
		return s.Power
	case *Kinetic:
		return s.Power
	case *MarkovSource:
		// Stateful (memoised Markov chain): the bound method shares the
		// memo with every other caller, exactly like interface dispatch.
		return s.Power
	case *TraceSource:
		return s.Power
	default:
		return ps.Power
	}
}
