package source

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadTraceCSV reads a recorded harvester waveform from CSV into a
// TraceSource. The expected shape is a header row followed by rows whose
// first column is the timestamp in seconds and whose valueCol-th column
// (0-based, so usually 1) is the value — the format written by
// trace.Recorder.WriteCSV and typical of published harvesting datasets
// (the paper's experimental data is published at DOI
// 10.5258/SOTON/404058 in this shape).
//
// The first record is treated as the header only when its first cell is
// not numeric-looking; a file whose header starts with a number ("0,v")
// is therefore read as data from line 1 — name the time column.
//
// Rows must be in non-decreasing time order. Blank lines are skipped; a
// malformed row aborts with an error naming its line in the file (blank
// and skipped lines counted), so the message points at the actual
// offending line of a hand-edited dataset.
func LoadTraceCSV(r io.Reader, valueCol int, loop bool, rs float64) (*TraceSource, error) {
	if valueCol < 1 {
		return nil, fmt.Errorf("source: value column must be ≥ 1 (column 0 is time)")
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	ts := &TraceSource{Loop: loop, Rs: rs}
	first := true
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("source: reading trace CSV: %w", err)
		}
		// FieldPos reports the position of the record just returned, so
		// error messages can name the file line even when the reader
		// silently skipped blank lines before it.
		line, _ := cr.FieldPos(0)
		if first {
			first = false
			if !looksNumeric(row[0]) {
				continue // header
			}
		}
		if len(row) == 1 && strings.TrimSpace(row[0]) == "" {
			continue
		}
		if len(row) <= valueCol {
			return nil, fmt.Errorf("source: line %d has %d columns, need ≥ %d", line, len(row), valueCol+1)
		}
		t, err := strconv.ParseFloat(strings.TrimSpace(row[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("source: line %d: bad timestamp %q", line, row[0])
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(row[valueCol]), 64)
		if err != nil {
			return nil, fmt.Errorf("source: line %d: bad value %q", line, row[valueCol])
		}
		if n := len(ts.Times); n > 0 && t < ts.Times[n-1] {
			return nil, fmt.Errorf("source: line %d: time %g goes backwards", line, t)
		}
		ts.Times = append(ts.Times, t)
		ts.Values = append(ts.Values, v)
	}
	if len(ts.Times) == 0 {
		return nil, fmt.Errorf("source: trace CSV contains no samples")
	}
	return ts, nil
}

// looksNumeric reports whether s parses as a float.
func looksNumeric(s string) bool {
	_, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return err == nil
}
