package source

import "math"

// Rectified wraps a VoltageSource with an ideal-diode rectifier: half-wave
// (negative half-cycles clipped to zero) or full-wave (absolute value),
// minus a forward diode drop. This is the "half-wave rectified sine-wave
// voltage" supply of the paper's Figs. 7 and 8.
type Rectified struct {
	Source   VoltageSource
	FullWave bool
	DiodeV   float64 // forward drop per conducting diode, volts
}

// HalfWave returns a half-wave rectified view of src with the given diode
// drop.
func HalfWave(src VoltageSource, diodeV float64) *Rectified {
	return &Rectified{Source: src, DiodeV: diodeV}
}

// FullWaveRect returns a full-wave (bridge) rectified view of src. A bridge
// has two conducting diodes in the path, so the drop is applied twice.
func FullWaveRect(src VoltageSource, diodeV float64) *Rectified {
	return &Rectified{Source: src, FullWave: true, DiodeV: diodeV}
}

// Voltage implements VoltageSource.
func (r *Rectified) Voltage(t float64) float64 {
	v := r.Source.Voltage(t)
	if r.FullWave {
		v = math.Abs(v) - 2*r.DiodeV
	} else {
		v -= r.DiodeV
	}
	if v < 0 {
		return 0
	}
	return v
}

// SeriesResistance implements VoltageSource, passing through the wrapped
// source's resistance.
func (r *Rectified) SeriesResistance() float64 { return r.Source.SeriesResistance() }

// ScaledVoltage scales a VoltageSource's output by Gain (e.g. a transformer
// or attenuator) and its resistance by Gain² (impedance transformation).
type ScaledVoltage struct {
	Source VoltageSource
	Gain   float64
}

// Voltage implements VoltageSource.
func (s *ScaledVoltage) Voltage(t float64) float64 { return s.Gain * s.Source.Voltage(t) }

// SeriesResistance implements VoltageSource.
func (s *ScaledVoltage) SeriesResistance() float64 {
	return s.Gain * s.Gain * s.Source.SeriesResistance()
}

// ScaledPower scales a PowerSource by a constant efficiency factor.
type ScaledPower struct {
	Source PowerSource
	Gain   float64
}

// Power implements PowerSource.
func (s *ScaledPower) Power(t float64) float64 { return s.Gain * s.Source.Power(t) }

// SumPower superimposes several power sources (multi-source harvesting).
type SumPower struct {
	Sources []PowerSource
}

// Power implements PowerSource.
func (s *SumPower) Power(t float64) float64 {
	var p float64
	for _, src := range s.Sources {
		p += src.Power(t)
	}
	return p
}

// ConstantPower is a fixed available-power supply (the "battery/mains"
// reference point of the taxonomy: virtually unlimited power until
// exhausted).
type ConstantPower struct {
	P float64
}

// Power implements PowerSource.
func (c *ConstantPower) Power(float64) float64 { return c.P }

// ConstantVoltage is a fixed open-circuit voltage with series resistance —
// a bench supply or an idealised battery terminal.
type ConstantVoltage struct {
	V  float64
	Rs float64
}

// Voltage implements VoltageSource.
func (c *ConstantVoltage) Voltage(float64) float64 { return c.V }

// SeriesResistance implements VoltageSource.
func (c *ConstantVoltage) SeriesResistance() float64 { return c.Rs }

// Plateau implements PlateauVoltage: the output is one endless plateau.
func (c *ConstantVoltage) Plateau(float64) (float64, float64, bool) {
	return c.V, math.Inf(1), true
}

// GatedVoltage turns a VoltageSource on and off according to a schedule of
// [start, end) windows — used to model supply outages at controlled times
// (e.g. the eq. 5 crossover sweep drives outages at a set frequency).
type GatedVoltage struct {
	Source  VoltageSource
	Windows [][2]float64 // on-intervals; outside all windows output is 0
	Invert  bool         // if true, windows are outages instead
}

// Voltage implements VoltageSource.
func (g *GatedVoltage) Voltage(t float64) float64 {
	in := false
	for _, w := range g.Windows {
		if t >= w[0] && t < w[1] {
			in = true
			break
		}
	}
	if in != g.Invert {
		return g.Source.Voltage(t)
	}
	return 0
}

// SeriesResistance implements VoltageSource.
func (g *GatedVoltage) SeriesResistance() float64 { return g.Source.SeriesResistance() }

// Plateau implements PlateauVoltage when the wrapped source does: the
// constant stretch is the wrapped source's plateau intersected with the
// window edges (which Voltage compares against t directly, so they bound
// the stretch exactly).
func (g *GatedVoltage) Plateau(t float64) (float64, float64, bool) {
	pv, ok := g.Source.(PlateauVoltage)
	if !ok {
		return 0, 0, false
	}
	in := false
	until := math.Inf(1)
	for _, w := range g.Windows {
		switch {
		case t >= w[0] && t < w[1]:
			in = true
			if w[1] < until {
				until = w[1]
			}
		case t < w[0]:
			if w[0] < until {
				until = w[0]
			}
		}
	}
	if in == g.Invert { // gated off: a zero plateau up to the next edge
		return 0, until, true
	}
	v, u, ok := pv.Plateau(t)
	if !ok {
		return 0, 0, false
	}
	if u < until {
		until = u
	}
	return v, until, true
}

// SquareWaveVoltage produces a square supply alternating between High for
// OnTime seconds and 0 for OffTime seconds — the canonical controlled
// intermittent supply for runtime comparisons (outage frequency
// = 1/(OnTime+OffTime)).
type SquareWaveVoltage struct {
	High    float64
	OnTime  float64
	OffTime float64
	Rs      float64
}

// Voltage implements VoltageSource.
func (s *SquareWaveVoltage) Voltage(t float64) float64 {
	period := s.OnTime + s.OffTime
	if period <= 0 {
		return s.High
	}
	phase := math.Mod(t, period)
	if phase < 0 {
		phase += period
	}
	if phase < s.OnTime {
		return s.High
	}
	return 0
}

// SeriesResistance implements VoltageSource.
func (s *SquareWaveVoltage) SeriesResistance() float64 { return s.Rs }

// Plateau implements PlateauVoltage: the half-cycle containing t. Voltage
// computes the phase with math.Mod, which is exact, so every instant of
// the half-cycle returns exactly High (or exactly 0); the boundary in
// until carries the rounding of the additions that rebuild it from the
// phase, which the interface's safety-margin requirement covers.
func (s *SquareWaveVoltage) Plateau(t float64) (float64, float64, bool) {
	period := s.OnTime + s.OffTime
	if period <= 0 {
		return s.High, math.Inf(1), true
	}
	phase := math.Mod(t, period)
	if phase < 0 {
		phase += period
	}
	if phase < s.OnTime {
		return s.High, t + (s.OnTime - phase), true
	}
	return 0, t + (period - phase), true
}
