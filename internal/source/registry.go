// Registry of constructor-by-name supplies: every builtin source is
// registered under a stable name with typed, documented parameters, so
// scenario specs (internal/scenario) and the ehsim CLI can build any
// supply from data. Defaults reproduce the repo's canonical testbeds —
// "square" is the 4 ms-on/150 ms-off intermittent supply, "wind" the
// rectified Fig. 8 turbine gust — so a spec naming a source with no
// params gets the same waveform the hand-written harnesses use.
package source

import (
	"fmt"

	"repro/internal/registry"
)

// Built is a constructed supply: exactly one of V and P is non-nil,
// matching lab.Setup's VSource/PSource split.
type Built struct {
	V VoltageSource
	P PowerSource
}

// Entry describes one registered source kind.
type Entry struct {
	Desc   string
	Power  bool // true when Build yields a PowerSource
	Params []registry.ParamDoc
	Build  func(p registry.Params) (Built, error)
}

var sources = registry.New[Entry]("source")

// Register adds a source constructor under name (panics on duplicates).
// External packages may register their own kinds before parsing specs.
func Register(name string, e Entry) { sources.Register(name, e) }

// Names returns every registered source name, sorted.
func Names() []string { return sources.Names() }

// Lookup returns the entry for name, or an error listing the known names.
func Lookup(name string) (Entry, error) { return sources.Get(name) }

// Build constructs the named source: params are validated against the
// entry's docs (unknown keys are errors) and merged over defaults.
func Build(name string, p registry.Params) (Built, error) {
	e, err := sources.Get(name)
	if err != nil {
		return Built{}, err
	}
	full, err := registry.Resolve("source", name, e.Params, p)
	if err != nil {
		return Built{}, err
	}
	b, err := e.Build(full)
	if err != nil {
		return Built{}, fmt.Errorf("source %q: %w", name, err)
	}
	return b, nil
}

func init() {
	Register("dc", Entry{
		Desc: "constant-voltage bench supply",
		Params: []registry.ParamDoc{
			{Key: "v", Default: 3.3, Desc: "open-circuit voltage (V)"},
			{Key: "rs", Default: 100, Desc: "series resistance (Ω)"},
		},
		Build: func(p registry.Params) (Built, error) {
			return Built{V: &ConstantVoltage{V: p["v"], Rs: p["rs"]}}, nil
		},
	})
	Register("solar", Entry{
		Desc: "indoor PV behind a boost converter as a soft Thevenin source",
		Params: []registry.ParamDoc{
			{Key: "v", Default: 3.0, Desc: "converter output voltage (V)"},
			{Key: "rs", Default: 3000, Desc: "effective source resistance (Ω)"},
		},
		Build: func(p registry.Params) (Built, error) {
			return Built{V: &ConstantVoltage{V: p["v"], Rs: p["rs"]}}, nil
		},
	})
	Register("square", Entry{
		Desc: "square-wave intermittent supply (controlled outages)",
		Params: []registry.ParamDoc{
			{Key: "high", Default: 3.3, Desc: "on-phase voltage (V)"},
			{Key: "ontime", Default: 0.004, Desc: "on-phase length (s)"},
			{Key: "offtime", Default: 0.150, Desc: "outage length (s)"},
			{Key: "rs", Default: 100, Desc: "series resistance (Ω)"},
		},
		Build: func(p registry.Params) (Built, error) {
			return Built{V: &SquareWaveVoltage{
				High: p["high"], OnTime: p["ontime"], OffTime: p["offtime"], Rs: p["rs"],
			}}, nil
		},
	})
	Register("sine", Entry{
		Desc: "laboratory signal generator (sine, DC at freq=0)",
		Params: []registry.ParamDoc{
			{Key: "amplitude", Default: 4.5, Desc: "peak amplitude (V)"},
			{Key: "freq", Default: 20, Desc: "frequency (Hz)"},
			{Key: "offset", Default: 0, Desc: "DC offset (V)"},
			{Key: "phase", Default: 0, Desc: "phase (rad)"},
			{Key: "rs", Default: 100, Desc: "series resistance (Ω)"},
		},
		Build: func(p registry.Params) (Built, error) {
			return Built{V: &SignalGenerator{
				Amplitude: p["amplitude"], Frequency: p["freq"],
				Offset: p["offset"], Phase: p["phase"], Rs: p["rs"],
			}}, nil
		},
	})
	Register("rectified-sine", Entry{
		Desc: "half-wave rectified signal generator (the Fig. 7 supply)",
		Params: []registry.ParamDoc{
			{Key: "amplitude", Default: 4.5, Desc: "peak amplitude (V)"},
			{Key: "freq", Default: 20, Desc: "frequency (Hz)"},
			{Key: "offset", Default: 0, Desc: "DC offset (V)"},
			{Key: "phase", Default: 0, Desc: "phase (rad)"},
			{Key: "rs", Default: 100, Desc: "series resistance (Ω)"},
			{Key: "diodev", Default: 0.2, Desc: "rectifier diode drop (V)"},
		},
		Build: func(p registry.Params) (Built, error) {
			gen := &SignalGenerator{
				Amplitude: p["amplitude"], Frequency: p["freq"],
				Offset: p["offset"], Phase: p["phase"], Rs: p["rs"],
			}
			return Built{V: HalfWave(gen, p["diodev"])}, nil
		},
	})
	Register("wind", Entry{
		Desc: "half-wave rectified micro wind turbine gust (the Fig. 8 supply)",
		Params: []registry.ParamDoc{
			{Key: "peak", Default: 4.5, Desc: "gust envelope peak (V)"},
			{Key: "acfreq", Default: 8, Desc: "electrical AC frequency (Hz)"},
			{Key: "guststart", Default: 0.3, Desc: "gust onset (s)"},
			{Key: "gustrise", Default: 0.5, Desc: "envelope rise time (s)"},
			{Key: "gusthold", Default: 2.2, Desc: "time at full strength (s)"},
			{Key: "gustfall", Default: 0.8, Desc: "envelope decay constant (s)"},
			{Key: "rs", Default: 150, Desc: "series resistance (Ω)"},
			{Key: "diodev", Default: 0.2, Desc: "rectifier diode drop (V)"},
		},
		Build: func(p registry.Params) (Built, error) {
			t := &WindTurbine{
				PeakVoltage: p["peak"], ACFrequency: p["acfreq"],
				GustStart: p["guststart"], GustRise: p["gustrise"],
				GustHold: p["gusthold"], GustFall: p["gustfall"], Rs: p["rs"],
			}
			return Built{V: HalfWave(t, p["diodev"])}, nil
		},
	})
	Register("rf", Entry{
		Desc: "RF illumination: periodic reader bursts gating a DC supply",
		Params: []registry.ParamDoc{
			{Key: "v", Default: 3.3, Desc: "voltage during a burst (V)"},
			{Key: "rs", Default: 400, Desc: "series resistance (Ω)"},
			{Key: "period", Default: 1.0, Desc: "seconds between burst starts"},
			{Key: "on", Default: 0.3, Desc: "burst length (s)"},
			{Key: "horizon", Default: 3600, Desc: "seconds of bursts to schedule"},
		},
		Build: func(p registry.Params) (Built, error) {
			period, horizon := p["period"], p["horizon"]
			if period <= 0 {
				return Built{}, fmt.Errorf("period must be positive (got %g)", period)
			}
			if n := horizon / period; n > 10e6 {
				return Built{}, fmt.Errorf("horizon/period schedules %.0f bursts (max 10M)", n)
			}
			gated := &GatedVoltage{Source: &ConstantVoltage{V: p["v"], Rs: p["rs"]}}
			for t := 0.0; t < horizon; t += period {
				gated.Windows = append(gated.Windows, [2]float64{t, t + p["on"]})
			}
			return Built{V: gated}, nil
		},
	})
	Register("pv", Entry{
		Desc:  "indoor photovoltaic harvested power over the day (Fig. 1b)",
		Power: true,
		Params: []registry.ParamDoc{
			{Key: "basecurrent", Default: 280e-6, Desc: "overnight harvested current (A)"},
			{Key: "peakcurrent", Default: 430e-6, Desc: "midday harvested current (A)"},
			{Key: "opvoltage", Default: 2.5, Desc: "operating voltage (V)"},
			{Key: "dawnhour", Default: 7, Desc: "local hour harvest rises"},
			{Key: "duskhour", Default: 19, Desc: "local hour harvest decays"},
			{Key: "edgehours", Default: 1.5, Desc: "dawn/dusk transition width (h)"},
			{Key: "flicker", Default: 0.02, Desc: "relative ripple amplitude"},
		},
		Build: func(p registry.Params) (Built, error) {
			return Built{P: &Photovoltaic{
				BaseCurrent: p["basecurrent"], PeakCurrent: p["peakcurrent"],
				OpVoltage: p["opvoltage"], DawnHour: p["dawnhour"],
				DuskHour: p["duskhour"], EdgeHours: p["edgehours"],
				Flicker: p["flicker"],
			}}, nil
		},
	})
	Register("const-power", Entry{
		Desc:  "fixed available-power supply (MPPT output / mains reference)",
		Power: true,
		Params: []registry.ParamDoc{
			{Key: "p", Default: 1e-3, Desc: "available power (W)"},
		},
		Build: func(p registry.Params) (Built, error) {
			return Built{P: &ConstantPower{P: p["p"]}}, nil
		},
	})
}
