package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/registry"
	"repro/internal/sweep"
	"repro/internal/taskburst"
	"repro/internal/trace"
	"repro/internal/units"
)

func init() { RegisterModel("taskburst", taskburstModel{}) }

// taskburstModel is the paper's §II.B task-based transient system:
// charge a small capacitor from the harvester, fire one atomic task when
// the stored energy above the operating floor covers it, repeat —
// WISPCam's photo-per-charge, Monjolo's ping-per-charge, Gomez et al.'s
// burst scaling. The fire threshold V_fire is sized from the task
// energy, the storage capacitance, and the converter efficiency (the
// eq. 4 sizing), so the spec states the physics and the model derives
// the thresholds.
type taskburstModel struct{}

func (taskburstModel) Desc() string {
	return "charge-and-fire task-based transient node: one atomic task per capacitor charge (WISPCam/Monjolo)"
}

func (taskburstModel) Params() []registry.ParamDoc {
	return []registry.ParamDoc{
		{Key: "taskenergy", Default: 1e-3, Desc: "energy per atomic task (J); default is the Monjolo ping"},
		{Key: "vfloor", Default: 1.8, Desc: "minimum useful operating voltage (V)"},
		{Key: "vmax", Default: 5.5, Desc: "capacitor voltage rating (V)"},
		{Key: "eta", Default: 0.7, Desc: "usable fraction of stored energy (converter efficiency)"},
	}
}

func (taskburstModel) Metrics() []MetricDoc {
	return []MetricDoc{
		{Key: "events", Unit: "count", Desc: "atomic tasks fired"},
		{Key: "rate", Unit: "1/s", Desc: "mean fire rate over the run"},
		{Key: "v_fire", Unit: "V", Desc: "derived eq. 4 fire threshold"},
		{Key: "v_floor", Unit: "V", Desc: "minimum useful operating voltage"},
		{Key: "first_fire", Unit: "s", Desc: "time of the first fire (absent when the node never fired)"},
		{Key: "energy_drawn", Unit: "J", Desc: "stored energy drawn by fired tasks (eta included)"},
	}
}

// taskburstMetrics extracts the structured objectives from one
// task-burst case. first_fire is omitted when the node never fired.
func taskburstMetrics(n *taskburst.Node, p registry.Params, duration float64) map[string]float64 {
	m := map[string]float64{
		"events":  float64(len(n.Events)),
		"rate":    n.Rate(0, duration),
		"v_fire":  n.VFire,
		"v_floor": n.VFloor,
	}
	// Validate pins eta to (0, 1], but the metrics contract is omit, not
	// trust: a zero eta must drop the key rather than store +Inf.
	if drawn := float64(len(n.Events)) * p["taskenergy"] / p["eta"]; !math.IsNaN(drawn) && !math.IsInf(drawn, 0) {
		m["energy_drawn"] = drawn
	}
	if len(n.Events) > 0 {
		m["first_fire"] = n.Events[0]
	}
	return m
}

// taskburstDefaultDt is the integration step when the spec leaves dt
// unset: charge curves evolve over milliseconds-to-seconds, so 100 µs
// resolves them without lab-engine step counts.
const taskburstDefaultDt = 1e-4

// Validate implements Model.
func (m taskburstModel) Validate(s *Spec) error {
	if err := s.rejectLabFields(); err != nil {
		return err
	}
	if s.Storage.C <= 0 {
		return s.errf("storage.c must be positive (got %g F)", float64(s.Storage.C))
	}
	p, err := s.modelParams(m)
	if err != nil {
		return s.errf("%w", err)
	}
	if p["taskenergy"] <= 0 {
		return s.errf("model param taskenergy must be positive (got %g J)", p["taskenergy"])
	}
	if p["eta"] <= 0 || p["eta"] > 1 {
		return s.errf("model param eta must be in (0, 1] (got %g)", p["eta"])
	}
	if p["vfloor"] < 0 || p["vmax"] <= p["vfloor"] {
		return s.errf("model params need 0 ≤ vfloor < vmax (got vfloor=%g, vmax=%g)", p["vfloor"], p["vmax"])
	}
	if v0 := float64(s.Storage.V0); v0 < 0 || v0 > p["vmax"] {
		return s.errf("storage.v0 must be within the capacitor rating [0, %g V] (got %g V)", p["vmax"], v0)
	}
	// The eq. 4 sizing must fit: building the node resolves the power
	// source and checks that the task energy fits in the capacitor
	// below its voltage rating.
	if _, err := m.node(s, p); err != nil {
		return err
	}
	return nil
}

// node sizes the task-burst node from the spec (the eq. 4 step).
func (taskburstModel) node(s *Spec, p registry.Params) (*taskburst.Node, error) {
	ps, err := s.buildPowerSource()
	if err != nil {
		return nil, err
	}
	task := taskburst.Task{Name: "task", EnergyJ: p["taskenergy"]}
	n, err := taskburst.NewNode(float64(s.Storage.C), task, ps, p["vfloor"], p["vmax"], p["eta"])
	if err != nil {
		return nil, s.errf("%w", err)
	}
	n.Cap.LeakR = float64(s.Storage.LeakR)
	n.Cap.V = float64(s.Storage.V0)
	return n, nil
}

// Engine implements Model.
func (m taskburstModel) Engine(sp *Spec, opts RunOptions, checkpoint []byte) (Engine, error) {
	if sp.HasSweep() {
		return newTableSweepEngine(sp, opts,
			[]string{"events", "rate", "v-fire", "first-fire"},
			func(cs *Spec) ([]string, map[string]float64, float64, error) {
				n, err := m.simulate(cs, nil, opts.stop)
				if err != nil {
					return nil, nil, 0, err
				}
				p, _ := cs.modelParams(m) // validated in simulate
				return []string{
					fmt.Sprintf("%d", len(n.Events)),
					fmt.Sprintf("%.3f/s", n.Rate(0, float64(cs.Duration))),
					fmt.Sprintf("%.2fV", n.VFire),
					firstFireLabel(n),
				}, taskburstMetrics(n, p, float64(cs.Duration)), float64(cs.Duration), nil
			}, checkpoint)
	}

	p, err := sp.modelParams(m)
	if err != nil {
		return nil, sp.errf("%w", err)
	}
	n, err := m.node(sp, p)
	if err != nil {
		return nil, err
	}
	dt := float64(sp.Dt)
	if dt <= 0 {
		dt = taskburstDefaultDt
	}
	e := &taskburstEngine{
		sp: sp, opts: opts, p: p, n: n,
		sim: taskburst.NewSim(n, float64(sp.Duration), dt),
	}

	var restored *taskburst.SimState
	var recBlob []byte
	if checkpoint != nil {
		var st taskburstState
		if err := json.Unmarshal(checkpoint, &st); err != nil {
			return nil, sp.errf("checkpoint: %w", err)
		}
		restored, recBlob = st.Sim, st.Trace
	}
	if restored != nil {
		// The checkpoint, not the resume options, decides whether the
		// run records — see eneutralEngine.
		if recBlob != nil {
			rec, err := trace.DecodeRecorder(recBlob)
			if err != nil {
				return nil, sp.errf("checkpoint trace: %w", err)
			}
			e.rec = rec
		}
	} else if opts.Trace {
		e.rec = trace.NewRecorder()
		e.rec.SetInterval(opts.interval())
	}
	if e.rec != nil {
		vcapCh := e.rec.Channel("vcap", "V")
		eventsCh := e.rec.Channel("events", "")
		// The cumulative-fires counter resumes from the restored firing
		// log, so the events channel continues its count seamlessly.
		fires := 0
		if restored != nil {
			fires = len(restored.Events)
		}
		n.Observe = func(t, v float64, fired bool) {
			if fired {
				fires++
			}
			vcapCh.Record(t, v)
			eventsCh.Record(t, float64(fires))
		}
	}
	if restored != nil {
		e.sim.Restore(*restored)
	}
	return e, nil
}

// taskburstEngine steps one sweep-free charge-and-fire run in
// analyticChunk-sized slices of the integration loop.
type taskburstEngine struct {
	sp   *Spec
	opts RunOptions
	p    registry.Params
	n    *taskburst.Node
	sim  *taskburst.Sim
	rec  *trace.Recorder
}

// taskburstState is the serialised checkpoint of a taskburstEngine. A
// nil Sim (an empty restart marker) resumes as a fresh run.
type taskburstState struct {
	Sim   *taskburst.SimState `json:"sim,omitempty"`
	Trace []byte              `json:"trace,omitempty"`
}

// Step implements Engine.
func (e *taskburstEngine) Step() error { e.sim.Step(analyticChunk); return nil }

// Done implements Engine.
func (e *taskburstEngine) Done() bool { return e.sim.Done() }

// Progress implements Engine.
func (e *taskburstEngine) Progress() (int, int) {
	if e.sim.Done() {
		return 1, 1
	}
	return 0, 1
}

// Checkpoint implements Engine.
func (e *taskburstEngine) Checkpoint() ([]byte, error) {
	st := e.sim.State()
	out := taskburstState{Sim: &st}
	if e.rec != nil {
		out.Trace = trace.EncodeRecorder(e.rec)
	}
	return json.Marshal(out)
}

// Report implements Engine.
func (e *taskburstEngine) Report() (*ModelReport, error) {
	if e.opts.Progress != nil {
		e.opts.Progress(1, 1)
	}
	sp, p, n := e.sp, e.p, e.n
	need := p["taskenergy"] * 1.05 / p["eta"]
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "scenario %s: task-burst charge-fire on %s, C=%s, %gs\n",
		sp.Name, sp.Source.Name, units.Format(float64(sp.Storage.C), "F"), float64(sp.Duration))
	fmt.Fprintf(&buf, "  task:               %s per fire (eta %.0f%%, stored need %s)\n",
		units.Format(p["taskenergy"], "J"), p["eta"]*100, units.Format(need, "J"))
	fmt.Fprintf(&buf, "  thresholds:         fire at %.2fV, floor %.2fV (rated %.2fV)\n",
		n.VFire, n.VFloor, n.Cap.MaxV)
	fmt.Fprintf(&buf, "  events:             %d fired, mean rate %.3f/s\n",
		len(n.Events), n.Rate(0, float64(sp.Duration)))
	fmt.Fprintf(&buf, "  first fire:         %s (mean interval %s)\n",
		firstFireLabel(n), meanIntervalLabel(n, float64(sp.Duration)))
	fmt.Fprintf(&buf, "  task energy drawn:  %s\n",
		units.Format(float64(len(n.Events))*p["taskenergy"]/p["eta"], "J"))
	return &ModelReport{
		Text:       buf.String(),
		Cases:      []ModelCase{{Name: sp.Name, Metrics: taskburstMetrics(n, p, float64(sp.Duration))}},
		SimSeconds: float64(sp.Duration),
		Trace:      e.rec,
	}, nil
}

// simulate runs one sweep-free task-burst case, optionally recording
// the capacitor-voltage / cumulative-event trace.
func (m taskburstModel) simulate(sp *Spec, rec *trace.Recorder, cancel <-chan struct{}) (*taskburst.Node, error) {
	p, err := sp.modelParams(m)
	if err != nil {
		return nil, sp.errf("%w", err)
	}
	n, err := m.node(sp, p)
	if err != nil {
		return nil, err
	}
	n.Abort = cancel
	if rec != nil {
		vcapCh := rec.Channel("vcap", "V")
		eventsCh := rec.Channel("events", "")
		fires := 0
		n.Observe = func(t, v float64, fired bool) {
			if fired {
				fires++
			}
			vcapCh.Record(t, v)
			eventsCh.Record(t, float64(fires))
		}
	}
	dt := float64(sp.Dt)
	if dt <= 0 {
		dt = taskburstDefaultDt
	}
	n.Simulate(float64(sp.Duration), dt)
	if n.Aborted {
		return nil, sweep.ErrCanceled
	}
	return n, nil
}

// firstFireLabel renders the first firing time ("never" when the node
// never accumulated a task's worth of energy).
func firstFireLabel(n *taskburst.Node) string {
	if len(n.Events) == 0 {
		return "never"
	}
	return units.FormatSeconds(n.Events[0])
}

// meanIntervalLabel renders the mean inter-fire interval.
func meanIntervalLabel(n *taskburst.Node, duration float64) string {
	if len(n.Events) == 0 {
		return "∞"
	}
	rate := n.Rate(0, duration)
	if rate <= 0 || math.IsInf(rate, 0) {
		return "∞"
	}
	return units.FormatSeconds(1 / rate)
}
