package scenario

import (
	"encoding/json"
	"fmt"

	"repro/internal/sweep"
)

// Engine is the single execution contract every scenario model compiles
// its spec into: a resumable stepper the package driver (RunModel /
// ResumeModel) advances chunk by chunk, checking cancellation and
// checkpoint requests between steps. One Step is a bounded slice of work
// — a wave of sweep cases, a few thousand integration steps — small
// enough that the driver's checks between steps give cancellation and
// checkpointing a tight latency without the models hand-rolling their
// own Observe/Abort/progress plumbing.
type Engine interface {
	// Step runs one bounded chunk of work. A cancellation observed
	// inside a blocking step returns sweep.ErrCanceled; a checkpoint
	// request observed inside a blocking step returns nil without
	// advancing, so the driver re-checks and captures state.
	Step() error

	// Done reports whether the run is complete and Report may be called.
	Done() bool

	// Progress returns the cases completed so far and the total.
	Progress() (done, total int)

	// Checkpoint serialises the engine's state for a later resume via
	// ResumeModel. The returned bytes are model-private; the driver
	// wraps them in a versioned envelope bound to the spec hash.
	Checkpoint() ([]byte, error)

	// Report finalises and renders the run. Call exactly once, after
	// Done.
	Report() (*ModelReport, error)
}

// analyticChunk bounds one Step of the analytic (non-lab) single-run
// engines: enough integration steps to amortise the driver's
// between-step channel checks to noise, few enough that cancellation
// and checkpoint latency stay in the milliseconds.
const analyticChunk = 16384

// CheckpointError is returned by RunModel/ResumeModel when the options'
// Checkpoint channel interrupted the run: State is the complete
// envelope to hand back to ResumeModel later. It deliberately does not
// wrap sweep.ErrCanceled — a checkpointed run is suspended, not failed.
type CheckpointError struct {
	State []byte
}

// Error implements error.
func (e *CheckpointError) Error() string { return "scenario: run checkpointed" }

// checkpointVersion versions the envelope layout; bump on incompatible
// change so stale blobs are rejected instead of misinterpreted.
const checkpointVersion = 1

// checkpointEnvelope binds a model's private checkpoint state to the
// spec that produced it, so a resume against a different (or edited)
// spec fails loudly instead of silently diverging.
type checkpointEnvelope struct {
	V     int    `json:"v"`
	Model string `json:"model"`
	Hash  string `json:"hash"`
	Data  []byte `json:"data,omitempty"`
}

// encodeCheckpoint wraps model-private state in the spec-bound envelope.
func encodeCheckpoint(sp *Spec, state []byte) ([]byte, error) {
	hash, err := sp.Hash()
	if err != nil {
		return nil, err
	}
	return json.Marshal(checkpointEnvelope{
		V:     checkpointVersion,
		Model: sp.ModelName(),
		Hash:  hash,
		Data:  state,
	})
}

// decodeCheckpoint validates the envelope against the spec and returns
// the model-private state.
func decodeCheckpoint(sp *Spec, blob []byte) ([]byte, error) {
	var env checkpointEnvelope
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, fmt.Errorf("scenario: invalid checkpoint: %w", err)
	}
	if env.V != checkpointVersion {
		return nil, fmt.Errorf("scenario: checkpoint version %d (want %d)", env.V, checkpointVersion)
	}
	if env.Model != sp.ModelName() {
		return nil, fmt.Errorf("scenario: checkpoint is for model %q, spec selects %q", env.Model, sp.ModelName())
	}
	hash, err := sp.Hash()
	if err != nil {
		return nil, err
	}
	if env.Hash != hash {
		return nil, fmt.Errorf("scenario: checkpoint spec hash %s does not match %s", env.Hash, hash)
	}
	return env.Data, nil
}

// RunModel executes the spec on its model's engine and renders the
// report — the single entry point every front-end (CLI, daemon,
// explorer) funnels through. Cancellation returns sweep.ErrCanceled; a
// checkpoint request returns *CheckpointError carrying the resumable
// state.
func RunModel(sp *Spec, opts RunOptions) (*ModelReport, error) {
	return drive(sp, opts, nil)
}

// ResumeModel continues a run from a checkpoint produced by a previous
// RunModel/ResumeModel interruption. The envelope must match the spec's
// model and content hash; the resumed run's report and trace are
// byte-identical to an uninterrupted run of the same spec.
func ResumeModel(sp *Spec, checkpoint []byte, opts RunOptions) (*ModelReport, error) {
	data, err := decodeCheckpoint(sp, checkpoint)
	if err != nil {
		return nil, err
	}
	if data == nil {
		// An envelope with no model state (e.g. a restart-from-zero
		// marker stripped by an older encoder) still resumes — as a
		// fresh run — so make the "resume" intent explicit downstream.
		data = []byte("{}")
	}
	return drive(sp, opts, data)
}

// drive is the shared engine loop: build the engine (fresh or from a
// checkpoint), then alternate between the options' control channels and
// Step until done. Cancel wins over Checkpoint when both have fired.
func drive(sp *Spec, opts RunOptions, checkpoint []byte) (*ModelReport, error) {
	m, err := LookupModel(sp.ModelName())
	if err != nil {
		return nil, err
	}
	// stop merges Cancel and Checkpoint into the single abort signal
	// wired into engines that block inside one Step (the lab's
	// cycle-level runs); released when the driver returns.
	driveDone := make(chan struct{})
	defer close(driveDone)
	opts.stop = mergeStop(opts.Cancel, opts.Checkpoint, driveDone)

	eng, err := m.Engine(sp, opts, checkpoint)
	if err != nil {
		return nil, err
	}
	for !eng.Done() {
		if canceled(opts.Cancel) {
			return nil, sweep.ErrCanceled
		}
		if canceled(opts.Checkpoint) {
			state, err := eng.Checkpoint()
			if err != nil {
				return nil, fmt.Errorf("scenario: checkpoint: %w", err)
			}
			env, err := encodeCheckpoint(sp, state)
			if err != nil {
				return nil, err
			}
			return nil, &CheckpointError{State: env}
		}
		if err := eng.Step(); err != nil {
			return nil, err
		}
	}
	return eng.Report()
}

// mergeStop folds the cancel and checkpoint channels into one abort
// signal. With one of them nil the other is returned directly; with
// both set, a goroutine (released via done) closes the merged channel
// on whichever fires first.
func mergeStop(cancel, ckpt, done <-chan struct{}) <-chan struct{} {
	if ckpt == nil {
		return cancel
	}
	if cancel == nil {
		return ckpt
	}
	merged := make(chan struct{})
	go func() {
		defer close(merged)
		select {
		case <-cancel:
		case <-ckpt:
		case <-done:
		}
	}()
	return merged
}

// checkpointRequested reports whether an in-step abort was caused by a
// checkpoint request rather than a cancellation (Cancel wins ties).
func checkpointRequested(opts RunOptions) bool {
	return canceled(opts.Checkpoint) && !canceled(opts.Cancel)
}
