package scenario

import (
	"strings"
	"testing"
)

// mpsocSpec returns a minimal valid mpsoc-model spec.
func mpsocSpec() string {
	return `{"name":"m","model":"mpsoc","source":{"name":"const-power","params":{"p":2}},"duration":600,"dt":1}`
}

func TestModelRegistryListsAllFamilies(t *testing.T) {
	want := []string{"eneutral", "lab", "mpsoc", "taskburst"}
	got := ModelNames()
	if len(got) != len(want) {
		t.Fatalf("ModelNames() = %v, want %v", got, want)
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("ModelNames() = %v, want %v", got, want)
		}
		m, err := LookupModel(n)
		if err != nil || m.Desc() == "" {
			t.Errorf("model %q: lookup err=%v", n, err)
		}
	}
}

func TestModelNameDefaultsToLab(t *testing.T) {
	sp := mustParse(t, `{"name":"x","workload":"fib24","storage":{"c":"10u"},
		"source":{"name":"dc"},"duration":0.002}`)
	if sp.ModelName() != "lab" {
		t.Errorf("ModelName() = %q, want lab", sp.ModelName())
	}
	// The canonical encoding of a model-less spec must not grow a model
	// key: pre-model specs keep their content addresses byte-for-byte.
	canon, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(canon), `"model"`) || strings.Contains(string(canon), `"params"`) {
		t.Errorf("canonical encoding of a model-less spec leaks new fields:\n%s", canon)
	}
}

func TestExplicitLabModelChangesHashOnly(t *testing.T) {
	implicit := mustParse(t, `{"name":"x","workload":"fib24","storage":{"c":"10u"},
		"source":{"name":"dc"},"duration":0.002}`)
	explicit := mustParse(t, `{"name":"x","model":"lab","workload":"fib24","storage":{"c":"10u"},
		"source":{"name":"dc"},"duration":0.002}`)
	h1, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	// The model name folds into the canonical JSON exactly when set
	// (the registry contract), so the two spellings are distinct cache
	// keys even though both dispatch to the lab engine.
	if h1 == h2 {
		t.Error("explicit model:lab must change the content hash")
	}
	if implicit.ModelName() != explicit.ModelName() {
		t.Error("both spellings must dispatch to the lab model")
	}
}

func TestModelValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want []string
	}{
		{"unknown model",
			`{"name":"x","model":"fpga","source":{"name":"pv"},"duration":1}`,
			[]string{`unknown model "fpga"`, "mpsoc", "taskburst", "eneutral", "lab"}},
		{"lab takes no model params",
			`{"name":"x","params":{"scale":2},"workload":"fib24","storage":{"c":"10u"},"source":{"name":"dc"},"duration":1}`,
			[]string{`"scale"`, "lab"}},
		{"mpsoc rejects workload",
			`{"name":"x","model":"mpsoc","workload":"fib24","source":{"name":"pv"},"duration":1}`,
			[]string{"mpsoc", "workload"}},
		{"mpsoc rejects runtime",
			`{"name":"x","model":"mpsoc","runtime":{"name":"hibernus"},"source":{"name":"pv"},"duration":1}`,
			[]string{"mpsoc", "runtime"}},
		{"mpsoc rejects governor",
			`{"name":"x","model":"mpsoc","governor":{"policy":"hillclimb"},"source":{"name":"pv"},"duration":1}`,
			[]string{"mpsoc", "governor"}},
		{"mpsoc rejects storage",
			`{"name":"x","model":"mpsoc","storage":{"c":"10u"},"source":{"name":"pv"},"duration":1}`,
			[]string{"mpsoc", "storage"}},
		{"mpsoc needs a power source",
			`{"name":"x","model":"mpsoc","source":{"name":"wind"},"duration":1}`,
			[]string{"power source", "voltage", "pv", "const-power"}},
		{"mpsoc unknown model param",
			`{"name":"x","model":"mpsoc","params":{"boards":2},"source":{"name":"pv"},"duration":1}`,
			[]string{`"boards"`, "scale"}},
		{"taskburst needs storage",
			`{"name":"x","model":"taskburst","source":{"name":"pv"},"duration":1}`,
			[]string{"storage.c"}},
		{"taskburst eq4 sizing must fit",
			`{"name":"x","model":"taskburst","storage":{"c":"1u"},"source":{"name":"pv"},"params":{"taskenergy":"6m"},"duration":1}`,
			[]string{"capacitor", "cannot hold"}},
		{"taskburst bad eta",
			`{"name":"x","model":"taskburst","storage":{"c":"6m"},"source":{"name":"pv"},"params":{"eta":1.5},"duration":1}`,
			[]string{"eta"}},
		{"taskburst v0 beyond rating",
			`{"name":"x","model":"taskburst","storage":{"c":"6m","v0":100},"source":{"name":"pv"},"duration":1}`,
			[]string{"storage.v0", "rating"}},
		{"mpsoc non-positive scale",
			`{"name":"x","model":"mpsoc","source":{"name":"pv"},"params":{"scale":-1},"duration":1}`,
			[]string{"scale", "positive"}},
		{"eneutral bad duty0",
			`{"name":"x","model":"eneutral","source":{"name":"pv"},"params":{"duty0":5},"duration":1}`,
			[]string{"duty0"}},
		{"eneutral non-positive pactive",
			`{"name":"x","model":"eneutral","source":{"name":"pv"},"params":{"pactive":0},"duration":1}`,
			[]string{"pactive"}},
		{"eneutral rejects device block",
			`{"name":"x","model":"eneutral","device":{"freqindex":1},"source":{"name":"pv"},"duration":1}`,
			[]string{"eneutral", "device"}},
		{"eneutral bad soc0",
			`{"name":"x","model":"eneutral","source":{"name":"pv"},"params":{"soc0":1.5},"duration":1}`,
			[]string{"soc0"}},
		{"eneutral unknown source still actionable",
			`{"name":"x","model":"eneutral","source":{"name":"windmill"},"duration":1}`,
			[]string{`unknown source "windmill"`}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.spec))
			if err == nil {
				t.Fatal("expected error")
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q should contain %q", err, frag)
				}
			}
		})
	}
}

func TestSetupRejectsNonLabModels(t *testing.T) {
	sp := mustParse(t, mpsocSpec())
	if _, err := sp.Setup(); err == nil || !strings.Contains(err.Error(), "lab") {
		t.Errorf("Setup on an mpsoc spec: got %v, want a lab-only error", err)
	}
}

func TestApplyModelParamAxis(t *testing.T) {
	sp := mustParse(t, `{"name":"x","model":"taskburst","storage":{"c":"6m"},
		"source":{"name":"const-power","params":{"p":"2m"}},"duration":2,
		"sweep":[{"param":"model.taskenergy","values":["1m","6m"]}]}`)
	grid := sp.Grid()
	if grid.Size() != 2 {
		t.Fatalf("grid size = %d, want 2", grid.Size())
	}
	cs, err := sp.at(grid.Cases()[1])
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(cs.Params["taskenergy"]); got != 6e-3 {
		t.Errorf("applied model param = %g, want 6e-3", got)
	}
	if sp.Params != nil && float64(sp.Params["taskenergy"]) == 6e-3 {
		t.Error("Apply mutated the base spec's params")
	}
	// Validation probes model-param axis points: a point the model's
	// Validate rejects must fail at parse time.
	_, err = Parse([]byte(`{"name":"x","model":"taskburst","storage":{"c":"6m"},
		"source":{"name":"const-power"},"duration":2,
		"sweep":[{"param":"model.eta","values":[0.7,9]}]}`))
	if err == nil || !strings.Contains(err.Error(), "eta") {
		t.Errorf("bad model-param axis point: got %v, want an eta error", err)
	}
}
