package scenario

import (
	"strings"
	"testing"

	"repro/internal/lab"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/transient"
)

// smokeSpec returns a minimal valid spec that runs in a few milliseconds.
func smokeSpec() *Spec {
	return &Spec{
		Name:     "smoke",
		Workload: "fib24",
		Storage:  StorageSpec{C: 10e-6},
		Source:   SourceSpec{Name: "dc"},
		Duration: 0.002,
	}
}

func TestParseFullSpec(t *testing.T) {
	data := []byte(`{
		"name": "parse-test",
		"description": "d",
		"paper": "p",
		"workload": "fft64",
		"device": {"profile": "default", "freqindex": 2},
		"storage": {"c": "10u", "v0": 1.5, "leakr": "50k"},
		"source": {"name": "square", "params": {"ontime": "4m"}},
		"runtime": {"name": "hibernus", "params": {"margin": 1.05}},
		"governor": {"policy": "hillclimb", "params": {"vtarget": 2.9}},
		"duration": 0.5,
		"dt": "5u",
		"fastforward": true,
		"sweep": [{"param": "c", "values": ["4.7u", "10u"]}]
	}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if s.Storage.C != Value(10e-6) || s.Storage.LeakR != Value(50e3) {
		t.Errorf("SI-suffixed storage values: %+v", s.Storage)
	}
	if s.Device.FreqIndex == nil || *s.Device.FreqIndex != 2 {
		t.Errorf("freqindex: %+v", s.Device)
	}
	if s.Source.Params["ontime"] != Value(4e-3) {
		t.Errorf("source params: %+v", s.Source.Params)
	}
	if s.Dt != Value(5e-6) || !s.FastForward || !s.HasSweep() {
		t.Errorf("scalar fields: %+v", s)
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","workload":"fib24","storage":{"c":1e-5},
		"source":{"name":"dc"},"duration":1,"workers":4}`))
	if err == nil || !strings.Contains(err.Error(), "workers") {
		t.Errorf("unknown top-level field: got %v", err)
	}
	_, err = Parse([]byte(`{"name":"x","workload":"fib24","storage":{"cap":1e-5},
		"source":{"name":"dc"},"duration":1}`))
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("unknown nested field: got %v", err)
	}
}

func TestValidateErrorsAreActionable(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   []string
	}{
		{"unknown workload", func(s *Spec) { s.Workload = "fft63" },
			[]string{`unknown workload "fft63"`, "fft64"}},
		{"unknown source", func(s *Spec) { s.Source.Name = "windmill" },
			[]string{`unknown source "windmill"`, "wind"}},
		{"unknown source param", func(s *Spec) { s.Source.Params = map[string]Value{"volt": 3} },
			[]string{`"volt"`, "valid"}},
		{"unknown runtime", func(s *Spec) { s.Runtime.Name = "hibernator" },
			[]string{`unknown runtime "hibernator"`, "hibernus"}},
		{"unknown governor", func(s *Spec) { s.Governor = &GovernorSpec{Policy: "pid"} },
			[]string{`unknown governor "pid"`, "hillclimb"}},
		{"bad profile", func(s *Spec) { s.Device.Profile = "msp430" },
			[]string{"profile", "unified-nv"}},
		{"zero C", func(s *Spec) { s.Storage.C = 0 }, []string{"storage.c"}},
		{"zero duration", func(s *Spec) { s.Duration = 0 }, []string{"duration"}},
		{"empty axis", func(s *Spec) { s.Sweep = []Axis{{Param: "c"}} },
			[]string{"values or names"}},
		{"axis both kinds", func(s *Spec) {
			s.Sweep = []Axis{{Param: "c", Values: []Value{1e-6}, Names: []string{"x"}}}
		}, []string{"mutually exclusive"}},
		{"unknown axis param", func(s *Spec) {
			s.Sweep = []Axis{{Param: "capacitance", Values: []Value{1e-6}}}
		}, []string{`"capacitance"`}},
		{"axis probes points", func(s *Spec) {
			s.Sweep = []Axis{{Param: "runtime", Names: []string{"hibernus", "hibernator"}}}
		}, []string{`unknown runtime "hibernator"`}},
		{"axis probes every point, not just the last", func(s *Spec) {
			s.Sweep = []Axis{{Param: "runtime", Names: []string{"hibernator", "hibernus"}}}
		}, []string{`unknown runtime "hibernator"`}},
		{"axis probes numeric points", func(s *Spec) {
			s.Sweep = []Axis{{Param: "c", Values: []Value{-1e-6, 1e-6}}}
		}, []string{"storage.c"}},
		{"duplicate axis", func(s *Spec) {
			s.Sweep = []Axis{
				{Param: "c", Values: []Value{1e-6}},
				{Param: "c", Values: []Value{2e-6}},
			}
		}, []string{"duplicate"}},
		{"duplicate axis via alias", func(s *Spec) {
			s.Sweep = []Axis{
				{Param: "c", Values: []Value{1e-6}},
				{Param: "storage.c", Values: []Value{2e-6}},
			}
		}, []string{"duplicate"}},
		{"source builder rejects degenerate params", func(s *Spec) {
			s.Source = SourceSpec{Name: "rf", Params: map[string]Value{"period": 0}}
		}, []string{"period"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := smokeSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatal("expected error")
			}
			for _, frag := range tc.want {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("error %q should contain %q", err, frag)
				}
			}
		})
	}
}

func TestSetupRoundTripRuns(t *testing.T) {
	s, err := smokeSpec().Setup()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions == 0 || res.WrongResults != 0 {
		t.Errorf("smoke run: %d completions, %d wrong", res.Completions, res.WrongResults)
	}
}

// TestEveryRegistryNameCompiles is the acceptance check: every builtin
// workload, source, runtime and governor is constructible by name
// through a spec.
func TestEveryRegistryNameCompiles(t *testing.T) {
	for _, w := range programs.Names() {
		s := smokeSpec()
		s.Workload = w
		if _, err := s.Setup(); err != nil {
			t.Errorf("workload %q: %v", w, err)
		}
	}
	for _, src := range source.Names() {
		s := smokeSpec()
		s.Source = SourceSpec{Name: src}
		if _, err := s.Setup(); err != nil {
			t.Errorf("source %q: %v", src, err)
		}
	}
	for _, rt := range transient.RuntimeNames() {
		s := smokeSpec()
		s.Runtime = RuntimeSpec{Name: rt}
		st, err := s.Setup()
		if err != nil {
			t.Errorf("runtime %q: %v", rt, err)
			continue
		}
		if rt == "none" && st.MakeRuntime != nil {
			t.Error("runtime none should compile to a nil factory")
		}
		if rt != "none" && st.MakeRuntime == nil {
			t.Errorf("runtime %q compiled to a nil factory", rt)
		}
	}
	for _, g := range powerneutral.GovernorNames() {
		s := smokeSpec()
		s.Governor = &GovernorSpec{Policy: g}
		st, err := s.Setup()
		if err != nil {
			t.Errorf("governor %q: %v", g, err)
			continue
		}
		if st.OnTick == nil {
			t.Errorf("governor %q: no OnTick hook compiled", g)
		}
	}
}

func TestUnifiedNVProfileFollowsRuntime(t *testing.T) {
	s := smokeSpec()
	s.Runtime = RuntimeSpec{Name: "quickrecall"}
	st, err := s.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Params.UnifiedNV {
		t.Error("quickrecall should select the unified-NV device")
	}
	if st.Workload.RAMBase != programs.UnifiedNVLayout().RAMBase {
		t.Error("quickrecall should regenerate the workload for the unified layout")
	}
	// An explicit profile overrides the runtime's preference.
	s.Device.Profile = "default"
	st, err = s.Setup()
	if err != nil {
		t.Fatal(err)
	}
	if st.Params.UnifiedNV {
		t.Error("explicit default profile should win over the runtime")
	}
}

func TestGridAndSetupAt(t *testing.T) {
	s := smokeSpec()
	s.Runtime = RuntimeSpec{Name: "hibernus"}
	s.Sweep = []Axis{
		{Param: "c", Values: []Value{4.7e-6, 10e-6}},
		{Param: "runtime", Names: []string{"hibernus", "quickrecall"}},
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	grid := s.Grid()
	if grid.Size() != 4 {
		t.Fatalf("grid size = %d, want 4", grid.Size())
	}
	cases := grid.Cases()
	if want := "c=4.7µF/runtime=hibernus"; cases[0].Name != want {
		t.Errorf("case 0 name = %q, want %q", cases[0].Name, want)
	}
	st, err := s.SetupAt(cases[3])
	if err != nil {
		t.Fatal(err)
	}
	if st.C != 10e-6 || !st.Params.UnifiedNV {
		t.Errorf("case 3 should be 10µF quickrecall: C=%g unified=%v", st.C, st.Params.UnifiedNV)
	}
	// The base spec must be untouched by per-case application.
	if s.Runtime.Name != "hibernus" || s.Storage.C != Value(10e-6) {
		t.Errorf("base spec mutated: %+v", s)
	}
}

func TestSweepAxisOverRuntimeParam(t *testing.T) {
	s := smokeSpec()
	s.Runtime = RuntimeSpec{Name: "hibernus"}
	s.Duration = 0.001
	s.Sweep = []Axis{{Param: "runtime.margin", Values: []Value{0.9, 1.1}}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	grid := s.Grid()
	results, err := sweep.MapGrid(nil, grid, func(c sweep.Case) (lab.Result, error) {
		st, err := s.SetupAt(c)
		if err != nil {
			return lab.Result{}, err
		}
		return lab.Run(st)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
}

func TestValueUnmarshalForms(t *testing.T) {
	s, err := Parse([]byte(`{"name":"v","workload":"fib24",
		"storage":{"c":"330u","v0":2},"source":{"name":"dc"},"duration":"1m"}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Storage.C != Value(330e-6) || s.Storage.V0 != 2 || s.Duration != Value(1e-3) {
		t.Errorf("mixed value forms: %+v", s)
	}
}
