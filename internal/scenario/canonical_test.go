package scenario

import (
	"fmt"
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Spec {
	t.Helper()
	sp, err := Parse([]byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return sp
}

func TestCanonicalIsDeterministic(t *testing.T) {
	sp := mustParse(t, `{
		"name": "canon",
		"workload": "fib24",
		"storage": {"c": "10u"},
		"source": {"name": "rectified-sine", "params": {"freq": 20, "amplitude": 3.6}},
		"duration": 0.002
	}`)
	a, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sp.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("canonical encoding not stable:\n%s\n%s", a, b)
	}
}

func TestHashIgnoresSpelling(t *testing.T) {
	// Same scenario, three spellings: SI string vs plain number, field
	// order, param order, whitespace.
	variants := []string{
		`{"name":"x","workload":"fib24","storage":{"c":"10u"},
		  "source":{"name":"rectified-sine","params":{"freq":20,"amplitude":3.6}},
		  "duration":0.002}`,
		`{"duration":0.002,
		  "source":{"params":{"amplitude":3.6,"freq":20},"name":"rectified-sine"},
		  "storage":{"c":1e-5},"workload":"fib24","name":"x"}`,
		`{ "name" : "x", "workload" : "fib24",
		   "storage" : { "c" : 0.00001 },
		   "source" : { "name" : "rectified-sine",
		                "params" : { "freq" : "20", "amplitude" : 3.6 } },
		   "duration" : "2m" }`,
	}
	var first string
	for i, src := range variants {
		h, err := mustParse(t, src).Hash()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if !strings.HasPrefix(h, "sha256:") || len(h) != len("sha256:")+64 {
			t.Fatalf("variant %d: malformed hash %q", i, h)
		}
		if i == 0 {
			first = h
		} else if h != first {
			t.Errorf("variant %d hashes to %s, variant 0 to %s", i, h, first)
		}
	}
}

func TestGridCaseCapRejectsAllocationBombs(t *testing.T) {
	// 60×60×60 = 216k cases from only 180 points: the multiplicative
	// bound must catch what the linear point cap cannot.
	var pts []string
	for i := 0; i < 60; i++ {
		pts = append(pts, fmt.Sprintf("%g", 1e-6+float64(i)*1e-9))
	}
	vals := strings.Join(pts, ",")
	spec := fmt.Sprintf(`{"name":"bomb","workload":"fib24","storage":{"c":"10u"},
		"source":{"name":"dc"},"duration":0.002,
		"sweep":[{"param":"c","values":[%s]},
		         {"param":"duration","values":[%s]},
		         {"param":"v0","values":[%s]}]}`, vals, vals, vals)
	_, err := Parse([]byte(spec))
	if err == nil || !strings.Contains(err.Error(), "cases") {
		t.Fatalf("oversized grid should fail with the case cap, got: %v", err)
	}
}

func TestSweepPointCapRejectsPathologicalSpecs(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"name":"huge","workload":"fib24","storage":{"c":"10u"},
		"source":{"name":"dc"},"duration":0.002,
		"sweep":[{"param":"c","values":[`)
	for i := 0; i <= MaxSweepPoints; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", 1e-6+float64(i)*1e-9)
	}
	b.WriteString(`]}]}`)
	_, err := Parse([]byte(b.String()))
	if err == nil || !strings.Contains(err.Error(), "axis points") {
		t.Fatalf("oversized sweep should fail with the point cap, got: %v", err)
	}
}

func TestHashSeparatesContent(t *testing.T) {
	base := `{"name":"x","workload":"fib24","storage":{"c":"10u"},
		"source":{"name":"dc"},"duration":0.002}`
	mutants := []string{
		// Different capacitance.
		`{"name":"x","workload":"fib24","storage":{"c":"47u"},
			"source":{"name":"dc"},"duration":0.002}`,
		// Different name (report titles embed it, so it must separate).
		`{"name":"y","workload":"fib24","storage":{"c":"10u"},
			"source":{"name":"dc"},"duration":0.002}`,
		// Fast-forward changes results.
		`{"name":"x","workload":"fib24","storage":{"c":"10u"},
			"source":{"name":"dc"},"duration":0.002,"fastforward":true}`,
	}
	h0, err := mustParse(t, base).Hash()
	if err != nil {
		t.Fatal(err)
	}
	for i, src := range mutants {
		h, err := mustParse(t, src).Hash()
		if err != nil {
			t.Fatalf("mutant %d: %v", i, err)
		}
		if h == h0 {
			t.Errorf("mutant %d collides with base hash %s", i, h0)
		}
	}
}
