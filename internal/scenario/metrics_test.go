package scenario

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/units"
)

// TestMetricsMatchRenderedCells is the cross-model consistency contract:
// every number a sweep table renders must be derivable from the case's
// structured Metrics alone, for all four models. Each entry re-renders
// the row cells from ModelCase.Metrics with the model's own format
// strings and requires byte equality with the report text — so the
// rendered table and the explorer's objectives can never drift apart.
func TestMetricsMatchRenderedCells(t *testing.T) {
	cases := []struct {
		model string
		spec  string
		// cells re-renders one case's table row from its metrics.
		cells func(t *testing.T, m map[string]float64) []string
	}{
		{
			model: "lab",
			spec: `{"name":"x","workload":"fib24","storage":{"c":"10u"},
				"source":{"name":"dc"},"duration":0.002,
				"sweep":[{"param":"c","values":["10u","47u"]}]}`,
			cells: func(t *testing.T, m map[string]float64) []string {
				eop := "∞"
				if v, ok := m["energy_per_op"]; ok {
					eop = units.Format(v, "J")
				}
				return []string{
					fmt.Sprintf("%d", int(m["completions"])),
					fmt.Sprintf("%d", int(m["wrong"])),
					fmt.Sprintf("%d", int(m["snapshots"])),
					fmt.Sprintf("%d", int(m["brownouts"])),
					eop,
					units.Format(m["harvested"], "J"),
				}
			},
		},
		{
			model: "mpsoc",
			spec: `{"name":"x","model":"mpsoc","source":{"name":"const-power","params":{"p":2}},
				"duration":120,"dt":1,
				"sweep":[{"param":"source.p","values":[1,3]}]}`,
			cells: func(t *testing.T, m map[string]float64) []string {
				return []string{
					fmt.Sprintf("%.1f", m["frames"]),
					fmt.Sprintf("%.2f", m["mean_fps"]),
					fmt.Sprintf("%.3f", m["used_w"]),
					fmt.Sprintf("%.1f%%", m["utilization"]*100),
					fmt.Sprintf("%d", int(m["switches"])),
					fmt.Sprintf("%d", int(m["starved"])),
				}
			},
		},
		{
			model: "taskburst",
			spec: `{"name":"x","model":"taskburst","storage":{"c":"6m"},
				"source":{"name":"const-power","params":{"p":"2m"}},"duration":2,
				"sweep":[{"param":"model.taskenergy","values":["1m","2m"]}]}`,
			cells: func(t *testing.T, m map[string]float64) []string {
				first := "never"
				if v, ok := m["first_fire"]; ok {
					first = units.FormatSeconds(v)
				}
				return []string{
					fmt.Sprintf("%d", int(m["events"])),
					fmt.Sprintf("%.3f/s", m["rate"]),
					fmt.Sprintf("%.2fV", m["v_fire"]),
					first,
				}
			},
		},
		{
			model: "eneutral",
			spec: `{"name":"x","model":"eneutral","source":{"name":"const-power","params":{"p":"50m"}},
				"duration":7200,"params":{"window":3600,"ctrlperiod":600},
				"sweep":[{"param":"model.duty0","values":[0.1,0.3]}]}`,
			cells: func(t *testing.T, m map[string]float64) []string {
				worst := "n/a"
				if v, ok := m["worst_window"]; ok {
					worst = fmt.Sprintf("%.2f%%", v*100)
				}
				return []string{
					units.Format(m["harvested"], "J"),
					units.Format(m["consumed"], "J"),
					worst,
					fmt.Sprintf("%d", int(m["violations"])),
					fmt.Sprintf("%.1f%%", m["final_soc"]*100),
					fmt.Sprintf("%.1f%%", m["mean_duty"]*100),
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.model, func(t *testing.T) {
			sp := mustParse(t, tc.spec)
			m, err := LookupModel(sp.ModelName())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunModel(sp, RunOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			rows := tableRows(t, rep.Text)
			if len(rows) != len(rep.Cases) {
				t.Fatalf("report has %d table rows but %d cases:\n%s", len(rows), len(rep.Cases), rep.Text)
			}
			docs := metricKeySet(m)
			for i, mc := range rep.Cases {
				if len(mc.Metrics) == 0 {
					t.Fatalf("case %q carries no metrics", mc.Name)
				}
				for k := range mc.Metrics {
					if !docs[k] {
						t.Errorf("case %q metric %q is not documented in Metrics()", mc.Name, k)
					}
				}
				want := tc.cells(t, mc.Metrics)
				if got := rows[i][1:]; !equalCells(got, want) {
					t.Errorf("case %q: rendered cells %v != cells from metrics %v", mc.Name, got, want)
				}
			}
		})
	}
}

// TestSingleRunMetricsDocumented runs each model sweep-free and checks
// the single-run path fills Metrics with documented keys too.
func TestSingleRunMetricsDocumented(t *testing.T) {
	specs := map[string]string{
		"lab":       `{"name":"x","workload":"fib24","storage":{"c":"10u"},"source":{"name":"dc"},"duration":0.002}`,
		"mpsoc":     `{"name":"x","model":"mpsoc","source":{"name":"const-power","params":{"p":2}},"duration":60,"dt":1}`,
		"taskburst": `{"name":"x","model":"taskburst","storage":{"c":"6m"},"source":{"name":"const-power","params":{"p":"2m"}},"duration":2}`,
		"eneutral":  `{"name":"x","model":"eneutral","source":{"name":"const-power","params":{"p":"50m"}},"duration":3600}`,
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			sp := mustParse(t, spec)
			m, err := LookupModel(sp.ModelName())
			if err != nil {
				t.Fatal(err)
			}
			rep, err := RunModel(sp, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Cases) != 1 || len(rep.Cases[0].Metrics) == 0 {
				t.Fatalf("single run: %d cases, metrics %v", len(rep.Cases), rep.Cases)
			}
			docs := metricKeySet(m)
			for k := range rep.Cases[0].Metrics {
				if !docs[k] {
					t.Errorf("metric %q is not documented in Metrics()", k)
				}
			}
		})
	}
}

// metricKeySet collects a model's documented metric keys, failing on
// duplicates would be overkill — the registry output is tiny and sorted
// by declaration, so a set suffices for membership checks.
func metricKeySet(m Model) map[string]bool {
	set := make(map[string]bool)
	for _, d := range m.Metrics() {
		set[d.Key] = true
	}
	return set
}

// tableRows splits a sweep report's text into per-case rows of
// whitespace-separated fields (field 0 is the case name). The first two
// lines are the title and the header.
func tableRows(t *testing.T, text string) [][]string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("report too short for a sweep table:\n%s", text)
	}
	rows := make([][]string, 0, len(lines)-2)
	for _, l := range lines[2:] {
		rows = append(rows, strings.Fields(l))
	}
	return rows
}

func equalCells(got, want []string) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}
