package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Canonical returns the spec's canonical JSON encoding: struct fields in
// declaration order, param maps with sorted keys, SI-suffixed strings
// normalised to plain numbers, omitted optionals dropped. Two spec
// documents that differ only in field order, whitespace, or value
// spelling ("10u" vs 1e-05) produce identical canonical bytes — the
// property the service's content-addressed result cache is built on.
func (s *Spec) Canonical() ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("scenario %q: canonical encoding: %w", s.Name, err)
	}
	return b, nil
}

// Hash returns the spec's content address, "sha256:" followed by the hex
// digest of the canonical encoding. It identifies the scenario exactly:
// any change that could alter what a run computes or how its report
// reads (including the name, which report titles embed) changes the
// hash.
func (s *Spec) Hash() (string, error) {
	b, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return "sha256:" + hex.EncodeToString(sum[:]), nil
}
