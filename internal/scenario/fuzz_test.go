package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseSpec drives the scenario JSON parser with hostile input,
// pinning three properties:
//
//  1. Parse never panics — it returns a spec or an error, whatever the
//     bytes (the daemon feeds it untrusted request bodies).
//  2. Spec.Hash / Spec.Canonical never panic, even on structurally
//     decoded but semantically invalid specs.
//  3. Canonicalisation round-trips: for any spec Parse accepts, the
//     canonical encoding re-parses successfully, canonicalises to the
//     same bytes (idempotence), and keeps the same content hash — the
//     property the service's content-addressed result cache rests on.
func FuzzParseSpec(f *testing.F) {
	// Seed with every curated spec plus targeted shapes: SI strings,
	// sweeps (numeric and name axes), governor blocks, and junk.
	paths, _ := filepath.Glob("../../examples/scenarios/*.json")
	for _, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"name":"x","workload":"fft64","storage":{"c":"10u"},"source":{"name":"dc"},"duration":1}`))
	f.Add([]byte(`{"name":"s","workload":"crc256","storage":{"c":1e-5},"source":{"name":"square","params":{"ontime":"4m"}},"runtime":{"name":"hibernus"},"duration":"500m","sweep":[{"param":"c","values":["4.7u",1e-5]},{"param":"runtime","names":["hibernus","quickrecall"]}]}`))
	f.Add([]byte(`{"name":"g","workload":"fft64","storage":{"c":"330u"},"source":{"name":"wind"},"governor":{"policy":"hillclimb"},"duration":1}`))
	f.Add([]byte(`{"name":"mp","model":"mpsoc","source":{"name":"const-power"},"params":{"scale":"2"},"duration":10,"dt":1}`))
	f.Add([]byte(`{"name":"tb","model":"taskburst","storage":{"c":"6m"},"source":{"name":"pv"},"params":{"taskenergy":"1m"},"duration":5,"sweep":[{"param":"model.eta","values":[0.5,0.7]}]}`))
	f.Add([]byte(`{"name":"en","model":"eneutral","source":{"name":"pv"},"duration":100}`))
	f.Add([]byte(`{"name":"bad","model":"fpga","duration":1}`))
	f.Add([]byte(`{"name":"","workload":"","storage":{"c":-1},"source":{"name":"nope"},"duration":-3}`))
	f.Add([]byte(`{"unknown_field":true}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 2 on the loose path: a structurally decodable spec
		// must hash without panicking even if validation would reject it.
		var loose Spec
		if err := json.Unmarshal(data, &loose); err == nil {
			_, _ = loose.Hash()
		}

		sp, err := Parse(data)
		if err != nil {
			return // rejected input is fine; not panicking is the property
		}

		canon, err := sp.Canonical()
		if err != nil {
			t.Fatalf("accepted spec failed to canonicalise: %v", err)
		}
		hash, err := sp.Hash()
		if err != nil {
			t.Fatalf("accepted spec failed to hash: %v", err)
		}

		sp2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical encoding failed to re-parse: %v\ncanonical: %s", err, canon)
		}
		canon2, err := sp2.Canonical()
		if err != nil {
			t.Fatalf("re-parsed spec failed to canonicalise: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonicalisation not idempotent:\nfirst:  %s\nsecond: %s", canon, canon2)
		}
		hash2, err := sp2.Hash()
		if err != nil || hash2 != hash {
			t.Fatalf("hash changed across canonical round-trip: %s -> %s (err %v)", hash, hash2, err)
		}
	})
}
