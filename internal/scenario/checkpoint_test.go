package scenario

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/trace"
)

// Checkpoint/resume equivalence: the engine contract promises that a
// run suspended by a checkpoint and resumed later is byte-identical —
// report text and trace — to an uninterrupted run of the same spec.
// These tests pin that promise for all four models, through both the
// driver path (RunModel interrupted by the Checkpoint channel) and
// mid-run engine stepping.

// ckptSpecs are single-run specs sized so the analytic engines need
// several Steps (> analyticChunk integration steps), making a mid-run
// checkpoint capture genuinely partial state.
var ckptSpecs = map[string]string{
	"eneutral":  `{"name":"x","model":"eneutral","source":{"name":"const-power","params":{"p":"50m"}},"duration":30000}`,
	"taskburst": `{"name":"x","model":"taskburst","storage":{"c":"6m"},"source":{"name":"const-power","params":{"p":"2m"}},"duration":2}`,
	"mpsoc":     `{"name":"x","model":"mpsoc","source":{"name":"const-power","params":{"p":2}},"duration":30000,"dt":1}`,
}

// tracesEqual compares two recorders through the lossless columnar
// codec (result.WriteTrace renders deterministically from the recorder,
// so codec equality implies CSV equality).
func tracesEqual(a, b *trace.Recorder) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return bytes.Equal(trace.EncodeRecorder(a), trace.EncodeRecorder(b))
}

// interruptRun drives sp through RunModel with a pre-fired Checkpoint
// channel and returns the envelope.
func interruptRun(t *testing.T, sp *Spec, opts RunOptions) []byte {
	t.Helper()
	ckpt := make(chan struct{})
	close(ckpt)
	opts.Checkpoint = ckpt
	_, err := RunModel(sp, opts)
	var ce *CheckpointError
	if !errors.As(err, &ce) {
		t.Fatalf("RunModel with fired checkpoint channel: got %v, want *CheckpointError", err)
	}
	return ce.State
}

func TestDriverCheckpointResumeIdentical(t *testing.T) {
	// Driver path, all four models: interrupt before the first step,
	// resume, require byte-identical output. The lab model's single-run
	// engine can only checkpoint as a restart marker (cycle-level MCU
	// state is not serialised), so this pre-step interruption is exactly
	// its supported checkpoint; the analytic models capture t=0 state.
	specs := map[string]string{
		"lab": `{"name":"x","workload":"fib24","storage":{"c":"10u"},"source":{"name":"dc"},"duration":0.002}`,
	}
	for k, v := range ckptSpecs {
		specs[k] = v
	}
	for name, src := range specs {
		t.Run(name, func(t *testing.T) {
			sp := mustParse(t, src)
			want, err := RunModel(sp, RunOptions{Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			env := interruptRun(t, sp, RunOptions{Trace: true})
			got, err := ResumeModel(sp, env, RunOptions{Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			if got.Text != want.Text {
				t.Errorf("resumed text differs:\n--- uninterrupted ---\n%s--- resumed ---\n%s", want.Text, got.Text)
			}
			if !tracesEqual(got.Trace, want.Trace) {
				t.Error("resumed trace differs from uninterrupted trace")
			}
		})
	}
}

func TestMidRunCheckpointResumeIdentical(t *testing.T) {
	// Analytic models, genuinely partial state: step the engine directly
	// past the first chunk, checkpoint, resume, and require the report
	// and trace to match an uninterrupted run byte for byte. The resumed
	// options deliberately omit Trace — whether the run records is the
	// checkpoint's decision, since the interrupted run was recording.
	for name, src := range ckptSpecs {
		t.Run(name, func(t *testing.T) {
			sp := mustParse(t, src)
			want, err := RunModel(sp, RunOptions{Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			m, err := LookupModel(sp.ModelName())
			if err != nil {
				t.Fatal(err)
			}
			eng, err := m.Engine(sp, RunOptions{Trace: true}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.Step(); err != nil {
				t.Fatal(err)
			}
			if eng.Done() {
				t.Fatalf("spec completed in one step — grow it so the checkpoint is mid-run")
			}
			state, err := eng.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			env, err := encodeCheckpoint(sp, state)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ResumeModel(sp, env, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if got.Text != want.Text {
				t.Errorf("resumed text differs:\n--- uninterrupted ---\n%s--- resumed ---\n%s", want.Text, got.Text)
			}
			if got.Trace == nil {
				t.Fatal("checkpoint carried a trace; the resumed run must keep recording")
			}
			if !tracesEqual(got.Trace, want.Trace) {
				t.Error("resumed trace differs from uninterrupted trace")
			}
		})
	}
}

func TestLabSweepCheckpointResumeAcrossWorkers(t *testing.T) {
	// Lab sweep: interrupt after one completed wave, resume at both ends
	// of the parallelism range. Worker count must never reach the bytes
	// (the determinism contract), interrupted or not.
	src := `{"name":"x","workload":"fib24","storage":{"c":"10u"},
		"source":{"name":"dc"},"duration":0.002,
		"sweep":[{"param":"c","values":["10u","22u","47u"]}]}`
	sp := mustParse(t, src)
	want, err := RunModel(sp, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	m, err := LookupModel(sp.ModelName())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := m.Engine(sp, RunOptions{Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Step(); err != nil { // one wave of one case
		t.Fatal(err)
	}
	if done, total := eng.Progress(); done != 1 || total != 3 {
		t.Fatalf("after one single-worker wave: progress %d/%d, want 1/3", done, total)
	}
	state, err := eng.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	env, err := encodeCheckpoint(sp, state)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 8} {
		got, err := ResumeModel(sp, env, RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Text != want.Text {
			t.Errorf("workers=%d: resumed text differs:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
				workers, want.Text, got.Text)
		}
		if len(got.Cases) != len(want.Cases) {
			t.Fatalf("workers=%d: %d cases, want %d", workers, len(got.Cases), len(want.Cases))
		}
	}
}

func TestCheckpointEnvelopeRejectsMismatches(t *testing.T) {
	sp := mustParse(t, ckptSpecs["eneutral"])
	env := interruptRun(t, sp, RunOptions{})

	// A different spec (different hash) must be rejected.
	other := mustParse(t, `{"name":"y","model":"eneutral","source":{"name":"const-power","params":{"p":"60m"}},"duration":30000}`)
	if _, err := ResumeModel(other, env, RunOptions{}); err == nil {
		t.Error("resume accepted a checkpoint from a different spec")
	}
	// A different model must be rejected before hashing even matters.
	tb := mustParse(t, ckptSpecs["taskburst"])
	if _, err := ResumeModel(tb, env, RunOptions{}); err == nil {
		t.Error("resume accepted a checkpoint from a different model")
	}
	// Garbage must be rejected.
	if _, err := ResumeModel(sp, []byte("not json"), RunOptions{}); err == nil {
		t.Error("resume accepted a non-envelope blob")
	}
}
