package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/eneutral"
	"repro/internal/registry"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/units"
)

func init() { RegisterModel("eneutral", eneutralModel{}) }

// eneutralModel is the paper's §II.A energy-neutral computing: a sensor
// node buffering harvested energy in meaningful storage and adapting
// its duty cycle so that consumption equals harvest over a period
// matched to the energy environment (eq. 1) while the buffer keeps the
// supply alive (eq. 2) — the Kansal et al. [3] approach. The battery is
// sized through model params (joules, not farads), so the spec's
// storage block does not apply.
type eneutralModel struct{}

func (eneutralModel) Desc() string {
	return "energy-neutral duty-cycled sensor node: Kansal-style adaptive duty cycling over long-horizon sources (eq. 1/2)"
}

func (eneutralModel) Params() []registry.ParamDoc {
	return []registry.ParamDoc{
		{Key: "batteryj", Default: 200, Desc: "battery capacity (J)"},
		{Key: "soc0", Default: 0.6, Desc: "initial state of charge (0..1)"},
		{Key: "pactive", Default: 60e-3, Desc: "consumption while performing duty (W)"},
		{Key: "psleep", Default: 60e-6, Desc: "sleep floor (W)"},
		{Key: "duty0", Default: 0.2, Desc: "initial duty cycle (0..1)"},
		{Key: "window", Default: 86400, Desc: "eq. (1) neutrality window (s); 24 h for solar"},
		{Key: "ctrlperiod", Default: 3600, Desc: "seconds between controller epochs"},
		{Key: "fixedduty", Default: 0, Desc: "fixed duty cycle; 0 selects the Kansal adaptive controller"},
	}
}

func (eneutralModel) Metrics() []MetricDoc {
	return []MetricDoc{
		{Key: "harvested", Unit: "J", Desc: "energy harvested over the run"},
		{Key: "consumed", Unit: "J", Desc: "energy consumed over the run"},
		{Key: "violations", Unit: "count", Desc: "eq. 2 violations (storage depleted, node dead)"},
		{Key: "downtime", Unit: "s", Desc: "time spent dead"},
		{Key: "active_sec", Unit: "s", Desc: "duty-weighted productive time"},
		{Key: "final_soc", Unit: "ratio", Desc: "final battery state of charge (0..1)"},
		{Key: "mean_duty", Unit: "ratio", Desc: "mean controller duty cycle (0..1)"},
		{Key: "worst_window", Unit: "ratio", Desc: "largest eq. 1 imbalance ratio (absent before the first window completes)"},
		{Key: "windows", Unit: "count", Desc: "completed eq. 1 neutrality windows"},
	}
}

// eneutralMetrics extracts the structured objectives from one
// energy-neutral case. worst_window is omitted until a window completes.
func eneutralMetrics(res eneutral.Result, duty0 float64) map[string]float64 {
	m := map[string]float64{
		"harvested":  res.HarvestedJ,
		"consumed":   res.ConsumedJ,
		"violations": float64(res.Violations),
		"downtime":   res.DowntimeSec,
		"active_sec": res.ActiveSec,
		"final_soc":  res.FinalSoC,
		"mean_duty":  meanDuty(res, duty0),
		"windows":    float64(len(res.Windows)),
	}
	if w := res.WorstWindow(); !math.IsInf(w, 1) {
		m["worst_window"] = w
	}
	return m
}

// eneutralDefaultDt is the integration step when the spec leaves dt
// unset: duty-cycle planning evolves over hours, so one-second steps
// resolve it with day-scale durations still cheap.
const eneutralDefaultDt = 1.0

// Validate implements Model.
func (m eneutralModel) Validate(s *Spec) error {
	if err := s.rejectLabFields(); err != nil {
		return err
	}
	if err := s.rejectStorage(); err != nil {
		return err
	}
	if _, err := s.buildPowerSource(); err != nil {
		return err
	}
	p, err := s.modelParams(m)
	if err != nil {
		return s.errf("%w", err)
	}
	if p["batteryj"] <= 0 {
		return s.errf("model param batteryj must be positive (got %g J)", p["batteryj"])
	}
	if p["soc0"] < 0 || p["soc0"] > 1 {
		return s.errf("model param soc0 must be in [0, 1] (got %g)", p["soc0"])
	}
	if p["duty0"] < 0 || p["duty0"] > 1 {
		return s.errf("model param duty0 must be in [0, 1] (got %g)", p["duty0"])
	}
	if p["fixedduty"] < 0 || p["fixedduty"] > 1 {
		return s.errf("model param fixedduty must be in [0, 1] (got %g)", p["fixedduty"])
	}
	if p["pactive"] <= 0 || p["psleep"] < 0 {
		return s.errf("model params need pactive > 0 and psleep ≥ 0 (got pactive=%g, psleep=%g)",
			p["pactive"], p["psleep"])
	}
	if p["window"] <= 0 {
		return s.errf("model param window must be positive (got %g s)", p["window"])
	}
	if p["ctrlperiod"] <= 0 {
		return s.errf("model param ctrlperiod must be positive (got %g s)", p["ctrlperiod"])
	}
	return nil
}

// Engine implements Model.
func (m eneutralModel) Engine(sp *Spec, opts RunOptions, checkpoint []byte) (Engine, error) {
	if sp.HasSweep() {
		return newTableSweepEngine(sp, opts,
			[]string{"harvested", "consumed", "worst-win", "deaths", "final-soc", "mean-duty"},
			func(cs *Spec) ([]string, map[string]float64, float64, error) {
				res, _, err := m.simulate(cs, nil, opts.stop)
				if err != nil {
					return nil, nil, 0, err
				}
				p, _ := cs.modelParams(m) // validated in simulate
				return []string{
					units.Format(res.HarvestedJ, "J"),
					units.Format(res.ConsumedJ, "J"),
					worstWindowLabel(res),
					fmt.Sprintf("%d", res.Violations),
					fmt.Sprintf("%.1f%%", res.FinalSoC*100),
					fmt.Sprintf("%.1f%%", meanDuty(res, p["duty0"])*100),
				}, eneutralMetrics(res, p["duty0"]), float64(cs.Duration), nil
			}, checkpoint)
	}

	p, err := sp.modelParams(m)
	if err != nil {
		return nil, sp.errf("%w", err)
	}
	ps, err := sp.buildPowerSource()
	if err != nil {
		return nil, err
	}
	node := eneutral.NewNode(p["batteryj"], p["soc0"], ps)
	node.PActive = p["pactive"]
	node.PSleep = p["psleep"]
	node.Duty = p["duty0"]
	node.CtrlPeriod = p["ctrlperiod"]
	if p["fixedduty"] > 0 {
		node.Controller = &eneutral.FixedController{Value: p["fixedduty"]}
	} else {
		node.Controller = eneutral.NewKansal()
	}
	dt := float64(sp.Dt)
	if dt <= 0 {
		dt = eneutralDefaultDt
	}
	e := &eneutralEngine{
		sp: sp, opts: opts, p: p, node: node,
		sim: eneutral.NewSim(node, float64(sp.Duration), dt, p["window"]),
	}

	var restored *eneutral.SimState
	var recBlob []byte
	if checkpoint != nil {
		var st eneutralState
		if err := json.Unmarshal(checkpoint, &st); err != nil {
			return nil, sp.errf("checkpoint: %w", err)
		}
		restored, recBlob = st.Sim, st.Trace
	}
	if restored != nil {
		// A resumed run records iff the checkpoint carried a trace — the
		// checkpoint, not the resume options, decides, so the reassembled
		// trace is byte-identical to an uninterrupted run's.
		if recBlob != nil {
			rec, err := trace.DecodeRecorder(recBlob)
			if err != nil {
				return nil, sp.errf("checkpoint trace: %w", err)
			}
			e.rec = rec
		}
	} else if opts.Trace {
		e.rec = trace.NewRecorder()
		e.rec.SetInterval(opts.interval())
	}
	if e.rec != nil {
		socCh := e.rec.Channel("soc", "")
		dutyCh := e.rec.Channel("duty", "")
		harvestCh := e.rec.Channel("harvest", "W")
		node.Observe = func(t, soc, duty float64, dead bool) {
			socCh.Record(t, soc)
			dutyCh.Record(t, duty)
			harvestCh.Record(t, ps.Power(t))
		}
	}
	if restored != nil {
		e.sim.Restore(*restored)
	}
	return e, nil
}

// eneutralEngine steps one sweep-free energy-neutral run in
// analyticChunk-sized slices of the integration loop.
type eneutralEngine struct {
	sp   *Spec
	opts RunOptions
	p    registry.Params
	node *eneutral.Node
	sim  *eneutral.Sim
	rec  *trace.Recorder
}

// eneutralState is the serialised checkpoint of an eneutralEngine. A nil
// Sim (an empty restart marker) resumes as a fresh run.
type eneutralState struct {
	Sim   *eneutral.SimState `json:"sim,omitempty"`
	Trace []byte             `json:"trace,omitempty"`
}

// Step implements Engine.
func (e *eneutralEngine) Step() error { e.sim.Step(analyticChunk); return nil }

// Done implements Engine.
func (e *eneutralEngine) Done() bool { return e.sim.Done() }

// Progress implements Engine.
func (e *eneutralEngine) Progress() (int, int) {
	if e.sim.Done() {
		return 1, 1
	}
	return 0, 1
}

// Checkpoint implements Engine.
func (e *eneutralEngine) Checkpoint() ([]byte, error) {
	st := e.sim.State()
	out := eneutralState{Sim: &st}
	if e.rec != nil {
		out.Trace = trace.EncodeRecorder(e.rec)
	}
	return json.Marshal(out)
}

// Report implements Engine.
func (e *eneutralEngine) Report() (*ModelReport, error) {
	res := e.sim.Result()
	if e.opts.Progress != nil {
		e.opts.Progress(1, 1)
	}
	sp, p, node := e.sp, e.p, e.node
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "scenario %s: energy-neutral duty cycling on %s, %gs\n",
		sp.Name, sp.Source.Name, float64(sp.Duration))
	fmt.Fprintf(&buf, "  controller:         %s (epoch %gs, window %gs)\n",
		node.Controller.Name(), p["ctrlperiod"], p["window"])
	fmt.Fprintf(&buf, "  duty cycle:         start %.1f%%, final %.1f%% (mean %.1f%%)\n",
		p["duty0"]*100, node.Duty*100, meanDuty(res, p["duty0"])*100)
	fmt.Fprintf(&buf, "  energy:             harvested %s, consumed %s\n",
		units.Format(res.HarvestedJ, "J"), units.Format(res.ConsumedJ, "J"))
	fmt.Fprintf(&buf, "  eq.(1) windows:     %d complete, worst imbalance %s\n",
		len(res.Windows), worstWindowLabel(res))
	fmt.Fprintf(&buf, "  eq.(2) violations:  %d (downtime %.1fs)\n", res.Violations, res.DowntimeSec)
	fmt.Fprintf(&buf, "  battery:            %s, final SoC %.1f%%\n",
		units.Format(p["batteryj"], "J"), res.FinalSoC*100)
	fmt.Fprintf(&buf, "  productive time:    %.1fs (%.1f%% of run)\n",
		res.ActiveSec, res.ActiveSec/float64(sp.Duration)*100)
	return &ModelReport{
		Text:       buf.String(),
		Cases:      []ModelCase{{Name: sp.Name, Metrics: eneutralMetrics(res, p["duty0"])}},
		SimSeconds: float64(sp.Duration),
		Trace:      e.rec,
	}, nil
}

// simulate runs one sweep-free energy-neutral case, optionally
// recording the SoC/duty/harvest trace.
func (m eneutralModel) simulate(sp *Spec, rec *trace.Recorder, cancel <-chan struct{}) (eneutral.Result, *eneutral.Node, error) {
	p, err := sp.modelParams(m)
	if err != nil {
		return eneutral.Result{}, nil, sp.errf("%w", err)
	}
	ps, err := sp.buildPowerSource()
	if err != nil {
		return eneutral.Result{}, nil, err
	}
	node := eneutral.NewNode(p["batteryj"], p["soc0"], ps)
	node.PActive = p["pactive"]
	node.PSleep = p["psleep"]
	node.Duty = p["duty0"]
	node.CtrlPeriod = p["ctrlperiod"]
	if p["fixedduty"] > 0 {
		node.Controller = &eneutral.FixedController{Value: p["fixedduty"]}
	} else {
		node.Controller = eneutral.NewKansal()
	}
	node.Abort = cancel
	if rec != nil {
		socCh := rec.Channel("soc", "")
		dutyCh := rec.Channel("duty", "")
		harvestCh := rec.Channel("harvest", "W")
		node.Observe = func(t, soc, duty float64, dead bool) {
			socCh.Record(t, soc)
			dutyCh.Record(t, duty)
			harvestCh.Record(t, ps.Power(t))
		}
	}
	dt := float64(sp.Dt)
	if dt <= 0 {
		dt = eneutralDefaultDt
	}
	res := node.Simulate(float64(sp.Duration), dt, p["window"])
	if res.Aborted {
		return res, node, sweep.ErrCanceled
	}
	return res, node, nil
}

// meanDuty averages the controller's duty decisions (the fallback —
// the initial duty — when no epoch completed).
func meanDuty(res eneutral.Result, fallback float64) float64 {
	if len(res.DutyTrace) == 0 {
		return fallback
	}
	sum := 0.0
	for _, d := range res.DutyTrace {
		sum += d
	}
	return sum / float64(len(res.DutyTrace))
}

// worstWindowLabel renders the largest eq. (1) imbalance ratio ("n/a"
// before the first window completes).
func worstWindowLabel(res eneutral.Result) string {
	w := res.WorstWindow()
	if math.IsInf(w, 1) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", w*100)
}
