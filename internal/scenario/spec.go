// Package scenario makes experiments data instead of code: a Spec is a
// JSON document naming a workload, device profile, storage, energy
// source, transient runtime, optional DFS governor, and optional sweep
// axes — everything a hand-written harness in internal/experiments used
// to wire by hand. Spec.Setup compiles it into a lab.Setup; Spec.Grid
// and Spec.SetupAt expand sweep axes into internal/sweep cases.
//
// Every name in a spec resolves through a layer registry — workloads in
// programs, supplies in source, runtimes in transient (including ones
// other packages register there, like powerneutral's hibernus-pn), and
// governors in powerneutral — so the set of expressible scenarios grows
// with the registries, not with this package.
//
// Numeric fields accept either JSON numbers or SI-suffixed strings
// ("10u", "50k"), matching the CLI convention.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/registry"
	"repro/internal/units"
)

// Value is a float64 that unmarshals from a JSON number or an
// SI-suffixed string ("10u" → 1e-5).
type Value float64

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		f, err := units.ParseSI(s)
		if err != nil {
			return err
		}
		*v = Value(f)
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*v = Value(f)
	return nil
}

// MarshalJSON implements json.Marshaler (plain number form).
func (v Value) MarshalJSON() ([]byte, error) { return json.Marshal(float64(v)) }

// DeviceSpec selects the MCU configuration. Profile "" defers to the
// runtime's requirement (unified-NV runtimes get the unified device);
// "default" and "unified-nv" force a profile. FreqIndex, when set,
// overrides the initial DFS level.
type DeviceSpec struct {
	Profile   string `json:"profile,omitempty"`
	FreqIndex *int   `json:"freqindex,omitempty"`
}

// StorageSpec is the rail storage node.
type StorageSpec struct {
	C     Value `json:"c"`
	V0    Value `json:"v0,omitempty"`
	LeakR Value `json:"leakr,omitempty"`
}

// SourceSpec names an energy source from the source registry.
type SourceSpec struct {
	Name   string           `json:"name"`
	Params map[string]Value `json:"params,omitempty"`
}

// RuntimeSpec names a transient runtime from the runtime registry. An
// empty name means "none" (the unprotected baseline).
type RuntimeSpec struct {
	Name   string           `json:"name,omitempty"`
	Params map[string]Value `json:"params,omitempty"`
}

// GovernorSpec attaches a power-neutral DFS governor (by policy name
// from the governor registry) to the simulation's OnTick hook.
type GovernorSpec struct {
	Policy string           `json:"policy"`
	Params map[string]Value `json:"params,omitempty"`
}

// Axis is one sweep dimension: Param names the spec field it varies (see
// Apply for the accepted paths) and exactly one of Values (numeric
// params) or Names (registry-name params: "workload", "source",
// "runtime", "governor") holds the points.
type Axis struct {
	Param  string   `json:"param"`
	Values []Value  `json:"values,omitempty"`
	Names  []string `json:"names,omitempty"`
}

// Spec is one declarative scenario.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Paper maps the scenario to its source-paper artefact ("§III Fig. 7").
	Paper string `json:"paper,omitempty"`

	// Model selects the scenario family from the model registry
	// (model.go): "lab" (the default when empty — every pre-model spec
	// keeps its exact canonical encoding and content hash), "mpsoc",
	// "taskburst", or "eneutral". The name folds into the canonical
	// JSON, so setting it changes the spec's content address.
	Model string `json:"model,omitempty"`

	// Params holds the model-level tunables, validated against the
	// model's documented parameter set (unknown keys are errors). The
	// lab model takes none.
	Params map[string]Value `json:"params,omitempty"`

	Workload string        `json:"workload"`
	Device   DeviceSpec    `json:"device,omitempty"`
	Storage  StorageSpec   `json:"storage"`
	Source   SourceSpec    `json:"source"`
	Runtime  RuntimeSpec   `json:"runtime,omitempty"`
	Governor *GovernorSpec `json:"governor,omitempty"`

	Duration    Value  `json:"duration"`
	Dt          Value  `json:"dt,omitempty"`
	FastForward bool   `json:"fastforward,omitempty"`
	Sweep       []Axis `json:"sweep,omitempty"`
}

// MaxSweepPoints bounds the total number of sweep-axis points one spec
// may declare (validation cost is linear in the point count, grid size
// multiplicative — both need the cap).
const MaxSweepPoints = 10_000

// MaxGridCases bounds the sweep cross product: grid expansion
// materialises one Case (with its coordinate map) per cell before
// anything runs, so an unbounded product is an allocation bomb for
// every front-end — CLI and service alike.
const MaxGridCases = 100_000

// Parse decodes and validates a spec. Unknown fields are errors, so a
// typoed key fails loudly instead of silently running the defaults.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a spec file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// runtimeName returns the effective runtime name ("" means none).
func (s *Spec) runtimeName() string {
	if s.Runtime.Name == "" {
		return "none"
	}
	return s.Runtime.Name
}

// errf wraps an error with the scenario's identity for actionable
// messages.
func (s *Spec) errf(format string, args ...any) error {
	return fmt.Errorf("scenario %q: %w", s.Name, fmt.Errorf(format, args...))
}

// Validate checks the model-independent invariants (duration, dt, sweep
// shape and bounds), resolves the spec's model, and dispatches the
// model-specific checks — every name resolves, every param key is known
// to its registry entry. It is called by Parse; call it directly on
// specs constructed in Go.
func (s *Spec) Validate() error {
	m, err := LookupModel(s.ModelName())
	if err != nil {
		return s.errf("%w", err)
	}
	if s.Duration <= 0 {
		return s.errf("duration must be positive (got %g s)", float64(s.Duration))
	}
	if s.Dt < 0 {
		return s.errf("dt must be non-negative (got %g s)", float64(s.Dt))
	}
	// Validation probes every axis point below, so the point count must
	// be bounded before that loop — otherwise a pathological spec buys
	// unbounded validation CPU (a concern for services parsing
	// untrusted specs; no legitimate sweep comes close).
	points, cases := 0, 1
	for _, ax := range s.Sweep {
		n := len(ax.Values) + len(ax.Names)
		points += n
		if n > 0 {
			cases *= n
		}
		// Checked per axis, so the product cannot overflow en route.
		if cases > MaxGridCases {
			return s.errf("sweep expands to more than %d cases", MaxGridCases)
		}
	}
	if points > MaxSweepPoints {
		return s.errf("sweep declares %d axis points (limit %d)", points, MaxSweepPoints)
	}
	seen := map[string]bool{}
	for i, ax := range s.Sweep {
		if ax.Param == "" {
			return s.errf("sweep[%d]: param is required", i)
		}
		canon := canonicalParam(ax.Param)
		if seen[canon] {
			return s.errf("sweep[%d]: duplicate axis %q", i, ax.Param)
		}
		seen[canon] = true
		if len(ax.Values) == 0 && len(ax.Names) == 0 {
			return s.errf("sweep[%d] (%s): values or names required", i, ax.Param)
		}
		if len(ax.Values) > 0 && len(ax.Names) > 0 {
			return s.errf("sweep[%d] (%s): values and names are mutually exclusive", i, ax.Param)
		}
		var pts []any
		for _, v := range ax.Values {
			pts = append(pts, float64(v))
		}
		for _, n := range ax.Names {
			pts = append(pts, n)
		}
		// Probe every point against a fresh copy, so each point's shape is
		// checked before any case runs — not just the last-applied one.
		for _, pt := range pts {
			probe := s.clone()
			probe.Sweep = nil
			if err := probe.Apply(ax.Param, pt); err != nil {
				return s.errf("sweep[%d]: %w", i, err)
			}
			if err := probe.Validate(); err != nil {
				return fmt.Errorf("sweep[%d] (%s=%v): %w", i, ax.Param, pt, err)
			}
		}
	}
	return m.Validate(s)
}

// canonicalParam folds the storage-field aliases Apply accepts onto one
// spelling, so duplicate-axis detection catches "c" vs "storage.c".
func canonicalParam(p string) string {
	switch p {
	case "storage.c":
		return "c"
	case "storage.v0":
		return "v0"
	case "storage.leakr":
		return "leakr"
	}
	return p
}

// HasSweep reports whether the spec declares sweep axes.
func (s *Spec) HasSweep() bool { return len(s.Sweep) > 0 }

// Clone deep-copies the spec (param maps and sweep slice included) so a
// caller can Apply per-case values without aliasing the original —
// the expansion step design-space explorers build on.
func (s *Spec) Clone() *Spec { return s.clone() }

// clone deep-copies the spec (param maps and sweep slice included) so
// per-case mutation via Apply cannot alias the base spec.
func (s *Spec) clone() *Spec {
	c := *s
	c.Params = cloneParams(s.Params)
	c.Source.Params = cloneParams(s.Source.Params)
	c.Runtime.Params = cloneParams(s.Runtime.Params)
	if s.Governor != nil {
		g := *s.Governor
		g.Params = cloneParams(s.Governor.Params)
		c.Governor = &g
	}
	if s.Device.FreqIndex != nil {
		fi := *s.Device.FreqIndex
		c.Device.FreqIndex = &fi
	}
	c.Sweep = append([]Axis(nil), s.Sweep...)
	return &c
}

func cloneParams(p map[string]Value) map[string]Value {
	if p == nil {
		return nil
	}
	out := make(map[string]Value, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// toParams converts a spec param map to the registry's float form.
func toParams(p map[string]Value) registry.Params {
	if len(p) == 0 {
		return nil
	}
	out := make(registry.Params, len(p))
	for k, v := range p {
		out[k] = float64(v)
	}
	return out
}

// IntPtr is a literal-friendly helper for DeviceSpec.FreqIndex.
func IntPtr(i int) *int { return &i }
