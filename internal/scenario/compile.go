package scenario

import (
	"fmt"
	"strings"

	"repro/internal/circuit"
	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/transient"
	"repro/internal/units"
)

// Setup compiles the spec (ignoring any sweep axes) into a runnable
// lab.Setup. Each call builds fresh source, runtime-factory, and
// governor state, so the returned Setup is safe to run once; call Setup
// again for another run.
func (s *Spec) Setup() (lab.Setup, error) {
	if err := s.Validate(); err != nil {
		return lab.Setup{}, err
	}
	if s.ModelName() != "lab" {
		return lab.Setup{}, s.errf("Setup compiles lab-model specs only (this spec uses model %q)", s.ModelName())
	}

	mk, entry, err := transient.RuntimeFactory(s.runtimeName(), float64(s.Storage.C), toParams(s.Runtime.Params))
	if err != nil {
		return lab.Setup{}, s.errf("%w", err)
	}

	unified := entry.UnifiedNV
	switch s.Device.Profile {
	case "default":
		unified = false
	case "unified-nv":
		unified = true
	}
	layout, params := programs.DefaultLayout(), mcu.DefaultParams()
	if unified {
		layout, params = programs.UnifiedNVLayout(), mcu.UnifiedNVParams()
	}
	if s.Device.FreqIndex != nil {
		params.FreqIndex = *s.Device.FreqIndex
	}

	w, err := programs.Build(s.Workload, layout)
	if err != nil {
		return lab.Setup{}, s.errf("%w", err)
	}
	built, err := source.Build(s.Source.Name, toParams(s.Source.Params))
	if err != nil {
		return lab.Setup{}, s.errf("%w", err)
	}

	st := lab.Setup{
		Workload:    w,
		Params:      params,
		MakeRuntime: mk,
		VSource:     built.V,
		PSource:     built.P,
		C:           float64(s.Storage.C),
		V0:          float64(s.Storage.V0),
		LeakR:       float64(s.Storage.LeakR),
		Dt:          float64(s.Dt),
		Duration:    float64(s.Duration),
		FastForward: s.FastForward,
	}
	if s.Governor != nil {
		gov, err := powerneutral.BuildGovernor(s.Governor.Policy, toParams(s.Governor.Params))
		if err != nil {
			return lab.Setup{}, s.errf("%w", err)
		}
		st.OnTick = func(t float64, d *mcu.Device, rail *circuit.Rail) {
			gov.Act(t, d, rail.V())
		}
	}
	return st, nil
}

// Grid expands the spec's sweep axes into a sweep.Grid, axes in
// declaration order (first axis slowest, matching the engine's row-major
// contract). Numeric axes get SI-formatted labels where the param is a
// known electrical quantity.
func (s *Spec) Grid() *sweep.Grid {
	g := sweep.NewGrid()
	for _, ax := range s.Sweep {
		if len(ax.Names) > 0 {
			vals := make([]any, len(ax.Names))
			for i, n := range ax.Names {
				vals[i] = n
			}
			g.Axis(ax.Param, vals...)
			continue
		}
		vals := make([]float64, len(ax.Values))
		labels := make([]string, len(ax.Values))
		for i, v := range ax.Values {
			vals[i] = float64(v)
			labels[i] = axisLabel(ax.Param, float64(v))
		}
		g.Floats(ax.Param, vals...)
		g.Labels(labels...)
	}
	return g
}

// AxisLabel renders one axis point for case names and tables — exported
// so explorers labelling machine-generated grids match sweep-table
// spelling exactly.
func AxisLabel(param string, v float64) string { return axisLabel(param, v) }

// axisLabel renders one axis point for case names and tables.
func axisLabel(param string, v float64) string {
	switch param {
	case "c", "storage.c":
		return units.Format(v, "F")
	case "leakr", "storage.leakr":
		return units.Format(v, "Ω")
	default:
		return fmt.Sprintf("%g", v)
	}
}

// SetupAt compiles the spec with the case's sweep coordinates applied —
// the per-case half of a grid run:
//
//	grid := sp.Grid()
//	results, err := sweep.MapGrid(r, grid, func(c sweep.Case) (lab.Result, error) {
//	    st, err := sp.SetupAt(c)
//	    ...
//	})
func (s *Spec) SetupAt(c sweep.Case) (lab.Setup, error) {
	cs, err := s.at(c)
	if err != nil {
		return lab.Setup{}, err
	}
	return cs.Setup()
}

// Apply sets one swept parameter on the spec. Accepted params:
//
//	float-valued: c, v0, leakr (also storage.c, …), duration, dt,
//	              freqindex, source.<key>, runtime.<key>, governor.<key>,
//	              model.<key> (top-level model params)
//	name-valued:  workload, source, runtime, governor
func (s *Spec) Apply(param string, value any) error {
	if name, ok := value.(string); ok {
		switch param {
		case "workload":
			s.Workload = name
		case "source":
			s.Source.Name = name
		case "runtime":
			s.Runtime.Name = name
		case "governor":
			if s.Governor == nil {
				s.Governor = &GovernorSpec{}
			}
			s.Governor.Policy = name
		default:
			return fmt.Errorf("axis %q does not take names (name axes: workload, source, runtime, governor)", param)
		}
		return nil
	}
	f, ok := value.(float64)
	if !ok {
		return fmt.Errorf("axis %q: unsupported value type %T", param, value)
	}
	switch param {
	case "c", "storage.c":
		s.Storage.C = Value(f)
	case "v0", "storage.v0":
		s.Storage.V0 = Value(f)
	case "leakr", "storage.leakr":
		s.Storage.LeakR = Value(f)
	case "duration":
		s.Duration = Value(f)
	case "dt":
		s.Dt = Value(f)
	case "freqindex":
		s.Device.FreqIndex = IntPtr(int(f))
	default:
		group, key, found := strings.Cut(param, ".")
		if !found {
			return fmt.Errorf("unknown sweep param %q (valid: c, v0, leakr, duration, dt, freqindex, or a model./source./runtime./governor. key)", param)
		}
		switch group {
		case "model":
			s.Params = setParam(s.Params, key, f)
		case "source":
			s.Source.Params = setParam(s.Source.Params, key, f)
		case "runtime":
			s.Runtime.Params = setParam(s.Runtime.Params, key, f)
		case "governor":
			if s.Governor == nil {
				return fmt.Errorf("sweep param %q needs a governor block", param)
			}
			s.Governor.Params = setParam(s.Governor.Params, key, f)
		default:
			return fmt.Errorf("unknown sweep param %q (valid: model.*, source.*, runtime.*, governor.*)", param)
		}
	}
	return nil
}

// setParam writes into a possibly-nil param map.
func setParam(m map[string]Value, key string, v float64) map[string]Value {
	if m == nil {
		m = make(map[string]Value, 1)
	}
	m[key] = Value(v)
	return m
}
