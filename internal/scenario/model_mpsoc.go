package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/mpsoc"
	"repro/internal/registry"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func init() { RegisterModel("mpsoc", mpsocModel{}) }

// mpsocModel is the paper's §II.C power-neutral MPSoC (Fig. 5 and
// reference [11]): an ODROID XU-4-class big.LITTLE board whose runtime
// policy picks, at every control step, the highest-FPS operating point
// (per-cluster DVFS × hot-plugged core count) whose power fits the
// instantaneously harvested budget. The spec's power source, scaled by
// the "scale" param, is the budget; Storage and the lab blocks
// (workload/device/runtime/governor) do not apply — the board's
// decoupling storage is parasitic by definition (eq. 3 with T small).
type mpsocModel struct{}

func (mpsocModel) Desc() string {
	return "power-neutral big.LITTLE MPSoC: operating-point governor tracking a harvested power budget (Fig. 5)"
}

func (mpsocModel) Params() []registry.ParamDoc {
	return []registry.ParamDoc{
		{Key: "scale", Default: 1, Desc: "multiplier from source power to board budget (W/W)"},
	}
}

func (mpsocModel) Metrics() []MetricDoc {
	return []MetricDoc{
		{Key: "frames", Unit: "count", Desc: "frames rendered over the run"},
		{Key: "mean_fps", Unit: "fps", Desc: "mean frame rate"},
		{Key: "budget_w", Unit: "W", Desc: "mean harvested power budget"},
		{Key: "used_w", Unit: "W", Desc: "mean power drawn by the selected operating points"},
		{Key: "utilization", Unit: "ratio", Desc: "used power over budget (0..1)"},
		{Key: "peak_budget_w", Unit: "W", Desc: "largest budget sustained for a full control step"},
		{Key: "switches", Unit: "count", Desc: "operating-point changes"},
		{Key: "starved", Unit: "count", Desc: "control steps with no affordable operating point"},
		{Key: "frontier", Unit: "count", Desc: "operating points on the power/FPS Pareto frontier"},
	}
}

// mpsocMetrics extracts the structured objectives from one mpsoc case.
func mpsocMetrics(res mpsoc.SimResult, sel *mpsoc.Selector) map[string]float64 {
	return map[string]float64{
		"frames":        res.Frames,
		"mean_fps":      res.MeanFPS,
		"budget_w":      res.MeanBudgetW,
		"used_w":        res.MeanUsedW,
		"utilization":   res.Utilization,
		"peak_budget_w": res.MaxSustainedW,
		"switches":      float64(res.Switches),
		"starved":       float64(res.Starved),
		"frontier":      float64(len(sel.Frontier)),
	}
}

// mpsocDefaultDt is the control period when the spec leaves dt unset:
// the governor of [11] re-selects operating points at a second-scale
// cadence, far from the lab engine's microsecond stepping.
const mpsocDefaultDt = 1.0

// Validate implements Model.
func (m mpsocModel) Validate(s *Spec) error {
	if err := s.rejectLabFields(); err != nil {
		return err
	}
	if err := s.rejectStorage(); err != nil {
		return err
	}
	if _, err := s.buildPowerSource(); err != nil {
		return err
	}
	p, err := s.modelParams(m)
	if err != nil {
		return s.errf("%w", err)
	}
	if p["scale"] <= 0 {
		return s.errf("model param scale must be positive (got %g)", p["scale"])
	}
	return nil
}

// Engine implements Model.
func (m mpsocModel) Engine(sp *Spec, opts RunOptions, checkpoint []byte) (Engine, error) {
	if sp.HasSweep() {
		return newTableSweepEngine(sp, opts,
			[]string{"frames", "mean-fps", "used-W", "util", "switches", "starved"},
			func(cs *Spec) ([]string, map[string]float64, float64, error) {
				res, sel, err := m.simulate(cs, nil, opts.stop)
				if err != nil {
					return nil, nil, 0, err
				}
				return []string{
					fmt.Sprintf("%.1f", res.Frames),
					fmt.Sprintf("%.2f", res.MeanFPS),
					fmt.Sprintf("%.3f", res.MeanUsedW),
					fmt.Sprintf("%.1f%%", res.Utilization*100),
					fmt.Sprintf("%d", res.Switches),
					fmt.Sprintf("%d", res.Starved),
				}, mpsocMetrics(res, sel), float64(cs.Duration), nil
			}, checkpoint)
	}

	p, err := sp.modelParams(m)
	if err != nil {
		return nil, sp.errf("%w", err)
	}
	ps, err := sp.buildPowerSource()
	if err != nil {
		return nil, err
	}
	scale := p["scale"]
	budget := func(t float64) float64 { return scale * ps.Power(t) }
	sel := mpsoc.NewSelector(mpsoc.XU4())
	dt := float64(sp.Dt)
	if dt <= 0 {
		dt = mpsocDefaultDt
	}
	e := &mpsocEngine{
		sp: sp, opts: opts, sel: sel,
		sim: mpsoc.NewSim(sel, budget, float64(sp.Duration), dt),
	}

	var restored *mpsoc.SimState
	var recBlob []byte
	if checkpoint != nil {
		var st mpsocState
		if err := json.Unmarshal(checkpoint, &st); err != nil {
			return nil, sp.errf("checkpoint: %w", err)
		}
		restored, recBlob = st.Sim, st.Trace
	}
	if restored != nil {
		// The checkpoint, not the resume options, decides whether the
		// run records — see eneutralEngine.
		if recBlob != nil {
			rec, err := trace.DecodeRecorder(recBlob)
			if err != nil {
				return nil, sp.errf("checkpoint trace: %w", err)
			}
			e.rec = rec
		}
	} else if opts.Trace {
		e.rec = trace.NewRecorder()
		e.rec.SetInterval(opts.interval())
	}
	if e.rec != nil {
		budgetCh := e.rec.Channel("budget", "W")
		usedCh := e.rec.Channel("used", "W")
		fpsCh := e.rec.Channel("fps", "fps")
		sel.Observe = func(t, w float64, op mpsoc.OperatingPoint, ok bool) {
			budgetCh.Record(t, w)
			usedCh.Record(t, op.PowerW)
			fpsCh.Record(t, op.FPS)
		}
	}
	if restored != nil {
		e.sim.Restore(*restored)
	}
	return e, nil
}

// mpsocEngine steps one sweep-free power-neutral MPSoC run in
// analyticChunk-sized slices of the control loop.
type mpsocEngine struct {
	sp   *Spec
	opts RunOptions
	sel  *mpsoc.Selector
	sim  *mpsoc.Sim
	rec  *trace.Recorder
}

// mpsocState is the serialised checkpoint of an mpsocEngine. A nil Sim
// (an empty restart marker) resumes as a fresh run.
type mpsocState struct {
	Sim   *mpsoc.SimState `json:"sim,omitempty"`
	Trace []byte          `json:"trace,omitempty"`
}

// Step implements Engine.
func (e *mpsocEngine) Step() error { e.sim.Step(analyticChunk); return nil }

// Done implements Engine.
func (e *mpsocEngine) Done() bool { return e.sim.Done() }

// Progress implements Engine.
func (e *mpsocEngine) Progress() (int, int) {
	if e.sim.Done() {
		return 1, 1
	}
	return 0, 1
}

// Checkpoint implements Engine.
func (e *mpsocEngine) Checkpoint() ([]byte, error) {
	st := e.sim.State()
	out := mpsocState{Sim: &st}
	if e.rec != nil {
		out.Trace = trace.EncodeRecorder(e.rec)
	}
	return json.Marshal(out)
}

// Report implements Engine.
func (e *mpsocEngine) Report() (*ModelReport, error) {
	res := e.sim.Result()
	if e.opts.Progress != nil {
		e.opts.Progress(1, 1)
	}
	sp, sel := e.sp, e.sel
	pts := mpsoc.XU4().OperatingPoints()
	minW, maxW := mpsoc.PowerRange(pts)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "scenario %s: mpsoc power-neutral governor on %s, %gs\n",
		sp.Name, sp.Source.Name, float64(sp.Duration))
	fmt.Fprintf(&buf, "  operating points:   %d (pareto frontier %d)\n", len(pts), len(sel.Frontier))
	fmt.Fprintf(&buf, "  power range:        %.2fW – %.2fW (%.1fx modulation)\n", minW, maxW, maxW/minW)
	fmt.Fprintf(&buf, "  frames rendered:    %.1f (mean %.2f fps)\n", res.Frames, res.MeanFPS)
	fmt.Fprintf(&buf, "  power budget:       mean %.3fW, used %.3fW (%.1f%% utilization)\n",
		res.MeanBudgetW, res.MeanUsedW, res.Utilization*100)
	fmt.Fprintf(&buf, "  peak budget:        %.3fW\n", res.MaxSustainedW)
	fmt.Fprintf(&buf, "  op switches:        %d (starved %d of %d steps)\n",
		res.Switches, res.Starved, res.Steps)
	return &ModelReport{
		Text:       buf.String(),
		Cases:      []ModelCase{{Name: sp.Name, Metrics: mpsocMetrics(res, sel)}},
		SimSeconds: float64(sp.Duration),
		Trace:      e.rec,
	}, nil
}

// simulate runs one sweep-free mpsoc case, optionally recording the
// budget/used/fps trace.
func (m mpsocModel) simulate(sp *Spec, rec *trace.Recorder, cancel <-chan struct{}) (mpsoc.SimResult, *mpsoc.Selector, error) {
	p, err := sp.modelParams(m)
	if err != nil {
		return mpsoc.SimResult{}, nil, sp.errf("%w", err)
	}
	ps, err := sp.buildPowerSource()
	if err != nil {
		return mpsoc.SimResult{}, nil, err
	}
	scale := p["scale"]
	budget := func(t float64) float64 { return scale * ps.Power(t) }

	sel := mpsoc.NewSelector(mpsoc.XU4())
	sel.Abort = cancel
	if rec != nil {
		budgetCh := rec.Channel("budget", "W")
		usedCh := rec.Channel("used", "W")
		fpsCh := rec.Channel("fps", "fps")
		sel.Observe = func(t, w float64, op mpsoc.OperatingPoint, ok bool) {
			budgetCh.Record(t, w)
			usedCh.Record(t, op.PowerW)
			fpsCh.Record(t, op.FPS)
		}
	}
	dt := float64(sp.Dt)
	if dt <= 0 {
		dt = mpsocDefaultDt
	}
	res := sel.Simulate(budget, float64(sp.Duration), dt)
	if res.Aborted {
		return res, sel, sweep.ErrCanceled
	}
	return res, sel, nil
}
