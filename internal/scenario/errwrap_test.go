package scenario

import (
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/registry"
	"repro/internal/taskburst"
)

// TestErrfPreservesCauseChain pins the %w discipline the errfmt
// analyzer enforces: an error threaded through the spec's errf helper
// must stay visible to errors.As/errors.Is, not collapse to text. The
// probe is the sweep-checkpoint path — a corrupt checkpoint's
// *json.SyntaxError has to survive the "sweep checkpoint:" wrap.
func TestErrfPreservesCauseChain(t *testing.T) {
	sp, err := Parse([]byte(`{"name":"m","model":"mpsoc",
		"source":{"name":"const-power","params":{"p":2}},
		"duration":600,"dt":1,
		"sweep":[{"param":"model.scale","values":[1,2]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	m, err := LookupModel("mpsoc")
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Engine(sp, RunOptions{}, []byte("{corrupt"))
	if err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
	var syn *json.SyntaxError
	if !errors.As(err, &syn) {
		t.Fatalf("json.SyntaxError lost in wrap chain: %v", err)
	}
	if !strings.Contains(err.Error(), "sweep checkpoint") {
		t.Fatalf("wrap context missing: %v", err)
	}
}

// TestApplyUnknownParamListsOptions pins the registry contract on the
// sweep-axis errors: an unknown name must name its valid alternatives.
func TestApplyUnknownParamListsOptions(t *testing.T) {
	var s Spec
	for _, param := range []string{"bogus", "bogus.key"} {
		err := s.Apply(param, 1.0)
		if err == nil {
			t.Fatalf("Apply(%q) accepted", param)
		}
		if !strings.Contains(err.Error(), "valid:") {
			t.Errorf("Apply(%q) error lists no options: %v", param, err)
		}
	}
}

// TestTaskburstMetricsOmitEnergyDrawnWhenUndefined pins the
// ModelCase.Metrics contract on the one computed-by-division metric:
// an eta of zero (unreachable through Validate, reachable through a
// hand-built params map) must omit energy_drawn, never store ±Inf.
func TestTaskburstMetricsOmitEnergyDrawnWhenUndefined(t *testing.T) {
	n := &taskburst.Node{VFire: 3, VFloor: 2, Events: []float64{0.1, 0.2}}

	m := taskburstMetrics(n, registry.Params{"taskenergy": 1e-6, "eta": 0.5}, 1)
	if got, ok := m["energy_drawn"]; !ok || math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("energy_drawn = %v, %v; want finite value present", got, ok)
	}

	m = taskburstMetrics(n, registry.Params{"taskenergy": 1e-6, "eta": 0}, 1)
	if got, ok := m["energy_drawn"]; ok {
		t.Fatalf("energy_drawn = %v present with eta=0; want key omitted", got)
	}
	if _, err := json.Marshal(m); err != nil {
		t.Fatalf("metrics map not JSON-encodable: %v", err)
	}
}
