package scenario

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/lab"
	"repro/internal/units"
)

// SingleTitle renders a single-run lab scenario's report title line.
func SingleTitle(sp *Spec) string {
	return fmt.Sprintf("scenario %s: %s on %s, runtime=%s, C=%s, %gs",
		sp.Name, sp.Workload, sp.Source.Name, runtimeLabel(sp),
		units.Format(float64(sp.Storage.C), "F"), float64(sp.Duration))
}

// runtimeLabel names the spec's runtime for report headers ("" → none).
func runtimeLabel(sp *Spec) string {
	if sp.Runtime.Name == "" {
		return "none"
	}
	return sp.Runtime.Name
}

// SweepAxesLabel joins the spec's sweep axis names for the report header.
func SweepAxesLabel(sp *Spec) string {
	names := make([]string, len(sp.Sweep))
	for i, ax := range sp.Sweep {
		names[i] = ax.Param
	}
	return strings.Join(names, " × ")
}

// WriteSummary renders one lab run's result block — the per-run body
// shared by the CLI's flag and scenario paths and the service's reports.
func WriteSummary(w io.Writer, res lab.Result, duration float64) {
	fmt.Fprintf(w, "  completions:        %d (wrong: %d)\n", res.Completions, res.WrongResults)
	fmt.Fprintf(w, "  throughput:         %.2f ops/s\n", res.Throughput(duration))
	if res.Completions > 0 {
		fmt.Fprintf(w, "  energy/completion:  %s\n", units.Format(res.EnergyPerCompletion(), "J"))
		fmt.Fprintf(w, "  first completion:   %s\n", units.FormatSeconds(res.FirstCompletion))
	}
	st := res.Stats
	fmt.Fprintf(w, "  snapshots:          %d started, %d done, %d aborted\n",
		st.SavesStarted, st.SavesDone, st.SavesAborted)
	fmt.Fprintf(w, "  restores/wakes:     %d / %d\n", st.Restores, st.WakeNoRestore)
	fmt.Fprintf(w, "  power cycles:       %d brown-outs, %d cold starts\n", st.BrownOuts, st.ColdStarts)
	fmt.Fprintf(w, "  time split:         active %.2fs, sleep %.2fs, save %.2fs, off %.2fs\n",
		st.ActiveSec, st.SleepSec, st.SaveSec, st.OffSec)
	fmt.Fprintf(w, "  energy:             harvested %s, consumed %s\n",
		units.Format(res.HarvestedJ, "J"), units.Format(res.ConsumedJ, "J"))
	if res.RuntimeErr != nil {
		fmt.Fprintf(w, "  guest fault:        %v\n", res.RuntimeErr)
	}
}

// WriteSweepTable renders the lab sweep comparison table: a header row,
// then one row per case. width sets the first column's width, col0 its
// title ("case" for scenario sweeps, "C" for the CLI's storage sweeps).
func WriteSweepTable(w io.Writer, col0 string, width int, names []string, results []lab.Result) {
	fmt.Fprintf(w, "%-*s %-12s %-8s %-10s %-10s %-12s %-12s\n",
		width, col0, "completions", "wrong", "snapshots", "brownouts", "energy/op", "harvested")
	for i, res := range results {
		eop := "∞"
		if res.Completions > 0 {
			eop = units.Format(res.EnergyPerCompletion(), "J")
		}
		fmt.Fprintf(w, "%-*s %-12d %-8d %-10d %-10d %-12s %-12s\n",
			width, names[i], res.Completions, res.WrongResults,
			res.Stats.SavesStarted, res.Stats.BrownOuts, eop,
			units.Format(res.HarvestedJ, "J"))
	}
}
