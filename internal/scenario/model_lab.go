package scenario

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/lab"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/registry"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/transient"
)

func init() { RegisterModel("lab", labModel{}) }

// labModel is the default scenario family: the cycle-accurate single-MCU
// lab engine (workload + device + transient runtime + optional DFS
// governor on a harvested rail) every pre-model spec ran on. Its report
// bytes are pinned by the golden corpus and by the byte-identity
// contract between `ehsim -scenario` and the ehsimd service.
type labModel struct{}

func (labModel) Desc() string {
	return "cycle-level MCU on a harvested rail (workload × runtime × supply)"
}

func (labModel) Params() []registry.ParamDoc { return nil }

func (labModel) Metrics() []MetricDoc {
	return []MetricDoc{
		{Key: "completions", Unit: "count", Desc: "correct workload iterations finished"},
		{Key: "wrong", Unit: "count", Desc: "iterations finishing with a wrong checksum"},
		{Key: "throughput", Unit: "ops/s", Desc: "completions per simulated second"},
		{Key: "energy_per_op", Unit: "J", Desc: "consumed joules per correct completion (absent when none completed)"},
		{Key: "first_completion", Unit: "s", Desc: "simulated time of the first completion (absent when none completed)"},
		{Key: "snapshots", Unit: "count", Desc: "state-save attempts started"},
		{Key: "restores", Unit: "count", Desc: "successful state restores"},
		{Key: "brownouts", Unit: "count", Desc: "supply brown-outs"},
		{Key: "harvested", Unit: "J", Desc: "energy harvested from the source"},
		{Key: "consumed", Unit: "J", Desc: "energy consumed by the node"},
	}
}

// labMetrics extracts the lab engine's structured objectives from one
// case result. Undefined values (energy/op and first-completion with
// zero completions) are omitted, per the ModelCase.Metrics contract.
func labMetrics(res lab.Result, duration float64) map[string]float64 {
	st := res.Stats
	m := map[string]float64{
		"completions": float64(res.Completions),
		"wrong":       float64(res.WrongResults),
		"throughput":  res.Throughput(duration),
		"snapshots":   float64(st.SavesStarted),
		"restores":    float64(st.Restores),
		"brownouts":   float64(st.BrownOuts),
		"harvested":   res.HarvestedJ,
		"consumed":    res.ConsumedJ,
	}
	if res.Completions > 0 {
		m["energy_per_op"] = res.EnergyPerCompletion()
		m["first_completion"] = res.FirstCompletion
	}
	return m
}

// Validate implements Model: the structural checks the lab engine needs
// — every name resolves, every param key is known, storage is sane.
func (labModel) Validate(s *Spec) error {
	if s.Workload == "" {
		return s.errf("workload is required")
	}
	if _, err := programs.Lookup(s.Workload); err != nil {
		return s.errf("%v", err)
	}
	switch s.Device.Profile {
	case "", "default", "unified-nv":
	default:
		return s.errf("device profile %q (valid: default, unified-nv)", s.Device.Profile)
	}
	if s.Source.Name == "" {
		return s.errf("source.name is required")
	}
	if _, err := source.Build(s.Source.Name, toParams(s.Source.Params)); err != nil {
		return s.errf("%v", err)
	}
	if _, _, err := transient.RuntimeFactory(s.runtimeName(), 1e-6, toParams(s.Runtime.Params)); err != nil {
		return s.errf("%v", err)
	}
	if s.Governor != nil {
		if _, err := powerneutral.BuildGovernor(s.Governor.Policy, toParams(s.Governor.Params)); err != nil {
			return s.errf("%v", err)
		}
	}
	if s.Storage.C <= 0 {
		return s.errf("storage.c must be positive (got %g F)", float64(s.Storage.C))
	}
	if _, err := s.modelParams(labModel{}); err != nil {
		return s.errf("%v", err)
	}
	return nil
}

// Run implements Model — the execute-and-render path internal/result
// historically owned, moved here verbatim so the report bytes (and the
// golden corpus pinning them) are unchanged.
func (labModel) Run(sp *Spec, opts RunOptions) (*ModelReport, error) {
	rep := &ModelReport{}
	var buf bytes.Buffer

	if !sp.HasSweep() {
		if canceled(opts.Cancel) {
			return nil, sweep.ErrCanceled
		}
		s, err := sp.Setup()
		if err != nil {
			return nil, err
		}
		s.Abort = opts.Cancel
		var rec *trace.Recorder
		if opts.Trace {
			rec = trace.NewRecorder()
			s.Recorder = rec
			s.RecordInterval = opts.interval()
		}
		res, err := lab.Run(s)
		if errors.Is(err, lab.ErrAborted) {
			return nil, sweep.ErrCanceled
		}
		if err != nil {
			return nil, err
		}
		if opts.Progress != nil {
			opts.Progress(1, 1)
		}
		fmt.Fprintln(&buf, SingleTitle(sp))
		WriteSummary(&buf, res, float64(sp.Duration))
		rep.Cases = []ModelCase{{Name: sp.Name, Lab: res, Metrics: labMetrics(res, float64(sp.Duration))}}
		rep.SimSeconds = float64(sp.Duration)
		rep.Trace = rec
		rep.Text = buf.String()
		return rep, nil
	}

	rep.Sweep = true
	grid := sp.Grid()
	cases := grid.Cases()
	// On a sweep, Trace captures the first grid case (Case.Index == 0) —
	// one representative waveform, deterministically chosen, so sweep
	// shapes get a pinnable trace too. MapGrid's completion barrier
	// orders the worker's writes before the read below.
	var rec *trace.Recorder
	r := &sweep.Runner{Workers: opts.Workers, OnProgress: opts.Progress, Cancel: opts.Cancel}
	results, err := sweep.MapGrid(r, grid, func(c sweep.Case) (lab.Result, error) {
		s, err := sp.SetupAt(c)
		if err != nil {
			return lab.Result{}, err
		}
		s.Abort = opts.Cancel
		if opts.Trace && c.Index == 0 {
			rec = trace.NewRecorder()
			s.Recorder = rec
			s.RecordInterval = opts.interval()
		}
		return lab.Run(s)
	})
	if err != nil {
		// A case interrupted mid-run by Cancel surfaces as its abort
		// error; fold it into the uniform cancellation signal.
		if errors.Is(err, lab.ErrAborted) {
			return nil, sweep.ErrCanceled
		}
		return nil, err
	}
	fmt.Fprintf(&buf, "scenario %s: sweep over %s, %d cases\n",
		sp.Name, SweepAxesLabel(sp), len(cases))
	names := make([]string, len(cases))
	rep.Cases = make([]ModelCase, len(cases))
	for i, c := range cases {
		names[i] = c.Name
		d := caseDuration(sp, c)
		rep.Cases[i] = ModelCase{Name: c.Name, Lab: results[i], Metrics: labMetrics(results[i], d)}
		rep.SimSeconds += d
	}
	WriteSweepTable(&buf, "case", 32, names, results)
	rep.Trace = rec
	rep.Text = buf.String()
	return rep, nil
}

// caseDuration resolves one grid case's simulated duration: the spec's,
// unless a "duration" axis overrides it.
func caseDuration(sp *Spec, c sweep.Case) float64 {
	if v, ok := c.Values["duration"]; ok {
		if f, ok := v.(float64); ok {
			return f
		}
	}
	return float64(sp.Duration)
}
