package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/lab"
	"repro/internal/mcu"
	"repro/internal/powerneutral"
	"repro/internal/programs"
	"repro/internal/registry"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/transient"
)

func init() { RegisterModel("lab", labModel{}) }

// labModel is the default scenario family: the cycle-accurate single-MCU
// lab engine (workload + device + transient runtime + optional DFS
// governor on a harvested rail) every pre-model spec ran on. Its report
// bytes are pinned by the golden corpus and by the byte-identity
// contract between `ehsim -scenario` and the ehsimd service.
type labModel struct{}

func (labModel) Desc() string {
	return "cycle-level MCU on a harvested rail (workload × runtime × supply)"
}

func (labModel) Params() []registry.ParamDoc { return nil }

func (labModel) Metrics() []MetricDoc {
	return []MetricDoc{
		{Key: "completions", Unit: "count", Desc: "correct workload iterations finished"},
		{Key: "wrong", Unit: "count", Desc: "iterations finishing with a wrong checksum"},
		{Key: "throughput", Unit: "ops/s", Desc: "completions per simulated second"},
		{Key: "energy_per_op", Unit: "J", Desc: "consumed joules per correct completion (absent when none completed)"},
		{Key: "first_completion", Unit: "s", Desc: "simulated time of the first completion (absent when none completed)"},
		{Key: "snapshots", Unit: "count", Desc: "state-save attempts started"},
		{Key: "restores", Unit: "count", Desc: "successful state restores"},
		{Key: "brownouts", Unit: "count", Desc: "supply brown-outs"},
		{Key: "harvested", Unit: "J", Desc: "energy harvested from the source"},
		{Key: "consumed", Unit: "J", Desc: "energy consumed by the node"},
	}
}

// labMetrics extracts the lab engine's structured objectives from one
// case result. Undefined values (energy/op and first-completion with
// zero completions) are omitted, per the ModelCase.Metrics contract.
func labMetrics(res lab.Result, duration float64) map[string]float64 {
	st := res.Stats
	m := map[string]float64{
		"completions": float64(res.Completions),
		"wrong":       float64(res.WrongResults),
		"throughput":  res.Throughput(duration),
		"snapshots":   float64(st.SavesStarted),
		"restores":    float64(st.Restores),
		"brownouts":   float64(st.BrownOuts),
		"harvested":   res.HarvestedJ,
		"consumed":    res.ConsumedJ,
	}
	if res.Completions > 0 {
		m["energy_per_op"] = res.EnergyPerCompletion()
		m["first_completion"] = res.FirstCompletion
	}
	return m
}

// Validate implements Model: the structural checks the lab engine needs
// — every name resolves, every param key is known, storage is sane.
func (labModel) Validate(s *Spec) error {
	if s.Workload == "" {
		return s.errf("workload is required")
	}
	if _, err := programs.Lookup(s.Workload); err != nil {
		return s.errf("%w", err)
	}
	switch s.Device.Profile {
	case "", "default", "unified-nv":
	default:
		return s.errf("device profile %q (valid: default, unified-nv)", s.Device.Profile)
	}
	if s.Source.Name == "" {
		return s.errf("source.name is required")
	}
	if _, err := source.Build(s.Source.Name, toParams(s.Source.Params)); err != nil {
		return s.errf("%w", err)
	}
	if _, _, err := transient.RuntimeFactory(s.runtimeName(), 1e-6, toParams(s.Runtime.Params)); err != nil {
		return s.errf("%w", err)
	}
	if s.Governor != nil {
		if _, err := powerneutral.BuildGovernor(s.Governor.Policy, toParams(s.Governor.Params)); err != nil {
			return s.errf("%w", err)
		}
	}
	if s.Storage.C <= 0 {
		return s.errf("storage.c must be positive (got %g F)", float64(s.Storage.C))
	}
	if _, err := s.modelParams(labModel{}); err != nil {
		return s.errf("%w", err)
	}
	return nil
}

// Engine implements Model: a blocking single-run engine without sweep
// axes, a wave-stepped sweep engine with them. The rendered bytes (and
// the golden corpus pinning them) are unchanged from the historical
// Run path.
func (labModel) Engine(sp *Spec, opts RunOptions, checkpoint []byte) (Engine, error) {
	if !sp.HasSweep() {
		// A cycle-level single run has no cheap interior checkpoint: its
		// restart marker resumes from zero, so any prior state is
		// (correctly) ignored.
		return &labSingleEngine{sp: sp, opts: opts}, nil
	}
	return newLabSweepEngine(sp, opts, checkpoint)
}

// labSingleEngine runs one cycle-level lab experiment in a single
// (blocking) Step. The merged stop channel is wired into the lab's
// abort hook, so cancellation and checkpoint requests both interrupt
// the run; a checkpoint suspends with a restart-from-zero marker —
// trading the partial work for the guarantee that the resumed run is
// byte-identical to an uninterrupted one.
type labSingleEngine struct {
	sp   *Spec
	opts RunOptions

	res  lab.Result
	rec  *trace.Recorder
	done bool
}

// labSingleState is the (empty) restart marker a single lab run
// checkpoints to.
type labSingleState struct {
	Restart bool `json:"restart"`
}

// Step implements Engine: run the whole experiment.
func (e *labSingleEngine) Step() error {
	s, err := e.sp.Setup()
	if err != nil {
		return err
	}
	s.Abort = e.opts.stop
	var rec *trace.Recorder
	if e.opts.Trace {
		rec = trace.NewRecorder()
		s.Recorder = rec
		s.RecordInterval = e.opts.interval()
	}
	res, err := lab.Run(s)
	if errors.Is(err, lab.ErrAborted) {
		if checkpointRequested(e.opts) {
			// The driver re-checks its channels before the next Step
			// and captures the restart marker.
			return nil
		}
		return sweep.ErrCanceled
	}
	if err != nil {
		return err
	}
	e.res, e.rec, e.done = res, rec, true
	if e.opts.Progress != nil {
		e.opts.Progress(1, 1)
	}
	return nil
}

// Done implements Engine.
func (e *labSingleEngine) Done() bool { return e.done }

// Progress implements Engine.
func (e *labSingleEngine) Progress() (int, int) {
	if e.done {
		return 1, 1
	}
	return 0, 1
}

// Checkpoint implements Engine: a restart-from-zero marker.
func (e *labSingleEngine) Checkpoint() ([]byte, error) {
	return json.Marshal(labSingleState{Restart: true})
}

// Report implements Engine.
func (e *labSingleEngine) Report() (*ModelReport, error) {
	var buf bytes.Buffer
	fmt.Fprintln(&buf, SingleTitle(e.sp))
	WriteSummary(&buf, e.res, float64(e.sp.Duration))
	return &ModelReport{
		Cases:      []ModelCase{{Name: e.sp.Name, Lab: e.res, Metrics: labMetrics(e.res, float64(e.sp.Duration))}},
		SimSeconds: float64(e.sp.Duration),
		Trace:      e.rec,
		Text:       buf.String(),
	}, nil
}

// labSweepEngine fans grid cases out over the worker pool one wave at a
// time: each Step runs up to one wave of workers cases through
// sweep.MapCases, so the driver's cancel/checkpoint checks run between
// waves. Its checkpoint is the completed-case prefix (the in-flight
// wave is discarded — per-case determinism makes the re-run
// byte-identical); the wave size never affects results, only the
// checkpoint granularity.
type labSweepEngine struct {
	sp   *Spec
	opts RunOptions

	cases   []sweep.Case
	results []lab.Result
	next    int // cases[:next] are complete
	wave    int
	rec     *trace.Recorder
}

// labSweepState is the serialised checkpoint of a labSweepEngine.
type labSweepState struct {
	Done    int             `json:"done"`
	Results []wireLabResult `json:"results"`
	Trace   []byte          `json:"trace,omitempty"`
}

// wireLabResult is lab.Result with the error field flattened to its
// message, so checkpoints survive a JSON round trip losslessly for
// everything the report renders.
type wireLabResult struct {
	Completions     int
	WrongResults    int
	CompletionTimes []float64
	Stats           mcu.Stats
	HarvestedJ      float64
	ConsumedJ       float64
	FinalV          float64
	RuntimeErr      string
	Steps           int
	FirstCompletion float64
}

// toWire flattens a lab.Result for serialisation.
func toWire(res lab.Result) wireLabResult {
	w := wireLabResult{
		Completions:     res.Completions,
		WrongResults:    res.WrongResults,
		CompletionTimes: res.CompletionTimes,
		Stats:           res.Stats,
		HarvestedJ:      res.HarvestedJ,
		ConsumedJ:       res.ConsumedJ,
		FinalV:          res.FinalV,
		Steps:           res.Steps,
		FirstCompletion: res.FirstCompletion,
	}
	if res.RuntimeErr != nil {
		w.RuntimeErr = res.RuntimeErr.Error()
	}
	return w
}

// fromWire reverses toWire.
func fromWire(w wireLabResult) lab.Result {
	res := lab.Result{
		Completions:     w.Completions,
		WrongResults:    w.WrongResults,
		CompletionTimes: w.CompletionTimes,
		Stats:           w.Stats,
		HarvestedJ:      w.HarvestedJ,
		ConsumedJ:       w.ConsumedJ,
		FinalV:          w.FinalV,
		Steps:           w.Steps,
		FirstCompletion: w.FirstCompletion,
	}
	if w.RuntimeErr != "" {
		res.RuntimeErr = errors.New(w.RuntimeErr)
	}
	return res
}

// newLabSweepEngine builds the sweep engine, restoring the completed
// prefix when checkpoint is non-nil.
func newLabSweepEngine(sp *Spec, opts RunOptions, checkpoint []byte) (*labSweepEngine, error) {
	cases := sp.Grid().Cases()
	wave := opts.Workers
	if wave <= 0 {
		wave = runtime.GOMAXPROCS(0)
	}
	e := &labSweepEngine{
		sp: sp, opts: opts,
		cases:   cases,
		results: make([]lab.Result, len(cases)),
		wave:    wave,
	}
	if checkpoint != nil {
		var st labSweepState
		if err := json.Unmarshal(checkpoint, &st); err != nil {
			return nil, sp.errf("sweep checkpoint: %w", err)
		}
		if st.Done < 0 || st.Done > len(cases) || len(st.Results) != st.Done {
			return nil, sp.errf("sweep checkpoint is inconsistent with the spec's %d cases", len(cases))
		}
		for i, w := range st.Results {
			e.results[i] = fromWire(w)
		}
		e.next = st.Done
		if st.Trace != nil {
			rec, err := trace.DecodeRecorder(st.Trace)
			if err != nil {
				return nil, sp.errf("sweep checkpoint trace: %w", err)
			}
			e.rec = rec
		}
	}
	return e, nil
}

// Step implements Engine: run the next wave of cases on the pool.
func (e *labSweepEngine) Step() error {
	end := e.next + e.wave
	if end > len(e.cases) {
		end = len(e.cases)
	}
	batch := e.cases[e.next:end]
	// On a sweep, Trace captures the first grid case (Case.Index == 0) —
	// one representative waveform, deterministically chosen, so sweep
	// shapes get a pinnable trace too. MapCases' completion barrier
	// orders the worker's writes before the read below.
	var rec *trace.Recorder
	base, total := e.next, len(e.cases)
	r := &sweep.Runner{Workers: e.opts.Workers, Cancel: e.opts.stop}
	if e.opts.Progress != nil {
		r.OnProgress = func(done, _ int) { e.opts.Progress(base+done, total) }
	}
	out, err := sweep.MapCases(r, batch, func(c sweep.Case) (lab.Result, error) {
		s, err := e.sp.SetupAt(c)
		if err != nil {
			return lab.Result{}, err
		}
		s.Abort = e.opts.stop
		if e.opts.Trace && c.Index == 0 {
			rec = trace.NewRecorder()
			s.Recorder = rec
			s.RecordInterval = e.opts.interval()
		}
		return lab.Run(s)
	})
	if err != nil {
		// A case interrupted mid-run by the stop channel surfaces as its
		// abort error; fold it into the uniform signals. A checkpoint
		// request discards the interrupted wave — cases[:next] stay
		// complete, and re-running the wave is deterministic.
		if errors.Is(err, lab.ErrAborted) || errors.Is(err, sweep.ErrCanceled) {
			if checkpointRequested(e.opts) {
				return nil
			}
			return sweep.ErrCanceled
		}
		return err
	}
	copy(e.results[e.next:end], out)
	if rec != nil {
		e.rec = rec
	}
	e.next = end
	return nil
}

// Done implements Engine.
func (e *labSweepEngine) Done() bool { return e.next >= len(e.cases) }

// Progress implements Engine.
func (e *labSweepEngine) Progress() (int, int) { return e.next, len(e.cases) }

// Checkpoint implements Engine: serialise the completed prefix and the
// case-0 trace (captured iff the first wave completed).
func (e *labSweepEngine) Checkpoint() ([]byte, error) {
	st := labSweepState{Done: e.next, Results: make([]wireLabResult, e.next)}
	for i := 0; i < e.next; i++ {
		st.Results[i] = toWire(e.results[i])
	}
	if e.rec != nil {
		st.Trace = trace.EncodeRecorder(e.rec)
	}
	return json.Marshal(st)
}

// Report implements Engine: render the sweep table.
func (e *labSweepEngine) Report() (*ModelReport, error) {
	var buf bytes.Buffer
	rep := &ModelReport{Sweep: true}
	fmt.Fprintf(&buf, "scenario %s: sweep over %s, %d cases\n",
		e.sp.Name, SweepAxesLabel(e.sp), len(e.cases))
	names := make([]string, len(e.cases))
	rep.Cases = make([]ModelCase, len(e.cases))
	for i, c := range e.cases {
		names[i] = c.Name
		d := caseDuration(e.sp, c)
		rep.Cases[i] = ModelCase{Name: c.Name, Lab: e.results[i], Metrics: labMetrics(e.results[i], d)}
		rep.SimSeconds += d
	}
	WriteSweepTable(&buf, "case", 32, names, e.results)
	rep.Trace = e.rec
	rep.Text = buf.String()
	return rep, nil
}

// caseDuration resolves one grid case's simulated duration: the spec's,
// unless a "duration" axis overrides it.
func caseDuration(sp *Spec, c sweep.Case) float64 {
	if v, ok := c.Values["duration"]; ok {
		if f, ok := v.(float64); ok {
			return f
		}
	}
	return float64(sp.Duration)
}
