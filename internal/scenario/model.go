// Scenario models: the dispatch layer that lets one declarative Spec
// surface drive heterogeneous simulation engines. The paper's Fig. 2
// taxonomy spans three system classes beyond the single-MCU lab engine —
// energy-neutral duty cycling (§II.A), charge-and-fire task-based
// transients (§II.B), and power-neutral MPSoCs (§II.C) — and each class
// is a Model registered here under a stable name. Spec.Model selects
// one ("" means "lab", preserving every pre-model spec and its content
// hash byte-for-byte); every front-end that executes specs through
// internal/result.RunSpec gains all registered models with no per-model
// plumbing.
//
// The model contract (docs/ARCHITECTURE.md "The model registry"):
//
//   - deterministic: a model's Run output depends only on the spec —
//     no wall clock, no unseeded randomness — because reports are
//     content-addressed by Spec.Hash() and golden-pinned;
//   - the model name folds into the canonical JSON (and so the hash)
//     exactly when set, so "model":"lab" and an absent model field are
//     distinct cache keys even though they run identically;
//   - Validate must resolve every name and reject every spec field the
//     model does not consume, so a typo fails loudly at parse time;
//   - Engine must honour RunOptions: report progress, capture a trace
//     when asked (single runs), and bound each Step so the driver's
//     Cancel/Checkpoint checks between steps stay responsive. The
//     driver (RunModel/ResumeModel in engine.go) owns the control
//     flow: cancellation returns sweep.ErrCanceled, a checkpoint
//     request suspends the run with *CheckpointError, and a resumed
//     run is byte-identical to an uninterrupted one.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/lab"
	"repro/internal/registry"
	"repro/internal/source"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// DefaultTraceInterval is the default sampling interval (simulated
// seconds) for captured traces, matching the CLI's -trace behaviour.
const DefaultTraceInterval = 1e-3

// RunOptions tunes one model execution (the scenario-level mirror of
// result.Options).
type RunOptions struct {
	// Workers is the sweep parallelism (0 = one per core). Only the lab
	// model fans sweep cases out in parallel; the analytic models run
	// their (cheap) cases sequentially.
	Workers int

	// Trace asks the model to capture its run as a trace.Recorder. It
	// applies to single-run specs only and must not perturb the
	// simulation.
	Trace bool

	// TraceInterval overrides the trace sampling interval (simulated
	// seconds); ≤0 selects DefaultTraceInterval.
	TraceInterval float64

	// Progress, if non-nil, is called after each case completes; single
	// runs report (1, 1).
	Progress func(done, total int)

	// Cancel, if non-nil, aborts the run when closed: the driver
	// returns sweep.ErrCanceled.
	Cancel <-chan struct{}

	// Checkpoint, if non-nil, suspends the run when closed: the driver
	// captures the engine's state and returns *CheckpointError carrying
	// a ResumeModel-ready envelope. Cancel wins when both have fired.
	Checkpoint <-chan struct{}

	// stop is the merged Cancel∪Checkpoint signal the driver wires
	// before constructing the engine — the abort channel for work that
	// blocks inside a single Step (the lab's cycle-level runs).
	stop <-chan struct{}
}

// interval resolves the effective trace sampling interval.
func (o RunOptions) interval() float64 {
	if o.TraceInterval > 0 {
		return o.TraceInterval
	}
	return DefaultTraceInterval
}

// ModelCase is one executed case of a model run.
type ModelCase struct {
	Name string
	// Lab holds the structured result for lab-model cases; other models
	// report through their rendered text and leave it zero.
	Lab lab.Result

	// Metrics holds the case's structured objectives — every number the
	// rendered report derives its cells from, keyed by the names the
	// model documents in Metrics(). All four models fill it, so the
	// design-space explorer (internal/explore) can optimise any model
	// without parsing report text. Keys whose value is undefined for the
	// case (energy_per_op with zero completions, first_fire when the
	// node never fired) are absent rather than NaN/Inf, so the map is
	// always JSON-encodable.
	Metrics map[string]float64
}

// MetricDoc documents one structured objective a model reports per case:
// its key in ModelCase.Metrics, its unit, and a one-line description.
// Discovery surfaces (ehsim -list, /v1/registry) render these so an
// exploration spec can be written against documented names.
type MetricDoc struct {
	Key  string
	Unit string
	Desc string
}

// ModelReport is one model execution's complete outcome, rendered and
// structured. internal/result wraps it with the spec's content address.
type ModelReport struct {
	// Sweep reports whether the spec expanded into a grid.
	Sweep bool

	// Text is the canonical rendering — byte-identical to what
	// `ehsim -scenario` prints on stdout for the same spec.
	Text string

	// Cases holds the per-case outcomes in grid order (one entry for a
	// single run).
	Cases []ModelCase

	// SimSeconds is the total simulated time across all cases.
	SimSeconds float64

	// Trace is the captured recorder (RunOptions.Trace, single runs
	// only); nil otherwise. Serialisation — the spec-hash header plus
	// CSV — is the caller's job, since the model does not know the hash.
	Trace *trace.Recorder
}

// Model is one pluggable scenario family. Implementations are
// registered with RegisterModel and resolved by Spec.Model.
type Model interface {
	// Desc is the one-line description for discovery output.
	Desc() string

	// Params documents the model-level tunables (Spec.Params). An empty
	// slice means the model takes none.
	Params() []registry.ParamDoc

	// Metrics documents the structured objectives the model fills into
	// every ModelCase.Metrics — the contract exploration specs are
	// written against. Keys marked "absent when undefined" in their
	// Desc may be missing from a given case's map.
	Metrics() []MetricDoc

	// Validate checks the model-specific spec constraints: names
	// resolve, required fields are present, fields the model does not
	// consume are absent. The common checks (duration, dt, sweep
	// bounds) run before dispatch in Spec.Validate.
	Validate(sp *Spec) error

	// Engine compiles the spec into a resumable stepper — a single run
	// without sweep axes, a grid sweep with them. checkpoint is nil
	// for a fresh run, or the model-private state a previous engine's
	// Checkpoint produced (envelope already verified by the driver).
	Engine(sp *Spec, opts RunOptions, checkpoint []byte) (Engine, error)
}

var models = registry.New[Model]("model")

// RegisterModel adds a model under name (panics on duplicates).
func RegisterModel(name string, m Model) { models.Register(name, m) }

// ModelNames returns every registered model name, sorted.
func ModelNames() []string { return models.Names() }

// LookupModel resolves name, or returns an error listing the known
// models.
func LookupModel(name string) (Model, error) { return models.Get(name) }

// ModelName returns the effective model name ("" selects "lab").
func (s *Spec) ModelName() string {
	if s.Model == "" {
		return "lab"
	}
	return s.Model
}

// modelParams resolves the spec's top-level params against the model's
// docs: defaults filled in, unknown keys rejected.
func (s *Spec) modelParams(m Model) (registry.Params, error) {
	return registry.Resolve("model", s.ModelName(), m.Params(), toParams(s.Params))
}

// canceled reports whether the cancel channel is closed.
func canceled(cancel <-chan struct{}) bool {
	if cancel == nil {
		return false
	}
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// rejectLabFields errors when the spec sets any of the lab-engine
// blocks a non-lab model does not consume. Listing them individually
// keeps the message actionable.
func (s *Spec) rejectLabFields() error {
	model := s.ModelName()
	if s.Workload != "" {
		return s.errf("model %q takes no workload (remove the workload field)", model)
	}
	if s.Device.FreqIndex != nil || s.Device.Profile != "" {
		return s.errf("model %q takes no device block", model)
	}
	if s.Runtime.Name != "" || len(s.Runtime.Params) > 0 {
		return s.errf("model %q takes no runtime block", model)
	}
	if s.Governor != nil {
		return s.errf("model %q takes no governor block", model)
	}
	return nil
}

// rejectStorage errors when the spec sets a storage block a model does
// not consume (models that size storage through their params).
func (s *Spec) rejectStorage() error {
	if s.Storage != (StorageSpec{}) {
		return s.errf("model %q takes no storage block (size storage through params)", s.ModelName())
	}
	return nil
}

// buildPowerSource resolves the spec's source and requires a power-kind
// entry (an available-power waveform P(t)) — the budget the analytic
// models consume. Voltage-kind sources are rejected with the list of
// power sources, so the fix is one error message away.
func (s *Spec) buildPowerSource() (source.PowerSource, error) {
	if s.Source.Name == "" {
		return nil, s.errf("source.name is required")
	}
	e, err := source.Lookup(s.Source.Name)
	if err != nil {
		return nil, s.errf("%w", err)
	}
	if !e.Power {
		var powered []string
		for _, n := range source.Names() {
			if pe, _ := source.Lookup(n); pe.Power {
				powered = append(powered, n)
			}
		}
		return nil, s.errf("model %q needs a power source, but %q supplies a voltage waveform (power sources: %s)",
			s.ModelName(), s.Source.Name, strings.Join(powered, ", "))
	}
	b, err := source.Build(s.Source.Name, toParams(s.Source.Params))
	if err != nil {
		return nil, s.errf("%w", err)
	}
	return b.P, nil
}

// At returns a sweep-free copy of the spec with the case's coordinates
// applied — the exported face of the expansion step, for callers
// (internal/explore) that stream Grid().CaseAt(i) cases themselves.
func (s *Spec) At(c sweep.Case) (*Spec, error) { return s.at(c) }

// at returns a sweep-free copy of the spec with the case's coordinates
// applied — the shared expansion step behind SetupAt and the analytic
// models' sweep loops.
func (s *Spec) at(c sweep.Case) (*Spec, error) {
	cs := s.clone()
	cs.Sweep = nil
	for _, ax := range s.Sweep {
		v, ok := c.Values[ax.Param]
		if !ok {
			return nil, s.errf("case %q carries no value for axis %q", c.Name, ax.Param)
		}
		if err := cs.Apply(ax.Param, v); err != nil {
			return nil, s.errf("case %q: %w", c.Name, err)
		}
	}
	return cs, nil
}

// tableSweepEngine is the shared sweep engine for the analytic
// (non-lab) models: expand the grid, run one case per Step sequentially
// (the analytic engines are orders of magnitude cheaper than the lab's
// cycle-level stepping, so parallel fan-out would be all overhead), and
// render a comparison table with the model's columns. Its checkpoint is
// the completed prefix — the cursor, the rendered cells, and the
// accumulated metrics — so a resumed sweep re-runs nothing.
type tableSweepEngine struct {
	sp      *Spec
	opts    RunOptions
	header  []string
	runCase func(cs *Spec) (cells []string, metrics map[string]float64, simSeconds float64, err error)

	cases      []sweep.Case
	next       int
	rows       [][]string
	names      []string
	mcases     []ModelCase
	simSeconds float64
}

// tableSweepState is the serialised checkpoint of a tableSweepEngine.
type tableSweepState struct {
	Next       int         `json:"next"`
	Rows       [][]string  `json:"rows"`
	Names      []string    `json:"names"`
	Cases      []ModelCase `json:"cases"`
	SimSeconds float64     `json:"simSeconds"`
}

// newTableSweepEngine builds the sweep engine, restoring the completed
// prefix when checkpoint is non-nil.
func newTableSweepEngine(sp *Spec, opts RunOptions, header []string,
	runCase func(cs *Spec) ([]string, map[string]float64, float64, error),
	checkpoint []byte) (*tableSweepEngine, error) {
	cases := sp.Grid().Cases()
	e := &tableSweepEngine{
		sp: sp, opts: opts, header: header, runCase: runCase,
		cases: cases,
		rows:  make([][]string, len(cases)),
		names: make([]string, len(cases)),
	}
	if checkpoint != nil {
		var st tableSweepState
		if err := json.Unmarshal(checkpoint, &st); err != nil {
			return nil, sp.errf("sweep checkpoint: %w", err)
		}
		if st.Next < 0 || st.Next > len(cases) ||
			len(st.Rows) != st.Next || len(st.Names) != st.Next || len(st.Cases) != st.Next {
			return nil, sp.errf("sweep checkpoint is inconsistent with the spec's %d cases", len(cases))
		}
		copy(e.rows, st.Rows)
		copy(e.names, st.Names)
		e.mcases = st.Cases
		e.next = st.Next
		e.simSeconds = st.SimSeconds
	}
	return e, nil
}

// Step implements Engine: run the next case.
func (e *tableSweepEngine) Step() error {
	c := e.cases[e.next]
	cs, err := e.sp.at(c)
	if err != nil {
		return err
	}
	cells, metrics, sim, err := e.runCase(cs)
	if err != nil {
		// A case interrupted mid-run by a checkpoint request is
		// discarded: the completed prefix stays intact, and re-running
		// the case on resume is deterministic.
		if errors.Is(err, sweep.ErrCanceled) && checkpointRequested(e.opts) {
			return nil
		}
		return err
	}
	e.rows[e.next], e.names[e.next] = cells, c.Name
	e.simSeconds += sim
	e.mcases = append(e.mcases, ModelCase{Name: c.Name, Metrics: metrics})
	e.next++
	if e.opts.Progress != nil {
		e.opts.Progress(e.next, len(e.cases))
	}
	return nil
}

// Done implements Engine.
func (e *tableSweepEngine) Done() bool { return e.next >= len(e.cases) }

// Progress implements Engine.
func (e *tableSweepEngine) Progress() (int, int) { return e.next, len(e.cases) }

// Checkpoint implements Engine: serialise the completed prefix.
func (e *tableSweepEngine) Checkpoint() ([]byte, error) {
	return json.Marshal(tableSweepState{
		Next:       e.next,
		Rows:       e.rows[:e.next],
		Names:      e.names[:e.next],
		Cases:      e.mcases,
		SimSeconds: e.simSeconds,
	})
}

// Report implements Engine: render the comparison table.
func (e *tableSweepEngine) Report() (*ModelReport, error) {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "scenario %s: sweep over %s, %d cases\n",
		e.sp.Name, SweepAxesLabel(e.sp), len(e.cases))
	writeCellTable(&buf, "case", 32, e.header, e.names, e.rows)
	return &ModelReport{
		Sweep:      true,
		Text:       buf.String(),
		Cases:      e.mcases,
		SimSeconds: e.simSeconds,
	}, nil
}

// writeCellTable renders a generic sweep table: a header row, then one
// row of pre-formatted cells per case. width sets the first column's
// width, col0 its title.
func writeCellTable(w io.Writer, col0 string, width int, header, names []string, rows [][]string) {
	fmt.Fprintf(w, "%-*s", width, col0)
	for _, h := range header {
		fmt.Fprintf(w, " %-12s", h)
	}
	fmt.Fprintln(w)
	for i, cells := range rows {
		fmt.Fprintf(w, "%-*s", width, names[i])
		for _, c := range cells {
			fmt.Fprintf(w, " %-12s", c)
		}
		fmt.Fprintln(w)
	}
}
