// Package trace records time series produced by the simulator and renders
// them as CSV files, terminal sparklines, or multi-row ASCII plots.
//
// Every figure reproduced from the paper is ultimately a trace (or a set of
// traces) captured by this package; the experiment harness serialises them
// so that downstream plotting tools can regenerate the published artwork.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is a single (time, value) sample.
type Point struct {
	T float64 // seconds
	V float64
}

// Series is an append-only time series with a name and unit annotation.
type Series struct {
	Name   string
	Unit   string
	Points []Point

	// lastT is the timestamp of the last sample stored through a
	// Recorder, the state behind its minimum-interval decimation.
	lastT float64
}

// NewSeries returns an empty named series.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit, lastT: math.Inf(-1)}
}

// Append adds a sample at time t.
func (s *Series) Append(t, v float64) {
	s.Points = append(s.Points, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.Points[i] }

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Values returns a copy of the sample values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.V
	}
	return vs
}

// Times returns a copy of the sample timestamps.
func (s *Series) Times() []float64 {
	ts := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ts[i] = p.T
	}
	return ts
}

// Stats summarises a series.
type Stats struct {
	N               int
	Min, Max        float64
	Mean, RMS       float64
	First, Last     float64
	TMin, TMax      float64 // time range covered
	MinAt, MaxAt    float64 // timestamps of extrema
	Integral        float64 // trapezoidal ∫v dt over the series
	CrossingsRising int     // rising crossings of the mean
}

// Summarize computes summary statistics. Integral uses the trapezoid rule,
// so it is exact for piecewise-linear signals.
func (s *Series) Summarize() Stats {
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	st.N = len(s.Points)
	if st.N == 0 {
		st.Min, st.Max = 0, 0
		return st
	}
	var sum, sumSq float64
	for i, p := range s.Points {
		if p.V < st.Min {
			st.Min, st.MinAt = p.V, p.T
		}
		if p.V > st.Max {
			st.Max, st.MaxAt = p.V, p.T
		}
		sum += p.V
		sumSq += p.V * p.V
		if i > 0 {
			prev := s.Points[i-1]
			st.Integral += 0.5 * (p.V + prev.V) * (p.T - prev.T)
		}
	}
	st.Mean = sum / float64(st.N)
	st.RMS = math.Sqrt(sumSq / float64(st.N))
	st.First = s.Points[0].V
	st.Last = s.Points[st.N-1].V
	st.TMin = s.Points[0].T
	st.TMax = s.Points[st.N-1].T
	for i := 1; i < st.N; i++ {
		if s.Points[i-1].V < st.Mean && s.Points[i].V >= st.Mean {
			st.CrossingsRising++
		}
	}
	return st
}

// Sample returns the linearly interpolated value at time t. Outside the
// covered range it clamps to the first/last sample. An empty series
// returns 0.
func (s *Series) Sample(t float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	if t <= s.Points[0].T {
		return s.Points[0].V
	}
	if t >= s.Points[n-1].T {
		return s.Points[n-1].V
	}
	// Binary search for the bracketing interval.
	i := sort.Search(n, func(i int) bool { return s.Points[i].T > t })
	a, b := s.Points[i-1], s.Points[i]
	if b.T == a.T {
		return b.V
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V)
}

// Decimate returns a copy of the series keeping at most n points, chosen by
// stride. It preserves the first and last samples. If the series already
// has ≤ n points, the copy is exact; n == 1 keeps the last sample, and
// n ≤ 0 yields an empty copy.
func (s *Series) Decimate(n int) *Series {
	out := NewSeries(s.Name, s.Unit)
	ln := len(s.Points)
	if n <= 0 || ln == 0 {
		return out
	}
	if ln <= n {
		out.Points = append(out.Points, s.Points...)
		return out
	}
	if n == 1 {
		// The stride formula below needs n ≥ 2 (it divides by n-1); a
		// one-point decimation keeps the most recent sample.
		out.Points = append(out.Points, s.Points[ln-1])
		return out
	}
	stride := float64(ln-1) / float64(n-1)
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * stride))
		if idx >= ln {
			idx = ln - 1
		}
		out.Points = append(out.Points, s.Points[idx])
	}
	return out
}

// Recorder collects multiple named series sampled on a shared clock, with a
// configurable minimum interval between stored samples to bound memory.
type Recorder struct {
	series   map[string]*Series
	order    []string
	interval float64 // minimum spacing between stored samples; 0 = keep all
}

// NewRecorder returns a Recorder storing every sample. Use SetInterval to
// decimate on the fly.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// SetInterval sets the minimum simulated-time spacing between stored
// samples for all series. Samples arriving sooner are dropped.
func (r *Recorder) SetInterval(dt float64) { r.interval = dt }

// Interval returns the minimum spacing between stored samples (0 = keep
// all).
func (r *Recorder) Interval() float64 { return r.interval }

// Record appends a sample to the named series, creating it on first use.
func (r *Recorder) Record(name, unit string, t, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = r.create(name, unit)
	}
	r.record(s, t, v)
}

// create registers a new series under the recorder.
func (r *Recorder) create(name, unit string) *Series {
	s := NewSeries(name, unit)
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// record applies the interval gate and appends.
func (r *Recorder) record(s *Series, t, v float64) {
	if r.interval > 0 && t-s.lastT < r.interval && len(s.Points) > 0 {
		return
	}
	s.lastT = t
	s.Append(t, v)
}

// Channel is a pre-resolved append handle for one named series: Record
// without the per-sample map lookup, with the recorder's interval gate
// still applied. Hot loops that sample the same few series every step
// (the lab's trace triple) resolve their channels once and record
// through them.
type Channel struct {
	r *Recorder
	s *Series
}

// Channel returns an append handle for the named series, creating it
// (in recorder column order) on first use.
func (r *Recorder) Channel(name, unit string) *Channel {
	s, ok := r.series[name]
	if !ok {
		s = r.create(name, unit)
	}
	return &Channel{r: r, s: s}
}

// Record appends a sample, subject to the recorder's interval gate —
// exactly equivalent to Recorder.Record on the channel's series.
func (c *Channel) Record(t, v float64) { c.r.record(c.s, t, v) }

// LastT returns the timestamp of the last stored sample (-Inf if none) —
// what the interval gate will measure the next sample against.
func (c *Channel) LastT() float64 { return c.s.lastT }

// Series returns the named series, or nil if it was never recorded.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns series names in first-recorded order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// WriteCSV writes all series as aligned CSV columns (time, then one column
// per series, values linearly interpolated onto the union of timestamps of
// the first series). For experiment output where all series share a clock
// this is exact.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if len(r.order) == 0 {
		_, err := fmt.Fprintln(w, "t")
		return err
	}
	header := []string{"t"}
	for _, name := range r.order {
		s := r.series[name]
		col := name
		if s.Unit != "" {
			col = fmt.Sprintf("%s(%s)", name, s.Unit)
		}
		header = append(header, col)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	base := r.series[r.order[0]]
	for _, p := range base.Points {
		row := make([]string, 0, len(r.order)+1)
		row = append(row, formatFloat(p.T))
		for _, name := range r.order {
			row = append(row, formatFloat(r.series[name].Sample(p.T)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.9g", v)
}
