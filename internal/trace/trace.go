// Package trace records time series produced by the simulator and renders
// them as CSV files, terminal sparklines, or multi-row ASCII plots.
//
// Every figure reproduced from the paper is ultimately a trace (or a set of
// traces) captured by this package; the experiment harness serialises them
// so that downstream plotting tools can regenerate the published artwork.
//
// Storage is columnar: a Series keeps its timestamps and values in two
// parallel []float64 arrays, summarised in fixed-size blocks
// (min/max/first/last per blockSize samples). The column layout keeps the
// append path allocation-cheap, and the block summaries let windowed
// decimation (Window, the service's /trace?from=&to=&points= path) answer
// bucket min/max queries by touching O(points + samples/blockSize) data
// instead of rescanning every stored sample.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is a single (time, value) sample.
type Point struct {
	T float64 // seconds
	V float64
}

// blockSize is the block-summary granularity in samples. A power of two
// keeps the index arithmetic to shifts; 256 samples per summary bounds a
// windowed query's partial-block scans at two blocks per bucket edge
// while keeping the summary overhead below 2% of the column storage.
const blockSize = 256

// blockSummary aggregates one blockSize run of samples.
type blockSummary struct {
	min, max    float64
	first, last float64
}

// Series is an append-only time series with a name and unit annotation.
// Samples live in parallel time/value columns with per-block summaries;
// timestamps must be appended in non-decreasing order (every producer in
// the simulator samples a forward-moving clock).
type Series struct {
	Name string
	Unit string

	ts, vs []float64
	blocks []blockSummary

	// lastT is the timestamp of the last sample stored through a
	// Recorder, the state behind its minimum-interval decimation.
	lastT float64
}

// NewSeries returns an empty named series.
func NewSeries(name, unit string) *Series {
	return &Series{Name: name, Unit: unit, lastT: math.Inf(-1)}
}

// Append adds a sample at time t, maintaining the block summaries.
func (s *Series) Append(t, v float64) {
	i := len(s.vs)
	s.ts = append(s.ts, t)
	s.vs = append(s.vs, v)
	if i%blockSize == 0 {
		s.blocks = append(s.blocks, blockSummary{min: v, max: v, first: v, last: v})
		return
	}
	b := &s.blocks[i/blockSize]
	if v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
	b.last = v
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.vs) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return Point{T: s.ts[i], V: s.vs[i]} }

// T returns the i-th sample's timestamp.
func (s *Series) T(i int) float64 { return s.ts[i] }

// V returns the i-th sample's value.
func (s *Series) V(i int) float64 { return s.vs[i] }

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	n := len(s.vs)
	if n == 0 {
		return Point{}
	}
	return Point{T: s.ts[n-1], V: s.vs[n-1]}
}

// Values returns a copy of the sample values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.vs))
	copy(vs, s.vs)
	return vs
}

// Times returns a copy of the sample timestamps.
func (s *Series) Times() []float64 {
	ts := make([]float64, len(s.ts))
	copy(ts, s.ts)
	return ts
}

// Stats summarises a series.
type Stats struct {
	N               int
	Min, Max        float64
	Mean, RMS       float64
	First, Last     float64
	TMin, TMax      float64 // time range covered
	MinAt, MaxAt    float64 // timestamps of extrema
	Integral        float64 // trapezoidal ∫v dt over the series
	CrossingsRising int     // rising crossings of the mean
}

// Summarize computes summary statistics. Integral uses the trapezoid rule,
// so it is exact for piecewise-linear signals.
func (s *Series) Summarize() Stats {
	st := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	st.N = len(s.vs)
	if st.N == 0 {
		st.Min, st.Max = 0, 0
		return st
	}
	var sum, sumSq float64
	for i, v := range s.vs {
		t := s.ts[i]
		if v < st.Min {
			st.Min, st.MinAt = v, t
		}
		if v > st.Max {
			st.Max, st.MaxAt = v, t
		}
		sum += v
		sumSq += v * v
		if i > 0 {
			st.Integral += 0.5 * (v + s.vs[i-1]) * (t - s.ts[i-1])
		}
	}
	st.Mean = sum / float64(st.N)
	st.RMS = math.Sqrt(sumSq / float64(st.N))
	st.First = s.vs[0]
	st.Last = s.vs[st.N-1]
	st.TMin = s.ts[0]
	st.TMax = s.ts[st.N-1]
	for i := 1; i < st.N; i++ {
		if s.vs[i-1] < st.Mean && s.vs[i] >= st.Mean {
			st.CrossingsRising++
		}
	}
	return st
}

// Sample returns the linearly interpolated value at time t. Outside the
// covered range it clamps to the first/last sample — a query at or
// before the first timestamp returns the first value, at or after the
// last timestamp the last value — so lookups never index outside the
// columns. An empty series returns 0.
func (s *Series) Sample(t float64) float64 {
	n := len(s.vs)
	if n == 0 {
		return 0
	}
	if t <= s.ts[0] {
		return s.vs[0]
	}
	if t >= s.ts[n-1] {
		return s.vs[n-1]
	}
	// Binary search for the bracketing interval.
	i := sort.Search(n, func(i int) bool { return s.ts[i] > t })
	a, b := s.ts[i-1], s.ts[i]
	if b == a {
		return s.vs[i]
	}
	frac := (t - a) / (b - a)
	return s.vs[i-1] + frac*(s.vs[i]-s.vs[i-1])
}

// Decimate returns a copy of the series keeping at most n points, chosen by
// stride. It preserves the first and last samples, and the chosen source
// indices are strictly increasing — the rounded stride walk can land two
// output slots on the same source index when n approaches the length, and
// a duplicated index would emit duplicate timestamps into served CSV. If
// the series already has ≤ n points, the copy is exact; n == 1 keeps the
// last sample, and n ≤ 0 yields an empty copy.
func (s *Series) Decimate(n int) *Series {
	out := NewSeries(s.Name, s.Unit)
	ln := len(s.vs)
	if n <= 0 || ln == 0 {
		return out
	}
	if ln <= n {
		for i := 0; i < ln; i++ {
			out.Append(s.ts[i], s.vs[i])
		}
		return out
	}
	if n == 1 {
		// The stride formula below needs n ≥ 2 (it divides by n-1); a
		// one-point decimation keeps the most recent sample.
		out.Append(s.ts[ln-1], s.vs[ln-1])
		return out
	}
	stride := float64(ln-1) / float64(n-1)
	prev := -1
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * stride))
		if idx <= prev {
			idx = prev + 1
		}
		if idx >= ln {
			idx = ln - 1
		}
		out.Append(s.ts[idx], s.vs[idx])
		prev = idx
	}
	return out
}

// searchT returns the smallest index whose timestamp is ≥ t (len if none).
func (s *Series) searchT(t float64) int {
	return sort.SearchFloat64s(s.ts, t)
}

// rangeMinMax returns the min and max value over the index range [i, j).
// Interior full blocks are answered from their summaries, so the scan
// touches at most 2·blockSize samples plus (j−i)/blockSize summaries.
// The range must be non-empty.
func (s *Series) rangeMinMax(i, j int) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	scan := func(a, b int) {
		for k := a; k < b; k++ {
			v := s.vs[k]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	firstFull := (i + blockSize - 1) / blockSize // first block fully inside
	lastFull := j / blockSize                    // first block past the full run
	if firstFull >= lastFull {
		scan(i, j)
		return lo, hi
	}
	scan(i, firstFull*blockSize)
	for b := firstFull; b < lastFull; b++ {
		if s.blocks[b].min < lo {
			lo = s.blocks[b].min
		}
		if s.blocks[b].max > hi {
			hi = s.blocks[b].max
		}
	}
	scan(lastFull*blockSize, j)
	return lo, hi
}

// Recorder collects multiple named series sampled on a shared clock, with a
// configurable minimum interval between stored samples to bound memory.
type Recorder struct {
	series   map[string]*Series
	order    []string
	interval float64 // minimum spacing between stored samples; 0 = keep all
}

// NewRecorder returns a Recorder storing every sample. Use SetInterval to
// decimate on the fly.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// SetInterval sets the minimum simulated-time spacing between stored
// samples for all series. Samples arriving sooner are dropped.
func (r *Recorder) SetInterval(dt float64) { r.interval = dt }

// Interval returns the minimum spacing between stored samples (0 = keep
// all).
func (r *Recorder) Interval() float64 { return r.interval }

// Record appends a sample to the named series, creating it on first use.
func (r *Recorder) Record(name, unit string, t, v float64) {
	s, ok := r.series[name]
	if !ok {
		s = r.create(name, unit)
	}
	r.record(s, t, v)
}

// create registers a new series under the recorder.
func (r *Recorder) create(name, unit string) *Series {
	s := NewSeries(name, unit)
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// record applies the interval gate and appends.
func (r *Recorder) record(s *Series, t, v float64) {
	if r.interval > 0 && t-s.lastT < r.interval && len(s.vs) > 0 {
		return
	}
	s.lastT = t
	s.Append(t, v)
}

// Channel is a pre-resolved append handle for one named series: Record
// without the per-sample map lookup, with the recorder's interval gate
// still applied. Hot loops that sample the same few series every step
// (the lab's trace triple) resolve their channels once and record
// through them.
type Channel struct {
	r *Recorder
	s *Series
}

// Channel returns an append handle for the named series, creating it
// (in recorder column order) on first use.
func (r *Recorder) Channel(name, unit string) *Channel {
	s, ok := r.series[name]
	if !ok {
		s = r.create(name, unit)
	}
	return &Channel{r: r, s: s}
}

// Record appends a sample, subject to the recorder's interval gate —
// exactly equivalent to Recorder.Record on the channel's series.
func (c *Channel) Record(t, v float64) { c.r.record(c.s, t, v) }

// LastT returns the timestamp of the last stored sample (-Inf if none) —
// what the interval gate will measure the next sample against.
func (c *Channel) LastT() float64 { return c.s.lastT }

// Series returns the named series, or nil if it was never recorded.
func (r *Recorder) Series(name string) *Series { return r.series[name] }

// Names returns series names in first-recorded order.
func (r *Recorder) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// WriteCSV writes all series as aligned CSV columns (time, then one column
// per series, values linearly interpolated onto the union of timestamps of
// the first series). For experiment output where all series share a clock
// this is exact.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if len(r.order) == 0 {
		_, err := fmt.Fprintln(w, "t")
		return err
	}
	header := []string{"t"}
	for _, name := range r.order {
		s := r.series[name]
		col := name
		if s.Unit != "" {
			col = fmt.Sprintf("%s(%s)", name, s.Unit)
		}
		header = append(header, col)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	base := r.series[r.order[0]]
	for i := 0; i < base.Len(); i++ {
		t := base.ts[i]
		row := make([]string, 0, len(r.order)+1)
		row = append(row, formatFloat(t))
		for _, name := range r.order {
			row = append(row, formatFloat(r.series[name].Sample(t)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.9g", v)
}
