package trace

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// refWindow is a brute-force reference decimator: per bucket, linear scan
// of every sample. Window must agree with it exactly.
func refWindow(s *Series, from, to float64, points int) []Bucket {
	if points < 1 || !(to > from) {
		return nil
	}
	width := (to - from) / float64(points)
	out := make([]Bucket, points)
	for b := 0; b < points; b++ {
		start := from + float64(b)*width
		end := from + float64(b+1)*width
		if b == points-1 {
			end = math.Nextafter(to, math.Inf(1))
		}
		bk := Bucket{T: start, Min: math.Inf(1), Max: math.Inf(-1)}
		for i := 0; i < s.Len(); i++ {
			p := s.At(i)
			if p.T >= start && p.T < end {
				if p.V < bk.Min {
					bk.Min = p.V
				}
				if p.V > bk.Max {
					bk.Max = p.V
				}
				bk.N++
			}
		}
		if bk.N == 0 {
			bk.Min, bk.Max = 0, 0
			if s.Len() > 0 {
				v := s.Sample(start)
				bk.Min, bk.Max = v, v
			}
		}
		out[b] = bk
	}
	return out
}

func TestWindowMatchesBruteForce(t *testing.T) {
	s := NewSeries("sig", "V")
	// Irregular spacing and a value pattern with sharp spikes so block
	// summaries are actually load-bearing.
	n := 10_000
	tm := 0.0
	for i := 0; i < n; i++ {
		tm += 0.5 + 0.5*math.Abs(math.Sin(float64(i)))
		v := math.Sin(float64(i) / 37)
		if i%997 == 0 {
			v = 50 // spike
		}
		s.Append(tm, v)
	}
	total := s.Last().T
	cases := []struct {
		from, to float64
		points   int
	}{
		{0, total, 100},
		{0, total, 1},
		{0, total, 1000},
		{total * 0.25, total * 0.75, 333},
		{total * 0.9, total * 1.1, 50},  // extends past the data
		{total + 10, total + 20, 10},    // entirely past the data
		{-20, -10, 10},                  // entirely before the data
		{s.At(3).T, s.At(4).T, 7},       // sub-sample-interval window
		{s.At(500).T, s.At(500).T, 10},  // to == from → nil
		{total * 0.1, total * 0.11, 64}, // narrow interior
	}
	for ci, c := range cases {
		got := s.Window(c.from, c.to, c.points)
		want := refWindow(s, c.from, c.to, c.points)
		if len(got) != len(want) {
			t.Fatalf("case %d: got %d buckets, want %d", ci, len(got), len(want))
		}
		for b := range got {
			if got[b] != want[b] {
				t.Fatalf("case %d bucket %d: got %+v, want %+v", ci, b, got[b], want[b])
			}
		}
	}
}

func TestWindowEmptySeries(t *testing.T) {
	s := NewSeries("e", "")
	got := s.Window(0, 10, 4)
	if len(got) != 4 {
		t.Fatalf("got %d buckets, want 4", len(got))
	}
	for _, bk := range got {
		if bk.N != 0 || bk.Min != 0 || bk.Max != 0 {
			t.Fatalf("empty series bucket = %+v, want zero fill", bk)
		}
	}
}

func TestWindowIncludesEndpointSample(t *testing.T) {
	s := NewSeries("x", "")
	s.Append(0, 1)
	s.Append(5, 2)
	s.Append(10, 9)
	got := s.Window(0, 10, 2)
	if got[1].Max != 9 || got[1].N != 2 {
		t.Fatalf("final bucket dropped the t==to sample: %+v", got[1])
	}
}

func TestWriteWindowCSV(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Record("a", "V", float64(i), float64(i%10))
		r.Record("b", "", float64(i), -float64(i))
	}
	var b strings.Builder
	if err := r.WriteWindowCSV(&b, 0, 99, 4); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != "t,a_min(V),a_max(V),b_min,b_max" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("got %d rows, want 4 + header", len(lines)-1)
	}
	if !strings.HasPrefix(lines[1], "0,0,9,") {
		t.Fatalf("row 1 = %q, want a_min=0 a_max=9", lines[1])
	}
}

func TestTimeRange(t *testing.T) {
	r := NewRecorder()
	if _, _, ok := r.TimeRange(); ok {
		t.Fatal("empty recorder reported a time range")
	}
	r.Record("a", "", 2, 0)
	r.Record("a", "", 7, 0)
	r.Record("b", "", 1, 0)
	from, to, ok := r.TimeRange()
	if !ok || from != 1 || to != 7 {
		t.Fatalf("TimeRange = %v,%v,%v, want 1,7,true", from, to, ok)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	r := NewRecorder()
	r.SetInterval(0.25)
	for i := 0; i < 1000; i++ {
		tm := float64(i) * 0.1
		r.Record("vcc", "V", tm, math.Sin(tm)*1e-7+2.5)
		r.Record("mode", "", tm, float64(i%3))
	}
	blob := EncodeRecorder(r)
	back, err := DecodeRecorder(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.Names(), r.Names(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("names %v != %v", got, want)
	}
	if back.Interval() != r.Interval() {
		t.Fatalf("interval %v != %v", back.Interval(), r.Interval())
	}
	var a, b strings.Builder
	if err := r.WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("CSV render differs after codec round trip")
	}
	// The interval gate state must survive: a sample arriving sooner
	// than the interval after the last stored one is dropped by both.
	last := r.Series("vcc").Last()
	r.Record("vcc", "V", last.T+0.01, 99)
	back.Record("vcc", "V", last.T+0.01, 99)
	if r.Series("vcc").Len() != back.Series("vcc").Len() {
		t.Fatal("interval gate state diverged after round trip")
	}
	// Window answers must be bit-identical too.
	w1 := r.Series("vcc").Window(0, 100, 50)
	w2 := back.Series("vcc").Window(0, 100, 50)
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("window bucket %d differs after round trip", i)
		}
	}
}

func TestCodecRejectsCorruptBlobs(t *testing.T) {
	r := NewRecorder()
	r.Record("a", "V", 1, 2)
	blob := EncodeRecorder(r)
	cases := map[string][]byte{
		"empty":       {},
		"truncated":   blob[:len(blob)-4],
		"bad magic":   append([]byte{9, 9, 9, 9}, blob[4:]...),
		"trailing":    append(append([]byte{}, blob...), 0xff),
		"bad version": append(append([]byte{}, blob[:4]...), append([]byte{0xff, 0xff}, blob[6:]...)...),
	}
	for name, b := range cases {
		if _, err := DecodeRecorder(b); err == nil {
			t.Errorf("%s blob decoded without error", name)
		}
	}
}

// BenchmarkWindow1M demonstrates the acceptance criterion: windowed
// decimation over a ≥1M-sample series costs O(points + samples/blockSize),
// not O(samples). Compare with BenchmarkWindowBruteForce1M.
func BenchmarkWindow1M(b *testing.B) {
	s := synth1M()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Window(0, 1e6, 500); len(got) != 500 {
			b.Fatal("bad bucket count")
		}
	}
}

func BenchmarkWindowBruteForce1M(b *testing.B) {
	s := synth1M()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := refWindow(s, 0, 1e6, 500); len(got) != 500 {
			b.Fatal("bad bucket count")
		}
	}
}

func synth1M() *Series {
	s := NewSeries("big", "V")
	for i := 0; i < 1_200_000; i++ {
		s.Append(float64(i), math.Sin(float64(i)/1000))
	}
	return s
}
