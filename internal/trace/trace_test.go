package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func ramp(n int) *Series {
	s := NewSeries("ramp", "V")
	for i := 0; i < n; i++ {
		s.Append(float64(i), float64(i))
	}
	return s
}

func TestSeriesAppendAndAccessors(t *testing.T) {
	s := NewSeries("v", "V")
	if s.Len() != 0 {
		t.Fatal("new series should be empty")
	}
	if (s.Last() != Point{}) {
		t.Fatal("empty Last should be zero Point")
	}
	s.Append(0, 1.5)
	s.Append(1, 2.5)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.At(1).V != 2.5 || s.Last().T != 1 {
		t.Error("accessors returned wrong sample")
	}
	if got := s.Values(); len(got) != 2 || got[0] != 1.5 {
		t.Errorf("Values = %v", got)
	}
	if got := s.Times(); len(got) != 2 || got[1] != 1 {
		t.Errorf("Times = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	s := NewSeries("x", "")
	for i, v := range []float64{1, 3, 2, 5, 4} {
		s.Append(float64(i), v)
	}
	st := s.Summarize()
	if st.Min != 1 || st.Max != 5 {
		t.Errorf("min/max = %g/%g", st.Min, st.Max)
	}
	if st.Mean != 3 {
		t.Errorf("mean = %g, want 3", st.Mean)
	}
	if st.MaxAt != 3 {
		t.Errorf("MaxAt = %g, want 3", st.MaxAt)
	}
	if st.First != 1 || st.Last != 4 {
		t.Errorf("first/last = %g/%g", st.First, st.Last)
	}
	// Trapezoid integral of the polyline (1,3,2,5,4) with dt=1:
	// (1+3)/2 + (3+2)/2 + (2+5)/2 + (5+4)/2 = 2+2.5+3.5+4.5 = 12.5
	if math.Abs(st.Integral-12.5) > 1e-12 {
		t.Errorf("integral = %g, want 12.5", st.Integral)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := NewSeries("e", "").Summarize()
	if st.N != 0 || st.Min != 0 || st.Max != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestSummarizeIntegralConstant(t *testing.T) {
	// Integral of a constant 2.0 over [0, 10] must be 20.
	s := NewSeries("c", "")
	for i := 0; i <= 10; i++ {
		s.Append(float64(i), 2)
	}
	if got := s.Summarize().Integral; math.Abs(got-20) > 1e-12 {
		t.Errorf("integral = %g, want 20", got)
	}
}

func TestSampleInterpolation(t *testing.T) {
	s := NewSeries("v", "V")
	s.Append(0, 0)
	s.Append(2, 4)
	s.Append(4, 0)
	tests := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {1, 2}, {2, 4}, {3, 2}, {4, 0}, {10, 0},
	}
	for _, tt := range tests {
		if got := s.Sample(tt.t); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Sample(%g) = %g, want %g", tt.t, got, tt.want)
		}
	}
	if NewSeries("e", "").Sample(1) != 0 {
		t.Error("empty series should sample as 0")
	}
}

func TestSampleProperty(t *testing.T) {
	// Sampling exactly at a recorded timestamp returns the recorded value.
	s := ramp(50)
	f := func(iRaw uint8) bool {
		i := int(iRaw) % 50
		return s.Sample(float64(i)) == float64(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecimate(t *testing.T) {
	s := ramp(1000)
	d := s.Decimate(10)
	if d.Len() != 10 {
		t.Fatalf("decimated length = %d, want 10", d.Len())
	}
	if d.At(0).T != 0 || d.Last().T != 999 {
		t.Error("decimation must preserve endpoints")
	}
	// Short series copy exactly.
	s2 := ramp(5)
	if got := s2.Decimate(10); got.Len() != 5 {
		t.Errorf("short decimate length = %d, want 5", got.Len())
	}
	if got := s2.Decimate(0); got.Len() != 0 {
		t.Error("n<=0 should produce empty series")
	}
}

// Regression: Decimate(1) used to divide by zero computing the stride
// (ln-1)/(n-1), turning the first index into int(NaN) — a negative
// slice index panic on any series longer than one point.
func TestDecimateToOnePoint(t *testing.T) {
	s := ramp(3)
	d := s.Decimate(1)
	if d.Len() != 1 {
		t.Fatalf("Decimate(1) length = %d, want 1", d.Len())
	}
	if got := d.At(0); got != s.Last() {
		t.Errorf("Decimate(1) kept %+v, want the last sample %+v", got, s.Last())
	}
	if got := ramp(3).Decimate(-2); got.Len() != 0 {
		t.Errorf("Decimate(-2) length = %d, want 0", got.Len())
	}
	// A one-point series decimated to one point is an exact copy.
	if got := ramp(1).Decimate(1); got.Len() != 1 || got.At(0) != ramp(1).At(0) {
		t.Error("Decimate(1) of a single-point series must copy it")
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder()
	r.Record("vcc", "V", 0, 3.3)
	r.Record("vcc", "V", 1, 3.2)
	r.Record("i", "A", 0, 0.001)
	if got := r.Names(); len(got) != 2 || got[0] != "vcc" || got[1] != "i" {
		t.Errorf("Names = %v", got)
	}
	if r.Series("vcc").Len() != 2 {
		t.Error("vcc should have 2 samples")
	}
	if r.Series("missing") != nil {
		t.Error("missing series should be nil")
	}
}

func TestRecorderInterval(t *testing.T) {
	r := NewRecorder()
	r.SetInterval(0.5)
	for i := 0; i < 100; i++ {
		r.Record("x", "", float64(i)*0.1, float64(i))
	}
	n := r.Series("x").Len()
	// 100 samples over 9.9 s at >=0.5 s spacing: about 20.
	if n < 15 || n > 25 {
		t.Errorf("interval-limited sample count = %d, want ~20", n)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	r.Record("vcc", "V", 0, 3.0)
	r.Record("vcc", "V", 1, 2.5)
	r.Record("freq", "Hz", 0, 8e6)
	r.Record("freq", "Hz", 1, 4e6)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), out)
	}
	if lines[0] != "t,vcc(V),freq(Hz)" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,3,") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestWriteCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRecorder().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "t" {
		t.Errorf("empty CSV = %q", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	s := ramp(100)
	sp := Sparkline(s, 20)
	if len([]rune(sp)) != 20 {
		t.Errorf("sparkline width = %d, want 20", len([]rune(sp)))
	}
	runes := []rune(sp)
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Errorf("ramp should go from lowest to highest block: %q", sp)
	}
	if Sparkline(NewSeries("e", ""), 10) != "" {
		t.Error("empty series should yield empty sparkline")
	}
	// Constant series renders mid-height without panicking.
	c := NewSeries("c", "")
	c.Append(0, 5)
	c.Append(1, 5)
	if got := Sparkline(c, 5); got == "" {
		t.Error("constant series should still render")
	}
}

func TestPlot(t *testing.T) {
	s := ramp(100)
	out := Plot(s, 40, 8)
	if !strings.Contains(out, "ramp [V]") {
		t.Error("plot should include title")
	}
	if !strings.Contains(out, "*") {
		t.Error("plot should contain marks")
	}
	if got := Plot(NewSeries("e", "V"), 40, 8); !strings.Contains(got, "empty") {
		t.Error("empty plot should say so")
	}
}

func TestScatter(t *testing.T) {
	pts := []ScatterPoint{{X: 1, Y: 1}, {X: 2, Y: 4}, {X: 3, Y: 9}}
	out := Scatter("fig5", "W", "FPS", pts, 30, 10)
	if !strings.Contains(out, "fig5") || !strings.Contains(out, "+") {
		t.Errorf("scatter output missing content:\n%s", out)
	}
	if got := Scatter("none", "x", "y", nil, 30, 10); !strings.Contains(got, "no points") {
		t.Error("empty scatter should say no points")
	}
}

func TestChannelMatchesRecord(t *testing.T) {
	// Two recorders fed the same samples — one through Record, one
	// through pre-resolved channels — must store identical series.
	a := NewRecorder()
	b := NewRecorder()
	a.SetInterval(0.5)
	b.SetInterval(0.5)
	ch := b.Channel("x", "V")
	for i := 0; i < 100; i++ {
		ts := float64(i) * 0.13
		a.Record("x", "V", ts, float64(i))
		ch.Record(ts, float64(i))
	}
	sa, sb := a.Series("x"), b.Series("x")
	if sa.Len() != sb.Len() {
		t.Fatalf("lengths differ: %d vs %d", sa.Len(), sb.Len())
	}
	for i := 0; i < sa.Len(); i++ {
		if sa.At(i) != sb.At(i) {
			t.Fatalf("sample %d differs: %+v vs %+v", i, sa.At(i), sb.At(i))
		}
	}
	if lt := ch.LastT(); lt != sb.At(sb.Len()-1).T {
		t.Fatalf("LastT %g != last stored %g", lt, sb.At(sb.Len()-1).T)
	}
}

func TestChannelCreatesSeriesInOrder(t *testing.T) {
	r := NewRecorder()
	r.Channel("b", "")
	r.Record("a", "", 0, 1)
	got := r.Names()
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Fatalf("order %v, want [b a]", got)
	}
	// Mixing Channel and Record on one series shares the interval gate.
	r.SetInterval(1)
	ch := r.Channel("a", "")
	r.Record("a", "", 0.5, 2) // gated: 0.5 - 0 < 1
	ch.Record(0.7, 3)         // gated too
	ch.Record(1.2, 4)         // stored
	if n := r.Series("a").Len(); n != 2 {
		t.Fatalf("series a has %d samples, want 2", n)
	}
}
