package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bucket is one aggregation interval of a windowed query: the samples
// whose timestamps fall in [T, T+width) reduced to their extrema. Empty
// buckets (N == 0) carry the series' interpolated value at the bucket
// start in both Min and Max, so a windowed render stays continuous
// across sparse regions.
type Bucket struct {
	T        float64 // bucket start time
	Min, Max float64
	N        int // samples aggregated; 0 = interpolated fill
}

// Window reduces the series over [from, to] to at most points buckets of
// equal width, each carrying the min/max of the samples inside it. The
// interior of each bucket is answered from the block summaries, so the
// cost is O(points + samples/blockSize) rather than O(samples): each
// bucket scans at most two partial blocks at its edges, and consecutive
// buckets share those edges. Points < 1 or to ≤ from yields nil; an
// empty series yields buckets with N == 0 and zero values.
func (s *Series) Window(from, to float64, points int) []Bucket {
	if points < 1 || !(to > from) {
		return nil
	}
	width := (to - from) / float64(points)
	out := make([]Bucket, points)
	lo := s.searchT(from)
	for b := 0; b < points; b++ {
		start := from + float64(b)*width
		end := from + float64(b+1)*width
		if b == points-1 {
			// Make the final bucket closed on the right so a sample at
			// exactly t == to is not dropped by the half-open walk.
			end = math.Nextafter(to, math.Inf(1))
		}
		hi := lo
		for hi < len(s.ts) && s.ts[hi] < end {
			// Advance in blockSize hops when the whole block stays
			// inside the bucket, falling back to a linear walk at the
			// edges; combined with rangeMinMax this keeps the per-query
			// cost proportional to buckets plus blocks, not samples.
			if next := hi + blockSize; next <= len(s.ts) && s.ts[next-1] < end {
				hi = next
				continue
			}
			hi++
		}
		bk := Bucket{T: start}
		if hi > lo {
			bk.Min, bk.Max = s.rangeMinMax(lo, hi)
			bk.N = hi - lo
		} else if s.Len() > 0 {
			v := s.Sample(start)
			bk.Min, bk.Max = v, v
		}
		out[b] = bk
		lo = hi
	}
	return out
}

// WriteWindowCSV renders a windowed view of every series as CSV: one row
// per bucket at the bucket start time, with name_min(unit),name_max(unit)
// columns per series. It is the payload behind the service's
// /trace?from=&to=&points= query.
func (r *Recorder) WriteWindowCSV(w io.Writer, from, to float64, points int) error {
	if len(r.order) == 0 {
		_, err := fmt.Fprintln(w, "t")
		return err
	}
	header := []string{"t"}
	for _, name := range r.order {
		s := r.series[name]
		unit := ""
		if s.Unit != "" {
			unit = "(" + s.Unit + ")"
		}
		header = append(header, name+"_min"+unit, name+"_max"+unit)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	windows := make([][]Bucket, len(r.order))
	for i, name := range r.order {
		windows[i] = r.series[name].Window(from, to, points)
	}
	for b := 0; b < points; b++ {
		row := make([]string, 0, 2*len(r.order)+1)
		row = append(row, formatFloat(windows[0][b].T))
		for i := range r.order {
			bk := windows[i][b]
			row = append(row, formatFloat(bk.Min), formatFloat(bk.Max))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// TimeRange returns the earliest and latest timestamp across all series
// in the recorder, and false if no samples have been recorded.
func (r *Recorder) TimeRange() (from, to float64, ok bool) {
	from, to = math.Inf(1), math.Inf(-1)
	for _, name := range r.order {
		s := r.series[name]
		if s.Len() == 0 {
			continue
		}
		if s.ts[0] < from {
			from = s.ts[0]
		}
		if last := s.ts[s.Len()-1]; last > to {
			to = last
		}
		ok = true
	}
	if !ok {
		return 0, 0, false
	}
	return from, to, true
}
