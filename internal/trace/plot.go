package trace

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block characters used for single-line sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a single-line unicode sparkline with at
// most width cells. A constant series renders at mid height.
func Sparkline(s *Series, width int) string {
	d := s.Decimate(width)
	if d.Len() == 0 {
		return ""
	}
	st := d.Summarize()
	span := st.Max - st.Min
	var b strings.Builder
	for i := 0; i < d.Len(); i++ {
		idx := len(sparkRunes) / 2
		if span > 0 {
			idx = int((d.V(i) - st.Min) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Plot renders the series as a multi-row ASCII chart of the given width and
// height, with a y-axis scale and x-range footer. It is intentionally
// simple: one column per decimated sample, '*' marks.
func Plot(s *Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	d := s.Decimate(width)
	if d.Len() == 0 {
		return fmt.Sprintf("%s: (empty)\n", s.Name)
	}
	st := d.Summarize()
	span := st.Max - st.Min
	if span == 0 {
		span = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", d.Len()))
	}
	for col := 0; col < d.Len(); col++ {
		row := int((d.V(col) - st.Min) / span * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[height-1-row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]\n", s.Name, s.Unit)
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%10.4g", st.Max)
		case height - 1:
			label = fmt.Sprintf("%10.4g", st.Min)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", d.Len()))
	fmt.Fprintf(&b, "%s  t: %.4g .. %.4g s\n", strings.Repeat(" ", 10), st.TMin, st.TMax)
	return b.String()
}

// ScatterPoint is one (x, y) mark with an optional label, used for
// operating-point scatter plots like the paper's Fig. 5.
type ScatterPoint struct {
	X, Y  float64
	Label string
}

// Scatter renders a set of points as an ASCII scatter chart.
func Scatter(title, xLabel, yLabel string, pts []ScatterPoint, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(pts) == 0 {
		b.WriteString("(no points)\n")
		return b.String()
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX == 0 {
		spanX = 1
	}
	if spanY == 0 {
		spanY = 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range pts {
		col := int((p.X - minX) / spanX * float64(width-1))
		row := int((p.Y - minY) / spanY * float64(height-1))
		grid[height-1-row][col] = '+'
	}
	fmt.Fprintf(&b, "%10.4g |", maxY)
	b.WriteString(string(grid[0]))
	b.WriteByte('\n')
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%s |%s\n", strings.Repeat(" ", 10), string(grid[i]))
	}
	fmt.Fprintf(&b, "%10.4g |%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %s: %.4g .. %.4g   (y: %s)\n",
		strings.Repeat(" ", 10), xLabel, minX, maxX, yLabel)
	return b.String()
}
