package trace

import (
	"math"
	"testing"
)

// Regression: the rounded stride walk in Decimate could emit the same
// source index twice when n is close to len, duplicating timestamps in
// served CSV. Indices must be strictly increasing for every n, and the
// first/last samples preserved.
func TestDecimateIndicesStrictlyIncreasing(t *testing.T) {
	for _, ln := range []int{2, 3, 5, 17, 100, 1000} {
		s := NewSeries("s", "")
		for i := 0; i < ln; i++ {
			s.Append(float64(i), float64(i)*2)
		}
		for n := 2; n <= ln; n++ {
			d := s.Decimate(n)
			if d.Len() != n {
				t.Fatalf("len=%d n=%d: got %d points", ln, n, d.Len())
			}
			if d.At(0).T != 0 {
				t.Fatalf("len=%d n=%d: first sample %v, want t=0", ln, n, d.At(0))
			}
			if d.Last().T != float64(ln-1) {
				t.Fatalf("len=%d n=%d: last sample %v, want t=%d", ln, n, d.Last(), ln-1)
			}
			for i := 1; i < d.Len(); i++ {
				if d.At(i).T <= d.At(i-1).T {
					t.Fatalf("len=%d n=%d: duplicate/regressing timestamp at %d: %v then %v",
						ln, n, i, d.At(i-1), d.At(i))
				}
			}
		}
	}
}

func TestDecimateEdgeCounts(t *testing.T) {
	s := NewSeries("s", "")
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i))
	}
	if d := s.Decimate(0); d.Len() != 0 {
		t.Fatalf("n=0: got %d points", d.Len())
	}
	if d := s.Decimate(-3); d.Len() != 0 {
		t.Fatalf("n<0: got %d points", d.Len())
	}
	if d := s.Decimate(1); d.Len() != 1 || d.At(0).T != 9 {
		t.Fatalf("n=1: got %v, want the last sample", d.At(0))
	}
	if d := s.Decimate(25); d.Len() != 10 {
		t.Fatalf("n>len: got %d points, want exact copy", d.Len())
	}
}

// Regression: interpolated lookup at or before the first sample must
// clamp to the endpoints instead of indexing before the columns.
func TestSampleClampsToEndpoints(t *testing.T) {
	s := NewSeries("s", "V")
	s.Append(10, 1)
	s.Append(20, 3)
	s.Append(30, -5)
	cases := []struct {
		name string
		t    float64
		want float64
	}{
		{"before-first", 5, 1},
		{"well-before-first", -1e9, 1},
		{"exactly-first", 10, 1},
		{"interior", 15, 2},
		{"exactly-interior", 20, 3},
		{"exactly-last", 30, -5},
		{"after-last", 31, -5},
		{"well-after-last", 1e12, -5},
	}
	for _, c := range cases {
		if got := s.Sample(c.t); got != c.want {
			t.Errorf("%s: Sample(%g) = %g, want %g", c.name, c.t, got, c.want)
		}
	}
}

func TestSampleSinglePointAndEmpty(t *testing.T) {
	empty := NewSeries("e", "")
	if got := empty.Sample(3); got != 0 {
		t.Fatalf("empty series Sample = %g, want 0", got)
	}
	one := NewSeries("o", "")
	one.Append(7, 42)
	for _, q := range []float64{6, 7, 8} {
		if got := one.Sample(q); got != 42 {
			t.Fatalf("single-point Sample(%g) = %g, want 42", q, got)
		}
	}
}

// Block summaries must stay consistent with the columns across block
// boundaries (the incremental Append path).
func TestBlockSummariesMatchColumns(t *testing.T) {
	s := NewSeries("s", "")
	n := 3*blockSize + 17
	for i := 0; i < n; i++ {
		s.Append(float64(i), math.Cos(float64(i)))
	}
	for i := 0; i < n; i += 13 {
		for j := i + 1; j <= n; j += 97 {
			lo, hi := s.rangeMinMax(i, j)
			wlo, whi := math.Inf(1), math.Inf(-1)
			for k := i; k < j; k++ {
				wlo = math.Min(wlo, s.V(k))
				whi = math.Max(whi, s.V(k))
			}
			if lo != wlo || hi != whi {
				t.Fatalf("rangeMinMax(%d,%d) = %g,%g want %g,%g", i, j, lo, hi, wlo, whi)
			}
		}
	}
}
